package mutls

import "testing"

// TestCoreOptionsAliasGating: the deprecated openaddr aliases must reach
// the core config only when the openaddr backend (or the empty default)
// is selected — a chain or bitmap selection must not have its config
// silently polluted with another backend's sizing.
func TestCoreOptionsAliasGating(t *testing.T) {
	cases := []struct {
		name      string
		opts      Options
		wantLW    int
		wantOvCap int
	}{
		{"defaultBackend", Options{GBufLogWords: 11, GBufOverflowCap: 33}, 11, 33},
		{"openaddr", Options{Buffering: Buffering{Backend: "openaddr"}, GBufLogWords: 11, GBufOverflowCap: 33}, 11, 33},
		{"chain", Options{Buffering: Buffering{Backend: "chain"}, GBufLogWords: 11, GBufOverflowCap: 33}, 0, 0},
		{"bitmap", Options{Buffering: Buffering{Backend: "bitmap"}, GBufLogWords: 11, GBufOverflowCap: 33}, 0, 0},
		{"explicitWins", Options{Buffering: Buffering{LogWords: 9}, GBufLogWords: 11, GBufOverflowCap: 33}, 9, 33},
	}
	for _, tc := range cases {
		co := tc.opts.coreOptions()
		if co.GBuf.LogWords != tc.wantLW || co.GBuf.OverflowCap != tc.wantOvCap {
			t.Errorf("%s: GBuf sizing = (LogWords %d, OverflowCap %d), want (%d, %d)",
				tc.name, co.GBuf.LogWords, co.GBuf.OverflowCap, tc.wantLW, tc.wantOvCap)
		}
	}
}
