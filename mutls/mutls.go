// Package mutls is the public programming interface of the MUTLS
// thread-level speculation runtime (Cao & Verbrugge, "Mixed Model Universal
// Software Thread-Level Speculation", ICPP 2013).
//
// The internal/core package implements the raw fork/join protocol in the
// shape of the paper's compiler-transformed code: explicit fork points
// indexed by per-frame ranks arrays, proxy/stub register save/restore, and
// join-and-reexecute loops. This package packages those driving patterns as
// a reusable library so programs never open-code the protocol:
//
//   - Runtime / Options — a façade over the core ThreadManager.
//   - For / ForRange — chunked loop-level speculation with chained in-order
//     forks (the 3x+1/mandelbrot shape of Figure 2), with a selectable
//     forking model and chunk policy.
//   - Reduce / ReduceFloat64 / ReduceFunc — speculative reduction over
//     int64, float64 and general word-encoded monoids: the continuation is
//     forked with a value-predicted accumulator that the join validates
//     (MUTLS_validate_local, §IV-G4), warm-gated so cold predictions never
//     fork, with float-arithmetic stride prediction and an optional
//     relative-tolerance validation mode for float folds.
//   - Pipeline — stage-parallel speculative pipelines (the DSWP-style
//     decoupled shape): tokens flow in order, each downstream stage is its
//     own fork point speculating on a predicted upstream live-out.
//   - Tree / Task — tree-form recursion under the paper's mixed forking
//     model (fft/matmult/nqueen/tsp): speculative regions spawn subtrees and
//     hand their continuation to the parent chain (Figure 2(d)); the
//     non-speculative driver joins the tree in sequential order.
//
// Code that runs under speculation is still written against core.Thread
// (aliased here as Thread): all simulated memory traffic flows through the
// Load*/Store* accessors and pure compute is charged with Tick. Contiguous
// data should use the bulk accessors — LoadBytes/StoreBytes and the typed
// slice views LoadWords/StoreWords, LoadInt64s/StoreInt64s,
// LoadFloat64s/StoreFloat64s, plus the sub-word views
// LoadFloat32s/StoreFloat32s and LoadInt32s/StoreInt32s — which cost one
// buffered range access (a single batched clock charge, one GlobalBuffer
// crossing) instead of one probe per word. What mutls removes is the
// protocol plumbing around that code.
package mutls

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gbuf"
	"repro/internal/lbuf"
	"repro/internal/mem"
	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// ErrClosed is returned by Run/RunCtx on a runtime that has been closed.
var ErrClosed = core.ErrClosed

// ErrCancelled is returned by RunCtx when a run was unwound by CancelRun
// without a context error to report instead; context-driven cancellations
// return ctx.Err() (context.Canceled or context.DeadlineExceeded).
var ErrCancelled = core.ErrCancelled

// KernelPanic is the error Run/RunCtx return when the non-speculative
// thread panicked: the kernel itself faulted, so there is no sequential
// result to fall back to, but the run drains and the runtime stays
// reusable. Panics on *speculative* threads never surface as errors — they
// are contained as misspeculation (the chunk is squashed and re-executed
// non-speculatively) and counted in Summary.Faults.
type KernelPanic = core.KernelPanic

// Thread is the execution context handed to non-speculative code and to
// speculative regions; see core.Thread for the instrumented memory API.
type Thread = core.Thread

// Model selects the forking model of a fork point.
type Model = core.Model

// The forking models of the paper (§II): in-order chains for loops,
// out-of-order for method-level continuations, the tree-form mixed model in
// which every thread may speculate, and the Mitosis/POSH-style linear mixed
// baseline used in the ablation study.
const (
	InOrder     = core.InOrder
	OutOfOrder  = core.OutOfOrder
	Mixed       = core.Mixed
	MixedLinear = core.MixedLinear
)

// ParseModel converts a Figure 10 legend name ("inorder", "outoforder",
// "mixed", "mixedlinear") back to a Model.
func ParseModel(s string) (Model, error) { return core.ParseModel(s) }

// Rank identifies a virtual CPU; 0 is the non-speculative thread.
type Rank = core.Rank

// RegionFunc is a speculative continuation in the transformed form of
// Figure 2(d). Programs using For/Reduce/Tree never write one directly.
type RegionFunc = core.RegionFunc

// Addr is an address in the simulated global address space.
type Addr = mem.Addr

// Cost is a virtual-time duration (or nanoseconds under real timing).
type Cost = vclock.Cost

// TimingMode selects virtual (deterministic cost model) or real (wall
// clock) time.
type TimingMode = vclock.Mode

// Timing modes.
const (
	Virtual = vclock.Virtual
	Real    = vclock.Real
)

// RealCPUsUncapped disables the Real-timing virtual-CPU clamp
// (Options.RealCPUCap).
const RealCPUsUncapped = core.RealCPUsUncapped

// CostModel prices runtime events under virtual timing.
type CostModel = vclock.CostModel

// DefaultCostModel returns the calibrated C/C++ cost model.
func DefaultCostModel() CostModel { return vclock.DefaultCostModel() }

// FortranCostModel returns the Fortran-frontend cost model variant.
func FortranCostModel() CostModel { return vclock.FortranCostModel() }

// Summary aggregates the statistics of one Run (commits, rollbacks,
// per-phase ledgers — the inputs to the paper's Figures 5-9 — plus the
// GlobalBuffer pressure and activity counters of the backend ablation).
type Summary = stats.Summary

// Buffering selects and sizes the per-CPU GlobalBuffer backend: the
// Backend name plus the sizing fields of that backend (LogWords and
// OverflowCap for "openaddr", LogBuckets for "chain", PageWords for
// "bitmap"). Zero fields select defaults; invalid sizing or an unknown
// backend fails New.
type Buffering = gbuf.Config

// BufferCounters is the aggregated GlobalBuffer activity of a run
// (Summary.GBuf): loads, stores, conflict parks, committed words/bytes.
type BufferCounters = gbuf.Counters

// Backends returns the registered GlobalBuffer backend names, sorted —
// the valid values of Buffering.Backend.
func Backends() []string { return gbuf.Backends() }

// Predictor selects a live-variable value prediction strategy for Reduce.
type Predictor = predict.Kind

// Value predictors (§VI future work): last-value and stride.
const (
	LastValue = predict.LastValue
	Stride    = predict.Stride
)

// Options configures a Runtime. The zero value of every field selects a
// sensible default, so Options{CPUs: 8} is a complete configuration.
type Options struct {
	// CPUs is the number of speculative virtual CPUs (ranks 1..CPUs); the
	// non-speculative thread runs besides them. Zero disables speculation
	// entirely (every fork is refused).
	CPUs int

	// Timing selects Virtual (default, deterministic) or Real time.
	Timing TimingMode

	// RealCPUCap bounds CPUs under Real timing: wall-clock numbers are only
	// meaningful while every virtual CPU maps to a schedulable OS thread.
	// Zero selects the default cap, runtime.GOMAXPROCS(0) at construction
	// time; RealCPUsUncapped disables the clamp for oversubscription
	// experiments. Virtual timing is never capped.
	RealCPUCap int

	// Cost prices runtime events under virtual timing. Zero selects
	// DefaultCostModel.
	Cost CostModel

	// StaticBytes, HeapBytes and StackBytes size the simulated address
	// space (zero selects the core defaults). StackBytes is per thread.
	StaticBytes int
	HeapBytes   int
	StackBytes  int

	// Buffering selects and sizes the per-CPU GlobalBuffer backend
	// (openaddr, chain or bitmap). The zero value selects the openaddr
	// backend with default sizing.
	Buffering Buffering

	// Deprecated: GBufLogWords and GBufOverflowCap are aliases for
	// Buffering.LogWords and Buffering.OverflowCap (the openaddr backend's
	// sizing), kept for programs written before the backend was pluggable.
	// They are ignored when the corresponding Buffering field is set.
	GBufLogWords    int
	GBufOverflowCap int

	// RegSlots and StackSlots size the per-CPU LocalBuffer frames.
	RegSlots   int
	StackSlots int

	// RollbackProb forces random rollbacks at validation time with the
	// given probability (the Figure 11 sensitivity experiment); Seed seeds
	// the per-CPU deterministic generators behind it.
	RollbackProb float64
	Seed         uint64

	// CollectStats enables the ledgers and execution records behind Stats.
	CollectStats bool

	// AdaptiveForkHeuristic disables fork points whose observed rollback
	// rate exceeds the threshold (§VI).
	AdaptiveForkHeuristic bool

	// SpecDeadline arms the runaway-speculation watchdog: a wall-clock
	// floor on how long one speculative chunk may run between CheckPoint
	// polls before it is squashed (RollbackDeadline, counted in
	// Summary.Faults). The effective per-fork-point deadline is the larger
	// of SpecDeadline and 8x the point's observed mean chunk latency. Zero
	// (the default) disables the watchdog.
	SpecDeadline time.Duration

	// FaultPlan wires the deterministic fault-injection plane
	// (internal/faultinject) into the runtime's protocol seams for chaos
	// testing. Nil injects nothing.
	FaultPlan *faultinject.Plan
}

// coreOptions lowers the façade options onto core.Options.
func (o Options) coreOptions() core.Options {
	co := core.Options{
		NumCPUs:               o.CPUs,
		Timing:                o.Timing,
		RealCPUCap:            o.RealCPUCap,
		Cost:                  o.Cost,
		RollbackProb:          o.RollbackProb,
		Seed:                  o.Seed,
		CollectStats:          o.CollectStats,
		AdaptiveForkHeuristic: o.AdaptiveForkHeuristic,
		SpecDeadline:          o.SpecDeadline,
		FaultPlan:             o.FaultPlan,
	}
	if o.StaticBytes != 0 || o.HeapBytes != 0 || o.StackBytes != 0 {
		// Unset sizes keep the core defaults.
		co.Space = mem.DefaultSpaceConfig(o.CPUs + 1)
		if o.StaticBytes != 0 {
			co.Space.StaticBytes = o.StaticBytes
		}
		if o.HeapBytes != 0 {
			co.Space.HeapBytes = o.HeapBytes
		}
		if o.StackBytes != 0 {
			co.Space.StackBytes = o.StackBytes
		}
	}
	co.GBuf = o.Buffering
	// The deprecated aliases fill openaddr sizing the Buffering config
	// leaves unset; remaining zero fields select the gbuf defaults. They
	// are openaddr fields, so they apply only when that backend (or the
	// empty default, which resolves to it) is selected — copying them into
	// a chain/bitmap config would silently pollute that backend's sizing.
	if co.GBuf.Backend == "" || co.GBuf.Backend == gbuf.DefaultBackend {
		if co.GBuf.LogWords == 0 {
			co.GBuf.LogWords = o.GBufLogWords
		}
		if co.GBuf.OverflowCap == 0 {
			co.GBuf.OverflowCap = o.GBufOverflowCap
		}
	}
	if o.RegSlots != 0 || o.StackSlots != 0 {
		co.LBuf = lbuf.DefaultConfig()
		if o.RegSlots != 0 {
			co.LBuf.RegSlots = o.RegSlots
		}
		if o.StackSlots != 0 {
			co.LBuf.StackSlots = o.StackSlots
		}
	}
	return co
}

// Runtime is the public façade over the core ThreadManager. It embeds
// *core.Runtime, so RunCtx, Stats, ResetStats, Recycle, SetCPULimit,
// Space, NumCPUs and Close are available directly; Run is shadowed below
// so the public API reports a closed runtime as a typed error instead of
// panicking.
type Runtime struct {
	*core.Runtime
}

// New builds a runtime. Close it when done (Close is idempotent).
func New(opts Options) (*Runtime, error) {
	rt, err := core.NewRuntime(opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Runtime{Runtime: rt}, nil
}

// Run executes fn as the non-speculative thread and returns the paper's
// TN: the critical-path runtime (virtual units or nanoseconds under Real
// timing). Speculative threads still outstanding when fn returns are
// squashed. On a closed runtime it returns ErrClosed without executing
// fn. For deadlines and cancellation, use RunCtx (promoted from
// core.Runtime): it stops forking once the context is done and unwinds
// the run at the next Thread.CancelPoint poll, which For/ForRange/Reduce/
// Pipeline insert at every chunk/group/token boundary.
func (r *Runtime) Run(fn func(t *Thread)) (Cost, error) {
	return r.Runtime.RunCtx(context.Background(), fn)
}
