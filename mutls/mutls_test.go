package mutls_test

import (
	"testing"

	"repro/mutls"
)

// newRuntime builds a small test runtime; extra tweaks the options.
func newRuntime(t *testing.T, cpus int, extra func(*mutls.Options)) *mutls.Runtime {
	t.Helper()
	opts := mutls.Options{
		CPUs:         cpus,
		CollectStats: true,
		HeapBytes:    1 << 20,
	}
	if extra != nil {
		extra(&opts)
	}
	rt, err := mutls.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// models are the three forking models of the paper's Figure 10 comparison.
var models = []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed}

// --- For / ForRange ---

// forFill runs a chunked array fill under For and returns the checksum the
// non-speculative thread reads back after all joins.
func forFill(rt *mutls.Runtime, n, chunks int, model mutls.Model) int64 {
	var sum int64
	rt.Run(func(t *mutls.Thread) {
		arr := t.Alloc(8 * n)
		mutls.For(t, chunks, mutls.ForOptions{Model: model}, func(c *mutls.Thread, idx int) {
			for i := idx; i < n; i += chunks {
				v := int64(i)*7 + 3
				c.Tick(4)
				c.StoreInt64(arr+mutls.Addr(8*i), v)
			}
		})
		for i := 0; i < n; i++ {
			sum += t.LoadInt64(arr + mutls.Addr(8*i))
		}
		t.Free(arr)
	})
	return sum
}

func TestForMatchesSequentialAcrossModels(t *testing.T) {
	const n, chunks = 4096, 16
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*7 + 3
	}
	for _, model := range models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, cpus := range []int{0, 1, 4} {
				rt := newRuntime(t, cpus, nil)
				if got := forFill(rt, n, chunks, model); got != want {
					t.Fatalf("cpus=%d: For sum = %d, want %d", cpus, got, want)
				}
			}
		})
	}
}

func TestForSpeculatesAndCommits(t *testing.T) {
	rt := newRuntime(t, 8, nil)
	forFill(rt, 1<<14, 32, mutls.InOrder)
	if s := rt.Stats(); s.Commits == 0 {
		t.Fatalf("no committed speculations (%d rollbacks)", s.Rollbacks)
	}
}

func TestForUnderForcedRollbacks(t *testing.T) {
	const n, chunks = 4096, 16
	want := forFill(newRuntime(t, 4, nil), n, chunks, mutls.InOrder)
	for _, prob := range []float64{0.3, 1.0} {
		rt := newRuntime(t, 4, func(o *mutls.Options) {
			o.RollbackProb = prob
			o.Seed = 42
		})
		if got := forFill(rt, n, chunks, mutls.InOrder); got != want {
			t.Fatalf("prob=%v: For sum = %d, want %d", prob, got, want)
		}
		if prob == 1.0 {
			if s := rt.Stats(); s.Rollbacks == 0 {
				t.Fatal("RollbackProb=1 produced no rollbacks")
			}
		}
	}
}

func TestForRangeCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	policy := mutls.ChunkPolicy{MaxChunks: 8, MinPerChunk: 16}
	rt := newRuntime(t, 4, nil)
	var bad int
	rt.Run(func(t0 *mutls.Thread) {
		arr := t0.Alloc(8 * n)
		opts := mutls.ForOptions{Model: mutls.InOrder, Policy: policy}
		mutls.ForRange(t0, n, opts, func(c *mutls.Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.StoreInt64(arr+mutls.Addr(8*i), c.LoadInt64(arr+mutls.Addr(8*i))+1)
			}
		})
		for i := 0; i < n; i++ {
			if t0.LoadInt64(arr+mutls.Addr(8*i)) != 1 {
				bad++
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d indices not covered exactly once", bad)
	}
}

func TestChunkPolicy(t *testing.T) {
	cases := []struct {
		policy mutls.ChunkPolicy
		n      int
		want   int
	}{
		{mutls.ChunkPolicy{}, 1000, 64},
		{mutls.ChunkPolicy{}, 10, 10},
		{mutls.ChunkPolicy{MaxChunks: 8}, 1000, 8},
		{mutls.ChunkPolicy{MinPerChunk: 100}, 1000, 10},
		{mutls.ChunkPolicy{MinPerChunk: 2000}, 1000, 1},
	}
	for _, tc := range cases {
		if got := tc.policy.Chunks(tc.n); got != tc.want {
			t.Errorf("%+v.Chunks(%d) = %d, want %d", tc.policy, tc.n, got, tc.want)
		}
	}
	p := mutls.ChunkPolicy{}
	chunks := p.Chunks(1000)
	covered := 0
	for idx := 0; idx < chunks; idx++ {
		lo, hi := p.Bounds(1000, chunks, idx)
		covered += hi - lo
	}
	if covered != 1000 {
		t.Fatalf("Bounds covered %d of 1000 indices", covered)
	}
}

// --- Reduce ---

// reduceSum folds a constant-stride array; the stride predictor should lock
// on and let continuations commit.
func reduceSum(rt *mutls.Runtime, n, chunks int, opts mutls.ReduceOptions) int64 {
	per := n / chunks
	var total int64
	rt.Run(func(t *mutls.Thread) {
		arr := t.Alloc(8 * n)
		for i := 0; i < n; i++ {
			t.StoreInt64(arr+mutls.Addr(8*i), 7)
		}
		total = mutls.Reduce(t, chunks, 0, opts, func(c *mutls.Thread, idx int, acc int64) int64 {
			for i := idx * per; i < (idx+1)*per; i++ {
				acc += c.LoadInt64(arr + mutls.Addr(8*i))
			}
			return acc
		})
	})
	return total
}

func TestReduceMatchesSequentialAcrossModels(t *testing.T) {
	const n, chunks = 1 << 12, 16
	want := int64(7 * n)
	for _, model := range models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, pred := range []mutls.Predictor{mutls.LastValue, mutls.Stride} {
				rt := newRuntime(t, 4, nil)
				got := reduceSum(rt, n, chunks, mutls.ReduceOptions{Model: model, Predictor: pred})
				if got != want {
					t.Fatalf("pred=%v: Reduce = %d, want %d", pred, got, want)
				}
			}
		})
	}
}

func TestReducePredictionCommits(t *testing.T) {
	rt := newRuntime(t, 4, nil)
	reduceSum(rt, 1<<12, 16, mutls.ReduceOptions{Predictor: mutls.Stride})
	if s := rt.Stats(); s.Commits == 0 {
		t.Fatalf("stride-predictable reduction committed nothing (%d rollbacks)", s.Rollbacks)
	}
}

func TestReduceUnderForcedRollbacks(t *testing.T) {
	const n, chunks = 1 << 12, 16
	rt := newRuntime(t, 4, func(o *mutls.Options) {
		o.RollbackProb = 1.0
		o.Seed = 9
	})
	if got := reduceSum(rt, n, chunks, mutls.ReduceOptions{}); got != int64(7*n) {
		t.Fatalf("Reduce under forced rollbacks = %d, want %d", got, 7*n)
	}
}

// --- Tree ---

// treeSum speculates a binary recursion summing f(i) over [lo, hi): each
// internal node spawns its right half (reverse order) and recurses into the
// left, the tree-form shape of the paper's §II.
func treeSum(rt *mutls.Runtime, n, minLeaf int, model mutls.Model) int64 {
	tree := &mutls.Tree{Model: model}
	var node func(c *mutls.Thread, tt *mutls.TreeThread, lo, hi int, seq, span int64) int64
	node = func(c *mutls.Thread, tt *mutls.TreeThread, lo, hi int, seq, span int64) int64 {
		if hi-lo <= minLeaf {
			sum := int64(0)
			for i := lo; i < hi; i++ {
				c.Tick(2)
				sum += int64(i)*3 + 1
			}
			return sum
		}
		mid := (lo + hi) / 2
		half := span / 2
		task := mutls.Task{
			Seq: seq + half, Span: half,
			Args: [4]int64{int64(mid), int64(hi), 0, 0},
		}
		spawned := tt.Spawn(c, task)
		sum := node(c, tt, lo, mid, seq, half)
		if !spawned {
			sum += node(c, tt, mid, hi, seq+half, half)
		}
		return sum
	}
	tree.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		tt.SetResultInt64(node(c, tt, int(task.Args[0]), int(task.Args[1]), task.Seq, task.Span))
	}

	var total int64
	rt.Run(func(t *mutls.Thread) {
		roots := tree.Collect(t, func(tt *mutls.TreeThread) {
			total = node(t, tt, 0, n, 0, int64(1)<<40)
		})
		tree.Drive(t, roots, func(_ mutls.Task, res mutls.TreeResult) {
			total += res.Int64()
		})
	})
	return total
}

func TestTreeMatchesSequentialAcrossModels(t *testing.T) {
	const n, minLeaf = 1 << 12, 1 << 7
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*3 + 1
	}
	for _, model := range models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, cpus := range []int{0, 1, 4, 8} {
				rt := newRuntime(t, cpus, nil)
				if got := treeSum(rt, n, minLeaf, model); got != want {
					t.Fatalf("cpus=%d: Tree sum = %d, want %d", cpus, got, want)
				}
			}
		})
	}
}

func TestTreeSpeculatesUnderMixedModel(t *testing.T) {
	rt := newRuntime(t, 8, nil)
	treeSum(rt, 1<<13, 1<<7, mutls.Mixed)
	if s := rt.Stats(); s.Commits == 0 {
		t.Fatalf("mixed-model tree committed nothing (%d rollbacks)", s.Rollbacks)
	}
}

func TestTreeUnderForcedRollbacks(t *testing.T) {
	const n, minLeaf = 1 << 12, 1 << 7
	want := treeSum(newRuntime(t, 4, nil), n, minLeaf, mutls.Mixed)
	for _, prob := range []float64{0.3, 1.0} {
		rt := newRuntime(t, 4, func(o *mutls.Options) {
			o.RollbackProb = prob
			o.Seed = 7
		})
		if got := treeSum(rt, n, minLeaf, mutls.Mixed); got != want {
			t.Fatalf("prob=%v: Tree sum = %d, want %d", prob, got, want)
		}
	}
}

// TestTreeFloatResult exercises the float64 result channel (the tsp shape).
func TestTreeFloatResult(t *testing.T) {
	tree := &mutls.Tree{Model: mutls.Mixed}
	tree.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		c.Tick(100)
		tt.SetResultFloat64(float64(task.Args[0]) / 2)
	}
	rt := newRuntime(t, 4, nil)
	var got []float64
	rt.Run(func(t0 *mutls.Thread) {
		roots := tree.Collect(t0, func(tt *mutls.TreeThread) {
			for i := 4; i >= 1; i-- { // logically later subtrees first
				task := mutls.Task{Seq: int64(i), Span: 1, Args: [4]int64{int64(i)}}
				if !tt.Spawn(t0, task) {
					_, res := tree.Exec(t0, task)
					got = append(got, res.Float64())
				}
			}
		})
		tree.Drive(t0, roots, func(_ mutls.Task, res mutls.TreeResult) {
			got = append(got, res.Float64())
		})
	})
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if len(got) != 4 || sum != (1+2+3+4)/2.0 {
		t.Fatalf("float results %v, want the halves of 1..4", got)
	}
}

// TestTreeSpawnCapacityBound: a region whose body wants to spawn more
// subtasks than fit in the saved locals must degrade to inline execution
// (Spawn returning false), not crash saving the task list.
func TestTreeSpawnCapacityBound(t *testing.T) {
	const fanout = 40 // far beyond the default LocalBuffer task capacity
	tree := &mutls.Tree{Model: mutls.Mixed}
	var leaves func(c *mutls.Thread, tt *mutls.TreeThread, lo int, n int, seq, span int64) int64
	leaves = func(c *mutls.Thread, tt *mutls.TreeThread, lo, n int, seq, span int64) int64 {
		if n == 1 {
			c.Tick(50)
			return int64(lo)
		}
		sum := int64(0)
		per := span / int64(n)
		// Wide flat fan-out: every child but the first is a spawn attempt.
		for i := n - 1; i >= 1; i-- {
			task := mutls.Task{Seq: seq + int64(i)*per, Span: per, Args: [4]int64{int64(lo + i), 1}}
			if !tt.Spawn(c, task) {
				sum += leaves(c, tt, lo+i, 1, seq+int64(i)*per, per)
			}
		}
		return sum + leaves(c, tt, lo, 1, seq, per)
	}
	tree.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		tt.SetResultInt64(leaves(c, tt, int(task.Args[0]), int(task.Args[1]), task.Seq, task.Span))
	}

	// Default RegSlots (small saved-locals budget), plenty of CPUs.
	rt := newRuntime(t, 16, nil)
	var total int64
	rt.Run(func(t0 *mutls.Thread) {
		roots := tree.Collect(t0, func(tt *mutls.TreeThread) {
			// Root task fans out to `fanout` leaves inside ONE speculative
			// region when spawned; spawn it explicitly to force the region
			// path.
			task := mutls.Task{Seq: 0, Span: int64(1) << 40, Args: [4]int64{0, fanout}}
			if !tt.Spawn(t0, task) {
				_, res := tree.Exec(t0, task)
				total += res.Int64()
			}
		})
		tree.Drive(t0, roots, func(_ mutls.Task, res mutls.TreeResult) {
			total += res.Int64()
		})
	})
	want := int64(fanout * (fanout - 1) / 2)
	if total != want {
		t.Fatalf("capacity-bounded tree sum = %d, want %d", total, want)
	}
}

// --- Runtime façade ---

func TestOptionsDefaultsAndString(t *testing.T) {
	rt := newRuntime(t, 2, nil)
	if rt.NumCPUs() != 2 {
		t.Fatalf("NumCPUs = %d, want 2", rt.NumCPUs())
	}
	if _, err := mutls.New(mutls.Options{CPUs: -1}); err == nil {
		t.Fatal("negative CPUs accepted")
	}
	if _, err := mutls.ParseModel("mixed"); err != nil {
		t.Fatal(err)
	}
	if _, err := mutls.ParseModel("bogus"); err == nil {
		t.Fatal("bogus model accepted")
	}
}

// TestPartialBufferOptions: setting one field of a buffer pair must keep
// the default for the other, not zero it.
func TestPartialBufferOptions(t *testing.T) {
	rt, err := mutls.New(mutls.Options{CPUs: 2, RegSlots: 200})
	if err != nil {
		t.Fatalf("RegSlots-only options rejected: %v", err)
	}
	rt.Close()
	rt, err = mutls.New(mutls.Options{CPUs: 2, GBufLogWords: 10})
	if err != nil {
		t.Fatalf("GBufLogWords-only options rejected: %v", err)
	}
	rt.Close()
}

// --- Buffering backends ---

// TestForAcrossBufferBackends: every registered GlobalBuffer backend
// preserves sequential semantics under the same For workload.
func TestForAcrossBufferBackends(t *testing.T) {
	const n, chunks = 4096, 16
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*7 + 3
	}
	for _, backend := range mutls.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			rt := newRuntime(t, 4, func(o *mutls.Options) {
				o.Buffering = mutls.Buffering{Backend: backend}
			})
			if got := forFill(rt, n, chunks, mutls.InOrder); got != want {
				t.Fatalf("sum = %d, want %d", got, want)
			}
			s := rt.Stats()
			if s.Commits == 0 {
				t.Fatal("no commits recorded")
			}
			if s.GBuf.Stores == 0 {
				t.Fatal("no buffered stores counted")
			}
			if s.WriteSetPeak == 0 {
				t.Fatal("no write-set high-water mark recorded")
			}
			rt.ResetStats()
			if s = rt.Stats(); s.GBuf.Stores != 0 || s.Commits != 0 {
				t.Fatalf("ResetStats left stores=%d commits=%d", s.GBuf.Stores, s.Commits)
			}
		})
	}
}

// TestBufferingValidation: invalid backend names and sizing fail New with
// an error instead of panicking or silently mis-sizing.
func TestBufferingValidation(t *testing.T) {
	cases := []mutls.Buffering{
		{Backend: "no-such-backend"},
		{Backend: "openaddr", LogWords: 40},
		{Backend: "openaddr", LogWords: -1},
		{Backend: "openaddr", LogWords: 10, OverflowCap: -2}, // -1 is gbuf.NoOverflow
		{Backend: "chain", LogBuckets: 33},
		{Backend: "bitmap", PageWords: 24}, // not a power of two
		{Backend: "bitmap", PageWords: -4},
	}
	for _, buf := range cases {
		if _, err := mutls.New(mutls.Options{CPUs: 2, Buffering: buf}); err == nil {
			t.Errorf("Buffering %+v accepted", buf)
		}
	}
}

// TestGBufAliasStillWorks: the deprecated GBufLogWords/GBufOverflowCap
// fields keep configuring the openaddr backend, and an explicit Buffering
// field wins over the alias.
func TestGBufAliasStillWorks(t *testing.T) {
	// Alias values flow into the real config: an out-of-range LogWords via
	// the alias must error exactly like the Buffering field would.
	if _, err := mutls.New(mutls.Options{CPUs: 2, GBufLogWords: 40}); err == nil {
		t.Fatal("out-of-range GBufLogWords accepted through the alias")
	}
	// Buffering wins over the alias when both are set.
	shadowed, err := mutls.New(mutls.Options{
		CPUs:         2,
		GBufLogWords: 40, // invalid, but shadowed by Buffering.LogWords
		Buffering:    mutls.Buffering{LogWords: 10},
	})
	if err != nil {
		t.Fatalf("Buffering.LogWords did not shadow the alias: %v", err)
	}
	shadowed.Close()
	rt := newRuntime(t, 2, func(o *mutls.Options) {
		o.GBufLogWords = 12
		o.GBufOverflowCap = 32
	})
	const n, chunks = 1024, 8
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*7 + 3
	}
	if got := forFill(rt, n, chunks, mutls.InOrder); got != want {
		t.Fatalf("alias-configured runtime sum = %d, want %d", got, want)
	}
}

func TestRealTiming(t *testing.T) {
	rt := newRuntime(t, 2, func(o *mutls.Options) {
		o.Timing = mutls.Real
		// The test wants both virtual CPUs on any host; it checks results,
		// not wall-clock fidelity.
		o.RealCPUCap = mutls.RealCPUsUncapped
	})
	const n, chunks = 2048, 8
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*7 + 3
	}
	if got := forFill(rt, n, chunks, mutls.InOrder); got != want {
		t.Fatalf("real-timing For sum = %d, want %d", got, want)
	}
}
