package mutls

import (
	"math"

	"repro/internal/core"
	"repro/internal/predict"
)

// This file implements speculative reduction: out-of-order speculation on
// the *continuation* of a chunked fold. The accumulator is live across the
// chunk boundary, so its value at the join point must be predicted at fork
// time (§IV-G4) and validated with MUTLS_validate_local at the join; a
// misprediction rolls the speculation back and the chunk re-executes
// inline with the true accumulator.
//
// Three accumulator domains share one driver engine (reduceWord), which
// moves raw 64-bit words and delegates prediction and validation to
// per-domain hooks:
//
//   - Reduce        — int64, exact two's-complement stride prediction.
//   - ReduceFloat64 — float64, float-arithmetic stride prediction with an
//     optional relative-tolerance validation mode.
//   - ReduceFunc    — any word-encoded monoid, bit-exact validation.

// ReduceOptions configures Reduce and ReduceFunc.
type ReduceOptions struct {
	// Model is the forking model of the continuation forks; the zero value
	// is OutOfOrder, the classic method-level continuation shape.
	Model Model
	// Predictor selects the accumulator value predictor; the zero value is
	// LastValue. Stride suits induction-like accumulators (constant
	// per-chunk increments).
	Predictor Predictor
	// Chunks, when non-nil, groups consecutive chunk indices into one
	// speculated continuation, resized from the feedback of earlier joins
	// (e.g. AdaptivePolicy). Nil keeps the default split: one index per
	// continuation.
	Chunks Chunker
}

// ReduceFloatOptions configures ReduceFloat64.
type ReduceFloatOptions struct {
	// Model, Predictor and Chunks as in ReduceOptions. The predictor
	// extrapolates in float64 arithmetic, so Stride follows a constant
	// float delta exactly.
	Model     Model
	Predictor Predictor
	Chunks    Chunker
	// RelTol, when positive, validates the predicted accumulator under a
	// relative tolerance instead of bit equality: a prediction within
	// RelTol of the actual value commits the speculation even though the
	// continuation ran from a slightly wrong live-in. This is the
	// tolerance-based float value prediction mode of the related work; the
	// result may deviate from the sequential fold by the tolerance's
	// propagation through the remaining chunks, so enable it only for
	// reductions that accept approximate answers. Zero keeps bit-exact
	// validation and exact sequential semantics.
	RelTol float64
}

// reduceHooks are the per-domain prediction/validation callbacks of the
// shared reduction engine. predict must return ok=false until the
// predictor is warm — the cold-start fork is the one guaranteed to roll
// back on a growing accumulator (and, before the warm gate existed, to
// run from accumulator 0 whenever init != 0).
type reduceHooks struct {
	predict  func() (uint64, bool)
	observe  func(actual uint64)
	validate func(t *Thread, ranks []Rank, p int, actual uint64)
}

// Reduce folds body over the chunks [0, nChunks) starting from init and
// returns the final accumulator. body(c, idx, acc) executes chunk idx on
// top of accumulator value acc and returns the updated accumulator; it must
// contain only TLS-instrumented work and must be deterministic in (idx,
// acc, simulated memory), since rolled-back chunks re-execute.
//
// While the non-speculative thread folds one group of chunks, a
// speculative thread folds the next group from a predicted accumulator;
// when the prediction validates, the join adopts the speculative live-out
// and the loop skips the group. Group bounds come from opts.Chunks (one
// index per group by default), decided on the non-speculative thread in
// sequential order — the continuation form of the adaptive chunk schedule.
func Reduce(t *Thread, nChunks int, init int64, opts ReduceOptions, body func(c *Thread, idx int, acc int64) int64) int64 {
	out := ReduceFunc(t, nChunks, uint64(init), opts, func(c *Thread, idx int, acc uint64) uint64 {
		return uint64(body(c, idx, int64(acc)))
	})
	return int64(out)
}

// ReduceFunc is the monoid-generic reduction: the accumulator is an opaque
// word — any value the caller encodes into 64 bits (a saturating max, a
// modular product, a packed pair, a float via math.Float64bits…). The
// engine predicts the word with the configured predictor (LastValue by
// default; Stride extrapolates over the raw two's-complement encoding, so
// only choose it when the encoding is integer-linear) and validates it
// bit-exactly at the join, preserving exact sequential semantics for every
// encoding.
func ReduceFunc(t *Thread, nChunks int, init uint64, opts ReduceOptions, body func(c *Thread, idx int, acc uint64) uint64) uint64 {
	pred := predict.New(opts.Predictor)
	hooks := reduceHooks{
		predict: func() (uint64, bool) {
			if !pred.Warm(0, 0) {
				return 0, false
			}
			return pred.Predict(0, 0)
		},
		observe: func(actual uint64) { pred.Observe(0, 0, actual) },
		validate: func(t *Thread, ranks []Rank, p int, actual uint64) {
			t.ValidateRegvarInt64(ranks, p, 0, int64(actual))
		},
	}
	return reduceWord(t, nChunks, init, opts.Model, opts.Chunks, hooks, body)
}

// ReduceFloat64 folds body over the chunks [0, nChunks) starting from init
// and returns the final float64 accumulator — the float form of Reduce.
// Prediction runs in float64 arithmetic (a constant float per-group delta
// is followed exactly by the Stride predictor) and validation is bit-exact
// unless opts.RelTol enables the relative-tolerance mode. The fold order
// is the sequential order in every outcome — committed speculations adopt
// the live-out of a fold that ran in that same order — so with RelTol 0
// the result is bit-identical to the sequential fold.
func ReduceFloat64(t *Thread, nChunks int, init float64, opts ReduceFloatOptions, body func(c *Thread, idx int, acc float64) float64) float64 {
	pred := predict.New(opts.Predictor)
	hooks := reduceHooks{
		predict: func() (uint64, bool) {
			if !pred.Warm(0, 0) {
				return 0, false
			}
			v, ok := pred.PredictFloat64(0, 0)
			return math.Float64bits(v), ok
		},
		observe: func(actual uint64) {
			pred.ObserveFloat64(0, 0, math.Float64frombits(actual), opts.RelTol)
		},
		validate: func(t *Thread, ranks []Rank, p int, actual uint64) {
			t.ValidateRegvarFloat64Rel(ranks, p, 0, math.Float64frombits(actual), opts.RelTol)
		},
	}
	out := reduceWord(t, nChunks, math.Float64bits(init), opts.Model, opts.Chunks, hooks,
		func(c *Thread, idx int, acc uint64) uint64 {
			return math.Float64bits(body(c, idx, math.Float64frombits(acc)))
		})
	return math.Float64frombits(out)
}

// reduceWord is the shared reduction engine. The accumulator travels as a
// raw word in regvar slot 0 (the predicted live-in) and slot 3 (the saved
// live-out); slots 1 and 2 carry the group bounds. Every group's outcome
// is observed exactly once through the chunk controller, and every group
// boundary's accumulator value is observed exactly once by the predictor —
// including init itself and the boundaries of groups that were never
// forked, so the prediction history always matches the join-point value
// sequence (a refused fork no longer punches a hole in the stride).
func reduceWord(t *Thread, nChunks int, init uint64, model Model, ck Chunker, hooks reduceHooks, body func(c *Thread, idx int, acc uint64) uint64) uint64 {
	if nChunks <= 0 {
		return init
	}
	if model == InOrder {
		// InOrder is the Model zero value and an in-order chain cannot
		// carry a predicted accumulator (each link would need the previous
		// link's live-out), so it maps to the out-of-order default.
		model = OutOfOrder
	}
	if ck == nil {
		ck = unitChunker{}
	}
	rt := t.Runtime()
	point := rt.AllocPoint()
	defer rt.FreePoint(point)
	ranks := make([]Rank, point+1)
	ctrl := ck.NewRun(nChunks, rt.NumCPUs())
	next := func(lo int) int {
		hi := ctrl.Next(lo)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > nChunks {
			hi = nChunks
		}
		return hi
	}
	base := rt.PointCounters(point)
	observe := func(fb ChunkFeedback) {
		fb.Points = rt.PointCounters(point).Sub(base)
		fb.Now = t.Now()
		ctrl.Observe(fb)
	}

	acc := init
	// Seed the predictor with the fold's entry value: the first group
	// boundary the continuation forks will predict is extrapolated from
	// here, not from a zero-filled cold entry.
	hooks.observe(acc)
	lo, hi := 0, next(0)
	// rolledBack carries the failed speculation of the current group, so
	// its single observation (like For's: Forked, not Committed, with the
	// inline re-execution latency) is emitted when the group is re-folded.
	var rolledBack *ChunkFeedback
	for lo < nChunks {
		// Cooperative cancellation between groups (see For).
		t.CancelPoint()
		var h *core.ForkHandle
		specLo, specHi := hi, hi
		if hi < nChunks { // the last group has no continuation to fork
			specHi = next(hi)
			// Fork only from a warm prediction: a cold fork's continuation
			// would run from a guessed accumulator and roll back on any
			// nonzero per-group delta, wasting the CPU it claimed.
			if raw, ok := hooks.predict(); ok {
				h = t.Fork(ranks, point, model)
				if h != nil {
					h.SetRegvarInt64(0, int64(raw))
					h.SetRegvarInt64(1, int64(specLo))
					h.SetRegvarInt64(2, int64(specHi))
					h.Start(func(c *Thread) uint32 {
						specAcc := uint64(c.GetRegvarInt64(0))
						sLo := int(c.GetRegvarInt64(1))
						sHi := int(c.GetRegvarInt64(2))
						for i := sLo; i < sHi; i++ {
							specAcc = body(c, i, specAcc)
						}
						c.SaveRegvarInt64(3, int64(specAcc))
						return 0
					})
				}
			}
		}
		start := t.Now()
		for i := lo; i < hi; i++ {
			acc = body(t, i, acc)
		}
		inlineLatency := t.Now() - start
		// The boundary value after the inline group is exactly the value a
		// concurrent fork predicted; record it before validation so the
		// predictor's history stays one-to-one with the boundary sequence.
		hooks.observe(acc)
		// Every group is observed exactly once: a group whose speculation
		// rolled back reports that outcome with its inline re-execution
		// latency; any other inline group is a plain latency calibration.
		if rolledBack != nil {
			rolledBack.Latency = inlineLatency
			observe(*rolledBack)
			rolledBack = nil
		} else {
			observe(ChunkFeedback{Lo: lo, Hi: hi, Latency: inlineLatency})
		}
		if hi >= nChunks {
			break
		}
		if h == nil {
			// Fork refused (or predictor cold): the decided group simply
			// becomes the next inline group.
			lo, hi = specLo, specHi
			continue
		}
		// MUTLS_validate_local: was the prediction right?
		hooks.validate(t, ranks, point, acc)
		res := t.Join(ranks, point)
		if res.Committed() {
			acc = uint64(res.RegvarInt64(3))
			// Keep the predictor's history aligned with the join-point
			// values it predicts: the adopted live-out is the next one.
			hooks.observe(acc)
			observe(ChunkFeedback{
				Lo: specLo, Hi: specHi, Forked: true, Committed: true,
				Latency:     res.Latency,
				ReadSetPeak: res.ReadSetPeak, WriteSetPeak: res.WriteSetPeak,
			})
			lo = specHi // the speculation consumed the next group
			if lo < nChunks {
				hi = next(lo)
			} else {
				hi = lo
			}
		} else {
			rolledBack = &ChunkFeedback{
				Lo: specLo, Hi: specHi, Forked: true,
				ReadSetPeak: res.ReadSetPeak, WriteSetPeak: res.WriteSetPeak,
			}
			lo, hi = specLo, specHi // re-execute the group inline
		}
	}
	return acc
}
