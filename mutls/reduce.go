package mutls

import (
	"repro/internal/core"
	"repro/internal/predict"
)

// This file implements speculative reduction: out-of-order speculation on
// the *continuation* of a chunked fold. The accumulator is live across the
// chunk boundary, so its value at the join point must be predicted at fork
// time (§IV-G4) and validated with MUTLS_validate_local at the join; a
// misprediction rolls the speculation back and the chunk re-executes
// inline with the true accumulator.

// ReduceOptions configures Reduce.
type ReduceOptions struct {
	// Model is the forking model of the continuation forks; the zero value
	// is OutOfOrder, the classic method-level continuation shape.
	Model Model
	// Predictor selects the accumulator value predictor; the zero value is
	// LastValue. Stride suits induction-like accumulators (constant
	// per-chunk increments).
	Predictor Predictor
}

// Reduce folds body over the chunks [0, nChunks) starting from init and
// returns the final accumulator. body(c, idx, acc) executes chunk idx on
// top of accumulator value acc and returns the updated accumulator; it must
// contain only TLS-instrumented work and must be deterministic in (idx,
// acc, simulated memory), since rolled-back chunks re-execute.
//
// While the non-speculative thread folds chunk idx, a speculative thread
// folds chunk idx+1 from a predicted accumulator; when the prediction
// validates, the join adopts the speculative live-out and the loop skips a
// chunk.
func Reduce(t *Thread, nChunks int, init int64, opts ReduceOptions, body func(c *Thread, idx int, acc int64) int64) int64 {
	model := opts.Model
	if model == InOrder {
		// InOrder is the Model zero value and an in-order chain cannot
		// carry a predicted accumulator (each link would need the previous
		// link's live-out), so it maps to the out-of-order default.
		model = OutOfOrder
	}
	pred := predict.New(opts.Predictor)
	acc := init
	for idx := 0; idx < nChunks; idx++ {
		ranks := []Rank{0}
		var h *core.ForkHandle
		if idx+1 < nChunks { // the last chunk has no continuation to fork
			h = t.Fork(ranks, 0, model)
		}
		if h != nil {
			// Predict the accumulator's value at the join point.
			raw, _ := pred.Predict(0, 0)
			h.SetRegvarInt64(0, int64(raw))
			h.SetRegvarInt64(1, int64(idx+1))
			h.Start(func(c *Thread) uint32 {
				specAcc := body(c, int(c.GetRegvarInt64(1)), c.GetRegvarInt64(0))
				c.SaveRegvarInt64(2, specAcc)
				return 0
			})
		}
		acc = body(t, idx, acc)
		if h == nil {
			continue
		}
		// MUTLS_validate_local: was the prediction right?
		pred.Observe(0, 0, uint64(acc))
		t.ValidateRegvarInt64(ranks, 0, 0, acc)
		res := t.Join(ranks, 0)
		if res.Committed() {
			acc = res.RegvarInt64(2)
			// Keep the predictor's history aligned with the join-point
			// values it predicts: the adopted live-out is the next one.
			pred.Observe(0, 0, uint64(acc))
			idx++ // the speculation consumed the next chunk
		}
	}
	return acc
}
