package mutls

import (
	"repro/internal/core"
	"repro/internal/predict"
)

// This file implements speculative reduction: out-of-order speculation on
// the *continuation* of a chunked fold. The accumulator is live across the
// chunk boundary, so its value at the join point must be predicted at fork
// time (§IV-G4) and validated with MUTLS_validate_local at the join; a
// misprediction rolls the speculation back and the chunk re-executes
// inline with the true accumulator.

// ReduceOptions configures Reduce.
type ReduceOptions struct {
	// Model is the forking model of the continuation forks; the zero value
	// is OutOfOrder, the classic method-level continuation shape.
	Model Model
	// Predictor selects the accumulator value predictor; the zero value is
	// LastValue. Stride suits induction-like accumulators (constant
	// per-chunk increments).
	Predictor Predictor
	// Chunks, when non-nil, groups consecutive chunk indices into one
	// speculated continuation, resized from the feedback of earlier joins
	// (e.g. AdaptivePolicy). Nil keeps the default split: one index per
	// continuation.
	Chunks Chunker
}

// Reduce folds body over the chunks [0, nChunks) starting from init and
// returns the final accumulator. body(c, idx, acc) executes chunk idx on
// top of accumulator value acc and returns the updated accumulator; it must
// contain only TLS-instrumented work and must be deterministic in (idx,
// acc, simulated memory), since rolled-back chunks re-execute.
//
// While the non-speculative thread folds one group of chunks, a
// speculative thread folds the next group from a predicted accumulator;
// when the prediction validates, the join adopts the speculative live-out
// and the loop skips the group. Group bounds come from opts.Chunks (one
// index per group by default), decided on the non-speculative thread in
// sequential order — the continuation form of the adaptive chunk schedule.
func Reduce(t *Thread, nChunks int, init int64, opts ReduceOptions, body func(c *Thread, idx int, acc int64) int64) int64 {
	if nChunks <= 0 {
		return init
	}
	model := opts.Model
	if model == InOrder {
		// InOrder is the Model zero value and an in-order chain cannot
		// carry a predicted accumulator (each link would need the previous
		// link's live-out), so it maps to the out-of-order default.
		model = OutOfOrder
	}
	ck := opts.Chunks
	if ck == nil {
		ck = unitChunker{}
	}
	rt := t.Runtime()
	ctrl := ck.NewRun(nChunks, rt.NumCPUs())
	next := func(lo int) int {
		hi := ctrl.Next(lo)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > nChunks {
			hi = nChunks
		}
		return hi
	}
	base := rt.PointCounters(forPoint)
	observe := func(fb ChunkFeedback) {
		fb.Points = rt.PointCounters(forPoint).Sub(base)
		fb.Now = t.Now()
		ctrl.Observe(fb)
	}

	pred := predict.New(opts.Predictor)
	acc := init
	lo, hi := 0, next(0)
	// rolledBack carries the failed speculation of the current group, so
	// its single observation (like For's: Forked, not Committed, with the
	// inline re-execution latency) is emitted when the group is re-folded.
	var rolledBack *ChunkFeedback
	for lo < nChunks {
		ranks := []Rank{0}
		var h *core.ForkHandle
		specLo, specHi := hi, hi
		if hi < nChunks { // the last group has no continuation to fork
			specHi = next(hi)
			h = t.Fork(ranks, forPoint, model)
			if h != nil {
				// Predict the accumulator's value at the join point.
				raw, _ := pred.Predict(0, 0)
				h.SetRegvarInt64(0, int64(raw))
				h.SetRegvarInt64(1, int64(specLo))
				h.SetRegvarInt64(2, int64(specHi))
				h.Start(func(c *Thread) uint32 {
					specAcc := c.GetRegvarInt64(0)
					sLo := int(c.GetRegvarInt64(1))
					sHi := int(c.GetRegvarInt64(2))
					for i := sLo; i < sHi; i++ {
						specAcc = body(c, i, specAcc)
					}
					c.SaveRegvarInt64(3, specAcc)
					return 0
				})
			}
		}
		start := t.Now()
		for i := lo; i < hi; i++ {
			acc = body(t, i, acc)
		}
		inlineLatency := t.Now() - start
		// Every group is observed exactly once: a group whose speculation
		// rolled back reports that outcome with its inline re-execution
		// latency; any other inline group is a plain latency calibration.
		if rolledBack != nil {
			rolledBack.Latency = inlineLatency
			observe(*rolledBack)
			rolledBack = nil
		} else {
			observe(ChunkFeedback{Lo: lo, Hi: hi, Latency: inlineLatency})
		}
		if hi >= nChunks {
			break
		}
		if h == nil {
			// Fork refused: the decided group simply becomes the next
			// inline group.
			lo, hi = specLo, specHi
			continue
		}
		// MUTLS_validate_local: was the prediction right?
		pred.Observe(0, 0, uint64(acc))
		t.ValidateRegvarInt64(ranks, 0, 0, acc)
		res := t.Join(ranks, forPoint)
		if res.Committed() {
			acc = res.RegvarInt64(3)
			// Keep the predictor's history aligned with the join-point
			// values it predicts: the adopted live-out is the next one.
			pred.Observe(0, 0, uint64(acc))
			observe(ChunkFeedback{
				Lo: specLo, Hi: specHi, Forked: true, Committed: true,
				Latency:     res.Latency,
				ReadSetPeak: res.ReadSetPeak, WriteSetPeak: res.WriteSetPeak,
			})
			lo = specHi // the speculation consumed the next group
			if lo < nChunks {
				hi = next(lo)
			} else {
				hi = lo
			}
		} else {
			rolledBack = &ChunkFeedback{
				Lo: specLo, Hi: specHi, Forked: true,
				ReadSetPeak: res.ReadSetPeak, WriteSetPeak: res.WriteSetPeak,
			}
			lo, hi = specLo, specHi // re-execute the group inline
		}
	}
	return acc
}
