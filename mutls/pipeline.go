package mutls

import (
	"math"

	"repro/internal/predict"
)

// This file implements stage-parallel speculative pipelines, the
// DSWP-style decoupled shape of the related work: a stream of tokens flows
// through an ordered list of stages, and while the non-speculative thread
// executes a token's first stage, the downstream stages of the same token
// run speculatively, each from a *predicted* upstream live-out. Each stage
// is its own fork point (so the per-point live counters profile every
// stage separately), tokens are processed strictly in order, and the
// inter-stage word is validated at every join with MUTLS_validate_local —
// a misprediction, or a conflicting memory access, rolls the stage back
// and it re-executes inline with the true live-in, so the pipeline keeps
// the exact token-major sequential semantics:
//
//	for token { for stage { in = stage(token, in) } }
//
// The inter-stage word is what makes a pipeline speculate well: keep it
// structural (counts, offsets, cursors — values last-value/stride
// prediction can follow) and move the data itself through simulated
// memory, which the GlobalBuffer validates independently. Stages that
// consume memory written by an upstream stage should consume it with a
// token lag (stage s works on the block stage s-1 produced a token
// earlier, the classic software-pipelining skew), so the producing write
// is committed by the time the consuming stage speculates.

// Stage is one pipeline stage: it processes token `token`, consuming the
// upstream live-out `in` (for the first stage: the previous token's final
// live-out, making the pipeline a loop-carried chain) and returning its
// own live-out. It must contain only TLS-instrumented work and be
// deterministic in (token, in, simulated memory), since rolled-back stages
// re-execute.
type Stage func(c *Thread, token int, in uint64) uint64

// PipelineOptions configures Pipeline.
type PipelineOptions struct {
	// Model is the forking model of the stage forks; the zero value is
	// OutOfOrder (stages are independent continuations forked by the
	// non-speculative thread). InOrder cannot drive a pipeline — every
	// stage would need the previous stage's live-out before forking — and
	// maps to the out-of-order default, mirroring Reduce.
	Model Model
	// Predictor selects the inter-stage live-in predictor, keyed per
	// stage; the zero value is LastValue. Stride follows live-ins that
	// advance by a constant delta per token (block cursors, running
	// counts).
	Predictor Predictor
	// Float declares the inter-stage words to be float64 bit patterns
	// (math.Float64bits): prediction extrapolates in float arithmetic and
	// validation compares as floats, with RelTol as the optional relative
	// tolerance (see ReduceFloatOptions.RelTol — nonzero tolerance trades
	// exactness for commit rate).
	Float  bool
	RelTol float64
}

// Pipeline runs tokens [0, nTokens) through the stages in order and
// returns the final live-out word. For every token, stages[0] executes on
// the non-speculative thread while stages[1:] are forked speculatively —
// each at its own fork point, from a predicted live-in — and joined in
// stage order, validating each prediction against the actual upstream
// live-out. Stage forks are warm-gated exactly like Reduce continuations:
// until a stage's live-in history supports a real prediction, the stage
// runs inline (the first token, or two tokens for Stride, calibrate the
// predictors).
func Pipeline(t *Thread, nTokens int, init uint64, opts PipelineOptions, stages ...Stage) uint64 {
	nStages := len(stages)
	if nTokens <= 0 || nStages == 0 {
		return init
	}
	model := opts.Model
	if model == InOrder {
		model = OutOfOrder
	}
	rt := t.Runtime()
	// One fork point per speculated stage (stages[0] never forks); the
	// block is freed when the pipeline ends.
	points := rt.AllocPoints(nStages - 1)
	defer rt.FreePoints(points)
	maxPoint := 0
	for _, p := range points {
		if p > maxPoint {
			maxPoint = p
		}
	}
	ranks := make([]Rank, maxPoint+1)

	pred := predict.New(opts.Predictor)
	predictIn := func(s int) (uint64, bool) {
		if !pred.Warm(s, 0) {
			return 0, false
		}
		if opts.Float {
			v, ok := pred.PredictFloat64(s, 0)
			return math.Float64bits(v), ok
		}
		return pred.Predict(s, 0)
	}
	observeIn := func(s int, actual uint64) {
		if opts.Float {
			pred.ObserveFloat64(s, 0, math.Float64frombits(actual), opts.RelTol)
			return
		}
		pred.Observe(s, 0, actual)
	}
	validateIn := func(p int, actual uint64) {
		if opts.Float {
			t.ValidateRegvarFloat64Rel(ranks, p, 1, math.Float64frombits(actual), opts.RelTol)
			return
		}
		t.ValidateRegvarInt64(ranks, p, 1, int64(actual))
	}

	// One region closure per speculated stage: fetch (token, in), run the
	// stage, save the live-out.
	regions := make([]RegionFunc, nStages)
	for s := 1; s < nStages; s++ {
		stage := stages[s]
		regions[s] = func(c *Thread) uint32 {
			token := int(c.GetRegvarInt64(0))
			in := uint64(c.GetRegvarInt64(1))
			c.SaveRegvarInt64(2, int64(stage(c, token, in)))
			return 0
		}
	}

	forked := make([]bool, nStages)
	in := init
	for token := 0; token < nTokens; token++ {
		// Cooperative cancellation between tokens (see For).
		t.CancelPoint()
		// Fork the downstream stages in reverse order so the children
		// stack pops them in stage (join) order — the same logically-
		// later-subtrees-first discipline as tree-form recursion.
		for s := nStages - 1; s >= 1; s-- {
			predicted, ok := predictIn(s)
			if !ok {
				continue
			}
			if h := t.Fork(ranks, points[s-1], model); h != nil {
				h.SetRegvarInt64(0, int64(token))
				h.SetRegvarInt64(1, int64(predicted))
				h.Start(regions[s])
				forked[s] = true
			}
		}
		cur := stages[0](t, token, in)
		for s := 1; s < nStages; s++ {
			// cur is the actual live-in of stage s for this token: extend
			// the stage's prediction history before resolving its fork.
			observeIn(s, cur)
			if forked[s] {
				forked[s] = false
				validateIn(points[s-1], cur)
				res := t.Join(ranks, points[s-1])
				if res.Committed() {
					cur = uint64(res.RegvarInt64(2))
					continue
				}
			}
			cur = stages[s](t, token, cur)
		}
		in = cur
	}
	return in
}
