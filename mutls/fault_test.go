package mutls_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/mutls"
)

// faultModels is the full forking-model axis of the containment property
// tests.
var faultModels = []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed, mutls.MixedLinear}

// panicFill is forFill with sabotage: every speculative execution of a
// chunk with idx%4 == 1 panics. Containment turns each panic into a
// misspeculation — squash, then in-order re-execution (where Speculative()
// is false and the body completes) — so the checksum must still match the
// sequential result no matter the model or backend.
func panicFill(rt *mutls.Runtime, n, chunks int, model mutls.Model) int64 {
	var sum int64
	rt.Run(func(t *mutls.Thread) {
		arr := t.Alloc(8 * n)
		mutls.For(t, chunks, mutls.ForOptions{Model: model}, func(c *mutls.Thread, idx int) {
			if c.Speculative() && idx%4 == 1 {
				panic("speculative sabotage")
			}
			for i := idx; i < n; i += chunks {
				v := int64(i)*7 + 3
				c.Tick(4)
				c.StoreInt64(arr+mutls.Addr(8*i), v)
			}
		})
		for i := 0; i < n; i++ {
			sum += t.LoadInt64(arr + mutls.Addr(8*i))
		}
		t.Free(arr)
	})
	return sum
}

// TestForcedPanicMatchesSequential: the panic-as-misspeculation property
// over every forking model × GlobalBuffer backend.
func TestForcedPanicMatchesSequential(t *testing.T) {
	const n, chunks = 2048, 16
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*7 + 3
	}
	for _, model := range faultModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, backend := range mutls.Backends() {
				rt := newRuntime(t, 4, func(o *mutls.Options) {
					o.Buffering = mutls.Buffering{Backend: backend}
				})
				if got := panicFill(rt, n, chunks, model); got != want {
					t.Fatalf("backend %s: sum = %d, want %d", backend, got, want)
				}
				if f := rt.Stats().Faults; f.SpecPanics == 0 {
					t.Errorf("backend %s: no speculative panic recorded", backend)
				}
			}
		})
	}
}

// TestKernelPanicSurfacesTyped: a panic on the non-speculative thread
// surfaces from RunCtx as *mutls.KernelPanic and leaves the runtime
// reusable.
func TestKernelPanicSurfacesTyped(t *testing.T) {
	rt := newRuntime(t, 2, nil)
	_, err := rt.RunCtx(context.Background(), func(th *mutls.Thread) { panic("kernel boom") })
	var kp *mutls.KernelPanic
	if !errors.As(err, &kp) {
		t.Fatalf("RunCtx error %v (%T), want *mutls.KernelPanic", err, err)
	}
	if !strings.Contains(kp.Error(), "kernel boom") {
		t.Errorf("KernelPanic message %q", kp.Error())
	}
	// The runtime drained and is reusable: a clean run still verifies.
	const n, chunks = 1024, 8
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*7 + 3
	}
	if got := forFill(rt, n, chunks, mutls.InOrder); got != want {
		t.Fatalf("post-panic run sum = %d, want %d", got, want)
	}
}
