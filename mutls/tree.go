package mutls

import (
	"math"
	"sort"
)

// This file implements tree-form recursion speculation (the fft / matmult /
// nqueen / tsp shape): speculative regions fork subtrees and stop with
// SyncParent at their first join point, leaving the forked subtree
// descriptors in their saved locals (Figure 2(d)); the non-speculative
// driver joins the tree in sequential order, adopting each committed
// region's spawns and re-executing rolled-back subtrees inline.

// Task describes one subtree of a tree-form computation: its position in
// sequential execution order (Seq, with Span the width of its sequential
// interval, inside which the Seq keys of its own sub-tasks must nest) and
// up to four application parameters that let both the speculative region
// and the driver execute the subtree.
type Task struct {
	// Rank is the speculating CPU, filled in by TreeThread.Spawn. Rank 0
	// marks a driver-side bookkeeping entry (see TreeThread.Defer) with
	// nothing to join.
	Rank Rank
	// Seq keys the subtree's position in sequential execution order; Span
	// is the width of its interval. Sub-task keys must nest: a child's
	// [Seq, Seq+Span) lies within its parent's interval.
	Seq  int64
	Span int64
	// Args are the application parameters of the subtree.
	Args [4]int64
}

// Task regvar layout. Live-ins at fork: Args in slots 0..3, Seq and Span in
// 4..5. Saved locals at the stop: the subtree result in slot 0, the task
// count in slot 1, then taskSlots per task.
const (
	taskArgSlots   = 4
	taskSeqSlot    = 4
	taskSpanSlot   = 5
	treeResultSlot = 0
	treeCountSlot  = 1
	treeTaskBase   = 2
	taskSlots      = 7 // rank, seq, span, args[4]
)

// Tree drives tree-form speculation under a forking model — normally
// Mixed, the model the paper introduces for exactly this shape (§II).
type Tree struct {
	// Model is the forking model of every Spawn.
	Model Model
	// Body executes the subtree described by task on c, speculating
	// sub-subtrees through tt.Spawn and recording the subtree's merged
	// result (if any) with tt.SetResult*. It runs speculatively when the
	// task was spawned, and on the non-speculative thread when the driver
	// re-executes a rolled-back subtree — it must be deterministic in
	// (task, simulated memory).
	Body func(c *Thread, tt *TreeThread, task Task)
}

// TreeThread collects the tasks one region (or one driver-side execution)
// spawns, plus its result. Spawn order is the protocol's ordering
// discipline: speculate logically later subtrees first (new speculations by
// the same thread are logically earlier than its previous ones), then run
// the logically earliest part inline.
type TreeThread struct {
	tree   *Tree
	tasks  []Task
	result uint64
}

// capacity returns how many tasks a speculative region can carry in its
// saved locals. Driver-side collectors (the non-speculative thread) never
// save their task list, so they are unbounded.
func (tt *TreeThread) capacity(c *Thread) int {
	return (c.Runtime().Options().LBuf.RegSlots - treeTaskBase) / taskSlots
}

// Spawn tries to fork a speculative thread executing task's subtree. On
// success it records the task (with the child's rank) for the joining
// driver and returns true; on failure — no idle CPU, the model forbids
// this thread from forking, or the region's saved locals cannot carry
// another task descriptor — the caller must execute the subtree inline.
func (tt *TreeThread) Spawn(c *Thread, task Task) bool {
	if c.Speculative() && len(tt.tasks) >= tt.capacity(c) {
		return false
	}
	ranks := []Rank{0}
	h := c.Fork(ranks, 0, tt.tree.Model)
	if h == nil {
		return false
	}
	for i, a := range task.Args {
		h.SetRegvarInt64(i, a)
	}
	h.SetRegvarInt64(taskSeqSlot, task.Seq)
	h.SetRegvarInt64(taskSpanSlot, task.Span)
	h.Start(tt.tree.region())
	task.Rank = ranks[0]
	tt.tasks = append(tt.tasks, task)
	return true
}

// Defer records a task with Rank 0 — a driver-side bookkeeping entry (such
// as a combine deferred until earlier speculations join) that is carried
// through the saved locals without speculating anything. Unlike Spawn it
// cannot refuse (dropping the entry would corrupt the driver's completion
// order), so a speculative region exceeding its saved-locals capacity is a
// static protocol violation: raise Options.RegSlots.
func (tt *TreeThread) Defer(c *Thread, task Task) {
	if c.Speculative() && len(tt.tasks) >= tt.capacity(c) {
		panic("mutls: Tree region task list exceeds the LocalBuffer capacity; raise Options.RegSlots")
	}
	task.Rank = 0
	tt.tasks = append(tt.tasks, task)
}

// Pending returns how many tasks this thread has recorded so far, letting a
// Body detect whether a recursive call deferred work.
func (tt *TreeThread) Pending() int { return len(tt.tasks) }

// SetResultInt64 records the subtree's int64 result, carried to the driver
// in the saved locals.
func (tt *TreeThread) SetResultInt64(v int64) { tt.result = uint64(v) }

// SetResultFloat64 records the subtree's float64 result.
func (tt *TreeThread) SetResultFloat64(v float64) { tt.result = f64bits(v) }

// TreeResult is a completed subtree's result, decoded from the committed
// region's saved locals or taken from an inline re-execution.
type TreeResult struct{ bits uint64 }

// Int64 returns the result recorded with SetResultInt64.
func (r TreeResult) Int64() int64 { return int64(r.bits) }

// Float64 returns the result recorded with SetResultFloat64.
func (r TreeResult) Float64() float64 { return f64from(r.bits) }

// region builds the speculative continuation executing one task: decode the
// live-ins, run Body with a fresh task collector, save the result and the
// spawned tasks, and — when subtrees were spawned — hand the continuation
// to the parent chain at the region's first join point (synchronization
// counter 1, Figure 2(d)).
func (tr *Tree) region() RegionFunc {
	return func(c *Thread) uint32 {
		var task Task
		for i := range task.Args {
			task.Args[i] = c.GetRegvarInt64(i)
		}
		task.Seq = c.GetRegvarInt64(taskSeqSlot)
		task.Span = c.GetRegvarInt64(taskSpanSlot)
		tt := &TreeThread{tree: tr}
		tr.Body(c, tt, task)
		c.SaveRegvarInt64(treeResultSlot, int64(tt.result))
		saveTasks(c, tt.tasks)
		if len(tt.tasks) == 0 {
			return 0
		}
		c.SyncParent(1)
		return 0 // not reached speculatively
	}
}

// saveTasks stores a region's task list in its saved locals before the
// SyncParent stop.
func saveTasks(c *Thread, tasks []Task) {
	c.SaveRegvarInt64(treeCountSlot, int64(len(tasks)))
	for i, task := range tasks {
		base := treeTaskBase + taskSlots*i
		c.SaveRegvarInt64(base, int64(task.Rank))
		c.SaveRegvarInt64(base+1, task.Seq)
		c.SaveRegvarInt64(base+2, task.Span)
		for j, a := range task.Args {
			c.SaveRegvarInt64(base+3+j, a)
		}
	}
}

// Collect runs fn on the non-speculative thread with a fresh task collector
// and returns the tasks it spawned or deferred, sorted in sequential (Seq)
// order. It is the driver-side entry point: the root of the computation
// runs inside fn, speculating subtrees through the collector, and the
// returned tasks are then completed with Drive (or Join for custom
// completion orders).
func (tr *Tree) Collect(t *Thread, fn func(tt *TreeThread)) []Task {
	if t.Speculative() {
		panic("mutls: Tree.Collect on a speculative thread — collectors belong to the driver")
	}
	tt := &TreeThread{tree: tr}
	fn(tt)
	sortTasks(tt.tasks)
	return tt.tasks
}

// Exec re-executes a task's subtree inline on the joining thread via Body,
// returning any fresh speculations it made (Seq-sorted) and its result.
func (tr *Tree) Exec(t *Thread, task Task) ([]Task, TreeResult) {
	tt := &TreeThread{tree: tr}
	tr.Body(t, tt, task)
	sortTasks(tt.tasks)
	return tt.tasks, TreeResult{bits: tt.result}
}

// Join synchronizes with one spawned task. On commit it returns the task's
// own sub-tasks (decoded from the saved locals, Seq-sorted), its result and
// true; on rollback it returns false and the caller must re-execute the
// subtree (normally with Exec). Joins must follow sequential order: among
// all outstanding tasks, the smallest Seq joins first.
func (tr *Tree) Join(t *Thread, task Task) ([]Task, TreeResult, bool) {
	ranks := []Rank{task.Rank}
	res := t.Join(ranks, 0)
	if !res.Committed() {
		return nil, TreeResult{}, false
	}
	n := int(res.RegvarInt64(treeCountSlot))
	sub := make([]Task, n)
	for i := range sub {
		base := treeTaskBase + taskSlots*i
		sub[i].Rank = Rank(res.RegvarInt64(base))
		sub[i].Seq = res.RegvarInt64(base + 1)
		sub[i].Span = res.RegvarInt64(base + 2)
		for j := range sub[i].Args {
			sub[i].Args[j] = res.RegvarInt64(base + 3 + j)
		}
	}
	sortTasks(sub)
	return sub, TreeResult{bits: uint64(res.RegvarInt64(treeResultSlot))}, true
}

// Drive completes the speculated tree in sequential order. For every task
// it joins the child; on commit the child's own tasks are spliced in and
// onResult (if non-nil) consumes the committed result; on rollback the
// subtree re-executes inline via Body — possibly speculating afresh — and
// onResult consumes the re-executed result. Rank-0 bookkeeping tasks are
// skipped; computations that interleave driver work with joins (like fft's
// post-order combines) build their own completion loop from Join and Exec
// instead.
func (tr *Tree) Drive(t *Thread, roots []Task, onResult func(task Task, res TreeResult)) {
	queue := append([]Task(nil), roots...)
	sortTasks(queue)
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		if task.Rank == 0 {
			continue
		}
		sub, res, committed := tr.Join(t, task)
		if !committed {
			sub, res = tr.Exec(t, task)
		}
		if onResult != nil {
			onResult(task, res)
		}
		if len(sub) > 0 {
			// Fresh and adopted tasks sit above the remaining queue on the
			// children stack: join them first.
			queue = append(sub, queue...)
		}
	}
}

func sortTasks(tasks []Task) {
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Seq < tasks[j].Seq })
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }

func f64from(b uint64) float64 { return math.Float64frombits(b) }
