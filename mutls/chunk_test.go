package mutls_test

import (
	"reflect"
	"testing"

	"repro/mutls"
)

// allModels includes the MixedLinear ablation baseline, unlike the main
// test file's three-model set.
var allModels = []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed, mutls.MixedLinear}

// --- ChunkPolicy.Bounds regression (divide-by-zero / empty-chunk fix) ---

// TestBoundsNeverPanics sweeps Bounds over degenerate inputs, including
// the chunks <= 0 case that used to divide by zero and out-of-range
// indices, asserting sane clamped bounds everywhere.
func TestBoundsNeverPanics(t *testing.T) {
	p := mutls.ChunkPolicy{}
	for _, n := range []int{-5, 0, 1, 7, 64, 1000} {
		for _, chunks := range []int{-3, 0, 1, 2, 7, 64, 1000} {
			for idx := -2; idx <= chunks+2; idx++ {
				lo, hi := p.Bounds(n, chunks, idx)
				limit := n
				if limit < 0 {
					limit = 0
				}
				if lo > hi || lo < 0 || hi > limit {
					t.Fatalf("Bounds(%d, %d, %d) = [%d, %d): out of range", n, chunks, idx, lo, hi)
				}
			}
		}
	}
}

// TestBoundsTileExactly: for every valid chunk count the chunks are
// contiguous, cover [0, n) exactly, and differ in size by at most one
// (the remainder is spread, not dumped on the last chunk).
func TestBoundsTileExactly(t *testing.T) {
	p := mutls.ChunkPolicy{}
	for _, n := range []int{1, 7, 64, 1000} {
		for _, chunks := range []int{1, 2, 7, 63, 64, n, n + 13} {
			prev, minSz, maxSz := 0, n+1, 0
			for idx := 0; idx < chunks; idx++ {
				lo, hi := p.Bounds(n, chunks, idx)
				if lo != prev {
					t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, want %d", n, chunks, idx, lo, prev)
				}
				prev = hi
				if sz := hi - lo; sz > 0 {
					if sz < minSz {
						minSz = sz
					}
					if sz > maxSz {
						maxSz = sz
					}
				}
			}
			if prev != n {
				t.Fatalf("n=%d chunks=%d: chunks cover [0, %d), want [0, %d)", n, chunks, prev, n)
			}
			if chunks <= n && maxSz-minSz > 1 {
				t.Fatalf("n=%d chunks=%d: chunk sizes range [%d, %d], want balanced", n, chunks, minSz, maxSz)
			}
		}
	}
}

// --- For / ForRange degenerate inputs across all four forking models ---

// fillSum runs a ForRange array fill and returns the checksum read back
// after all joins.
func fillSum(rt *mutls.Runtime, n int, opts mutls.ForOptions) int64 {
	var sum int64
	rt.Run(func(t *mutls.Thread) {
		arr := t.Alloc(8 * (n + 1))
		mutls.ForRange(t, n, opts, func(c *mutls.Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Tick(4)
				c.StoreInt64(arr+mutls.Addr(8*i), int64(i)*7+3)
			}
		})
		for i := 0; i < n; i++ {
			sum += t.LoadInt64(arr + mutls.Addr(8*i))
		}
		t.Free(arr)
	})
	return sum
}

func wantFill(n int) int64 {
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*7 + 3
	}
	return want
}

// TestForRangeDegenerateInputs: n smaller than MinPerChunk, n smaller
// than the chunk count, no speculative CPUs at all, and single-chunk runs
// must all preserve sequential semantics without panicking, under every
// forking model.
func TestForRangeDegenerateInputs(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		cpus   int
		policy mutls.ChunkPolicy
	}{
		{"n<MinPerChunk", 3, 4, mutls.ChunkPolicy{MaxChunks: 8, MinPerChunk: 16}},
		{"n<chunks", 5, 4, mutls.ChunkPolicy{MaxChunks: 64}},
		{"zeroCPUs", 100, 0, mutls.ChunkPolicy{MaxChunks: 8}},
		{"singleChunk", 40, 4, mutls.ChunkPolicy{MaxChunks: 1}},
		{"n=1", 1, 4, mutls.ChunkPolicy{}},
		{"n=0", 0, 4, mutls.ChunkPolicy{}},
	}
	for _, model := range allModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, tc := range cases {
				rt := newRuntime(t, tc.cpus, nil)
				opts := mutls.ForOptions{Model: model, Policy: tc.policy}
				if got := fillSum(rt, tc.n, opts); got != wantFill(tc.n) {
					t.Errorf("%s: ForRange sum = %d, want %d", tc.name, got, wantFill(tc.n))
				}
				rt.Close()
			}
		})
	}
}

// TestForDegenerateInputs: the chunk-number form of the same degeneracies.
func TestForDegenerateInputs(t *testing.T) {
	for _, model := range allModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, tc := range []struct{ nChunks, cpus int }{
				{0, 4}, {1, 4}, {1, 0}, {3, 0}, {64, 1},
			} {
				rt := newRuntime(t, tc.cpus, nil)
				var sum int64
				rt.Run(func(t0 *mutls.Thread) {
					arr := t0.Alloc(8 * (tc.nChunks + 1))
					mutls.For(t0, tc.nChunks, mutls.ForOptions{Model: model}, func(c *mutls.Thread, idx int) {
						c.Tick(2)
						c.StoreInt64(arr+mutls.Addr(8*idx), int64(idx)+1)
					})
					for i := 0; i < tc.nChunks; i++ {
						sum += t0.LoadInt64(arr + mutls.Addr(8*i))
					}
					t0.Free(arr)
				})
				want := int64(tc.nChunks) * int64(tc.nChunks+1) / 2
				if sum != want {
					t.Errorf("nChunks=%d cpus=%d: sum = %d, want %d", tc.nChunks, tc.cpus, sum, want)
				}
				rt.Close()
			}
		})
	}
}

// --- AdaptivePolicy ---

// TestAdaptiveMatchesSequential: the feedback-driven chunker preserves
// sequential semantics across models, CPU counts and forced rollbacks.
func TestAdaptiveMatchesSequential(t *testing.T) {
	const n = 4096
	want := wantFill(n)
	for _, model := range allModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, cpus := range []int{0, 1, 4} {
				for _, prob := range []float64{0, 0.3} {
					rt := newRuntime(t, cpus, func(o *mutls.Options) {
						o.RollbackProb = prob
						o.Seed = 11
					})
					opts := mutls.ForOptions{Model: model, Chunker: mutls.AdaptivePolicy{}}
					if got := fillSum(rt, n, opts); got != want {
						t.Errorf("cpus=%d prob=%v: sum = %d, want %d", cpus, prob, got, want)
					}
					rt.Close()
				}
			}
		})
	}
}

// TestAdaptiveForGroupsIndices: with a Chunker, For groups consecutive
// indices into one speculation but still visits each exactly once.
func TestAdaptiveForGroupsIndices(t *testing.T) {
	const nChunks = 64
	rt := newRuntime(t, 4, nil)
	var bad int
	rt.Run(func(t0 *mutls.Thread) {
		arr := t0.Alloc(8 * nChunks)
		opts := mutls.ForOptions{Model: mutls.InOrder, Chunker: mutls.AdaptivePolicy{Start: 4}}
		mutls.For(t0, nChunks, opts, func(c *mutls.Thread, idx int) {
			c.Tick(16)
			c.StoreInt64(arr+mutls.Addr(8*idx), c.LoadInt64(arr+mutls.Addr(8*idx))+1)
		})
		for i := 0; i < nChunks; i++ {
			if t0.LoadInt64(arr+mutls.Addr(8*i)) != 1 {
				bad++
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d indices not visited exactly once", bad)
	}
}

// recorder wraps a Chunker and records every schedule it emits.
type recorder struct {
	inner mutls.Chunker
	runs  [][]int
}

func (r *recorder) NewRun(n, cpus int) mutls.ChunkController {
	r.runs = append(r.runs, nil)
	return &recRun{inner: r.inner.NewRun(n, cpus), r: r, idx: len(r.runs) - 1}
}

type recRun struct {
	inner mutls.ChunkController
	r     *recorder
	idx   int
}

func (x *recRun) Next(lo int) int {
	hi := x.inner.Next(lo)
	x.r.runs[x.idx] = append(x.r.runs[x.idx], hi)
	return hi
}

func (x *recRun) Observe(fb mutls.ChunkFeedback) { x.inner.Observe(fb) }

// TestAdaptiveDeterministicSchedule: under virtual timing on a single
// speculative CPU (where the execution itself is deterministic), the same
// seed must reproduce the same chunk schedule, including under forced
// rollbacks that exercise the shrink/grow paths.
func TestAdaptiveDeterministicSchedule(t *testing.T) {
	schedule := func() [][]int {
		rec := &recorder{inner: mutls.AdaptivePolicy{Window: 2}}
		rt := newRuntime(t, 1, func(o *mutls.Options) {
			o.RollbackProb = 0.3
			o.Seed = 42
		})
		defer rt.Close()
		opts := mutls.ForOptions{Model: mutls.InOrder, Chunker: rec}
		fillSum(rt, 4096, opts)
		return rec.runs
	}
	a, b := schedule(), schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different chunk schedules:\n%v\n%v", a, b)
	}
	if len(a) != 1 || len(a[0]) < 2 {
		t.Fatalf("unexpected schedule shape: %v", a)
	}
}

// TestAdaptiveShrinksUnderBufferPressure: with a GlobalBuffer far too
// small for the static split's chunks, every static speculation
// overflow-rolls-back, while an adaptive policy with a matching pressure
// threshold shrinks chunks until they fit and recovers commits with far
// fewer rollbacks. (Virtual runtimes are not compared: they depend on
// real-time fork availability and are too noisy under parallel tests.)
func TestAdaptiveShrinksUnderBufferPressure(t *testing.T) {
	const n = 4096
	run := func(ck mutls.Chunker) (mutls.Cost, int, int, int64) {
		rt, err := mutls.New(mutls.Options{
			CPUs: 4, CollectStats: true, HeapBytes: 1 << 20,
			Buffering: mutls.Buffering{LogWords: 5, OverflowCap: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		var sum int64
		tn, runErr := rt.Run(func(t0 *mutls.Thread) {
			arr := t0.Alloc(8 * n)
			opts := mutls.ForOptions{Model: mutls.InOrder, Chunker: ck}
			mutls.ForRange(t0, n, opts, func(c *mutls.Thread, lo, hi int) {
				for i := lo; i < hi; i++ {
					c.Tick(64)
					c.StoreInt64(arr+mutls.Addr(8*i), int64(i)*7+3)
				}
			})
			for i := 0; i < n; i++ {
				sum += t0.LoadInt64(arr + mutls.Addr(8*i))
			}
			t0.Free(arr)
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		s := rt.Stats()
		return tn, s.Commits, s.Rollbacks, sum
	}
	adaptive := mutls.AdaptivePolicy{PressureWords: 20, Window: 2}
	_, staticCommits, staticRollbacks, staticSum := run(nil)
	_, adaptCommits, adaptRollbacks, adaptSum := run(adaptive)
	if staticSum != wantFill(n) || adaptSum != wantFill(n) {
		t.Fatalf("checksums diverged: static %d adaptive %d want %d", staticSum, adaptSum, wantFill(n))
	}
	// The static 64-index chunks write 64 words into 32-word maps with 8
	// overflow slots: every speculation must overflow and roll back.
	if staticCommits != 0 || staticRollbacks == 0 {
		t.Fatalf("static split under tiny buffer: commits=%d rollbacks=%d, want a pure rollback storm",
			staticCommits, staticRollbacks)
	}
	if adaptCommits == 0 {
		t.Fatal("adaptive policy never shrank into committable chunks")
	}
	if adaptRollbacks >= staticRollbacks {
		t.Fatalf("adaptive rollbacks (%d) not below the static storm's (%d)", adaptRollbacks, staticRollbacks)
	}
}

// TestReduceWithAdaptiveChunks: grouped continuations preserve the fold
// result across predictors and rollbacks.
func TestReduceWithAdaptiveChunks(t *testing.T) {
	const n, chunks = 1 << 12, 64
	want := int64(7 * n)
	for _, prob := range []float64{0, 1.0} {
		rt := newRuntime(t, 4, func(o *mutls.Options) {
			o.RollbackProb = prob
			o.Seed = 3
		})
		opts := mutls.ReduceOptions{Predictor: mutls.Stride, Chunks: mutls.AdaptivePolicy{Start: 4}}
		if got := reduceSum(rt, n, chunks, opts); got != want {
			t.Fatalf("prob=%v: Reduce = %d, want %d", prob, got, want)
		}
		rt.Close()
	}
}

// --- Live point counters (the mid-run feedback surface) ---

// TestPointCountersMidRun: the counters are readable from the
// non-speculative thread while the run is still in progress, reflect the
// loop that just joined, and clear with ResetStats.
func TestPointCountersMidRun(t *testing.T) {
	rt := newRuntime(t, 4, nil)
	var mid mutls.PointCounters
	rt.Run(func(t0 *mutls.Thread) {
		arr := t0.Alloc(8 * 4096)
		mutls.ForRange(t0, 4096, mutls.ForOptions{Model: mutls.InOrder}, func(c *mutls.Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Tick(4)
				c.StoreInt64(arr+mutls.Addr(8*i), 1)
			}
		})
		mid = rt.PointCounters(0) // mid-run: the Run has not returned yet
		t0.Free(arr)
	})
	if mid.Commits == 0 {
		t.Fatal("no commits visible mid-run")
	}
	if mid.CommitLatency <= 0 || mid.MeanCommitLatency() <= 0 {
		t.Fatalf("commit latency not tracked: %+v", mid)
	}
	if mid.WriteSetPeak == 0 {
		t.Fatalf("write-set peak not tracked: %+v", mid)
	}
	if got := rt.PointCounters(0); got.Commits < mid.Commits {
		t.Fatalf("counters went backwards: %+v then %+v", mid, got)
	}
	if out := rt.PointCounters(-1); out != (mutls.PointCounters{}) {
		t.Fatalf("out-of-range point returned %+v", out)
	}
	rt.ResetStats()
	if got := rt.PointCounters(0); got.Executions() != 0 {
		t.Fatalf("ResetStats left point counters %+v", got)
	}
}
