package mutls

import (
	"sync/atomic"

	"repro/internal/core"
)

// This file implements loop-level speculation with chained in-order forks,
// a direct translation of the paper's transformed loop code: each chunk's
// region forks the next chunk before doing its own work; the
// non-speculative thread joins the chain in order, restoring the chained
// rank from the saved locals and re-executing rolled-back chunks inline.
//
// Chunk bounds are no longer precomputed: a ChunkController owned by the
// non-speculative thread decides each chunk's [lo, hi) as the schedule is
// needed and publishes it through a small atomic ring that the chained
// forks read. The controller observes every joined chunk's outcome, which
// is what lets AdaptivePolicy resize chunks mid-run.

// ChunkPolicy decides how an index space [0, n) is cut into speculated
// chunks. The zero value selects the paper's workload distribution: up to
// 64 chunks, at least one index per chunk. ChunkPolicy implements Chunker
// (ignoring feedback); AdaptivePolicy is the feedback-driven alternative.
type ChunkPolicy struct {
	// MaxChunks caps the number of chunks. Zero selects 64, the paper's
	// fixed split (which is why the Figure 3 curves plateau between 32 and
	// 63 CPUs and jump at 64).
	MaxChunks int
	// MinPerChunk is the smallest number of indices worth a fork; chunk
	// counts are reduced until every chunk holds at least this many. Zero
	// selects 1.
	MinPerChunk int
}

// Chunks returns the number of chunks the policy cuts [0, n) into.
func (p ChunkPolicy) Chunks(n int) int {
	maxChunks := p.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 64
	}
	per := p.MinPerChunk
	if per <= 0 {
		per = 1
	}
	chunks := n / per
	if chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// Bounds returns the half-open index range [lo, hi) of chunk idx when
// [0, n) is cut into the given number of contiguous chunks. The remainder
// of n/chunks is spread one index each over the first chunks rather than
// dumped on the last. Out-of-range arguments are clamped to sane empty
// bounds instead of panicking: chunks below 1 is treated as one chunk,
// idx below 0 yields [0, 0), idx at or past chunks yields [n, n), and
// when chunks exceeds n the chunks past index n are empty.
func (p ChunkPolicy) Bounds(n, chunks, idx int) (lo, hi int) {
	if n < 0 {
		n = 0
	}
	if chunks < 1 {
		chunks = 1
	}
	if idx < 0 {
		return 0, 0
	}
	if idx >= chunks {
		return n, n
	}
	per, rem := n/chunks, n%chunks
	lo = idx * per
	hi = lo + per
	// The first rem chunks carry one extra index.
	if idx < rem {
		lo += idx
		hi += idx + 1
	} else {
		lo += rem
		hi += rem
	}
	return lo, hi
}

// ForOptions configures For and ForRange.
type ForOptions struct {
	// Model is the forking model of the chunk forks; the zero value is
	// InOrder, the model the paper uses for loop-level speculation.
	Model Model
	// Policy cuts the index space statically (ForRange only; ignored when
	// Chunker is set).
	Policy ChunkPolicy
	// Chunker, when non-nil, decides chunk bounds dynamically with
	// feedback from joined chunks (e.g. AdaptivePolicy). For ForRange it
	// overrides Policy; for For it groups consecutive chunk indices into
	// one speculation (the default remains one fork per index).
	Chunker Chunker
	// PollEvery, when positive, makes speculated chunks poll CheckPoint
	// after every PollEvery indices (the paper inserts MUTLS_check_point
	// inside loops so "the non-speculative thread never waits long"). A
	// thread whose poll reports it must stop — its parent signalled the
	// join, or a hash-conflict park (gbuf.Conflict) obliges it to wait —
	// saves its progress and stops early instead of draining the chunk;
	// the joining thread commits the partial work and runs the remainder
	// inline. A squashed thread's poll rolls it back on the spot. Zero
	// disables polling (chunks always run to completion).
	PollEvery int
}

// pollStopCounter is the synchronization counter a region returns when a
// CheckPoint poll stopped it mid-chunk; the resume index travels in
// regvar slot 4.
const pollStopCounter = 1

// For executes body(c, idx) for idx in [0, nChunks) under loop-level
// speculation. body must contain only TLS-instrumented work: memory access
// through c's Load*/Store*, pure compute charged with c.Tick. Chunks are
// speculated with chained forks — the transformed shape of the paper's
// Figure 2 — and rolled-back or never-forked chunks are re-executed inline
// by the joining thread, so the loop's sequential semantics are preserved
// under any forking model and any number of CPUs.
//
// By default every index is its own speculation, the paper's contract.
// With opts.Chunker set, consecutive indices are grouped into one
// speculation per controller chunk, so an adaptive policy can trade fork
// overhead against parallelism at runtime.
func For(t *Thread, nChunks int, opts ForOptions, body func(c *Thread, idx int)) {
	if nChunks <= 0 {
		return
	}
	ck := opts.Chunker
	if ck == nil {
		ck = unitChunker{}
	}
	driveChunks(t, nChunks, opts.Model, ck, opts.PollEvery, func(c *Thread, lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			body(c, idx)
		}
	})
}

// ForRange executes body(c, lo, hi) over contiguous sub-ranges covering
// [0, n), cut by the chunker (opts.Chunker, falling back to the static
// opts.Policy), under loop-level speculation. It is the range form of For
// for loops whose natural unit is an index interval rather than a chunk
// number.
func ForRange(t *Thread, n int, opts ForOptions, body func(c *Thread, lo, hi int)) {
	if n <= 0 {
		return
	}
	ck := opts.Chunker
	if ck == nil {
		ck = opts.Policy
	}
	driveChunks(t, n, opts.Model, ck, opts.PollEvery, body)
}

// driveChunks is the loop controller shared by For and ForRange: it walks
// [0, n) deciding each chunk's bounds through the ChunkController at the
// moment the chunk is first needed, keeps a bounded window of decided
// chunks published for the chained forks, joins the chain in order and
// feeds every joined chunk's outcome back to the controller.
//
// The schedule ring is the one piece of shared state: slots are packed
// (lo<<32|hi) words written by the non-speculative thread and read by
// chained forks, all atomically. The window invariant decided-joined <=
// window guarantees a slot is never rewritten while a live chain thread
// can still read it; a thread that was already squashed may read a
// recycled slot, but its forks are never adopted by the chain and their
// buffers are discarded, so a stale read wastes work without affecting
// the result.
func driveChunks(t *Thread, n int, model Model, ck Chunker, poll int, body func(c *Thread, lo, hi int)) {
	if n > 1<<31-1 {
		// Chunk bounds are packed (lo<<32 | hi) into one ring word; a
		// larger index space would silently corrupt them.
		panic("mutls: loop bound exceeds 2^31-1 indices")
	}
	rt := t.Runtime()
	cpus := rt.NumCPUs()
	ctrl := ck.NewRun(n, cpus)
	// Each run speculates on its own fork/join point, so the PointCounters
	// deltas feeding the chunk controller never mix rollback signals with a
	// nested run started from this loop's inline body (or any other driver
	// overlapping this one). The id is freed when the run ends, so only
	// more than MaxPoints *simultaneously live* runs can exhaust the
	// namespace (counted in Summary.PointsExhausted).
	point := rt.AllocPoint()
	defer rt.FreePoint(point)

	window := cpus + 2
	if window < 2 {
		window = 2
	}
	ring := make([]atomic.Uint64, window)
	var published atomic.Int64

	decided, covered, joined := 0, 0, 0
	// decide extends the schedule while coverage remains and the window
	// has room, clamping the controller's bounds into (lo, n].
	decide := func() {
		for covered < n && decided-joined < window {
			hi := ctrl.Next(covered)
			if hi <= covered {
				hi = covered + 1
			}
			if hi > n {
				hi = n
			}
			ring[decided%window].Store(uint64(covered)<<32 | uint64(hi))
			decided++
			covered = hi
			published.Store(int64(decided))
		}
	}
	boundsOf := func(seq int) (lo, hi int) {
		v := ring[seq%window].Load()
		return int(v >> 32), int(v & 0xFFFFFFFF)
	}

	var region RegionFunc
	fork := func(c *Thread, ranks []Rank, seq int) {
		if int64(seq) >= published.Load() {
			return
		}
		lo, hi := boundsOf(seq)
		if h := c.Fork(ranks, point, model); h != nil {
			h.SetRegvarInt64(0, int64(seq))
			h.SetRegvarInt64(1, int64(lo))
			h.SetRegvarInt64(2, int64(hi))
			h.Start(region)
		}
	}
	region = func(c *Thread) uint32 {
		seq := int(c.GetRegvarInt64(0))
		lo := int(c.GetRegvarInt64(1))
		hi := int(c.GetRegvarInt64(2))
		ranks := make([]Rank, point+1)
		fork(c, ranks, seq+1)
		if poll > 0 {
			// Sub-step the chunk, polling between steps: a stop request
			// (parent join signal or conflict park) saves the progress
			// index and stops the region early; the joining thread commits
			// the prefix and completes the remainder inline. A squashed
			// thread's poll never returns — it rolls back on the spot.
			for cur := lo; cur < hi; {
				next := cur + poll
				if next > hi {
					next = hi
				}
				body(c, cur, next)
				cur = next
				if cur < hi && c.CheckPoint() {
					c.SaveRegvarInt64(3, int64(ranks[point]))
					c.SaveRegvarInt64(4, int64(cur))
					return pollStopCounter
				}
			}
		} else {
			body(c, lo, hi)
		}
		// The chained ranks array is live at the join point: save it for
		// the joining thread (paper §IV-D).
		c.SaveRegvarInt64(3, int64(ranks[point]))
		return 0
	}

	base := rt.PointCounters(point)
	observe := func(fb ChunkFeedback) {
		fb.Points = rt.PointCounters(point).Sub(base)
		fb.Now = t.Now()
		ctrl.Observe(fb)
	}

	decide()
	mark := t.ChildMark()
	ranks := make([]Rank, point+1)
	fork(t, ranks, 1)
	lo, hi := boundsOf(0)
	start := t.Now()
	body(t, lo, hi)
	// The first chunk always runs non-speculatively; its inline latency
	// calibrates the controller's per-index work estimate.
	observe(ChunkFeedback{Lo: lo, Hi: hi, Latency: t.Now() - start})
	joined = 1
	decide()

	for joined < decided {
		// Cooperative cancellation: a cancelled run (RunCtx deadline) stops
		// driving the chain here; outstanding speculation is squashed by
		// the run's drain.
		t.CancelPoint()
		seq := joined
		lo, hi := boundsOf(seq)
		res := t.Join(ranks, point)
		if res.Committed() {
			ranks[point] = Rank(res.RegvarInt64(3))
			latency := res.Latency
			if res.Counter == pollStopCounter {
				// The chunk stopped early at a poll (join signal or
				// conflict park): its prefix just committed; finish the
				// remainder inline before joining further down the chain.
				done := int(res.RegvarInt64(4))
				start := t.Now()
				body(t, done, hi)
				latency += t.Now() - start
			}
			observe(ChunkFeedback{
				Lo: lo, Hi: hi, Forked: true, Committed: true,
				Latency:     latency,
				ReadSetPeak: res.ReadSetPeak, WriteSetPeak: res.WriteSetPeak,
			})
		} else {
			// Rolled back or never forked: run the chunk inline,
			// re-forking the rest of the chain where the model allows. A
			// rollback abandons the downstream chain adopted from the
			// rolled-back thread; squash it so its CPUs are reclaimable
			// instead of stranded until the end of the run.
			if res.Status == core.JoinRolledBack {
				t.SquashChildren(mark)
			}
			ranks[point] = 0
			fork(t, ranks, seq+1)
			start := t.Now()
			body(t, lo, hi)
			observe(ChunkFeedback{
				Lo: lo, Hi: hi,
				Forked:      res.Status != core.JoinNotForked,
				Latency:     t.Now() - start,
				ReadSetPeak: res.ReadSetPeak, WriteSetPeak: res.WriteSetPeak,
			})
		}
		joined++
		decide()
	}
}
