package mutls

// This file implements loop-level speculation with chained in-order forks,
// a direct translation of the paper's transformed loop code: each chunk's
// region forks the next chunk before doing its own work; the
// non-speculative thread joins the chain in order, restoring the chained
// rank from the saved locals and re-executing rolled-back chunks inline.

// ChunkPolicy decides how an index space [0, n) is cut into speculated
// chunks. The zero value selects the paper's workload distribution: up to
// 64 chunks, at least one index per chunk.
type ChunkPolicy struct {
	// MaxChunks caps the number of chunks. Zero selects 64, the paper's
	// fixed split (which is why the Figure 3 curves plateau between 32 and
	// 63 CPUs and jump at 64).
	MaxChunks int
	// MinPerChunk is the smallest number of indices worth a fork; chunk
	// counts are reduced until every chunk holds at least this many. Zero
	// selects 1.
	MinPerChunk int
}

// Chunks returns the number of chunks the policy cuts [0, n) into.
func (p ChunkPolicy) Chunks(n int) int {
	maxChunks := p.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 64
	}
	per := p.MinPerChunk
	if per <= 0 {
		per = 1
	}
	chunks := n / per
	if chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// Bounds returns the half-open index range [lo, hi) of chunk idx when
// [0, n) is cut into the given number of contiguous chunks; the last chunk
// absorbs the remainder.
func (p ChunkPolicy) Bounds(n, chunks, idx int) (lo, hi int) {
	per := n / chunks
	lo = idx * per
	hi = lo + per
	if idx == chunks-1 {
		hi = n
	}
	return lo, hi
}

// ForOptions configures For and ForRange.
type ForOptions struct {
	// Model is the forking model of the chunk forks; the zero value is
	// InOrder, the model the paper uses for loop-level speculation.
	Model Model
	// Policy cuts the index space (ForRange only).
	Policy ChunkPolicy
}

// For executes body(c, idx) for idx in [0, nChunks) under loop-level
// speculation. body must contain only TLS-instrumented work: memory access
// through c's Load*/Store*, pure compute charged with c.Tick. Chunks are
// speculated with chained forks — the transformed shape of the paper's
// Figure 2 — and rolled-back or never-forked chunks are re-executed inline
// by the joining thread, so the loop's sequential semantics are preserved
// under any forking model and any number of CPUs.
func For(t *Thread, nChunks int, opts ForOptions, body func(c *Thread, idx int)) {
	if nChunks <= 0 {
		return
	}
	model := opts.Model
	var region RegionFunc
	fork := func(c *Thread, ranks []Rank, next int) {
		if next >= nChunks {
			return
		}
		if h := c.Fork(ranks, 0, model); h != nil {
			h.SetRegvarInt64(0, int64(next))
			h.Start(region)
		}
	}
	region = func(c *Thread) uint32 {
		idx := int(c.GetRegvarInt64(0))
		ranks := []Rank{0}
		fork(c, ranks, idx+1)
		body(c, idx)
		// The chained ranks array is live at the join point: save it for
		// the joining thread (paper §IV-D).
		c.SaveRegvarInt64(1, int64(ranks[0]))
		return 0
	}
	ranks := []Rank{0}
	fork(t, ranks, 1)
	body(t, 0)
	for idx := 1; idx < nChunks; idx++ {
		res := t.Join(ranks, 0)
		if res.Committed() {
			ranks[0] = Rank(res.RegvarInt64(1))
			continue
		}
		// Rolled back or never forked: run the chunk inline, re-forking
		// the rest of the chain where the model allows.
		ranks[0] = 0
		fork(t, ranks, idx+1)
		body(t, idx)
	}
}

// ForRange executes body(c, lo, hi) over contiguous sub-ranges covering
// [0, n), cut by the chunk policy, under loop-level speculation. It is the
// range form of For for loops whose natural unit is an index interval
// rather than a chunk number.
func ForRange(t *Thread, n int, opts ForOptions, body func(c *Thread, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := opts.Policy.Chunks(n)
	For(t, chunks, opts, func(c *Thread, idx int) {
		lo, hi := opts.Policy.Bounds(n, chunks, idx)
		body(c, lo, hi)
	})
}
