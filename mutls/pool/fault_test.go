package pool

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/mutls"
)

// TestLeaseReusableAfterKernelPanic: a tenant whose kernel panics on the
// non-speculative thread gets the typed error, and the recycled runtime
// serves the next tenant a verified run — one fault costs one request,
// never the pooled slot.
func TestLeaseReusableAfterKernelPanic(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	opts.HostBudget = 4
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	lease, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		panic("tenant boom")
	})
	var kp *mutls.KernelPanic
	if !errors.As(rerr, &kp) {
		t.Fatalf("run error %v (%T), want *mutls.KernelPanic", rerr, rerr)
	}
	lease.Release()

	// The same pooled runtime (Runtimes: 1) must serve the next tenant.
	lease, err = p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after contained panic: %v", err)
	}
	defer lease.Release()
	k := stressKernels[0]
	var seq, spec uint64
	if _, err := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		seq = k.w.Seq(th, k.size)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		spec = k.w.Spec(th, k.size, bench.SpecOptions{Model: k.w.DefaultModel})
	}); err != nil {
		t.Fatal(err)
	}
	if seq != spec {
		t.Fatalf("post-panic tenant: speculative %#x != sequential %#x", spec, seq)
	}
}
