package pool

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/mutls"
)

// TestLeaseReusableAfterKernelPanic: a tenant whose kernel panics on the
// non-speculative thread gets the typed error, and the recycled runtime
// serves the next tenant a verified run — one fault costs one request,
// never the pooled slot.
func TestLeaseReusableAfterKernelPanic(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	opts.HostBudget = 4
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	lease, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		panic("tenant boom")
	})
	var kp *mutls.KernelPanic
	if !errors.As(rerr, &kp) {
		t.Fatalf("run error %v (%T), want *mutls.KernelPanic", rerr, rerr)
	}
	lease.Release()

	// The same pooled runtime (Runtimes: 1) must serve the next tenant.
	lease, err = p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after contained panic: %v", err)
	}
	defer lease.Release()
	k := stressKernels[0]
	var seq, spec uint64
	if _, err := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		seq = k.w.Seq(th, k.size)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		spec = k.w.Spec(th, k.size, bench.SpecOptions{Model: k.w.DefaultModel})
	}); err != nil {
		t.Fatal(err)
	}
	if seq != spec {
		t.Fatalf("post-panic tenant: speculative %#x != sequential %#x", spec, seq)
	}
}

// TestInjectedQueueShed: a KindLeaseFail injected at the queue-admission
// seam sheds exactly the contended Acquire — the fast path never consults
// SiteQueue, so a free runtime is still leased normally — and the shed is
// indistinguishable from a real full queue (ErrOverloaded + Rejected).
func TestInjectedQueueShed(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	opts.HostBudget = 4
	opts.Runtime.FaultPlan = faultinject.NewPlan(1, []faultinject.Rule{
		{Site: faultinject.SiteQueue, Kind: faultinject.KindLeaseFail, Prob: 1},
	})
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Fast path: the single runtime is free, SiteQueue is never reached.
	lease, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("fast-path acquire under a queue-seam plan: %v", err)
	}
	if n := opts.Runtime.FaultPlan.Seq(faultinject.SiteQueue); n != 0 {
		t.Fatalf("fast path consumed %d queue-seam decisions, want 0", n)
	}

	// Contended path: the injection sheds before the waiter ever queues.
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("contended acquire error %v, want ErrOverloaded", err)
	}
	if got := p.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d after one injected shed, want 1", got)
	}
	if n := opts.Runtime.FaultPlan.Injected(faultinject.SiteQueue, faultinject.KindLeaseFail); n != 1 {
		t.Errorf("queue/leasefail injections = %d, want 1", n)
	}

	// Disarmed, the same contended shape queues and is served on Release.
	opts.Runtime.FaultPlan.Disarm()
	done := make(chan error, 1)
	go func() {
		l2, err := p.Acquire(context.Background())
		if err == nil {
			l2.Release()
		}
		done <- err
	}()
	lease.Release()
	if err := <-done; err != nil {
		t.Fatalf("disarmed queued acquire: %v", err)
	}
}

// TestInjectedGrantDegrade: a KindDegrade injected at the budget-grant
// seam forces a zero-CPU lease that claims nothing from the host budget,
// and the degraded tenant still produces the sequential checksum — the
// graceful-degradation contract under fault injection.
func TestInjectedGrantDegrade(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	opts.HostBudget = 4
	opts.Runtime.FaultPlan = faultinject.NewPlan(2, []faultinject.Rule{
		{Site: faultinject.SiteGrant, Kind: faultinject.KindDegrade, Prob: 1},
	})
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	lease, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Degraded() || lease.CPUs() != 0 {
		t.Fatalf("injected degrade: CPUs()=%d Degraded()=%v, want 0/true", lease.CPUs(), lease.Degraded())
	}
	st := p.Stats()
	if st.Degraded != 1 || st.ClaimedCPUs != 0 {
		t.Errorf("stats after injected degrade: Degraded=%d ClaimedCPUs=%d, want 1/0", st.Degraded, st.ClaimedCPUs)
	}

	// The degraded lease still runs correctly, just sequentially.
	k := stressKernels[0]
	var seq, spec uint64
	if _, err := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		seq = k.w.Seq(th, k.size)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Runtime().RunCtx(context.Background(), func(th *mutls.Thread) {
		spec = k.w.Spec(th, k.size, bench.SpecOptions{Model: k.w.DefaultModel})
	}); err != nil {
		t.Fatal(err)
	}
	if seq != spec {
		t.Fatalf("degraded tenant: speculative %#x != sequential %#x", spec, seq)
	}
	lease.Release()

	// Disarmed, the next lease gets a real grant again.
	opts.Runtime.FaultPlan.Disarm()
	lease, err = p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if lease.CPUs() == 0 {
		t.Error("disarmed lease still degraded")
	}
}
