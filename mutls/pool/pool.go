// Package pool turns the single-program MUTLS runtime into a multi-tenant
// speculation service. A Pool owns a fixed set of mutls.Runtimes and leases
// them to concurrent clients; between leases each runtime is recycled
// (statistics, fork-point namespace and simulated heap reset) rather than
// rebuilt, so its GlobalBuffers, LocalBuffers and arena survive across
// tenants.
//
// The pool is also the admission controller. Every lease is granted a
// number of speculative virtual CPUs out of a shared host budget
// (GOMAXPROCS-aware by default): when the budget is exhausted, later
// leases degrade gracefully to sequential execution (zero CPUs — every
// fork is refused, the program still runs) instead of oversubscribing the
// host. When every runtime is leased, Acquire queues up to a bounded
// depth and then fails fast with ErrOverloaded, so callers shed load
// instead of piling up. Deadlines propagate twice: Acquire respects its
// context while queued, and the leased runtime's RunCtx unwinds a
// too-slow run at the next cancellation point.
package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/mutls"
)

// ErrClosed is returned by Acquire on a closed (or closing) pool.
var ErrClosed = errors.New("pool: pool is closed")

// ErrOverloaded is returned by Acquire when every runtime is leased and
// the wait queue is at QueueLimit — the backpressure signal.
var ErrOverloaded = errors.New("pool: overloaded (queue full)")

// NoQueue as a QueueLimit makes Acquire fail fast with ErrOverloaded
// whenever no runtime is immediately free.
const NoQueue = -1

// Options configures a Pool. The zero value of every field selects a
// sensible default.
type Options struct {
	// Runtimes is the number of pooled runtimes — the maximum number of
	// concurrently running tenants. Default 2.
	Runtimes int

	// HostBudget bounds the total speculative virtual CPUs claimed by
	// in-flight leases across the whole pool. Default
	// runtime.GOMAXPROCS(0): virtual CPUs map to goroutines that are only
	// worth running while the host has cores for them. A lease is granted
	// min(Runtime.CPUs, remaining budget) CPUs; zero granted means the
	// tenant runs sequentially.
	HostBudget int

	// QueueLimit bounds how many Acquire calls may wait for a runtime
	// before the pool sheds load with ErrOverloaded. Default 4×Runtimes;
	// NoQueue disables queueing entirely.
	QueueLimit int

	// Runtime is the template every pooled runtime is built from.
	// Runtime.CPUs is the per-lease speculation width (default 4). The
	// Real-timing GOMAXPROCS clamp is disabled on pooled runtimes — the
	// pool's HostBudget is the host-awareness mechanism, and double
	// clamping would hide budget effects.
	Runtime mutls.Options
}

func (o Options) withDefaults() Options {
	if o.Runtimes <= 0 {
		o.Runtimes = 2
	}
	if o.HostBudget <= 0 {
		o.HostBudget = runtime.GOMAXPROCS(0)
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 4 * o.Runtimes
	}
	if o.QueueLimit < 0 {
		o.QueueLimit = 0
	}
	if o.Runtime.CPUs <= 0 {
		o.Runtime.CPUs = 4
	}
	o.Runtime.RealCPUCap = mutls.RealCPUsUncapped
	return o
}

// Stats is a point-in-time snapshot of the pool's admission counters.
type Stats struct {
	// Runtimes and HostBudget echo the resolved configuration.
	Runtimes   int `json:"runtimes"`
	HostBudget int `json:"host_budget"`

	// Acquired/Released count completed lease handshakes; Rejected counts
	// ErrOverloaded fast-fails; Degraded counts leases granted zero CPUs.
	Acquired int64 `json:"acquired"`
	Released int64 `json:"released"`
	Rejected int64 `json:"rejected"`
	Degraded int64 `json:"degraded"`

	// ClaimedCPUs is the budget currently out on leases; MaxClaimedCPUs is
	// its high-water mark — the pool's invariant is MaxClaimedCPUs ≤
	// HostBudget, ever.
	ClaimedCPUs    int `json:"claimed_cpus"`
	MaxClaimedCPUs int `json:"max_claimed_cpus"`

	// Waiting is the current queue depth.
	Waiting int `json:"waiting"`
}

// Pool is a shared, admission-controlled set of speculation runtimes.
// All methods are safe for concurrent use.
type Pool struct {
	opts Options
	free chan *mutls.Runtime

	mu         sync.Mutex
	claimed    int
	maxClaimed int
	waiting    int
	closed     bool

	closing   chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	acquired atomic.Int64
	released atomic.Int64
	rejected atomic.Int64
	degraded atomic.Int64
}

// New builds the pool and all of its runtimes up front, so a tenant never
// pays construction cost on the request path.
func New(opts Options) (*Pool, error) {
	opts = opts.withDefaults()
	p := &Pool{
		opts:    opts,
		free:    make(chan *mutls.Runtime, opts.Runtimes),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := 0; i < opts.Runtimes; i++ {
		rt, err := mutls.New(opts.Runtime)
		if err != nil {
			for len(p.free) > 0 {
				(<-p.free).Close()
			}
			return nil, err
		}
		p.free <- rt
	}
	return p, nil
}

// Lease is one tenant's hold on a pooled runtime. Release it when the
// request is done; Release is idempotent.
type Lease struct {
	p        *Pool
	rt       *mutls.Runtime
	cpus     int
	released atomic.Bool
}

// Runtime returns the leased runtime. It must not be used after Release.
func (l *Lease) Runtime() *mutls.Runtime { return l.rt }

// CPUs is the number of speculative virtual CPUs this lease was granted
// out of the host budget.
func (l *Lease) CPUs() int { return l.cpus }

// Degraded reports whether the budget was exhausted at acquire time and
// the lease runs sequentially (every fork refused).
func (l *Lease) Degraded() bool { return l.cpus == 0 }

// Release recycles the runtime (statistics, fork points and heap reset),
// returns the lease's CPUs to the budget and hands the runtime to the
// next waiter. Safe to call more than once; only the first call acts.
func (l *Lease) Release() {
	if !l.released.CompareAndSwap(false, true) {
		return
	}
	l.rt.Recycle()
	l.p.mu.Lock()
	l.p.claimed -= l.cpus
	l.p.mu.Unlock()
	l.p.released.Add(1)
	l.p.free <- l.rt
}

// Acquire leases a runtime. If none is free it waits — bounded by
// QueueLimit (ErrOverloaded beyond it), by ctx (its error is returned)
// and by Close (ErrClosed). On success the lease's runtime has its CPU
// limit set to the granted budget share.
func (p *Pool) Acquire(ctx context.Context) (*Lease, error) {
	if plan := p.opts.Runtime.FaultPlan; plan != nil &&
		plan.Decide(faultinject.SiteAcquire) == faultinject.KindLeaseFail {
		// Injected admission failure: shaped exactly like a full queue so
		// callers exercise their shed/retry handling.
		p.rejected.Add(1)
		return nil, ErrOverloaded
	}
	// Fast path: a runtime is free right now.
	select {
	case rt := <-p.free:
		return p.lease(rt)
	default:
	}

	// Queue-admission seam: the fast path missed, so this Acquire is about
	// to queue (or shed). An injected shed exercises the caller's
	// backpressure handling on the contended path specifically; an injected
	// delay widens the window in which the queue fills behind this waiter.
	if plan := p.opts.Runtime.FaultPlan; plan != nil {
		switch plan.Decide(faultinject.SiteQueue) {
		case faultinject.KindLeaseFail:
			p.rejected.Add(1)
			return nil, ErrOverloaded
		case faultinject.KindDelay:
			time.Sleep(faultinject.Delay)
		}
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if p.waiting >= p.opts.QueueLimit {
		p.mu.Unlock()
		p.rejected.Add(1)
		return nil, ErrOverloaded
	}
	p.waiting++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.waiting--
		p.mu.Unlock()
	}()

	select {
	case rt := <-p.free:
		return p.lease(rt)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.closing:
		return nil, ErrClosed
	}
}

// lease claims a budget share for rt and wraps it. If the pool closed
// while the runtime was in flight, it is handed back to the shutdown
// collector instead.
func (p *Pool) lease(rt *mutls.Runtime) (*Lease, error) {
	// Budget-grant seam: an injected degrade is shaped exactly like an
	// exhausted host budget — zero CPUs granted, nothing claimed, and the
	// tenant's run must still complete sequentially with the right result.
	forceDegrade := false
	if plan := p.opts.Runtime.FaultPlan; plan != nil &&
		plan.Decide(faultinject.SiteGrant) == faultinject.KindDegrade {
		forceDegrade = true
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.free <- rt // capacity Runtimes: never blocks, Close collects it
		return nil, ErrClosed
	}
	grant := p.opts.HostBudget - p.claimed
	if grant > p.opts.Runtime.CPUs {
		grant = p.opts.Runtime.CPUs
	}
	if grant < 0 || forceDegrade {
		grant = 0
	}
	p.claimed += grant
	if p.claimed > p.maxClaimed {
		p.maxClaimed = p.claimed
	}
	p.mu.Unlock()

	rt.SetCPULimit(grant)
	p.acquired.Add(1)
	if grant == 0 {
		p.degraded.Add(1)
	}
	return &Lease{p: p, rt: rt, cpus: grant}, nil
}

// Close drains the pool and closes every runtime. It blocks until all
// in-flight leases are released, then rejects queued and future Acquires
// with ErrClosed. Idempotent; concurrent calls all block until shutdown
// completes.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.closing)
		for i := 0; i < p.opts.Runtimes; i++ {
			rt := <-p.free
			rt.Close()
		}
		close(p.done)
	})
	<-p.done
}

// Stats snapshots the admission counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	claimed, maxClaimed, waiting := p.claimed, p.maxClaimed, p.waiting
	p.mu.Unlock()
	return Stats{
		Runtimes:       p.opts.Runtimes,
		HostBudget:     p.opts.HostBudget,
		Acquired:       p.acquired.Load(),
		Released:       p.released.Load(),
		Rejected:       p.rejected.Load(),
		Degraded:       p.degraded.Load(),
		ClaimedCPUs:    claimed,
		MaxClaimedCPUs: maxClaimed,
		Waiting:        waiting,
	}
}
