package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/mutls"
)

// stressKernels is the mixed workload of the concurrency tests: two loop
// shapes (in-order chained forks) and one tree shape (mixed model), at
// sizes small enough that 64 tenants finish quickly under -race.
var stressKernels = []struct {
	w    *bench.Workload
	size bench.Size
}{
	{bench.X3P1, bench.Size{N: 4000}},
	{bench.Mandelbrot, bench.Size{N: 16, M: 200}},
	{bench.MatMult, bench.Size{N: 16}},
}

// testOptions returns pool options sized for the stress kernels.
func testOptions() Options {
	heap := 0
	for _, k := range stressKernels {
		if b := k.w.HeapBytes(k.size); b > heap {
			heap = b
		}
	}
	return Options{
		Runtime: mutls.Options{CPUs: 4, HeapBytes: heap, CollectStats: true},
	}
}

// seqChecksums runs every stress kernel's sequential version once on a
// throwaway runtime and returns the reference checksums.
func seqChecksums(t *testing.T) []uint64 {
	t.Helper()
	rt, err := mutls.New(testOptions().Runtime)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	sums := make([]uint64, len(stressKernels))
	for i, k := range stressKernels {
		i, k := i, k
		if _, err := rt.Run(func(th *mutls.Thread) {
			sums[i] = k.w.Seq(th, k.size)
		}); err != nil {
			t.Fatal(err)
		}
		rt.Recycle()
	}
	return sums
}

// runSpec executes kernel k's TLS version on a leased runtime.
func runSpec(rt *mutls.Runtime, i int) (uint64, error) {
	k := stressKernels[i]
	var sum uint64
	_, err := rt.Run(func(th *mutls.Thread) {
		sum = k.w.Spec(th, k.size, bench.SpecOptions{Model: k.w.DefaultModel})
	})
	return sum, err
}

// TestPoolStress is the multi-tenant acceptance test: 64 concurrent
// clients running mixed kernels against a 4-runtime pool. Every response
// checksum must match the sequential reference, the pool's claimed CPU
// budget must never exceed HostBudget (tracked independently of the
// pool's own accounting), and shutdown must leave no goroutines behind.
func TestPoolStress(t *testing.T) {
	sums := seqChecksums(t)
	before := runtime.NumGoroutine()

	opts := testOptions()
	opts.Runtimes = 4
	opts.HostBudget = runtime.GOMAXPROCS(0)
	opts.QueueLimit = 256 // deep enough that no client is shed
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	const perClient = 2
	var claimed atomic.Int64 // independent budget ledger
	var maxClaimed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				lease, err := p.Acquire(context.Background())
				if err != nil {
					errs <- fmt.Errorf("client %d: acquire: %w", c, err)
					return
				}
				now := claimed.Add(int64(lease.CPUs()))
				for {
					old := maxClaimed.Load()
					if now <= old || maxClaimed.CompareAndSwap(old, now) {
						break
					}
				}
				i := (c + r) % len(stressKernels)
				sum, err := runSpec(lease.Runtime(), i)
				if err != nil {
					errs <- fmt.Errorf("client %d: run: %w", c, err)
				} else if sum != sums[i] {
					errs <- fmt.Errorf("client %d: kernel %s checksum %#x, want %#x",
						c, stressKernels[i].w.Name, sum, sums[i])
				}
				claimed.Add(-int64(lease.CPUs()))
				lease.Release()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := p.Stats()
	if s.Acquired != clients*perClient {
		t.Errorf("Acquired = %d, want %d", s.Acquired, clients*perClient)
	}
	if s.Released != s.Acquired {
		t.Errorf("Released = %d, Acquired = %d — leaked leases", s.Released, s.Acquired)
	}
	if s.Rejected != 0 {
		t.Errorf("Rejected = %d with a deep queue", s.Rejected)
	}
	if s.ClaimedCPUs != 0 || s.Waiting != 0 {
		t.Errorf("idle pool holds claims: %+v", s)
	}
	if s.MaxClaimedCPUs > s.HostBudget {
		t.Errorf("pool ledger: MaxClaimedCPUs %d exceeds HostBudget %d", s.MaxClaimedCPUs, s.HostBudget)
	}
	if int(maxClaimed.Load()) > opts.HostBudget {
		t.Errorf("independent ledger: claimed CPUs peaked at %d, budget %d", maxClaimed.Load(), opts.HostBudget)
	}

	p.Close()
	// Drained shutdown leaves no pool or runtime goroutines. Workers exit
	// asynchronously after their task channels close, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked across pool lifecycle: %d before, %d after", before, now)
	}
}

// TestPoolBudgetDegradation: when the host budget is exhausted, later
// leases degrade to sequential execution — correct results, zero commits
// — and budget returned by a release is granted again.
func TestPoolBudgetDegradation(t *testing.T) {
	sums := seqChecksums(t)
	opts := testOptions()
	opts.Runtimes = 2
	opts.Runtime.CPUs = 2
	opts.HostBudget = 2
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx := context.Background()
	l1, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l1.CPUs() != 2 || l1.Degraded() {
		t.Fatalf("first lease granted %d CPUs, want the full budget 2", l1.CPUs())
	}
	l2, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Degraded() {
		t.Fatalf("second lease granted %d CPUs from an exhausted budget", l2.CPUs())
	}
	sum, err := runSpec(l2.Runtime(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum != sums[0] {
		t.Errorf("degraded run checksum %#x, want %#x", sum, sums[0])
	}
	if s := l2.Runtime().Stats(); s.Commits != 0 || s.Rollbacks != 0 {
		t.Errorf("degraded lease speculated: %d commits, %d rollbacks", s.Commits, s.Rollbacks)
	}
	if got := p.Stats().Degraded; got != 1 {
		t.Errorf("Stats.Degraded = %d, want 1", got)
	}

	// Returned budget is granted to the next tenant.
	l1.Release()
	l2.Release()
	l3, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l3.CPUs() != 2 {
		t.Errorf("post-release lease granted %d CPUs, want 2", l3.CPUs())
	}
	l3.Release()
}

// TestPoolQueueLimit: waiters beyond QueueLimit are shed with
// ErrOverloaded; NoQueue sheds immediately.
func TestPoolQueueLimit(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	opts.QueueLimit = 1
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	held, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter occupies the queue slot...
	got := make(chan error, 1)
	go func() {
		l, err := p.Acquire(context.Background())
		if l != nil {
			defer l.Release()
		}
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiting != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Stats().Waiting != 1 {
		t.Fatal("waiter never queued")
	}
	// ...so the next Acquire is shed.
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue Acquire: err = %v, want ErrOverloaded", err)
	}
	if p.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", p.Stats().Rejected)
	}

	held.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// TestPoolNoQueue: NoQueue converts every contended Acquire into an
// immediate ErrOverloaded.
func TestPoolNoQueue(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	opts.QueueLimit = NoQueue
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	held, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	held.Release()
}

// TestPoolAcquireContext: a queued Acquire honours its context.
func TestPoolAcquireContext(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	held, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx)
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiting != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	held.Release()
}

// TestPoolClose: Close drains in-flight leases before closing runtimes,
// is idempotent under concurrent calls, and fails queued and subsequent
// Acquires with ErrClosed.
func TestPoolClose(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 2
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	lease, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		// Consume the second runtime, then queue a third tenant that must
		// be woken by Close.
		l2, err := p.Acquire(context.Background())
		if err != nil {
			queued <- err
			return
		}
		defer l2.Release()
		_, err = p.Acquire(context.Background())
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Waiting != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	var released atomic.Bool
	go func() {
		time.Sleep(20 * time.Millisecond)
		released.Store(true)
		lease.Release()
	}()

	done := make(chan struct{})
	go func() { p.Close(); close(done) }() // concurrent with the Close below
	p.Close()
	<-done
	if !released.Load() {
		t.Error("Close returned before the in-flight lease was released")
	}
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Errorf("queued Acquire at close: err = %v, want ErrClosed", err)
	}
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Acquire after Close: err = %v, want ErrClosed", err)
	}
}

// TestPoolDoubleRelease: only the first Release acts.
func TestPoolDoubleRelease(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	lease, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	lease.Release()
	if s := p.Stats(); s.Released != 1 {
		t.Fatalf("Released = %d after double release, want 1", s.Released)
	}
	// The pool still holds exactly one runtime: a second Acquire after one
	// re-lease must queue, not succeed instantly off a duplicate.
	l2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case rt := <-p.free:
		t.Fatalf("duplicate runtime %p in the free list", rt)
	default:
	}
	l2.Release()
}

// TestPoolRecycleBetweenTenants: a tenant never sees the previous
// tenant's statistics or leaked heap.
func TestPoolRecycleBetweenTenants(t *testing.T) {
	opts := testOptions()
	opts.Runtimes = 1
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	l1, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l1.Runtime().Run(func(th *mutls.Thread) {
		th.Alloc(1 << 10) // leak deliberately
	}); err != nil {
		t.Fatal(err)
	}
	if l1.Runtime().Space().Heap.InUse() == 0 {
		t.Fatal("test setup: leak did not register")
	}
	l1.Release()

	l2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release()
	if got := l2.Runtime().Space().Heap.InUse(); got != 0 {
		t.Errorf("next tenant inherited %d bytes of heap", got)
	}
	if s := l2.Runtime().Stats(); s.Executions != 0 {
		t.Errorf("next tenant inherited statistics: %+v", s)
	}
}
