package mutls

import "repro/internal/core"

// This file makes chunk sizing a pluggable, feedback-driven policy. The
// paper fixes loop speculation at 64 chunks — the reason its Figure 3
// curves plateau between 32 and 63 CPUs — and related work (Prophet's
// architectural thread-size tuning, the Mazumdar & Giorgi TLP survey's
// granularity/rollback trade-off) argues speculation granularity should
// track observed misspeculation instead of a compile-time constant. The
// Chunker interface lets For/ForRange/Reduce decide each chunk's bounds at
// fork time; AdaptivePolicy grows or shrinks the next chunk from the
// rollback rate, commit latency and read/write-set peaks of chunks already
// joined in the same run.

// PointCounters is a live mid-run snapshot of one fork/join point's
// commit/rollback/latency profile (core.PointCounters); the loop drivers
// hand it to chunk controllers with every observation.
type PointCounters = core.PointCounters

// ChunkFeedback is the observed outcome of one joined chunk, fed back to
// the chunk controller by For/ForRange/Reduce in sequential join order.
type ChunkFeedback struct {
	// Lo, Hi are the chunk's bounds.
	Lo, Hi int
	// Forked reports that a speculative thread executed the chunk (whether
	// or not it committed). Chunks the joining thread ran inline from the
	// start — the first chunk, and chunks whose fork was refused — have
	// Forked false; controllers that want schedules independent of
	// transient CPU availability should take commit/rollback signals only
	// from forked chunks.
	Forked bool
	// Committed reports that the speculative execution validated and
	// committed; false with Forked means it rolled back and the joining
	// thread re-executed the chunk inline.
	Committed bool
	// Latency is the chunk's execution interval: the speculation's CPU
	// occupancy when Committed, otherwise the joining thread's inline
	// (re-)execution time.
	Latency Cost
	// ReadSetPeak/WriteSetPeak are the speculative execution's
	// GlobalBuffer high-water marks in words (zero for inline chunks —
	// non-speculative accesses are unbuffered).
	ReadSetPeak  int
	WriteSetPeak int
	// Points is the loop's fork point activity since the run started (the
	// runtime's live mid-run counters, windowed to this run): the rollback
	// rate and mean commit latency across every thread of the loop,
	// including squashed ones the driver never joined directly.
	Points PointCounters
	// Now is the non-speculative thread's clock when the chunk was
	// observed; deltas between observations measure the loop's real
	// critical-path progress, the throughput signal behind hill-climbing
	// controllers.
	Now Cost
}

// Len returns the number of indices in the chunk.
func (f ChunkFeedback) Len() int { return f.Hi - f.Lo }

// Chunker decides how an index space [0, n) is cut into speculated chunks.
// Implementations are immutable policy values; all per-run state lives in
// the ChunkController returned by NewRun, so one Chunker may drive many
// loops (and concurrent runtimes) at once.
type Chunker interface {
	// NewRun starts a controller for one For/ForRange/Reduce execution
	// over [0, n) on a runtime with cpus speculative virtual CPUs.
	NewRun(n, cpus int) ChunkController
}

// ChunkController emits one run's chunk schedule. The loop driver calls
// Next and Observe only from the non-speculative thread, in order: chunks
// are decided front to back (each Next's lo is the previous hi) and
// observed in the same order once joined, so a controller is an ordinary
// single-threaded state machine. A controller whose decisions are a pure
// function of its observations is deterministic under virtual timing:
// the same seed yields the same chunk schedule.
type ChunkController interface {
	// Next returns hi for the chunk starting at lo — the next chunk is
	// [lo, hi). The driver clamps hi into (lo, n].
	Next(lo int) (hi int)
	// Observe feeds back the outcome of a joined chunk.
	Observe(fb ChunkFeedback)
}

// NewRun makes the static ChunkPolicy a Chunker: the run is pre-cut into
// Chunks(n) contiguous chunks via Bounds, and feedback is ignored.
func (p ChunkPolicy) NewRun(n, cpus int) ChunkController {
	return &staticRun{p: p, n: n, chunks: p.Chunks(n)}
}

type staticRun struct {
	p      ChunkPolicy
	n      int
	chunks int
	idx    int
}

func (s *staticRun) Next(lo int) int {
	if s.idx >= s.chunks {
		return s.n
	}
	_, hi := s.p.Bounds(s.n, s.chunks, s.idx)
	s.idx++
	return hi
}

func (s *staticRun) Observe(ChunkFeedback) {}

// unitChunker emits one-index chunks: the schedule For uses when no
// Chunker is configured, preserving its one-fork-per-index contract.
type unitChunker struct{}

func (unitChunker) NewRun(n, cpus int) ChunkController { return unitRun{} }

type unitRun struct{}

func (unitRun) Next(lo int) int       { return lo + 1 }
func (unitRun) Observe(ChunkFeedback) {}

// AdaptivePolicy sizes chunks by feedback. While speculation is healthy
// the controller holds the starting size (the static split's, by
// default), so it costs nothing on well-behaved loops; when the run's
// observed rollback rate climbs past MaxRollbackRate it *coarsens* —
// fewer, larger speculations expose fewer validation points to
// misspeculation and shed per-chunk fork/join overhead, the Prophet-style
// thread-size response — and when a chunk's buffer footprint crosses
// PressureWords it shrinks before overflow parking sets in. Every step is
// hill-climb checked: the controller measures retired indices per unit of
// critical-path time over windows of joined chunks, and a step that
// lowered that throughput is reverted (with a cooldown) rather than
// compounded. Growth is additionally capped by the commit-latency target
// so a single giant chunk cannot serialize the join chain. The zero value
// is a usable configuration.
//
// Determinism: a controller's decisions are a pure function of the
// feedback sequence it observes — so on a deterministic execution
// (virtual timing, e.g. a single speculative CPU) the same seed
// reproduces the same chunk schedule.
type AdaptivePolicy struct {
	// MinSize and MaxSize bound a chunk's length in indices. Zero selects
	// 1 and n. Set MinSize to the workload's fork-amortization threshold
	// (the static policy's MinPerChunk) when one is known.
	MinSize int
	MaxSize int
	// Start is the first chunk's length. Zero selects the static split's
	// chunk size, n/64, clamped to the Min/Max bounds: the run begins at
	// the paper's distribution and adapts away from it only on evidence.
	Start int
	// Grow and Shrink are the multiplicative step factors for coarsening
	// under misspeculation and shrinking under buffer pressure. Zero
	// selects 1.5 and 0.5.
	Grow   float64
	Shrink float64
	// MaxRollbackRate is the run-wide rollback rate (from the live point
	// counters) above which the controller starts coarsening. Zero
	// selects 0.35.
	MaxRollbackRate float64
	// PressureWords shrinks chunks whose read+write set peak exceeds this
	// many words — back-pressure from the GlobalBuffer before overflow
	// parking or rollback sets in. Zero disables the check.
	PressureWords int
	// LatencyTarget caps coarsening at the chunk size whose projected
	// commit latency reaches the target — the load-balance guard that
	// keeps one giant chunk from serializing the join chain. Zero targets
	// 4x the first committed chunk's latency.
	LatencyTarget Cost
	// Window is the number of joined chunks per adaptation step (the
	// throughput measurement interval). Zero selects 4.
	Window int
}

// NewRun resolves defaults and starts an adaptive controller.
func (p AdaptivePolicy) NewRun(n, cpus int) ChunkController {
	if p.MinSize < 1 {
		p.MinSize = 1
	}
	if p.MaxSize <= 0 {
		p.MaxSize = n
	}
	if p.MaxSize < p.MinSize {
		p.MaxSize = p.MinSize
	}
	if p.Start <= 0 {
		p.Start = n / 64
	}
	if p.Start < p.MinSize {
		p.Start = p.MinSize
	}
	if p.Start > p.MaxSize {
		p.Start = p.MaxSize
	}
	if p.Grow <= 1 {
		p.Grow = 1.5
	}
	if p.Shrink <= 0 || p.Shrink >= 1 {
		p.Shrink = 0.5
	}
	if p.MaxRollbackRate <= 0 {
		p.MaxRollbackRate = 0.35
	}
	if p.Window <= 0 {
		p.Window = 4
	}
	return &adaptiveRun{p: p, n: n, size: float64(p.Start)}
}

// minRateSamples is the number of finished speculations before the
// run-wide rollback rate is trusted.
const minRateSamples = 4

type adaptiveRun struct {
	p    AdaptivePolicy
	n    int
	size float64 // current chunk length (continuous; rounded in Next)

	perIdx float64 // EWMA of observed latency per index
	target Cost    // resolved latency target (0 until auto-calibrated)

	// Window accumulators for the hill-climb throughput check.
	winChunks  int
	winIndices int
	winStart   Cost
	haveStart  bool
	pressured  bool // some chunk in the window exceeded PressureWords

	prevTP     float64 // previous window's indices per time unit
	lastAction int     // +1 grew, -1 shrank, 0 held in the last window
	cooldown   int     // windows to hold after a reverted step
	noGrow     bool    // growing was tried and measurably hurt: stop trying
	noShrink   bool    // shrinking was tried and measurably hurt
}

func (a *adaptiveRun) Next(lo int) int {
	s := int(a.size + 0.5)
	if s < a.p.MinSize {
		s = a.p.MinSize
	}
	if s > a.p.MaxSize {
		s = a.p.MaxSize
	}
	if remain := a.n - lo; s >= remain || remain-s < a.p.MinSize {
		// Absorb a tail too small to be worth its own fork.
		s = remain
	}
	return lo + s
}

func (a *adaptiveRun) Observe(fb ChunkFeedback) {
	if fb.Len() <= 0 {
		return
	}
	if fb.Latency > 0 {
		per := float64(fb.Latency) / float64(fb.Len())
		if a.perIdx == 0 {
			a.perIdx = per
		} else {
			a.perIdx += (per - a.perIdx) / 4
		}
	}
	if a.target == 0 && fb.Committed {
		// Auto latency target: 4x the first committed chunk's latency.
		a.target = 4 * fb.Latency
	}
	if a.p.PressureWords > 0 && fb.ReadSetPeak+fb.WriteSetPeak > a.p.PressureWords {
		a.pressured = true
	}
	if !a.haveStart {
		a.winStart, a.haveStart = fb.Now, true
		return // the window opens with the first observation's clock
	}
	a.winChunks++
	a.winIndices += fb.Len()
	if a.winChunks < a.p.Window {
		return
	}
	a.step(fb)
	a.winChunks, a.winIndices = 0, 0
	a.winStart = fb.Now
	a.pressured = false
}

// step closes a throughput window and applies (or reverts) one adaptation.
func (a *adaptiveRun) step(fb ChunkFeedback) {
	tp := 0.0
	if dt := fb.Now - a.winStart; dt > 0 {
		tp = float64(a.winIndices) / float64(dt)
	}
	defer func() { a.prevTP = tp }()

	// Hill-climb veto: a step that lowered the measured critical-path
	// throughput is undone and its direction is retired for the rest of
	// the run — a feedback signal that keeps mispredicted adaptations
	// from compounding (or oscillating) on workloads the heuristics
	// misjudge.
	if a.lastAction != 0 && a.prevTP > 0 && tp < a.prevTP {
		if a.lastAction > 0 {
			a.size /= a.p.Grow
			a.noGrow = true
		} else {
			a.size /= a.p.Shrink
			a.noShrink = true
		}
		a.clampSize()
		a.lastAction = 0
		a.cooldown = 2
		return
	}
	a.lastAction = 0
	if a.cooldown > 0 {
		a.cooldown--
		return
	}
	switch {
	case a.pressured && !a.noShrink:
		// Buffer pressure: back off before overflow parking sets in.
		a.size *= a.p.Shrink
		a.clampSize()
		a.lastAction = -1
	case a.noGrow:
	case fb.Points.Executions() >= minRateSamples && fb.Points.RollbackRate() > a.p.MaxRollbackRate:
		// The run is misspeculating: coarsen, so fewer speculations are
		// exposed to rollback and less fixed overhead is paid — unless
		// the projected chunk latency would break load balance.
		grown := a.size * a.p.Grow
		if a.target > 0 && a.perIdx > 0 {
			if lim := float64(a.target) / a.perIdx; grown > lim {
				grown = lim
			}
		}
		if grown > a.size {
			a.size = grown
			a.clampSize()
			a.lastAction = +1
		}
	}
}

func (a *adaptiveRun) clampSize() {
	if a.size < float64(a.p.MinSize) {
		a.size = float64(a.p.MinSize)
	}
	if a.size > float64(a.p.MaxSize) {
		a.size = float64(a.p.MaxSize)
	}
}

// inherit seeds a fresh controller with the state a previous run of the
// same loop learned: the converged chunk size, the per-index latency
// estimate, the commit-latency target and the retired step directions.
func (a *adaptiveRun) inherit(prev *adaptiveRun) {
	a.size = prev.size
	a.clampSize()
	a.perIdx = prev.perIdx
	a.target = prev.target
	a.noGrow, a.noShrink = prev.noGrow, prev.noShrink
}

// Persist wraps a Chunker so state learned in one run seeds the next — for
// loops a program executes repeatedly over the same data, like the
// per-time-step force loops of md and bh, which otherwise re-learn the
// schedule from the static start size every step. Only AdaptivePolicy
// carries cross-run state; any other chunker is returned unchanged. The
// returned Chunker is stateful and must drive one loop at a time (runs
// started from it feed the next run's seed), unlike the stateless policy
// values, which may drive many loops at once.
func Persist(ck Chunker) Chunker {
	if ap, ok := ck.(AdaptivePolicy); ok {
		return &persistentAdaptive{p: ap}
	}
	return ck
}

type persistentAdaptive struct {
	p    AdaptivePolicy
	last *adaptiveRun
}

// NewRun starts a controller seeded with the previous run's learned state.
func (pc *persistentAdaptive) NewRun(n, cpus int) ChunkController {
	run := pc.p.NewRun(n, cpus).(*adaptiveRun)
	if pc.last != nil {
		run.inherit(pc.last)
	}
	pc.last = run
	return run
}
