package mutls_test

import (
	"testing"

	"repro/mutls"
)

// --- ForOptions.PollEvery: checkpoint polling inside speculated chunks ---

// TestPollEveryPreservesSemantics: polling (and the early-stop/inline-
// completion path it enables) may change who executes which suffix of a
// chunk, never the result — across models, CPU counts and forced
// rollbacks (squashed threads now die at the poll instead of draining).
func TestPollEveryPreservesSemantics(t *testing.T) {
	const n = 2048
	for _, model := range []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, cpus := range []int{1, 4} {
				for _, prob := range []float64{0, 0.4} {
					rt := newRuntime(t, cpus, func(o *mutls.Options) {
						o.RollbackProb = prob
						o.Seed = 7
					})
					opts := mutls.ForOptions{Model: model, PollEvery: 1}
					if got := fillSum(rt, n, opts); got != wantFill(n) {
						t.Fatalf("cpus=%d prob=%v: sum %d, want %d", cpus, prob, got, wantFill(n))
					}
					rt.Close()
				}
			}
		})
	}
}

// TestPollEveryStopsParkedThreads engineers openaddr hash-conflict parks
// (two writes 2^LogWords words apart share a slot) in chunks large enough
// that a parked thread would otherwise drain many more indices: with
// PollEvery set, the run must still produce the sequential result while
// conflict parks occur.
func TestPollEveryStopsParkedThreads(t *testing.T) {
	const logWords = 5
	const n = 512
	rt, err := mutls.New(mutls.Options{
		CPUs: 4, CollectStats: true, HeapBytes: 1 << 20,
		Buffering: mutls.Buffering{LogWords: logWords, OverflowCap: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var sum int64
	rt.Run(func(t0 *mutls.Thread) {
		arr := t0.Alloc(8 * 2 * n)
		opts := mutls.ForOptions{
			Model:     mutls.InOrder,
			Policy:    mutls.ChunkPolicy{MaxChunks: 8},
			PollEvery: 4,
		}
		mutls.ForRange(t0, n, opts, func(c *mutls.Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Tick(16)
				// arr[i] and arr[i+n] collide in the 2^logWords-word map
				// whenever n is a multiple of the map size.
				c.StoreInt64(arr+mutls.Addr(8*i), int64(i)*3+1)
				c.StoreInt64(arr+mutls.Addr(8*(i+n)), int64(i)*5+2)
			}
		})
		for i := 0; i < n; i++ {
			sum += t0.LoadInt64(arr+mutls.Addr(8*i)) + t0.LoadInt64(arr+mutls.Addr(8*(i+n)))
		}
		t0.Free(arr)
	})
	want := int64(0)
	for i := 0; i < n; i++ {
		want += int64(i)*3 + 1 + int64(i)*5 + 2
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if rt.Stats().GBuf.Conflicts == 0 {
		t.Fatal("scenario produced no conflict parks; the early-stop path never ran")
	}
}

// --- mutls.Persist: adaptive state carried across runs ---

// TestPersistCarriesLearnedState drives one adaptive run into coarsening
// (a rollback-heavy point profile) and checks that the next run from the
// same Persist chunker starts at the learned size, while a bare
// AdaptivePolicy restarts from Start.
func TestPersistCarriesLearnedState(t *testing.T) {
	policy := mutls.AdaptivePolicy{Start: 8, Window: 1, MaxSize: 1 << 16}
	pc := mutls.Persist(policy)
	const n = 1 << 20
	run1 := pc.NewRun(n, 4)
	now := mutls.Cost(0)
	lo := 0
	for i := 0; i < 16; i++ {
		hi := run1.Next(lo)
		latency := mutls.Cost(hi - lo)
		now += latency
		run1.Observe(mutls.ChunkFeedback{
			Lo: lo, Hi: hi, Forked: true, Committed: true,
			Latency: latency, Now: now,
			// Run-wide profile past MaxRollbackRate: the controller coarsens.
			Points: mutls.PointCounters{Commits: 5, Rollbacks: 5},
		})
		lo = hi
	}
	learned := run1.Next(lo) - lo
	if learned <= policy.Start {
		t.Fatalf("rollback-heavy run never coarsened: size %d", learned)
	}

	run2 := pc.NewRun(n, 4)
	if got := run2.Next(0); got != learned {
		t.Fatalf("persisted run starts at %d, want learned %d", got, learned)
	}
	if got := policy.NewRun(n, 4).Next(0); got != policy.Start {
		t.Fatalf("bare policy starts at %d, want Start %d", got, policy.Start)
	}
}

// TestPersistPassThrough: only adaptive policies carry state; everything
// else (including nil) passes through unchanged.
func TestPersistPassThrough(t *testing.T) {
	if mutls.Persist(nil) != nil {
		t.Fatal("Persist(nil) != nil")
	}
	static := mutls.ChunkPolicy{MaxChunks: 16}
	if got := mutls.Persist(static); got != mutls.Chunker(static) {
		t.Fatalf("Persist(static) = %v, want pass-through", got)
	}
}

// TestPersistAcrossForRangeRuns runs the same loop twice through one
// Persist chunker under forced rollbacks and checks both runs' results;
// the second run starts from the first run's learned schedule (the md/bh
// repeated-time-step shape).
func TestPersistAcrossForRangeRuns(t *testing.T) {
	const n = 2048
	rt := newRuntime(t, 4, func(o *mutls.Options) {
		o.RollbackProb = 0.4
		o.Seed = 11
	})
	defer rt.Close()
	ck := mutls.Persist(mutls.AdaptivePolicy{Window: 2})
	opts := mutls.ForOptions{Model: mutls.InOrder, Chunker: ck, PollEvery: 8}
	for step := 0; step < 3; step++ {
		if got := fillSum(rt, n, opts); got != wantFill(n) {
			t.Fatalf("step %d: sum %d, want %d", step, got, wantFill(n))
		}
	}
}
