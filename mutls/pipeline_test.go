package mutls_test

import (
	"math"
	"testing"

	"repro/mutls"
)

// pipeResult is what the reference pipeline computes: the final chain word
// and the accumulator cell.
type pipeResult struct {
	final uint64
	cell  int64
}

// runPipe drives a 3-stage pipeline with skewed memory flow: stage 0
// produces a[u], stage 1 consumes a[u-1] into b[u-1] (one token behind, so
// the producing write is committed), stage 2 folds b[u-2] into a shared
// cell. The chain word is a token cursor. With spec=false the same stage
// closures run inline in the same token order — the sequential reference.
func runPipe(rt *mutls.Runtime, tokens int, spec bool, opts mutls.PipelineOptions) pipeResult {
	var out pipeResult
	rt.Run(func(t0 *mutls.Thread) {
		n := tokens
		a := t0.Alloc(8 * n)
		b := t0.Alloc(8 * n)
		cell := t0.Alloc(8)
		t0.StoreInt64(cell, 0)
		stages := []mutls.Stage{
			func(c *mutls.Thread, token int, in uint64) uint64 {
				if token < n {
					c.Tick(150)
					c.StoreInt64(a+mutls.Addr(8*token), int64(token)*3+1)
				}
				return in + 1
			},
			func(c *mutls.Thread, token int, in uint64) uint64 {
				if u := token - 1; u >= 0 && u < n {
					c.Tick(150)
					v := c.LoadInt64(a + mutls.Addr(8*u))
					c.StoreInt64(b+mutls.Addr(8*u), v*v)
				}
				return in + 1
			},
			func(c *mutls.Thread, token int, in uint64) uint64 {
				if u := token - 2; u >= 0 && u < n {
					c.Tick(150)
					s := c.LoadInt64(cell)
					c.StoreInt64(cell, s+c.LoadInt64(b+mutls.Addr(8*u)))
				}
				return in + 1
			},
		}
		nTokens := n + 2
		if spec {
			out.final = mutls.Pipeline(t0, nTokens, 0, opts, stages...)
		} else {
			in := uint64(0)
			for token := 0; token < nTokens; token++ {
				for _, stage := range stages {
					in = stage(t0, token, in)
				}
			}
			out.final = in
		}
		out.cell = t0.LoadInt64(cell)
		t0.Free(a)
		t0.Free(b)
		t0.Free(cell)
	})
	return out
}

func TestPipelineMatchesSequentialAcrossModels(t *testing.T) {
	const tokens = 40
	want := runPipe(newRuntime(t, 0, nil), tokens, false, mutls.PipelineOptions{})
	for _, model := range models4 {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for _, cpus := range []int{0, 1, 4} {
				rt := newRuntime(t, cpus, nil)
				opts := mutls.PipelineOptions{Model: model, Predictor: mutls.Stride}
				if got := runPipe(rt, tokens, true, opts); got != want {
					t.Fatalf("cpus=%d: pipeline = %+v, want %+v", cpus, got, want)
				}
			}
		})
	}
}

func TestPipelineAcrossBackends(t *testing.T) {
	const tokens = 40
	want := runPipe(newRuntime(t, 0, nil), tokens, false, mutls.PipelineOptions{})
	for _, backend := range mutls.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			rt := newRuntime(t, 4, func(o *mutls.Options) {
				o.Buffering = mutls.Buffering{Backend: backend}
			})
			opts := mutls.PipelineOptions{Predictor: mutls.Stride}
			if got := runPipe(rt, tokens, true, opts); got != want {
				t.Fatalf("pipeline = %+v, want %+v", got, want)
			}
			if s := rt.Stats(); s.Commits == 0 {
				t.Fatalf("pipeline committed nothing (%d rollbacks)", s.Rollbacks)
			}
		})
	}
}

func TestPipelineStagesCommit(t *testing.T) {
	rt := newRuntime(t, 8, nil)
	runPipe(rt, 64, true, mutls.PipelineOptions{Predictor: mutls.Stride})
	s := rt.Stats()
	if s.Commits == 0 {
		t.Fatalf("no committed stage speculations (%d rollbacks)", s.Rollbacks)
	}
	// Two speculated stages over 66 tokens: well over half the stage
	// executions should commit once the predictors are warm.
	if s.Commits < 64 {
		t.Fatalf("only %d commits over a 66-token, 2-speculated-stage pipeline (%d rollbacks)",
			s.Commits, s.Rollbacks)
	}
}

func TestPipelineUnderForcedRollbacks(t *testing.T) {
	const tokens = 40
	want := runPipe(newRuntime(t, 0, nil), tokens, false, mutls.PipelineOptions{})
	for _, prob := range []float64{0.3, 1.0} {
		rt := newRuntime(t, 4, func(o *mutls.Options) {
			o.RollbackProb = prob
			o.Seed = 11
		})
		opts := mutls.PipelineOptions{Predictor: mutls.Stride}
		if got := runPipe(rt, tokens, true, opts); got != want {
			t.Fatalf("prob=%v: pipeline = %+v, want %+v", prob, got, want)
		}
		if prob == 1.0 {
			if s := rt.Stats(); s.Rollbacks == 0 {
				t.Fatal("RollbackProb=1 produced no rollbacks")
			}
		}
	}
}

// TestPipelineFloatMode exercises Float inter-stage words: the chain
// cursor advances by a constant 0.5 per stage, so the float stride
// predictor commits, and with a jittered cursor the RelTol mode still
// commits while bit-exact validation cannot.
func TestPipelineFloatMode(t *testing.T) {
	const tokens = 48
	run := func(jitter float64, relTol float64, cpus int) (float64, *mutls.Runtime) {
		rt := newRuntime(t, cpus, nil)
		var final float64
		rt.Run(func(t0 *mutls.Thread) {
			stage := func(c *mutls.Thread, token int, in uint64) uint64 {
				c.Tick(150)
				v := math.Float64frombits(in) + 0.5 + jitter*float64(token%3)
				return math.Float64bits(v)
			}
			opts := mutls.PipelineOptions{
				Predictor: mutls.Stride,
				Float:     true,
				RelTol:    relTol,
			}
			final = math.Float64frombits(mutls.Pipeline(t0, tokens, math.Float64bits(1.0), opts, stage, stage, stage))
		})
		return final, rt
	}

	want, _ := run(0, 0, 0) // sequential reference (no CPUs = no forks)
	got, rt := run(0, 0, 4)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("float pipeline = %v, want bit-exact %v", got, want)
	}
	if s := rt.Stats(); s.Commits == 0 {
		t.Fatalf("constant-stride float pipeline committed nothing (%d rollbacks)", s.Rollbacks)
	}

	const jitter = 1e-12
	wantJ, _ := run(jitter, 0, 0)
	gotJ, rtJ := run(jitter, 1e-6, 4)
	if diff := math.Abs(gotJ - wantJ); diff > 1e-6*math.Abs(wantJ) {
		t.Fatalf("tolerant float pipeline drifted: got %v, want %v", gotJ, wantJ)
	}
	if s := rtJ.Stats(); s.Commits == 0 {
		t.Fatalf("tolerant float pipeline committed nothing (%d rollbacks)", s.Rollbacks)
	}
}

// TestPipelineDegenerate pins the edge cases: no tokens, no stages and a
// single stage (nothing to speculate) all run inline and return the right
// chain word.
func TestPipelineDegenerate(t *testing.T) {
	rt := newRuntime(t, 2, nil)
	rt.Run(func(t0 *mutls.Thread) {
		if got := mutls.Pipeline(t0, 0, 42, mutls.PipelineOptions{}); got != 42 {
			t.Fatalf("0 stages: %d, want init 42", got)
		}
		stage := func(c *mutls.Thread, token int, in uint64) uint64 { return in + 2 }
		if got := mutls.Pipeline(t0, 0, 7, mutls.PipelineOptions{}, stage); got != 7 {
			t.Fatalf("0 tokens: %d, want init 7", got)
		}
		if got := mutls.Pipeline(t0, 5, 0, mutls.PipelineOptions{}, stage); got != 10 {
			t.Fatalf("1 stage x 5 tokens: %d, want 10", got)
		}
	})
}
