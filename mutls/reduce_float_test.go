package mutls_test

import (
	"math"
	"testing"

	"repro/mutls"
)

// models4 is the full forking-model matrix (the Figure 10 trio plus the
// linear mixed baseline).
var models4 = []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed, mutls.MixedLinear}

// recordingChunker wraps a Chunker (nil = the default unit split) and
// appends every observed ChunkFeedback to fbs. Observe is called only from
// the non-speculative thread, so plain appends are race-free.
type recordingChunker struct {
	inner mutls.Chunker
	fbs   *[]mutls.ChunkFeedback
}

func (rc recordingChunker) NewRun(n, cpus int) mutls.ChunkController {
	r := &recordingRun{fbs: rc.fbs}
	if rc.inner != nil {
		r.inner = rc.inner.NewRun(n, cpus)
	}
	return r
}

type recordingRun struct {
	inner mutls.ChunkController
	fbs   *[]mutls.ChunkFeedback
}

func (r *recordingRun) Next(lo int) int {
	if r.inner != nil {
		return r.inner.Next(lo)
	}
	return lo + 1
}

func (r *recordingRun) Observe(fb mutls.ChunkFeedback) {
	*r.fbs = append(*r.fbs, fb)
	if r.inner != nil {
		r.inner.Observe(fb)
	}
}

// TestReduceColdStartFirstForkCommits is the regression test for the
// cold-predictor fork: with a nonzero init and a constant per-chunk delta,
// the warm-gated stride predictor must make the very first forked
// continuation commit (the old code predicted accumulator 0 for the first
// fork, which could only validate when init was 0).
func TestReduceColdStartFirstForkCommits(t *testing.T) {
	const nChunks, init, delta = 16, int64(5), int64(3)
	rt := newRuntime(t, 4, nil)
	var fbs []mutls.ChunkFeedback
	opts := mutls.ReduceOptions{
		Predictor: mutls.Stride,
		Chunks:    recordingChunker{fbs: &fbs},
	}
	var got int64
	rt.Run(func(t0 *mutls.Thread) {
		got = mutls.Reduce(t0, nChunks, init, opts, func(c *mutls.Thread, idx int, acc int64) int64 {
			c.Tick(200)
			return acc + delta
		})
	})
	if want := init + nChunks*delta; got != want {
		t.Fatalf("Reduce = %d, want %d", got, want)
	}
	first := -1
	for i := range fbs {
		if fbs[i].Forked {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("no group was ever forked")
	}
	if !fbs[first].Committed {
		t.Fatalf("first forked group [%d,%d) rolled back; the cold-start fix must make it commit",
			fbs[first].Lo, fbs[first].Hi)
	}
	if s := rt.Stats(); s.Commits == 0 {
		t.Fatal("no commits recorded")
	}
}

// TestReduceFeedbackExactlyOncePerGroup drives Reduce through forced
// mispredictions (strictly growing per-chunk deltas defeat the stride
// predictor) on every GlobalBuffer backend: the result must stay
// sequential and the chunk controller must observe every group exactly
// once, in order, tiling [0, nChunks) — rollbacks included.
func TestReduceFeedbackExactlyOncePerGroup(t *testing.T) {
	const nChunks = 24
	delta := func(idx int) int64 { return int64(idx*idx + 1) }
	want := int64(7)
	for idx := 0; idx < nChunks; idx++ {
		want += delta(idx)
	}
	for _, backend := range mutls.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			rt := newRuntime(t, 4, func(o *mutls.Options) {
				o.Buffering = mutls.Buffering{Backend: backend}
			})
			var fbs []mutls.ChunkFeedback
			opts := mutls.ReduceOptions{
				Predictor: mutls.Stride,
				Chunks:    recordingChunker{fbs: &fbs},
			}
			var got int64
			rt.Run(func(t0 *mutls.Thread) {
				got = mutls.Reduce(t0, nChunks, 7, opts, func(c *mutls.Thread, idx int, acc int64) int64 {
					c.Tick(150)
					return acc + delta(idx)
				})
			})
			if got != want {
				t.Fatalf("Reduce = %d, want %d", got, want)
			}
			cover := 0
			for i, fb := range fbs {
				if fb.Lo != cover || fb.Hi <= fb.Lo {
					t.Fatalf("feedback %d is [%d,%d), want a group starting at %d (duplicate or gap)",
						i, fb.Lo, fb.Hi, cover)
				}
				cover = fb.Hi
			}
			if cover != nChunks {
				t.Fatalf("feedback covered [0,%d), want [0,%d)", cover, nChunks)
			}
			if s := rt.Stats(); s.Rollbacks == 0 {
				t.Fatal("growing deltas produced no mispredictions (predictor too strong or no forks)")
			}
		})
	}
}

// reduceFloatSeq is the sequential reference fold.
func reduceFloatSeq(nChunks int, init float64, delta func(int) float64) float64 {
	acc := init
	for idx := 0; idx < nChunks; idx++ {
		acc += delta(idx)
	}
	return acc
}

// TestReduceFloat64MatchesSequential: with RelTol 0 the float reduction is
// bit-identical to the sequential fold under every model and backend, even
// when the deltas are irregular (every misprediction re-executes inline).
func TestReduceFloat64MatchesSequential(t *testing.T) {
	const nChunks, init = 32, 0.5
	delta := func(idx int) float64 { return float64(idx) * 0.375 }
	want := reduceFloatSeq(nChunks, init, delta)
	for _, model := range models4 {
		for _, backend := range mutls.Backends() {
			rt := newRuntime(t, 4, func(o *mutls.Options) {
				o.Buffering = mutls.Buffering{Backend: backend}
			})
			opts := mutls.ReduceFloatOptions{Model: model, Predictor: mutls.Stride}
			var got float64
			rt.Run(func(t0 *mutls.Thread) {
				got = mutls.ReduceFloat64(t0, nChunks, init, opts, func(c *mutls.Thread, idx int, acc float64) float64 {
					c.Tick(100)
					return acc + delta(idx)
				})
			})
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("model %v backend %s: ReduceFloat64 = %v, want bit-exact %v", model, backend, got, want)
			}
		}
	}
}

// TestReduceFloat64StrideCommits: a constant float delta is followed
// exactly by the float-arithmetic stride predictor, so continuations
// commit and the result stays bit-exact (nonzero init, per the cold-start
// fix).
func TestReduceFloat64StrideCommits(t *testing.T) {
	const nChunks, init = 32, 2.5
	rt := newRuntime(t, 4, nil)
	opts := mutls.ReduceFloatOptions{Predictor: mutls.Stride}
	var got float64
	rt.Run(func(t0 *mutls.Thread) {
		got = mutls.ReduceFloat64(t0, nChunks, init, opts, func(c *mutls.Thread, idx int, acc float64) float64 {
			c.Tick(200)
			return acc + 0.25
		})
	})
	if want := init + nChunks*0.25; math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("ReduceFloat64 = %v, want %v", got, want)
	}
	if s := rt.Stats(); s.Commits == 0 {
		t.Fatalf("constant-delta float reduction committed nothing (%d rollbacks)", s.Rollbacks)
	}
}

// TestReduceFloat64ToleranceMode: per-chunk deltas with a tiny jitter
// defeat bit-exact validation (every fork rolls back, result stays exact)
// but commit under a relative tolerance, with the final deviation bounded
// far below the tolerance.
func TestReduceFloat64ToleranceMode(t *testing.T) {
	const nChunks, init = 48, 1.0
	delta := func(idx int) float64 { return 1.0 + float64(idx%5)*1e-12 }
	want := reduceFloatSeq(nChunks, init, delta)
	body := func(c *mutls.Thread, idx int, acc float64) float64 {
		c.Tick(150)
		return acc + delta(idx)
	}

	exact := newRuntime(t, 4, nil)
	var got float64
	exact.Run(func(t0 *mutls.Thread) {
		got = mutls.ReduceFloat64(t0, nChunks, init, mutls.ReduceFloatOptions{Predictor: mutls.Stride}, body)
	})
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("exact mode: ReduceFloat64 = %v, want bit-exact %v", got, want)
	}
	if s := exact.Stats(); s.Rollbacks == 0 {
		t.Fatal("jittered deltas should roll back every bit-exact validation")
	}

	tol := newRuntime(t, 4, nil)
	tol.Run(func(t0 *mutls.Thread) {
		got = mutls.ReduceFloat64(t0, nChunks, init,
			mutls.ReduceFloatOptions{Predictor: mutls.Stride, RelTol: 1e-6}, body)
	})
	if diff := math.Abs(got - want); diff > 1e-6*math.Abs(want) {
		t.Fatalf("tolerance mode drifted: got %v, want %v (+-%v)", got, want, 1e-6*math.Abs(want))
	}
	if s := tol.Stats(); s.Commits == 0 {
		t.Fatalf("tolerance mode committed nothing (%d rollbacks)", s.Rollbacks)
	}
}

// TestReduceFuncMonoids drives the word-generic reduction over two
// non-additive monoids: max (predictable once the running max plateaus —
// last-value commits) and a wrapping product (unpredictable — every fork
// rolls back, the result still matches the sequential fold).
func TestReduceFuncMonoids(t *testing.T) {
	const nChunks = 32
	maxVal := func(idx int) uint64 {
		if idx > 10 {
			idx = 10
		}
		return uint64(idx * 7)
	}
	wantMax := uint64(3)
	for idx := 0; idx < nChunks; idx++ {
		if v := maxVal(idx); v > wantMax {
			wantMax = v
		}
	}
	wantProd := uint64(1)
	for idx := 0; idx < nChunks; idx++ {
		wantProd *= 2*uint64(idx) + 3
	}

	for _, model := range models4 {
		rt := newRuntime(t, 4, nil)
		var gotMax, gotProd uint64
		rt.Run(func(t0 *mutls.Thread) {
			gotMax = mutls.ReduceFunc(t0, nChunks, 3, mutls.ReduceOptions{Model: model},
				func(c *mutls.Thread, idx int, acc uint64) uint64 {
					c.Tick(120)
					if v := maxVal(idx); v > acc {
						return v
					}
					return acc
				})
			gotProd = mutls.ReduceFunc(t0, nChunks, 1, mutls.ReduceOptions{Model: model},
				func(c *mutls.Thread, idx int, acc uint64) uint64 {
					c.Tick(120)
					return acc * (2*uint64(idx) + 3)
				})
		})
		if gotMax != wantMax {
			t.Fatalf("model %v: max monoid = %d, want %d", model, gotMax, wantMax)
		}
		if gotProd != wantProd {
			t.Fatalf("model %v: product monoid = %#x, want %#x", model, gotProd, wantProd)
		}
	}

	// The plateaued max under last-value prediction must actually commit.
	rt := newRuntime(t, 4, nil)
	rt.Run(func(t0 *mutls.Thread) {
		mutls.ReduceFunc(t0, nChunks, 3, mutls.ReduceOptions{},
			func(c *mutls.Thread, idx int, acc uint64) uint64 {
				c.Tick(200)
				if v := maxVal(idx); v > acc {
					return v
				}
				return acc
			})
	})
	if s := rt.Stats(); s.Commits == 0 {
		t.Fatalf("plateaued max committed nothing (%d rollbacks)", s.Rollbacks)
	}
}

// TestDriverRunsUseDistinctPoints: consecutive driver runs on one runtime
// speculate on distinct fork/join points (AllocPoint round-robin), so one
// run's live counters never absorb another's executions.
func TestDriverRunsUseDistinctPoints(t *testing.T) {
	const n, chunks = 2048, 16
	rt := newRuntime(t, 4, nil)
	var c0After, c0Final, c1Final int64
	rt.Run(func(t0 *mutls.Thread) {
		arr := t0.Alloc(8 * n)
		body := func(c *mutls.Thread, idx int) {
			for i := idx; i < n; i += chunks {
				c.Tick(4)
				c.StoreInt64(arr+mutls.Addr(8*i), int64(i))
			}
		}
		mutls.For(t0, chunks, mutls.ForOptions{Model: mutls.InOrder}, body)
		c0After = rt.PointCounters(0).Executions()
		mutls.For(t0, chunks, mutls.ForOptions{Model: mutls.InOrder}, body)
		c0Final = rt.PointCounters(0).Executions()
		c1Final = rt.PointCounters(1).Executions()
		t0.Free(arr)
	})
	if c0After == 0 {
		t.Fatal("first run recorded no executions on point 0")
	}
	if c0Final != c0After {
		t.Fatalf("second run touched point 0 (executions %d -> %d); runs must use distinct points", c0After, c0Final)
	}
	if c1Final == 0 {
		t.Fatal("second run recorded no executions on its own point")
	}
}

// TestNestedDriversAdaptive: an outer adaptive ForRange whose inline
// (non-speculative) bodies drive a nested adaptive For. The nested run
// allocates its own fork point, so the outer controller's feedback deltas
// stay clean — and, per the driver contract, nested drivers are legal only
// on the non-speculative thread, so speculative chunks do the same work
// directly.
func TestNestedDriversAdaptive(t *testing.T) {
	const rows, cols = 24, 64
	rt := newRuntime(t, 4, nil)
	var sum int64
	rt.Run(func(t0 *mutls.Thread) {
		arr := t0.Alloc(8 * rows * cols)
		fill := func(c *mutls.Thread, r, i int) {
			c.Tick(3)
			c.StoreInt64(arr+mutls.Addr(8*(r*cols+i)), int64(r*cols+i))
		}
		outer := mutls.ForOptions{Model: mutls.InOrder, Chunker: mutls.AdaptivePolicy{}}
		mutls.ForRange(t0, rows, outer, func(c *mutls.Thread, lo, hi int) {
			for r := lo; r < hi; r++ {
				if c.Speculative() {
					for i := 0; i < cols; i++ {
						fill(c, r, i)
					}
				} else {
					inner := mutls.ForOptions{Model: mutls.Mixed, Chunker: mutls.AdaptivePolicy{}}
					mutls.For(c, cols, inner, func(cc *mutls.Thread, i int) {
						fill(cc, r, i)
					})
				}
			}
		})
		for k := 0; k < rows*cols; k++ {
			sum += t0.LoadInt64(arr + mutls.Addr(8*k))
		}
		t0.Free(arr)
	})
	if want := int64(rows*cols) * int64(rows*cols-1) / 2; sum != want {
		t.Fatalf("nested adaptive loops sum = %d, want %d", sum, want)
	}
}
