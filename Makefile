# Build and verification entry points. CI runs `make vet`; run it
# locally before pushing — it is the consolidated static gate (gofmt,
# go vet, mutls-vet, and staticcheck when installed).

GO ?= go
# Pinned staticcheck version: CI and developers must agree on the
# checker vocabulary or the gate flaps across versions.
STATICCHECK_VERSION ?= 2023.1.7

.PHONY: all build test race vet vet-fast fmt mutls-vet staticcheck bench-smoke chaos

# Seed for the deterministic fault-injection sweep; override to replay a
# failing CI run: `make chaos CHAOS_SEED=<seed from the log>`.
CHAOS_SEED ?= 7

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet is the consolidated static-analysis gate:
#   1. gofmt       — formatting drift fails the build
#   2. go vet      — the standard suite
#   3. mutls-vet   — the speculation-contract analyzers (internal/analysis)
#   4. staticcheck — only when present at the pinned version (the CI
#      container has no network; the gate must not depend on go install)
vet: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/mutls-vet -timing ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ($$(staticcheck -version 2>/dev/null | head -n1), pinned: $(STATICCHECK_VERSION))"; \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (pin: $(STATICCHECK_VERSION) — go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# vet-fast skips the interprocedural analyzers (no whole-module effect
# index): the per-package subset for tight edit loops. CI runs full vet.
vet-fast: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/mutls-vet -fast ./...

# mutls-vet alone (text findings; see also -json and -run <analyzer>).
mutls-vet:
	$(GO) run ./cmd/mutls-vet ./...

staticcheck:
	staticcheck ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# chaos is the fault-injection smoke: seeded storms over the quick kernel
# subset under the race detector, asserting checksum equivalence, typed
# containment and zero goroutine leaks. Fully reproducible from the seed.
chaos:
	$(GO) run -race ./cmd/mutls-bench -chaos -quick -seed $(CHAOS_SEED)
