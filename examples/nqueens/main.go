// N-queens under the tree-form mixed forking model — the class of program
// the paper's mixed model exists for: in-order speculation only extracts
// the top level of a search tree and out-of-order descends a single branch,
// while the mixed model forks a whole tree of threads (§II).
//
// This example runs the same search under all three models and prints the
// virtual-time speedups side by side, reproducing the Figure 10 story in
// miniature. The run configuration is expressed entirely in public mutls
// types.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/mutls"
)

func main() {
	w := bench.NQueen
	size := bench.Size{N: 10}

	cfg := bench.RunConfig{
		CPUs:   31, // plus the non-speculative thread: a 32-CPU machine
		Size:   size,
		Timing: mutls.Virtual,
		Cost:   mutls.DefaultCostModel(),
	}
	seq, err := bench.MeasureSeq(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-queens: %d solutions, sequential virtual time %d\n",
		size.N, seq.Checksum, seq.Runtime)

	for _, model := range []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed} {
		c := cfg
		c.Model = model
		m, err := bench.MeasureSpec(w, c)
		if err != nil {
			log.Fatal(err)
		}
		if m.Checksum != seq.Checksum {
			log.Fatalf("%v: wrong solution count %d", model, m.Checksum)
		}
		fmt.Printf("%-12v speedup %5.2f  (%3d commits, %d rollbacks, coverage %.1f)\n",
			model, float64(seq.Runtime)/float64(m.Runtime),
			m.Summary.Commits, m.Summary.Rollbacks, m.Summary.Coverage())
	}
}
