// A multi-tenant speculation service: the MUTLS runtime behind HTTP.
// Every request leases a runtime from a shared pool (admission-controlled
// against a host CPU budget), runs one benchmark kernel speculatively
// under the request's deadline, verifies the checksum against the
// sequential reference, and reports the speculation activity.
//
//	go run ./examples/server -addr :8080 &
//	curl 'localhost:8080/run?kernel=mandelbrot&n=64&m=500'
//	curl 'localhost:8080/run?kernel=matmult&n=64'
//	curl 'localhost:8080/stats'
//
// Load-test it with cmd/mutls-load:
//
//	go run ./cmd/mutls-load -url http://localhost:8080 -c 32 -n 300
//
// SIGINT/SIGTERM drain gracefully: in-flight runs finish (or are unwound
// at their next speculation boundary when their client gives up), queued
// requests are shed, and the pool closes every runtime before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/mutls"
	"repro/mutls/pool"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	runtimes := flag.Int("runtimes", 2, "pooled runtimes (max concurrent tenants)")
	cpus := flag.Int("cpus", 4, "speculative virtual CPUs per runtime")
	budget := flag.Int("budget", 0, "host CPU budget across all leases (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "acquire queue limit (default 4x runtimes; -1 disables queueing)")
	flag.Parse()

	s, err := serve.New(serve.Options{Pool: pool.Options{
		Runtimes:   *runtimes,
		HostBudget: *budget,
		QueueLimit: *queue,
		Runtime:    mutls.Options{CPUs: *cpus},
	}})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	go func() {
		log.Printf("serving speculation on http://%s (kernels: %v)", *addr, s.Kernels())
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("draining…")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	s.Close()
	log.Print("pool closed, bye")
}
