// Stage-parallel speculative pipelines through mutls.Pipeline: tokens flow
// through an ordered list of stages, the non-speculative thread runs each
// token's first stage, and the downstream stages run speculatively from
// value-predicted upstream live-outs (validated at the join with
// MUTLS_validate_local). Data moves through simulated memory with a
// one-token skew — each stage consumes what its upstream produced a token
// earlier, the DSWP-style software-pipelining discipline that keeps the
// producing writes committed before the consuming stage speculates.
//
// The pipeline here is a toy ETL: stage 0 decodes a record, stage 1
// enriches it, stage 2 folds it into a running total.
package main

import (
	"fmt"
	"log"

	"repro/mutls"
)

const records = 256

func main() {
	rt, err := mutls.New(mutls.Options{CPUs: 4, CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	var total int64
	rt.Run(func(t *mutls.Thread) {
		raw := t.Alloc(8 * records)
		decoded := t.Alloc(8 * records)
		enriched := t.Alloc(8 * records)
		cell := t.Alloc(8)
		for i := 0; i < records; i++ {
			t.StoreInt64(raw+mutls.Addr(8*i), int64(i)*5+2)
		}
		t.StoreInt64(cell, 0)

		decode := func(c *mutls.Thread, token int, in uint64) uint64 {
			if token < records {
				c.Tick(300)
				v := c.LoadInt64(raw + mutls.Addr(8*token))
				c.StoreInt64(decoded+mutls.Addr(8*token), v^0x55)
			}
			return in + 1 // a token cursor: trivially stride-predictable
		}
		enrich := func(c *mutls.Thread, token int, in uint64) uint64 {
			if u := token - 1; u >= 0 && u < records {
				c.Tick(300)
				v := c.LoadInt64(decoded + mutls.Addr(8*u))
				c.StoreInt64(enriched+mutls.Addr(8*u), v*3+1)
			}
			return in + 1
		}
		fold := func(c *mutls.Thread, token int, in uint64) uint64 {
			if u := token - 2; u >= 0 && u < records {
				c.Tick(300)
				s := c.LoadInt64(cell)
				c.StoreInt64(cell, s+c.LoadInt64(enriched+mutls.Addr(8*u)))
			}
			return in + 1
		}

		// records+2 tokens drain the two skewed stages.
		mutls.Pipeline(t, records+2, 0,
			mutls.PipelineOptions{Predictor: mutls.Stride},
			decode, enrich, fold)
		total = t.LoadInt64(cell)
	})

	want := int64(0)
	for i := 0; i < records; i++ {
		want += (int64(i)*5+2^0x55)*3 + 1
	}
	s := rt.Stats()
	fmt.Printf("total = %d (expect %d)\n", total, want)
	fmt.Printf("stage speculations: %d committed, %d rolled back\n", s.Commits, s.Rollbacks)
}
