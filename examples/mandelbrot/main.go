// Loop-level speculation on a Mandelbrot render: rows are chunked and
// speculated with chained in-order forks through mutls.For (each chunk's
// region forks the next chunk before doing its own work), then the image is
// printed as ASCII art. This is the transformed shape of the paper's
// Figure 2 applied to a real loop, with the protocol supplied by the
// library.
package main

import (
	"fmt"
	"log"

	"repro/mutls"
)

const (
	width   = 48
	height  = 24
	maxIter = 256
	chunks  = 8
)

var shades = []byte(" .:-=+*#%@")

func main() {
	rt, err := mutls.New(mutls.Options{CPUs: 8, CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	var img mutls.Addr
	tn, err := rt.Run(func(t *mutls.Thread) {
		img = t.Alloc(8 * width * height)
		mutls.For(t, chunks, mutls.ForOptions{Model: mutls.InOrder}, func(c *mutls.Thread, idx int) {
			for y := idx; y < height; y += chunks {
				c.CheckPoint() // per-row poll: squash/cancel interrupts between rows
				ci := -1.2 + 2.4*float64(y)/float64(height)
				for x := 0; x < width; x++ {
					cr := -2.1 + 3.0*float64(x)/float64(width)
					zr, zi, it := 0.0, 0.0, 0
					for it < maxIter && zr*zr+zi*zi <= 4 {
						zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
						it++
					}
					c.Tick(int64(it))
					c.StoreInt64(img+mutls.Addr(8*(y*width+x)), int64(it))
				}
			}
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	arena := rt.Space().Arena
	for y := 0; y < height; y++ {
		line := make([]byte, width)
		for x := 0; x < width; x++ {
			it := arena.ReadInt64(mutls.Addr(uint64(img) + uint64(8*(y*width+x))))
			shade := int(it) * (len(shades) - 1) / maxIter
			line[x] = shades[shade]
		}
		fmt.Println(string(line))
	}
	s := rt.Stats()
	fmt.Printf("rendered with %d speculative commits in %d virtual units (coverage %.1f)\n",
		s.Commits, tn, s.Coverage())
}
