// Quickstart: the smallest complete MUTLS program, written against the
// public mutls API. A runtime is created, mutls.For cuts a loop into
// chunks speculated by chained forks — the fork/join/barrier pattern of
// the paper's Figure 1, with all protocol plumbing (ranks arrays, register
// save/restore, join-and-reexecute) handled by the library — and the
// statistics summary reports how much of the work committed speculatively.
package main

import (
	"fmt"
	"log"

	"repro/mutls"
)

func main() {
	rt, err := mutls.New(mutls.Options{CPUs: 2, CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	const n = 1 << 16
	const chunks = 2
	var sum int64
	tn, err := rt.Run(func(t *mutls.Thread) {
		arr := t.Alloc(8 * n)

		// Each chunk fills its half of the array; chunk 1 runs as a
		// speculative thread while the non-speculative thread works on
		// chunk 0, and the join validates and commits it.
		mutls.For(t, chunks, mutls.ForOptions{Model: mutls.Mixed}, func(c *mutls.Thread, idx int) {
			per := n / chunks
			for i := idx * per; i < (idx+1)*per; i++ {
				if i%1024 == 0 {
					c.CheckPoint() // let squash/cancel interrupt the chunk
				}
				c.StoreInt64(arr+mutls.Addr(8*i), int64(i)*3)
			}
		})

		// Back on the non-speculative thread: every committed store is in
		// main memory now.
		sum = 0
		for i := 0; i < n; i++ {
			sum += t.LoadInt64(arr + mutls.Addr(8*i))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sum = %d (expect %d)\n", sum, int64(3*(n-1)*n/2))
	s := rt.Stats()
	fmt.Printf("virtual runtime %d units, %d committed / %d rolled back speculations\n",
		tn, s.Commits, s.Rollbacks)
}
