// Quickstart: the smallest complete MUTLS program. A parent thread forks a
// speculative thread at a fork point, both sides work on disjoint halves of
// an array, and the join validates and commits the speculative half —
// exactly the fork/join/barrier pattern of the paper's Figure 1.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
)

func main() {
	rt, err := core.NewRuntime(core.Options{NumCPUs: 2, CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	const n = 1 << 16
	tn := rt.Run(func(t *core.Thread) {
		arr := t.Alloc(8 * n)

		// __builtin_MUTLS_fork(0, mixed): claim a CPU for the second half.
		ranks := []core.Rank{0}
		if h := t.Fork(ranks, 0, core.Mixed); h != nil {
			h.SetRegvarAddr(0, arr) // proxy: save the live-ins
			h.Start(func(c *core.Thread) uint32 {
				p := c.GetRegvarAddr(0) // stub: restore the live-ins
				sum := int64(0)
				for i := n / 2; i < n; i++ {
					c.StoreInt64(p+mem.Addr(8*i), int64(i)*3)
					sum += int64(i) * 3
				}
				c.SaveRegvarInt64(1, sum) // live-out for the joiner
				return 0                  // ran to the region's barrier
			})
		}

		// S1: the parent's own half, concurrently with the speculation.
		sum := int64(0)
		for i := 0; i < n/2; i++ {
			t.StoreInt64(arr+mem.Addr(8*i), int64(i)*3)
			sum += int64(i) * 3
		}

		// __builtin_MUTLS_join(0): validate and commit the speculation.
		res := t.Join(ranks, 0)
		switch res.Status {
		case core.JoinCommitted:
			sum += res.RegvarInt64(1)
		default:
			// Not forked or rolled back: do the second half ourselves.
			for i := n / 2; i < n; i++ {
				t.StoreInt64(arr+mem.Addr(8*i), int64(i)*3)
				sum += int64(i) * 3
			}
		}
		fmt.Printf("sum = %d (expect %d)\n", sum, int64(3*(n-1)*n/2))
	})

	s := rt.Stats()
	fmt.Printf("virtual runtime %d units, %d committed / %d rolled back speculations\n",
		tn, s.Commits, s.Rollbacks)
}
