// Advanced runtime features on a chunked reduction: live-variable value
// prediction (the accumulator is predicted at each fork and validated with
// MUTLS_validate_local at the join, §IV-G4 plus the §VI future-work
// predictor), check-point early stops with resume-at-counter, and the
// adaptive fork heuristic.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/predict"
	"repro/internal/vclock"
)

const (
	n      = 1 << 14
	chunks = 16
	per    = n / chunks
)

func main() {
	rt, err := core.NewRuntime(core.Options{
		NumCPUs:               4,
		Timing:                vclock.Virtual,
		CollectStats:          true,
		AdaptiveForkHeuristic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	pred := predict.New(predict.Stride)

	var total int64
	rt.Run(func(t *core.Thread) {
		arr := t.Alloc(8 * n)
		for i := 0; i < n; i++ {
			t.StoreInt64(arr+mem.Addr(8*i), 7) // constant stride: predictable
		}

		// Out-of-order speculation on the *continuation*: the region
		// carries the running total across the chunk boundary, so the
		// accumulator must be predicted at fork time.
		sum := int64(0)
		for idx := 0; idx < chunks; idx++ {
			ranks := []core.Rank{0}
			var predicted int64
			h := t.Fork(ranks, 0, core.OutOfOrder)
			if h != nil {
				// Predict the accumulator's value at the join point.
				raw, _ := pred.Predict(0, 0)
				predicted = int64(raw)
				h.SetRegvarInt64(0, predicted)
				h.SetRegvarInt64(1, int64(idx+1))
				h.Start(func(c *core.Thread) uint32 {
					acc := c.GetRegvarInt64(0)
					next := int(c.GetRegvarInt64(1))
					if next < chunks {
						for i := next * per; i < (next+1)*per; i++ {
							if c.CheckPoint() {
								// Early join: save progress and stop.
								c.SaveRegvarInt64(2, acc)
								c.SaveRegvarInt64(3, int64(i))
								return 1
							}
							acc += c.LoadInt64(arr + mem.Addr(8*i))
						}
					}
					c.SaveRegvarInt64(2, acc)
					c.SaveRegvarInt64(3, int64((next+1)*per))
					return 0
				})
			}
			for i := idx * per; i < (idx+1)*per; i++ {
				sum += t.LoadInt64(arr + mem.Addr(8*i))
			}
			if h == nil {
				continue
			}
			// MUTLS_validate_local: was the prediction right?
			pred.Observe(0, 0, uint64(sum))
			t.ValidateRegvarInt64(ranks, 0, 0, sum)
			res := t.Join(ranks, 0)
			if res.Committed() {
				sum = res.RegvarInt64(2)
				// Synchronization table: resume where the region stopped.
				for i := int(res.RegvarInt64(3)); i < (idx+2)*per && i < n; i++ {
					sum += t.LoadInt64(arr + mem.Addr(8*i))
				}
				idx++ // the region consumed the next chunk
			}
		}
		total = sum
	})

	s := rt.Stats()
	hits, misses, cold := pred.Stats()
	fmt.Printf("total = %d (expect %d)\n", total, int64(7*n))
	fmt.Printf("predictor: %d hits, %d misses, %d cold; accuracy %.2f\n", hits, misses, cold, pred.Accuracy())
	fmt.Printf("speculations: %d committed, %d rolled back (locals mispredictions roll back)\n",
		s.Commits, s.Rollbacks)
}
