// Speculative reduction through mutls.Reduce: the accumulator is live
// across chunk boundaries, so the continuation is forked out-of-order with
// a value-predicted accumulator (§IV-G4 plus the §VI future-work predictor)
// that the join validates with MUTLS_validate_local — a misprediction rolls
// the speculation back and the chunk re-executes inline. With a constant
// per-chunk increment the stride predictor locks on after two chunks and
// most speculations commit. The continuation split is driven by the
// feedback-driven AdaptivePolicy, which groups chunk indices per
// speculation and resizes the groups from the rollback rate and commit
// latency of earlier joins.
package main

import (
	"fmt"
	"log"

	"repro/mutls"
)

const (
	n      = 1 << 14
	chunks = 16
	per    = n / chunks
)

func main() {
	rt, err := mutls.New(mutls.Options{
		CPUs:                  4,
		CollectStats:          true,
		AdaptiveForkHeuristic: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	var total int64
	rt.Run(func(t *mutls.Thread) {
		arr := t.Alloc(8 * n)
		for i := 0; i < n; i++ {
			t.StoreInt64(arr+mutls.Addr(8*i), 7) // constant stride: predictable
		}

		total = mutls.Reduce(t, chunks, 0,
			mutls.ReduceOptions{Predictor: mutls.Stride, Chunks: mutls.AdaptivePolicy{}},
			func(c *mutls.Thread, idx int, acc int64) int64 {
				for i := idx * per; i < (idx+1)*per; i++ {
					if i%1024 == 0 {
						c.CheckPoint() // let squash/cancel interrupt the chunk
					}
					acc += c.LoadInt64(arr + mutls.Addr(8*i))
				}
				return acc
			})
	})

	s := rt.Stats()
	fmt.Printf("total = %d (expect %d)\n", total, int64(7*n))
	fmt.Printf("speculations: %d committed, %d rolled back (locals mispredictions roll back)\n",
		s.Commits, s.Rollbacks)
}
