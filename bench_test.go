// Package repro's root benchmarks regenerate every table and figure of the
// MUTLS paper as testing.B targets (go test -bench=.), plus the ablation
// benches for the design choices DESIGN.md calls out. Each benchmark prints
// the regenerated rows once via b.Logf-style output to stdout is avoided;
// instead the figures' data is produced through the harness and the bench
// measures the time to regenerate it (the real, wall-clock cost of the
// experiment pipeline). Shape assertions live in the package tests; these
// targets are the "one bench per table/figure" entry points.
package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/gbuf"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/predict"
	"repro/internal/vclock"
	"repro/mutls"
)

// benchAxis keeps the figure benches fast while spanning the paper's range.
var benchAxis = []int{1, 4, 16, 64}

func newHarness() *harness.Harness {
	cfg := harness.DefaultConfig()
	cfg.CPUAxis = benchAxis
	return harness.New(cfg)
}

func runFigure(b *testing.B, fig func(io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fig(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table1(io.Discard)
	}
}

func BenchmarkTable2_Workloads(b *testing.B) {
	h := newHarness()
	for i := 0; i < b.N; i++ {
		h.Table2(io.Discard)
	}
}

func BenchmarkFig3_ComputeSpeedup(b *testing.B)  { runFigure(b, newHarness().Fig3) }
func BenchmarkFig4_MemorySpeedup(b *testing.B)   { runFigure(b, newHarness().Fig4) }
func BenchmarkFig5_CritEfficiency(b *testing.B)  { runFigure(b, newHarness().Fig5) }
func BenchmarkFig6_SpecEfficiency(b *testing.B)  { runFigure(b, newHarness().Fig6) }
func BenchmarkFig7_PowerEfficiency(b *testing.B) { runFigure(b, newHarness().Fig7) }
func BenchmarkFig8_CritBreakdown(b *testing.B)   { runFigure(b, newHarness().Fig8) }
func BenchmarkFig9_SpecBreakdown(b *testing.B)   { runFigure(b, newHarness().Fig9) }

func BenchmarkFig10_ForkModels(b *testing.B) { runFigure(b, newHarness().Fig10) }

func BenchmarkFig11_RollbackSensitivity(b *testing.B) {
	h := harness.New(harness.Config{CPUAxis: []int{1, 16}, Timing: mutls.Virtual})
	runFigure(b, h.Fig11)
}

func BenchmarkCoverage(b *testing.B) { runFigure(b, newHarness().Coverage) }

// BenchmarkFigPipeline regenerates the workload-shapes ablation: the
// pipeline and float-reduction kernels across all models and backends.
func BenchmarkFigPipeline(b *testing.B) {
	h := harness.New(harness.Config{CPUAxis: []int{1, 8}, Timing: mutls.Virtual})
	runFigure(b, h.FigPipeline)
}

// --- Per-workload wall-clock benches: the real cost of one speculative run
// at 8 virtual CPUs under real timing (what the runtime itself costs on
// this host, as opposed to the modelled machine).

func benchWorkload(b *testing.B, w *bench.Workload) {
	b.Helper()
	cfg := bench.RunConfig{
		CPUs:   8,
		Size:   w.CISize,
		Model:  w.DefaultModel,
		Timing: mutls.Real,
		Cost:   mutls.DefaultCostModel(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.MeasureSpec(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkload3x1(b *testing.B)        { benchWorkload(b, bench.X3P1) }
func BenchmarkWorkloadMandelbrot(b *testing.B) { benchWorkload(b, bench.Mandelbrot) }
func BenchmarkWorkloadMD(b *testing.B)         { benchWorkload(b, bench.MD) }
func BenchmarkWorkloadBH(b *testing.B)         { benchWorkload(b, bench.BH) }
func BenchmarkWorkloadFFT(b *testing.B)        { benchWorkload(b, bench.FFT) }
func BenchmarkWorkloadMatMult(b *testing.B)    { benchWorkload(b, bench.MatMult) }
func BenchmarkWorkloadNQueen(b *testing.B)     { benchWorkload(b, bench.NQueen) }
func BenchmarkWorkloadTSP(b *testing.B)        { benchWorkload(b, bench.TSP) }
func BenchmarkWorkloadStencil(b *testing.B)    { benchWorkload(b, bench.Stencil) }
func BenchmarkWorkloadFloatSum(b *testing.B)   { benchWorkload(b, bench.FloatSum) }

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblation_TreeVsLinear compares the tree-form mixed model against
// the Mitosis/POSH-style linear baseline under injected rollbacks: the
// linear cascade squashes logically later threads that the tree preserves.
func BenchmarkAblation_TreeVsLinear(b *testing.B) {
	for _, tc := range []struct {
		name  string
		model mutls.Model
	}{{"tree", mutls.Mixed}, {"linear", mutls.MixedLinear}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := bench.RunConfig{
				CPUs: 8, Size: bench.NQueen.CISize, Model: tc.model,
				Timing: mutls.Virtual, Cost: mutls.DefaultCostModel(),
				RollbackProb: 0.10, Seed: 7,
			}
			wasted := int64(0)
			runs := 0
			for i := 0; i < b.N; i++ {
				m, err := bench.MeasureSpec(bench.NQueen, cfg)
				if err != nil {
					b.Fatal(err)
				}
				wasted += int64(m.Summary.SpecLedger[vclock.Wasted])
				runs++
			}
			b.ReportMetric(float64(wasted)/float64(runs), "wasted-vunits/run")
		})
	}
}

// BenchmarkAblation_BufferSize sweeps the GlobalBuffer hash map size: small
// maps overflow and force early stops or rollbacks.
func BenchmarkAblation_BufferSize(b *testing.B) {
	for _, logWords := range []int{6, 10, 16} {
		b.Run(map[int]string{6: "64w", 10: "1Kw", 16: "64Kw"}[logWords], func(b *testing.B) {
			arena, err := mem.NewArena(1 << 22)
			if err != nil {
				b.Fatal(err)
			}
			buf, err := gbuf.New(arena, gbuf.Config{LogWords: logWords, OverflowCap: 64})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 4096; j++ {
					p := mem.Addr(8 + (j*232%32768)*8)
					buf.Store(p, 8, uint64(j))
					buf.Load(p, 8)
				}
				buf.Validate()
				buf.Commit(nil)
				buf.Finalize()
			}
			b.ReportMetric(float64(buf.C.Conflicts), "conflicts")
		})
	}
}

// BenchmarkAblation_ValuePrediction compares last-value and stride
// predictors on induction-variable histories.
func BenchmarkAblation_ValuePrediction(b *testing.B) {
	for _, kind := range []predict.Kind{predict.LastValue, predict.Stride} {
		b.Run(kind.String(), func(b *testing.B) {
			p := predict.New(kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 1024; j++ {
					p.Predict(j%8, 0)
					p.Observe(j%8, 0, uint64(j*3))
				}
			}
			b.ReportMetric(p.Accuracy(), "accuracy")
		})
	}
}

// BenchmarkAblation_ForkHeuristic measures the adaptive heuristic's effect
// on a workload whose speculations always roll back.
func BenchmarkAblation_ForkHeuristic(b *testing.B) {
	for _, tc := range []struct {
		name string
		on   bool
	}{{"off", false}, {"adaptive", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := bench.RunConfig{
				CPUs: 4, Size: bench.MatMult.CISize, Model: mutls.Mixed,
				Timing: mutls.Virtual, Cost: mutls.DefaultCostModel(),
				RollbackProb: 1.0, Seed: 3, Heuristic: tc.on,
			}
			var tn int64
			runs := 0
			for i := 0; i < b.N; i++ {
				m, err := bench.MeasureSpec(bench.MatMult, cfg)
				if err != nil {
					b.Fatal(err)
				}
				tn += int64(m.Runtime)
				runs++
			}
			b.ReportMetric(float64(tn)/float64(runs), "vunits/run")
		})
	}
}

// BenchmarkAblation_CommitFastPath isolates the whole-word-mark commit
// optimization against the byte-marked slow path.
func BenchmarkAblation_CommitFastPath(b *testing.B) {
	arena, err := mem.NewArena(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, store func(buf *gbuf.Buffer, p mem.Addr, j int)) {
		buf, err := gbuf.New(arena, gbuf.Config{LogWords: 14, OverflowCap: 64})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4096; j++ {
				store(buf, mem.Addr(8+j*8), j)
			}
			buf.Commit(nil)
			buf.Finalize()
		}
	}
	b.Run("whole-word", func(b *testing.B) {
		run(b, func(buf *gbuf.Buffer, p mem.Addr, j int) { buf.Store(p, 8, uint64(j)) })
	})
	b.Run("byte-marked", func(b *testing.B) {
		run(b, func(buf *gbuf.Buffer, p mem.Addr, j int) { buf.Store(p, 1, uint64(j)) })
	})
}

// BenchmarkWallclockQuick runs the curated wall-clock suite at CI sizes —
// the real-hardware counterpart of the figure benches above.
func BenchmarkWallclockQuick(b *testing.B) {
	h := newHarness()
	cfg := harness.WallclockConfig{Quick: true, CPUAxis: []int{1, 2}, Reps: 1}
	for i := 0; i < b.N; i++ {
		if err := h.Wallclock(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
