// Unitchecker mode: `go vet -vettool=mutls-vet` invokes the binary once
// per package with a JSON .cfg describing the unit — file list, import
// map and export-data locations. This file implements that protocol
// (the subset the suite needs: no facts, no fixes): type-check the
// unit's files against the supplied export data, run the analyzers,
// print findings to stderr, and write the (empty) .vetx output the go
// command expects.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// vetConfig mirrors the fields of the go command's vet .cfg file that
// this checker consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutls-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mutls-vet: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// The go command requires the vetx output to exist even though this
	// suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "mutls-vet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only invocation for a dependency: nothing to do
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutls-vet:", err)
			return 2
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// compiled: ImportMap canonicalizes the path, PackageFile locates it.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Error:    func(error) {}, // collect best-effort; gate below
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mutls-vet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	sup := analysis.CollectSuppressions(fset, files)
	var diags []analysis.Diagnostic
	inTestFile := func(d analysis.Diagnostic) bool {
		return strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go")
	}
	for _, a := range driver.Analyzers() {
		// Pass.Inter stays nil: the unitchecker protocol sees one package
		// at a time, so NeedsInter analyzers degrade to per-package scope
		// (specpure rebuilds a local effect index; cross-package helpers
		// fall to the trust boundary). The standalone mode is the real gate.
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			// Tests exercise the failure modes the suite guards against
			// (deliberate leaks, poll-free stalls), so _test.go files
			// type-check but are exempt from reporting — same policy as
			// the standalone mode's default (opt in there with -tests).
			if !sup.Suppressed(fset, d.Pos, d.Code) && !inTestFile(d) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "mutls-vet: %s: %s: %v\n", cfg.ImportPath, a.Name, err)
			return 2
		}
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.Format(fset))
		}
		return 2
	}
	return 0
}
