// Command mutls-vet is the multichecker for the mutls speculation
// contract: it runs the internal/analysis suite (specaccess, specpure,
// pollcheck, pointleak, leaseleak, atomicmix) over this module's
// packages.
//
// Standalone use:
//
//	go run ./cmd/mutls-vet ./...          # whole module (default)
//	go run ./cmd/mutls-vet -list          # analyzer and code reference
//	go run ./cmd/mutls-vet -run pollcheck ./mutls/...
//	go run ./cmd/mutls-vet -json ./...    # machine-readable findings
//	go run ./cmd/mutls-vet -fast ./...    # per-package analyzers only
//	go run ./cmd/mutls-vet -timing ./...  # wall time per analyzer
//
// It is also usable as a go vet tool:
//
//	go vet -vettool=$(pwd)/bin/mutls-vet ./...
//
// In that mode the go command invokes the binary once per package with a
// .cfg file (the unitchecker protocol); diagnostics go to stderr and a
// non-zero exit fails the vet run.
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
// Suppress individual findings with a justified directive:
//
//	//lint:allow CODE reason
//
// on the flagged line or the line above (the reason is mandatory).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
)

const version = "mutls-vet version 1.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet -vettool handshake: `mutls-vet -V=full` prints a version
	// stamp; a trailing *.cfg argument selects unitchecker mode.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-V" {
			fmt.Println(version)
			return 0
		}
		if a == "-flags" || a == "--flags" {
			// go vet asks which tool flags it may forward; none of the
			// standard vet analyzers' flags apply to this suite.
			fmt.Println("[]")
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return unitcheck(args[n-1])
	}

	fs := flag.NewFlagSet("mutls-vet", flag.ContinueOnError)
	var (
		listFlag   = fs.Bool("list", false, "print the analyzers and their diagnostic codes, then exit")
		jsonFlag   = fs.Bool("json", false, "emit findings as a JSON array instead of text")
		testsFlag  = fs.Bool("tests", false, "also analyze _test.go files")
		runFlag    = fs.String("run", "", "comma-separated analyzer subset (default: all)")
		dirFlag    = fs.String("C", "", "change to this directory (module root) before loading")
		fastFlag   = fs.Bool("fast", false, "skip the interprocedural analyzers (no whole-module effect index)")
		timingFlag = fs.Bool("timing", false, "print per-analyzer wall time to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mutls-vet [flags] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, a := range driver.Analyzers() {
			fmt.Printf("%-12s %s  %s\n", a.Name, strings.Join(a.Codes, ","), a.Doc)
		}
		return 0
	}

	var names []string
	if *runFlag != "" {
		names = strings.Split(*runFlag, ",")
	}
	analyzers, err := driver.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutls-vet:", err)
		return 2
	}
	if *fastFlag {
		analyzers = driver.Fast(analyzers)
	}

	root := *dirFlag
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutls-vet:", err)
			return 2
		}
	}
	l, err := load.New(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutls-vet:", err)
		return 2
	}
	l.IncludeTests = *testsFlag

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := l.Patterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutls-vet:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "mutls-vet: %s: %v\n", pkg.Path, terr)
		}
	}

	diags, timings, err := driver.RunTimed(pkgs, analyzers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutls-vet:", err)
		return 2
	}
	if *timingFlag {
		// Stderr so the breakdown composes with -json on stdout; CI tees
		// it into the job summary.
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "mutls-vet: timing %-13s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
	}

	if *jsonFlag {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Code     string `json:"code"`
			Message  string `json:"message"`
			Analyzer string `json:"analyzer"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			p := d.Position(l.Fset)
			rel, err := filepath.Rel(root, p.Filename)
			if err != nil {
				rel = p.Filename
			}
			out = append(out, finding{rel, p.Line, p.Column, d.Code, d.Message, d.Analyzer})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mutls-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(relFormat(root, l, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mutls-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relFormat renders a diagnostic with a root-relative path.
func relFormat(root string, l *load.Loader, d analysis.Diagnostic) string {
	p := d.Position(l.Fset)
	rel, err := filepath.Rel(root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s (%s)", rel, p.Line, p.Column, d.Code, d.Message, d.Analyzer)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
