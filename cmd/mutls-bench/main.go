// Command mutls-bench regenerates the tables and figures of the MUTLS paper
// (Cao & Verbrugge, "Mixed Model Universal Software Thread-Level
// Speculation", ICPP 2013).
//
// Usage:
//
//	mutls-bench                  # everything, quick sizes, virtual timing
//	mutls-bench -fig 3           # one figure (1, 2 = tables; 3..11 = figures)
//	mutls-bench -coverage        # the §V-B parallel coverage numbers
//	mutls-bench -paper           # Table II problem sizes (slow)
//	mutls-bench -cpus 1,2,4,64   # custom CPU axis
//	mutls-bench -real            # wall-clock timing instead of the cost model
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/mutls"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one table (1,2) or figure (3..11); 0 = everything")
	coverage := flag.Bool("coverage", false, "print the §V-B parallel execution coverage")
	paper := flag.Bool("paper", false, "use the paper's Table II problem sizes")
	cpus := flag.String("cpus", "", "comma-separated CPU axis (default 1,2,4,8,16,24,32,48,64)")
	real := flag.Bool("real", false, "wall-clock timing instead of the virtual cost model")
	seed := flag.Uint64("seed", 0, "seed for the forced-rollback generators")
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.Paper = *paper
	cfg.Seed = *seed
	if *real {
		cfg.Timing = mutls.Real
	}
	if *cpus != "" {
		axis, err := parseAxis(*cpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.CPUAxis = axis
	}
	h := harness.New(cfg)

	var err error
	switch {
	case *coverage:
		err = h.Coverage(os.Stdout)
	case *fig == 0:
		err = h.All(os.Stdout)
	case *fig == 1:
		harness.Table1(os.Stdout)
	case *fig == 2:
		h.Table2(os.Stdout)
	case *fig == 3:
		err = h.Fig3(os.Stdout)
	case *fig == 4:
		err = h.Fig4(os.Stdout)
	case *fig == 5:
		err = h.Fig5(os.Stdout)
	case *fig == 6:
		err = h.Fig6(os.Stdout)
	case *fig == 7:
		err = h.Fig7(os.Stdout)
	case *fig == 8:
		err = h.Fig8(os.Stdout)
	case *fig == 9:
		err = h.Fig9(os.Stdout)
	case *fig == 10:
		err = h.Fig10(os.Stdout)
	case *fig == 11:
		err = h.Fig11(os.Stdout)
	default:
		err = fmt.Errorf("unknown figure %d (valid: 1..11)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseAxis(s string) ([]int, error) {
	var axis []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad CPU count %q", part)
		}
		axis = append(axis, n)
	}
	return axis, nil
}
