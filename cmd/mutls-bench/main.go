// Command mutls-bench regenerates the tables and figures of the MUTLS paper
// (Cao & Verbrugge, "Mixed Model Universal Software Thread-Level
// Speculation", ICPP 2013), plus the GlobalBuffer backend ablation.
//
// Usage:
//
//	mutls-bench                  # everything, quick sizes, virtual timing
//	mutls-bench -fig 3           # one figure (1, 2 = tables; 3..11 = figures)
//	mutls-bench -fig gbuf        # GlobalBuffer backend ablation table
//	mutls-bench -fig chunks      # static vs adaptive chunk-sizing ablation
//	mutls-bench -fig pipeline    # pipeline + float-reduction kernels, models x backends
//	mutls-bench -gbuf chain      # run everything on the chain backend
//	mutls-bench -chunks adaptive # feedback-driven chunk sizing for all runs
//	mutls-bench -coverage        # the §V-B parallel coverage numbers
//	mutls-bench -paper           # Table II problem sizes (slow)
//	mutls-bench -cpus 1,2,4,64   # custom CPU axis
//	mutls-bench -real            # wall-clock timing instead of the cost model
//	mutls-bench -wallclock       # curated wall-clock suite, JSON output
//	mutls-bench -wallclock -quick # CI smoke sizes for the same suite
//	mutls-bench -chaos -seed 7   # deterministic fault-injection sweep
//	mutls-bench -chaos -quick    # CI-sized chaos smoke (three kernels)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/mutls"
)

func main() {
	fig := flag.String("fig", "", `regenerate one table (1,2), figure (3..11) or an ablation ("gbuf", "chunks", "pipeline"); empty = everything`)
	coverage := flag.Bool("coverage", false, "print the §V-B parallel execution coverage")
	paper := flag.Bool("paper", false, "use the paper's Table II problem sizes")
	cpus := flag.String("cpus", "", "comma-separated CPU axis (default 1,2,4,8,16,24,32,48,64)")
	real := flag.Bool("real", false, "wall-clock timing instead of the virtual cost model")
	seed := flag.Uint64("seed", 0, "seed for the forced-rollback generators")
	gbufBackend := flag.String("gbuf", "", fmt.Sprintf("GlobalBuffer backend for all runs (one of %v)", mutls.Backends()))
	chunks := flag.String("chunks", "", `chunk-sizing policy for all runs ("static" or "adaptive")`)
	wallclock := flag.Bool("wallclock", false, "run the curated wall-clock suite (fixed sizes, warmup, host-parallelism sweep) and emit JSON")
	chaos := flag.Bool("chaos", false, "run the deterministic fault-injection sweep (kernels x models x backends under seeded fault storms)")
	quick := flag.Bool("quick", false, "with -wallclock or -chaos: CI-sized subset")
	baseline := flag.String("baseline", "", "with -wallclock: diff speedups against a committed report (e.g. BENCH_wallclock.json); refuses baselines from a different host shape")
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.Paper = *paper
	cfg.Seed = *seed
	if *real {
		cfg.Timing = mutls.Real
	}
	if *gbufBackend != "" {
		if !validBackend(*gbufBackend) {
			fmt.Fprintf(os.Stderr, "unknown gbuf backend %q (valid: %v)\n", *gbufBackend, mutls.Backends())
			os.Exit(2)
		}
		cfg.Buffering = mutls.Buffering{Backend: *gbufBackend}
	}
	switch *chunks {
	case "", "static":
		// the paper's static split, the default
	case "adaptive":
		cfg.Chunks = harness.AdaptiveChunker()
	default:
		fmt.Fprintf(os.Stderr, "unknown chunk policy %q (valid: static, adaptive)\n", *chunks)
		os.Exit(2)
	}
	if *cpus != "" {
		axis, err := parseAxis(*cpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.CPUAxis = axis
	}
	h := harness.New(cfg)

	var err error
	switch {
	case *chaos:
		err = harness.RunChaos(harness.ChaosConfig{Seed: *seed, Quick: *quick}, os.Stdout)
	case *wallclock:
		wcfg := harness.WallclockConfig{Quick: *quick}
		if *cpus != "" {
			wcfg.CPUAxis = cfg.CPUAxis
		}
		err = runWallclock(h, wcfg, *baseline)
	case *coverage:
		err = h.Coverage(os.Stdout)
	case *fig == "":
		err = h.All(os.Stdout)
	case *fig == "gbuf":
		err = h.FigGBuf(os.Stdout)
	case *fig == "chunks":
		err = h.FigChunks(os.Stdout)
	case *fig == "pipeline":
		err = h.FigPipeline(os.Stdout)
	default:
		err = runFigure(h, *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runWallclock measures the suite, writes the JSON report to stdout and,
// when a baseline path is given, prints the speedup diff to stderr (the
// comparison fails rather than diffing across host shapes).
func runWallclock(h *harness.Harness, wcfg harness.WallclockConfig, baselinePath string) error {
	report, err := h.MeasureWallclock(wcfg)
	if err != nil {
		return err
	}
	if err := harness.WriteWallclock(os.Stdout, report); err != nil {
		return err
	}
	if baselinePath == "" {
		return nil
	}
	f, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := harness.LoadWallclockBaseline(f)
	if err != nil {
		return err
	}
	return harness.CompareWallclock(os.Stderr, base, report)
}

// runFigure dispatches a numeric -fig value.
func runFigure(h *harness.Harness, fig string) error {
	n, err := strconv.Atoi(fig)
	if err != nil {
		return fmt.Errorf("unknown figure %q (valid: 0..11, gbuf, chunks, pipeline)", fig)
	}
	switch n {
	case 0: // the old int flag's "everything" value
		return h.All(os.Stdout)
	case 1:
		harness.Table1(os.Stdout)
		return nil
	case 2:
		h.Table2(os.Stdout)
		return nil
	case 3:
		return h.Fig3(os.Stdout)
	case 4:
		return h.Fig4(os.Stdout)
	case 5:
		return h.Fig5(os.Stdout)
	case 6:
		return h.Fig6(os.Stdout)
	case 7:
		return h.Fig7(os.Stdout)
	case 8:
		return h.Fig8(os.Stdout)
	case 9:
		return h.Fig9(os.Stdout)
	case 10:
		return h.Fig10(os.Stdout)
	case 11:
		return h.Fig11(os.Stdout)
	}
	return fmt.Errorf("unknown figure %d (valid: 0..11, gbuf, chunks, pipeline)", n)
}

func validBackend(name string) bool {
	for _, b := range mutls.Backends() {
		if b == name {
			return true
		}
	}
	return false
}

func parseAxis(s string) ([]int, error) {
	var axis []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad CPU count %q", part)
		}
		axis = append(axis, n)
	}
	return axis, nil
}
