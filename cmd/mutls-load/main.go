// Command mutls-load load-tests the multi-tenant speculation service and
// emits a JSON report of throughput, latency percentiles and verification
// counts. By default it starts an in-process server (serve.Server over a
// pool.Pool) on a loopback port, drives it, and checks for a clean drain
// — the CI smoke for the serving layer. Point -url at a running
// examples/server instance to drive it over the network instead.
//
// Usage:
//
//	mutls-load                          # in-process server, defaults
//	mutls-load -c 32 -n 300             # 32 clients, 300 requests
//	mutls-load -runtimes 4 -budget 8    # pool shape for the in-process server
//	mutls-load -url http://host:8080    # drive an external server
//	mutls-load -out BENCH_load.json     # also write the report to a file
//
// Exit status is non-zero when any request errored, any response failed
// checksum verification, or (in-process only) the server leaked
// goroutines across shutdown. Admission-control sheds (503) are retried
// with capped exponential backoff plus jitter (honoring Retry-After) and
// reported as "overloaded"/"retries" counts in the JSON summary — they
// never fail the run, since shedding is the pool working as designed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/serve"
	"repro/mutls"
	"repro/mutls/pool"
)

func main() {
	url := flag.String("url", "", "base URL of a running server; empty starts an in-process server")
	c := flag.Int("c", 8, "concurrent closed-loop clients")
	n := flag.Int("n", 0, "total requests (default 25 per client)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	targets := flag.String("targets", "", "comma-separated request paths (default: one per served kernel at smoke sizes)")
	runtimes := flag.Int("runtimes", 2, "in-process server: pooled runtimes")
	cpus := flag.Int("cpus", 4, "in-process server: speculative CPUs per runtime")
	budget := flag.Int("budget", 0, "in-process server: host CPU budget (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "in-process server: acquire queue limit (default 4x runtimes)")
	retries := flag.Int("retries", 3, "retry budget per request for transient 503 sheds (backoff + jitter, honors Retry-After); negative disables")
	out := flag.String("out", "", "also write the JSON report to this file")
	flag.Parse()

	cfg := harness.LoadConfig{
		Concurrency: *c,
		Requests:    *n,
		Timeout:     *timeout,
		MaxRetries:  *retries,
	}
	if *targets != "" {
		cfg.Targets = strings.Split(*targets, ",")
	} else {
		cfg.Targets = []string{
			"/run?kernel=x3p1&n=4000",
			"/run?kernel=mandelbrot&n=16&m=200",
			"/run?kernel=matmult&n=16",
		}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 25 * cfg.Concurrency
	}

	base := *url
	var shutdown func() error
	if base == "" {
		var err error
		base, shutdown, err = startInProcess(*runtimes, *cpus, *budget, *queue)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutls-load:", err)
			os.Exit(2)
		}
	}

	rep, err := harness.RunLoad(context.Background(), nil, base, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mutls-load:", err)
		os.Exit(2)
	}

	failed := rep.Errors > 0 || rep.Unverified > 0
	if shutdown != nil {
		if err := shutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "mutls-load:", err)
			failed = true
		}
	}

	if err := harness.WriteLoad(os.Stdout, rep); err != nil {
		fmt.Fprintln(os.Stderr, "mutls-load:", err)
		os.Exit(2)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err == nil {
			err = harness.WriteLoad(f, rep)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mutls-load:", err)
			os.Exit(2)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "mutls-load: FAILED: %d errors, %d unverified responses\n",
			rep.Errors, rep.Unverified)
		os.Exit(1)
	}
}

// startInProcess runs the service on a loopback port and returns its base
// URL plus a shutdown hook that drains the server and verifies no
// goroutines leaked across the lifecycle.
func startInProcess(runtimes, cpus, budget, queue int) (string, func() error, error) {
	before := runtime.NumGoroutine()
	s, err := serve.New(serve.Options{Pool: pool.Options{
		Runtimes:   runtimes,
		HostBudget: budget,
		QueueLimit: queue,
		Runtime:    mutls.Options{CPUs: cpus},
	}})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)

	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("server shutdown: %w", err)
		}
		s.Close()
		// Workers exit asynchronously after their task channels close.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > before {
			return fmt.Errorf("goroutine leak across server lifecycle: %d before, %d after", before, now)
		}
		return nil
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
