package predict

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestColdPrediction(t *testing.T) {
	p := New(LastValue)
	v, ok := p.Predict(0, 0)
	if ok || v != 0 {
		t.Fatalf("cold prediction = %d, %v", v, ok)
	}
	_, _, cold := p.Stats()
	if cold != 1 {
		t.Fatalf("cold count %d", cold)
	}
}

func TestLastValuePredictsConstant(t *testing.T) {
	p := New(LastValue)
	for i := 0; i < 10; i++ {
		p.Observe(1, 2, 42)
	}
	if v, ok := p.Predict(1, 2); !ok || v != 42 {
		t.Fatalf("prediction %d, %v", v, ok)
	}
	if acc := p.Accuracy(); acc != 1.0 {
		t.Fatalf("constant accuracy %v", acc)
	}
}

func TestLastValueMissesOnChange(t *testing.T) {
	p := New(LastValue)
	p.Observe(0, 0, 1)
	p.Observe(0, 0, 2) // predicted 1, saw 2: miss
	p.Observe(0, 0, 2) // predicted 2, saw 2: hit
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestStridePredictsArithmeticSequence(t *testing.T) {
	p := New(Stride)
	// Loop induction variable: 10, 14, 18, ... The stride predictor locks
	// on after two samples; last-value would miss every time.
	for i := 0; i < 12; i++ {
		p.Observe(3, 1, uint64(10+4*i))
	}
	v, ok := p.Predict(3, 1)
	if !ok || v != uint64(10+4*12) {
		t.Fatalf("stride prediction %d, %v", v, ok)
	}
	hits, misses, _ := p.Stats()
	// First observation unscored, second scored with last-value fallback
	// (miss), from the third on the stride hits.
	if misses != 1 || hits != 10 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestLastValueVsStrideOnInduction(t *testing.T) {
	lv, st := New(LastValue), New(Stride)
	for i := 0; i < 50; i++ {
		lv.Observe(0, 0, uint64(i))
		st.Observe(0, 0, uint64(i))
	}
	if lv.Accuracy() >= st.Accuracy() {
		t.Fatalf("stride (%v) must beat last-value (%v) on induction variables",
			st.Accuracy(), lv.Accuracy())
	}
	if st.Accuracy() < 0.9 {
		t.Fatalf("stride accuracy %v too low on a perfect sequence", st.Accuracy())
	}
}

func TestSlotsAndPointsIndependent(t *testing.T) {
	p := New(LastValue)
	p.Observe(0, 0, 5)
	p.Observe(0, 1, 7)
	p.Observe(2, 0, 9)
	cases := []struct {
		point, slot int
		want        uint64
	}{{0, 0, 5}, {0, 1, 7}, {2, 0, 9}}
	for _, c := range cases {
		if v, ok := p.Predict(c.point, c.slot); !ok || v != c.want {
			t.Fatalf("Predict(%d,%d) = %d, %v", c.point, c.slot, v, ok)
		}
	}
}

func TestReset(t *testing.T) {
	p := New(Stride)
	p.Observe(0, 0, 1)
	p.Observe(0, 0, 2)
	p.Reset()
	if _, ok := p.Predict(0, 0); ok {
		t.Fatal("history survived reset")
	}
	if h, m, c := p.Stats(); h != 0 || m != 0 || c != 1 {
		t.Fatalf("counters after reset: %d/%d/%d", h, m, c)
	}
}

func TestKindString(t *testing.T) {
	if LastValue.String() != "last-value" || Stride.String() != "stride" || Kind(9).String() != "unknown" {
		t.Fatal("kind names")
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New(Stride)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Observe(w, i%4, uint64(i))
				p.Predict(w, i%4)
			}
		}(w)
	}
	wg.Wait()
	if acc := p.Accuracy(); acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

// Property: accuracy is always within [0,1] and hits+misses grows by at
// most one per Observe.
func TestQuickAccuracyBounds(t *testing.T) {
	f := func(values []uint64) bool {
		p := New(Stride)
		for i, v := range values {
			p.Observe(0, 0, v)
			h, m, _ := p.Stats()
			if h+m > uint64(i) { // first observation is never scored
				return false
			}
		}
		acc := p.Accuracy()
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Warm gate and float prediction ---

func TestWarmGate(t *testing.T) {
	lv := New(LastValue)
	if lv.Warm(0, 0) {
		t.Fatal("last-value warm with no history")
	}
	lv.Observe(0, 0, 7)
	if !lv.Warm(0, 0) {
		t.Fatal("last-value not warm after one sample")
	}

	st := New(Stride)
	st.Observe(0, 0, 7)
	if st.Warm(0, 0) {
		t.Fatal("stride warm after one sample (stride unknown)")
	}
	st.Observe(0, 0, 14)
	if !st.Warm(0, 0) {
		t.Fatal("stride not warm after two samples")
	}
	if st.Warm(0, 1) || st.Warm(1, 0) {
		t.Fatal("warmth leaked across slots/points")
	}
}

func TestPredictFloat64Stride(t *testing.T) {
	p := New(Stride)
	if _, ok := p.PredictFloat64(0, 0); ok {
		t.Fatal("cold float prediction claimed history")
	}
	p.ObserveFloat64(0, 0, 1.5, 0)
	p.ObserveFloat64(0, 0, 2.75, 0)
	got, ok := p.PredictFloat64(0, 0)
	if !ok || got != 4.0 {
		t.Fatalf("float stride = %v, %v; want 4.0 (1.5, 2.75, +1.25)", got, ok)
	}
	// The float stride is float arithmetic, not bit arithmetic: a bitwise
	// stride over these patterns would not land on 4.0.
	ip := New(Stride)
	ip.Observe(0, 0, math.Float64bits(1.5))
	ip.Observe(0, 0, math.Float64bits(2.75))
	raw, _ := ip.Predict(0, 0)
	if math.Float64frombits(raw) == 4.0 {
		t.Fatal("test vector too weak: bit stride coincides with float stride")
	}
}

func TestObserveFloat64ToleranceScoring(t *testing.T) {
	p := New(LastValue)
	p.ObserveFloat64(0, 0, 100.0, 1e-6)
	p.ObserveFloat64(0, 0, 100.00001, 1e-6) // off by 1e-7 relative: hit
	p.ObserveFloat64(0, 0, 101.0, 1e-6)     // off by 1e-2 relative: miss
	h, m, _ := p.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("tolerant scoring: %d hits, %d misses; want 1 and 1", h, m)
	}
}

func TestWithinRelTol(t *testing.T) {
	cases := []struct {
		pred, actual, tol float64
		want              bool
	}{
		{1.0, 1.0, 0, true},
		{1.0, math.Nextafter(1.0, 2), 0, false},
		{100, 100.00001, 1e-6, true},
		{100, 101, 1e-6, false},
		{0, 0, 1e-6, true},
		{math.Copysign(0, -1), 0, 0, false}, // -0 vs +0 is a bit mismatch
		{math.NaN(), math.NaN(), 1e-3, true},
		{math.NaN(), 1.0, 1e-3, false},
		{1.0, math.NaN(), 1e-3, false},
		{-50, -50.000001, 1e-6, true},
		{math.Inf(1), math.Inf(1), 1e-3, true},
		{math.Inf(-1), math.Inf(-1), 1e-3, true},
		{math.Inf(-1), math.Inf(1), 1e-3, false},
		{42, math.Inf(1), 1e-3, false},
		{math.Inf(1), 42, 1e-3, false},
	}
	for _, tc := range cases {
		if got := WithinRelTol(tc.pred, tc.actual, tc.tol); got != tc.want {
			t.Errorf("WithinRelTol(%v, %v, %v) = %v, want %v", tc.pred, tc.actual, tc.tol, got, tc.want)
		}
	}
}
