// Package predict implements value prediction for live register variables,
// one of the paper's explicitly named future-work directions (§VI, "This
// includes value prediction, different automatic fork heuristics…").
//
// At a fork point the parent must supply every local live at the join point
// (§IV-G4); values that are not known yet must be predicted, and the join
// validates the prediction with MUTLS_validate_local. This package provides
// the two classic predictors — last value and stride — keyed by (fork point,
// slot), plus accuracy accounting so the ablation bench can report how
// prediction quality translates into locals-validation rollbacks.
package predict

import "sync"

// Kind selects a prediction strategy.
type Kind uint8

const (
	// LastValue predicts the value observed at the previous execution.
	LastValue Kind = iota
	// Stride predicts last + (last - previous), the classic stride
	// predictor; it subsumes LastValue when the stride settles to zero.
	Stride
)

// String names the predictor.
func (k Kind) String() string {
	switch k {
	case LastValue:
		return "last-value"
	case Stride:
		return "stride"
	}
	return "unknown"
}

type key struct {
	point int
	slot  int
}

type entry struct {
	last    uint64
	prev    uint64
	samples int
}

// Predictor predicts live register values per (fork point, slot).
// It is safe for concurrent use: speculative threads fork too.
type Predictor struct {
	kind Kind

	mu      sync.Mutex
	entries map[key]*entry

	hits   uint64
	misses uint64
	cold   uint64 // predictions issued with no history
}

// New creates a predictor of the given kind.
func New(kind Kind) *Predictor {
	return &Predictor{kind: kind, entries: make(map[key]*entry)}
}

// Kind returns the predictor's strategy.
func (p *Predictor) Kind() Kind { return p.kind }

// Predict returns the predicted value for the slot at the fork point and
// whether any history backed it (cold predictions return the zero value and
// false, matching the "uninitialized value" case of §IV-G4).
func (p *Predictor) Predict(point, slot int) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key{point, slot}]
	if !ok || e.samples == 0 {
		p.cold++
		return 0, false
	}
	switch p.kind {
	case Stride:
		if e.samples >= 2 {
			return e.last + (e.last - e.prev), true
		}
		return e.last, true
	default:
		return e.last, true
	}
}

// Observe records the actual value seen at the join point and scores the
// prediction that was (or would have been) made.
func (p *Predictor) Observe(point, slot int, actual uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := key{point, slot}
	e, ok := p.entries[k]
	if !ok {
		e = &entry{}
		p.entries[k] = e
	}
	if e.samples > 0 {
		var predicted uint64
		switch {
		case p.kind == Stride && e.samples >= 2:
			predicted = e.last + (e.last - e.prev)
		default:
			predicted = e.last
		}
		if predicted == actual {
			p.hits++
		} else {
			p.misses++
		}
	}
	e.prev = e.last
	e.last = actual
	e.samples++
}

// Accuracy returns hits/(hits+misses), or 0 with no scored predictions.
func (p *Predictor) Accuracy() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Stats returns the raw counters: scored hits, scored misses and cold
// (history-less) predictions.
func (p *Predictor) Stats() (hits, misses, cold uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.cold
}

// Reset clears all history and counters.
func (p *Predictor) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[key]*entry)
	p.hits, p.misses, p.cold = 0, 0, 0
}
