// Package predict implements value prediction for live register variables,
// one of the paper's explicitly named future-work directions (§VI, "This
// includes value prediction, different automatic fork heuristics…").
//
// At a fork point the parent must supply every local live at the join point
// (§IV-G4); values that are not known yet must be predicted, and the join
// validates the prediction with MUTLS_validate_local. This package provides
// the two classic predictors — last value and stride — keyed by (fork point,
// slot), plus accuracy accounting so the ablation bench can report how
// prediction quality translates into locals-validation rollbacks.
//
// Integer histories use exact two's-complement arithmetic (Predict/Observe);
// float64 histories use float arithmetic for the stride extrapolation
// (PredictFloat64/ObserveFloat64) with an optional relative tolerance for
// hit scoring — the tolerance-based float value prediction of the related
// work, where a prediction "close enough" to the actual value still counts
// as usable.
package predict

import (
	"math"
	"sync"
)

// Kind selects a prediction strategy.
type Kind uint8

const (
	// LastValue predicts the value observed at the previous execution.
	LastValue Kind = iota
	// Stride predicts last + (last - previous), the classic stride
	// predictor; it subsumes LastValue when the stride settles to zero.
	Stride
)

// String names the predictor.
func (k Kind) String() string {
	switch k {
	case LastValue:
		return "last-value"
	case Stride:
		return "stride"
	}
	return "unknown"
}

type key struct {
	point int
	slot  int
}

type entry struct {
	last    uint64
	prev    uint64
	samples int
}

// Predictor predicts live register values per (fork point, slot).
// It is safe for concurrent use: speculative threads fork too.
type Predictor struct {
	kind Kind

	mu      sync.Mutex
	entries map[key]*entry

	hits   uint64
	misses uint64
	cold   uint64 // predictions issued with no history
}

// New creates a predictor of the given kind.
func New(kind Kind) *Predictor {
	return &Predictor{kind: kind, entries: make(map[key]*entry)}
}

// Kind returns the predictor's strategy.
func (p *Predictor) Kind() Kind { return p.kind }

// Predict returns the predicted value for the slot at the fork point and
// whether any history backed it (cold predictions return the zero value and
// false, matching the "uninitialized value" case of §IV-G4).
func (p *Predictor) Predict(point, slot int) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key{point, slot}]
	if !ok || e.samples == 0 {
		p.cold++
		return 0, false
	}
	switch p.kind {
	case Stride:
		if e.samples >= 2 {
			return e.last + (e.last - e.prev), true
		}
		return e.last, true
	default:
		return e.last, true
	}
}

// Warm reports whether the slot has enough history for its strategy to
// extrapolate rather than guess: one sample for last-value, two for stride
// (one sample leaves the stride unknown, so the predicted value would just
// be the last observation — wrong for any accumulator with a nonzero
// per-chunk delta). Drivers that fork a speculation from a predicted value
// should hold the fork until the slot is warm; the cold-start fork is the
// one that is guaranteed to roll back on growing accumulators.
func (p *Predictor) Warm(point, slot int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key{point, slot}]
	if !ok {
		return false
	}
	if p.kind == Stride {
		return e.samples >= 2
	}
	return e.samples >= 1
}

// PredictFloat64 is Predict over a float64 history: the stride is
// extrapolated in float arithmetic (last + (last - prev)), not over the raw
// bit patterns, so a constant float delta is followed exactly.
func (p *Predictor) PredictFloat64(point, slot int) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key{point, slot}]
	if !ok || e.samples == 0 {
		p.cold++
		return 0, false
	}
	last := math.Float64frombits(e.last)
	if p.kind == Stride && e.samples >= 2 {
		prev := math.Float64frombits(e.prev)
		return last + (last - prev), true
	}
	return last, true
}

// Observe records the actual value seen at the join point and scores the
// prediction that was (or would have been) made.
func (p *Predictor) Observe(point, slot int, actual uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := key{point, slot}
	e, ok := p.entries[k]
	if !ok {
		e = &entry{}
		p.entries[k] = e
	}
	if e.samples > 0 {
		var predicted uint64
		switch {
		case p.kind == Stride && e.samples >= 2:
			predicted = e.last + (e.last - e.prev)
		default:
			predicted = e.last
		}
		if predicted == actual {
			p.hits++
		} else {
			p.misses++
		}
	}
	e.prev = e.last
	e.last = actual
	e.samples++
}

// ObserveFloat64 records the actual float64 value seen at the join point
// and scores the float prediction that was (or would have been) made. A
// prediction within relTol of the actual value (WithinRelTol) counts as a
// hit — relTol 0 keeps bit-exact scoring.
func (p *Predictor) ObserveFloat64(point, slot int, actual, relTol float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := key{point, slot}
	e, ok := p.entries[k]
	if !ok {
		e = &entry{}
		p.entries[k] = e
	}
	if e.samples > 0 {
		last := math.Float64frombits(e.last)
		predicted := last
		if p.kind == Stride && e.samples >= 2 {
			predicted = last + (last - math.Float64frombits(e.prev))
		}
		if WithinRelTol(predicted, actual, relTol) {
			p.hits++
		} else {
			p.misses++
		}
	}
	e.prev = e.last
	e.last = math.Float64bits(actual)
	e.samples++
}

// WithinRelTol reports whether a predicted float64 is acceptable against
// the actual value under a relative tolerance: |pred-actual| <=
// relTol*max(|pred|,|actual|). A non-positive tolerance demands bit
// equality (so -0 vs +0 and NaN payloads are distinguished exactly like
// integer validation would).
func WithinRelTol(pred, actual, relTol float64) bool {
	if relTol <= 0 {
		return math.Float64bits(pred) == math.Float64bits(actual)
	}
	// Non-finite values fall back to bit equality: Inf-Inf is NaN (a
	// correctly predicted Inf must still pass) and any finite value is
	// unboundedly far from an Inf (diff <= relTol*Inf would accept it).
	if math.IsNaN(pred) || math.IsNaN(actual) ||
		math.IsInf(pred, 0) || math.IsInf(actual, 0) {
		return math.Float64bits(pred) == math.Float64bits(actual)
	}
	diff := math.Abs(pred - actual)
	scale := math.Max(math.Abs(pred), math.Abs(actual))
	return diff <= relTol*scale
}

// Accuracy returns hits/(hits+misses), or 0 with no scored predictions.
func (p *Predictor) Accuracy() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Stats returns the raw counters: scored hits, scored misses and cold
// (history-less) predictions.
func (p *Predictor) Stats() (hits, misses, cold uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.cold
}

// Reset clears all history and counters.
func (p *Predictor) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[key]*entry)
	p.hits, p.misses, p.cold = 0, 0, 0
}
