package lbuf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newTestBuffer(t *testing.T) *Buffer {
	t.Helper()
	b, err := New(Config{RegSlots: 8, StackSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{RegSlots: 0, StackSlots: 4}); err == nil {
		t.Error("zero reg slots accepted")
	}
	if _, err := New(Config{RegSlots: 4, StackSlots: 0}); err == nil {
		t.Error("zero stack slots accepted")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Error(err)
	}
}

func TestRegvarRoundTrip(t *testing.T) {
	b := newTestBuffer(t)
	if err := b.SetRegvar(3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := b.GetRegvar(3)
	if err != nil || v != 42 {
		t.Fatalf("GetRegvar = %d, %v", v, err)
	}
	if !b.RegvarLive(3) || b.RegvarLive(2) {
		t.Fatal("liveness wrong")
	}
}

func TestRegvarSlotOverflowFails(t *testing.T) {
	b := newTestBuffer(t)
	// The paper: "If there are too many variables and the assigned offset
	// exceeds the array size, the speculator pass reports an error and
	// speculation fails."
	if err := b.SetRegvar(8, 1); err == nil {
		t.Error("slot beyond capacity accepted")
	}
	if err := b.SetRegvar(-1, 1); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := b.GetRegvar(99); err == nil {
		t.Error("read beyond capacity accepted")
	}
}

func TestRegvarReadBeforeSetFails(t *testing.T) {
	b := newTestBuffer(t)
	if _, err := b.GetRegvar(0); err == nil {
		t.Fatal("uninitialized regvar read succeeded")
	}
}

func TestStackvarRoundTrip(t *testing.T) {
	b := newTestBuffer(t)
	data := []byte{1, 2, 3, 4, 5}
	if err := b.SetStackvar(1, 1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := b.GetStackvar(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("data = %v", got)
	}
	// Mutating the source must not affect the buffered copy.
	data[0] = 99
	got, _ = b.GetStackvar(1, mem.NilAddr)
	if got[0] != 1 {
		t.Fatal("buffer aliases caller data")
	}
}

func TestStackvarErrors(t *testing.T) {
	b := newTestBuffer(t)
	if err := b.SetStackvar(4, 1000, []byte{1}); err == nil {
		t.Error("slot beyond capacity accepted")
	}
	if _, err := b.GetStackvar(0, 0); err == nil {
		t.Error("dead slot read succeeded")
	}
	if err := b.UpdateStackvar(0, []byte{1}); err == nil {
		t.Error("dead slot update succeeded")
	}
	b.SetStackvar(0, 1000, []byte{1, 2})
	if err := b.UpdateStackvar(0, []byte{1, 2, 3}); err == nil {
		t.Error("size-changing update accepted")
	}
	if err := b.UpdateStackvar(0, []byte{9, 8}); err != nil {
		t.Error(err)
	}
	got, _ := b.GetStackvar(0, mem.NilAddr)
	if got[0] != 9 || got[1] != 8 {
		t.Fatal("update not applied")
	}
}

func TestPointerMapping(t *testing.T) {
	b := newTestBuffer(t)
	// Parent var at 1000 (home), child copy bound at 5000.
	b.SetStackvar(0, 1000, make([]byte, 16))
	b.GetStackvar(0, 5000)
	// Pointer into the child copy maps to the parent copy at the same
	// per-variable offset.
	if p, ok := b.MapPtr(5000); !ok || p != 1000 {
		t.Fatalf("MapPtr(5000) = %d, %v", p, ok)
	}
	if p, ok := b.MapPtr(5007); !ok || p != 1007 {
		t.Fatalf("MapPtr(5007) = %d, %v", p, ok)
	}
	if p, ok := b.MapPtr(5016); ok {
		t.Fatalf("one-past-end mapped to %d", p)
	}
	if p, ok := b.MapPtr(4999); ok {
		t.Fatalf("before-start mapped to %d", p)
	}
	// Unmapped pointers come back unchanged.
	if p, ok := b.MapPtr(777); ok || p != 777 {
		t.Fatalf("unrelated pointer = %d, %v", p, ok)
	}
}

func TestPointerMappingPerVariableOffsets(t *testing.T) {
	// Different variables have different, non-constant offsets — the paper
	// notes the stack layouts differ so a single constant offset is wrong.
	b := newTestBuffer(t)
	b.SetStackvar(0, 1000, make([]byte, 8))
	b.GetStackvar(0, 5000)
	b.SetStackvar(1, 2000, make([]byte, 8))
	b.GetStackvar(1, 5008) // adjacent in child, far apart in parent
	if p, _ := b.MapPtr(5004); p != 1004 {
		t.Fatalf("var0 interior = %d", p)
	}
	if p, _ := b.MapPtr(5012); p != 2004 {
		t.Fatalf("var1 interior = %d", p)
	}
}

func TestUnboundStackvarDoesNotMap(t *testing.T) {
	b := newTestBuffer(t)
	b.SetStackvar(0, 1000, make([]byte, 8))
	// Never loaded by the child, so no bound address: nothing to map.
	if _, ok := b.MapPtr(1000); ok {
		t.Fatal("unbound variable mapped")
	}
}

func TestFramePushPop(t *testing.T) {
	b := newTestBuffer(t)
	if b.Depth() != 1 {
		t.Fatalf("initial depth %d", b.Depth())
	}
	b.SetRegvar(0, 11)
	f := b.PushFrame(7, 3)
	if b.Depth() != 2 || b.Top() != f {
		t.Fatal("push wrong")
	}
	// Frames isolate register slots.
	if _, err := b.GetRegvar(0); err == nil {
		t.Fatal("inner frame sees outer regvar")
	}
	b.SetRegvar(0, 22)
	if err := b.PopFrame(); err != nil {
		t.Fatal(err)
	}
	v, err := b.GetRegvar(0)
	if err != nil || v != 11 {
		t.Fatalf("outer regvar after pop = %d, %v", v, err)
	}
}

func TestPopEntryFrameFails(t *testing.T) {
	b := newTestBuffer(t)
	// Speculative threads may not return from their entry function.
	if err := b.PopFrame(); err == nil {
		t.Fatal("entry frame popped")
	}
}

func TestRecordsSnapshotNestedFrames(t *testing.T) {
	b := newTestBuffer(t)
	b.SetRegvar(0, 1)
	b.PushFrame(10, 2)
	b.SetRegvar(0, 100)
	b.PushFrame(20, 5)
	b.SetRegvar(1, 200)
	recs := b.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].FuncID != 10 || recs[0].CallSite != 2 || recs[0].Regs[0] != 100 || !recs[0].RegLive[0] {
		t.Fatalf("outer record %+v", recs[0])
	}
	if recs[1].FuncID != 20 || recs[1].CallSite != 5 || recs[1].Regs[1] != 200 {
		t.Fatalf("inner record %+v", recs[1])
	}
	// Entry frame is reported separately.
	regs, live := b.EntryRegs()
	if regs[0] != 1 || !live[0] || live[1] {
		t.Fatal("entry regs wrong")
	}
}

func TestResetRestoresEntryFrame(t *testing.T) {
	b := newTestBuffer(t)
	b.SetRegvar(0, 5)
	b.PushFrame(1, 1)
	b.PushFrame(2, 2)
	b.Reset()
	if b.Depth() != 1 {
		t.Fatalf("depth after reset %d", b.Depth())
	}
	if b.RegvarLive(0) {
		t.Fatal("regvar survived reset")
	}
	if len(b.Records()) != 0 {
		t.Fatal("records survived reset")
	}
}

// Property: regvar slots behave like an independent map per frame under
// random set/get/push/pop.
func TestQuickRegvarFrameIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, _ := New(Config{RegSlots: 16, StackSlots: 4})
		type frameModel map[int]uint64
		models := []frameModel{{}}
		for op := 0; op < 200; op++ {
			switch rng.Intn(5) {
			case 0, 1: // set
				slot, v := rng.Intn(16), rng.Uint64()
				if b.SetRegvar(slot, v) != nil {
					return false
				}
				models[len(models)-1][slot] = v
			case 2: // get
				slot := rng.Intn(16)
				want, ok := models[len(models)-1][slot]
				got, err := b.GetRegvar(slot)
				if ok != (err == nil) {
					return false
				}
				if ok && got != want {
					return false
				}
			case 3: // push
				if len(models) < 8 {
					b.PushFrame(uint32(op), uint32(op))
					models = append(models, frameModel{})
				}
			case 4: // pop
				if len(models) > 1 {
					if b.PopFrame() != nil {
						return false
					}
					models = models[:len(models)-1]
				} else if b.PopFrame() == nil {
					return false // entry pop must fail
				}
			}
			if b.Depth() != len(models) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MapPtr returns home+delta exactly for pointers inside a bound
// variable and identity otherwise.
func TestQuickPointerMapping(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, _ := New(Config{RegSlots: 4, StackSlots: 8})
		type varModel struct {
			home, bound mem.Addr
			size        int
		}
		var vars []varModel
		base := mem.Addr(1000)
		for i := 0; i < 5; i++ {
			size := 4 + rng.Intn(28)
			home := base
			base += mem.Addr(size + rng.Intn(64))
			bound := mem.Addr(100000) + mem.Addr(i*256)
			b.SetStackvar(i, home, make([]byte, size))
			b.GetStackvar(i, bound)
			vars = append(vars, varModel{home, bound, size})
		}
		for probe := 0; probe < 100; probe++ {
			p := mem.Addr(99000 + rng.Intn(4000))
			want, wantOK := p, false
			for _, v := range vars {
				if p >= v.bound && p < v.bound+mem.Addr(v.size) {
					want, wantOK = v.home+(p-v.bound), true
					break
				}
			}
			got, ok := b.MapPtr(p)
			if ok != wantOK || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
