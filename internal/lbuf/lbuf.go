// Package lbuf implements the MUTLS LocalBuffer (paper §IV-G3): the
// per-thread structure that transfers local (register and stack) variables
// between parent and child threads at fork and join, organized as an array
// of stack frames, each holding a RegisterBuffer and a StackBuffer.
//
// The speculator pass assigns every live local variable a small integer
// offset ("slot"); MUTLS_(set|get)_regvar_* moves register values through a
// static array indexed by that slot, and MUTLS_(set|get)_stackvar_* does the
// same for addressable stack variables, additionally recording their
// addresses so that stack pointers crossing the commit boundary can be
// remapped from the speculative stack to the non-speculative one (the
// paper's pointer mapping mechanism).
package lbuf

import (
	"fmt"

	"repro/internal/mem"
)

// DefaultRegSlots is the default RegisterBuffer capacity per frame. The
// paper uses a static array and reports an error when the speculator pass
// assigns an offset beyond it.
const DefaultRegSlots = 64

// DefaultStackSlots is the default StackBuffer capacity per frame.
const DefaultStackSlots = 32

// stackVar is one buffered stack variable: its home address in the writer's
// address space, the reader's copy address (bound later), and the data.
type stackVar struct {
	live      bool
	homeAddr  mem.Addr // address in the thread that stored it (non-spec side)
	boundAddr mem.Addr // address in the thread that loaded it (spec side)
	data      []byte
}

// Frame is one LocalBuffer stack frame: a RegisterBuffer and a StackBuffer,
// plus the bookkeeping needed for stack frame reconstruction (paper §IV-H):
// which function the frame belongs to and the synchronization counter of the
// call site that created it.
type Frame struct {
	FuncID   uint32
	CallSite uint32
	regs     []uint64
	regLive  []bool
	vars     []stackVar
}

func newFrame(funcID, callSite uint32, regSlots, stackSlots int) *Frame {
	return &Frame{
		FuncID:   funcID,
		CallSite: callSite,
		regs:     make([]uint64, regSlots),
		regLive:  make([]bool, regSlots),
		vars:     make([]stackVar, stackSlots),
	}
}

// Buffer is one thread's LocalBuffer: a stack of frames. Frame 0 is the
// speculative entry frame; EnterPoint/ReturnPoint push and pop nested
// frames as the speculative thread descends into function calls.
type Buffer struct {
	regSlots   int
	stackSlots int
	frames     []*Frame
}

// Config sizes a LocalBuffer.
type Config struct {
	RegSlots   int // register slots per frame
	StackSlots int // stack-variable slots per frame
}

// DefaultConfig returns the benchmark configuration.
func DefaultConfig() Config {
	return Config{RegSlots: DefaultRegSlots, StackSlots: DefaultStackSlots}
}

// New creates a LocalBuffer with a single (entry) frame.
func New(cfg Config) (*Buffer, error) {
	if cfg.RegSlots < 1 || cfg.StackSlots < 1 {
		return nil, fmt.Errorf("lbuf: invalid config %+v", cfg)
	}
	b := &Buffer{regSlots: cfg.RegSlots, stackSlots: cfg.StackSlots}
	b.Reset()
	return b, nil
}

// Reset discards every frame and restores the single empty entry frame.
func (b *Buffer) Reset() {
	b.frames = b.frames[:0]
	b.frames = append(b.frames, newFrame(0, 0, b.regSlots, b.stackSlots))
}

// Depth returns the number of frames (1 = entry frame only).
func (b *Buffer) Depth() int { return len(b.frames) }

// Top returns the current (innermost) frame.
func (b *Buffer) Top() *Frame { return b.frames[len(b.frames)-1] }

// Entry returns the speculative entry frame.
func (b *Buffer) Entry() *Frame { return b.frames[0] }

// PushFrame registers a new stack frame for a nested function call — the
// paper's MUTLS_enter_point. funcID identifies the callee; callSite is the
// synchronization counter of the enter point block in the caller, which the
// non-speculative thread later uses to replicate the call chain.
func (b *Buffer) PushFrame(funcID, callSite uint32) *Frame {
	f := newFrame(funcID, callSite, b.regSlots, b.stackSlots)
	b.frames = append(b.frames, f)
	return f
}

// PopFrame removes the innermost frame — the paper's MUTLS_return_point. It
// fails on the entry frame: speculative threads are restricted from
// returning from their entry function (§IV-H) and must treat such a return
// as a stop point instead.
func (b *Buffer) PopFrame() error {
	if len(b.frames) == 1 {
		return fmt.Errorf("lbuf: return from speculative entry frame")
	}
	b.frames = b.frames[:len(b.frames)-1]
	return nil
}

// SetRegvar stores a register value in the given slot of the top frame
// (MUTLS_set_regvar_*). It fails when the slot exceeds the static array, as
// the paper's speculator pass does.
func (b *Buffer) SetRegvar(slot int, v uint64) error {
	f := b.Top()
	if slot < 0 || slot >= len(f.regs) {
		return fmt.Errorf("lbuf: register slot %d exceeds capacity %d", slot, len(f.regs))
	}
	f.regs[slot] = v
	f.regLive[slot] = true
	return nil
}

// GetRegvar fetches a register value from the top frame
// (MUTLS_get_regvar_*). Reading a slot that was never stored is a protocol
// error: the variable was live at the join point but not saved at the fork
// point.
func (b *Buffer) GetRegvar(slot int) (uint64, error) {
	f := b.Top()
	if slot < 0 || slot >= len(f.regs) {
		return 0, fmt.Errorf("lbuf: register slot %d exceeds capacity %d", slot, len(f.regs))
	}
	if !f.regLive[slot] {
		return 0, fmt.Errorf("lbuf: register slot %d read before set", slot)
	}
	return f.regs[slot], nil
}

// RegvarLive reports whether the slot holds a value in the top frame.
func (b *Buffer) RegvarLive(slot int) bool {
	f := b.Top()
	return slot >= 0 && slot < len(f.regLive) && f.regLive[slot]
}

// SetStackvar copies a stack variable into the top frame
// (MUTLS_set_stackvar_*): slot is the assigned offset, homeAddr the
// variable's address in the caller's space, and data its current bytes.
func (b *Buffer) SetStackvar(slot int, homeAddr mem.Addr, data []byte) error {
	f := b.Top()
	if slot < 0 || slot >= len(f.vars) {
		return fmt.Errorf("lbuf: stack slot %d exceeds capacity %d", slot, len(f.vars))
	}
	v := &f.vars[slot]
	v.live = true
	v.homeAddr = homeAddr
	v.boundAddr = mem.NilAddr
	v.data = append(v.data[:0], data...)
	return nil
}

// GetStackvar returns the buffered bytes of a stack variable from the top
// frame and binds boundAddr as the reader's own copy of the variable; the
// (boundAddr → homeAddr) pair feeds the pointer mapping. Passing
// mem.NilAddr skips binding.
func (b *Buffer) GetStackvar(slot int, boundAddr mem.Addr) ([]byte, error) {
	f := b.Top()
	if slot < 0 || slot >= len(f.vars) {
		return nil, fmt.Errorf("lbuf: stack slot %d exceeds capacity %d", slot, len(f.vars))
	}
	v := &f.vars[slot]
	if !v.live {
		return nil, fmt.Errorf("lbuf: stack slot %d read before set", slot)
	}
	if boundAddr != mem.NilAddr {
		v.boundAddr = boundAddr
	}
	return v.data, nil
}

// UpdateStackvar refreshes the buffered bytes of a live stack variable; the
// speculative thread calls it when stopping so the parent commits the final
// values.
func (b *Buffer) UpdateStackvar(slot int, data []byte) error {
	f := b.Top()
	if slot < 0 || slot >= len(f.vars) || !f.vars[slot].live {
		return fmt.Errorf("lbuf: update of dead stack slot %d", slot)
	}
	v := &f.vars[slot]
	if len(data) != len(v.data) {
		return fmt.Errorf("lbuf: stack slot %d size changed from %d to %d", slot, len(v.data), len(data))
	}
	copy(v.data, data)
	return nil
}

// MapPtr implements the pointer mapping mechanism: if ptr points inside a
// speculative (bound) copy of a buffered stack variable in the top frame,
// it is translated to the corresponding address in the non-speculative
// (home) copy. The bool result reports whether a mapping applied. Since the
// two functions may lay their stacks out differently, the offset is
// computed per variable, never as a constant.
func (b *Buffer) MapPtr(ptr mem.Addr) (mem.Addr, bool) {
	f := b.Top()
	for i := range f.vars {
		v := &f.vars[i]
		if !v.live || v.boundAddr == mem.NilAddr {
			continue
		}
		if ptr >= v.boundAddr && ptr < v.boundAddr+mem.Addr(len(v.data)) {
			return v.homeAddr + (ptr - v.boundAddr), true
		}
	}
	return ptr, false
}

// PtrMapping describes one buffered stack variable of the entry frame for
// the pointer mapping mechanism: its non-speculative home address, the
// speculative bound address (NilAddr if the child never materialized it)
// and its size.
type PtrMapping struct {
	Slot  int
	Home  mem.Addr
	Bound mem.Addr
	Size  int
}

// PtrMappings snapshots the entry frame's live stack variables.
func (b *Buffer) PtrMappings() []PtrMapping {
	f := b.frames[0]
	var out []PtrMapping
	for i := range f.vars {
		v := &f.vars[i]
		if v.live {
			out = append(out, PtrMapping{Slot: i, Home: v.homeAddr, Bound: v.boundAddr, Size: len(v.data)})
		}
	}
	return out
}

// EntryStackvarData returns the buffered bytes of an entry-frame stack
// variable regardless of the current frame depth (the joining thread
// commits entry-frame variables even when the child stopped in a nested
// call).
func (b *Buffer) EntryStackvarData(slot int) ([]byte, error) {
	f := b.frames[0]
	if slot < 0 || slot >= len(f.vars) || !f.vars[slot].live {
		return nil, fmt.Errorf("lbuf: entry stack slot %d not live", slot)
	}
	return f.vars[slot].data, nil
}

// FrameRecord is the parent-visible snapshot of one speculative frame, used
// for stack frame reconstruction after a successful join.
type FrameRecord struct {
	FuncID   uint32
	CallSite uint32
	Regs     []uint64
	RegLive  []bool
}

// Records snapshots every frame beyond the entry frame, outermost first.
// The parent replays them to replicate the speculative call chain
// (MUTLS_synchronize_entry).
func (b *Buffer) Records() []FrameRecord {
	out := make([]FrameRecord, 0, len(b.frames)-1)
	for _, f := range b.frames[1:] {
		r := FrameRecord{
			FuncID:   f.FuncID,
			CallSite: f.CallSite,
			Regs:     append([]uint64(nil), f.regs...),
			RegLive:  append([]bool(nil), f.regLive...),
		}
		out = append(out, r)
	}
	return out
}

// EntryRegs snapshots the entry frame's register slots (values, liveness).
func (b *Buffer) EntryRegs() ([]uint64, []bool) {
	f := b.frames[0]
	return append([]uint64(nil), f.regs...), append([]bool(nil), f.regLive...)
}
