// Package faultinject is the deterministic fault-injection plane of the
// chaos harness: a seeded Plan is wired into the runtime's poll, fork,
// join, store, commit and lease-acquire seams and decides — reproducibly
// for a given seed and decision order — when to inject a kernel panic, a
// forced rollback, a GlobalBuffer overflow, a scheduling delay, a run
// cancellation or a lease-acquire failure. The plan exists to prove the
// containment contract: every injected storm must leave checksums equal
// to the sequential execution and the process free of leaked goroutines.
//
// The decision stream of each site is a pure function of (seed, site,
// decision index), so a storm replays exactly under the same seed as long
// as each site's decisions happen in the same order. Concurrent sites
// interleave nondeterministically, but each site's own sequence — and
// therefore the total injection mix — is stable, which is what reproducing
// a chaos failure needs.
package faultinject

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Kind is one injectable fault.
type Kind uint8

const (
	// KindNone is the no-injection decision.
	KindNone Kind = iota
	// KindPanic raises an InjectedPanic at the seam: contained as a
	// RollbackFault on a speculative thread, surfaced as a KernelPanic on
	// the non-speculative thread.
	KindPanic
	// KindRollback forces a speculative rollback (RollbackInjected).
	KindRollback
	// KindOverflow simulates GlobalBuffer exhaustion (a Full store status
	// or an immediate RollbackOverflow, depending on the seam).
	KindOverflow
	// KindDelay sleeps for Delay, perturbing the schedule.
	KindDelay
	// KindCancel cancels the in-flight run (CancelRun).
	KindCancel
	// KindLeaseFail makes a pool Acquire fail with ErrOverloaded.
	KindLeaseFail
	// KindDegrade forces a zero-CPU grant at the pool's budget seam: the
	// lease runs sequentially, as if the host budget were exhausted.
	KindDegrade

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPanic:
		return "panic"
	case KindRollback:
		return "rollback"
	case KindOverflow:
		return "overflow"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	case KindLeaseFail:
		return "leasefail"
	case KindDegrade:
		return "degrade"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Site is one injection seam in the runtime.
type Site uint8

const (
	// SitePoll is the CheckPoint/CancelPoint polling seam.
	SitePoll Site = iota
	// SiteFork is the Fork entry seam.
	SiteFork
	// SiteJoin is the Join entry seam (non-speculative thread).
	SiteJoin
	// SiteStore is the speculative GlobalBuffer store seam (gbuf wrapper).
	SiteStore
	// SiteCommit is the validate/commit seam inside the join protocol.
	SiteCommit
	// SiteAlloc is the heap-allocation seam (non-speculative thread).
	SiteAlloc
	// SiteAcquire is the pool lease-acquire seam.
	SiteAcquire
	// SiteQueue is the pool's queue-admission seam: an Acquire that missed
	// the fast path decides here whether it queues, sheds or stalls.
	SiteQueue
	// SiteGrant is the pool's budget-grant seam inside the lease handshake.
	SiteGrant

	numSites
)

// String names the site.
func (s Site) String() string {
	switch s {
	case SitePoll:
		return "poll"
	case SiteFork:
		return "fork"
	case SiteJoin:
		return "join"
	case SiteStore:
		return "store"
	case SiteCommit:
		return "commit"
	case SiteAlloc:
		return "alloc"
	case SiteAcquire:
		return "acquire"
	case SiteQueue:
		return "queue"
	case SiteGrant:
		return "grant"
	}
	return fmt.Sprintf("Site(%d)", uint8(s))
}

// Delay is the sleep of a KindDelay injection: long enough to shuffle
// goroutine schedules, short enough that delay-heavy storms stay fast.
const Delay = 50 * time.Microsecond

// Rule arms one (site, kind) pair with a per-decision probability. The
// probabilities of one site's rules stack: with rules {panic 0.01,
// rollback 0.05} a decision draws one uniform variate and injects a panic
// below 0.01, a rollback below 0.06, nothing otherwise.
type Rule struct {
	Site Site
	Kind Kind
	Prob float64
}

// InjectedPanic is the value a KindPanic injection panics with. The
// containment machinery treats it like any other unknown panic; tests and
// the chaos harness recognize it to tell injected faults from real bugs.
type InjectedPanic struct {
	Site Site
	Seq  uint64 // the site's decision index that raised it
}

// Error implements error so the value reads well inside KernelPanic.
func (e *InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %v seam (decision %d)", e.Site, e.Seq)
}

// Plan is one armed injection mix. The zero value is unusable; build with
// NewPlan. A nil *Plan is a valid "no injection" plan for every method.
type Plan struct {
	seed  uint64
	armed atomic.Bool
	rules [numSites][]Rule
	seq   [numSites]atomic.Uint64
	hits  [numSites][numKinds]atomic.Int64
}

// NewPlan builds an armed plan from the seed and rules. Rules with
// non-positive probability are dropped; probabilities above 1 saturate.
func NewPlan(seed uint64, rules []Rule) *Plan {
	p := &Plan{seed: seed}
	for _, r := range rules {
		if r.Prob <= 0 || r.Site >= numSites || r.Kind == KindNone || r.Kind >= numKinds {
			continue
		}
		if r.Prob > 1 {
			r.Prob = 1
		}
		p.rules[r.Site] = append(p.rules[r.Site], r)
	}
	p.armed.Store(true)
	return p
}

// Seed returns the plan's seed (echoed by harness output for replays).
func (p *Plan) Seed() uint64 { return p.seed }

// Disarm turns every subsequent decision into KindNone. Used by the chaos
// harness to prove a stormed runtime still executes cleanly.
func (p *Plan) Disarm() { p.armed.Store(false) }

// Arm re-enables decisions after a Disarm.
func (p *Plan) Arm() { p.armed.Store(true) }

// Armed reports whether decisions may inject.
func (p *Plan) Armed() bool { return p != nil && p.armed.Load() }

// Decide draws the next decision for a site. It is safe for concurrent
// use and O(rules) with no allocation; a nil or disarmed plan always
// returns KindNone without consuming a decision index.
func (p *Plan) Decide(site Site) Kind {
	if p == nil || !p.armed.Load() || site >= numSites {
		return KindNone
	}
	rules := p.rules[site]
	if len(rules) == 0 {
		return KindNone
	}
	n := p.seq[site].Add(1)
	x := mix64(p.seed ^ (uint64(site)+1)*0x9E3779B97F4A7C15 ^ n*0xBF58476D1CE4E5B9)
	f := float64(x>>11) / (1 << 53)
	for _, r := range rules {
		if f < r.Prob {
			p.hits[site][r.Kind].Add(1)
			return r.Kind
		}
		f -= r.Prob
	}
	return KindNone
}

// Seq returns the site's decision index (how many decisions were drawn).
func (p *Plan) Seq(site Site) uint64 {
	if p == nil || site >= numSites {
		return 0
	}
	return p.seq[site].Load()
}

// Injected returns how many times the (site, kind) pair fired.
func (p *Plan) Injected(site Site, kind Kind) int64 {
	if p == nil || site >= numSites || kind >= numKinds {
		return 0
	}
	return p.hits[site][kind].Load()
}

// Total returns the total number of injections across all sites and kinds.
func (p *Plan) Total() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for s := range p.hits {
		for k := range p.hits[s] {
			n += p.hits[s][k].Load()
		}
	}
	return n
}

// String renders the non-zero injection counts, e.g.
// "poll/panic:3 commit/rollback:1" ("clean" when nothing fired).
func (p *Plan) String() string {
	if p == nil {
		return "clean"
	}
	var b strings.Builder
	for s := Site(0); s < numSites; s++ {
		for k := Kind(0); k < numKinds; k++ {
			if n := p.hits[s][k].Load(); n > 0 {
				if b.Len() > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%v/%v:%d", s, k, n)
			}
		}
	}
	if b.Len() == 0 {
		return "clean"
	}
	return b.String()
}

// mix64 is the splitmix64 finalizer (the repo's standard bit mixer).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
