package faultinject

import "testing"

// TestDeterminism: two plans with the same seed and rules must produce the
// same decision stream per site.
func TestDeterminism(t *testing.T) {
	rules := []Rule{
		{Site: SitePoll, Kind: KindPanic, Prob: 0.05},
		{Site: SitePoll, Kind: KindRollback, Prob: 0.2},
		{Site: SiteCommit, Kind: KindRollback, Prob: 0.3},
	}
	a := NewPlan(42, rules)
	b := NewPlan(42, rules)
	for i := 0; i < 10000; i++ {
		if ka, kb := a.Decide(SitePoll), b.Decide(SitePoll); ka != kb {
			t.Fatalf("decision %d: %v != %v", i, ka, kb)
		}
		if ka, kb := a.Decide(SiteCommit), b.Decide(SiteCommit); ka != kb {
			t.Fatalf("commit decision %d: %v != %v", i, ka, kb)
		}
	}
	if a.Total() == 0 {
		t.Fatal("no injections in 10000 decisions at 25% total rate")
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals diverge: %d != %d", a.Total(), b.Total())
	}
}

// TestSeedsDiffer: different seeds should produce different mixes.
func TestSeedsDiffer(t *testing.T) {
	rules := []Rule{{Site: SitePoll, Kind: KindPanic, Prob: 0.5}}
	a, b := NewPlan(1, rules), NewPlan(2, rules)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Decide(SitePoll) == b.Decide(SitePoll) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
}

// TestDisarm: a disarmed plan injects nothing and consumes no decisions.
func TestDisarm(t *testing.T) {
	p := NewPlan(7, []Rule{{Site: SiteFork, Kind: KindDelay, Prob: 1}})
	if k := p.Decide(SiteFork); k != KindDelay {
		t.Fatalf("armed plan at prob 1: got %v", k)
	}
	p.Disarm()
	if p.Armed() {
		t.Fatal("Armed after Disarm")
	}
	seq := p.Seq(SiteFork)
	for i := 0; i < 100; i++ {
		if k := p.Decide(SiteFork); k != KindNone {
			t.Fatalf("disarmed plan injected %v", k)
		}
	}
	if p.Seq(SiteFork) != seq {
		t.Fatal("disarmed decisions consumed sequence indices")
	}
	p.Arm()
	if k := p.Decide(SiteFork); k != KindDelay {
		t.Fatalf("re-armed plan at prob 1: got %v", k)
	}
}

// TestNilPlan: a nil plan is a valid no-op for every method.
func TestNilPlan(t *testing.T) {
	var p *Plan
	if p.Armed() || p.Decide(SitePoll) != KindNone || p.Total() != 0 {
		t.Fatal("nil plan is not inert")
	}
	if p.String() != "clean" {
		t.Fatalf("nil plan String = %q", p.String())
	}
}

// TestStacking: per-site rule probabilities stack; the observed rates must
// track the configured ones.
func TestStacking(t *testing.T) {
	p := NewPlan(99, []Rule{
		{Site: SitePoll, Kind: KindPanic, Prob: 0.1},
		{Site: SitePoll, Kind: KindRollback, Prob: 0.4},
	})
	const n = 20000
	for i := 0; i < n; i++ {
		p.Decide(SitePoll)
	}
	panics := p.Injected(SitePoll, KindPanic)
	rollbacks := p.Injected(SitePoll, KindRollback)
	if f := float64(panics) / n; f < 0.07 || f > 0.13 {
		t.Errorf("panic rate %v, want ≈0.1", f)
	}
	if f := float64(rollbacks) / n; f < 0.35 || f > 0.45 {
		t.Errorf("rollback rate %v, want ≈0.4", f)
	}
}
