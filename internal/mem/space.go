package mem

import "fmt"

// Space is the full simulated address space as the TLS runtime sees it: one
// arena partitioned into a static segment, a heap managed by the allocator,
// and one stack region per virtual CPU (rank 0 is the non-speculative
// thread). The static segment, heap objects and the *non-speculative* stack
// are registered as global address space; speculative stacks are not — they
// belong to each thread's LocalBuffer world, and a speculative thread may
// only touch its own (paper §IV-G1/G3).
type Space struct {
	Arena    *Arena
	Registry *Registry
	Heap     *Allocator

	staticBase Addr
	staticEnd  Addr
	staticNext Addr

	stackBase []Addr // per rank, index 0 = non-speculative
	stackSize int
	numStacks int
}

// SpaceConfig sizes the address-space partitions.
type SpaceConfig struct {
	StaticBytes int // static (global variable) segment
	HeapBytes   int // heap segment
	StackBytes  int // per-thread stack segment
	NumThreads  int // stacks to carve out: ranks 0..NumThreads-1... rank 0 is the non-speculative thread
}

// DefaultSpaceConfig returns a configuration suitable for the benchmarks:
// 1 MiB static, 64 MiB heap, 256 KiB stacks.
func DefaultSpaceConfig(numThreads int) SpaceConfig {
	return SpaceConfig{
		StaticBytes: 1 << 20,
		HeapBytes:   64 << 20,
		StackBytes:  256 << 10,
		NumThreads:  numThreads,
	}
}

// NewSpace lays out and returns a fresh address space.
func NewSpace(cfg SpaceConfig) (*Space, error) {
	if cfg.NumThreads < 1 {
		return nil, fmt.Errorf("mem: need at least one thread stack")
	}
	if cfg.StaticBytes < Word || cfg.HeapBytes < Word || cfg.StackBytes < Word {
		return nil, fmt.Errorf("mem: degenerate space config %+v", cfg)
	}
	staticBytes := (cfg.StaticBytes + Word - 1) &^ (Word - 1)
	heapBytes := (cfg.HeapBytes + Word - 1) &^ (Word - 1)
	stackBytes := (cfg.StackBytes + Word - 1) &^ (Word - 1)
	total := Word + staticBytes + heapBytes + stackBytes*cfg.NumThreads
	arena, err := NewArena(total)
	if err != nil {
		return nil, err
	}
	reg := NewRegistry()
	s := &Space{
		Arena:     arena,
		Registry:  reg,
		stackSize: stackBytes,
		numStacks: cfg.NumThreads,
	}
	// Address 0..Word-1 reserved as the nil page.
	s.staticBase = Addr(Word)
	s.staticEnd = s.staticBase + Addr(staticBytes)
	s.staticNext = s.staticBase
	if err := reg.Register(s.staticBase, staticBytes); err != nil {
		return nil, err
	}
	heapBase := s.staticEnd
	heap, err := NewAllocator(reg, heapBase, heapBytes)
	if err != nil {
		return nil, err
	}
	s.Heap = heap
	stacksBase := heapBase + Addr(heapBytes)
	s.stackBase = make([]Addr, cfg.NumThreads)
	for i := 0; i < cfg.NumThreads; i++ {
		s.stackBase[i] = stacksBase + Addr(i*stackBytes)
	}
	// The non-speculative stack is part of the global address space.
	if err := reg.Register(s.stackBase[0], stackBytes); err != nil {
		return nil, err
	}
	return s, nil
}

// Static carves an n-byte object out of the static segment. Static objects
// live for the whole program, exactly like globals registered "at the
// beginning of program execution" in the paper.
func (s *Space) Static(n int) (Addr, error) {
	need := Addr((n + Word - 1) &^ (Word - 1))
	if s.staticNext+need > s.staticEnd {
		return NilAddr, fmt.Errorf("mem: static segment exhausted (%d requested)", n)
	}
	p := s.staticNext
	s.staticNext += need
	return p, nil
}

// StackRegion returns the [base, base+size) stack region of the given rank.
// Rank 0 is the non-speculative thread.
func (s *Space) StackRegion(rank int) (Range, error) {
	if rank < 0 || rank >= s.numStacks {
		return Range{}, fmt.Errorf("mem: no stack for rank %d", rank)
	}
	base := s.stackBase[rank]
	return Range{base, base + Addr(s.stackSize)}, nil
}

// NumStacks returns the number of per-thread stacks carved out.
func (s *Space) NumStacks() int { return s.numStacks }

// StackBytes returns the per-thread stack size.
func (s *Space) StackBytes() int { return s.stackSize }

// InGlobal reports whether [p,p+n) is valid global space (static, live heap
// or non-speculative stack).
func (s *Space) InGlobal(p Addr, n int) bool { return s.Registry.Contains(p, n) }
