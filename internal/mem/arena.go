// Package mem implements the simulated address space MUTLS buffers against.
//
// The paper's runtime hashes raw process addresses into its GlobalBuffer and
// registers the address space of every static and heap object so that
// speculative accesses to invalid addresses can be detected and rolled back
// (paper §IV-G1). Go's garbage collector hides raw pointers, so this package
// provides the closest equivalent substrate: a flat word-array arena with
// stable integer addresses, a first-fit allocator with coalescing, and a
// copy-on-write interval registry of valid "global" (static + heap +
// non-speculative stack) ranges.
//
// Arena concurrency model: software TLS reads shared memory racily by
// design — speculative threads snapshot words that the non-speculative
// thread may be writing, and validation (not synchronization) provides
// safety. Direct arena *writes* are serialized by the TLS protocol itself:
// only the non-speculative thread stores directly, and a speculative
// write-set commits only inside a join handshake while the non-speculative
// thread spins. The arena therefore stores data as words accessed with
// sync/atomic loads and stores: concurrent readers observe tear-free values
// (possibly stale, which validation detects) without violating the Go
// memory model.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// Word is the buffering granularity in bytes, matching the paper's WORD size
// on the 64-bit evaluation machine.
const Word = 8

// Addr is an address in the simulated address space. Address 0 is reserved
// as the nil address and is never valid.
type Addr uint64

// NilAddr is the invalid zero address.
const NilAddr Addr = 0

// Arena is a flat simulated memory. Non-speculative code reads and writes it
// directly; speculative threads only observe it through a GlobalBuffer.
type Arena struct {
	words []uint64
	size  int
}

// NewArena creates an arena of the given size in bytes (rounded up to whole
// words). The first Word bytes are reserved so that no object is ever placed
// at address 0.
func NewArena(size int) (*Arena, error) {
	if size < 4*Word {
		return nil, fmt.Errorf("mem: arena size %d too small", size)
	}
	nWords := (size + Word - 1) / Word
	return &Arena{words: make([]uint64, nWords), size: nWords * Word}, nil
}

// Size returns the arena size in bytes.
func (a *Arena) Size() int { return a.size }

// InBounds reports whether [p, p+n) lies inside the arena and does not wrap.
func (a *Arena) InBounds(p Addr, n int) bool {
	if p == NilAddr || n < 0 {
		return false
	}
	end := uint64(p) + uint64(n)
	return end >= uint64(p) && end <= uint64(a.size)
}

func (a *Arena) check(p Addr, n int) {
	if !a.InBounds(p, n) {
		panic(fmt.Sprintf("mem: out-of-bounds access [%d,%d)", p, uint64(p)+uint64(n)))
	}
}

// ReadWord returns the 8-byte word at the word-aligned address p.
func (a *Arena) ReadWord(p Addr) uint64 {
	a.check(p, Word)
	if p&(Word-1) != 0 {
		panic(fmt.Sprintf("mem: unaligned word read at %d", p))
	}
	return atomic.LoadUint64(&a.words[p>>3])
}

// WriteWord stores an 8-byte word at the word-aligned address p.
func (a *Arena) WriteWord(p Addr, v uint64) {
	a.check(p, Word)
	if p&(Word-1) != 0 {
		panic(fmt.Sprintf("mem: unaligned word write at %d", p))
	}
	atomic.StoreUint64(&a.words[p>>3], v)
}

// readSub returns n bytes (n ≤ Word, not crossing a word boundary) at p.
func (a *Arena) readSub(p Addr, n int) uint64 {
	a.check(p, n)
	w := atomic.LoadUint64(&a.words[p>>3])
	shift := uint(p&(Word-1)) * 8
	if n == Word {
		return w
	}
	mask := uint64(1)<<(uint(n)*8) - 1
	return (w >> shift) & mask
}

// writeSub writes the low n bytes of v (n ≤ Word, not crossing a word
// boundary) at p via a read-modify-write on the containing word. Direct
// writers are serialized by the TLS protocol, so the RMW cannot lose
// concurrent updates.
func (a *Arena) writeSub(p Addr, n int, v uint64) {
	a.check(p, n)
	if n == Word {
		atomic.StoreUint64(&a.words[p>>3], v)
		return
	}
	shift := uint(p&(Word-1)) * 8
	mask := (uint64(1)<<(uint(n)*8) - 1) << shift
	w := atomic.LoadUint64(&a.words[p>>3])
	w = (w &^ mask) | ((v << shift) & mask)
	atomic.StoreUint64(&a.words[p>>3], w)
}

// ReadUint8 returns the byte at p.
func (a *Arena) ReadUint8(p Addr) uint8 { return uint8(a.readSub(p, 1)) }

// WriteUint8 stores a byte at p.
func (a *Arena) WriteUint8(p Addr, v uint8) { a.writeSub(p, 1, uint64(v)) }

// ReadUint16 returns the 2-byte value at the 2-aligned address p.
func (a *Arena) ReadUint16(p Addr) uint16 { return uint16(a.readSub(p, 2)) }

// WriteUint16 stores a 2-byte value at p.
func (a *Arena) WriteUint16(p Addr, v uint16) { a.writeSub(p, 2, uint64(v)) }

// ReadUint32 returns the 4-byte value at the 4-aligned address p.
func (a *Arena) ReadUint32(p Addr) uint32 { return uint32(a.readSub(p, 4)) }

// WriteUint32 stores a 4-byte value at p.
func (a *Arena) WriteUint32(p Addr, v uint32) { a.writeSub(p, 4, uint64(v)) }

// ReadInt64 returns the 8-byte signed value at p.
func (a *Arena) ReadInt64(p Addr) int64 { return int64(a.ReadWord(p)) }

// WriteInt64 stores an 8-byte signed value at p.
func (a *Arena) WriteInt64(p Addr, v int64) { a.WriteWord(p, uint64(v)) }

// ReadFloat64 returns the float64 at p.
func (a *Arena) ReadFloat64(p Addr) float64 { return math.Float64frombits(a.ReadWord(p)) }

// WriteFloat64 stores a float64 at p.
func (a *Arena) WriteFloat64(p Addr, v float64) { a.WriteWord(p, math.Float64bits(v)) }

// ReadFloat32 returns the float32 at p.
func (a *Arena) ReadFloat32(p Addr) float32 { return math.Float32frombits(a.ReadUint32(p)) }

// WriteFloat32 stores a float32 at p.
func (a *Arena) WriteFloat32(p Addr, v float32) { a.WriteUint32(p, math.Float32bits(v)) }

// ReadWords copies len(dst)/Word consecutive words starting at the
// word-aligned address p into dst as little-endian bytes. It is the bulk
// read under the GlobalBuffer range paths: one bounds check for the whole
// run, per-word atomic loads (the same tear-free guarantee as ReadWord,
// word by word — the run as a whole is not atomic, which is fine because
// validation, not synchronization, provides safety).
func (a *Arena) ReadWords(p Addr, dst []byte) {
	a.checkRun(p, len(dst))
	w := a.words[p>>3 : int(p>>3)+len(dst)/Word]
	for i := range w {
		binary.LittleEndian.PutUint64(dst[:Word], atomic.LoadUint64(&w[i]))
		dst = dst[Word:]
	}
}

// WriteWords stores len(src)/Word consecutive words of little-endian bytes
// at the word-aligned address p. Direct writers are serialized by the TLS
// protocol (commit happens inside the join handshake), so per-word atomic
// stores suffice.
func (a *Arena) WriteWords(p Addr, src []byte) {
	a.checkRun(p, len(src))
	w := a.words[p>>3 : int(p>>3)+len(src)/Word]
	for i := range w {
		atomic.StoreUint64(&w[i], binary.LittleEndian.Uint64(src[:Word]))
		src = src[Word:]
	}
}

// EqualWords reports whether the len(data)/Word words at the word-aligned
// address p equal the little-endian words of data — the bulk comparison
// behind range-aware read-set validation walks.
func (a *Arena) EqualWords(p Addr, data []byte) bool {
	a.checkRun(p, len(data))
	w := a.words[p>>3 : int(p>>3)+len(data)/Word]
	for i := range w {
		if atomic.LoadUint64(&w[i]) != binary.LittleEndian.Uint64(data[:Word]) {
			return false
		}
		data = data[Word:]
	}
	return true
}

// checkRun validates a word-run access: in bounds, word-aligned, whole
// words.
func (a *Arena) checkRun(p Addr, n int) {
	a.check(p, n)
	if p&(Word-1) != 0 || n%Word != 0 {
		panic(fmt.Sprintf("mem: misaligned word-run access [%d,+%d)", p, n))
	}
}

// FillWords stores the word v into nWords consecutive words starting at the
// word-aligned address p — the arena's memset intrinsic. One bounds check
// for the whole run, then a range fill of per-word atomic stores (the same
// tear-free contract as WriteWord, without the per-word call, check and
// byte-encoding overhead of the generic paths).
func (a *Arena) FillWords(p Addr, nWords int, v uint64) {
	if nWords < 0 {
		panic(fmt.Sprintf("mem: negative fill length %d", nWords))
	}
	a.checkRun(p, nWords*Word)
	w := a.words[p>>3 : int(p>>3)+nWords]
	for i := range w {
		atomic.StoreUint64(&w[i], v)
	}
}

// ZeroWords clears nWords consecutive words at the word-aligned address p
// (FillWords with zero — the allocator-zeroing fast path).
func (a *Arena) ZeroWords(p Addr, nWords int) { a.FillWords(p, nWords, 0) }

// CopyWords copies nWords consecutive words from src to dst (both
// word-aligned) — the arena's memmove intrinsic. Overlapping ranges copy
// back-to-front when dst is inside the source run, matching Go's copy.
func (a *Arena) CopyWords(dst, src Addr, nWords int) {
	if nWords < 0 {
		panic(fmt.Sprintf("mem: negative copy length %d", nWords))
	}
	a.checkRun(src, nWords*Word)
	a.checkRun(dst, nWords*Word)
	d := a.words[dst>>3 : int(dst>>3)+nWords]
	s := a.words[src>>3 : int(src>>3)+nWords]
	if dst > src && dst < src+Addr(nWords*Word) {
		for i := nWords - 1; i >= 0; i-- {
			atomic.StoreUint64(&d[i], atomic.LoadUint64(&s[i]))
		}
		return
	}
	for i := range d {
		atomic.StoreUint64(&d[i], atomic.LoadUint64(&s[i]))
	}
}

// splitRun decomposes a byte span at p into a sub-word head up to the next
// word boundary, a run of whole words and a sub-word tail.
func splitRun(p Addr, n int) (head, nWords, tail int) {
	if off := WordOffset(p); off != 0 {
		head = Word - off
		if head > n {
			head = n
		}
		n -= head
	}
	return head, n / Word, n % Word
}

// Snapshot copies n bytes starting at p into a fresh slice: sub-word head
// and tail, one bulk word read for the aligned middle.
func (a *Arena) Snapshot(p Addr, n int) []byte {
	a.check(p, n)
	out := make([]byte, n)
	head, nWords, tail := splitRun(p, n)
	if head > 0 {
		putLEBytes(out[:head], a.readSub(p, head))
		p += Addr(head)
	}
	if nWords > 0 {
		a.ReadWords(p, out[head:head+nWords*Word])
		p += Addr(nWords * Word)
	}
	if tail > 0 {
		putLEBytes(out[n-tail:], a.readSub(p, tail))
	}
	return out
}

// WriteBytes stores the given bytes starting at p: sub-word head and tail,
// one bulk word splice for the aligned middle.
func (a *Arena) WriteBytes(p Addr, data []byte) {
	n := len(data)
	a.check(p, n)
	head, nWords, tail := splitRun(p, n)
	if head > 0 {
		a.writeSub(p, head, getLEBytes(data[:head]))
		p += Addr(head)
	}
	if nWords > 0 {
		a.WriteWords(p, data[head:head+nWords*Word])
		p += Addr(nWords * Word)
	}
	if tail > 0 {
		a.writeSub(p, tail, getLEBytes(data[n-tail:]))
	}
}

// Copy copies n bytes from src to dst inside the arena (memmove semantics).
// Word-aligned source and destination copy whole words in place via
// CopyWords; mixed alignments stage through a snapshot.
func (a *Arena) Copy(dst, src Addr, n int) {
	if Aligned(dst, Word) && Aligned(src, Word) {
		nWords := n / Word
		a.CopyWords(dst, src, nWords)
		if tail := n % Word; tail > 0 {
			off := Addr(nWords * Word)
			a.writeSub(dst+off, tail, a.readSub(src+off, tail))
		}
		return
	}
	a.WriteBytes(dst, a.Snapshot(src, n))
}

// Zero clears n bytes starting at p: sub-word head and tail, ZeroWords for
// the aligned middle.
func (a *Arena) Zero(p Addr, n int) {
	a.check(p, n)
	head, nWords, tail := splitRun(p, n)
	if head > 0 {
		a.writeSub(p, head, 0)
		p += Addr(head)
	}
	if nWords > 0 {
		a.ZeroWords(p, nWords)
		p += Addr(nWords * Word)
	}
	if tail > 0 {
		a.writeSub(p, tail, 0)
	}
}

// putLEBytes spreads the low len(b) bytes of v into b, little-endian.
func putLEBytes(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}

// getLEBytes packs len(b) little-endian bytes into the low bytes of a word.
func getLEBytes(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Aligned reports whether p is aligned to size bytes. The paper supports
// accesses whose size and WORD divide one another, with p aligned by size.
func Aligned(p Addr, size int) bool {
	if size <= 0 {
		return false
	}
	return uint64(p)%uint64(size) == 0
}

// WordBase returns p with its low Word bits cleared — the paper's
// "normalized address" np used for sub-word accesses.
func WordBase(p Addr) Addr { return p &^ (Word - 1) }

// WordOffset returns the byte offset of p inside its word.
func WordOffset(p Addr) int { return int(p & (Word - 1)) }
