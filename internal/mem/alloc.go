package mem

import (
	"fmt"
	"sort"
)

// Allocator is a first-fit free-list allocator over an arena region. It
// stands in for the memory-management library calls the paper intercepts
// ("malloc" in C, "_gfortran_internal_malloc" in Fortran, "_Znwm" in C++):
// every allocation registers its space in the registry and every free
// deregisters it, which is how the GlobalBuffer distinguishes valid heap
// addresses from garbage pointers.
//
// Allocation metadata lives outside the arena (a map from address to block
// size), so buffered speculative writes can never corrupt the allocator.
// The allocator is single-threaded by design: the paper disallows
// speculative threads from allocating or deallocating memory because they
// may roll back, so only the non-speculative thread ever calls it.
type Allocator struct {
	reg    *Registry
	free   []Range      // sorted, coalesced free blocks
	sizes  map[Addr]int // live allocation sizes
	start  Addr         // start of the managed region (word-aligned)
	limit  Addr         // end of the managed region
	inUse  int          // live bytes
	allocs uint64       // total Alloc calls
	frees  uint64       // total Free calls

	// Trip, when non-nil, is consulted at every Alloc with the requested
	// byte count; returning true fails the allocation as if the region
	// were exhausted. It is the fault-injection seam for chaos testing
	// allocation-failure handling without actually shrinking the heap.
	Trip func(n int) bool
}

// NewAllocator manages [start, start+size) of an arena, registering
// allocations with reg. The region must not include address 0.
func NewAllocator(reg *Registry, start Addr, size int) (*Allocator, error) {
	if start == NilAddr {
		return nil, fmt.Errorf("mem: allocator region may not start at the nil address")
	}
	if size < Word {
		return nil, fmt.Errorf("mem: allocator region too small (%d bytes)", size)
	}
	// Keep every block word-aligned.
	aligned := alignUp(start)
	size -= int(aligned - start)
	size &^= Word - 1
	if size < Word {
		return nil, fmt.Errorf("mem: allocator region too small after alignment")
	}
	return &Allocator{
		reg:   reg,
		free:  []Range{{aligned, aligned + Addr(size)}},
		sizes: make(map[Addr]int),
		start: aligned,
		limit: aligned + Addr(size),
	}, nil
}

// Reset releases every live allocation at once, deregistering their space
// and restoring the whole region as one free block. It is the heap-recycle
// hook for runtime pooling: a served run that leaked allocations (an
// aborted kernel, a cancelled request unwinding past its frees) must not
// shrink the heap available to the next tenant of the same runtime.
// Addresses handed out before Reset are invalid afterwards.
func (al *Allocator) Reset() error {
	for p, size := range al.sizes {
		if err := al.reg.Deregister(p, size); err != nil {
			return err
		}
	}
	clear(al.sizes)
	al.inUse = 0
	al.free = al.free[:0]
	al.free = append(al.free, Range{al.start, al.limit})
	return nil
}

func alignUp(p Addr) Addr { return (p + Word - 1) &^ (Word - 1) }

// Alloc returns the address of a fresh n-byte block (rounded up to whole
// words) and registers its space. It returns NilAddr and an error when the
// region is exhausted.
func (al *Allocator) Alloc(n int) (Addr, error) {
	if n <= 0 {
		return NilAddr, fmt.Errorf("mem: alloc of %d bytes", n)
	}
	if al.Trip != nil && al.Trip(n) {
		return NilAddr, fmt.Errorf("mem: out of memory allocating %d bytes (injected)", n)
	}
	need := (n + Word - 1) &^ (Word - 1)
	for i, blk := range al.free {
		if blk.Len() < need {
			continue
		}
		p := blk.Start
		rest := Range{blk.Start + Addr(need), blk.End}
		if rest.Len() == 0 {
			al.free = append(al.free[:i], al.free[i+1:]...)
		} else {
			al.free[i] = rest
		}
		al.sizes[p] = need
		al.inUse += need
		al.allocs++
		if err := al.reg.Register(p, need); err != nil {
			return NilAddr, err
		}
		return p, nil
	}
	return NilAddr, fmt.Errorf("mem: out of memory allocating %d bytes (%d in use)", n, al.inUse)
}

// Free releases the block at p, deregisters its space and coalesces it with
// neighbouring free blocks.
func (al *Allocator) Free(p Addr) error {
	size, ok := al.sizes[p]
	if !ok {
		return fmt.Errorf("mem: free of unallocated address %d", p)
	}
	delete(al.sizes, p)
	al.inUse -= size
	al.frees++
	if err := al.reg.Deregister(p, size); err != nil {
		return err
	}
	blk := Range{p, p + Addr(size)}
	i := sort.Search(len(al.free), func(i int) bool { return al.free[i].Start >= blk.Start })
	al.free = append(al.free, Range{})
	copy(al.free[i+1:], al.free[i:])
	al.free[i] = blk
	// Coalesce with successor then predecessor.
	if i+1 < len(al.free) && al.free[i].End == al.free[i+1].Start {
		al.free[i].End = al.free[i+1].End
		al.free = append(al.free[:i+1], al.free[i+2:]...)
	}
	if i > 0 && al.free[i-1].End == al.free[i].Start {
		al.free[i-1].End = al.free[i].End
		al.free = append(al.free[:i], al.free[i+1:]...)
	}
	return nil
}

// SizeOf returns the rounded size of the live block at p, or 0 if p is not
// a live allocation.
func (al *Allocator) SizeOf(p Addr) int { return al.sizes[p] }

// InUse returns the number of live allocated bytes.
func (al *Allocator) InUse() int { return al.inUse }

// FreeBytes returns the number of bytes available for allocation.
func (al *Allocator) FreeBytes() int {
	total := 0
	for _, blk := range al.free {
		total += blk.Len()
	}
	return total
}

// Stats returns the cumulative number of Alloc and Free calls.
func (al *Allocator) Stats() (allocs, frees uint64) { return al.allocs, al.frees }

// FreeBlockCount returns the number of distinct free blocks; after freeing
// everything it should be 1 (full coalescing).
func (al *Allocator) FreeBlockCount() int { return len(al.free) }
