package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestAllocator(t *testing.T, size int) (*Allocator, *Registry) {
	t.Helper()
	reg := NewRegistry()
	al, err := NewAllocator(reg, 64, size)
	if err != nil {
		t.Fatal(err)
	}
	return al, reg
}

func TestAllocatorBasics(t *testing.T) {
	al, reg := newTestAllocator(t, 1024)
	p, err := al.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if p == NilAddr || p%Word != 0 {
		t.Fatalf("Alloc returned unaligned or nil address %d", p)
	}
	if al.SizeOf(p) != 16 { // 10 rounded up to words
		t.Fatalf("SizeOf = %d, want 16", al.SizeOf(p))
	}
	if !reg.Contains(p, 10) {
		t.Fatal("allocation not registered")
	}
	if err := al.Free(p); err != nil {
		t.Fatal(err)
	}
	if reg.Contains(p, 1) {
		t.Fatal("freed allocation still registered")
	}
}

func TestAllocatorRejectsBadSizes(t *testing.T) {
	al, _ := newTestAllocator(t, 1024)
	if _, err := al.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	if _, err := al.Alloc(-5); err == nil {
		t.Error("Alloc(-5) succeeded")
	}
}

func TestAllocatorDoubleFree(t *testing.T) {
	al, _ := newTestAllocator(t, 1024)
	p, _ := al.Alloc(8)
	if err := al.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := al.Free(p); err == nil {
		t.Fatal("double free succeeded")
	}
	if err := al.Free(12345); err == nil {
		t.Fatal("free of wild address succeeded")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al, _ := newTestAllocator(t, 64)
	if _, err := al.Alloc(65); err == nil {
		t.Fatal("oversized alloc succeeded")
	}
	p, err := al.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc(1); err == nil {
		t.Fatal("alloc from empty region succeeded")
	}
	al.Free(p)
	if _, err := al.Alloc(64); err != nil {
		t.Fatalf("free did not recycle space: %v", err)
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	al, _ := newTestAllocator(t, 3*Word)
	a, _ := al.Alloc(Word)
	b, _ := al.Alloc(Word)
	c, _ := al.Alloc(Word)
	// Free in an order that requires both successor and predecessor merges.
	al.Free(a)
	al.Free(c)
	if al.FreeBlockCount() != 2 {
		t.Fatalf("FreeBlockCount = %d, want 2", al.FreeBlockCount())
	}
	al.Free(b)
	if al.FreeBlockCount() != 1 {
		t.Fatalf("after middle free FreeBlockCount = %d, want 1", al.FreeBlockCount())
	}
	if _, err := al.Alloc(3 * Word); err != nil {
		t.Fatalf("coalesced block not allocatable: %v", err)
	}
}

func TestAllocatorNoOverlap(t *testing.T) {
	al, _ := newTestAllocator(t, 4096)
	type blk struct {
		p Addr
		n int
	}
	var live []blk
	for i := 0; i < 50; i++ {
		n := 8 * (1 + i%7)
		p, err := al.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range live {
			if p < b.p+Addr(b.n) && b.p < p+Addr(n) {
				t.Fatalf("allocation [%d,+%d) overlaps [%d,+%d)", p, n, b.p, b.n)
			}
		}
		live = append(live, blk{p, n})
	}
}

func TestAllocatorInUseAccounting(t *testing.T) {
	al, _ := newTestAllocator(t, 1024)
	p1, _ := al.Alloc(24)
	p2, _ := al.Alloc(8)
	if al.InUse() != 32 {
		t.Fatalf("InUse = %d, want 32", al.InUse())
	}
	al.Free(p1)
	if al.InUse() != 8 {
		t.Fatalf("InUse after free = %d, want 8", al.InUse())
	}
	al.Free(p2)
	if al.InUse() != 0 {
		t.Fatalf("InUse after all frees = %d, want 0", al.InUse())
	}
	allocs, frees := al.Stats()
	if allocs != 2 || frees != 2 {
		t.Fatalf("Stats = (%d,%d), want (2,2)", allocs, frees)
	}
}

func TestNewAllocatorRejectsNilStart(t *testing.T) {
	if _, err := NewAllocator(NewRegistry(), NilAddr, 1024); err == nil {
		t.Fatal("allocator at nil address succeeded")
	}
	if _, err := NewAllocator(NewRegistry(), 64, 4); err == nil {
		t.Fatal("tiny allocator region succeeded")
	}
}

func TestNewAllocatorAlignsStart(t *testing.T) {
	reg := NewRegistry()
	al, err := NewAllocator(reg, 13, 1024)
	if err != nil {
		t.Fatal(err)
	}
	p, err := al.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if p%Word != 0 {
		t.Fatalf("first allocation %d unaligned", p)
	}
}

// Property: random alloc/free sequences never leak, never overlap, always
// fully coalesce when everything is freed, and keep the registry in sync.
func TestQuickAllocatorRandomChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := NewRegistry()
		al, err := NewAllocator(reg, 64, 1<<14)
		if err != nil {
			return false
		}
		capacity := al.FreeBytes()
		live := map[Addr]int{}
		for op := 0; op < 300; op++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				n := 1 + rng.Intn(200)
				p, err := al.Alloc(n)
				if err != nil {
					continue // exhausted is fine
				}
				if !reg.Contains(p, n) {
					return false
				}
				live[p] = n
			} else {
				var victim Addr
				for p := range live {
					victim = p
					break
				}
				if al.Free(victim) != nil {
					return false
				}
				if reg.Contains(victim, 1) {
					return false
				}
				delete(live, victim)
			}
		}
		for p := range live {
			if al.Free(p) != nil {
				return false
			}
		}
		return al.InUse() == 0 && al.FreeBlockCount() == 1 && al.FreeBytes() == capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
