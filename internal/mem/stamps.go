package mem

import (
	"fmt"
	"sync/atomic"
)

// DefaultStampPageBytes is the dirty-table granularity: coarse enough that
// the table stays small and marking a bulk store touches few entries, fine
// enough that an unrelated hot write rarely dirties a validated page.
const DefaultStampPageBytes = 4096

// WriteStamps is a page-granularity dirty table over an arena: every direct
// arena write (non-speculative stores, write-set commits) stamps the pages
// it touched with a fresh global sequence number. It exists so read-set
// validation can run *outside* the commit serial section: a speculative
// thread snapshots the sequence, pre-validates optimistically while the
// joining thread is still running, and at lock time re-checks only the
// read-set runs whose pages were stamped after the snapshot.
//
// Ordering contract (the soundness of the scheme depends on it):
//
//   - Writers store the data FIRST, then call Mark. If a pre-validating
//     reader saw the stale value of a racing write, the write's data store
//     is ordered after the reader's load, so the write's Mark — which
//     follows the data store — produces a stamp strictly greater than any
//     sequence snapshot the reader took before its loads. DirtySince then
//     reports the page dirty and the run is re-checked under the lock.
//   - Readers call Snapshot BEFORE loading any arena word they intend to
//     pre-validate against.
//   - Marks from writes that happened before the lock window are visible at
//     lock time through the join handshake's release/acquire chain; no
//     direct write runs concurrently with the lock window itself, because
//     commits and non-speculative stores are serialized through the
//     non-speculative thread.
//
// The stamp slots are atomics, so marking and checking race cleanly with
// each other and with the arena's racy-by-design reads.
type WriteStamps struct {
	seq       atomic.Uint64
	pageShift uint
	pageMask  Addr
	stamps    []atomic.Uint64
}

// NewWriteStamps builds a dirty table covering size arena bytes with the
// given page granularity (a power of two; 0 selects DefaultStampPageBytes).
func NewWriteStamps(size, pageBytes int) (*WriteStamps, error) {
	if pageBytes == 0 {
		pageBytes = DefaultStampPageBytes
	}
	if pageBytes < Word || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("mem: stamp page size %d must be a power of two ≥ %d", pageBytes, Word)
	}
	if size < 0 {
		return nil, fmt.Errorf("mem: negative stamp coverage %d", size)
	}
	nPages := (size + pageBytes - 1) / pageBytes
	if nPages == 0 {
		nPages = 1
	}
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
	}
	return &WriteStamps{
		pageShift: shift,
		pageMask:  Addr(pageBytes - 1),
		stamps:    make([]atomic.Uint64, nPages),
	}, nil
}

// PageBytes returns the table's page granularity.
func (ws *WriteStamps) PageBytes() int { return 1 << ws.pageShift }

// Snapshot returns the current sequence number. Pre-validation must take
// it before loading any arena word it will compare against.
func (ws *WriteStamps) Snapshot() uint64 { return ws.seq.Load() }

// Mark stamps every page overlapping [p, p+n) with a fresh sequence
// number. The caller must have stored the data already (write-then-stamp).
func (ws *WriteStamps) Mark(p Addr, n int) {
	if n <= 0 {
		return
	}
	s := ws.seq.Add(1)
	first := int(uint64(p) >> ws.pageShift)
	last := int(uint64(p+Addr(n)-1) >> ws.pageShift)
	if last >= len(ws.stamps) {
		last = len(ws.stamps) - 1
	}
	for i := first; i <= last && i >= 0; i++ {
		ws.stamps[i].Store(s)
	}
}

// DirtySince reports whether any page overlapping [p, p+n) was marked
// after the given Snapshot value.
func (ws *WriteStamps) DirtySince(p Addr, n int, snap uint64) bool {
	if n <= 0 {
		return false
	}
	first := int(uint64(p) >> ws.pageShift)
	last := int(uint64(p+Addr(n)-1) >> ws.pageShift)
	if last >= len(ws.stamps) {
		last = len(ws.stamps) - 1
	}
	for i := first; i <= last && i >= 0; i++ {
		if ws.stamps[i].Load() > snap {
			return true
		}
	}
	return false
}
