package mem

import (
	"math/rand"
	"testing"
)

// refZero is the pre-intrinsic byte-at-a-time Zero, kept as the oracle (and
// the benchmark reference) for the word-batched paths.
func refZero(a *Arena, p Addr, n int) {
	for i := 0; i < n; i++ {
		a.WriteUint8(p+Addr(i), 0)
	}
}

// refWriteBytes is the pre-intrinsic byte-at-a-time WriteBytes oracle.
func refWriteBytes(a *Arena, p Addr, data []byte) {
	for i, b := range data {
		a.WriteUint8(p+Addr(i), b)
	}
}

func TestFillWords(t *testing.T) {
	a, _ := NewArena(1 << 12)
	a.FillWords(64, 16, 0xA1B2C3D4E5F60718)
	for k := 0; k < 16; k++ {
		if got := a.ReadWord(64 + Addr(k*Word)); got != 0xA1B2C3D4E5F60718 {
			t.Fatalf("word %d = %#x", k, got)
		}
	}
	// Neighbours untouched.
	if a.ReadWord(56) != 0 || a.ReadWord(64+16*Word) != 0 {
		t.Fatal("fill leaked outside its run")
	}
	a.ZeroWords(64, 16)
	for k := 0; k < 16; k++ {
		if got := a.ReadWord(64 + Addr(k*Word)); got != 0 {
			t.Fatalf("zeroed word %d = %#x", k, got)
		}
	}
	a.FillWords(64, 0, 7) // empty fill is a no-op
	for _, bad := range []func(){
		func() { a.FillWords(60, 2, 1) },  // misaligned
		func() { a.FillWords(64, -1, 1) }, // negative
		func() { a.CopyWords(64, 62, 2) }, // misaligned source
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad intrinsic geometry did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestCopyWordsOverlap(t *testing.T) {
	a, _ := NewArena(1 << 12)
	for k := 0; k < 8; k++ {
		a.WriteWord(Addr(64+k*Word), uint64(k+1))
	}
	a.CopyWords(64+2*Word, 64, 8) // forward overlap: back-to-front
	for k := 0; k < 8; k++ {
		if got := a.ReadWord(Addr(64 + (k+2)*Word)); got != uint64(k+1) {
			t.Fatalf("forward overlap word %d = %d, want %d", k, got, k+1)
		}
	}
	for k := 0; k < 8; k++ {
		a.WriteWord(Addr(256+k*Word), uint64(10+k))
	}
	a.CopyWords(256-2*Word, 256, 8) // backward overlap: front-to-back
	for k := 0; k < 8; k++ {
		if got := a.ReadWord(Addr(256 + (k-2)*Word)); got != uint64(10+k) {
			t.Fatalf("backward overlap word %d = %d, want %d", k, got, 10+k)
		}
	}
}

// Property: the word-batched Zero/WriteBytes/Snapshot/Copy agree with the
// byte-at-a-time reference on every alignment and length.
func TestByteOpsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a, _ := NewArena(1 << 12)
	b, _ := NewArena(1 << 12)
	for trial := 0; trial < 500; trial++ {
		p := Addr(8 + rng.Intn(2000))
		n := rng.Intn(70)
		data := make([]byte, n)
		rng.Read(data)
		a.WriteBytes(p, data)
		refWriteBytes(b, p, data)
		q := Addr(8 + rng.Intn(2000))
		m := rng.Intn(70)
		a.Zero(q, m)
		refZero(b, q, m)
		if trial%3 == 0 {
			dst := Addr(2100 + rng.Intn(1000))
			a.Copy(dst, p, n)
			refWriteBytes(b, dst, b.Snapshot(p, n))
		}
		for i := Word; i < a.Size(); i += Word {
			if got, want := a.ReadWord(Addr(i)), b.ReadWord(Addr(i)); got != want {
				t.Fatalf("trial %d: word at %d = %#x, want %#x", trial, i, got, want)
			}
		}
		snap, ref := a.Snapshot(p, n), b.Snapshot(p, n)
		for i := range snap {
			if snap[i] != ref[i] {
				t.Fatalf("trial %d: snapshot byte %d differs", trial, i)
			}
		}
	}
}

func TestWriteStamps(t *testing.T) {
	ws, err := NewWriteStamps(1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.PageBytes() != DefaultStampPageBytes {
		t.Fatalf("PageBytes = %d", ws.PageBytes())
	}
	snap := ws.Snapshot()
	if ws.DirtySince(0, 1<<16, snap) {
		t.Fatal("fresh table reports dirty")
	}
	ws.Mark(5000, 16) // page 1
	if !ws.DirtySince(4096, 8, snap) {
		t.Fatal("marked page not dirty")
	}
	if ws.DirtySince(0, 4096, snap) {
		t.Fatal("unmarked page dirty")
	}
	if ws.DirtySince(8192, 8, snap) {
		t.Fatal("later page dirty")
	}
	// A span overlapping the dirty page is dirty.
	if !ws.DirtySince(4000, 200, snap) {
		t.Fatal("overlapping span not dirty")
	}
	// A snapshot taken after the mark sees a clean table.
	snap2 := ws.Snapshot()
	if ws.DirtySince(0, 1<<16, snap2) {
		t.Fatal("post-mark snapshot reports dirty")
	}
	// Page-boundary straddling mark stamps both pages.
	ws.Mark(8190, 8)
	if !ws.DirtySince(4096, 8, snap2) || !ws.DirtySince(8192, 8, snap2) {
		t.Fatal("straddling mark missed a page")
	}
	if _, err := NewWriteStamps(64, 3); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
}

// BenchmarkArenaFill prices zeroing a dense 4 KiB block: the word-batched
// intrinsic (ZeroWords under Zero) against the pre-intrinsic byte-at-a-time
// reference. The acceptance bar for the commit-path work is ≥ 2x fewer
// ns/op for the intrinsic.
func BenchmarkArenaFill(b *testing.B) {
	const block = 4096
	a, _ := NewArena(1 << 16)
	b.Run("words", func(b *testing.B) {
		b.SetBytes(block)
		for i := 0; i < b.N; i++ {
			a.Zero(64, block)
		}
	})
	b.Run("bytes-reference", func(b *testing.B) {
		b.SetBytes(block)
		for i := 0; i < b.N; i++ {
			refZero(a, 64, block)
		}
	})
	b.Run("fill-words", func(b *testing.B) {
		b.SetBytes(block)
		for i := 0; i < b.N; i++ {
			a.FillWords(64, block/Word, 0x0101010101010101)
		}
	})
	b.Run("copy-words", func(b *testing.B) {
		b.SetBytes(block)
		for i := 0; i < b.N; i++ {
			a.CopyWords(1<<15, 64, block/Word)
		}
	})
}
