package mem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegistryEmpty(t *testing.T) {
	r := NewRegistry()
	if r.Contains(8, 1) {
		t.Fatal("empty registry contains an address")
	}
	if r.Count() != 0 || r.TotalBytes() != 0 {
		t.Fatal("empty registry has ranges")
	}
}

func TestRegistryRejectsBadRanges(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(NilAddr, 8); err == nil {
		t.Error("registering the nil address succeeded")
	}
	if err := r.Register(8, 0); err == nil {
		t.Error("registering zero bytes succeeded")
	}
	if err := r.Register(8, -8); err == nil {
		t.Error("registering negative bytes succeeded")
	}
	if err := r.Deregister(NilAddr, 8); err == nil {
		t.Error("deregistering the nil address succeeded")
	}
}

func TestRegistryBasicContains(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(100, 50); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    Addr
		n    int
		want bool
	}{
		{100, 50, true}, {100, 1, true}, {149, 1, true},
		{149, 2, false}, {150, 1, false}, {99, 1, false},
		{99, 2, false}, {120, 10, true}, {0, 1, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p, c.n); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.p, c.n, got, c.want)
		}
	}
}

func TestRegistryMergesAdjacent(t *testing.T) {
	r := NewRegistry()
	r.Register(100, 50)
	r.Register(150, 50) // exactly adjacent
	if r.Count() != 1 {
		t.Fatalf("adjacent ranges not merged: %v", r.Ranges())
	}
	if !r.Contains(100, 100) {
		t.Fatal("merged range not contiguous")
	}
	r.Register(300, 10)
	if r.Count() != 2 {
		t.Fatalf("disjoint range merged: %v", r.Ranges())
	}
	r.Register(200, 100) // bridges the gap [200,300)
	if r.Count() != 1 {
		t.Fatalf("bridge did not merge everything: %v", r.Ranges())
	}
	if !r.Contains(100, 210) {
		t.Fatal("bridged range not contiguous")
	}
}

func TestRegistryMergeOverlapping(t *testing.T) {
	r := NewRegistry()
	r.Register(100, 100)
	r.Register(150, 100) // overlaps tail
	if r.Count() != 1 || !r.Contains(100, 150) {
		t.Fatalf("overlap not merged: %v", r.Ranges())
	}
	r.Register(50, 500) // swallows everything
	if r.Count() != 1 || !r.Contains(50, 500) {
		t.Fatalf("swallow not merged: %v", r.Ranges())
	}
}

func TestRegistryDeregisterSplits(t *testing.T) {
	r := NewRegistry()
	r.Register(100, 100)
	r.Deregister(140, 20)
	if r.Count() != 2 {
		t.Fatalf("split produced %d ranges: %v", r.Count(), r.Ranges())
	}
	if !r.Contains(100, 40) || !r.Contains(160, 40) {
		t.Fatal("split halves missing")
	}
	if r.Contains(139, 2) || r.Contains(140, 1) || r.Contains(159, 1) {
		t.Fatal("hole still contained")
	}
}

func TestRegistryDeregisterWholeAndEdges(t *testing.T) {
	r := NewRegistry()
	r.Register(100, 100)
	r.Deregister(100, 100)
	if r.Count() != 0 {
		t.Fatalf("full deregister left %v", r.Ranges())
	}
	r.Register(100, 100)
	r.Deregister(100, 30) // trim head
	r.Deregister(170, 30) // trim tail
	if !r.Contains(130, 40) || r.Contains(100, 31) || r.Contains(169, 2) {
		t.Fatalf("edge trims wrong: %v", r.Ranges())
	}
}

func TestRegistryDeregisterUnregisteredIsNoop(t *testing.T) {
	r := NewRegistry()
	r.Register(100, 10)
	if err := r.Deregister(500, 10); err != nil {
		t.Fatalf("deregistering unknown space errored: %v", err)
	}
	if !r.Contains(100, 10) {
		t.Fatal("unrelated deregister damaged range")
	}
}

func TestRegistryTotalBytes(t *testing.T) {
	r := NewRegistry()
	r.Register(100, 10)
	r.Register(200, 30)
	if r.TotalBytes() != 40 {
		t.Fatalf("TotalBytes = %d, want 40", r.TotalBytes())
	}
}

// refIntervals is a brute-force model: a byte set.
type refIntervals map[Addr]bool

func (m refIntervals) register(p Addr, n int) {
	for i := 0; i < n; i++ {
		m[p+Addr(i)] = true
	}
}
func (m refIntervals) deregister(p Addr, n int) {
	for i := 0; i < n; i++ {
		delete(m, p+Addr(i))
	}
}
func (m refIntervals) contains(p Addr, n int) bool {
	if n <= 0 || p == NilAddr {
		return false
	}
	for i := 0; i < n; i++ {
		if !m[p+Addr(i)] {
			return false
		}
	}
	return true
}

// Property: registry membership matches the brute-force byte-set model under
// random register/deregister sequences. Note Contains additionally requires
// a *single* registered range, but since Register merges adjacent ranges,
// contiguous byte membership is exactly single-range membership.
func TestQuickRegistryMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := NewRegistry()
		ref := refIntervals{}
		for op := 0; op < 200; op++ {
			p := Addr(1 + rng.Intn(400))
			n := 1 + rng.Intn(40)
			if rng.Intn(2) == 0 {
				reg.Register(p, n)
				ref.register(p, n)
			} else {
				reg.Deregister(p, n)
				ref.deregister(p, n)
			}
			// Probe random intervals.
			for probe := 0; probe < 10; probe++ {
				q := Addr(1 + rng.Intn(450))
				m := 1 + rng.Intn(20)
				if reg.Contains(q, m) != ref.contains(q, m) {
					t.Logf("mismatch at Contains(%d,%d): reg=%v ref=%v after op %d",
						q, m, reg.Contains(q, m), ref.contains(q, m), op)
					return false
				}
			}
		}
		// Ranges must be sorted, non-empty, non-touching.
		rs := reg.Ranges()
		for i, rg := range rs {
			if rg.Len() <= 0 {
				return false
			}
			if i > 0 && rs[i-1].End >= rg.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent readers during writer churn must never observe torn state
// (verified under -race).
func TestRegistryConcurrentReaders(t *testing.T) {
	r := NewRegistry()
	r.Register(1000, 1000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Contains(1500, 8)
					r.ContainsAddr(1)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		r.Register(Addr(3000+i*16), 8)
		if i%3 == 0 {
			r.Deregister(Addr(3000+i*16), 8)
		}
	}
	close(stop)
	wg.Wait()
	if !r.Contains(1000, 1000) {
		t.Fatal("base range lost")
	}
}
