package mem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry tracks the valid global address space: the ranges of every live
// static and heap object plus the non-speculative stack region. It is the
// paper's "address space registration mechanism" (§IV-G1): object spaces are
// registered at creation and deregistered at deletion, adjacent spaces are
// merged, and a speculative thread that touches an address outside every
// registered range must roll back.
//
// Mutations only happen on the non-speculative thread (the paper forbids
// speculative allocation), while lookups happen concurrently on every
// speculative thread's access path. The range set is therefore kept as an
// immutable sorted slice behind an atomic pointer: writers copy, readers
// load and binary-search without locks.
type Registry struct {
	mu     sync.Mutex // serializes writers
	ranges atomic.Pointer[[]Range]
}

// Range is a half-open interval [Start, End) of valid addresses.
type Range struct {
	Start Addr
	End   Addr
}

// Len returns the range size in bytes.
func (r Range) Len() int { return int(r.End - r.Start) }

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	reg := &Registry{}
	empty := make([]Range, 0)
	reg.ranges.Store(&empty)
	return reg
}

// Register adds [p, p+n) to the valid global address space, merging it with
// any adjacent or overlapping registered ranges (the paper's "adjacent spaces
// can be merged to improve performance").
func (r *Registry) Register(p Addr, n int) error {
	if p == NilAddr || n <= 0 {
		return fmt.Errorf("mem: invalid registration [%d,+%d)", p, n)
	}
	end := p + Addr(n)
	if end < p {
		return fmt.Errorf("mem: registration wraps address space")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.ranges.Load()
	// Find the insertion window: every range that overlaps or touches
	// [p,end) gets merged into one.
	lo := sort.Search(len(old), func(i int) bool { return old[i].End >= p })
	hi := lo
	start, stop := p, end
	for hi < len(old) && old[hi].Start <= end {
		if old[hi].Start < start {
			start = old[hi].Start
		}
		if old[hi].End > stop {
			stop = old[hi].End
		}
		hi++
	}
	next := make([]Range, 0, len(old)+1)
	next = append(next, old[:lo]...)
	next = append(next, Range{start, stop})
	next = append(next, old[hi:]...)
	r.ranges.Store(&next)
	return nil
}

// Deregister removes [p, p+n) from the valid space, splitting any range that
// spans it. Removing space that was never registered is not an error: object
// deletion may deregister a sub-range of a merged block.
func (r *Registry) Deregister(p Addr, n int) error {
	if p == NilAddr || n <= 0 {
		return fmt.Errorf("mem: invalid deregistration [%d,+%d)", p, n)
	}
	end := p + Addr(n)
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.ranges.Load()
	next := make([]Range, 0, len(old)+1)
	for _, rg := range old {
		if rg.End <= p || rg.Start >= end {
			next = append(next, rg)
			continue
		}
		if rg.Start < p {
			next = append(next, Range{rg.Start, p})
		}
		if rg.End > end {
			next = append(next, Range{end, rg.End})
		}
	}
	r.ranges.Store(&next)
	return nil
}

// Contains reports whether the whole interval [p, p+n) lies inside a single
// registered range. This is the per-access validity check on the speculative
// load/store path, so it is lock-free.
func (r *Registry) Contains(p Addr, n int) bool {
	if p == NilAddr || n <= 0 {
		return false
	}
	end := p + Addr(n)
	rs := *r.ranges.Load()
	i := sort.Search(len(rs), func(i int) bool { return rs[i].End > p })
	return i < len(rs) && rs[i].Start <= p && end <= rs[i].End
}

// ContainsAddr reports whether the single address p is registered.
func (r *Registry) ContainsAddr(p Addr) bool { return r.Contains(p, 1) }

// Ranges returns a snapshot of the registered ranges in address order.
func (r *Registry) Ranges() []Range {
	rs := *r.ranges.Load()
	out := make([]Range, len(rs))
	copy(out, rs)
	return out
}

// Count returns the number of distinct registered ranges (post-merge).
func (r *Registry) Count() int { return len(*r.ranges.Load()) }

// TotalBytes returns the total registered size in bytes.
func (r *Registry) TotalBytes() int {
	total := 0
	for _, rg := range *r.ranges.Load() {
		total += rg.Len()
	}
	return total
}
