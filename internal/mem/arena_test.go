package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewArenaRejectsTinySizes(t *testing.T) {
	for _, size := range []int{-1, 0, 1, Word, 3 * Word} {
		if _, err := NewArena(size); err == nil {
			t.Errorf("NewArena(%d) succeeded, want error", size)
		}
	}
}

func TestNewArenaSize(t *testing.T) {
	a, err := NewArena(1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 1024 {
		t.Fatalf("Size() = %d, want 1024", a.Size())
	}
}

func TestInBounds(t *testing.T) {
	a, _ := NewArena(64)
	cases := []struct {
		p    Addr
		n    int
		want bool
	}{
		{NilAddr, 1, false}, // nil address never valid
		{1, 1, true},
		{63, 1, true},
		{63, 2, false},
		{64, 1, false},
		{8, 56, true},
		{8, 57, false},
		{8, -1, false},
		{Addr(math.MaxUint64), 8, false}, // wraps
	}
	for _, c := range cases {
		if got := a.InBounds(c.p, c.n); got != c.want {
			t.Errorf("InBounds(%d, %d) = %v, want %v", c.p, c.n, got, c.want)
		}
	}
}

func TestOutOfBoundsAccessPanics(t *testing.T) {
	a, _ := NewArena(64)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds access did not panic")
		}
	}()
	a.Snapshot(60, 8)
}

func TestUnalignedWordAccessPanics(t *testing.T) {
	a, _ := NewArena(64)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned word access did not panic")
		}
	}()
	a.ReadWord(13)
}

func TestSnapshotAndWriteBytes(t *testing.T) {
	a, _ := NewArena(128)
	src := []byte{9, 8, 7, 6, 5}
	a.WriteBytes(21, src)
	got := a.Snapshot(21, 5)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
	// Snapshot is a copy: mutating it must not affect the arena.
	got[0] = 99
	if a.ReadUint8(21) != 9 {
		t.Fatal("snapshot aliases arena")
	}
}

func TestWordRoundTrip(t *testing.T) {
	a, _ := NewArena(128)
	a.WriteWord(8, 0xDEADBEEFCAFEF00D)
	if got := a.ReadWord(8); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("ReadWord = %#x", got)
	}
	// Little-endian layout: low byte first.
	if got := a.ReadUint8(8); got != 0x0D {
		t.Fatalf("low byte = %#x, want 0x0D", got)
	}
}

func TestTypedRoundTrips(t *testing.T) {
	a, _ := NewArena(256)
	a.WriteUint8(17, 0xAB)
	if got := a.ReadUint8(17); got != 0xAB {
		t.Errorf("uint8 = %#x", got)
	}
	a.WriteUint16(18, 0xBEEF)
	if got := a.ReadUint16(18); got != 0xBEEF {
		t.Errorf("uint16 = %#x", got)
	}
	a.WriteUint32(20, 0xCAFEBABE)
	if got := a.ReadUint32(20); got != 0xCAFEBABE {
		t.Errorf("uint32 = %#x", got)
	}
	a.WriteInt64(24, -42)
	if got := a.ReadInt64(24); got != -42 {
		t.Errorf("int64 = %d", got)
	}
	a.WriteFloat64(32, 3.14159)
	if got := a.ReadFloat64(32); got != 3.14159 {
		t.Errorf("float64 = %v", got)
	}
	a.WriteFloat32(40, 2.5)
	if got := a.ReadFloat32(40); got != 2.5 {
		t.Errorf("float32 = %v", got)
	}
}

func TestFloat64NaNRoundTrip(t *testing.T) {
	a, _ := NewArena(64)
	a.WriteFloat64(8, math.NaN())
	if got := a.ReadFloat64(8); !math.IsNaN(got) {
		t.Fatalf("NaN round trip = %v", got)
	}
}

func TestCopyAndZero(t *testing.T) {
	a, _ := NewArena(128)
	for i := 0; i < 16; i++ {
		a.WriteUint8(Addr(8+i), uint8(i+1))
	}
	a.Copy(40, 8, 16)
	for i := 0; i < 16; i++ {
		if got := a.ReadUint8(Addr(40 + i)); got != uint8(i+1) {
			t.Fatalf("Copy byte %d = %d", i, got)
		}
	}
	a.Zero(40, 16)
	for i := 0; i < 16; i++ {
		if got := a.ReadUint8(Addr(40 + i)); got != 0 {
			t.Fatalf("Zero byte %d = %d", i, got)
		}
	}
}

func TestCopyOverlapping(t *testing.T) {
	a, _ := NewArena(128)
	for i := 0; i < 8; i++ {
		a.WriteUint8(Addr(8+i), uint8(i))
	}
	a.Copy(12, 8, 8) // overlapping forward copy must behave like memmove
	for i := 0; i < 8; i++ {
		if got := a.ReadUint8(Addr(12 + i)); got != uint8(i) {
			t.Fatalf("overlapping copy byte %d = %d, want %d", i, got, i)
		}
	}
}

func TestAligned(t *testing.T) {
	cases := []struct {
		p    Addr
		size int
		want bool
	}{
		{8, 8, true}, {12, 8, false}, {12, 4, true}, {13, 4, false},
		{13, 1, true}, {14, 2, true}, {15, 2, false}, {16, 16, true},
		{8, 0, false}, {8, -4, false},
	}
	for _, c := range cases {
		if got := Aligned(c.p, c.size); got != c.want {
			t.Errorf("Aligned(%d, %d) = %v, want %v", c.p, c.size, got, c.want)
		}
	}
}

func TestWordBaseOffset(t *testing.T) {
	for p := Addr(64); p < 80; p++ {
		if WordBase(p) != (p/Word)*Word {
			t.Fatalf("WordBase(%d) = %d", p, WordBase(p))
		}
		if WordOffset(p) != int(p%Word) {
			t.Fatalf("WordOffset(%d) = %d", p, WordOffset(p))
		}
		if WordBase(p)+Addr(WordOffset(p)) != p {
			t.Fatalf("base+offset != p for %d", p)
		}
	}
}

// Property: writing a word and reading it back through byte accessors agrees
// with the little-endian encoding.
func TestQuickWordByteConsistency(t *testing.T) {
	a, _ := NewArena(1 << 12)
	f := func(v uint64, slot uint8) bool {
		p := Addr(8 + (uint64(slot)%500)*8)
		a.WriteWord(p, v)
		var rebuilt uint64
		for i := 0; i < 8; i++ {
			rebuilt |= uint64(a.ReadUint8(p+Addr(i))) << (8 * i)
		}
		return rebuilt == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Bulk word-run helpers must agree with their word-at-a-time equivalents
// and reject misaligned geometries.
func TestWordRunHelpers(t *testing.T) {
	a, _ := NewArena(1 << 12)
	base := Addr(64)
	n := 16 // words
	src := make([]byte, n*Word)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	a.WriteWords(base, src)
	for k := 0; k < n; k++ {
		want := uint64(0)
		for b := Word - 1; b >= 0; b-- {
			want = want<<8 | uint64(src[k*Word+b])
		}
		if got := a.ReadWord(base + Addr(k*Word)); got != want {
			t.Fatalf("word %d = %#x, want %#x", k, got, want)
		}
	}
	dst := make([]byte, n*Word)
	a.ReadWords(base, dst)
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("ReadWords byte %d = %#x, want %#x", i, dst[i], src[i])
		}
	}
	if !a.EqualWords(base, src) {
		t.Fatal("EqualWords false on equal data")
	}
	src[37] ^= 0xFF
	if a.EqualWords(base, src) {
		t.Fatal("EqualWords true on differing data")
	}

	for _, bad := range []func(){
		func() { a.ReadWords(base+1, dst) },
		func() { a.ReadWords(base, dst[:Word+1]) },
		func() { a.WriteWords(base+4, src) },
		func() { a.EqualWords(base+7, src) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("misaligned word-run access did not panic")
				}
			}()
			bad()
		}()
	}
}
