package mem

import "testing"

func newTestSpace(t *testing.T, threads int) *Space {
	t.Helper()
	s, err := NewSpace(SpaceConfig{
		StaticBytes: 1 << 10,
		HeapBytes:   1 << 14,
		StackBytes:  1 << 10,
		NumThreads:  threads,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceLayoutDisjoint(t *testing.T) {
	s := newTestSpace(t, 4)
	st, err := s.Static(64)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := s.Heap.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	regions := []Range{{st, st + 64}, {hp, hp + 64}}
	for r := 0; r < 4; r++ {
		sr, err := s.StackRegion(r)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, sr)
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.Start < b.End && b.Start < a.End {
				t.Fatalf("regions %d and %d overlap: %v %v", i, j, a, b)
			}
		}
	}
}

func TestSpaceNilPageUnmapped(t *testing.T) {
	s := newTestSpace(t, 1)
	if s.InGlobal(NilAddr, 1) {
		t.Fatal("nil address is global")
	}
	st, _ := s.Static(8)
	if st == NilAddr {
		t.Fatal("static object at nil address")
	}
}

func TestSpaceGlobalMembership(t *testing.T) {
	s := newTestSpace(t, 3)
	st, _ := s.Static(32)
	if !s.InGlobal(st, 32) {
		t.Error("static object not global")
	}
	hp, _ := s.Heap.Alloc(32)
	if !s.InGlobal(hp, 32) {
		t.Error("heap object not global")
	}
	s.Heap.Free(hp)
	if s.InGlobal(hp, 1) {
		t.Error("freed heap object still global")
	}
	// Non-speculative stack (rank 0) is global; speculative stacks are not.
	r0, _ := s.StackRegion(0)
	if !s.InGlobal(r0.Start, r0.Len()) {
		t.Error("non-speculative stack not global")
	}
	r1, _ := s.StackRegion(1)
	if s.InGlobal(r1.Start, 1) {
		t.Error("speculative stack is global")
	}
	r2, _ := s.StackRegion(2)
	if s.InGlobal(r2.Start, 1) {
		t.Error("speculative stack 2 is global")
	}
}

func TestSpaceStaticExhaustion(t *testing.T) {
	s := newTestSpace(t, 1)
	if _, err := s.Static(1 << 11); err == nil {
		t.Fatal("oversized static allocation succeeded")
	}
	for i := 0; i < (1<<10)/Word; i++ {
		if _, err := s.Static(Word); err != nil {
			t.Fatalf("static segment exhausted early at %d: %v", i, err)
		}
	}
	if _, err := s.Static(Word); err == nil {
		t.Fatal("static segment over-allocated")
	}
}

func TestSpaceStackRegionBounds(t *testing.T) {
	s := newTestSpace(t, 2)
	if _, err := s.StackRegion(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := s.StackRegion(2); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if s.NumStacks() != 2 {
		t.Errorf("NumStacks = %d", s.NumStacks())
	}
	r, _ := s.StackRegion(1)
	if r.Len() != s.StackBytes() {
		t.Errorf("stack region len %d != StackBytes %d", r.Len(), s.StackBytes())
	}
}

func TestSpaceConfigValidation(t *testing.T) {
	if _, err := NewSpace(SpaceConfig{StaticBytes: 64, HeapBytes: 64, StackBytes: 64, NumThreads: 0}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewSpace(SpaceConfig{StaticBytes: 0, HeapBytes: 64, StackBytes: 64, NumThreads: 1}); err == nil {
		t.Error("zero static accepted")
	}
}

func TestDefaultSpaceConfig(t *testing.T) {
	cfg := DefaultSpaceConfig(8)
	if cfg.NumThreads != 8 || cfg.HeapBytes <= 0 {
		t.Fatalf("bad default config %+v", cfg)
	}
	if _, err := NewSpace(cfg); err != nil {
		t.Fatal(err)
	}
}
