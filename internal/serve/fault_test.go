package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/mutls"
	"repro/mutls/pool"
)

// boomKernels is DefaultKernels plus a kernel whose TLS version panics on
// the non-speculative thread — the containment regression surface.
func boomKernels() map[string]Kernel {
	ks := DefaultKernels()
	ks["boom"] = Kernel{
		Workload: &bench.Workload{
			Name:         "boom",
			DefaultModel: mutls.InOrder,
			HeapBytes:    func(bench.Size) int { return 1 << 12 },
			Seq:          func(t *mutls.Thread, s bench.Size) uint64 { return 1 },
			Spec: func(t *mutls.Thread, s bench.Size, o bench.SpecOptions) uint64 {
				panic("kernel boom")
			},
		},
		Default: bench.Size{N: 1},
	}
	return ks
}

// TestFaultingKernelContained: a kernel panic costs its own request a 500
// with the fault counted in /stats; the pool recycles the runtime, the
// health probe stays green and the next request is served normally.
func TestFaultingKernelContained(t *testing.T) {
	s, err := New(Options{
		Pool:    pool.Options{Runtimes: 1, HostBudget: 2, Runtime: mutls.Options{CPUs: 2}},
		Kernels: boomKernels(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	var e errResponse
	getJSON(t, ts.URL+"/run?kernel=boom", http.StatusInternalServerError, &e)
	if !strings.Contains(e.Error, "kernel fault") || !strings.Contains(e.Error, "kernel boom") {
		t.Errorf("fault response %q missing the kernel fault", e.Error)
	}
	if got := s.Faults(); got != 1 {
		t.Errorf("Faults() = %d after one faulting request, want 1", got)
	}

	var st struct {
		Faults      int64            `json:"faults"`
		PointFaults map[string]int64 `json:"point_faults"`
	}
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Faults != 1 {
		t.Errorf("/stats faults = %d, want 1", st.Faults)
	}
	// The kernel panicked on the non-speculative thread, outside any fork
	// point: the per-point breakdown attributes it to "-1".
	if st.PointFaults["-1"] != 1 {
		t.Errorf("/stats point_faults = %v, want {\"-1\": 1}", st.PointFaults)
	}

	// The process survived: health stays green and the pooled runtime that
	// hosted the fault serves the next request verified.
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
	var rr RunResponse
	getJSON(t, ts.URL+"/run?kernel=x3p1&n=2000", http.StatusOK, &rr)
	if !rr.Verified {
		t.Error("post-fault request not verified")
	}
}

// TestRecoveredMiddleware: an arbitrary handler panic is contained to its
// request as a 500 JSON fault and counted, instead of killing the server.
func TestRecoveredMiddleware(t *testing.T) {
	s, err := New(Options{Pool: pool.Options{Runtimes: 1, HostBudget: 2, Runtime: mutls.Options{CPUs: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.recovered(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/run", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal fault") {
		t.Errorf("body %q missing the fault marker", rec.Body.String())
	}
	if got := s.Faults(); got != 1 {
		t.Errorf("Faults() = %d, want 1", got)
	}
}
