// Package serve exposes a runtime pool as an HTTP speculation service:
// the multi-tenant deployment shape of the MUTLS runtime. Each request
// leases a pooled runtime, runs one benchmark kernel's TLS version under
// the request's context (deadline and disconnect cancel the run at the
// next speculation boundary), verifies the checksum against the cached
// sequential reference, and reports the speculation activity alongside
// the result. Backpressure is the pool's: an exhausted queue turns into
// 503 Service Unavailable with Retry-After, an exhausted CPU budget into
// a degraded (sequential) but still correct response.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/mutls"
	"repro/mutls/pool"
)

// Kernel is one servable workload: a Table II benchmark plus the size
// clamps that keep one request's work bounded.
type Kernel struct {
	Workload *bench.Workload
	// Default is the size used when the request names none; Max clamps
	// request-supplied sizes field-wise (zero Max fields admit only the
	// default for that field).
	Default, Max bench.Size
}

// DefaultKernels is the served allowlist: two loop kernels (in-order
// chained forks) and one tree kernel (mixed model), keyed by URL-safe
// name.
func DefaultKernels() map[string]Kernel {
	return map[string]Kernel{
		"x3p1": {
			Workload: bench.X3P1,
			Default:  bench.Size{N: 20_000},
			Max:      bench.Size{N: 200_000},
		},
		"mandelbrot": {
			Workload: bench.Mandelbrot,
			Default:  bench.Size{N: 32, M: 300},
			Max:      bench.Size{N: 128, M: 2000},
		},
		"matmult": {
			Workload: bench.MatMult,
			Default:  bench.Size{N: 32},
			Max:      bench.Size{N: 64},
		},
	}
}

// Options configures a Server.
type Options struct {
	// Pool configures the runtime pool. The template runtime's heap is
	// sized automatically to the largest admissible kernel request unless
	// Pool.Runtime.HeapBytes is set explicitly.
	Pool pool.Options
	// Kernels is the served allowlist; nil selects DefaultKernels.
	Kernels map[string]Kernel
}

// Server is the HTTP façade over a runtime pool. Create with New, mount
// via Handler, and Close when done (drains the pool).
type Server struct {
	pool    *pool.Pool
	kernels map[string]Kernel
	mux     *http.ServeMux

	// faults counts contained request faults: kernel panics surfaced by a
	// run and handler panics caught by the recovery middleware. The server
	// stays up — each fault costs its own request a 500, nothing more —
	// and the count is exposed in /stats.
	faults atomic.Int64

	// pointFaults accumulates contained faults per fork point (key -1 is
	// the non-speculative thread outside any point) across the server's
	// lifetime. The runtime's own counters reset when the pool recycles a
	// lease, so each request's fault records are absorbed here before its
	// Release; /stats exposes the aggregate as point_faults.
	pfMu        sync.Mutex
	pointFaults map[int]int64

	// seqSums caches sequential reference checksums by kernel and size, so
	// verification costs one extra run per distinct request shape, ever.
	seqMu   sync.Mutex
	seqSums map[string]uint64
}

// New builds the pool and the handler.
func New(opts Options) (*Server, error) {
	if opts.Kernels == nil {
		opts.Kernels = DefaultKernels()
	}
	if len(opts.Kernels) == 0 {
		return nil, errors.New("serve: empty kernel allowlist")
	}
	if opts.Pool.Runtime.HeapBytes == 0 {
		heap := 0
		for _, k := range opts.Kernels {
			if b := k.Workload.HeapBytes(clampSize(k.Max, k)); b > heap {
				heap = b
			}
		}
		opts.Pool.Runtime.HeapBytes = heap
	}
	if !opts.Pool.Runtime.CollectStats {
		// The response reports commit/rollback activity.
		opts.Pool.Runtime.CollectStats = true
	}
	p, err := pool.New(opts.Pool)
	if err != nil {
		return nil, err
	}
	s := &Server{
		pool:        p,
		kernels:     opts.Kernels,
		mux:         http.NewServeMux(),
		seqSums:     make(map[string]uint64),
		pointFaults: make(map[int]int64),
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the service's HTTP handler: the mux wrapped in the
// panic-recovery middleware, so a fault in any single request — a handler
// bug, a kernel panic that escaped the typed path — answers that request
// with a 500 instead of tearing the process (and every other in-flight
// request) down.
func (s *Server) Handler() http.Handler { return s.recovered(s.mux) }

// recovered is the containment middleware. The recover runs in the
// handler's own goroutine, so in-flight requests on other connections are
// untouched; the faults counter makes the event visible in /stats.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.faults.Add(1)
				writeJSON(w, http.StatusInternalServerError, errResponse{
					Error: fmt.Sprintf("internal fault: %v", rec),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Faults returns the contained-fault count (kernel panics and recovered
// handler panics).
func (s *Server) Faults() int64 { return s.faults.Load() }

// absorbPointFaults folds the leased runtime's fault records — each
// carries the fork point it was contained at — into the server's
// per-point aggregate. Called just before a request releases its lease,
// because Release recycles the runtime and resets its collector.
func (s *Server) absorbPointFaults(rt *mutls.Runtime) {
	recs := rt.Stats().Faults.Records
	if len(recs) == 0 {
		return
	}
	s.pfMu.Lock()
	for _, rec := range recs {
		s.pointFaults[rec.Point]++
	}
	s.pfMu.Unlock()
}

// PointFaults snapshots the per-fork-point contained-fault aggregate,
// keyed by the point id rendered in decimal ("-1" is the non-speculative
// thread outside any fork point) for JSON object compatibility.
func (s *Server) PointFaults() map[string]int64 {
	s.pfMu.Lock()
	defer s.pfMu.Unlock()
	out := make(map[string]int64, len(s.pointFaults))
	for p, n := range s.pointFaults {
		out[strconv.Itoa(p)] = n
	}
	return out
}

// Pool exposes the underlying pool (for tests and stats endpoints).
func (s *Server) Pool() *pool.Pool { return s.pool }

// Kernels returns the served kernel names, sorted.
func (s *Server) Kernels() []string {
	names := make([]string, 0, len(s.kernels))
	for name := range s.kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close drains and closes the pool; in-flight requests finish first.
func (s *Server) Close() { s.pool.Close() }

// RunResponse is the /run response document.
type RunResponse struct {
	Kernel   string     `json:"kernel"`
	Size     bench.Size `json:"size"`
	Checksum string     `json:"checksum"`
	// Verified is true when the speculative checksum matched the cached
	// sequential reference; a mismatch is reported as HTTP 500 instead.
	Verified bool `json:"verified"`
	// CPUGrant is the lease's speculative virtual-CPU grant; Degraded
	// marks a zero grant (the run executed sequentially).
	CPUGrant int  `json:"cpu_grant"`
	Degraded bool `json:"degraded"`
	// Cost is the run's critical-path cost (virtual units, or nanoseconds
	// under a Real-timing pool); WallNS is the handler's wall-clock time.
	Cost      int64 `json:"cost"`
	WallNS    int64 `json:"wall_ns"`
	Commits   int64 `json:"commits"`
	Rollbacks int64 `json:"rollbacks"`
}

type errResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clampSize resolves a requested size against a kernel's default and max.
func clampSize(req bench.Size, k Kernel) bench.Size {
	s := k.Default
	clamp := func(got, max, def int) int {
		if got <= 0 {
			return def
		}
		if max > 0 && got > max {
			return max
		}
		if max == 0 {
			return def
		}
		return got
	}
	s.N = clamp(req.N, k.Max.N, k.Default.N)
	s.M = clamp(req.M, k.Max.M, k.Default.M)
	s.Steps = clamp(req.Steps, k.Max.Steps, k.Default.Steps)
	return s
}

// seqChecksum returns the sequential reference for (name, size), running
// it once on the leased runtime on first sight of that request shape.
func (s *Server) seqChecksum(rt *mutls.Runtime, name string, k Kernel, size bench.Size) (uint64, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", name, size.N, size.M, size.Steps)
	s.seqMu.Lock()
	sum, ok := s.seqSums[key]
	s.seqMu.Unlock()
	if ok {
		return sum, nil
	}
	if _, err := rt.Run(func(t *mutls.Thread) {
		sum = k.Workload.Seq(t, size)
	}); err != nil {
		return 0, err
	}
	rt.Recycle()
	s.seqMu.Lock()
	s.seqSums[key] = sum
	s.seqMu.Unlock()
	return sum, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	q := r.URL.Query()
	name := q.Get("kernel")
	if name == "" {
		name = "x3p1"
	}
	k, ok := s.kernels[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errResponse{
			Error: fmt.Sprintf("unknown kernel %q (served: %v)", name, s.Kernels()),
		})
		return
	}
	atoi := func(key string) int {
		n, _ := strconv.Atoi(q.Get(key))
		return n
	}
	size := clampSize(bench.Size{N: atoi("n"), M: atoi("m"), Steps: atoi("steps")}, k)

	lease, err := s.pool.Acquire(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, pool.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		case errors.Is(err, pool.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		default: // request context expired while queued
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		}
		return
	}
	defer lease.Release()
	rt := lease.Runtime()
	// Registered after the Release defer so it runs first (LIFO): the
	// records must be read before the recycle wipes them.
	defer s.absorbPointFaults(rt)

	want, err := s.seqChecksum(rt, name, k, size)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		return
	}

	var sum uint64
	cost, err := rt.RunCtx(r.Context(), func(t *mutls.Thread) {
		sum = k.Workload.Spec(t, size, bench.SpecOptions{Model: k.Workload.DefaultModel})
	})
	if err != nil {
		var kp *mutls.KernelPanic
		if errors.As(err, &kp) {
			// The kernel itself panicked on the non-speculative thread. The
			// run drained and the deferred Release recycles the runtime, so
			// only this request is lost — answer it a 500 and count the
			// fault. (Speculative panics never surface here: they are
			// squashed and re-executed as misspeculation.)
			s.faults.Add(1)
			writeJSON(w, http.StatusInternalServerError, errResponse{
				Error: fmt.Sprintf("kernel fault: %v", kp.Value),
			})
			return
		}
		// Cancelled or timed out mid-run; the deferred Release recycles the
		// runtime, so the next tenant is unaffected.
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		return
	}
	if sum != want {
		writeJSON(w, http.StatusInternalServerError, errResponse{
			Error: fmt.Sprintf("checksum mismatch: speculative %#x, sequential %#x", sum, want),
		})
		return
	}
	st := rt.Stats()
	writeJSON(w, http.StatusOK, RunResponse{
		Kernel:    name,
		Size:      size,
		Checksum:  fmt.Sprintf("%#x", sum),
		Verified:  true,
		CPUGrant:  lease.CPUs(),
		Degraded:  lease.Degraded(),
		Cost:      int64(cost),
		WallNS:    time.Since(start).Nanoseconds(),
		Commits:   int64(st.Commits),
		Rollbacks: int64(st.Rollbacks),
	})
}

// statsResponse is the /stats document: the pool's admission counters,
// the server's contained-fault count, and the per-fork-point breakdown
// of where those faults were contained (key "-1": outside any point).
type statsResponse struct {
	pool.Stats
	Faults      int64            `json:"faults"`
	PointFaults map[string]int64 `json:"point_faults"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:       s.pool.Stats(),
		Faults:      s.faults.Load(),
		PointFaults: s.PointFaults(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Healthy means the pool still admits tenants: probe with an
	// already-expired context so a free runtime is never consumed and the
	// probe never queues behind real traffic.
	ctx, cancel := context.WithCancel(r.Context())
	cancel()
	lease, err := s.pool.Acquire(ctx)
	if lease != nil {
		lease.Release() // fast path can still grant; hand it straight back
	}
	switch {
	case errors.Is(err, pool.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}
