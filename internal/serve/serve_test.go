package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/mutls"
	"repro/mutls/pool"
)

func testServer(t *testing.T, popts pool.Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Options{Pool: popts})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

// TestRunEndpoint: every served kernel returns a verified speculative
// response with its CPU grant and speculation activity.
func TestRunEndpoint(t *testing.T) {
	s, ts := testServer(t, pool.Options{Runtimes: 1, HostBudget: 2, Runtime: mutls.Options{CPUs: 2}})
	for _, kernel := range s.Kernels() {
		var r RunResponse
		getJSON(t, ts.URL+"/run?kernel="+kernel, http.StatusOK, &r)
		if !r.Verified {
			t.Errorf("kernel %s: response not verified", kernel)
		}
		if r.Kernel != kernel || r.Checksum == "" {
			t.Errorf("kernel %s: malformed response %+v", kernel, r)
		}
		if r.CPUGrant != 2 || r.Degraded {
			t.Errorf("kernel %s: grant %d degraded=%v, want 2/false", kernel, r.CPUGrant, r.Degraded)
		}
		if r.Commits == 0 {
			t.Errorf("kernel %s: no speculative commits", kernel)
		}
	}
}

// TestRunSizeClamp: request sizes are clamped to the allowlist maxima, and
// the effective size is echoed.
func TestRunSizeClamp(t *testing.T) {
	_, ts := testServer(t, pool.Options{Runtimes: 1, HostBudget: 2, Runtime: mutls.Options{CPUs: 2}})
	var r RunResponse
	getJSON(t, ts.URL+"/run?kernel=matmult&n=999999", http.StatusOK, &r)
	if r.Size.N != DefaultKernels()["matmult"].Max.N {
		t.Errorf("clamped size %d, want max %d", r.Size.N, DefaultKernels()["matmult"].Max.N)
	}
	// A zero/absent size selects the default.
	getJSON(t, ts.URL+"/run?kernel=matmult", http.StatusOK, &r)
	if r.Size.N != DefaultKernels()["matmult"].Default.N {
		t.Errorf("default size %d, want %d", r.Size.N, DefaultKernels()["matmult"].Default.N)
	}
}

// TestRunUnknownKernel: not-allowlisted kernels are 404, not executed.
func TestRunUnknownKernel(t *testing.T) {
	_, ts := testServer(t, pool.Options{Runtimes: 1, HostBudget: 2, Runtime: mutls.Options{CPUs: 2}})
	var e struct{ Error string }
	getJSON(t, ts.URL+"/run?kernel=tsp", http.StatusNotFound, &e)
	if e.Error == "" {
		t.Error("404 without an error body")
	}
}

// TestOverloadSheds: with no queue and the only runtime leased out, /run
// sheds with 503 + Retry-After instead of queueing.
func TestOverloadSheds(t *testing.T) {
	s, ts := testServer(t, pool.Options{
		Runtimes:   1,
		QueueLimit: pool.NoQueue,
		Runtime:    mutls.Options{CPUs: 2},
	})
	lease, err := s.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()

	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if s.Pool().Stats().Rejected == 0 {
		t.Error("shed request not counted as rejected")
	}
}

// TestStatsAndHealthz: the observability endpoints reflect the pool.
func TestStatsAndHealthz(t *testing.T) {
	s, ts := testServer(t, pool.Options{Runtimes: 1, HostBudget: 2, Runtime: mutls.Options{CPUs: 2}})
	getJSON(t, ts.URL+"/run", http.StatusOK, nil)

	var st pool.Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	if st.Acquired == 0 || st.Released != st.Acquired {
		t.Errorf("stats after one request: %+v", st)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
	if got := s.Pool().Stats(); got.Released != got.Acquired {
		t.Errorf("healthz probe leaked a lease: %+v", got)
	}
}

// TestConcurrentBurst: a burst of mixed-kernel requests against a small
// pool — all responses verified, pool drained afterwards.
func TestConcurrentBurst(t *testing.T) {
	s, ts := testServer(t, pool.Options{
		Runtimes:   2,
		QueueLimit: 64,
		Runtime:    mutls.Options{CPUs: 2},
	})
	kernels := s.Kernels()
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/run?kernel=%s&n=16&m=100", ts.URL, kernels[c%len(kernels)])
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var r RunResponse
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				errs <- fmt.Errorf("%s: %v", url, err)
				return
			}
			if resp.StatusCode != http.StatusOK || !r.Verified {
				errs <- fmt.Errorf("%s: status %d verified=%v", url, resp.StatusCode, r.Verified)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Pool().Stats()
	if st.Released != st.Acquired || st.ClaimedCPUs != 0 {
		t.Errorf("pool not drained after burst: %+v", st)
	}
}
