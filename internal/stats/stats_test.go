package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/vclock"
)

func mkLedger(pairs map[vclock.Phase]vclock.Cost) vclock.Ledger {
	var l vclock.Ledger
	for p, v := range pairs {
		l[p] = v
	}
	return l
}

func TestAddComputesWorkResidual(t *testing.T) {
	c := NewCollector(2, true)
	// 100-cost execution, 30 booked as fork+idle, so 70 must become work.
	c.Add(ExecRecord{Rank: 1, Start: 0, End: 100, Committed: true,
		Ledger: mkLedger(map[vclock.Phase]vclock.Cost{vclock.Fork: 10, vclock.Idle: 20})})
	s := c.Summarize(2)
	if s.SpecLedger[vclock.Work] != 70 {
		t.Fatalf("work residual = %d, want 70", s.SpecLedger[vclock.Work])
	}
	if s.SpecRuntime != 100 {
		t.Fatalf("spec runtime = %d", s.SpecRuntime)
	}
}

func TestAddReclassifiesRollbackAsWasted(t *testing.T) {
	c := NewCollector(2, true)
	c.Add(ExecRecord{Rank: 1, Start: 0, End: 100, Committed: false,
		Ledger: mkLedger(map[vclock.Phase]vclock.Cost{vclock.Work: 60, vclock.Validation: 40})})
	s := c.Summarize(2)
	if s.SpecLedger[vclock.Wasted] != 60 || s.SpecLedger[vclock.Work] != 0 {
		t.Fatalf("wasted=%d work=%d", s.SpecLedger[vclock.Wasted], s.SpecLedger[vclock.Work])
	}
	if s.SpecLedger[vclock.Validation] != 40 {
		t.Fatal("validation time must survive a rollback")
	}
	if s.Rollbacks != 1 || s.Commits != 0 {
		t.Fatalf("counts %d/%d", s.Commits, s.Rollbacks)
	}
}

func TestAddIgnoresDisabledAndBadRanks(t *testing.T) {
	c := NewCollector(2, false)
	c.Add(ExecRecord{Rank: 1, Start: 0, End: 10, Committed: true})
	if s := c.Summarize(2); s.Executions != 0 {
		t.Fatal("disabled collector stored a record")
	}
	c2 := NewCollector(2, true)
	c2.Add(ExecRecord{Rank: 0, End: 10})
	c2.Add(ExecRecord{Rank: 3, End: 10})
	c2.Add(ExecRecord{Rank: -1, End: 10})
	if s := c2.Summarize(2); s.Executions != 0 {
		t.Fatal("bad ranks stored")
	}
}

func TestEfficienciesMatchPaperDefinitions(t *testing.T) {
	c := NewCollector(4, true)
	// Non-speculative thread: runtime 1000, work 800 (ηcrit = 0.8).
	c.SetNonSpec(1000, mkLedger(map[vclock.Phase]vclock.Cost{
		vclock.Work: 800, vclock.Idle: 150, vclock.Join: 30, vclock.Fork: 15, vclock.FindCPU: 5}))
	// Two speculative executions: total runtime 500, work 300 (ηsp = 0.6).
	c.Add(ExecRecord{Rank: 1, Point: 0, Start: 0, End: 300, Committed: true,
		Ledger: mkLedger(map[vclock.Phase]vclock.Cost{vclock.Work: 200, vclock.Idle: 100})})
	c.Add(ExecRecord{Rank: 2, Point: 0, Start: 100, End: 300, Committed: true,
		Ledger: mkLedger(map[vclock.Phase]vclock.Cost{vclock.Work: 100, vclock.Commit: 100})})
	s := c.Summarize(4)
	if got := s.CritEfficiency(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("ηcrit = %v", got)
	}
	if got := s.SpecEfficiency(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("ηsp = %v", got)
	}
	// Coverage = 500/1000.
	if got := s.Coverage(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("coverage = %v", got)
	}
	// Power efficiency with Ts=1200: 1200/(1000+500).
	if got := s.PowerEfficiency(1200); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("ηpower = %v", got)
	}
	// Speedup with Ts=1200: 1.2.
	if got := s.Speedup(1200); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("speedup = %v", got)
	}
}

func TestZeroGuards(t *testing.T) {
	s := &Summary{}
	if s.CritEfficiency() != 0 || s.SpecEfficiency() != 0 || s.Coverage() != 0 ||
		s.PowerEfficiency(10) != 0 || s.Speedup(10) != 0 || s.RollbackRate() != 0 {
		t.Fatal("zero-state metrics not guarded")
	}
	if len(Breakdown(vclock.Ledger{}, 0, CritBreakdownPhases)) != 0 {
		t.Fatal("breakdown with zero runtime")
	}
}

func TestBreakdownShares(t *testing.T) {
	l := mkLedger(map[vclock.Phase]vclock.Cost{
		vclock.Work: 50, vclock.Idle: 25, vclock.Join: 25})
	b := Breakdown(l, 100, CritBreakdownPhases)
	if b[vclock.Work] != 0.5 || b[vclock.Idle] != 0.25 || b[vclock.Join] != 0.25 {
		t.Fatalf("breakdown %v", b)
	}
	if b[vclock.Fork] != 0 {
		t.Fatal("unused phase nonzero")
	}
}

func TestBreakdownPhaseSetsMatchFigures(t *testing.T) {
	// Figure 8 legend: work, join, idle, fork, find CPU.
	want8 := []string{"work", "join", "idle", "fork", "find CPU"}
	for i, p := range CritBreakdownPhases {
		if p.String() != want8[i] {
			t.Fatalf("Fig8 category %d = %s, want %s", i, p, want8[i])
		}
	}
	// Figure 9 legend: wasted work, finalize, commit, validation, overflow,
	// idle, fork, find CPU (+ work remainder).
	want9 := []string{"wasted work", "finalize", "commit", "validation", "overflow", "idle", "fork", "find CPU", "work"}
	for i, p := range SpecBreakdownPhases {
		if p.String() != want9[i] {
			t.Fatalf("Fig9 category %d = %s, want %s", i, p, want9[i])
		}
	}
}

func TestPerPointStats(t *testing.T) {
	c := NewCollector(4, true)
	c.Add(ExecRecord{Rank: 1, Point: 0, Start: 0, End: 10, Committed: true})
	c.Add(ExecRecord{Rank: 2, Point: 0, Start: 0, End: 10, Committed: false})
	c.Add(ExecRecord{Rank: 3, Point: 1, Start: 0, End: 20, Committed: true})
	s := c.Summarize(4)
	if s.PerPoint[0].Commits != 1 || s.PerPoint[0].Rollbacks != 1 || s.PerPoint[0].Runtime != 20 {
		t.Fatalf("point 0 stats %+v", s.PerPoint[0])
	}
	if s.PerPoint[1].Commits != 1 || s.PerPoint[1].Runtime != 20 {
		t.Fatalf("point 1 stats %+v", s.PerPoint[1])
	}
	if got := s.PointsSorted(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("PointsSorted = %v", got)
	}
	if got := s.RollbackRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("rollback rate %v", got)
	}
}

func TestResetClears(t *testing.T) {
	c := NewCollector(2, true)
	c.Add(ExecRecord{Rank: 1, Start: 0, End: 10, Committed: true})
	c.SetNonSpec(100, vclock.Ledger{})
	c.Reset()
	s := c.Summarize(2)
	if s.Executions != 0 || s.NonSpecRuntime != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSummaryString(t *testing.T) {
	c := NewCollector(2, true)
	c.SetNonSpec(100, vclock.Ledger{})
	s := c.Summarize(2)
	str := s.String()
	for _, frag := range []string{"cpus=2", "Tn=100", "ηcrit"} {
		if !strings.Contains(str, frag) {
			t.Fatalf("summary string %q missing %q", str, frag)
		}
	}
}
