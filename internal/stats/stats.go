// Package stats aggregates per-thread execution records into the metrics
// the paper reports: absolute speedup, critical path efficiency, speculative
// path efficiency, power efficiency, parallel execution coverage (§V-B) and
// the critical/speculative path breakdowns of Figures 8 and 9.
package stats

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gbuf"
	"repro/internal/vclock"
)

// ExecRecord is one finished speculative execution: the interval it occupied
// its virtual CPU and the phase ledger accumulated during it.
type ExecRecord struct {
	Rank      int
	Point     int // fork/join point id
	Start     vclock.Cost
	End       vclock.Cost
	Ledger    vclock.Ledger
	Committed bool
	// ReadSetPeak/WriteSetPeak are the GlobalBuffer set sizes (words) at
	// the end of the execution — its buffer-pressure high-water marks.
	ReadSetPeak  int
	WriteSetPeak int
}

// Runtime returns the record's occupied interval length.
func (r *ExecRecord) Runtime() vclock.Cost { return r.End - r.Start }

// FaultRecord captures one contained fault: the panic value and a
// truncated stack, for post-mortem inspection without a process crash.
type FaultRecord struct {
	Rank  int    // 0 = non-speculative thread
	Point int    // fork/join point, -1 outside any point
	Value string // rendered panic value
	Stack string // truncated goroutine stack at recovery
}

// FaultStats counts the containment events of a run: speculative panics
// converted to rollbacks, non-speculative panics surfaced as KernelPanic
// errors, and watchdog deadline kills. Unlike the execution records these
// are counted even without CollectStats — a serving layer needs fault
// visibility regardless of profiling.
type FaultStats struct {
	SpecPanics    int64 `json:"spec_panics"`
	KernelPanics  int64 `json:"kernel_panics"`
	WatchdogKills int64 `json:"watchdog_kills"`

	// Records holds the most recent fault captures, newest last, capped at
	// MaxFaultRecords.
	Records []FaultRecord `json:"-"`
}

// MaxFaultRecords caps the retained fault captures per collector.
const MaxFaultRecords = 32

// Total returns the number of contained faults (panics, not deadline
// kills: a deadline kill is a schedule decision, not a fault capture).
func (f *FaultStats) Total() int64 { return f.SpecPanics + f.KernelPanics }

// Collector gathers records. Each virtual CPU appends only to its own slice
// (no locking on the hot path); the non-speculative thread's ledger is set
// once at the end of the run. Fault counts are mutex-guarded — faults are
// rare by definition, so the lock never sits on a hot path.
type Collector struct {
	Enabled bool
	perCPU  [][]ExecRecord

	nonSpecRuntime vclock.Cost
	nonSpecLedger  vclock.Ledger

	faultMu sync.Mutex
	faults  FaultStats
}

// CountSpecPanic records a speculative panic contained as RollbackFault.
func (c *Collector) CountSpecPanic(rec FaultRecord) {
	c.faultMu.Lock()
	c.faults.SpecPanics++
	c.addFaultRecordLocked(rec)
	c.faultMu.Unlock()
}

// CountKernelPanic records a non-speculative panic surfaced as a
// KernelPanic error.
func (c *Collector) CountKernelPanic(rec FaultRecord) {
	c.faultMu.Lock()
	c.faults.KernelPanics++
	c.addFaultRecordLocked(rec)
	c.faultMu.Unlock()
}

// CountWatchdogKill records one runaway-speculation deadline kill.
func (c *Collector) CountWatchdogKill() {
	c.faultMu.Lock()
	c.faults.WatchdogKills++
	c.faultMu.Unlock()
}

func (c *Collector) addFaultRecordLocked(rec FaultRecord) {
	if len(c.faults.Records) >= MaxFaultRecords {
		copy(c.faults.Records, c.faults.Records[1:])
		c.faults.Records = c.faults.Records[:MaxFaultRecords-1]
	}
	c.faults.Records = append(c.faults.Records, rec)
}

// Faults returns a snapshot of the fault counters.
func (c *Collector) Faults() FaultStats {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	snap := c.faults
	snap.Records = append([]FaultRecord(nil), c.faults.Records...)
	return snap
}

// NewCollector creates a collector for ranks 1..numCPUs.
func NewCollector(numCPUs int, enabled bool) *Collector {
	return &Collector{Enabled: enabled, perCPU: make([][]ExecRecord, numCPUs+1)}
}

// Add normalizes and stores a record. Two normalizations happen here, both
// mode-independent:
//
//   - The residual of the occupied interval not booked to any phase is
//     booked as work. In virtual mode the residual is zero (every advance is
//     ledgered); in real mode the ledger only holds the instrumented
//     overhead spans, so the residual is precisely the user work time.
//   - Rolled-back executions convert their work into wasted work, the
//     paper's Figure 9 category.
func (c *Collector) Add(rec ExecRecord) {
	if !c.Enabled || rec.Rank <= 0 || rec.Rank >= len(c.perCPU) {
		return
	}
	if resid := rec.Runtime() - rec.Ledger.Total(); resid > 0 {
		rec.Ledger[vclock.Work] += resid
	}
	if !rec.Committed {
		rec.Ledger[vclock.Wasted] += rec.Ledger[vclock.Work]
		rec.Ledger[vclock.Work] = 0
	}
	c.perCPU[rec.Rank] = append(c.perCPU[rec.Rank], rec)
}

// SetNonSpec records the non-speculative (critical path) thread's total
// runtime and ledger. The same work-residual normalization applies.
func (c *Collector) SetNonSpec(runtime vclock.Cost, ledger vclock.Ledger) {
	if resid := runtime - ledger.Total(); resid > 0 {
		ledger[vclock.Work] += resid
	}
	c.nonSpecRuntime = runtime
	c.nonSpecLedger = ledger
}

// Reset drops all records for a fresh run.
func (c *Collector) Reset() {
	for i := range c.perCPU {
		c.perCPU[i] = c.perCPU[i][:0]
	}
	c.nonSpecRuntime = 0
	c.nonSpecLedger = vclock.Ledger{}
	c.faultMu.Lock()
	c.faults = FaultStats{}
	c.faultMu.Unlock()
}

// Summary condenses a run. All the paper's §V metrics hang off it.
type Summary struct {
	NumCPUs        int
	NonSpecRuntime vclock.Cost
	NonSpecLedger  vclock.Ledger
	SpecRuntime    vclock.Cost   // Σ over speculative executions
	SpecLedger     vclock.Ledger // Σ over speculative executions
	Executions     int
	Commits        int
	Rollbacks      int
	PerPoint       map[int]PointStats

	// ReadSetPeak/WriteSetPeak are the maximum per-thread GlobalBuffer set
	// sizes (words) observed across all executions: the buffer pressure
	// the ablation bench reports alongside rollbacks.
	ReadSetPeak  int
	WriteSetPeak int

	// GBuf aggregates the GlobalBuffer activity counters over every
	// virtual CPU (filled by the runtime, not the collector; cumulative
	// across Runs on the same runtime).
	GBuf gbuf.Counters

	// PointsExhausted counts AllocPoint calls that found every fork/join
	// point id live and had to alias one — the signal that more than
	// MaxPoints driver runs overlapped on this runtime and their adaptive
	// feedback is mixing (filled by the runtime; cumulative until
	// ResetStats).
	PointsExhausted int64

	// Faults are the containment counters: speculative panics converted to
	// rollbacks, non-speculative KernelPanics, watchdog deadline kills.
	// Counted even without CollectStats; cumulative until ResetStats.
	Faults FaultStats
}

// PointStats profiles one fork/join point, feeding the adaptive fork
// heuristic and the ablation benches.
type PointStats struct {
	Commits   int
	Rollbacks int
	Runtime   vclock.Cost
}

// Summarize folds the collected records.
func (c *Collector) Summarize(numCPUs int) *Summary {
	s := &Summary{
		NumCPUs:        numCPUs,
		NonSpecRuntime: c.nonSpecRuntime,
		NonSpecLedger:  c.nonSpecLedger,
		PerPoint:       map[int]PointStats{},
		Faults:         c.Faults(),
	}
	for _, recs := range c.perCPU {
		for i := range recs {
			r := &recs[i]
			s.SpecRuntime += r.Runtime()
			s.SpecLedger.Add(&r.Ledger)
			s.Executions++
			ps := s.PerPoint[r.Point]
			if r.Committed {
				s.Commits++
				ps.Commits++
			} else {
				s.Rollbacks++
				ps.Rollbacks++
			}
			ps.Runtime += r.Runtime()
			s.PerPoint[r.Point] = ps
			if r.ReadSetPeak > s.ReadSetPeak {
				s.ReadSetPeak = r.ReadSetPeak
			}
			if r.WriteSetPeak > s.WriteSetPeak {
				s.WriteSetPeak = r.WriteSetPeak
			}
		}
	}
	return s
}

// CritEfficiency is the paper's ηcrit = Tworktime_nonsp / Truntime_nonsp.
func (s *Summary) CritEfficiency() float64 {
	if s.NonSpecRuntime == 0 {
		return 0
	}
	return float64(s.NonSpecLedger[vclock.Work]) / float64(s.NonSpecRuntime)
}

// SpecEfficiency is ηsp = ΣTworktime_sp / ΣTruntime_sp.
func (s *Summary) SpecEfficiency() float64 {
	if s.SpecRuntime == 0 {
		return 0
	}
	return float64(s.SpecLedger[vclock.Work]) / float64(s.SpecRuntime)
}

// PowerEfficiency is ηpower = Ts / (Truntime_nonsp + ΣTruntime_sp), the
// paper's inverse measure of relative waste.
func (s *Summary) PowerEfficiency(ts vclock.Cost) float64 {
	total := s.NonSpecRuntime + s.SpecRuntime
	if total == 0 {
		return 0
	}
	return float64(ts) / float64(total)
}

// Coverage is C = ΣTruntime_sp / Truntime_nonsp, the parallel execution
// coverage of §V-B.
func (s *Summary) Coverage() float64 {
	if s.NonSpecRuntime == 0 {
		return 0
	}
	return float64(s.SpecRuntime) / float64(s.NonSpecRuntime)
}

// Speedup is the absolute speedup Ts / TN for a given sequential time.
func (s *Summary) Speedup(ts vclock.Cost) float64 {
	if s.NonSpecRuntime == 0 {
		return 0
	}
	return float64(ts) / float64(s.NonSpecRuntime)
}

// CritBreakdownPhases lists the critical-path categories of Figure 8.
var CritBreakdownPhases = []vclock.Phase{
	vclock.Work, vclock.Join, vclock.Idle, vclock.Fork, vclock.FindCPU,
}

// SpecBreakdownPhases lists the speculative-path categories of Figure 9.
var SpecBreakdownPhases = []vclock.Phase{
	vclock.Wasted, vclock.Finalize, vclock.Commit, vclock.Validation,
	vclock.Overflow, vclock.Idle, vclock.Fork, vclock.FindCPU, vclock.Work,
}

// Breakdown returns each listed phase's share of the given runtime as a
// fraction in [0,1]. Shares are of the runtime parameter — not of the
// ledger's own total — so the listed phases need not sum to 1 when other
// phases are excluded or the ledger does not fill the runtime.
func Breakdown(ledger vclock.Ledger, runtime vclock.Cost, phases []vclock.Phase) map[vclock.Phase]float64 {
	out := make(map[vclock.Phase]float64, len(phases))
	if runtime <= 0 {
		return out
	}
	for _, p := range phases {
		out[p] = float64(ledger[p]) / float64(runtime)
	}
	return out
}

// CritBreakdown returns the Figure 8 percentages for this run.
func (s *Summary) CritBreakdown() map[vclock.Phase]float64 {
	return Breakdown(s.NonSpecLedger, s.NonSpecRuntime, CritBreakdownPhases)
}

// SpecBreakdown returns the Figure 9 percentages for this run.
func (s *Summary) SpecBreakdown() map[vclock.Phase]float64 {
	return Breakdown(s.SpecLedger, s.SpecRuntime, SpecBreakdownPhases)
}

// RollbackRate returns rollbacks / executions, or 0 with no executions.
func (s *Summary) RollbackRate() float64 {
	if s.Executions == 0 {
		return 0
	}
	return float64(s.Rollbacks) / float64(s.Executions)
}

// String renders a compact one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("cpus=%d Tn=%d specT=%d exec=%d commit=%d rollback=%d ηcrit=%.3f ηsp=%.3f C=%.2f",
		s.NumCPUs, s.NonSpecRuntime, s.SpecRuntime, s.Executions, s.Commits, s.Rollbacks,
		s.CritEfficiency(), s.SpecEfficiency(), s.Coverage())
}

// PointsSorted returns the fork/join point ids with statistics, ascending.
func (s *Summary) PointsSorted() []int {
	ids := make([]int, 0, len(s.PerPoint))
	for id := range s.PerPoint {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Records returns the stored execution records of one rank.
func (c *Collector) Records(rank int) []ExecRecord {
	if rank < 0 || rank >= len(c.perCPU) {
		return nil
	}
	return c.perCPU[rank]
}
