// Package bench implements the paper's benchmark suite (Table II): 3x+1,
// mandelbrot and md (computation-intensive loops), bh (memory-intensive
// loop), fft and matmult (divide and conquer) and nqueen and tsp
// (depth-first search). Every workload exists in two forms, exactly like
// the paper's non-speculative/speculative function pairs: a sequential
// version that runs on the non-speculative thread alone, and a TLS version
// written against the public mutls API (For for the loop benchmarks, Tree
// for the recursive ones). Both return a checksum so the harness can verify
// that speculation preserved sequential semantics.
package bench

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/stats"
	"repro/mutls"
)

// Size parameterizes a workload run. The meaning of the fields is
// workload-specific (documented on each workload). The JSON names appear
// in the wall-clock suite's machine-readable output.
type Size struct {
	N     int `json:"n"`               // primary problem size
	M     int `json:"m,omitempty"`     // secondary size (iterations, bodies, cities…)
	Steps int `json:"steps,omitempty"` // outer time steps, when applicable
}

// Workload is one Table II row plus its two implementations.
type Workload struct {
	Name         string            // Table II "Benchmark"
	Description  string            // Table II "Description"
	Pattern      string            // Table II "Pattern"
	Language     string            // Table II "Language"
	Class        string            // "computation" or "memory" (Table II grouping)
	AmountOfData func(Size) string // Table II "Amount of Data"

	// DefaultModel is the forking model the paper uses for the benchmark
	// (in-order for the loop benchmarks, mixed for tree-form recursion).
	DefaultModel mutls.Model

	// CISize finishes in well under a second; PaperSize matches Table II.
	CISize    Size
	PaperSize Size

	// HeapBytes sizes the simulated heap for the given problem size.
	HeapBytes func(Size) int

	// Seq runs the benchmark without speculation and returns a checksum.
	Seq func(t *mutls.Thread, s Size) uint64
	// Spec runs the TLS version under the given speculation options.
	Spec func(t *mutls.Thread, s Size, opts SpecOptions) uint64
}

// SpecOptions parameterizes a workload's TLS version: the forking model
// and, for the loop benchmarks, the chunk-sizing policy of their For/
// ForRange drives (nil keeps each workload's static paper split).
type SpecOptions struct {
	Model  mutls.Model
	Chunks mutls.Chunker
}

// chunkerFor adapts a configured chunker to a workload's static policy: an
// AdaptivePolicy without an explicit floor inherits the policy's
// MinPerChunk — the workload's fork-amortization threshold — so feedback
// never shrinks chunks below the size the static split considers worth a
// fork. Other chunkers pass through unchanged.
func chunkerFor(ck mutls.Chunker, p mutls.ChunkPolicy) mutls.Chunker {
	if ap, ok := ck.(mutls.AdaptivePolicy); ok && ap.MinSize == 0 && p.MinPerChunk > 1 {
		ap.MinSize = p.MinPerChunk
		return ap
	}
	return ck
}

// All lists the benchmarks in Table II order.
var All = []*Workload{X3P1, Mandelbrot, MD, BH, FFT, MatMult, NQueen, TSP}

// Extended lists the workload shapes beyond the paper's Table II: the
// stage-parallel pipeline (stencil) and the speculative float reduction
// (floatsum). They run the same verification suites as the Table II set
// but stay out of the paper's figures, which reproduce Table II exactly.
var Extended = []*Workload{Stencil, FloatSum}

// Everything returns All plus Extended — the full verification surface.
func Everything() []*Workload {
	return append(append([]*Workload{}, All...), Extended...)
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	for _, w := range Everything() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown workload %q", name)
}

// ComputationIntensive returns the Figure 3 benchmark set.
func ComputationIntensive() []*Workload { return []*Workload{X3P1, Mandelbrot, MD} }

// MemoryIntensive returns the Figure 4 benchmark set.
func MemoryIntensive() []*Workload { return []*Workload{FFT, MatMult, NQueen, TSP, BH} }

// RunConfig bundles everything needed to execute a workload run,
// expressed in public mutls types.
type RunConfig struct {
	CPUs   int
	Size   Size
	Model  mutls.Model
	Timing mutls.TimingMode
	// RealCPUCap passes through to mutls.Options.RealCPUCap (the Real-timing
	// GOMAXPROCS clamp; RealCPUsUncapped disables it for correctness tests
	// that need more virtual CPUs than the host has cores).
	RealCPUCap   int
	Cost         mutls.CostModel
	RollbackProb float64
	Seed         uint64
	Heuristic    bool
	// Buffering selects the GlobalBuffer backend; zero selects the suite
	// default (openaddr, 2^16 words, 256 overflow slots).
	Buffering mutls.Buffering
	// Chunks selects the loop benchmarks' chunk-sizing policy; nil keeps
	// the static paper split.
	Chunks mutls.Chunker
	// Faults wires a deterministic fault-injection plan into the runtime
	// (the chaos harness); nil injects nothing.
	Faults *faultinject.Plan
	// SpecDeadline arms the runaway-speculation watchdog; zero disables.
	SpecDeadline time.Duration
}

// options builds the mutls runtime options for a workload.
func (cfg RunConfig) options(w *Workload) mutls.Options {
	buf := cfg.Buffering
	// The suite's openaddr sizing defaults apply only to that backend;
	// chain/bitmap configs keep their own sizing untouched.
	if buf.Backend == "" || buf.Backend == "openaddr" {
		if buf.LogWords == 0 {
			buf.LogWords = 16
		}
		if buf.OverflowCap == 0 {
			buf.OverflowCap = 256
		}
	}
	return mutls.Options{
		CPUs:                  cfg.CPUs,
		Timing:                cfg.Timing,
		RealCPUCap:            cfg.RealCPUCap,
		Cost:                  cfg.Cost,
		CollectStats:          true,
		StaticBytes:           1 << 16,
		HeapBytes:             w.HeapBytes(cfg.Size),
		StackBytes:            1 << 16,
		Buffering:             buf,
		RegSlots:              160,
		StackSlots:            32,
		RollbackProb:          cfg.RollbackProb,
		Seed:                  cfg.Seed,
		AdaptiveForkHeuristic: cfg.Heuristic,
		SpecDeadline:          cfg.SpecDeadline,
		FaultPlan:             cfg.Faults,
	}
}

// Measurement is the result of one run.
type Measurement struct {
	Runtime  mutls.Cost
	Checksum uint64
	Summary  *stats.Summary
}

// MeasureSeq runs the sequential version on a 1-CPU runtime and returns the
// paper's Ts.
func MeasureSeq(w *Workload, cfg RunConfig) (Measurement, error) {
	c := cfg
	c.CPUs = 1
	rt, err := mutls.New(c.options(w))
	if err != nil {
		return Measurement{}, err
	}
	defer rt.Close()
	var sum uint64
	ts, err := rt.Run(func(t *mutls.Thread) { sum = w.Seq(t, cfg.Size) })
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Runtime: ts, Checksum: sum, Summary: rt.Stats()}, nil
}

// MeasureSpec runs the TLS version and returns the paper's TN plus the
// statistics summary for the efficiency figures.
func MeasureSpec(w *Workload, cfg RunConfig) (Measurement, error) {
	rt, err := mutls.New(cfg.options(w))
	if err != nil {
		return Measurement{}, err
	}
	defer rt.Close()
	opts := SpecOptions{Model: cfg.Model, Chunks: cfg.Chunks}
	var sum uint64
	tn, err := rt.Run(func(t *mutls.Thread) { sum = w.Spec(t, cfg.Size, opts) })
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Runtime: tn, Checksum: sum, Summary: rt.Stats()}, nil
}

// Verify runs both versions and fails if the checksums diverge — the
// integration safety check behind every figure.
func Verify(w *Workload, cfg RunConfig) error {
	seq, err := MeasureSeq(w, cfg)
	if err != nil {
		return fmt.Errorf("%s sequential: %w", w.Name, err)
	}
	spec, err := MeasureSpec(w, cfg)
	if err != nil {
		return fmt.Errorf("%s speculative: %w", w.Name, err)
	}
	if seq.Checksum != spec.Checksum {
		return fmt.Errorf("%s: speculative checksum %#x != sequential %#x (model %v, cpus %d)",
			w.Name, spec.Checksum, seq.Checksum, cfg.Model, cfg.CPUs)
	}
	return nil
}

// mix folds a value into a running checksum (order-independent for
// commutative accumulation, which all workloads use).
func mix(sum, v uint64) uint64 {
	v *= 0x9E3779B97F4A7C15
	v ^= v >> 29
	return sum + v
}
