package bench

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/mutls"
)

// BH is the paper's Barnes-Hut N-body simulation (Table II: 12800 bodies,
// C++). Each step rebuilds the octree on the non-speculative thread (tree
// construction allocates, which speculative threads may not do) and then
// computes per-body forces by tree traversal in speculated chunks — a
// pointer-chasing, memory-intensive loop, which is why bh sits in Figure 4
// rather than Figure 3.
var BH = &Workload{
	Name:        "bh",
	Description: "Barnes-Hut N-body simulation",
	Pattern:     "loop",
	Language:    "C++",
	Class:       "memory",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d bodies", s.N)
	},
	DefaultModel: mutls.InOrder,
	CISize:       Size{N: 96, Steps: 2},
	PaperSize:    Size{N: 12_800, Steps: 4},
	HeapBytes: func(s Size) int {
		// Bodies (10 words each) + up to ~8N tree nodes of 13 words.
		return 8*(10*s.N) + 8*13*8*s.N + (1 << 16)
	},
	Seq:  bhSeq,
	Spec: bhSpec,
}

// Octree node layout (13 words): mass, cx, cy, cz, body index (-1 when
// internal), 8 child pointers.
const (
	bhMass  = 0
	bhCX    = 8
	bhCY    = 16
	bhCZ    = 24
	bhBody  = 32
	bhChild = 40 // 8 pointers
	bhNode  = 104
)

// bhState: the tree root pointer and root half-size live in simulated
// memory (meta), not in Go variables — a squashed speculative thread may
// still be traversing the previous step's tree while the non-speculative
// thread rebuilds it, and such stale reads must flow through the TLS
// buffers (where validation handles them) rather than race at the Go level.
type bhState struct {
	pos, vel, force mem.Addr // 3N float64 each
	mass            mem.Addr // N float64
	meta            mem.Addr // [root pointer, root half-size]
	n               int
	nodes           []mem.Addr
}

func bhInit(t *mutls.Thread, s Size) *bhState {
	n := s.N
	st := &bhState{
		pos:   t.Alloc(8 * 3 * n),
		vel:   t.Alloc(8 * 3 * n),
		force: t.Alloc(8 * 3 * n),
		mass:  t.Alloc(8 * n),
		meta:  t.Alloc(16),
		n:     n,
	}
	for i := 0; i < n; i++ {
		// Deterministic pseudo-random cloud in [0,1)³.
		h := uint64(i)*0x9E3779B97F4A7C15 + 12345
		for d := 0; d < 3; d++ {
			h ^= h >> 29
			h *= 0xBF58476D1CE4E5B9
			t.StoreFloat64(st.pos+mem.Addr(8*(3*i+d)), float64(h%1000)/1000.0)
			t.StoreFloat64(st.vel+mem.Addr(8*(3*i+d)), 0)
		}
		t.StoreFloat64(st.mass+mem.Addr(8*i), 1.0+float64(i%7)/7.0)
	}
	return st
}

func (st *bhState) freeAll(t *mutls.Thread) {
	st.freeTree(t)
	t.Free(st.pos)
	t.Free(st.vel)
	t.Free(st.force)
	t.Free(st.mass)
	t.Free(st.meta)
}

func (st *bhState) freeTree(t *mutls.Thread) {
	for _, p := range st.nodes {
		t.Free(p)
	}
	st.nodes = st.nodes[:0]
	t.StoreAddr(st.meta, mem.NilAddr)
}

func (st *bhState) newNode(t *mutls.Thread, cx, cy, cz float64) mem.Addr {
	p := t.Alloc(bhNode)
	st.nodes = append(st.nodes, p)
	t.StoreFloat64(p+bhMass, 0)
	t.StoreFloat64(p+bhCX, cx)
	t.StoreFloat64(p+bhCY, cy)
	t.StoreFloat64(p+bhCZ, cz)
	t.StoreInt64(p+bhBody, -1)
	for c := 0; c < 8; c++ {
		t.StoreAddr(p+bhChild+mem.Addr(8*c), mem.NilAddr)
	}
	return p
}

// buildTree (non-speculative): bounding cube, then insert every body.
func (st *bhState) buildTree(t *mutls.Thread) {
	st.freeTree(t)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 3*st.n; i++ {
		v := t.LoadFloat64(st.pos + mem.Addr(8*i))
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	mid := (lo + hi) / 2
	half := (hi-lo)/2 + 1e-9
	root := st.newNode(t, mid, mid, mid)
	for i := 0; i < st.n; i++ {
		st.insert(t, root, half, i)
	}
	st.summarize(t, root)
	t.StoreAddr(st.meta, root)
	t.StoreFloat64(st.meta+8, half)
}

func (st *bhState) bodyPos(t *mutls.Thread, i int) (float64, float64, float64) {
	return t.LoadFloat64(st.pos + mem.Addr(8*(3*i))),
		t.LoadFloat64(st.pos + mem.Addr(8*(3*i+1))),
		t.LoadFloat64(st.pos + mem.Addr(8*(3*i+2)))
}

func (st *bhState) octant(t *mutls.Thread, node mem.Addr, x, y, z float64) int {
	o := 0
	if x >= t.LoadFloat64(node+bhCX) {
		o |= 1
	}
	if y >= t.LoadFloat64(node+bhCY) {
		o |= 2
	}
	if z >= t.LoadFloat64(node+bhCZ) {
		o |= 4
	}
	return o
}

func (st *bhState) childCenter(t *mutls.Thread, node mem.Addr, half float64, o int) (float64, float64, float64) {
	dx, dy, dz := -half/2, -half/2, -half/2
	if o&1 != 0 {
		dx = half / 2
	}
	if o&2 != 0 {
		dy = half / 2
	}
	if o&4 != 0 {
		dz = half / 2
	}
	return t.LoadFloat64(node+bhCX) + dx, t.LoadFloat64(node+bhCY) + dy, t.LoadFloat64(node+bhCZ) + dz
}

func (st *bhState) insert(t *mutls.Thread, node mem.Addr, half float64, i int) {
	x, y, z := st.bodyPos(t, i)
	for {
		if b := t.LoadInt64(node + bhBody); b >= 0 {
			// Leaf with a body: push the resident body down, then retry.
			t.StoreInt64(node+bhBody, -1)
			st.pushDown(t, node, half, int(b))
		}
		o := st.octant(t, node, x, y, z)
		childPtr := node + bhChild + mem.Addr(8*o)
		child := t.LoadAddr(childPtr)
		if child == mem.NilAddr {
			cx, cy, cz := st.childCenter(t, node, half, o)
			child = st.newNode(t, cx, cy, cz)
			t.StoreInt64(child+bhBody, int64(i))
			t.StoreAddr(childPtr, child)
			return
		}
		node = child
		half /= 2
	}
}

func (st *bhState) pushDown(t *mutls.Thread, node mem.Addr, half float64, b int) {
	x, y, z := st.bodyPos(t, b)
	o := st.octant(t, node, x, y, z)
	childPtr := node + bhChild + mem.Addr(8*o)
	if t.LoadAddr(childPtr) == mem.NilAddr {
		cx, cy, cz := st.childCenter(t, node, half, o)
		child := st.newNode(t, cx, cy, cz)
		t.StoreInt64(child+bhBody, int64(b))
		t.StoreAddr(childPtr, child)
		return
	}
	// Extremely close bodies: insert recursively.
	st.insert(t, t.LoadAddr(childPtr), half/2, b)
}

// summarize computes mass and center of mass bottom-up.
func (st *bhState) summarize(t *mutls.Thread, node mem.Addr) (float64, float64, float64, float64) {
	if b := t.LoadInt64(node + bhBody); b >= 0 {
		m := t.LoadFloat64(st.mass + mem.Addr(8*b))
		x, y, z := st.bodyPos(t, int(b))
		t.StoreFloat64(node+bhMass, m)
		t.StoreFloat64(node+bhCX, x)
		t.StoreFloat64(node+bhCY, y)
		t.StoreFloat64(node+bhCZ, z)
		return m, x, y, z
	}
	var m, mx, my, mz float64
	for c := 0; c < 8; c++ {
		child := t.LoadAddr(node + bhChild + mem.Addr(8*c))
		if child == mem.NilAddr {
			continue
		}
		cm, cx, cy, cz := st.summarize(t, child)
		m += cm
		mx += cm * cx
		my += cm * cy
		mz += cm * cz
	}
	if m > 0 {
		mx /= m
		my /= m
		mz /= m
	}
	t.StoreFloat64(node+bhMass, m)
	t.StoreFloat64(node+bhCX, mx)
	t.StoreFloat64(node+bhCY, my)
	t.StoreFloat64(node+bhCZ, mz)
	return m, mx, my, mz
}

// bhForce computes the force on body i by tree traversal with opening
// criterion half/dist < theta. The visit budget bounds traversals over a
// torn tree snapshot (a squashed thread racing a rebuild): exceeding it
// means the snapshot is garbage and the thread rolls back.
func (st *bhState) bhForce(c *mutls.Thread, i int) (float64, float64, float64) {
	const theta = 0.5
	const eps = 1e-4
	budget := 64 * (st.n + 8)
	x, y, z := st.bodyPos(c, i)
	var fx, fy, fz float64
	type frame struct {
		node mem.Addr
		half float64
	}
	stack := []frame{{c.LoadAddr(st.meta), c.LoadFloat64(st.meta + 8)}}
	if stack[0].node == mem.NilAddr {
		c.Rollback()
	}
	for len(stack) > 0 {
		budget--
		if budget < 0 {
			c.Rollback()
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := c.LoadInt64(f.node + bhBody)
		if b == int64(i) {
			continue
		}
		m := c.LoadFloat64(f.node + bhMass)
		if m == 0 {
			continue
		}
		dx := c.LoadFloat64(f.node+bhCX) - x
		dy := c.LoadFloat64(f.node+bhCY) - y
		dz := c.LoadFloat64(f.node+bhCZ) - z
		r2 := dx*dx + dy*dy + dz*dz + eps
		r := math.Sqrt(r2)
		if b >= 0 || f.half/r < theta {
			inv := m / (r2 * r)
			fx += dx * inv
			fy += dy * inv
			fz += dz * inv
			c.Tick(26)
			continue
		}
		for o := 0; o < 8; o++ {
			child := c.LoadAddr(f.node + bhChild + mem.Addr(8*o))
			if child != mem.NilAddr {
				stack = append(stack, frame{child, f.half / 2})
			}
		}
		c.Tick(18)
	}
	return fx, fy, fz
}

func (st *bhState) forces(c *mutls.Thread, lo, hi int) {
	for i := lo; i < hi; i++ {
		fx, fy, fz := st.bhForce(c, i)
		f := [3]float64{fx, fy, fz}
		c.StoreFloat64s(st.force+mem.Addr(8*3*i), f[:])
		// Polling happens in the loop driver (ForOptions.PollEvery polls
		// at body bounds and can stop the chunk with saved progress).
	}
}

func (st *bhState) integrate(c *mutls.Thread, lo, hi int) {
	const dt = 1e-4
	for i := lo; i < hi; i++ {
		for d := 0; d < 3; d++ {
			off := mem.Addr(8 * (3*i + d))
			v := c.LoadFloat64(st.vel+off) + dt*c.LoadFloat64(st.force+off)
			c.StoreFloat64(st.vel+off, v)
			c.StoreFloat64(st.pos+off, c.LoadFloat64(st.pos+off)+dt*v)
		}
		c.Tick(12)
	}
}

// bhPolicy: at least 8 bodies per chunk, at most the paper's 64 chunks.
var bhPolicy = mutls.ChunkPolicy{MaxChunks: 64, MinPerChunk: 8}

func bhChecksum(t *mutls.Thread, st *bhState) uint64 {
	sum := uint64(0)
	for i := 0; i < 3*st.n; i++ {
		sum = mix(sum, math.Float64bits(t.LoadFloat64(st.pos+mem.Addr(8*i))))
	}
	return sum
}

func bhSeq(t *mutls.Thread, s Size) uint64 {
	st := bhInit(t, s)
	defer st.freeAll(t)
	for step := 0; step < s.Steps; step++ {
		st.buildTree(t)
		st.forces(t, 0, st.n)
		st.integrate(t, 0, st.n)
	}
	return bhChecksum(t, st)
}

func bhSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	st := bhInit(t, s)
	defer st.freeAll(t)
	// Persist carries the adaptive chunk schedule across the per-time-step
	// force loops; PollEvery stops parked/squashed chunks at body bounds.
	opts := mutls.ForOptions{
		Model:     o.Model,
		Policy:    bhPolicy,
		Chunker:   mutls.Persist(chunkerFor(o.Chunks, bhPolicy)),
		PollEvery: 1,
	}
	for step := 0; step < s.Steps; step++ {
		st.buildTree(t) // allocation-heavy: non-speculative by rule
		mutls.ForRange(t, st.n, opts, func(c *mutls.Thread, lo, hi int) {
			st.forces(c, lo, hi)
		})
		st.integrate(t, 0, st.n) // O(N): not worth a fork
	}
	return bhChecksum(t, st)
}
