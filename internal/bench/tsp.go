package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mem"
)

// TSP is the paper's travelling salesperson benchmark (Table II: 12 cities,
// depth-first search). The branch-and-bound DFS is speculated like nqueen:
// the top rows of the search tree fork one thread per unvisited next city.
// Each subtree prunes against its own locally discovered best tour (a
// shared global bound would make every subtree conflict), and the driver
// minimizes over the committed subtree results carried in saved locals.
var TSP = &Workload{
	Name:        "tsp",
	Description: "travelling sales person (TSP) problem",
	Pattern:     "depth-first search",
	Language:    "C",
	Class:       "memory",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d cities", s.N)
	},
	DefaultModel: core.Mixed,
	CISize:       Size{N: 8},
	PaperSize:    Size{N: 12},
	HeapBytes:    func(s Size) int { return 8*s.N*s.N + (1 << 12) },
	Seq:          tspSeq,
	Spec:         tspSpec,
}

const tspBestSlot = 158

const tspForkDepth = 2

// tspDist builds the distance matrix in simulated memory (static data the
// speculative threads read).
func tspDist(t *core.Thread, n int) mem.Addr {
	d := t.Alloc(8 * n * n)
	for i := 0; i < n; i++ {
		xi := float64((i*37)%19) / 19.0
		yi := float64((i*53)%23) / 23.0
		for j := 0; j < n; j++ {
			xj := float64((j*37)%19) / 19.0
			yj := float64((j*53)%23) / 23.0
			dx, dy := xi-xj, yi-yj
			t.StoreFloat64(d+mem.Addr(8*(i*n+j)), math.Sqrt(dx*dx+dy*dy))
		}
	}
	return d
}

// tspSearch explores all tours extending the partial path (visited, last,
// length), pruning against best, and returns the minimum tour length.
func tspSearch(c *core.Thread, d mem.Addr, n int, visited uint32, last int, length, best float64) float64 {
	if visited == uint32(1<<n)-1 {
		total := length + c.LoadFloat64(d+mem.Addr(8*(last*n+0)))
		if total < best {
			return total
		}
		return best
	}
	c.Tick(int64(n))
	for next := 1; next < n; next++ {
		if visited&(1<<next) != 0 {
			continue
		}
		step := c.LoadFloat64(d + mem.Addr(8*(last*n+next)))
		if length+step >= best {
			continue // bound
		}
		best = tspSearch(c, d, n, visited|1<<next, next, length+step, best)
	}
	return best
}

func tspSeq(t *core.Thread, s Size) uint64 {
	d := tspDist(t, s.N)
	defer t.Free(d)
	best := tspSearch(t, d, s.N, 1, 0, 0, math.Inf(1))
	return uint64(int64(best * 1e9))
}

func tspSpec(t *core.Thread, s Size, model core.Model) uint64 {
	n := s.N
	d := tspDist(t, n)
	defer t.Free(d)

	var region core.RegionFunc
	var explore func(c *core.Thread, visited uint32, last int, length float64, seq, span int64, spawns *[]Spawn) float64
	explore = func(c *core.Thread, visited uint32, last int, length float64, seq, span int64, spawns *[]Spawn) float64 {
		depth := 0
		for v := visited; v != 0; v >>= 1 {
			depth += int(v & 1)
		}
		if depth > tspForkDepth || visited == uint32(1<<n)-1 {
			return tspSearch(c, d, n, visited, last, length, math.Inf(1))
		}
		var cands []int
		for next := 1; next < n; next++ {
			if visited&(1<<next) == 0 {
				cands = append(cands, next)
			}
		}
		stride := span / int64(len(cands))
		ranks := make([]core.Rank, len(cands))
		for i := len(cands) - 1; i >= 1; i-- {
			h := c.Fork(ranks, i, model)
			if h == nil {
				continue
			}
			next := cands[i]
			step := c.LoadFloat64(d + mem.Addr(8*(last*n+next)))
			h.SetRegvarInt64(0, int64(visited|1<<next))
			h.SetRegvarInt64(1, int64(next))
			h.SetRegvarFloat64(2, length+step)
			h.SetRegvarInt64(3, seq+int64(i)*stride)
			h.SetRegvarInt64(4, stride)
			h.Start(region)
		}
		next := cands[0]
		step := c.LoadFloat64(d + mem.Addr(8*(last*n+next)))
		best := explore(c, visited|1<<next, next, length+step, seq, stride, spawns)
		for i := 1; i < len(cands); i++ {
			nc := cands[i]
			stepI := c.LoadFloat64(d + mem.Addr(8*(last*n+nc)))
			if ranks[i] == 0 {
				b := explore(c, visited|1<<nc, nc, length+stepI, seq+int64(i)*stride, stride, spawns)
				best = math.Min(best, b)
				continue
			}
			*spawns = append(*spawns, Spawn{
				Rank: ranks[i],
				Seq:  seq + int64(i)*stride,
				P: [4]int64{
					int64(visited | 1<<nc),
					int64(nc),
					int64(math.Float64bits(length + stepI)),
					0,
				},
			})
		}
		return best
	}
	region = func(c *core.Thread) uint32 {
		visited := uint32(c.GetRegvarInt64(0))
		last := int(c.GetRegvarInt64(1))
		length := c.GetRegvarFloat64(2)
		seq := c.GetRegvarInt64(3)
		span := c.GetRegvarInt64(4)
		var spawns []Spawn
		best := explore(c, visited, last, length, seq, span, &spawns)
		c.SaveRegvarFloat64(tspBestSlot, best)
		return FinishRegion(c, spawns)
	}

	var spawns []Spawn
	best := explore(t, 1, 0, 0, 0, int64(1)<<62, &spawns)
	DriveSpawns(t, spawns,
		func(t0 *core.Thread, sp Spawn) []Spawn {
			b := tspSearch(t0, d, n, uint32(sp.P[0]), int(sp.P[1]), math.Float64frombits(uint64(sp.P[2])), math.Inf(1))
			best = math.Min(best, b)
			return nil
		},
		func(sp Spawn, res core.JoinResult) {
			best = math.Min(best, res.RegvarFloat64(tspBestSlot))
		})
	return uint64(int64(best * 1e9))
}
