package bench

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/mutls"
)

// TSP is the paper's travelling salesperson benchmark (Table II: 12 cities,
// depth-first search). The branch-and-bound DFS is speculated like nqueen:
// the top rows of the search tree spawn one speculative task per unvisited
// next city. Each subtree prunes against its own locally discovered best
// tour (a shared global bound would make every subtree conflict), and the
// driver minimizes over the committed subtree results.
var TSP = &Workload{
	Name:        "tsp",
	Description: "travelling sales person (TSP) problem",
	Pattern:     "depth-first search",
	Language:    "C",
	Class:       "memory",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d cities", s.N)
	},
	DefaultModel: mutls.Mixed,
	CISize:       Size{N: 8},
	PaperSize:    Size{N: 12},
	HeapBytes:    func(s Size) int { return 8*s.N*s.N + (1 << 12) },
	Seq:          tspSeq,
	Spec:         tspSpec,
}

const tspForkDepth = 2

// tspDist builds the distance matrix in simulated memory (static data the
// speculative threads read).
func tspDist(t *mutls.Thread, n int) mem.Addr {
	d := t.Alloc(8 * n * n)
	for i := 0; i < n; i++ {
		xi := float64((i*37)%19) / 19.0
		yi := float64((i*53)%23) / 23.0
		for j := 0; j < n; j++ {
			xj := float64((j*37)%19) / 19.0
			yj := float64((j*53)%23) / 23.0
			dx, dy := xi-xj, yi-yj
			t.StoreFloat64(d+mem.Addr(8*(i*n+j)), math.Sqrt(dx*dx+dy*dy))
		}
	}
	return d
}

// tspSearch explores all tours extending the partial path (visited, last,
// length), pruning against best, and returns the minimum tour length.
func tspSearch(c *mutls.Thread, d mem.Addr, n int, visited uint32, last int, length, best float64) float64 {
	if visited == uint32(1<<n)-1 {
		total := length + c.LoadFloat64(d+mem.Addr(8*(last*n+0)))
		if total < best {
			return total
		}
		return best
	}
	c.Tick(int64(n))
	for next := 1; next < n; next++ {
		if visited&(1<<next) != 0 {
			continue
		}
		step := c.LoadFloat64(d + mem.Addr(8*(last*n+next)))
		if length+step >= best {
			continue // bound
		}
		best = tspSearch(c, d, n, visited|1<<next, next, length+step, best)
	}
	return best
}

func tspSeq(t *mutls.Thread, s Size) uint64 {
	d := tspDist(t, s.N)
	defer t.Free(d)
	best := tspSearch(t, d, s.N, 1, 0, 0, math.Inf(1))
	return uint64(int64(best * 1e9))
}

// tspTask packs a partial tour into a Task: Args = visited, last city, tour
// length (float bits).
func tspTask(visited uint32, last int, length float64, seq, span int64) mutls.Task {
	return mutls.Task{
		Seq: seq, Span: span,
		Args: [4]int64{int64(visited), int64(last), int64(math.Float64bits(length)), 0},
	}
}

func tspSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	n := s.N
	d := tspDist(t, n)
	defer t.Free(d)

	tree := &mutls.Tree{Model: o.Model}
	var explore func(c *mutls.Thread, tt *mutls.TreeThread, visited uint32, last int, length float64, seq, span int64) float64
	explore = func(c *mutls.Thread, tt *mutls.TreeThread, visited uint32, last int, length float64, seq, span int64) float64 {
		depth := 0
		for v := visited; v != 0; v >>= 1 {
			depth += int(v & 1)
		}
		if depth > tspForkDepth || visited == uint32(1<<n)-1 {
			return tspSearch(c, d, n, visited, last, length, math.Inf(1))
		}
		var cands []int
		for next := 1; next < n; next++ {
			if visited&(1<<next) == 0 {
				cands = append(cands, next)
			}
		}
		stride := span / int64(len(cands))
		spawned := make([]bool, len(cands))
		for i := len(cands) - 1; i >= 1; i-- {
			next := cands[i]
			step := c.LoadFloat64(d + mem.Addr(8*(last*n+next)))
			spawned[i] = tt.Spawn(c, tspTask(visited|1<<next, next, length+step,
				seq+int64(i)*stride, stride))
		}
		next := cands[0]
		step := c.LoadFloat64(d + mem.Addr(8*(last*n+next)))
		best := explore(c, tt, visited|1<<next, next, length+step, seq, stride)
		for i := 1; i < len(cands); i++ {
			if spawned[i] {
				continue
			}
			nc := cands[i]
			stepI := c.LoadFloat64(d + mem.Addr(8*(last*n+nc)))
			b := explore(c, tt, visited|1<<nc, nc, length+stepI, seq+int64(i)*stride, stride)
			best = math.Min(best, b)
		}
		return best
	}
	tree.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		best := explore(c, tt, uint32(task.Args[0]), int(task.Args[1]),
			math.Float64frombits(uint64(task.Args[2])), task.Seq, task.Span)
		tt.SetResultFloat64(best)
	}

	best := math.Inf(1)
	roots := tree.Collect(t, func(tt *mutls.TreeThread) {
		best = explore(t, tt, 1, 0, 0, 0, int64(1)<<62)
	})
	tree.Drive(t, roots, func(_ mutls.Task, res mutls.TreeResult) {
		best = math.Min(best, res.Float64())
	})
	return uint64(int64(best * 1e9))
}
