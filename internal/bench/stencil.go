package bench

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/mutls"
)

// Stencil is the pipeline-pattern workload (beyond the paper's Table II;
// ROADMAP "more workload shapes"): a two-pass 1-D smoothing stencil over a
// float32 field, structured as a three-stage mutls.Pipeline over tokens =
// field blocks, the DSWP-style decoupled shape. Stage 0 runs the first
// 3-point pass src→tmp for block u; stage 1 runs the second pass tmp→dst
// for block u-2 (the software-pipelining skew that keeps its halo reads on
// blocks whose writes are already committed); stage 2 folds the residual
// |dst-src| of block u-3 into a global accumulator cell. The inter-stage
// live-out is a token cursor — structural, so the stride predictor follows
// it exactly through fill, steady state and drain — while the field data
// flows through simulated memory under GlobalBuffer validation. Size.N is the field length,
// Size.Steps the number of smoothing sweeps (buffers swap between sweeps).
var Stencil = &Workload{
	Name:        "stencil",
	Description: "two-pass 1-D smoothing stencil as a 3-stage pipeline",
	Pattern:     "pipeline",
	Language:    "Go",
	Class:       "computation",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d float32 field, %d sweeps", s.N, s.Steps)
	},
	DefaultModel: mutls.OutOfOrder,
	CISize:       Size{N: 8192, Steps: 2},
	PaperSize:    Size{N: 1 << 16, Steps: 8},
	HeapBytes: func(s Size) int {
		return 3*4*s.N + (1 << 12)
	},
	Seq:  stencilSeq,
	Spec: stencilSpec,
}

// stencilBlocks is the fixed block split of the field (the pipeline's
// token axis per sweep, before the drain skew).
const stencilBlocks = 32

// stencilSkew1 and stencilSkew2 are the token lags of stages 1 and 2: two
// tokens so stage 1's halo reads land on tmp blocks committed at least a
// token ago, one more for stage 2 so it trails stage 1's dst writes.
const (
	stencilSkew1 = 2
	stencilSkew2 = 3
)

// stencilState holds the field buffers in the simulated address space.
type stencilState struct {
	bufA, bufB, tmp mem.Addr // N float32 each
	acc             mem.Addr // one float64 residual cell
	n               int
}

func stencilInit(t *mutls.Thread, s Size) stencilState {
	st := stencilState{
		bufA: t.Alloc(4 * s.N),
		bufB: t.Alloc(4 * s.N),
		tmp:  t.Alloc(4 * s.N),
		acc:  t.Alloc(8),
		n:    s.N,
	}
	init := make([]float32, s.N)
	for i := range init {
		init[i] = float32((i*13+7)%97) / 97.0
	}
	t.StoreFloat32s(st.bufA, init)
	t.StoreFloat64(st.acc, 0)
	return st
}

func (st stencilState) free(t *mutls.Thread) {
	t.Free(st.bufA)
	t.Free(st.bufB)
	t.Free(st.tmp)
	t.Free(st.acc)
}

// stencilBounds returns block blk's element range (empty outside
// [0, stencilBlocks)).
func stencilBounds(n, blk int) (lo, hi int) {
	return mutls.ChunkPolicy{}.Bounds(n, stencilBlocks, blk)
}

// stencilPass applies the 3-point smoothing kernel src→out over [lo, hi),
// clamping the halo at the field edges. The block plus halo is loaded with
// one float32 bulk range access and the block stored with another — the
// sub-word slice views on the single-charge range contract.
func stencilPass(c *mutls.Thread, src, out mem.Addr, n, lo, hi int) {
	if lo >= hi {
		return
	}
	haloLo := lo - 1
	if haloLo < 0 {
		haloLo = 0
	}
	haloHi := hi + 1
	if haloHi > n {
		haloHi = n
	}
	in := make([]float32, haloHi-haloLo)
	c.LoadFloat32s(src+mem.Addr(4*haloLo), in)
	res := make([]float32, hi-lo)
	at := func(i int) float32 {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return in[i-haloLo]
	}
	for i := lo; i < hi; i++ {
		res[i-lo] = 0.25*at(i-1) + 0.5*at(i) + 0.25*at(i+1)
	}
	// 5 flops per element at the md convention of ~3 units per flop.
	c.Tick(int64(hi-lo) * 15)
	c.StoreFloat32s(out+mem.Addr(4*lo), res)
}

// stencilResidual folds Σ|dst-src| over [lo, hi) into the accumulator
// cell.
func stencilResidual(c *mutls.Thread, src, dst, acc mem.Addr, lo, hi int) {
	if lo >= hi {
		return
	}
	a := make([]float32, hi-lo)
	b := make([]float32, hi-lo)
	c.LoadFloat32s(src+mem.Addr(4*lo), a)
	c.LoadFloat32s(dst+mem.Addr(4*lo), b)
	sum := c.LoadFloat64(acc)
	for i := range a {
		sum += math.Abs(float64(b[i]) - float64(a[i]))
	}
	c.Tick(int64(hi-lo) * 9)
	c.StoreFloat64(acc, sum)
}

// stencilStages builds one sweep's stage list over the (src, dst) buffer
// roles. Seq and Spec drive the same closures in the same token order, so
// the floating-point order is identical.
func stencilStages(st stencilState, src, dst mem.Addr) []mutls.Stage {
	stage0 := func(c *mutls.Thread, token int, in uint64) uint64 {
		lo, hi := stencilBounds(st.n, token)
		stencilPass(c, src, st.tmp, st.n, lo, hi)
		return in + 1
	}
	stage1 := func(c *mutls.Thread, token int, in uint64) uint64 {
		lo, hi := stencilBounds(st.n, token-stencilSkew1)
		stencilPass(c, st.tmp, dst, st.n, lo, hi)
		return in + 1
	}
	stage2 := func(c *mutls.Thread, token int, in uint64) uint64 {
		lo, hi := stencilBounds(st.n, token-stencilSkew2)
		stencilResidual(c, src, dst, st.acc, lo, hi)
		return in + 1
	}
	return []mutls.Stage{stage0, stage1, stage2}
}

// stencilTokens is the token count of one sweep: every block must pass
// through the most-skewed stage.
const stencilTokens = stencilBlocks + stencilSkew2

func stencilChecksum(t *mutls.Thread, st stencilState, cur mem.Addr) uint64 {
	field := make([]float32, st.n)
	t.LoadFloat32s(cur, field)
	sum := uint64(0)
	for _, v := range field {
		sum = mix(sum, uint64(math.Float32bits(v)))
	}
	return mix(sum, math.Float64bits(t.LoadFloat64(st.acc)))
}

func stencilSeq(t *mutls.Thread, s Size) uint64 {
	st := stencilInit(t, s)
	defer st.free(t)
	src, dst := st.bufA, st.bufB
	for step := 0; step < s.Steps; step++ {
		stages := stencilStages(st, src, dst)
		in := uint64(0)
		for token := 0; token < stencilTokens; token++ {
			for _, stage := range stages {
				in = stage(t, token, in)
			}
		}
		src, dst = dst, src
	}
	return stencilChecksum(t, st, src)
}

func stencilSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	st := stencilInit(t, s)
	defer st.free(t)
	opts := mutls.PipelineOptions{Model: o.Model, Predictor: mutls.Stride}
	src, dst := st.bufA, st.bufB
	for step := 0; step < s.Steps; step++ {
		mutls.Pipeline(t, stencilTokens, 0, opts, stencilStages(st, src, dst)...)
		src, dst = dst, src
	}
	return stencilChecksum(t, st, src)
}
