package bench

import (
	"fmt"

	"repro/internal/mem"
	"repro/mutls"
)

// MatMult is the paper's block-based matrix multiplication (Table II:
// 1024×1024 matrices, divide and conquer "like Strassen's algorithm").
// Each node splits C = A·B into eight half-size sub-products — two
// accumulating products per C quadrant — forks seven and computes the
// eighth itself. The two sub-products of one quadrant read and write the
// same C block, so when sub-tasks split their own sub-tasks the speculative
// siblings conflict: matmult is the paper's only benchmark that exhibits
// real rollbacks (§V-B, peaking around 23% at 7 cores).
var MatMult = &Workload{
	Name:        "matmult",
	Description: "block-based matrix multiplication",
	Pattern:     "divide and conquer",
	Language:    "C",
	Class:       "memory",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%dx%d matrices", s.N, s.N)
	},
	DefaultModel: mutls.Mixed,
	CISize:       Size{N: 32},
	PaperSize:    Size{N: 1024},
	HeapBytes: func(s Size) int {
		return 8*3*s.N*s.N + (1 << 12)
	},
	Seq:  matmultSeq,
	Spec: matmultSpec,
}

const matmultBlock = 8

type mmCtx struct {
	a, b, c mem.Addr
	n       int
}

func mmInit(t *mutls.Thread, s Size) mmCtx {
	n := s.N
	ctx := mmCtx{a: t.Alloc(8 * n * n), b: t.Alloc(8 * n * n), c: t.Alloc(8 * n * n), n: n}
	for i := 0; i < n*n; i++ {
		t.StoreFloat64(ctx.a+mem.Addr(8*i), float64((i*13)%17)/17.0)
		t.StoreFloat64(ctx.b+mem.Addr(8*i), float64((i*7)%23)/23.0)
		t.StoreFloat64(ctx.c+mem.Addr(8*i), 0)
	}
	return ctx
}

func (ctx mmCtx) free(t *mutls.Thread) {
	t.Free(ctx.a)
	t.Free(ctx.b)
	t.Free(ctx.c)
}

// mmBase multiplies sz×sz blocks directly: C[cOff] += A[aOff] · B[bOff],
// with offsets in elements into the row-major n×n arrays. Rows are moved
// with bulk range accesses in the ikj order, which adds each a[k]*b[j]
// product to acc[j] in ascending k exactly like the scalar jk loop did,
// so the floating point result is bit-identical. Unlike the other bulk
// kernels, the modelled access count *drops* here (the A row is loaded
// once per i instead of once per (j,k): sz+2sz² accesses per row before,
// 2sz+sz² after) — sequential and speculative versions share the kernel,
// so the speedup ratios and checksums are unaffected, but absolute
// modelled runtimes shrink versus the scalar kernel. The per-row
// CheckPoint poll rolls squashed speculations back early (matmult is the
// suite's rollback benchmark).
func mmBase(c *mutls.Thread, ctx mmCtx, cOff, aOff, bOff, sz int) {
	n := ctx.n
	var arow, brow, crow [matmultBlock]float64
	for i := 0; i < sz; i++ {
		a, b, acc := arow[:sz], brow[:sz], crow[:sz]
		c.LoadFloat64s(ctx.a+mem.Addr(8*(aOff+i*n)), a)
		c.LoadFloat64s(ctx.c+mem.Addr(8*(cOff+i*n)), acc)
		for k := 0; k < sz; k++ {
			c.LoadFloat64s(ctx.b+mem.Addr(8*(bOff+k*n)), b)
			av := a[k]
			for j := 0; j < sz; j++ {
				acc[j] += av * b[j]
			}
		}
		c.StoreFloat64s(ctx.c+mem.Addr(8*(cOff+i*n)), acc)
		c.Tick(int64(2 * sz * sz))
		c.CheckPoint()
	}
}

// mmSub lists the eight sub-products of a node in sequential order: for
// each C quadrant (ci, cj), first the k=0 product then the accumulating
// k=1 product.
type mmSub struct {
	cOff, aOff, bOff int
}

func mmSubs(ctx mmCtx, cOff, aOff, bOff, sz int) [8]mmSub {
	h := sz / 2
	n := ctx.n
	var out [8]mmSub
	idx := 0
	for ci := 0; ci < 2; ci++ {
		for cj := 0; cj < 2; cj++ {
			for k := 0; k < 2; k++ {
				out[idx] = mmSub{
					cOff: cOff + ci*h*n + cj*h,
					aOff: aOff + ci*h*n + k*h,
					bOff: bOff + k*h*n + cj*h,
				}
				idx++
			}
		}
	}
	return out
}

// mmSeqNode multiplies recursively without any speculation.
func mmSeqNode(t *mutls.Thread, ctx mmCtx, cOff, aOff, bOff, sz int) {
	if sz <= matmultBlock {
		mmBase(t, ctx, cOff, aOff, bOff, sz)
		return
	}
	for _, sub := range mmSubs(ctx, cOff, aOff, bOff, sz) {
		mmSeqNode(t, ctx, sub.cOff, sub.aOff, sub.bOff, sz/2)
	}
}

func matmultSeq(t *mutls.Thread, s Size) uint64 {
	ctx := mmInit(t, s)
	defer ctx.free(t)
	mmSeqNode(t, ctx, 0, 0, 0, ctx.n)
	return mmChecksum(t, ctx)
}

func matmultSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	ctx := mmInit(t, s)
	defer ctx.free(t)

	// Fork depth bounded at two levels (64 leaf tasks, the paper's scale);
	// failed spawns degrade to inline execution at low CPU counts. The
	// depth of a node follows from its block size: depth = log2(n/sz).
	maxDepth := 0
	for (ctx.n>>(maxDepth+1)) >= matmultBlock && maxDepth < 2 {
		maxDepth++
	}
	depthOf := func(sz int) int {
		d := 0
		for sz<<d < ctx.n {
			d++
		}
		return d
	}

	tree := &mutls.Tree{Model: o.Model}
	var node func(c *mutls.Thread, tt *mutls.TreeThread, cOff, aOff, bOff, sz int, seq, span int64)
	node = func(c *mutls.Thread, tt *mutls.TreeThread, cOff, aOff, bOff, sz int, seq, span int64) {
		if depthOf(sz) >= maxDepth || sz <= matmultBlock {
			mmSeqNode(c, ctx, cOff, aOff, bOff, sz)
			return
		}
		subs := mmSubs(ctx, cOff, aOff, bOff, sz)
		sub := span / 8
		// Spawn sub-products 7..1 in reverse sequential order (later forked
		// = logically earlier, §IV-F), compute sub-product 0 ourselves.
		spawned := make([]bool, 8)
		for i := 7; i >= 1; i-- {
			spawned[i] = tt.Spawn(c, mutls.Task{
				Seq: seq + int64(i)*sub, Span: sub,
				Args: [4]int64{int64(subs[i].cOff), int64(subs[i].aOff), int64(subs[i].bOff), int64(sz / 2)},
			})
		}
		node(c, tt, subs[0].cOff, subs[0].aOff, subs[0].bOff, sz/2, seq, sub)
		// Un-spawned sub-products run inline, in order.
		for i := 1; i <= 7; i++ {
			if !spawned[i] {
				mmSeqNode(c, ctx, subs[i].cOff, subs[i].aOff, subs[i].bOff, sz/2)
			}
		}
	}
	tree.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		node(c, tt, int(task.Args[0]), int(task.Args[1]), int(task.Args[2]), int(task.Args[3]),
			task.Seq, task.Span)
	}

	roots := tree.Collect(t, func(tt *mutls.TreeThread) {
		node(t, tt, 0, 0, 0, ctx.n, 0, int64(1)<<62)
	})
	tree.Drive(t, roots, nil)
	return mmChecksum(t, ctx)
}

func mmChecksum(t *mutls.Thread, ctx mmCtx) uint64 {
	sum := uint64(0)
	row := make([]float64, ctx.n)
	for i := 0; i < ctx.n; i++ {
		t.LoadFloat64s(ctx.c+mem.Addr(8*i*ctx.n), row)
		for _, v := range row {
			// Quantize: accumulation order differs between the speculative
			// sub-product schedule and the sequential triple loop only when
			// a rollback re-executes with different intermediate rounding;
			// the block schedule itself is identical.
			sum = mix(sum, uint64(int64(v*1024)))
		}
	}
	return sum
}
