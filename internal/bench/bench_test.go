package bench

import (
	"testing"

	"repro/mutls"
)

func ciConfig(w *Workload, cpus int) RunConfig {
	return RunConfig{
		CPUs:   cpus,
		Size:   w.CISize,
		Model:  w.DefaultModel,
		Timing: mutls.Virtual,
		Cost:   mutls.DefaultCostModel(),
	}
}

// Every workload must produce the sequential checksum under its default
// model — the integration test behind every figure.
func TestAllWorkloadsMatchSequential(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			if err := Verify(w, ciConfig(w, 4)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The same with a single CPU (speculation starved) and many CPUs.
func TestWorkloadsAcrossCPUCounts(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, cpus := range []int{1, 2, 8} {
				if err := Verify(w, ciConfig(w, cpus)); err != nil {
					t.Fatalf("cpus=%d: %v", cpus, err)
				}
			}
		})
	}
}

// Every workload under every GlobalBuffer backend: the buffering
// organization may change performance but never the result — the shared
// sequential-equivalence suite of the backend ablation.
func TestWorkloadsAcrossBackends(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range mutls.Backends() {
				cfg := ciConfig(w, 4)
				cfg.Buffering = mutls.Buffering{Backend: backend}
				if err := Verify(w, cfg); err != nil {
					t.Fatalf("backend=%s: %v", backend, err)
				}
			}
		})
	}
}

// Every workload under every forking model: the result may be computed with
// less parallelism but never differently.
func TestWorkloadsAcrossModels(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, m := range []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed, mutls.MixedLinear} {
				cfg := ciConfig(w, 4)
				cfg.Model = m
				if err := Verify(w, cfg); err != nil {
					t.Fatalf("model=%v: %v", m, err)
				}
			}
		})
	}
}

// Forced rollbacks (the Figure 11 experiment) must never change results.
func TestWorkloadsUnderInjectedRollbacks(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, prob := range []float64{0.2, 1.0} {
				cfg := ciConfig(w, 4)
				cfg.RollbackProb = prob
				cfg.Seed = 42
				if err := Verify(w, cfg); err != nil {
					t.Fatalf("prob=%v: %v", prob, err)
				}
			}
		})
	}
}

// Adaptive chunk sizing may change the schedule but never the result —
// with and without the forced rollbacks that drive its feedback loop.
func TestWorkloadsWithAdaptiveChunks(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, prob := range []float64{0, 0.2} {
				cfg := ciConfig(w, 4)
				cfg.Chunks = mutls.AdaptivePolicy{}
				cfg.RollbackProb = prob
				cfg.Seed = 7
				if err := Verify(w, cfg); err != nil {
					t.Fatalf("prob=%v: %v", prob, err)
				}
			}
		})
	}
}

// Real (wall clock) timing mode end to end.
func TestWorkloadsRealTiming(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := ciConfig(w, 2)
			cfg.Timing = mutls.Real
			// End-to-end correctness on any host, independent of core count.
			cfg.RealCPUCap = mutls.RealCPUsUncapped
			if err := Verify(w, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Speculation must actually happen: with several CPUs each workload commits
// at least one speculative execution under its default model.
func TestWorkloadsActuallySpeculate(t *testing.T) {
	for _, w := range Everything() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m, err := MeasureSpec(w, ciConfig(w, 8))
			if err != nil {
				t.Fatal(err)
			}
			if m.Summary.Commits == 0 {
				t.Fatalf("%s: no committed speculations (%d rollbacks)", w.Name, m.Summary.Rollbacks)
			}
		})
	}
}

// Speedup sanity under virtual timing: compute-intensive workloads must
// scale; memory-intensive ones must at least not slow down catastrophically.
func TestVirtualSpeedupSanity(t *testing.T) {
	for _, w := range []*Workload{X3P1, Mandelbrot} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			seq, err := MeasureSeq(w, ciConfig(w, 1))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := MeasureSpec(w, ciConfig(w, 8))
			if err != nil {
				t.Fatal(err)
			}
			speedup := float64(seq.Runtime) / float64(spec.Runtime)
			if speedup < 2.0 {
				t.Fatalf("%s: speedup %.2f at 8 CPUs; compute benchmark must scale", w.Name, speedup)
			}
		})
	}
}

// matmult is the paper's only benchmark with real rollbacks (§V-B): verify
// they appear with enough CPUs, and that the others stay rollback-free.
func TestRollbackProfileMatchesPaper(t *testing.T) {
	m, err := MeasureSpec(MatMult, ciConfig(MatMult, 8))
	if err != nil {
		t.Fatal(err)
	}
	if m.Summary.Rollbacks == 0 {
		t.Error("matmult: expected accumulation conflicts to cause rollbacks")
	}
	for _, w := range []*Workload{X3P1, NQueen, TSP, FFT} {
		mm, err := MeasureSpec(w, ciConfig(w, 8))
		if err != nil {
			t.Fatal(err)
		}
		if mm.Summary.Rollbacks != 0 {
			t.Errorf("%s: unexpected %d rollbacks (embarrassingly parallel per the paper)",
				w.Name, mm.Summary.Rollbacks)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("fft")
	if err != nil || w != FFT {
		t.Fatalf("ByName(fft) = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestBenchmarkSets(t *testing.T) {
	if len(All) != 8 {
		t.Fatalf("Table II has 8 benchmarks, got %d", len(All))
	}
	if len(Extended) != 2 || len(Everything()) != 10 {
		t.Fatalf("extended set: %d extra, %d total; want 2 and 10",
			len(Extended), len(Everything()))
	}
	if len(ComputationIntensive()) != 3 || len(MemoryIntensive()) != 5 {
		t.Fatal("figure 3/4 benchmark sets wrong")
	}
	for _, w := range Everything() {
		if w.AmountOfData(w.PaperSize) == "" || w.Description == "" || w.Pattern == "" {
			t.Errorf("%s: incomplete Table II row", w.Name)
		}
	}
}
