package bench

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// NQueen is the paper's N-queen benchmark (Table II: 14 queens, depth-first
// search). The search tree is speculated in the tree-form mixed model: at
// the top forkDepth rows each node explores its first candidate column
// itself and forks a speculative thread per remaining candidate (in reverse
// sequential order), exactly the tree-form recursion the simple forking
// models cannot exploit. Subtrees are disjoint (solution counts travel in
// saved locals), so the benchmark is embarrassingly parallel and
// rollback-free, like the paper observes.
var NQueen = &Workload{
	Name:        "nqueen",
	Description: "N-queen problem",
	Pattern:     "depth-first search",
	Language:    "C",
	Class:       "memory",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d queens", s.N)
	},
	DefaultModel: core.Mixed,
	CISize:       Size{N: 10},
	PaperSize:    Size{N: 14},
	HeapBytes:    func(Size) int { return 1 << 12 },
	Seq:          nqueenSeq,
	Spec:         nqueenSpec,
}

// nqueenCountSlot carries a subtree's solution count in the saved locals
// (above the spawn-list slots).
const nqueenCountSlot = 158

const nqueenForkDepth = 2

// nqueenCount explores the subtree below (cols, d1, d2) at the given row
// sequentially, charging one tick per visited node.
func nqueenCount(c *core.Thread, n int, row int, cols, d1, d2 uint32) int64 {
	if row == n {
		return 1
	}
	full := uint32(1<<n) - 1
	avail := full &^ (cols | d1 | d2)
	count := int64(0)
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		count += nqueenCount(c, n, row+1, cols|bit, (d1|bit)<<1&full, (d2|bit)>>1)
	}
	c.Tick(int64(4 + bits.OnesCount32(full&^(cols|d1|d2))))
	return count
}

func nqueenSeq(t *core.Thread, s Size) uint64 {
	return uint64(nqueenCount(t, s.N, 0, 0, 0, 0))
}

func nqueenSpec(t *core.Thread, s Size, model core.Model) uint64 {
	n := s.N
	full := uint32(1<<n) - 1

	var region core.RegionFunc
	// explore handles one node at row < nqueenForkDepth: first candidate
	// explored by this thread, the rest forked (reverse order).
	var explore func(c *core.Thread, row int, cols, d1, d2 uint32, seq, span int64, spawns *[]Spawn) int64
	explore = func(c *core.Thread, row int, cols, d1, d2 uint32, seq, span int64, spawns *[]Spawn) int64 {
		if row >= nqueenForkDepth || row == n {
			return nqueenCount(c, n, row, cols, d1, d2)
		}
		avail := full &^ (cols | d1 | d2)
		if avail == 0 {
			return 0
		}
		var cands []uint32
		for a := avail; a != 0; {
			bit := a & (-a)
			a &^= bit
			cands = append(cands, bit)
		}
		stride := span / int64(len(cands))
		ranks := make([]core.Rank, len(cands))
		// Fork candidates k-1 .. 1 (logically later first).
		for i := len(cands) - 1; i >= 1; i-- {
			h := c.Fork(ranks, i, model)
			if h == nil {
				continue
			}
			bit := cands[i]
			h.SetRegvarInt64(0, int64(row+1))
			h.SetRegvarInt64(1, int64(cols|bit))
			h.SetRegvarInt64(2, int64((d1|bit)<<1&full))
			h.SetRegvarInt64(3, int64((d2|bit)>>1))
			h.SetRegvarInt64(4, seq+int64(i)*stride)
			h.SetRegvarInt64(5, stride)
			h.Start(region)
		}
		bit := cands[0]
		count := explore(c, row+1, cols|bit, (d1|bit)<<1&full, (d2|bit)>>1, seq, stride, spawns)
		for i := 1; i < len(cands); i++ {
			if ranks[i] == 0 {
				b := cands[i]
				count += explore(c, row+1, cols|b, (d1|b)<<1&full, (d2|b)>>1, seq+int64(i)*stride, stride, spawns)
				continue
			}
			b := cands[i]
			*spawns = append(*spawns, Spawn{
				Rank: ranks[i],
				Seq:  seq + int64(i)*stride,
				P: [4]int64{
					int64(row + 1),
					int64(cols | b),
					int64((d1 | b) << 1 & full),
					int64((d2 | b) >> 1),
				},
			})
		}
		return count
	}
	region = func(c *core.Thread) uint32 {
		row := int(c.GetRegvarInt64(0))
		cols := uint32(c.GetRegvarInt64(1))
		d1 := uint32(c.GetRegvarInt64(2))
		d2 := uint32(c.GetRegvarInt64(3))
		seq := c.GetRegvarInt64(4)
		span := c.GetRegvarInt64(5)
		var spawns []Spawn
		count := explore(c, row, cols, d1, d2, seq, span, &spawns)
		c.SaveRegvarInt64(nqueenCountSlot, count)
		return FinishRegion(c, spawns)
	}

	var spawns []Spawn
	total := explore(t, 0, 0, 0, 0, 0, int64(1)<<62, &spawns)
	DriveSpawns(t, spawns,
		func(t0 *core.Thread, sp Spawn) []Spawn {
			total += nqueenCount(t0, n, int(sp.P[0]), uint32(sp.P[1]), uint32(sp.P[2]), uint32(sp.P[3]))
			return nil
		},
		func(sp Spawn, res core.JoinResult) {
			total += res.RegvarInt64(nqueenCountSlot)
		})
	return uint64(total)
}
