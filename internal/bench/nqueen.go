package bench

import (
	"fmt"
	"math/bits"

	"repro/mutls"
)

// NQueen is the paper's N-queen benchmark (Table II: 14 queens, depth-first
// search). The search tree is speculated in the tree-form mixed model: at
// the top forkDepth rows each node explores its first candidate column
// itself and spawns a speculative task per remaining candidate (in reverse
// sequential order), exactly the tree-form recursion the simple forking
// models cannot exploit. Subtrees are disjoint (solution counts travel in
// the task results), so the benchmark is embarrassingly parallel and
// rollback-free, like the paper observes.
var NQueen = &Workload{
	Name:        "nqueen",
	Description: "N-queen problem",
	Pattern:     "depth-first search",
	Language:    "C",
	Class:       "memory",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d queens", s.N)
	},
	DefaultModel: mutls.Mixed,
	CISize:       Size{N: 10},
	PaperSize:    Size{N: 14},
	HeapBytes:    func(Size) int { return 1 << 12 },
	Seq:          nqueenSeq,
	Spec:         nqueenSpec,
}

const nqueenForkDepth = 2

// nqueenCount explores the subtree below (cols, d1, d2) at the given row
// sequentially, charging one tick per visited node.
func nqueenCount(c *mutls.Thread, n int, row int, cols, d1, d2 uint32) int64 {
	if row == n {
		return 1
	}
	full := uint32(1<<n) - 1
	avail := full &^ (cols | d1 | d2)
	count := int64(0)
	for avail != 0 {
		bit := avail & (-avail)
		avail &^= bit
		count += nqueenCount(c, n, row+1, cols|bit, (d1|bit)<<1&full, (d2|bit)>>1)
	}
	c.Tick(int64(4 + bits.OnesCount32(full&^(cols|d1|d2))))
	return count
}

func nqueenSeq(t *mutls.Thread, s Size) uint64 {
	return uint64(nqueenCount(t, s.N, 0, 0, 0, 0))
}

// nqueenTask packs a search node into a Task: Args = row, cols, d1, d2.
func nqueenTask(row int, cols, d1, d2 uint32, seq, span int64) mutls.Task {
	return mutls.Task{
		Seq: seq, Span: span,
		Args: [4]int64{int64(row), int64(cols), int64(d1), int64(d2)},
	}
}

func nqueenSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	n := s.N
	full := uint32(1<<n) - 1

	tree := &mutls.Tree{Model: o.Model}
	// explore handles one node at row < nqueenForkDepth: first candidate
	// explored by this thread, the rest spawned (logically later first).
	var explore func(c *mutls.Thread, tt *mutls.TreeThread, row int, cols, d1, d2 uint32, seq, span int64) int64
	explore = func(c *mutls.Thread, tt *mutls.TreeThread, row int, cols, d1, d2 uint32, seq, span int64) int64 {
		if row >= nqueenForkDepth || row == n {
			return nqueenCount(c, n, row, cols, d1, d2)
		}
		avail := full &^ (cols | d1 | d2)
		if avail == 0 {
			return 0
		}
		var cands []uint32
		for a := avail; a != 0; {
			bit := a & (-a)
			a &^= bit
			cands = append(cands, bit)
		}
		stride := span / int64(len(cands))
		spawned := make([]bool, len(cands))
		for i := len(cands) - 1; i >= 1; i-- {
			bit := cands[i]
			spawned[i] = tt.Spawn(c, nqueenTask(row+1, cols|bit, (d1|bit)<<1&full, (d2|bit)>>1,
				seq+int64(i)*stride, stride))
		}
		bit := cands[0]
		count := explore(c, tt, row+1, cols|bit, (d1|bit)<<1&full, (d2|bit)>>1, seq, stride)
		for i := 1; i < len(cands); i++ {
			if spawned[i] {
				continue
			}
			b := cands[i]
			count += explore(c, tt, row+1, cols|b, (d1|b)<<1&full, (d2|b)>>1, seq+int64(i)*stride, stride)
		}
		return count
	}
	tree.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		count := explore(c, tt, int(task.Args[0]), uint32(task.Args[1]), uint32(task.Args[2]),
			uint32(task.Args[3]), task.Seq, task.Span)
		tt.SetResultInt64(count)
	}

	total := int64(0)
	roots := tree.Collect(t, func(tt *mutls.TreeThread) {
		total = explore(t, tt, 0, 0, 0, 0, 0, int64(1)<<62)
	})
	tree.Drive(t, roots, func(_ mutls.Task, res mutls.TreeResult) {
		total += res.Int64()
	})
	return uint64(total)
}
