package bench

import (
	"fmt"

	"repro/internal/mem"
	"repro/mutls"
)

// Mandelbrot is the paper's fractal generation benchmark: an N×N image with
// up to Size.M iterations per pixel (Table II: 512×512, 80000 iterations).
// Rows are split into 64 chunks speculated in order; the per-pixel escape
// loop is pure compute, so the benchmark is computation-intensive despite
// one buffered store per pixel.
var Mandelbrot = &Workload{
	Name:        "mandelbrot",
	Description: "mandelbrot fractal generation",
	Pattern:     "loop",
	Language:    "C/Fortran",
	Class:       "computation",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%dx%d image, maximum %d iterations", s.N, s.N, s.M)
	},
	DefaultModel: mutls.InOrder,
	CISize:       Size{N: 32, M: 300},
	PaperSize:    Size{N: 512, M: 80_000},
	HeapBytes: func(s Size) int {
		return 8*s.N*s.N + (1 << 12)
	},
	Seq:  mandelSeq,
	Spec: mandelSpec,
}

// mandelPolicy is the paper's fixed 64-way split, reduced for tiny images.
var mandelPolicy = mutls.ChunkPolicy{MaxChunks: 64}

// mandelPixel iterates z = z² + c until escape, charging the work.
func mandelPixel(c *mutls.Thread, cr, ci float64, maxIter int) int64 {
	zr, zi := 0.0, 0.0
	it := int64(0)
	for it < int64(maxIter) && zr*zr+zi*zi <= 4.0 {
		zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
		it++
	}
	c.Tick(it * 4)
	return it
}

// mandelRows renders rows y ≡ idx (mod chunks) of the image — strided so
// the in-set and out-of-set regions spread evenly over the chunks. Each
// row is computed into a scratch slice and stored with one bulk range
// access (same store count on the modelled machine, one buffer crossing
// on the real one). The per-row CheckPoint poll rolls a squashed
// speculation back without draining its remaining rows (a parked or
// join-signalled thread still finishes the chunk — For's one-index chunks
// leave the driver no sub-range to resume).
func mandelRows(c *mutls.Thread, img mem.Addr, s Size, idx, chunks int) {
	n := s.N
	row := make([]int64, n)
	for y := idx; y < n; y += chunks {
		ci := -1.25 + 2.5*float64(y)/float64(n)
		for x := 0; x < n; x++ {
			cr := -2.0 + 3.0*float64(x)/float64(n)
			row[x] = mandelPixel(c, cr, ci, s.M)
		}
		c.StoreInt64s(img+mem.Addr(8*y*n), row)
		c.CheckPoint()
	}
}

func mandelSeq(t *mutls.Thread, s Size) uint64 {
	img := t.Alloc(8 * s.N * s.N)
	defer t.Free(img)
	chunks := mandelPolicy.Chunks(s.N)
	for idx := 0; idx < chunks; idx++ {
		mandelRows(t, img, s, idx, chunks)
	}
	return mandelChecksum(t, img, s)
}

func mandelSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	img := t.Alloc(8 * s.N * s.N)
	defer t.Free(img)
	chunks := mandelPolicy.Chunks(s.N)
	opts := mutls.ForOptions{Model: o.Model, Chunker: o.Chunks}
	mutls.For(t, chunks, opts, func(c *mutls.Thread, idx int) {
		mandelRows(c, img, s, idx, chunks)
	})
	return mandelChecksum(t, img, s)
}

func mandelChecksum(t *mutls.Thread, img mem.Addr, s Size) uint64 {
	sum := uint64(0)
	row := make([]int64, s.N)
	for y := 0; y < s.N; y++ {
		t.LoadInt64s(img+mem.Addr(8*y*s.N), row)
		for _, v := range row {
			sum = mix(sum, uint64(v))
		}
	}
	return sum
}
