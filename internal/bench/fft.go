package bench

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/mutls"
)

// FFT is the paper's recursive Fast Fourier Transform (Table II: 2^20
// doubles, divide and conquer). The input is bit-reverse permuted up front;
// the recursion then transforms contiguous halves — the speculative thread
// executes the second recursive call and is barriered after it (the paper's
// words), so it never touches data its parent is producing and no rollbacks
// occur. The butterfly combine of each internal node needs both halves and
// therefore runs on the non-speculative thread after the subtree's joins,
// which is exactly why the paper's fft speedup saturates around 3.7 with
// idle time dominating the speculative path (Figure 9).
var FFT = &Workload{
	Name:        "fft",
	Description: "recursive Fast Fourier Transform",
	Pattern:     "divide and conquer",
	Language:    "C",
	Class:       "memory",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("2^%d doubles", log2(s.N))
	},
	DefaultModel: mutls.Mixed,
	CISize:       Size{N: 1 << 13},
	PaperSize:    Size{N: 1 << 20},
	HeapBytes: func(s Size) int {
		return 8*2*s.N + (1 << 12)
	},
	Seq:  fftSeq,
	Spec: fftSpec,
}

const fftMinBlock = 16

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

type fftCtx struct {
	re, im mem.Addr
	n      int
}

func fftInit(t *mutls.Thread, s Size) fftCtx {
	n := s.N
	ctx := fftCtx{re: t.Alloc(8 * n), im: t.Alloc(8 * n), n: n}
	for i := 0; i < n; i++ {
		ctx.store(t, i, math.Sin(0.3*float64(i))+0.1*float64(i%17), math.Cos(0.7*float64(i)))
	}
	return ctx
}

func (ctx fftCtx) free(t *mutls.Thread) {
	t.Free(ctx.re)
	t.Free(ctx.im)
}

func (ctx fftCtx) load(c *mutls.Thread, i int) (float64, float64) {
	return c.LoadFloat64(ctx.re + mem.Addr(8*i)), c.LoadFloat64(ctx.im + mem.Addr(8*i))
}

func (ctx fftCtx) store(c *mutls.Thread, i int, re, im float64) {
	c.StoreFloat64(ctx.re+mem.Addr(8*i), re)
	c.StoreFloat64(ctx.im+mem.Addr(8*i), im)
}

// bitReverse permutes the input so the contiguous-halves recursion computes
// a decimation-in-time FFT.
func fftBitReverse(t *mutls.Thread, ctx fftCtx) {
	n := ctx.n
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			ar, ai := ctx.load(t, i)
			br, bi := ctx.load(t, j)
			ctx.store(t, i, br, bi)
			ctx.store(t, j, ar, ai)
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	t.Tick(int64(n))
}

// fftCombine merges two transformed halves of [start, start+length) with
// twiddle-factor butterflies. Both halves are moved with bulk range
// accesses — four loads and four stores for the whole combine instead of
// eight scalar accesses per butterfly — with unchanged per-word modelled
// charges and bit-identical floating point per element. buf is caller
// scratch of at least 2*length floats (hoisted so the transform's hot
// path stays alloc-free per combine).
func fftCombine(c *mutls.Thread, ctx fftCtx, start, length int, buf []float64) {
	half := length / 2
	ar := buf[:half]
	ai := buf[half : 2*half]
	br := buf[2*half : 3*half]
	bi := buf[3*half : 4*half]
	c.LoadFloat64s(ctx.re+mem.Addr(8*start), ar)
	c.LoadFloat64s(ctx.im+mem.Addr(8*start), ai)
	c.LoadFloat64s(ctx.re+mem.Addr(8*(start+half)), br)
	c.LoadFloat64s(ctx.im+mem.Addr(8*(start+half)), bi)
	for j := 0; j < half; j++ {
		ang := -2 * math.Pi * float64(j) / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		tr := wr*br[j] - wi*bi[j]
		ti := wr*bi[j] + wi*br[j]
		br[j], bi[j] = ar[j]-tr, ai[j]-ti
		ar[j], ai[j] = ar[j]+tr, ai[j]+ti
	}
	c.Tick(int64(40 * half))
	c.StoreFloat64s(ctx.re+mem.Addr(8*start), ar)
	c.StoreFloat64s(ctx.im+mem.Addr(8*start), ai)
	c.StoreFloat64s(ctx.re+mem.Addr(8*(start+half)), br)
	c.StoreFloat64s(ctx.im+mem.Addr(8*(start+half)), bi)
}

// fftBlock runs the full iterative transform of [lo, lo+m) (input already
// bit-reversed), polling a check point per combine. The poll rolls a
// squashed speculation back at a butterfly boundary instead of letting it
// drain the block (a parked or join-signalled thread still completes the
// block: tree regions have no mid-body resume protocol).
func fftBlock(c *mutls.Thread, ctx fftCtx, lo, m int) {
	buf := make([]float64, 2*m)
	for length := 2; length <= m; length <<= 1 {
		for start := lo; start < lo+m; start += length {
			fftCombine(c, ctx, start, length, buf)
			c.CheckPoint()
		}
	}
}

// fftMaxDepth bounds the fork tree at 64 leaf regions; below that the
// recursion runs inside the region (get_CPU failures already degrade
// gracefully at low CPU counts).
func fftMaxDepth(n int) int {
	d := 0
	for (n>>(d+1)) >= fftMinBlock && d < 6 {
		d++
	}
	return d
}

func fftSeq(t *mutls.Thread, s Size) uint64 {
	ctx := fftInit(t, s)
	defer ctx.free(t)
	fftBitReverse(t, ctx)
	fftBlock(t, ctx, 0, ctx.n)
	return fftChecksum(t, ctx)
}

func fftSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	ctx := fftInit(t, s)
	defer ctx.free(t)
	fftBitReverse(t, ctx)
	maxDepth := fftMaxDepth(ctx.n)

	// A task describes one internal node of the recursion: Args = lo, the
	// right-half start, the node's length m, and the node's depth. The
	// spawned region transforms the right half [lo+m/2, lo+m); the left
	// half runs on the spawning thread.
	tree := &mutls.Tree{Model: o.Model}
	var node func(c *mutls.Thread, tt *mutls.TreeThread, lo, m, depth int)
	node = func(c *mutls.Thread, tt *mutls.TreeThread, lo, m, depth int) {
		if depth >= maxDepth || m <= fftMinBlock {
			fftBlock(c, ctx, lo, m)
			return
		}
		half := m / 2
		task := mutls.Task{
			Seq:  int64(lo + half),
			Args: [4]int64{int64(lo), int64(lo + half), int64(m), int64(depth)},
		}
		spawned := tt.Spawn(c, task)
		nBefore := tt.Pending()
		node(c, tt, lo, half, depth+1)
		if spawned {
			// The combine needs the speculative half: deferred to the
			// non-speculative driver after the subtree's joins.
			return
		}
		// No CPU: transform the right half sequentially here.
		fftBlock(c, ctx, lo+half, half)
		if tt.Pending() == nBefore {
			// Both halves are complete locally: combine now.
			fftCombine(c, ctx, lo, m, make([]float64, 2*m))
			return
		}
		// The left half deferred combines: this node's combine must run
		// after them. A rank-0 entry marks a combine-only task.
		tt.Defer(c, task)
	}
	tree.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		node(c, tt, int(task.Args[1]), int(task.Args[2])/2, int(task.Args[3])+1)
	}

	// The driver completes subtrees in sequential order, running each
	// node's combine once its right half has joined (reverse in-order
	// traversal = sequential order, §IV-F). fft interleaves driver-side
	// combines with the joins, so it completes the tree with Tree.Join
	// directly instead of Tree.Drive. One scratch serves every driver-side
	// combine (the non-speculative thread runs them sequentially).
	buf := make([]float64, 2*ctx.n)
	var complete func(task mutls.Task)
	complete = func(task mutls.Task) {
		if task.Rank == 0 {
			return // combine-only entry: nothing to join
		}
		sub, _, committed := tree.Join(t, task)
		if committed {
			for _, ch := range sub {
				complete(ch)
				fftCombine(t, ctx, int(ch.Args[0]), int(ch.Args[2]), buf)
			}
			return
		}
		// Rolled back: redo the right half sequentially.
		fftBlock(t, ctx, int(task.Args[1]), int(task.Args[2])/2)
	}

	roots := tree.Collect(t, func(tt *mutls.TreeThread) {
		node(t, tt, 0, ctx.n, 0)
	})
	for _, task := range roots {
		complete(task)
		fftCombine(t, ctx, int(task.Args[0]), int(task.Args[2]), buf)
	}
	return fftChecksum(t, ctx)
}

func fftChecksum(t *mutls.Thread, ctx fftCtx) uint64 {
	sum := uint64(0)
	re := make([]float64, ctx.n)
	im := make([]float64, ctx.n)
	t.LoadFloat64s(ctx.re, re)
	t.LoadFloat64s(ctx.im, im)
	for i := 0; i < ctx.n; i++ {
		sum = mix(sum, math.Float64bits(re[i]))
		sum = mix(sum, math.Float64bits(im[i]))
	}
	return sum
}
