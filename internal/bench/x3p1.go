package bench

import (
	"fmt"

	"repro/internal/mem"
	"repro/mutls"
)

// X3P1 is the paper's 3x+1 benchmark: enumerate n = 1..N and count Collatz
// steps. It "avoids memory access during the computation, and thus serves
// as an idealized benchmark" (§V). Size.N is the number of integers
// enumerated. The workload is split into 64 chunks, the paper's workload
// distribution strategy, which is why its Figure 3 curve plateaus between
// 32 and 63 CPUs and jumps at 64.
var X3P1 = &Workload{
	Name:        "3x+1",
	Description: "3x+1 problem in number theory",
	Pattern:     "loop",
	Language:    "C/Fortran",
	Class:       "computation",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d integers (enumerate)", s.N)
	},
	DefaultModel: mutls.InOrder,
	CISize:       Size{N: 20_000},
	PaperSize:    Size{N: 40_000_000},
	HeapBytes:    func(Size) int { return 1 << 12 },
	Seq:          x3p1Seq,
	Spec:         x3p1Spec,
}

// x3p1Chunks is the paper's fixed 64-way split.
const x3p1Chunks = 64

// collatzWork counts the 3x+1 steps of every n ≡ idx (mod x3p1Chunks) in
// [1, N] — the strided workload distribution that balances the chunks —
// returning the step total; the compute is both executed for real and
// charged to the virtual clock.
func collatzWork(c *mutls.Thread, s Size, idx int) int64 {
	total := int64(0)
	polls := 0
	for n := int64(idx + 1); n <= int64(s.N); n += x3p1Chunks {
		v := n
		steps := int64(0)
		for v > 1 {
			if v&1 == 0 {
				v >>= 1
			} else {
				v = 3*v + 1
			}
			steps++
		}
		c.Tick(steps)
		total += steps
		// Sparse polling: a squashed chunk dies within 16 enumerations
		// instead of draining the remaining thousands.
		if polls++; polls&0xF == 0 {
			c.CheckPoint()
		}
	}
	return total
}

func x3p1Seq(t *mutls.Thread, s Size) uint64 {
	out := t.Alloc(8 * x3p1Chunks)
	defer t.Free(out)
	for idx := 0; idx < x3p1Chunks; idx++ {
		t.StoreInt64(out+mem.Addr(8*idx), collatzWork(t, s, idx))
	}
	return x3p1Sum(t, out)
}

func x3p1Spec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	out := t.Alloc(8 * x3p1Chunks)
	defer t.Free(out)
	opts := mutls.ForOptions{Model: o.Model, Chunker: o.Chunks}
	mutls.For(t, x3p1Chunks, opts, func(c *mutls.Thread, idx int) {
		c.StoreInt64(out+mem.Addr(8*idx), collatzWork(c, s, idx))
	})
	return x3p1Sum(t, out)
}

func x3p1Sum(t *mutls.Thread, out mem.Addr) uint64 {
	sum := uint64(0)
	for idx := 0; idx < x3p1Chunks; idx++ {
		sum = mix(sum, uint64(t.LoadInt64(out+mem.Addr(8*idx))))
	}
	return sum
}
