package bench

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/mutls"
)

// MD is the paper's 3D molecular dynamics simulation (Table II: 256
// particles, 400 time steps). Each step computes all-pairs soft-sphere
// forces (O(N²) with ~10 floating point operations per pair — computation
// intensive) and then integrates positions and velocities. Both loops are
// speculated in chunks; steps are serialized by their joins, which is why
// the paper's md curve shows the critical path efficiency decaying with
// more CPUs.
var MD = &Workload{
	Name:        "md",
	Description: "3D molecular dynamics simulation",
	Pattern:     "loop",
	Language:    "C/Fortran",
	Class:       "computation",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d particles, %d iteration steps", s.N, s.Steps)
	},
	DefaultModel: mutls.InOrder,
	CISize:       Size{N: 48, Steps: 3},
	PaperSize:    Size{N: 256, Steps: 400},
	HeapBytes: func(s Size) int {
		return 8*10*s.N + (1 << 12)
	},
	Seq:  mdSeq,
	Spec: mdSpec,
}

// mdState holds the particle arrays in the simulated address space.
type mdState struct {
	pos, vel, force mem.Addr // 3N float64 each
	n               int
}

func mdInit(t *mutls.Thread, s Size) mdState {
	n := s.N
	st := mdState{
		pos:   t.Alloc(8 * 3 * n),
		vel:   t.Alloc(8 * 3 * n),
		force: t.Alloc(8 * 3 * n),
		n:     n,
	}
	// Deterministic lattice-ish initial positions, zero velocities.
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			v := float64((i*7+d*13)%31)/31.0 + 0.05*float64(d)
			t.StoreFloat64(st.pos+mem.Addr(8*(3*i+d)), v)
			t.StoreFloat64(st.vel+mem.Addr(8*(3*i+d)), 0)
		}
	}
	return st
}

func (st mdState) free(t *mutls.Thread) {
	t.Free(st.pos)
	t.Free(st.vel)
	t.Free(st.force)
}

// mdForces computes forces for particles [lo,hi) against all others. Each
// particle bulk-loads the position array (3n buffered words, the same
// count the per-pair loads charged, in one range access) and bulk-stores
// its force row. Check-point polling is the loop driver's job here: the
// spec drive sets ForOptions.PollEvery, which polls at particle bounds
// and can actually stop the chunk (saving progress for inline
// completion), so a kernel-level poll would only double the charge.
func mdForces(c *mutls.Thread, st mdState, lo, hi int) {
	const eps = 1e-3
	pos := make([]float64, 3*st.n)
	for i := lo; i < hi; i++ {
		c.LoadFloat64s(st.pos, pos)
		xi, yi, zi := pos[3*i], pos[3*i+1], pos[3*i+2]
		var f [3]float64
		for j := 0; j < st.n; j++ {
			if j == i {
				continue
			}
			dx := xi - pos[3*j]
			dy := yi - pos[3*j+1]
			dz := zi - pos[3*j+2]
			r2 := dx*dx + dy*dy + dz*dz + eps
			inv := 1.0 / (r2 * math.Sqrt(r2))
			f[0] += dx * inv
			f[1] += dy * inv
			f[2] += dz * inv
		}
		c.Tick(int64(st.n) * 30)
		c.StoreFloat64s(st.force+mem.Addr(8*3*i), f[:])
	}
}

// mdIntegrate advances particles [lo,hi) one time step with bulk loads and
// stores over the [lo,hi) rows of each array (same per-word charges as the
// scalar form, three range crossings instead of 9(hi-lo) accesses).
func mdIntegrate(c *mutls.Thread, st mdState, lo, hi int) {
	const dt = 1e-4
	m := 3 * (hi - lo)
	off := mem.Addr(8 * 3 * lo)
	vel := make([]float64, m)
	force := make([]float64, m)
	pos := make([]float64, m)
	c.LoadFloat64s(st.vel+off, vel)
	c.LoadFloat64s(st.force+off, force)
	c.LoadFloat64s(st.pos+off, pos)
	for k := 0; k < m; k++ {
		vel[k] += dt * force[k]
		pos[k] += dt * vel[k]
	}
	c.Tick(int64(hi-lo) * 12)
	c.StoreFloat64s(st.vel+off, vel)
	c.StoreFloat64s(st.pos+off, pos)
}

// mdPolicy: at least 4 particles per chunk, at most the paper's 64 chunks.
var mdPolicy = mutls.ChunkPolicy{MaxChunks: 64, MinPerChunk: 4}

func mdChecksum(t *mutls.Thread, st mdState) uint64 {
	sum := uint64(0)
	pos := make([]float64, 3*st.n)
	t.LoadFloat64s(st.pos, pos)
	for _, v := range pos {
		sum = mix(sum, math.Float64bits(v))
	}
	return sum
}

func mdSeq(t *mutls.Thread, s Size) uint64 {
	st := mdInit(t, s)
	defer st.free(t)
	for step := 0; step < s.Steps; step++ {
		mdForces(t, st, 0, st.n)
		mdIntegrate(t, st, 0, st.n)
	}
	return mdChecksum(t, st)
}

func mdSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	st := mdInit(t, s)
	defer st.free(t)
	// Persist carries the adaptive controller's learned chunk size across
	// the per-time-step ForRange runs (instead of re-learning the schedule
	// every step); PollEvery lets parked and squashed chunks stop at a
	// particle boundary instead of draining.
	opts := mutls.ForOptions{
		Model:     o.Model,
		Policy:    mdPolicy,
		Chunker:   mutls.Persist(chunkerFor(o.Chunks, mdPolicy)),
		PollEvery: 1,
	}
	for step := 0; step < s.Steps; step++ {
		// The O(N²) force loop is the speculated loop; the O(N) integration
		// is too small to amortize a fork and runs non-speculatively.
		mutls.ForRange(t, st.n, opts, func(c *mutls.Thread, lo, hi int) {
			mdForces(c, st, lo, hi)
		})
		mdIntegrate(t, st, 0, st.n)
	}
	return mdChecksum(t, st)
}
