package bench

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/mutls"
)

// MD is the paper's 3D molecular dynamics simulation (Table II: 256
// particles, 400 time steps). Each step computes all-pairs soft-sphere
// forces (O(N²) with ~10 floating point operations per pair — computation
// intensive) and then integrates positions and velocities. Both loops are
// speculated in chunks; steps are serialized by their joins, which is why
// the paper's md curve shows the critical path efficiency decaying with
// more CPUs.
var MD = &Workload{
	Name:        "md",
	Description: "3D molecular dynamics simulation",
	Pattern:     "loop",
	Language:    "C/Fortran",
	Class:       "computation",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d particles, %d iteration steps", s.N, s.Steps)
	},
	DefaultModel: mutls.InOrder,
	CISize:       Size{N: 48, Steps: 3},
	PaperSize:    Size{N: 256, Steps: 400},
	HeapBytes: func(s Size) int {
		return 8*10*s.N + (1 << 12)
	},
	Seq:  mdSeq,
	Spec: mdSpec,
}

// mdState holds the particle arrays in the simulated address space.
type mdState struct {
	pos, vel, force mem.Addr // 3N float64 each
	n               int
}

func mdInit(t *mutls.Thread, s Size) mdState {
	n := s.N
	st := mdState{
		pos:   t.Alloc(8 * 3 * n),
		vel:   t.Alloc(8 * 3 * n),
		force: t.Alloc(8 * 3 * n),
		n:     n,
	}
	// Deterministic lattice-ish initial positions, zero velocities.
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			v := float64((i*7+d*13)%31)/31.0 + 0.05*float64(d)
			t.StoreFloat64(st.pos+mem.Addr(8*(3*i+d)), v)
			t.StoreFloat64(st.vel+mem.Addr(8*(3*i+d)), 0)
		}
	}
	return st
}

func (st mdState) free(t *mutls.Thread) {
	t.Free(st.pos)
	t.Free(st.vel)
	t.Free(st.force)
}

// mdForces computes forces for particles [lo,hi) against all others.
func mdForces(c *mutls.Thread, st mdState, lo, hi int) {
	const eps = 1e-3
	for i := lo; i < hi; i++ {
		xi := c.LoadFloat64(st.pos + mem.Addr(8*(3*i)))
		yi := c.LoadFloat64(st.pos + mem.Addr(8*(3*i+1)))
		zi := c.LoadFloat64(st.pos + mem.Addr(8*(3*i+2)))
		var fx, fy, fz float64
		for j := 0; j < st.n; j++ {
			if j == i {
				continue
			}
			dx := xi - c.LoadFloat64(st.pos+mem.Addr(8*(3*j)))
			dy := yi - c.LoadFloat64(st.pos+mem.Addr(8*(3*j+1)))
			dz := zi - c.LoadFloat64(st.pos+mem.Addr(8*(3*j+2)))
			r2 := dx*dx + dy*dy + dz*dz + eps
			inv := 1.0 / (r2 * math.Sqrt(r2))
			fx += dx * inv
			fy += dy * inv
			fz += dz * inv
		}
		c.Tick(int64(st.n) * 30)
		c.StoreFloat64(st.force+mem.Addr(8*(3*i)), fx)
		c.StoreFloat64(st.force+mem.Addr(8*(3*i+1)), fy)
		c.StoreFloat64(st.force+mem.Addr(8*(3*i+2)), fz)
	}
}

// mdIntegrate advances particles [lo,hi) one time step.
func mdIntegrate(c *mutls.Thread, st mdState, lo, hi int) {
	const dt = 1e-4
	for i := lo; i < hi; i++ {
		for d := 0; d < 3; d++ {
			off := mem.Addr(8 * (3*i + d))
			v := c.LoadFloat64(st.vel+off) + dt*c.LoadFloat64(st.force+off)
			c.StoreFloat64(st.vel+off, v)
			c.StoreFloat64(st.pos+off, c.LoadFloat64(st.pos+off)+dt*v)
		}
		c.Tick(12)
	}
}

// mdPolicy: at least 4 particles per chunk, at most the paper's 64 chunks.
var mdPolicy = mutls.ChunkPolicy{MaxChunks: 64, MinPerChunk: 4}

func mdChecksum(t *mutls.Thread, st mdState) uint64 {
	sum := uint64(0)
	for i := 0; i < 3*st.n; i++ {
		sum = mix(sum, math.Float64bits(t.LoadFloat64(st.pos+mem.Addr(8*i))))
	}
	return sum
}

func mdSeq(t *mutls.Thread, s Size) uint64 {
	st := mdInit(t, s)
	defer st.free(t)
	for step := 0; step < s.Steps; step++ {
		mdForces(t, st, 0, st.n)
		mdIntegrate(t, st, 0, st.n)
	}
	return mdChecksum(t, st)
}

func mdSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	st := mdInit(t, s)
	defer st.free(t)
	opts := mutls.ForOptions{Model: o.Model, Policy: mdPolicy, Chunker: chunkerFor(o.Chunks, mdPolicy)}
	for step := 0; step < s.Steps; step++ {
		// The O(N²) force loop is the speculated loop; the O(N) integration
		// is too small to amortize a fork and runs non-speculatively.
		mutls.ForRange(t, st.n, opts, func(c *mutls.Thread, lo, hi int) {
			mdForces(c, st, lo, hi)
		})
		mdIntegrate(t, st, 0, st.n)
	}
	return mdChecksum(t, st)
}
