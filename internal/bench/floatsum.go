package bench

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/mutls"
)

// FloatSum is the float-reduction workload (beyond the paper's Table II;
// ROADMAP "speculative reductions over float64/general monoids"): a fixed-
// order float64 polynomial sum of a float32 array through mutls.ReduceFloat64. The
// fold order is the flat element order in both versions, so the result is
// bit-identical between sequential and speculative runs (RelTol 0 —
// bit-exact accumulator validation). The array repeats a short pattern of
// exact dyadic values, so every equal-sized chunk group adds exactly the
// same float64 delta and the float-arithmetic stride predictor locks on
// after two group boundaries — the continuation forks then commit, which
// is what makes the reduction a speculation workload rather than a serial
// fold. Size.N is the element count.
var FloatSum = &Workload{
	Name:        "floatsum",
	Description: "fixed-order float64 sum (speculative float reduction)",
	Pattern:     "reduction",
	Language:    "Go",
	Class:       "computation",
	AmountOfData: func(s Size) string {
		return fmt.Sprintf("%d float32 values (fold)", s.N)
	},
	DefaultModel: mutls.OutOfOrder,
	CISize:       Size{N: 1 << 15},
	PaperSize:    Size{N: 1 << 22},
	HeapBytes: func(s Size) int {
		return 4*s.N + (1 << 12)
	},
	Seq:  floatSumSeq,
	Spec: floatSumSpec,
}

// floatSumChunks is the fixed chunk split of the fold (one Reduce index
// per chunk; groups of chunks are speculated as continuations).
const floatSumChunks = 64

// floatSumInit is the nonzero fold seed: it bakes the Reduce cold-start
// regression into the benchmark itself — before the warm-gated predictor,
// the first continuation ran from accumulator 0 and could only commit when
// the seed was 0.
const floatSumInit = 0.5

func floatSumFill(t *mutls.Thread, s Size) mem.Addr {
	arr := t.Alloc(4 * s.N)
	vals := make([]float32, s.N)
	for i := range vals {
		// Dyadic pattern values: every partial sum is exact in float64, so
		// equal-sized chunks contribute exactly equal deltas.
		vals[i] = float32(i%8) * 0.25
	}
	t.StoreFloat32s(arr, vals)
	return arr
}

// floatSumChunk folds chunk idx of the array in flat element order,
// bulk-loading the chunk with the float32 slice view.
func floatSumChunk(c *mutls.Thread, arr mem.Addr, n, idx int, acc float64) float64 {
	lo, hi := mutls.ChunkPolicy{}.Bounds(n, floatSumChunks, idx)
	if lo >= hi {
		return acc
	}
	vals := make([]float32, hi-lo)
	c.LoadFloat32s(arr+mem.Addr(4*lo), vals)
	for _, raw := range vals {
		// All inputs are dyadic (k/4) and the polynomial keeps every
		// intermediate exactly representable, so equal chunks add exactly
		// equal float64 deltas and the stride predictor stays exact.
		v := float64(raw)
		acc += v * (0.25 + v*v)
	}
	// 4 flops per element at the md convention of ~3 units per flop.
	c.Tick(int64(hi-lo) * 12)
	return acc
}

func floatSumSeq(t *mutls.Thread, s Size) uint64 {
	arr := floatSumFill(t, s)
	defer t.Free(arr)
	acc := floatSumInit
	for idx := 0; idx < floatSumChunks; idx++ {
		acc = floatSumChunk(t, arr, s.N, idx, acc)
	}
	return mix(0, math.Float64bits(acc))
}

func floatSumSpec(t *mutls.Thread, s Size, o SpecOptions) uint64 {
	arr := floatSumFill(t, s)
	defer t.Free(arr)
	opts := mutls.ReduceFloatOptions{
		Model:     o.Model,
		Predictor: mutls.Stride,
		Chunks:    o.Chunks,
	}
	acc := mutls.ReduceFloat64(t, floatSumChunks, floatSumInit, opts,
		func(c *mutls.Thread, idx int, acc float64) float64 {
			return floatSumChunk(c, arr, s.N, idx, acc)
		})
	return mix(0, math.Float64bits(acc))
}
