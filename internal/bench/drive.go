package bench

import (
	"sort"

	"repro/internal/core"
)

// This file holds the two reusable TLS driving patterns the benchmarks are
// written in, both direct translations of the paper's transformed code:
//
//   - ChunkLoop: loop-level speculation with chained in-order forks (the
//     3x+1/mandelbrot/md/bh shape). Each chunk's region forks the next
//     chunk before doing its own work; the non-speculative thread joins the
//     chain in order, restoring the chained rank from the saved locals and
//     re-executing rolled-back chunks inline.
//
//   - Spawn/DriveSpawns: tree-form recursion (fft/matmult/nqueen/tsp).
//     Speculative regions fork subtrees and stop with SyncParent at their
//     first join point, leaving the forked subtree descriptors in their
//     saved locals (Fig. 2(d)); the non-speculative driver joins the tree
//     in sequential order, adopting each committed region's spawns and
//     re-executing rolled-back subtrees inline.

// ChunkLoop executes body(c, idx) for idx in [0, nChunks) under loop-level
// speculation with the given forking model. body must contain only
// TLS-instrumented work (memory access through c, compute through c.Tick).
func ChunkLoop(t0 *core.Thread, nChunks int, model core.Model, body func(c *core.Thread, idx int)) {
	if nChunks <= 0 {
		return
	}
	var region core.RegionFunc
	fork := func(c *core.Thread, ranks []core.Rank, next int) {
		if next >= nChunks {
			return
		}
		if h := c.Fork(ranks, 0, model); h != nil {
			h.SetRegvarInt64(0, int64(next))
			h.Start(region)
		}
	}
	region = func(c *core.Thread) uint32 {
		idx := int(c.GetRegvarInt64(0))
		ranks := []core.Rank{0}
		fork(c, ranks, idx+1)
		body(c, idx)
		// The chained ranks array is live at the join point: save it for
		// the joining thread (paper §IV-D).
		c.SaveRegvarInt64(1, int64(ranks[0]))
		return 0
	}
	ranks := []core.Rank{0}
	fork(t0, ranks, 1)
	body(t0, 0)
	for idx := 1; idx < nChunks; idx++ {
		res := t0.Join(ranks, 0)
		if res.Committed() {
			ranks[0] = core.Rank(res.RegvarInt64(1))
			continue
		}
		// Rolled back or never forked: run the chunk inline, re-forking
		// the rest of the chain where the model allows.
		ranks[0] = 0
		fork(t0, ranks, idx+1)
		body(t0, idx)
	}
}

// Spawn describes one speculated subtree: the child's rank, a key giving
// the subtree's position in sequential execution order, and up to four
// benchmark-specific parameters that let the driver re-execute the subtree
// inline after a rollback.
type Spawn struct {
	Rank core.Rank
	Seq  int64
	P    [4]int64
}

// spawnSlots is the register-slot footprint of one saved spawn.
const spawnSlots = 6

// SaveSpawns stores a region's spawn list in its saved locals before a
// SyncParent stop. Slot 0 holds the count; each spawn takes spawnSlots.
func SaveSpawns(c *core.Thread, spawns []Spawn) {
	c.SaveRegvarInt64(0, int64(len(spawns)))
	for i, sp := range spawns {
		base := 1 + spawnSlots*i
		c.SaveRegvarInt64(base, int64(sp.Rank))
		c.SaveRegvarInt64(base+1, sp.Seq)
		for j := 0; j < 4; j++ {
			c.SaveRegvarInt64(base+2+j, sp.P[j])
		}
	}
}

// ReadSpawns decodes a committed region's spawn list from the join result.
func ReadSpawns(res core.JoinResult) []Spawn {
	n := int(res.RegvarInt64(0))
	out := make([]Spawn, n)
	for i := range out {
		base := 1 + spawnSlots*i
		out[i].Rank = core.Rank(res.RegvarInt64(base))
		out[i].Seq = res.RegvarInt64(base + 1)
		for j := 0; j < 4; j++ {
			out[i].P[j] = res.RegvarInt64(base + 2 + j)
		}
	}
	return out
}

// FinishRegion ends a tree region: with no spawns it simply completes;
// otherwise it saves them and hands the continuation to the parent chain at
// the region's first join point (synchronization counter 1).
func FinishRegion(c *core.Thread, spawns []Spawn) uint32 {
	SaveSpawns(c, spawns)
	if len(spawns) == 0 {
		return 0
	}
	c.SyncParent(1)
	return 0 // not reached speculatively
}

// DriveSpawns joins the speculated tree in sequential order. For every
// spawn it joins the child; on commit the child's own spawns (decoded from
// the saved locals) are spliced in and onCommit (if non-nil) consumes the
// join result (e.g. a count carried in the saved locals); on rollback
// reexec runs the subtree inline and returns any fresh spawns it made.
// Spawn Seq keys must nest: a child's key lies within its parent's
// sequential interval.
func DriveSpawns(t0 *core.Thread, roots []Spawn,
	reexec func(t0 *core.Thread, sp Spawn) []Spawn,
	onCommit func(sp Spawn, res core.JoinResult)) {
	queue := append([]Spawn(nil), roots...)
	sortSpawns(queue)
	for len(queue) > 0 {
		sp := queue[0]
		queue = queue[1:]
		rk := []core.Rank{sp.Rank}
		res := t0.Join(rk, 0)
		var next []Spawn
		if res.Committed() {
			next = ReadSpawns(res)
			if onCommit != nil {
				onCommit(sp, res)
			}
		} else {
			next = reexec(t0, sp)
		}
		if len(next) > 0 {
			sortSpawns(next)
			queue = append(next, queue...)
		}
	}
}

func sortSpawns(s []Spawn) {
	sort.Slice(s, func(i, j int) bool { return s[i].Seq < s[j].Seq })
}
