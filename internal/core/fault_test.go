package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSpecPanicBecomesRollbackFault: a panic inside a speculative region
// is a misspeculation, not a crash — the join reports RollbackFault, the
// parent re-executes in order, and the fault lands in the statistics.
func TestSpecPanicBecomesRollbackFault(t *testing.T) {
	rt := newRT(t, 2, nil)
	var got int64
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork failed with idle CPUs")
		}
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 { panic("spec boom") })
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack {
			t.Fatalf("join status %v, want rolled back", res.Status)
		}
		if res.Reason != RollbackFault {
			t.Fatalf("rollback reason %v, want fault", res.Reason)
		}
		// The driver contract after any rollback: re-execute in order.
		t0.StoreInt64(arr, 42)
		got = t0.LoadInt64(arr)
		t0.Free(arr)
	})
	if got != 42 {
		t.Fatalf("in-order re-execution read %d", got)
	}
	f := rt.Stats().Faults
	if f.SpecPanics != 1 {
		t.Errorf("SpecPanics = %d, want 1", f.SpecPanics)
	}
	if len(f.Records) != 1 || !strings.Contains(f.Records[0].Value, "spec boom") {
		t.Errorf("fault records %+v missing the panic value", f.Records)
	}
	if len(f.Records) == 1 && f.Records[0].Stack == "" {
		t.Error("fault record has no stack capture")
	}
}

// TestKernelPanicContained: a panic on the non-speculative thread surfaces
// as a typed *KernelPanic from RunCtx, and the runtime drains and stays
// reusable afterwards.
func TestKernelPanicContained(t *testing.T) {
	rt := newRT(t, 2, nil)
	_, err := rt.RunCtx(context.Background(), func(t0 *Thread) { panic("kernel boom") })
	var kp *KernelPanic
	if !errors.As(err, &kp) {
		t.Fatalf("RunCtx error %v (%T), want *KernelPanic", err, err)
	}
	if !strings.Contains(kp.Error(), "kernel boom") {
		t.Errorf("KernelPanic message %q missing the panic value", kp.Error())
	}
	if len(kp.Stack) == 0 {
		t.Error("KernelPanic has no stack capture")
	}
	if !rt.Quiescent() {
		t.Fatal("runtime not quiescent after a contained kernel panic")
	}
	if n := rt.Stats().Faults.KernelPanics; n != 1 {
		t.Errorf("KernelPanics = %d, want 1", n)
	}
	var got int64
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(8)
		t0.StoreInt64(p, 7)
		got = t0.LoadInt64(p)
		t0.Free(p)
	})
	if got != 7 {
		t.Fatalf("runtime unusable after contained panic: got %d", got)
	}
}

// TestRunRepanicsKernelPanicTyped: the panicking Run form re-raises the
// contained fault as the typed *KernelPanic so callers can distinguish a
// kernel fault from a runtime bug.
func TestRunRepanicsKernelPanicTyped(t *testing.T) {
	rt := newRT(t, 2, nil)
	defer func() {
		kp, ok := recover().(*KernelPanic)
		if !ok {
			t.Fatal("Run did not re-panic with *KernelPanic")
		}
		if !strings.Contains(kp.Error(), "typed boom") {
			t.Errorf("re-panic message %q", kp.Error())
		}
	}()
	rt.Run(func(t0 *Thread) { panic("typed boom") })
	t.Fatal("Run returned normally")
}

// TestPanicThroughOpenForkWindow: a kernel panic between Fork and Start
// unwinds through an open fork window; the claimed CPU must be abandoned
// (or the drain hangs) and remain usable for the next run.
func TestPanicThroughOpenForkWindow(t *testing.T) {
	for _, model := range []Model{InOrder, Mixed, MixedLinear} {
		rt := newRT(t, 2, nil)
		_, err := rt.RunCtx(context.Background(), func(t0 *Thread) {
			ranks := make([]Rank, 1)
			if h := t0.Fork(ranks, 0, model); h == nil {
				t.Fatal("fork failed with idle CPUs")
			}
			panic("between fork and start")
		})
		var kp *KernelPanic
		if !errors.As(err, &kp) {
			t.Fatalf("%v: error %v, want *KernelPanic", model, err)
		}
		rt.Run(func(t0 *Thread) {
			ranks := make([]Rank, 1)
			h := t0.Fork(ranks, 0, model)
			if h == nil {
				t.Fatalf("%v: CPU not reclaimed after abandoned fork", model)
			}
			h.Start(func(c *Thread) uint32 { return 0 })
			if res := t0.Join(ranks, 0); res.Status != JoinCommitted {
				t.Fatalf("%v: join after abandoned fork: %v", model, res.Status)
			}
		})
		rt.Close()
	}
}

// TestRepeatedFaultsDisablePoint: a fork point that faults
// faultDisableThreshold times is refused from then on — a deterministically
// faulting kernel degrades to (correct) sequential execution instead of a
// squash loop.
func TestRepeatedFaultsDisablePoint(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		for i := 0; i < faultDisableThreshold; i++ {
			h := t0.Fork(ranks, 0, Mixed)
			if h == nil {
				t.Fatalf("fork %d refused before the fault threshold", i)
			}
			h.Start(func(c *Thread) uint32 { panic("always faults") })
			if res := t0.Join(ranks, 0); res.Status != JoinRolledBack || res.Reason != RollbackFault {
				t.Fatalf("iteration %d: %v/%v", i, res.Status, res.Reason)
			}
		}
		if h := t0.Fork(ranks, 0, Mixed); h != nil {
			t.Fatal("fork still allowed after the fault threshold")
		}
	})
	if n := rt.PointFaults(0); n != faultDisableThreshold {
		t.Errorf("PointFaults(0) = %d, want %d", n, faultDisableThreshold)
	}
	if _, _, disabled := rt.PointProfile(0); !disabled {
		t.Error("point not disabled after repeated faults")
	}
	if n := rt.Stats().Faults.SpecPanics; n != faultDisableThreshold {
		t.Errorf("SpecPanics = %d, want %d", n, faultDisableThreshold)
	}
}

// TestWatchdogKillsRunaway: a speculative region that outlives
// Options.SpecDeadline is squashed at its next poll with RollbackDeadline
// and counted as a watchdog kill.
func TestWatchdogKillsRunaway(t *testing.T) {
	rt := newRT(t, 1, func(o *Options) { o.SpecDeadline = 2 * time.Millisecond })
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork failed with an idle CPU")
		}
		h.Start(func(c *Thread) uint32 {
			for {
				if c.CheckPoint() {
					return 0
				}
			}
		})
		// Let the runaway outlive its deadline before signalling the join.
		time.Sleep(50 * time.Millisecond)
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack {
			t.Fatalf("join status %v, want rolled back", res.Status)
		}
		if res.Reason != RollbackDeadline {
			t.Fatalf("rollback reason %v, want deadline", res.Reason)
		}
	})
	if k := rt.Stats().Faults.WatchdogKills; k == 0 {
		t.Error("watchdog kill not counted")
	}
}
