package core

import (
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/lbuf"
	"repro/internal/mem"
	"repro/internal/predict"
	"repro/internal/vclock"
)

// JoinStatus is the outcome of __builtin_MUTLS_join(p).
type JoinStatus uint8

const (
	// JoinNotForked: no thread was speculated on the point; the joining
	// thread simply executes the region itself.
	JoinNotForked JoinStatus = iota
	// JoinCommitted: the speculative thread validated and committed; the
	// joining thread restores its saved locals and resumes at the returned
	// synchronization counter.
	JoinCommitted
	// JoinRolledBack: the speculative execution was discarded; the joining
	// thread re-executes the region.
	JoinRolledBack
)

// String names the status.
func (s JoinStatus) String() string {
	switch s {
	case JoinNotForked:
		return "not-forked"
	case JoinCommitted:
		return "committed"
	case JoinRolledBack:
		return "rolled-back"
	}
	return fmt.Sprintf("JoinStatus(%d)", uint8(s))
}

// JoinResult carries everything the synchronization table needs: the
// child's stop counter, its saved locals, nested frame records for stack
// reconstruction, and the pointer mappings for committed stack pointers.
type JoinResult struct {
	Status JoinStatus
	// Counter is the synchronization counter at which the child stopped:
	// 0 means it ran to the region's end (its barrier); non-zero values
	// index the resume blocks of the region.
	Counter uint32
	// Reason explains a rollback.
	Reason RollbackReason
	// Latency is the interval the speculative execution occupied its
	// virtual CPU (virtual units or nanoseconds), for committed and
	// rolled-back joins alike; zero when the point was never forked or the
	// child was squashed before this join reached it.
	Latency vclock.Cost
	// ReadSetPeak/WriteSetPeak are the execution's GlobalBuffer
	// high-water marks (words) — the buffer pressure this chunk of work
	// generated, available to feedback-driven policies at the join.
	ReadSetPeak  int
	WriteSetPeak int

	regs    []uint64
	regLive []bool
	frames  []lbuf.FrameRecord
	ptrMap  func(mem.Addr) (mem.Addr, bool)
}

// ValidateRegvarInt64 is MUTLS_validate_local_int64: the joining thread
// checks that the value it predicted for a live register at fork time
// matches the actual value now that it reached the join point. A mismatch
// forces the speculative thread to roll back.
func (t *Thread) ValidateRegvarInt64(ranks []Rank, p int, slot int, actual int64) {
	t.validateRegvar(ranks, p, slot, uint64(actual))
}

// ValidateRegvarInt32 validates an int32 prediction.
func (t *Thread) ValidateRegvarInt32(ranks []Rank, p int, slot int, actual int32) {
	t.validateRegvar(ranks, p, slot, uint64(uint32(actual)))
}

// ValidateRegvarFloat64 validates a float64 prediction.
func (t *Thread) ValidateRegvarFloat64(ranks []Rank, p int, slot int, actual float64) {
	t.validateRegvar(ranks, p, slot, math.Float64bits(actual))
}

// ValidateRegvarFloat64Rel validates a float64 prediction under a relative
// tolerance: the fork-time value passes when it lies within relTol of the
// actual value (predict.WithinRelTol), the tolerance-based float value
// prediction mode of the related work. relTol 0 is bit-exact, identical to
// ValidateRegvarFloat64. With a positive tolerance a committed speculation
// may have run from a slightly wrong live-in, so the caller is accepting
// approximate results bounded by the tolerance's propagation through the
// region — only enable it for reductions that tolerate that.
func (t *Thread) ValidateRegvarFloat64Rel(ranks []Rank, p int, slot int, actual, relTol float64) {
	if p < 0 || p >= len(ranks) || ranks[p] == 0 {
		return
	}
	td := &t.rt.cpus[ranks[p]].td
	if slot < 0 || slot >= len(td.forkRegs) || !td.forkLive[slot] {
		td.forceInvalid.Store(true)
		return
	}
	pred := math.Float64frombits(td.forkRegs[slot])
	if !predict.WithinRelTol(pred, actual, relTol) {
		td.forceInvalid.Store(true)
	}
}

// ValidateRegvarAddr validates a pointer prediction.
func (t *Thread) ValidateRegvarAddr(ranks []Rank, p int, slot int, actual mem.Addr) {
	t.validateRegvar(ranks, p, slot, uint64(actual))
}

func (t *Thread) validateRegvar(ranks []Rank, p int, slot int, actual uint64) {
	if p < 0 || p >= len(ranks) || ranks[p] == 0 {
		return
	}
	td := &t.rt.cpus[ranks[p]].td
	if slot < 0 || slot >= len(td.forkRegs) || !td.forkLive[slot] || td.forkRegs[slot] != actual {
		td.forceInvalid.Store(true)
	}
}

// Join is __builtin_MUTLS_join(p) / MUTLS_synchronize: it locates the
// speculative thread of point p in this thread's children stack following
// the mixed-model protocol of §IV-F — popping mismatched children (which
// get NOSYNC and squash their own subtrees), then synchronizing with the
// match, adopting its children whether it commits or rolls back, and
// reclaiming its CPU.
//
// Only the non-speculative thread synchronizes. A speculative thread that
// reaches a join point where it forked a child cannot commit that child to
// main memory (it may itself roll back); per Figure 2(d) it validates the
// child's predicted locals, saves its own live locals and stops with
// SyncParent — the non-speculative thread resumes at that counter and
// performs the join. Joins therefore happen in reverse in-order traversal
// of the thread tree, which is the sequential execution order, so every
// ancestor's writes are committed before a descendant validates against
// main memory.
func (t *Thread) Join(ranks []Rank, p int) JoinResult {
	if t.speculative {
		panic("core: Join on a speculative thread — use SyncParent at speculative join points (Fig. 2(d))")
	}
	if p < 0 || p >= len(ranks) {
		panic(fmt.Sprintf("core: join point %d out of range", p))
	}
	want := ranks[p]
	if want == 0 {
		return JoinResult{Status: JoinNotForked}
	}
	t.injectAt(faultinject.SiteJoin)
	ranks[p] = 0 // allow speculation on the point again, in either case

	cs := t.childrenRef()
	var ref childRef
	found := false
	for len(*cs) > 0 {
		c := (*cs)[len(*cs)-1]
		*cs = (*cs)[:len(*cs)-1]
		if c.rank == want {
			ref = c
			found = true
			break
		}
		// The program violated the mixed-model assumption: squash.
		t.rt.cpus[c.rank].td.signal(c.epoch, syncNoSync)
	}
	if !found {
		// The child was already squashed elsewhere; the paper returns
		// false and the joining thread re-executes.
		return JoinResult{Status: JoinRolledBack, Reason: RollbackNoSync}
	}

	child := t.rt.cpus[want]
	td := &child.td
	cost := t.clock.Model

	// Signal SYNC and wait for valid_status (the flag-based barrier; a
	// short spin, then parked on the child's gate).
	t.clock.Charge(vclock.Join, cost.SyncCost)
	td.syncTime.Store(t.clock.Now())
	if !td.signal(ref.epoch, syncSync) {
		// A third party squashed the child first (linear cascade), or the
		// epoch is stale because the squashed child already self-released:
		// the speculation is gone either way.
		return JoinResult{Status: JoinRolledBack, Reason: RollbackNoSync}
	}
	idleStop := t.clock.Span(vclock.Idle)
	td.gate.wait(func() bool { return td.validStatus.Load() != validNull })
	idleStop()
	committed := td.validStatus.Load() == validCommit

	// Adopt the child's children in both outcomes: local conflicts must not
	// discard the subtree's committed-future work (§IV-F).
	if len(td.children) > 0 {
		*cs = append(*cs, td.children...)
		for _, g := range td.children {
			gtd := &t.rt.cpus[g.rank].td
			// Skip stale grandchildren (already squashed and reclaimed):
			// the epoch check keeps us from touching a new occupant.
			if gtd.epoch() == g.epoch {
				gtd.parentRank.Store(int32(t.rank))
			}
		}
		td.children = td.children[:0]
	}

	// The joining thread idles until the child finishes validation and
	// commit; under virtual timing the gap is explicit.
	t.clock.AdvanceTo(td.finalTime, vclock.Idle)

	res := JoinResult{
		Reason:       td.reason,
		Latency:      td.finalTime - td.startTime,
		ReadSetPeak:  td.readPeak,
		WriteSetPeak: td.writePeak,
	}
	if committed {
		res.Status = JoinCommitted
		res.Counter = td.stopCounter
		regs, live := child.lb.EntryRegs()
		res.regs, res.regLive = regs, live
		res.frames = child.lb.Records()
		nLive := 0
		for _, l := range live {
			if l {
				nLive++
			}
		}
		t.clock.Charge(vclock.Join, cost.RestoreLocal*vclock.Cost(nLive))
		t.commitStackvars(child)
		res.ptrMap = stackPtrMapper(child.lb)
	} else {
		res.Status = JoinRolledBack
		if td.model == MixedLinear {
			// The linear mixed baseline squashes every logically later
			// thread on a rollback — the cascade the tree model avoids.
			t.rt.linearSquash(want)
		}
	}
	if td.model == MixedLinear {
		t.rt.linearRemove(want)
	}
	t.rt.heur.observe(td.point, committed)
	t.rt.releaseCPU(child, td.finalTime)
	return res
}

// ChildMark returns the current depth of the thread's children stack, a
// cursor for SquashChildren.
func (t *Thread) ChildMark() int { return len(*t.childrenRef()) }

// SquashChildren signals NOSYNC to every child pushed above mark and pops
// them from the children stack. Loop drivers use it after a rolled-back
// join to discard the abandoned downstream speculation chain (adopted from
// the rolled-back thread) instead of leaving it stranded on its virtual
// CPUs until the end of the run; the squashed threads self-release their
// CPUs, which the re-forked chain can then reclaim.
//
// Squashing also hands the in-order fork mantle back to this thread:
// every in-order descendant is now dead, so waiting for the old tail
// thread to drain before re-forking (the mantle's normal release path)
// would only serialize the recovery. The handback races with a squashed
// descendant that is already inside an in-order Fork and has not yet
// noticed its NOSYNC: it may store its doomed child's word over the
// mantle, transiently refusing in-order forks again. The window is
// narrow and self-healing — the doomed child's release CASes the tail
// back to 0 — and the loop drivers degrade to inline execution (never
// incorrectness) while it lasts.
func (t *Thread) SquashChildren(mark int) {
	if mark < 0 {
		mark = 0
	}
	cs := t.childrenRef()
	if len(*cs) <= mark {
		return
	}
	for len(*cs) > mark {
		c := (*cs)[len(*cs)-1]
		*cs = (*cs)[:len(*cs)-1]
		t.rt.cpus[c.rank].td.signal(c.epoch, syncNoSync)
	}
	t.rt.inOrderTail.Store(t.tailWord())
}

// commitStackvars writes the child's final stack-variable bytes back to
// their non-speculative homes (the parent side of MUTLS_get_stackvar_*).
func (t *Thread) commitStackvars(child *cpu) {
	for _, m := range child.lb.PtrMappings() {
		data, err := child.lb.EntryStackvarData(m.Slot)
		if err != nil {
			continue
		}
		t.StoreBytes(m.Home, data)
	}
}

// stackPtrMapper snapshots the child's pointer mappings into a standalone
// translation function usable after the CPU is reclaimed.
func stackPtrMapper(lb *lbuf.Buffer) func(mem.Addr) (mem.Addr, bool) {
	ms := lb.PtrMappings()
	return func(p mem.Addr) (mem.Addr, bool) {
		for _, m := range ms {
			if m.Bound != mem.NilAddr && p >= m.Bound && p < m.Bound+mem.Addr(m.Size) {
				return m.Home + (p - m.Bound), true
			}
		}
		return p, false
	}
}

// regvar fetches one restored local from the join result.
func (r *JoinResult) regvar(slot int) uint64 {
	if r.Status != JoinCommitted {
		panic("core: Regvar on a join that did not commit")
	}
	if slot < 0 || slot >= len(r.regs) || !r.regLive[slot] {
		panic(fmt.Sprintf("core: regvar slot %d was not saved by the region", slot))
	}
	return r.regs[slot]
}

// RegvarInt64 restores an int64 the region saved before stopping.
func (r *JoinResult) RegvarInt64(slot int) int64 { return int64(r.regvar(slot)) }

// RegvarInt32 restores an int32 the region saved before stopping.
func (r *JoinResult) RegvarInt32(slot int) int32 { return int32(uint32(r.regvar(slot))) }

// RegvarFloat64 restores a float64 the region saved before stopping.
func (r *JoinResult) RegvarFloat64(slot int) float64 {
	return math.Float64frombits(r.regvar(slot))
}

// RegvarAddr restores a pointer the region saved before stopping, applying
// the paper's pointer mapping mechanism: pointers into the speculative
// stack are translated to the corresponding non-speculative stack variable.
func (r *JoinResult) RegvarAddr(slot int) mem.Addr {
	p := mem.Addr(r.regvar(slot))
	if r.ptrMap != nil {
		if mapped, ok := r.ptrMap(p); ok {
			return mapped
		}
	}
	return p
}

// RegvarLive reports whether the region saved the given slot.
func (r *JoinResult) RegvarLive(slot int) bool {
	return slot >= 0 && slot < len(r.regLive) && r.regLive[slot]
}

// Frames returns the child's nested frame records (outermost first) for
// stack frame reconstruction: the joining thread replays the recorded call
// chain, re-entering each function at its recorded call site
// (MUTLS_synchronize_entry).
func (r *JoinResult) Frames() []lbuf.FrameRecord { return r.frames }

// Committed is a convenience predicate.
func (r *JoinResult) Committed() bool { return r.Status == JoinCommitted }
