package core

import "testing"

// TestAllocPointDistinctRoundRobin pins the allocator contract: ids walk
// [0, MaxPoints) in order and wrap, and a block allocation is internally
// distinct.
func TestAllocPointDistinctRoundRobin(t *testing.T) {
	rt := newRT(t, 1, nil)
	max := rt.MaxPoints()
	for i := 0; i < 2*max; i++ {
		if p := rt.AllocPoint(); p != i%max {
			t.Fatalf("alloc %d = point %d, want %d", i, p, i%max)
		}
	}
	ps := rt.AllocPoints(max)
	seen := make(map[int]bool, max)
	for _, p := range ps {
		if seen[p] {
			t.Fatalf("AllocPoints handed out point %d twice", p)
		}
		seen[p] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AllocPoints beyond MaxPoints did not panic")
		}
	}()
	rt.AllocPoints(max + 1)
}

// TestAllocPointResetsHeuristic: a point the adaptive fork heuristic
// disabled for one loop must come back enabled (with a clean profile) when
// the allocator recycles its id to a different run — otherwise an
// unrelated loop inheriting the id would silently run serial forever.
func TestAllocPointResetsHeuristic(t *testing.T) {
	rt := newRT(t, 1, func(o *Options) {
		o.AdaptiveForkHeuristic = true
		o.HeuristicMinSamples = 2
		o.HeuristicMaxRollbackRate = 0.4
	})
	rt.heur.observe(5, false)
	rt.heur.observe(5, false)
	if _, _, disabled := rt.PointProfile(5); !disabled {
		t.Fatal("rollback-heavy point was not disabled")
	}
	for i := 0; i < rt.MaxPoints(); i++ {
		if p := rt.AllocPoint(); p == 5 {
			break
		}
	}
	c, r, disabled := rt.PointProfile(5)
	if disabled || c != 0 || r != 0 {
		t.Fatalf("recycled point kept its old profile: commits=%d rollbacks=%d disabled=%v", c, r, disabled)
	}
}
