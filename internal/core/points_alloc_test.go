package core

import "testing"

// TestAllocPointExhaustion: ids freed by finished runs are reused without
// aliasing, and only more than MaxPoints *simultaneously live* runs trip
// the exhaustion counter — which Summary surfaces so a long-lived
// multi-tenant runtime can see its feedback quality degrade.
func TestAllocPointExhaustion(t *testing.T) {
	rt := newRT(t, 1, func(o *Options) { o.MaxPoints = 4 })
	var ps []int
	for i := 0; i < 4; i++ {
		ps = append(ps, rt.AllocPoint())
	}
	if got := rt.PointsExhausted(); got != 0 {
		t.Fatalf("PointsExhausted = %d after filling the namespace, want 0", got)
	}
	// Alloc/free churn at full-minus-one occupancy never aliases.
	rt.FreePoint(ps[2])
	for i := 0; i < 10; i++ {
		p := rt.AllocPoint()
		if p != 2 {
			t.Fatalf("alloc with only id 2 free returned %d", p)
		}
		rt.FreePoint(p)
	}
	if got := rt.PointsExhausted(); got != 0 {
		t.Fatalf("PointsExhausted = %d under churn, want 0", got)
	}
	// A fifth simultaneously live run must alias — and be counted.
	rt.AllocPoint()
	p := rt.AllocPoint()
	if p < 0 || p >= 4 {
		t.Fatalf("aliased point %d out of range", p)
	}
	if got := rt.PointsExhausted(); got != 1 {
		t.Fatalf("PointsExhausted = %d after aliasing alloc, want 1", got)
	}
	if got := rt.Stats().PointsExhausted; got != 1 {
		t.Fatalf("Summary.PointsExhausted = %d, want 1", got)
	}
	// ResetStats clears the counter; ResetPoints clears the namespace.
	rt.ResetStats()
	if got := rt.Stats().PointsExhausted; got != 0 {
		t.Fatalf("Summary.PointsExhausted = %d after ResetStats, want 0", got)
	}
	rt.ResetPoints()
	for i := 0; i < 4; i++ {
		if p := rt.AllocPoint(); p != i {
			t.Fatalf("post-reset alloc %d = %d, want %d", i, p, i)
		}
	}
	if got := rt.PointsExhausted(); got != 0 {
		t.Fatalf("PointsExhausted = %d after ResetPoints refill, want 0", got)
	}
}

// TestAllocPointDistinctRoundRobin pins the allocator contract: ids walk
// [0, MaxPoints) in order and wrap, and a block allocation is internally
// distinct.
func TestAllocPointDistinctRoundRobin(t *testing.T) {
	rt := newRT(t, 1, nil)
	max := rt.MaxPoints()
	for i := 0; i < 2*max; i++ {
		if p := rt.AllocPoint(); p != i%max {
			t.Fatalf("alloc %d = point %d, want %d", i, p, i%max)
		}
	}
	ps := rt.AllocPoints(max)
	seen := make(map[int]bool, max)
	for _, p := range ps {
		if seen[p] {
			t.Fatalf("AllocPoints handed out point %d twice", p)
		}
		seen[p] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AllocPoints beyond MaxPoints did not panic")
		}
	}()
	rt.AllocPoints(max + 1)
}

// TestAllocPointResetsHeuristic: a point the adaptive fork heuristic
// disabled for one loop must come back enabled (with a clean profile) when
// the allocator recycles its id to a different run — otherwise an
// unrelated loop inheriting the id would silently run serial forever.
func TestAllocPointResetsHeuristic(t *testing.T) {
	rt := newRT(t, 1, func(o *Options) {
		o.AdaptiveForkHeuristic = true
		o.HeuristicMinSamples = 2
		o.HeuristicMaxRollbackRate = 0.4
	})
	rt.heur.observe(5, false)
	rt.heur.observe(5, false)
	if _, _, disabled := rt.PointProfile(5); !disabled {
		t.Fatal("rollback-heavy point was not disabled")
	}
	for i := 0; i < rt.MaxPoints(); i++ {
		if p := rt.AllocPoint(); p == 5 {
			break
		}
	}
	c, r, disabled := rt.PointProfile(5)
	if disabled || c != 0 || r != 0 {
		t.Fatalf("recycled point kept its old profile: commits=%d rollbacks=%d disabled=%v", c, r, disabled)
	}
}
