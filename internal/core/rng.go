package core

// splitMix64 is a tiny deterministic generator for the Figure 11 forced
// rollback experiment. Each virtual CPU owns one, so draws never contend
// and runs are reproducible for a fixed seed.
type splitMix64 struct{ state uint64 }

func newSplitMix64(seed uint64) splitMix64 { return splitMix64{state: seed} }

func (s *splitMix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}
