package core
