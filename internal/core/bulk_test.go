package core

import (
	"testing"

	"repro/internal/gbuf"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// TestBulkAccessorsRoundTrip checks the typed slice accessors and the
// rebuilt LoadBytes/StoreBytes against the scalar accessors on the
// non-speculative thread.
func TestBulkAccessorsRoundTrip(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(1024)

		fs := []float64{1.5, -2.25, 3.75, 1e-9}
		t0.StoreFloat64s(p, fs)
		for i, want := range fs {
			if got := t0.LoadFloat64(p + mem.Addr(8*i)); got != want {
				t.Fatalf("float64 %d = %v, want %v", i, got, want)
			}
		}
		back := make([]float64, len(fs))
		t0.LoadFloat64s(p, back)
		for i := range fs {
			if back[i] != fs[i] {
				t.Fatalf("LoadFloat64s %d = %v, want %v", i, back[i], fs[i])
			}
		}

		is := []int64{-1, 42, 1 << 50, 0}
		t0.StoreInt64s(p+256, is)
		iback := make([]int64, len(is))
		t0.LoadInt64s(p+256, iback)
		for i := range is {
			if iback[i] != is[i] {
				t.Fatalf("LoadInt64s %d = %d, want %d", i, iback[i], is[i])
			}
		}

		ws := []uint64{0xDEADBEEF, ^uint64(0), 7}
		t0.StoreWords(p+512, ws)
		wback := make([]uint64, len(ws))
		t0.LoadWords(p+512, wback)
		for i := range ws {
			if wback[i] != ws[i] {
				t.Fatalf("LoadWords %d = %#x, want %#x", i, wback[i], ws[i])
			}
		}

		// Misaligned byte spans: head/tail decomposition round trip.
		src := make([]byte, 61)
		for i := range src {
			src[i] = byte(3*i + 1)
		}
		t0.StoreBytes(p+5, src)
		dst := make([]byte, len(src))
		t0.LoadBytes(p+5, dst)
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("byte %d = %#x, want %#x", i, dst[i], src[i])
			}
			if got := t0.LoadUint8(p + 5 + mem.Addr(i)); got != src[i] {
				t.Fatalf("scalar byte %d = %#x, want %#x", i, got, src[i])
			}
		}
	})
}

// TestBulkChargesPerDecomposedGroup is the regression test for the
// misaligned head/tail charging fix: an n-byte span charges one access per
// decomposed group of the paper's size>WORD splitting rule (maximal
// aligned sub-accesses plus one charge per middle word), not one per byte.
func TestBulkChargesPerDecomposedGroup(t *testing.T) {
	rt := newRT(t, 1, nil)
	model := rt.Options().Cost
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(2048)
		off := p + 5 - mem.Addr(uint64(p)%8) // off ≡ 5 (mod 8)
		buf := make([]byte, 16)

		// [off, off+16) decomposes into 1@+0, 2@+1, word@+3, 4@+11, 1@+15:
		// five access groups (the old per-byte fallback charged nine).
		const groups = 5
		before := t0.Now()
		t0.LoadBytes(off, buf)
		if d := t0.Now() - before; d != groups*model.DirectAccess {
			t.Fatalf("misaligned LoadBytes charged %d, want %d groups x %d",
				d, groups, model.DirectAccess)
		}
		before = t0.Now()
		t0.StoreBytes(off, buf)
		if d := t0.Now() - before; d != groups*model.DirectAccess {
			t.Fatalf("misaligned StoreBytes charged %d, want %d groups x %d",
				d, groups, model.DirectAccess)
		}

		// An aligned 1 KiB span charges exactly its 128 words, batched.
		big := make([]byte, 1024)
		wordBase := p + 8 - mem.Addr(uint64(p)%8)
		before = t0.Now()
		t0.LoadBytes(wordBase, big)
		if d := t0.Now() - before; d != 128*model.DirectAccess {
			t.Fatalf("aligned LoadBytes charged %d, want %d", d, 128*model.DirectAccess)
		}
	})
}

// TestBulkChargesSpeculative checks the same charging contract on the
// buffered path: a speculative 1 KiB aligned span costs 128 BufferedAccess
// units in one batched charge, and a misaligned span costs its groups.
func TestBulkChargesSpeculative(t *testing.T) {
	rt := newRT(t, 1, nil)
	model := rt.Options().Cost
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(2048)
		wordBase := p + 8 - mem.Addr(uint64(p)%8)
		ranks := []Rank{0}
		h := t0.Fork(ranks, 0, OutOfOrder)
		if h == nil {
			t.Fatal("fork refused")
		}
		h.SetRegvarAddr(0, wordBase)
		h.Start(func(c *Thread) uint32 {
			base := c.GetRegvarAddr(0)
			buf := make([]byte, 1024)
			before := c.Now()
			c.LoadBytes(base, buf)
			c.SaveRegvarInt64(1, int64(c.Now()-before))
			before = c.Now()
			c.StoreBytes(base+5, buf[:16])
			c.SaveRegvarInt64(2, int64(c.Now()-before))
			return 0
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("join: %v (%v)", res.Status, res.Reason)
		}
		if d := res.RegvarInt64(1); d != 128*model.BufferedAccess {
			t.Fatalf("speculative aligned LoadBytes charged %d, want %d",
				d, 128*model.BufferedAccess)
		}
		if d := res.RegvarInt64(2); d != 5*model.BufferedAccess {
			t.Fatalf("speculative misaligned StoreBytes charged %d, want 5 x %d",
				d, model.BufferedAccess)
		}
	})
}

// TestBulkSpeculativeCommit drives typed bulk stores through a speculative
// region on every backend and checks the committed memory and the
// sequential equivalence with scalar stores.
func TestBulkSpeculativeCommit(t *testing.T) {
	for _, backend := range gbuf.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			rt := newRT(t, 1, func(o *Options) {
				o.GBuf = gbuf.Config{Backend: backend}
			})
			rt.Run(func(t0 *Thread) {
				p := t0.Alloc(1024)
				n := 64
				ranks := []Rank{0}
				h := t0.Fork(ranks, 0, OutOfOrder)
				if h == nil {
					t.Fatal("fork refused")
				}
				h.SetRegvarAddr(0, p)
				h.Start(func(c *Thread) uint32 {
					base := c.GetRegvarAddr(0)
					vals := make([]float64, n)
					c.LoadFloat64s(base, vals) // snapshot the zeroed range
					for i := range vals {
						vals[i] += float64(i) * 1.25
					}
					c.StoreFloat64s(base, vals)
					return 0
				})
				res := t0.Join(ranks, 0)
				if !res.Committed() {
					t.Fatalf("join: %v (%v)", res.Status, res.Reason)
				}
				for i := 0; i < n; i++ {
					want := float64(i) * 1.25
					if got := t0.LoadFloat64(p + mem.Addr(8*i)); got != want {
						t.Fatalf("committed word %d = %v, want %v", i, got, want)
					}
				}
			})
		})
	}
}

// refLoadBytes/refStoreBytes replicate the pre-bulk LoadBytes/StoreBytes
// (per-byte head/tail, one buffered access per word, per-byte packing) as
// the comparison baseline for the throughput benchmarks below.
func refLoadBytes(t *Thread, p mem.Addr, dst []byte) {
	i := 0
	n := len(dst)
	for i < n && !mem.Aligned(p+mem.Addr(i), mem.Word) {
		dst[i] = t.LoadUint8(p + mem.Addr(i))
		i++
	}
	for ; i+mem.Word <= n; i += mem.Word {
		v := t.load(p+mem.Addr(i), mem.Word)
		for b := 0; b < mem.Word; b++ {
			dst[i+b] = byte(v >> (8 * b))
		}
	}
	for ; i < n; i++ {
		dst[i] = t.LoadUint8(p + mem.Addr(i))
	}
}

func refStoreBytes(t *Thread, p mem.Addr, src []byte) {
	i := 0
	n := len(src)
	for i < n && !mem.Aligned(p+mem.Addr(i), mem.Word) {
		t.StoreUint8(p+mem.Addr(i), src[i])
		i++
	}
	for ; i+mem.Word <= n; i += mem.Word {
		var v uint64
		for b := mem.Word - 1; b >= 0; b-- {
			v = v<<8 | uint64(src[i+b])
		}
		t.store(p+mem.Addr(i), mem.Word, v)
	}
	for ; i < n; i++ {
		t.StoreUint8(p+mem.Addr(i), src[i])
	}
}

// benchSpecBytes runs fn inside one speculative region (p points at a
// 4 KiB heap block) so the buffered path — not fork/join — is what the
// timer sees.
func benchSpecBytes(b *testing.B, backend string, fn func(c *Thread, b *testing.B, p mem.Addr)) {
	rt := newRT(b, 1, func(o *Options) {
		o.GBuf = gbuf.Config{Backend: backend}
		o.Timing = vclock.Virtual
	})
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(4096)
		ranks := []Rank{0}
		h := t0.Fork(ranks, 0, OutOfOrder)
		if h == nil {
			b.Fatal("fork refused")
		}
		h.Start(func(c *Thread) uint32 {
			b.ResetTimer()
			fn(c, b, p)
			b.StopTimer()
			return 0
		})
		if res := t0.Join(ranks, 0); !res.Committed() {
			b.Fatalf("join: %v (%v)", res.Status, res.Reason)
		}
	})
}

// The acceptance benchmarks: aligned 1 KiB StoreBytes/LoadBytes through a
// speculative thread, bulk path vs the pre-bulk word loop, per backend.
func BenchmarkThreadStoreBytes1KiB(b *testing.B) {
	for _, backend := range gbuf.Backends() {
		b.Run(backend, func(b *testing.B) {
			benchSpecBytes(b, backend, func(c *Thread, b *testing.B, p mem.Addr) {
				src := make([]byte, 1024)
				b.SetBytes(1024)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c.StoreBytes(p, src)
				}
			})
		})
	}
}

func BenchmarkThreadStoreBytesWordLoop1KiB(b *testing.B) {
	for _, backend := range gbuf.Backends() {
		b.Run(backend, func(b *testing.B) {
			benchSpecBytes(b, backend, func(c *Thread, b *testing.B, p mem.Addr) {
				src := make([]byte, 1024)
				b.SetBytes(1024)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					refStoreBytes(c, p, src)
				}
			})
		})
	}
}

func BenchmarkThreadLoadBytes1KiB(b *testing.B) {
	for _, backend := range gbuf.Backends() {
		b.Run(backend, func(b *testing.B) {
			benchSpecBytes(b, backend, func(c *Thread, b *testing.B, p mem.Addr) {
				dst := make([]byte, 1024)
				c.LoadBytes(p, dst) // warm the read set
				b.SetBytes(1024)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.LoadBytes(p, dst)
				}
			})
		})
	}
}

func BenchmarkThreadLoadBytesWordLoop1KiB(b *testing.B) {
	for _, backend := range gbuf.Backends() {
		b.Run(backend, func(b *testing.B) {
			benchSpecBytes(b, backend, func(c *Thread, b *testing.B, p mem.Addr) {
				dst := make([]byte, 1024)
				refLoadBytes(c, p, dst)
				b.SetBytes(1024)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					refLoadBytes(c, p, dst)
				}
			})
		})
	}
}

// BenchmarkThreadFloat64Slice1KiB measures the typed slice views (scratch
// conversion included) — must stay alloc-free in steady state.
func BenchmarkThreadFloat64Slice1KiB(b *testing.B) {
	for _, backend := range gbuf.Backends() {
		b.Run(backend, func(b *testing.B) {
			benchSpecBytes(b, backend, func(c *Thread, b *testing.B, p mem.Addr) {
				vals := make([]float64, 128)
				c.StoreFloat64s(p, vals)
				b.SetBytes(1024)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.LoadFloat64s(p, vals)
					c.StoreFloat64s(p, vals)
				}
			})
		})
	}
}

// TestThreadBulkAllocFree pins the zero-alloc contract at the Thread layer:
// steady-state bulk accessors on a speculative thread allocate nothing.
func TestThreadBulkAllocFree(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(2048)
		ranks := []Rank{0}
		h := t0.Fork(ranks, 0, OutOfOrder)
		if h == nil {
			t.Fatal("fork refused")
		}
		h.SetRegvarAddr(0, p)
		var allocs float64
		h.Start(func(c *Thread) uint32 {
			base := c.GetRegvarAddr(0)
			buf := make([]byte, 1024)
			vals := make([]float64, 64)
			c.StoreBytes(base, buf)
			c.LoadBytes(base, buf)
			c.StoreFloat64s(base+1024, vals)
			allocs = testing.AllocsPerRun(50, func() {
				c.StoreBytes(base, buf)
				c.LoadBytes(base, buf)
				c.StoreFloat64s(base+1024, vals)
				c.LoadFloat64s(base+1024, vals)
			})
			return 0
		})
		if res := t0.Join(ranks, 0); !res.Committed() {
			t.Fatalf("join: %v (%v)", res.Status, res.Reason)
		}
		if allocs != 0 {
			t.Fatalf("bulk hot path allocates %.1f objects per op", allocs)
		}
	})
}
