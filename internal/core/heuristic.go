package core

import "sync/atomic"

// heuristics implements the adaptive fork heuristic sketched as future work
// in §VI ("different automatic fork heuristics"): each fork point keeps a
// commit/rollback profile, and once a point has enough samples and a
// rollback rate above the threshold, further speculation on it is refused —
// the program simply runs that region non-speculatively.
type heuristics struct {
	enabled    bool
	minSamples int64
	maxRate    float64
	points     []pointProfile
}

type pointProfile struct {
	commits   atomic.Int64
	rollbacks atomic.Int64
	faults    atomic.Int64
	disabled  atomic.Bool
}

// faultDisableThreshold is the number of contained faults (panics
// converted to RollbackFault) after which a fork point is refused
// regardless of AdaptiveForkHeuristic: a deterministically-faulting kernel
// must degrade to sequential execution instead of squash-looping.
const faultDisableThreshold = 3

func newHeuristics(o Options) *heuristics {
	return &heuristics{
		enabled:    o.AdaptiveForkHeuristic,
		minSamples: int64(o.HeuristicMinSamples),
		maxRate:    o.HeuristicMaxRollbackRate,
		points:     make([]pointProfile, o.MaxPoints),
	}
}

// allow reports whether forking at point p is currently permitted. The
// disabled flag is honored even without AdaptiveForkHeuristic because the
// fault path (observeFault) sets it unconditionally — fault containment is
// not an opt-in heuristic.
func (h *heuristics) allow(p int) bool {
	return !h.points[p].disabled.Load()
}

// observe records one execution outcome for point p and re-evaluates the
// disable decision.
func (h *heuristics) observe(p int, committed bool) {
	if p < 0 || p >= len(h.points) {
		return
	}
	prof := &h.points[p]
	if committed {
		prof.commits.Add(1)
	} else {
		prof.rollbacks.Add(1)
	}
	if !h.enabled {
		return
	}
	c, r := prof.commits.Load(), prof.rollbacks.Load()
	if c+r >= h.minSamples && float64(r)/float64(c+r) > h.maxRate {
		prof.disabled.Store(true)
	}
}

// observeFault records one contained fault (a speculative panic converted
// to RollbackFault) at point p and disables the point once
// faultDisableThreshold faults accumulate — always, independent of the
// enabled flag: repeated faults mean the region faults on correct re-
// execution schedules too, and refusing the fork degrades the kernel to
// (correct) sequential execution instead of a squash loop.
func (h *heuristics) observeFault(p int) {
	if p < 0 || p >= len(h.points) {
		return
	}
	prof := &h.points[p]
	if prof.faults.Add(1) >= faultDisableThreshold {
		prof.disabled.Store(true)
	}
}

// reset clears a point's profile and re-enables it. AllocPoint calls it
// when an id is recycled to a new driver run: the heuristic's verdict is
// about one loop's behavior, and a point disabled by a rollback-heavy loop
// must not silently serialize the unrelated loop that inherits the id.
func (h *heuristics) reset(p int) {
	if p < 0 || p >= len(h.points) {
		return
	}
	prof := &h.points[p]
	prof.commits.Store(0)
	prof.rollbacks.Store(0)
	prof.faults.Store(0)
	prof.disabled.Store(false)
}

// profile returns the counts for a point (for tests and reports).
func (h *heuristics) profile(p int) (commits, rollbacks int64, disabled bool) {
	prof := &h.points[p]
	return prof.commits.Load(), prof.rollbacks.Load(), prof.disabled.Load()
}

// PointProfile reports a fork point's observed commits, rollbacks and
// whether the adaptive heuristic disabled it.
func (rt *Runtime) PointProfile(p int) (commits, rollbacks int64, disabled bool) {
	if p < 0 || p >= rt.opts.MaxPoints {
		return 0, 0, false
	}
	return rt.heur.profile(p)
}

// PointFaults reports how many contained faults point p accumulated since
// its last reset.
func (rt *Runtime) PointFaults(p int) int64 {
	if p < 0 || p >= rt.opts.MaxPoints {
		return 0
	}
	return rt.heur.points[p].faults.Load()
}
