package core

import "sync/atomic"

// heuristics implements the adaptive fork heuristic sketched as future work
// in §VI ("different automatic fork heuristics"): each fork point keeps a
// commit/rollback profile, and once a point has enough samples and a
// rollback rate above the threshold, further speculation on it is refused —
// the program simply runs that region non-speculatively.
type heuristics struct {
	enabled    bool
	minSamples int64
	maxRate    float64
	points     []pointProfile
}

type pointProfile struct {
	commits   atomic.Int64
	rollbacks atomic.Int64
	disabled  atomic.Bool
}

func newHeuristics(o Options) *heuristics {
	return &heuristics{
		enabled:    o.AdaptiveForkHeuristic,
		minSamples: int64(o.HeuristicMinSamples),
		maxRate:    o.HeuristicMaxRollbackRate,
		points:     make([]pointProfile, o.MaxPoints),
	}
}

// allow reports whether forking at point p is currently permitted.
func (h *heuristics) allow(p int) bool {
	if !h.enabled {
		return true
	}
	return !h.points[p].disabled.Load()
}

// observe records one execution outcome for point p and re-evaluates the
// disable decision.
func (h *heuristics) observe(p int, committed bool) {
	if p < 0 || p >= len(h.points) {
		return
	}
	prof := &h.points[p]
	if committed {
		prof.commits.Add(1)
	} else {
		prof.rollbacks.Add(1)
	}
	if !h.enabled {
		return
	}
	c, r := prof.commits.Load(), prof.rollbacks.Load()
	if c+r >= h.minSamples && float64(r)/float64(c+r) > h.maxRate {
		prof.disabled.Store(true)
	}
}

// reset clears a point's profile and re-enables it. AllocPoint calls it
// when an id is recycled to a new driver run: the heuristic's verdict is
// about one loop's behavior, and a point disabled by a rollback-heavy loop
// must not silently serialize the unrelated loop that inherits the id.
func (h *heuristics) reset(p int) {
	if p < 0 || p >= len(h.points) {
		return
	}
	prof := &h.points[p]
	prof.commits.Store(0)
	prof.rollbacks.Store(0)
	prof.disabled.Store(false)
}

// profile returns the counts for a point (for tests and reports).
func (h *heuristics) profile(p int) (commits, rollbacks int64, disabled bool) {
	prof := &h.points[p]
	return prof.commits.Load(), prof.rollbacks.Load(), prof.disabled.Load()
}

// PointProfile reports a fork point's observed commits, rollbacks and
// whether the adaptive heuristic disabled it.
func (rt *Runtime) PointProfile(p int) (commits, rollbacks int64, disabled bool) {
	if p < 0 || p >= rt.opts.MaxPoints {
		return 0, 0, false
	}
	return rt.heur.profile(p)
}
