package core

import (
	"runtime"
	"testing"

	"repro/internal/mem"
	"repro/internal/vclock"
)

// waitReady spins until the CPU occupied by rank has published its stop
// (white-box: the parent can then interfere with stores that are
// guaranteed to postdate every load of the region).
func waitReady(rt *Runtime, r Rank) {
	for rt.cpus[r].td.state.Load() != cpuReady {
		runtime.Gosched()
	}
}

// withProcs raises GOMAXPROCS for the test's duration so NewRuntime
// enables the optimistic pre-validation path even on a single-core host
// (the runtime disables the overlap when there is nothing to overlap
// with; these tests exercise the overlapped protocol itself).
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestPreValidateCleanCommit: a speculation whose read set is untouched
// commits through the optimistic path with exactly one (successful)
// validation — the split must not change verdicts or counters.
func TestPreValidateCleanCommit(t *testing.T) {
	withProcs(t, 2)
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		t0.StoreInt64(arr, 5)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork failed")
		}
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.StoreInt64(p+8, c.LoadInt64(p)*2)
			return 0
		})
		waitReady(rt, ranks[0])
		if res := t0.Join(ranks, 0); res.Status != JoinCommitted {
			t.Fatalf("clean speculation did not commit: %v (%v)", res.Status, res.Reason)
		}
		if got := t0.LoadInt64(arr + 8); got != 10 {
			t.Fatalf("committed value %d, want 10", got)
		}
	})
	s := rt.Stats()
	if s.GBuf.Validations != 1 || s.GBuf.ValidationFail != 0 {
		t.Fatalf("validations %d/fail %d, want 1/0", s.GBuf.Validations, s.GBuf.ValidationFail)
	}
}

// TestPreValidateCatchesLateWrite: the parent overwrites a word the region
// read strictly after the region stopped — after its optimistic
// pre-validation may already have passed. The stamp table must force the
// lock-time re-check to see the conflict, whichever side of the
// pre-validation snapshot the write landed on.
func TestPreValidateCatchesLateWrite(t *testing.T) {
	withProcs(t, 2)
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		t0.StoreInt64(arr, 1)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork failed")
		}
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.StoreInt64(p+8, c.LoadInt64(p))
			return 0
		})
		waitReady(rt, ranks[0])
		// The region has stopped: every load it made is in the past. This
		// store invalidates its read set and stamps the page.
		t0.StoreInt64(arr, 2)
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack || res.Reason != RollbackValidation {
			t.Fatalf("join %v (%v), want rolled-back/validation", res.Status, res.Reason)
		}
		if got := t0.LoadInt64(arr + 8); got != 0 {
			t.Fatalf("rolled-back write leaked: %d", got)
		}
	})
	s := rt.Stats()
	if s.GBuf.Validations != 1 || s.GBuf.ValidationFail != 1 {
		t.Fatalf("validations %d/fail %d, want 1/1", s.GBuf.Validations, s.GBuf.ValidationFail)
	}
}

// TestConcurrentJoinersStress runs many fork/join rounds with the parent
// storing to a hot word the regions read, so pre-validations, stamp marks
// and commits race on the dirty table from several goroutines at once.
// Run under -race this is the memory-model check of the optimistic split;
// the expectation tracking checks that exactly the committed speculations'
// writes land.
func TestConcurrentJoinersStress(t *testing.T) {
	const cpus = 4
	const rounds = 50
	withProcs(t, 4)
	rt := newRT(t, cpus, func(o *Options) {
		o.Timing = vclock.Real
		o.RealCPUCap = RealCPUsUncapped
	})
	var got, want [cpus]int64
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * (cpus + 1))
		hot := arr + 8*cpus
		ranks := make([]Rank, cpus)
		for round := 0; round < rounds; round++ {
			forked := 0
			for i := 0; i < cpus; i++ {
				h := t0.Fork(ranks, i, Mixed)
				if h == nil {
					continue
				}
				forked++
				h.SetRegvarAddr(0, arr+mem.Addr(8*i))
				h.SetRegvarAddr(1, hot)
				h.Start(func(c *Thread) uint32 {
					p := c.GetRegvarAddr(0)
					// Read the hot word the parent keeps overwriting: the
					// speculation is only allowed to commit if the value it
					// saw survives until its serial section.
					_ = c.LoadInt64(c.GetRegvarAddr(1))
					c.StoreInt64(p, c.LoadInt64(p)+1)
					return 0
				})
				// Interfere while speculations are in flight.
				t0.StoreInt64(hot, int64(round*cpus+i))
			}
			for i := 0; i < cpus; i++ {
				if ranks[i] == 0 {
					continue
				}
				if res := t0.Join(ranks, i); res.Committed() {
					want[i]++
				}
			}
			if forked == 0 {
				t.Fatal("no fork succeeded in a quiescent round")
			}
		}
		for i := 0; i < cpus; i++ {
			got[i] = t0.LoadInt64(arr + mem.Addr(8*i))
		}
	})
	if got != want {
		t.Fatalf("committed increments %v, joins reported %v", got, want)
	}
}

// TestRealCPUCap checks the GOMAXPROCS-aware clamp: Real timing caps
// NumCPUs at the schedulable parallelism by default, explicit caps and
// RealCPUsUncapped override it, and virtual timing is never clamped.
func TestRealCPUCap(t *testing.T) {
	build := func(o Options) *Runtime {
		t.Helper()
		o.CollectStats = false
		o.Space = mem.SpaceConfig{StaticBytes: 1 << 12, HeapBytes: 1 << 14, StackBytes: 1 << 12}
		rt, err := NewRuntime(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt
	}
	procs := runtime.GOMAXPROCS(0)
	if got := build(Options{NumCPUs: procs + 7, Timing: vclock.Real}).NumCPUs(); got != procs {
		t.Errorf("default Real cap: %d CPUs, want %d", got, procs)
	}
	if got := build(Options{NumCPUs: procs + 7, Timing: vclock.Real, RealCPUCap: RealCPUsUncapped}).NumCPUs(); got != procs+7 {
		t.Errorf("uncapped Real: %d CPUs, want %d", got, procs+7)
	}
	if got := build(Options{NumCPUs: 8, Timing: vclock.Real, RealCPUCap: 2}).NumCPUs(); got != 2 {
		t.Errorf("explicit cap: %d CPUs, want 2", got)
	}
	if got := build(Options{NumCPUs: procs + 7, Timing: vclock.Virtual}).NumCPUs(); got != procs+7 {
		t.Errorf("virtual timing clamped to %d CPUs", got)
	}
	if _, err := NewRuntime(Options{NumCPUs: 2, RealCPUCap: -2}); err == nil {
		t.Error("RealCPUCap -2 accepted")
	}
}

// TestFillWords covers the memset-shaped accessor on both sides of the
// speculation boundary: direct fill with stamping for the non-speculative
// thread, buffered StoreFill for a region (visible only after commit).
func TestFillWords(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * 8)
		t0.FillWords(arr, 8, 0xDEAD)
		for i := 0; i < 8; i++ {
			if got := t0.LoadInt64(arr + mem.Addr(8*i)); got != 0xDEAD {
				t.Fatalf("word %d: %#x", i, got)
			}
		}
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork failed")
		}
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			c.ZeroWords(c.GetRegvarAddr(0), 4)
			return 0
		})
		waitReady(rt, ranks[0])
		// Buffered: nothing visible before the join commits it.
		if got := t0.LoadInt64(arr); got != 0xDEAD {
			t.Fatalf("speculative fill leaked before commit: %#x", got)
		}
		if res := t0.Join(ranks, 0); res.Status != JoinCommitted {
			t.Fatalf("join %v (%v)", res.Status, res.Reason)
		}
		for i := 0; i < 8; i++ {
			want := int64(0)
			if i >= 4 {
				want = 0xDEAD
			}
			if got := t0.LoadInt64(arr + mem.Addr(8*i)); got != want {
				t.Fatalf("word %d after commit: %#x, want %#x", i, got, want)
			}
		}
	})
}
