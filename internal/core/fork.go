package core

import (
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// childrenRef returns the thread's children stack: speculative threads keep
// it in their ThreadData (so the parent can adopt it after a stop), the
// non-speculative thread keeps it locally.
func (t *Thread) childrenRef() *[]childRef {
	if t.speculative {
		return &t.cpu.td.children
	}
	return &t.children
}

// ForkHandle is the window between MUTLS_get_CPU and MUTLS_speculate: the
// parent stores the child's live-ins through it (the generated proxy
// function) and then starts the speculation.
type ForkHandle struct {
	t       *Thread
	child   *cpu
	started bool
	nSaved  int
}

// Fork is __builtin_MUTLS_fork(p, model): it claims an IDLE virtual CPU for
// a speculative thread at fork/join point p under the given forking model.
// It returns nil — and the program simply continues non-speculatively — when
// the point already has a thread (ranks[p] != 0), the model forbids this
// thread from forking, the adaptive heuristic disabled the point, or no CPU
// is IDLE. On success ranks[p] holds the child's rank and the child is
// pushed on this thread's children stack.
func (t *Thread) Fork(ranks []Rank, p int, model Model) *ForkHandle {
	if p < 0 || p >= len(ranks) || p >= t.rt.opts.MaxPoints {
		panic(fmt.Sprintf("core: fork point %d out of range", p))
	}
	if ranks[p] != 0 {
		return nil
	}
	t.injectAt(faultinject.SiteFork)
	if !t.rt.heur.allow(p) {
		return nil
	}
	if t.rt.cancelled.Load() {
		// A cancelled run stops growing its speculative frontier: the
		// remaining work runs sequentially until a CancelPoint unwinds it.
		return nil
	}
	// Forking-model policy (§II, §IV-F).
	switch model {
	case InOrder:
		if t.rt.inOrderTail.Load() != t.tailWord() {
			return nil
		}
	case OutOfOrder:
		if t.speculative {
			return nil
		}
	case Mixed, MixedLinear:
		// Every thread may speculate.
	default:
		panic(fmt.Sprintf("core: unknown forking model %v", model))
	}

	cost := t.clock.Model
	t.clock.Charge(vclock.FindCPU, cost.FindCPUCost)
	stop := t.clock.Span(vclock.FindCPU)
	child := t.rt.claimIdleCPU(t.clock.Now())
	stop()
	if child == nil {
		return nil
	}

	td := &child.td
	td.point = p
	td.model = model
	td.parentRank.Store(int32(t.rank))
	td.validStatus.Store(validNull)
	td.forceInvalid.Store(false)
	td.syncTime.Store(0)
	td.stopCounter = 0
	td.startTime = 0
	td.stopTime = 0
	td.finalTime = 0
	td.overflowStop = false
	td.reason = RollbackNone
	td.children = td.children[:0]
	for i := range td.forkLive {
		td.forkLive[i] = false
	}
	child.lb.Reset()

	ranks[p] = td.rank
	ref := childRef{rank: td.rank, epoch: td.epoch()}
	cs := t.childrenRef()
	*cs = append(*cs, ref)

	switch model {
	case InOrder:
		t.rt.inOrderTail.Store(tailWord(td.rank, ref.epoch))
	case MixedLinear:
		t.rt.linearInsert(t.rank, ref)
	}
	h := &ForkHandle{t: t, child: child}
	t.openFork = h
	return h
}

// abandonOpenFork undoes a Fork whose Start never happened because a panic
// unwound the window in between: the childRef is popped, the model
// bookkeeping reverted and the claimed CPU released. The fork point's
// ranks[] entry may keep the abandoned rank — its Join signals under the
// pre-release epoch, which the epoch-checked CAS rejects, and the join
// takes the rolled-back path. Safe to call any time: it is a no-op unless
// an un-started fork is open.
func (t *Thread) abandonOpenFork() {
	h := t.openFork
	if h == nil || h.started {
		return
	}
	t.openFork = nil
	child := h.child
	td := &child.td
	cs := t.childrenRef()
	if n := len(*cs); n > 0 && (*cs)[n-1].rank == td.rank {
		*cs = (*cs)[:n-1]
	}
	switch td.model {
	case InOrder:
		t.rt.inOrderTail.Store(t.tailWord())
	case MixedLinear:
		t.rt.linearRemove(td.rank)
	}
	t.rt.releaseCPU(child, t.clock.Now())
}

// tailWord returns this thread's in-order tail identity.
func (t *Thread) tailWord() uint64 {
	if !t.speculative {
		return 0
	}
	return tailWord(t.rank, t.cpu.td.epoch())
}

// claimIdleCPU scans for an IDLE CPU and claims it (MUTLS_get_CPU). A CPU
// qualifies only when it is also *virtually* idle — its freeAt does not
// exceed the forker's clock. On the modelled machine a CPU whose last
// execution ends at a later virtual time would still be busy now; claiming
// it (just because the 2-core host finished the goroutine early in real
// time) would serialize the new speculation behind it and destroy the
// schedule's fidelity.
func (rt *Runtime) claimIdleCPU(now vclock.Cost) *cpu {
	limit := int(rt.cpuLimit.Load())
	for r := 1; r <= limit; r++ {
		c := rt.cpus[r]
		if c.td.state.Load() != cpuIdle || c.freeAt.Load() > now {
			continue
		}
		if c.td.state.CompareAndSwap(cpuIdle, cpuClaimed) {
			// Re-check under the claim: the pre-scan freeAt read may have
			// been stale against a release that happened in between.
			if c.freeAt.Load() > now {
				c.td.state.Store(cpuIdle)
				continue
			}
			rt.active.Add(1)
			return c
		}
	}
	return nil
}

// Rank returns the claimed child's rank.
func (h *ForkHandle) Rank() Rank { return h.child.td.rank }

// setRegvar is MUTLS_set_regvar_*: the proxy function saving one live-in.
func (h *ForkHandle) setRegvar(slot int, v uint64) {
	if h.started {
		panic("core: SetRegvar after Start")
	}
	if err := h.child.lb.SetRegvar(slot, v); err != nil {
		// Too many live variables: the paper's speculator pass reports an
		// error and speculation fails; surface it as a panic since it is a
		// static protocol violation, not a dynamic conflict.
		panic(err)
	}
	h.child.td.forkRegs[slot] = v
	h.child.td.forkLive[slot] = true
	h.nSaved++
	cost := h.t.clock.Model
	h.t.clock.Charge(vclock.Fork, cost.SaveLocal)
}

// SetRegvarInt64 saves an int64 live-in for the child.
func (h *ForkHandle) SetRegvarInt64(slot int, v int64) { h.setRegvar(slot, uint64(v)) }

// SetRegvarInt32 saves an int32 live-in for the child.
func (h *ForkHandle) SetRegvarInt32(slot int, v int32) { h.setRegvar(slot, uint64(uint32(v))) }

// SetRegvarFloat64 saves a float64 live-in for the child.
func (h *ForkHandle) SetRegvarFloat64(slot int, v float64) { h.setRegvar(slot, math.Float64bits(v)) }

// SetRegvarAddr saves a pointer live-in for the child.
func (h *ForkHandle) SetRegvarAddr(slot int, v mem.Addr) { h.setRegvar(slot, uint64(v)) }

// SetStackvar is MUTLS_set_stackvar_*: it copies the stack variable at
// homeAddr into the child's LocalBuffer.
func (h *ForkHandle) SetStackvar(slot int, homeAddr mem.Addr, size int) {
	if h.started {
		panic("core: SetStackvar after Start")
	}
	data := make([]byte, size)
	h.t.LoadBytes(homeAddr, data)
	if err := h.child.lb.SetStackvar(slot, homeAddr, data); err != nil {
		panic(err)
	}
	cost := h.t.clock.Model
	h.t.clock.Charge(vclock.Fork, cost.SaveLocal*vclock.Cost(1+size/mem.Word))
}

// Start is MUTLS_speculate: it hands the region to the claimed CPU's worker
// and sets the CPU RUNNING. The child enters through the stub, fetching its
// live-ins with Thread.GetRegvar*.
func (h *ForkHandle) Start(region RegionFunc) {
	if h.started {
		panic("core: Start called twice")
	}
	h.started = true
	if h.t.openFork == h {
		h.t.openFork = nil
	}
	cost := h.t.clock.Model
	h.t.clock.Charge(vclock.Fork, cost.ForkCost)
	startAt := h.t.clock.Now()
	if fa := h.child.freeAt.Load(); fa > startAt {
		startAt = fa
	}
	h.child.td.state.Store(cpuRunning)
	h.child.tasks <- specTask{region: region, startAt: startAt}
}

// getRegvar is MUTLS_get_regvar_* on the child side (the stub), or the
// parent restoring saved locals is handled by JoinResult instead.
func (t *Thread) getRegvar(slot int) uint64 {
	if !t.speculative {
		panic("core: GetRegvar on the non-speculative thread")
	}
	v, err := t.cpu.lb.GetRegvar(slot)
	if err != nil {
		t.rollbackNow(RollbackUnsafeOp)
	}
	cost := t.clock.Model
	t.clock.Charge(vclock.Fork, cost.RestoreLocal)
	return v
}

// GetRegvarInt64 fetches an int64 live-in inside a region.
func (t *Thread) GetRegvarInt64(slot int) int64 { return int64(t.getRegvar(slot)) }

// GetRegvarInt32 fetches an int32 live-in inside a region.
func (t *Thread) GetRegvarInt32(slot int) int32 { return int32(uint32(t.getRegvar(slot))) }

// GetRegvarFloat64 fetches a float64 live-in inside a region.
func (t *Thread) GetRegvarFloat64(slot int) float64 {
	return math.Float64frombits(t.getRegvar(slot))
}

// GetRegvarAddr fetches a pointer live-in inside a region.
func (t *Thread) GetRegvarAddr(slot int) mem.Addr { return mem.Addr(t.getRegvar(slot)) }

// saveRegvar is MUTLS_set_regvar_* on the child side: saving live locals
// before stopping at a check, barrier or terminate point so the parent can
// restore them from the synchronization table.
func (t *Thread) saveRegvar(slot int, v uint64) {
	if !t.speculative {
		panic("core: SaveRegvar on the non-speculative thread")
	}
	if err := t.cpu.lb.SetRegvar(slot, v); err != nil {
		panic(err)
	}
	cost := t.clock.Model
	t.clock.Charge(vclock.Work, cost.SaveLocal)
}

// SaveRegvarInt64 saves an int64 live-out before a stop point.
func (t *Thread) SaveRegvarInt64(slot int, v int64) { t.saveRegvar(slot, uint64(v)) }

// SaveRegvarInt32 saves an int32 live-out before a stop point.
func (t *Thread) SaveRegvarInt32(slot int, v int32) { t.saveRegvar(slot, uint64(uint32(v))) }

// SaveRegvarFloat64 saves a float64 live-out before a stop point.
func (t *Thread) SaveRegvarFloat64(slot int, v float64) { t.saveRegvar(slot, math.Float64bits(v)) }

// SaveRegvarAddr saves a pointer live-out before a stop point.
func (t *Thread) SaveRegvarAddr(slot int, v mem.Addr) { t.saveRegvar(slot, uint64(v)) }

// GetStackvar materializes a buffered stack variable on the speculative
// thread's own stack (the stub side of MUTLS_get_stackvar_*): it allocates
// the child copy, fills it, binds the address for pointer mapping and
// returns it.
func (t *Thread) GetStackvar(slot int) mem.Addr {
	if !t.speculative {
		panic("core: GetStackvar on the non-speculative thread")
	}
	data, err := t.cpu.lb.GetStackvar(slot, mem.NilAddr)
	if err != nil {
		t.rollbackNow(RollbackUnsafeOp)
	}
	p := t.StackAlloc(len(data))
	t.StoreBytes(p, data)
	if _, err := t.cpu.lb.GetStackvar(slot, p); err != nil {
		t.rollbackNow(RollbackUnsafeOp)
	}
	cost := t.clock.Model
	t.clock.Charge(vclock.Fork, cost.RestoreLocal*vclock.Cost(1+len(data)/mem.Word))
	return p
}

// SaveStackvar copies the speculative copy of a stack variable back into
// the LocalBuffer before a stop point, so a committing join writes the
// final bytes to the non-speculative home.
func (t *Thread) SaveStackvar(slot int, specAddr mem.Addr, size int) {
	if !t.speculative {
		panic("core: SaveStackvar on the non-speculative thread")
	}
	data := make([]byte, size)
	t.LoadBytes(specAddr, data)
	if err := t.cpu.lb.UpdateStackvar(slot, data); err != nil {
		t.rollbackNow(RollbackUnsafeOp)
	}
	cost := t.clock.Model
	t.clock.Charge(vclock.Work, cost.SaveLocal*vclock.Cost(1+size/mem.Word))
}
