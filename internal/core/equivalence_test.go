package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gbuf"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// The fundamental TLS safety invariant: for any program, any forking model,
// any CPU count and any forced-rollback probability, the final memory image
// equals the sequential execution's. These tests drive randomly generated
// mini-programs through the chunked-loop and divide-and-conquer patterns
// and compare against a plain sequential run.

// miniOp is one deterministic operation over a shared word array.
type miniOp struct {
	kind byte // 0: dst = a[s1]*3 + a[s2] + k; 1: dst = a[s1] ^ k; 2: pure tick
	s1   int
	s2   int
	dst  int
	k    int64
}

// miniProgram is a sequence of chunks, each a list of ops executed in order.
type miniProgram struct {
	words  int
	chunks [][]miniOp
}

func genProgram(rng *rand.Rand) miniProgram {
	words := 8 + rng.Intn(24)
	nChunks := 1 + rng.Intn(6)
	p := miniProgram{words: words}
	for c := 0; c < nChunks; c++ {
		nOps := 1 + rng.Intn(12)
		ops := make([]miniOp, nOps)
		for i := range ops {
			ops[i] = miniOp{
				kind: byte(rng.Intn(3)),
				s1:   rng.Intn(words),
				s2:   rng.Intn(words),
				dst:  rng.Intn(words),
				k:    int64(rng.Intn(100)),
			}
		}
		p.chunks = append(p.chunks, ops)
	}
	return p
}

func runOps(t *Thread, arr mem.Addr, ops []miniOp) {
	for _, op := range ops {
		switch op.kind {
		case 0:
			v := t.LoadInt64(arr+mem.Addr(8*op.s1))*3 + t.LoadInt64(arr+mem.Addr(8*op.s2)) + op.k
			t.StoreInt64(arr+mem.Addr(8*op.dst), v)
		case 1:
			t.StoreInt64(arr+mem.Addr(8*op.dst), t.LoadInt64(arr+mem.Addr(8*op.s1))^op.k)
		case 2:
			t.Tick(op.k)
		}
	}
}

// runSequential executes the program without any speculation and returns
// the final array image.
func runSequential(tb testing.TB, p miniProgram) []int64 {
	rt := newRT(tb, 1, nil)
	out := make([]int64, p.words)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * p.words)
		for i := 0; i < p.words; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), int64(i)*7)
		}
		for _, ops := range p.chunks {
			runOps(t0, arr, ops)
		}
		for i := 0; i < p.words; i++ {
			out[i] = t0.LoadInt64(arr + mem.Addr(8*i))
		}
	})
	return out
}

// runSpeculative executes the program under the chunked-loop TLS pattern:
// each region forks its successor chunk, the non-speculative thread joins
// the chain in order and re-executes rolled-back chunks inline.
func runSpeculative(tb testing.TB, p miniProgram, model Model, cpus int, prob float64, seed uint64) []int64 {
	rt := newRT(tb, cpus, func(o *Options) {
		o.RollbackProb = prob
		o.Seed = seed
		o.GBuf = gbuf.Config{LogWords: 8, OverflowCap: 32}
	})
	out := make([]int64, p.words)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * p.words)
		for i := 0; i < p.words; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), int64(i)*7)
		}
		var region RegionFunc
		body := func(c *Thread, idx int, ranks []Rank) {
			if idx+1 < len(p.chunks) {
				if h := c.Fork(ranks, 0, model); h != nil {
					h.SetRegvarInt64(0, int64(idx+1))
					h.SetRegvarAddr(1, arr)
					h.Start(region)
				}
			}
			runOps(c, arr, p.chunks[idx])
		}
		region = func(c *Thread) uint32 {
			idx := int(c.GetRegvarInt64(0))
			ranks := []Rank{0}
			body(c, idx, ranks)
			c.SaveRegvarInt64(2, int64(ranks[0]))
			return 0
		}
		ranks := []Rank{0}
		body(t0, 0, ranks)
		for idx := 1; idx < len(p.chunks); idx++ {
			res := t0.Join(ranks, 0)
			if res.Committed() {
				ranks[0] = Rank(res.RegvarInt64(2))
			} else {
				ranks[0] = 0
				body(t0, idx, ranks)
			}
		}
		for i := 0; i < p.words; i++ {
			out[i] = t0.LoadInt64(arr + mem.Addr(8*i))
		}
	})
	return out
}

func TestQuickSequentialEquivalenceChunkedLoop(t *testing.T) {
	models := []Model{InOrder, OutOfOrder, Mixed, MixedLinear}
	probs := []float64{0, 0.3, 1.0}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := genProgram(rng)
		want := runSequential(t, p)
		model := models[rng.Intn(len(models))]
		prob := probs[rng.Intn(len(probs))]
		cpus := 1 + rng.Intn(4)
		got := runSpeculative(t, p, model, cpus, prob, uint64(seed))
		for i := range want {
			if got[i] != want[i] {
				t.Logf("divergence at word %d: got %d want %d (model=%v cpus=%d prob=%v seed=%d)",
					i, got[i], want[i], model, cpus, prob, seed)
				return false
			}
		}
		return true
	}
	n := 40
	if testing.Short() {
		n = 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// Divide-and-conquer equivalence: a random tree computation (range
// transform) with forks on the second half, under injected rollbacks.
func runTreeTransform(tb testing.TB, n int, cpus int, prob float64, seed uint64, speculate bool) []int64 {
	rt := newRT(tb, cpus, func(o *Options) {
		o.RollbackProb = prob
		o.Seed = seed
	})
	out := make([]int64, n)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * n)
		for i := 0; i < n; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), int64(seed%97)+int64(i))
		}
		leaf := func(c *Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := c.LoadInt64(arr + mem.Addr(8*i))
				c.StoreInt64(arr+mem.Addr(8*i), v*2+1)
			}
		}
		if speculate {
			treeDrive(t0, 0, n, 4, Mixed, leaf)
		} else {
			leaf(t0, 0, n)
		}
		for i := 0; i < n; i++ {
			out[i] = t0.LoadInt64(arr + mem.Addr(8*i))
		}
	})
	return out
}

func TestQuickSequentialEquivalenceTree(t *testing.T) {
	f := func(seed int64, rawCPUs uint8, rawProb uint8) bool {
		cpus := 1 + int(rawCPUs%6)
		prob := []float64{0, 0.25, 1.0}[rawProb%3]
		n := 64
		want := runTreeTransform(t, n, 1, 0, uint64(seed), false)
		got := runTreeTransform(t, n, cpus, prob, uint64(seed), true)
		for i := range want {
			if got[i] != want[i] {
				t.Logf("tree divergence at %d: got %d want %d (cpus=%d prob=%v)", i, got[i], want[i], cpus, prob)
				return false
			}
		}
		return true
	}
	n := 30
	if testing.Short() {
		n = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// Deterministic repeatability: virtual timing plus a fixed seed must give
// identical virtual runtimes run-to-run when the schedule is
// structure-determined (no injected randomness).
func TestVirtualTimingDeterministicRuntime(t *testing.T) {
	run := func() vclock.Cost {
		rt := newRT(t, 4, nil)
		defer rt.Close()
		return rt.Run(func(t0 *Thread) {
			arr := t0.Alloc(8 * 64)
			var region RegionFunc
			region = func(c *Thread) uint32 {
				base := int(c.GetRegvarInt64(0))
				for i := 0; i < 16; i++ {
					c.StoreInt64(arr+mem.Addr(8*(base+i)), int64(i))
				}
				c.Tick(500)
				return 0
			}
			ranks := []Rank{0, 0, 0}
			for k := 0; k < 3; k++ {
				if h := t0.Fork(ranks, k, Mixed); h != nil {
					h.SetRegvarInt64(0, int64(16*(k+1)))
					h.Start(region)
				}
			}
			for i := 0; i < 16; i++ {
				t0.StoreInt64(arr+mem.Addr(8*i), int64(i))
			}
			t0.Tick(500)
			for k := 2; k >= 0; k-- {
				t0.Join(ranks, k)
			}
		})
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("virtual runtime not deterministic: %d vs %d", t1, t2)
	}
}

// A sanity check that forced rollback probabilities in between the extremes
// produce both commits and rollbacks over many speculations.
func TestInjectedRollbackMixedOutcomes(t *testing.T) {
	rt := newRT(t, 2, func(o *Options) { o.RollbackProb = 0.4; o.Seed = 7 })
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		for i := 0; i < 60; i++ {
			h := t0.Fork(ranks, 0, Mixed)
			if h == nil {
				t.Fatal("fork failed")
			}
			h.Start(func(c *Thread) uint32 { return 0 })
			t0.Join(ranks, 0)
		}
	})
	s := rt.Stats()
	if s.Commits == 0 || s.Rollbacks == 0 {
		t.Fatalf("want both outcomes at p=0.4: commits=%d rollbacks=%d", s.Commits, s.Rollbacks)
	}
	if fmt.Sprintf("%T", s) == "" {
		t.Fatal("unreachable")
	}
}
