package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gbuf"
	"repro/internal/lbuf"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// ErrClosed is returned by RunCtx on a runtime whose Close has completed
// (or started): the virtual-CPU workers are gone, so no run can execute.
var ErrClosed = errors.New("core: runtime is closed")

// ErrCancelled is returned by RunCtx when the run was unwound by a
// CancelPoint poll after CancelRun, and no context error is available to
// report instead (a context-driven cancellation returns ctx.Err()).
var ErrCancelled = errors.New("core: run cancelled")

// cancelSignal unwinds the non-speculative thread out of a cancelled run.
// It is raised only by Thread.CancelPoint on the non-speculative thread
// and recovered only by RunCtx, which then squashes outstanding
// speculation and reports the cancellation as an error.
type cancelSignal struct{}

// KernelPanic is the error RunCtx returns when the non-speculative thread
// panicked: the kernel itself faulted, so there is no correct sequential
// result to fall back to — but the run is unwound through the normal
// drain, outstanding speculation is squashed, and the runtime stays
// reusable (a pooled runtime recycles and serves its next tenant; the
// fault is counted in Summary.Faults). A *speculative* panic never
// surfaces here: it becomes a RollbackFault squash and the chunk re-
// executes non-speculatively.
type KernelPanic struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

// Error renders the panic value.
func (e *KernelPanic) Error() string {
	return fmt.Sprintf("core: kernel panic: %v", e.Value)
}

// CPU states (paper §IV-D): every virtual CPU is RUNNING, IDLE or READY TO
// RECLAIM, initialized IDLE at program start. cpuClaimed is the transient
// state between MUTLS_get_CPU and MUTLS_speculate.
const (
	cpuIdle int32 = iota
	cpuClaimed
	cpuRunning
	cpuReady // READY TO RECLAIM: results published, waiting for the parent
)

// sync_status values of the flag-based barrier (§IV-E). They live in the
// low two bits of threadData.syncWord; the high bits hold the CPU's
// generation epoch, which makes every signal an epoch-checked CAS and rules
// out the ABA hazard of signalling a reclaimed CPU (a squashed thread
// self-releases its CPU, the rank gets re-forked, and a stale reference
// must not reach the new occupant).
const (
	syncNull uint64 = iota
	syncSync
	syncNoSync

	syncStatusBits = 2
	syncStatusMask = 1<<syncStatusBits - 1
)

// childRef is one entry of a thread's children stack: the child's rank plus
// the generation epoch under which it was forked.
type childRef struct {
	rank  Rank
	epoch uint64
}

// valid_status values.
const (
	validNull int32 = iota
	validCommit
	validRollback
)

// threadData is the paper's ThreadData module: the status of one
// speculative thread. Fields below the atomics are owned by the thread
// while it runs and read by the parent only after valid_status publishes
// (atomic release/acquire ordering).
type threadData struct {
	rank Rank

	state atomic.Int32
	// syncWord packs (epoch << 2) | sync_status. Signalling SYNC or NOSYNC
	// is a CAS against (epoch<<2)|NULL, so signals to stale epochs fail
	// harmlessly.
	syncWord    atomic.Uint64
	validStatus atomic.Int32
	// forceInvalid is set by the parent when MUTLS_validate_local detects a
	// live register misprediction; the child's validation then fails.
	forceInvalid atomic.Bool
	// parentRank tracks the current parent; adoption rewrites it.
	parentRank atomic.Int32
	// syncTime is the parent's clock when it signals SYNC (virtual mode).
	syncTime atomic.Int64
	// workerDone marks that the worker goroutine has finished all
	// post-processing of the execution, so the parent may safely reset and
	// reclaim the CPU (it prevents the parent from clearing sync_status
	// while the worker is still reading it).
	workerDone atomic.Bool

	// gate parks whoever waits on this CPU's published flags: the parent
	// waiting for validStatus or workerDone, the worker waiting for
	// sync_status. Wakers call gate.wake after every store those waits
	// observe (signal, validStatus, workerDone).
	gate waitGate

	// Owned by the speculating (child) thread while RUNNING; read by the
	// parent after valid_status != NULL.
	point        int
	model        Model
	children     []childRef
	stopCounter  uint32
	startTime    vclock.Cost
	stopTime     vclock.Cost
	finalTime    vclock.Cost
	overflowStop bool
	reason       RollbackReason
	// readPeak/writePeak are the GlobalBuffer set sizes captured just
	// before finalization: the execution's buffer-pressure high-water
	// marks. buffersFinal guards against a second finalization of the
	// same execution (self-rollback then NOSYNC) zeroing them.
	readPeak     int
	writePeak    int
	buffersFinal bool
	// forkRegs keeps the parent's fork-time register predictions for
	// MUTLS_validate_local (separate from the LocalBuffer, which the child
	// overwrites when saving its own locals at a stop point).
	forkRegs []uint64
	forkLive []bool
}

// epoch returns the CPU's current generation.
func (td *threadData) epoch() uint64 { return td.syncWord.Load() >> syncStatusBits }

// syncStatus returns the current sync_status bits.
func (td *threadData) syncStatus() uint64 { return td.syncWord.Load() & syncStatusMask }

// signal CASes sync_status from NULL to the given status under the given
// epoch. It fails — harmlessly — when the epoch is stale (the CPU was
// reclaimed) or a different signal won the race. A successful signal
// wakes the CPU's worker, which may be parked in waitSync.
func (td *threadData) signal(epoch, status uint64) bool {
	base := epoch << syncStatusBits
	if td.syncWord.CompareAndSwap(base|syncNull, base|status) {
		td.gate.wake()
		return true
	}
	return false
}

// bumpEpoch starts a new generation with sync_status NULL (done at release).
func (td *threadData) bumpEpoch() {
	td.syncWord.Store((td.epoch() + 1) << syncStatusBits)
}

// tailWord packs a speculative thread's identity for the in-order tail
// pointer; the non-speculative thread is 0.
func tailWord(rank Rank, epoch uint64) uint64 {
	return epoch<<8 | uint64(rank)
}

// cpu bundles one virtual CPU: its ThreadData, GlobalBuffer and LocalBuffer
// (the paper's ThreadManager maintains exactly this triple per CPU), plus
// the worker channel and the virtual time at which the CPU becomes free.
// The GlobalBuffer is held behind the gbuf.Backend interface, so the
// buffering organization is a per-runtime choice (Options.GBuf.Backend).
type cpu struct {
	td     threadData
	gb     gbuf.Backend
	lb     *lbuf.Buffer
	tasks  chan specTask
	freeAt atomic.Int64 // virtual time when the CPU is next available
	rng    splitMix64
	stack  mem.Range // this CPU's speculative stack region
	// scratch backs the typed bulk accessors (Thread.LoadWords and
	// friends); it persists across speculations so the range hot path
	// stays alloc-free.
	scratch []byte

	// Pre-validation state of the current execution: the stamp-table
	// snapshot taken before the optimistic read-set walk, whether that walk
	// ran, and its result. dirtyFn is the prebuilt ValidateDirty oracle
	// closing over preSnap (built once so the commit path stays alloc-free).
	preSnap uint64
	preOK   bool
	preDone bool
	dirtyFn func(base mem.Addr, nBytes int) bool

	// Watchdog scan surface (SpecDeadline > 0 only). wallStart is the
	// wall-clock unixnano at which the current execution entered its
	// region, 0 while the CPU runs no region; specPoint mirrors td.point
	// atomically so the watchdog can read it without racing the next
	// fork's plain write. deadlineHit is the squash flag the watchdog
	// flips and CheckPoint polls; runSpec clears it at region entry.
	wallStart   atomic.Int64
	specPoint   atomic.Int32
	deadlineHit atomic.Bool
}

// specTask is one speculation handed to a worker.
type specTask struct {
	region  RegionFunc
	startAt vclock.Cost // child clock at entry (virtual mode)
}

// RegionFunc is the speculative continuation: the code from a join point to
// the matching barrier, in the transformed form of Figure 2(d). It fetches
// live-ins with Thread.GetRegvar*, polls Thread.CheckPoint inside loops, and
// returns a synchronization counter: 0 when it ran to the region's end, or
// the counter saved at an early stop so the joining thread can resume there.
type RegionFunc func(t *Thread) uint32

// Runtime is the ThreadManager: one ThreadData/GlobalBuffer/LocalBuffer per
// virtual CPU, the simulated address space, the statistics collector, and
// the global forking-model bookkeeping.
type Runtime struct {
	opts  Options
	space *mem.Space
	cpus  []*cpu // index 0 unused; ranks are 1-based
	epoch time.Time

	// inOrderTail identifies the most speculative thread — the only one the
	// in-order model allows to fork. It packs (epoch<<8 | rank); 0 means
	// the non-speculative thread. When the tail thread retires, every
	// earlier chain thread has already been joined (joins are sequential),
	// so the mantle reverts to the non-speculative thread.
	inOrderTail atomic.Uint64

	// linear keeps the logical order of MixedLinear threads for the
	// Mitosis/POSH-style squash baseline.
	linearMu sync.Mutex
	linear   []childRef

	heur      *heuristics
	live      []livePoint // per-point mid-run counters (PointCounters)
	collector *stats.Collector
	wg        sync.WaitGroup
	closed    atomic.Bool

	// active counts claimed-or-running virtual CPUs. Draining waits for it
	// to reach zero: a sequential all-IDLE scan is not enough, because a
	// not-yet-squashed thread can fork onto a CPU the scan already passed.
	active atomic.Int64

	// cancelled marks the in-flight run as cancelled (RunCtx context
	// expiry or an explicit CancelRun): Fork refuses new speculation and
	// CancelPoint unwinds the non-speculative thread at its next poll.
	// RunCtx clears it at run entry and exit.
	cancelled atomic.Bool

	// cpuLimit bounds the virtual CPUs claimIdleCPU may hand out (ranks
	// 1..cpuLimit). It defaults to NumCPUs; a runtime pool lowers it per
	// run so concurrent tenants share a host-CPU budget, down to 0 for
	// fully sequential (every fork refused) execution.
	cpuLimit atomic.Int32

	// Fork/join point allocation (AllocPoint/FreePoint): live ids are
	// tracked so concurrent long-lived runs alias a point only when all
	// MaxPoints ids are genuinely in use — and that exhaustion is counted
	// instead of silently degrading feedback quality.
	pointMu         sync.Mutex
	pointLive       []bool
	pointLiveCount  int
	pointNext       int
	pointsExhausted atomic.Int64

	// nonSpecStackTop is the bump pointer of the non-speculative stack.
	nonSpecStackTop mem.Addr

	// stamps is the page-granularity dirty table over the arena that lets
	// read-set validation run before the commit serial section: direct
	// writers (non-speculative stores, commits) mark the pages they touch,
	// pre-validators snapshot the sequence and the lock-time re-check
	// covers only pages stamped after the snapshot. nil when the runtime
	// has no speculative CPUs; markFn is stamps.Mark then, also nil.
	stamps *mem.WriteStamps
	markFn func(mem.Addr, int)
	// overlapValidation enables the optimistic pre-validation walk. It is
	// off when GOMAXPROCS is 1 at construction: with a single schedulable
	// CPU the walk cannot overlap the joining thread — it time-slices
	// against it and the lock-time re-check repeats most of the work (the
	// joiner's stores dirty the pages), so the split only adds overhead.
	overlapValidation bool

	// drainGate parks the non-speculative thread in drain until active
	// reaches zero; releaseCPU wakes it after every decrement.
	drainGate waitGate

	// Runaway-speculation watchdog (SpecDeadline > 0 only): wallEWMA keeps
	// a per-point EWMA of observed region wall latencies (nanoseconds) so
	// the effective deadline adapts to legitimately slow points, and
	// watchdogQuit/watchdogDone tear the scanner down in Close. All nil/
	// empty when the watchdog is disabled.
	wallEWMA     []atomic.Int64
	watchdogQuit chan struct{}
	watchdogDone chan struct{}
}

// NewRuntime builds a runtime with NumCPUs speculative virtual CPUs.
func NewRuntime(opts Options) (*Runtime, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	space, err := mem.NewSpace(o.Space)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		opts:      o,
		space:     space,
		cpus:      make([]*cpu, o.NumCPUs+1),
		epoch:     time.Now(),
		heur:      newHeuristics(o),
		live:      make([]livePoint, o.MaxPoints),
		collector: stats.NewCollector(o.NumCPUs, o.CollectStats),
	}
	r0, err := space.StackRegion(0)
	if err != nil {
		return nil, err
	}
	rt.nonSpecStackTop = r0.Start
	rt.drainGate.init()
	rt.pointLive = make([]bool, o.MaxPoints)
	rt.cpuLimit.Store(int32(o.NumCPUs))
	if o.NumCPUs > 0 {
		ws, err := mem.NewWriteStamps(space.Arena.Size(), 0)
		if err != nil {
			return nil, err
		}
		rt.stamps = ws
		rt.markFn = ws.Mark
		rt.overlapValidation = runtime.GOMAXPROCS(0) > 1
	}
	if o.FaultPlan != nil {
		// Heap-allocation injection: a tripped Alloc fails like an
		// exhausted region, which Thread.Alloc surfaces as a (contained)
		// kernel panic on the non-speculative thread.
		space.Heap.Trip = func(int) bool {
			return o.FaultPlan.Decide(faultinject.SiteAlloc) == faultinject.KindPanic
		}
	}
	for r := 1; r <= o.NumCPUs; r++ {
		gb, err := gbuf.NewBackend(space.Arena, o.GBuf)
		if err != nil {
			return nil, err
		}
		if o.FaultPlan != nil {
			// Store-seam injection: forced Full statuses exercise the real
			// overflow rollback path through handleBufferStatus.
			gb = &gbuf.FaultyBackend{Backend: gb, Trip: func() bool {
				return o.FaultPlan.Decide(faultinject.SiteStore) == faultinject.KindOverflow
			}}
		}
		lb, err := lbuf.New(o.LBuf)
		if err != nil {
			return nil, err
		}
		stack, err := space.StackRegion(r)
		if err != nil {
			return nil, err
		}
		c := &cpu{
			gb:    gb,
			lb:    lb,
			tasks: make(chan specTask, 1),
			rng:   newSplitMix64(o.Seed ^ (uint64(r) * 0x9E3779B97F4A7C15)),
			stack: stack,
		}
		c.td.rank = Rank(r)
		c.td.gate.init()
		c.td.forkRegs = make([]uint64, o.LBuf.RegSlots)
		c.td.forkLive = make([]bool, o.LBuf.RegSlots)
		c.dirtyFn = func(base mem.Addr, nBytes int) bool {
			return rt.stamps.DirtySince(base, nBytes, c.preSnap)
		}
		rt.cpus[r] = c
		rt.wg.Add(1)
		go rt.worker(c)
	}
	if o.SpecDeadline > 0 && o.NumCPUs > 0 {
		rt.wallEWMA = make([]atomic.Int64, o.MaxPoints)
		rt.watchdogQuit = make(chan struct{})
		rt.watchdogDone = make(chan struct{})
		go rt.watchdog()
	}
	return rt, nil
}

// Space exposes the simulated address space (for setup code and tests).
func (rt *Runtime) Space() *mem.Space { return rt.space }

// Options returns the effective (defaulted) options.
func (rt *Runtime) Options() Options { return rt.opts }

// NumCPUs returns the number of speculative virtual CPUs.
func (rt *Runtime) NumCPUs() int { return rt.opts.NumCPUs }

// MaxPoints returns the number of fork/join point ids the runtime supports
// (point ids are 0..MaxPoints-1).
func (rt *Runtime) MaxPoints() int { return rt.opts.MaxPoints }

// AllocPoint returns a fork/join point id for one driver run, walking
// round-robin through [0, MaxPoints) and skipping ids still held by
// another run. Loop drivers (mutls.For/Reduce/Pipeline) allocate a fresh
// point per run — and free it with FreePoint when the run ends — so the
// live PointCounters feedback of overlapping runs — a nested loop started
// from the inline portion of an outer loop's body, or a pipeline's
// per-stage points — does not mix rollback signals across loops. A
// recycled id starts with a clean adaptive-heuristic profile (a point
// disabled by one loop's rollbacks must not serialize the unrelated loop
// that inherits the id).
//
// When every id is live — more than MaxPoints simultaneously live runs —
// the allocator falls back to plain round-robin aliasing and counts the
// exhaustion (PointsExhausted, surfaced in Summary): aliasing degrades
// feedback/heuristic quality, never correctness, but a long-lived
// multi-tenant runtime should see it rather than silently serve worse
// schedules.
func (rt *Runtime) AllocPoint() int {
	max := rt.opts.MaxPoints
	rt.pointMu.Lock()
	var p int
	if rt.pointLiveCount >= max {
		p = rt.pointNext % max
		rt.pointNext++
		rt.pointsExhausted.Add(1)
	} else {
		p = rt.pointNext % max
		for rt.pointLive[p] {
			rt.pointNext++
			p = rt.pointNext % max
		}
		rt.pointLive[p] = true
		rt.pointLiveCount++
		rt.pointNext++
	}
	rt.pointMu.Unlock()
	rt.heur.reset(p)
	return p
}

// FreePoint returns a point id to the allocator. Freeing an id that was
// handed out twice under exhaustion simply makes it preferred again; out
// of range or already-free ids are ignored.
func (rt *Runtime) FreePoint(p int) {
	if p < 0 || p >= rt.opts.MaxPoints {
		return
	}
	rt.pointMu.Lock()
	if rt.pointLive[p] {
		rt.pointLive[p] = false
		rt.pointLiveCount--
	}
	rt.pointMu.Unlock()
}

// FreePoints frees a block of point ids (the inverse of AllocPoints).
func (rt *Runtime) FreePoints(ps []int) {
	for _, p := range ps {
		rt.FreePoint(p)
	}
}

// PointsExhausted reports how many AllocPoint calls found every point id
// live and had to alias (cumulative until ResetStats/ResetPoints).
func (rt *Runtime) PointsExhausted() int64 { return rt.pointsExhausted.Load() }

// ResetPoints returns the point namespace to its initial state: no live
// ids, allocation restarting at 0, exhaustion counter cleared, every
// heuristic profile clean. It is part of the between-tenants recycle of a
// pooled runtime and must only be called while the runtime is quiescent
// (no driver run in flight).
func (rt *Runtime) ResetPoints() {
	rt.pointMu.Lock()
	for i := range rt.pointLive {
		rt.pointLive[i] = false
	}
	rt.pointLiveCount = 0
	rt.pointNext = 0
	rt.pointMu.Unlock()
	rt.pointsExhausted.Store(0)
	for p := 0; p < rt.opts.MaxPoints; p++ {
		rt.heur.reset(p)
	}
}

// AllocPoints returns n distinct point ids allocated as one block (the
// multi-point form of AllocPoint, for drivers with one point per stage).
// It panics when n exceeds MaxPoints, the static protocol limit.
func (rt *Runtime) AllocPoints(n int) []int {
	if n > rt.opts.MaxPoints {
		panic(fmt.Sprintf("core: AllocPoints(%d) exceeds MaxPoints %d", n, rt.opts.MaxPoints))
	}
	ps := make([]int, n)
	for i := range ps {
		ps[i] = rt.AllocPoint()
	}
	return ps
}

// SetCPULimit bounds the virtual CPUs available to subsequent forks to
// ranks 1..n (clamped to [0, NumCPUs]). A limit of 0 refuses every fork —
// the run executes sequentially. The limit is read at claim time, so it
// should be changed between runs: already-claimed CPUs above a lowered
// limit finish their speculation normally. A runtime pool uses this to
// split one host-CPU budget across concurrent tenants without rebuilding
// runtimes.
func (rt *Runtime) SetCPULimit(n int) {
	if n < 0 {
		n = 0
	}
	if n > rt.opts.NumCPUs {
		n = rt.opts.NumCPUs
	}
	rt.cpuLimit.Store(int32(n))
}

// CPULimit returns the current virtual-CPU claim bound.
func (rt *Runtime) CPULimit() int { return int(rt.cpuLimit.Load()) }

// Run executes fn as the non-speculative thread and returns the paper's
// TN: the critical-path runtime (virtual units or nanoseconds). Any
// speculative threads still outstanding when fn returns are squashed, as the
// paper's runtime does at program exit. Run panics on a closed runtime, and
// re-raises a kernel panic as the typed *KernelPanic (after the run has
// drained — the runtime stays reusable) — the error-reporting form is
// RunCtx (which the public mutls façade uses).
func (rt *Runtime) Run(fn func(t *Thread)) vclock.Cost {
	c, err := rt.RunCtx(context.Background(), fn)
	if err != nil {
		var kp *KernelPanic
		if errors.As(err, &kp) {
			panic(kp)
		}
		panic("core: Run on closed runtime")
	}
	return c
}

// RunCtx executes fn as the non-speculative thread, like Run, under a
// context. It returns ErrClosed (without executing fn) on a closed
// runtime, and ctx.Err() when the context expires before or during the
// run. Cancellation is cooperative: once the context is done, Fork
// refuses new speculation, and the next Thread.CancelPoint poll on the
// non-speculative thread unwinds the run. Either way the runtime drains —
// outstanding speculation is squashed through the join-protocol gates
// exactly as at a normal run end — so the runtime is reusable afterwards.
// A cancelled run's partial effects on the simulated address space are
// unspecified; a pooled runtime recycles (Recycle) before its next tenant.
func (rt *Runtime) RunCtx(ctx context.Context, fn func(t *Thread)) (vclock.Cost, error) {
	if rt.closed.Load() {
		return 0, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if rt.opts.Timing == vclock.Real {
		// Re-stamp the shared epoch so the measured span starts at the
		// run, not at runtime construction (buffer allocation would
		// otherwise pollute wall-clock results). The runtime is quiescent
		// here — workers only read the epoch after a fork hands them a
		// task, which happens after this write.
		rt.epoch = time.Now()
	}
	model := rt.opts.Cost
	t := &Thread{
		rt:    rt,
		rank:  0,
		clock: vclock.NewClock(rt.opts.Timing, &model, rt.epoch),
		stack: mustStackRegion(rt.space, 0),
	}
	t.stackTop = t.stack.Start
	rt.inOrderTail.Store(0)
	rt.cancelled.Store(false)
	// Each run's clock restarts at zero, so the previous run's freeAt
	// stamps would make every CPU look virtually busy until the new clock
	// catches up — refusing all early forks on a reused (pooled) runtime.
	// The runtime is quiescent here: the previous drain waited for every
	// worker, and workers only read freeAt after a fork hands them a task.
	for r := Rank(1); int(r) <= rt.opts.NumCPUs; r++ {
		rt.cpus[r].freeAt.Store(0)
	}
	var stopWatch func()
	if ctx.Done() != nil {
		stopWatch = rt.watchCancel(ctx)
	}
	err := rt.runNonSpec(t, fn)
	if stopWatch != nil {
		stopWatch()
	}
	rt.drain(t)
	rt.cancelled.Store(false)
	runtime := t.clock.Now()
	rt.collector.SetNonSpec(runtime, t.clock.Ledger())
	if err != nil {
		// A context-driven unwind reports the context's error; a kernel
		// panic is the more specific failure and wins even when the
		// context also expired.
		if errors.Is(err, ErrCancelled) {
			if cerr := ctx.Err(); cerr != nil {
				return runtime, cerr
			}
		}
		return runtime, err
	}
	return runtime, nil
}

// runNonSpec runs fn, translating a CancelPoint unwind into ErrCancelled
// and any other panic into a *KernelPanic error. Nothing propagates: the
// caller (RunCtx) always proceeds to the drain, so the runtime stays
// reusable after a kernel panic — the containment contract the serving
// layer depends on.
func (rt *Runtime) runNonSpec(t *Thread, fn func(t *Thread)) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// A panic may have unwound through an open fork window (between
		// MUTLS_get_CPU and MUTLS_speculate): release the claimed CPU or
		// the drain would wait forever for a task that never starts.
		t.abandonOpenFork()
		if _, ok := r.(cancelSignal); ok {
			err = ErrCancelled
			return
		}
		stack := debug.Stack()
		rt.collector.CountKernelPanic(stats.FaultRecord{
			Rank:  0,
			Point: -1,
			Value: fmt.Sprint(r),
			Stack: truncateStack(stack),
		})
		err = &KernelPanic{Value: r, Stack: stack}
	}()
	fn(t)
	return nil
}

// truncateStack bounds a captured stack for the fault record ring.
func truncateStack(s []byte) string {
	const max = 4096
	if len(s) > max {
		return string(s[:max]) + "…"
	}
	return string(s)
}

// watchCancel relays ctx expiry to CancelRun. The returned stop function
// tears the watcher down and waits for it, so no goroutine outlives the
// run it watches.
func (rt *Runtime) watchCancel(ctx context.Context) (stop func()) {
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		select {
		case <-ctx.Done():
			rt.CancelRun()
		case <-quit:
		}
	}()
	return func() {
		close(quit)
		<-finished
	}
}

// CancelRun requests cooperative cancellation of the in-flight run: Fork
// refuses from now on (speculation degrades to sequential execution), and
// the non-speculative thread unwinds at its next CancelPoint poll. RunCtx
// clears the flag when the run ends.
func (rt *Runtime) CancelRun() { rt.cancelled.Store(true) }

// Recycle prepares an idle runtime for its next logical tenant without
// rebuilding it: statistics and live counters reset, the fork/join point
// namespace cleared, and the simulated heap released wholesale (arena and
// buffers are reused as-is). Addresses obtained from Alloc before Recycle
// are invalid afterwards. The runtime must be quiescent (no Run in
// flight) — verified, because recycling under live speculation would hand
// the next tenant a corrupted heap.
func (rt *Runtime) Recycle() {
	if !rt.Quiescent() {
		panic("core: Recycle on a non-quiescent runtime")
	}
	rt.ResetStats()
	rt.ResetPoints()
	if err := rt.space.Heap.Reset(); err != nil {
		// Deregistering live allocations can only fail on registry
		// corruption, which no recycled tenant should inherit.
		panic(err)
	}
}

func mustStackRegion(s *mem.Space, rank int) mem.Range {
	r, err := s.StackRegion(rank)
	if err != nil {
		panic(err)
	}
	return r
}

// drain squashes every thread the non-speculative thread still owns and
// waits for all speculation to quiesce. NOSYNC propagates transitively:
// every outstanding thread is reachable from the non-speculative children
// stack through adoption, and squashed threads squash their own subtrees.
func (rt *Runtime) drain(t *Thread) {
	for _, c := range t.children {
		rt.cpus[c.rank].td.signal(c.epoch, syncNoSync)
	}
	t.children = t.children[:0]
	rt.drainGate.wait(func() bool { return rt.active.Load() == 0 })
}

// Stats summarizes the last Run. Only meaningful with CollectStats. The
// GlobalBuffer counters are aggregated over all virtual CPUs; the runtime
// must be quiescent (Run drains before returning). Like the execution
// records, they accumulate until ResetStats.
func (rt *Runtime) Stats() *stats.Summary {
	s := rt.collector.Summarize(rt.opts.NumCPUs)
	for r := 1; r <= rt.opts.NumCPUs; r++ {
		s.GBuf.Add(rt.cpus[r].gb.Counters())
	}
	s.PointsExhausted = rt.pointsExhausted.Load()
	return s
}

// ResetStats clears collected statistics (execution records, the per-CPU
// GlobalBuffer counters and the live per-point counters) between runs.
func (rt *Runtime) ResetStats() {
	rt.collector.Reset()
	for r := 1; r <= rt.opts.NumCPUs; r++ {
		*rt.cpus[r].gb.Counters() = gbuf.Counters{}
	}
	for i := range rt.live {
		rt.live[i].reset()
	}
	rt.pointsExhausted.Store(0)
}

// Close shuts the workers down. The runtime must be idle (no outstanding
// speculation; Run drains before returning).
func (rt *Runtime) Close() {
	if rt.closed.Swap(true) {
		return
	}
	if rt.watchdogQuit != nil {
		close(rt.watchdogQuit)
		<-rt.watchdogDone
	}
	for r := 1; r <= rt.opts.NumCPUs; r++ {
		close(rt.cpus[r].tasks)
	}
	rt.wg.Wait()
}

// Quiescent reports whether no virtual CPU is claimed or running — the
// precondition for Recycle and the pool's reuse-after-fault verification.
func (rt *Runtime) Quiescent() bool { return rt.active.Load() == 0 }

// watchdog is the runaway-speculation scanner (SpecDeadline > 0): it
// periodically sweeps the virtual CPUs and flags any execution that has
// exceeded its fork point's effective deadline — max(SpecDeadline, 8x the
// point's wall-latency EWMA). The flagged thread rolls itself back at its
// next CheckPoint poll (RollbackDeadline); a flag raised in the window
// after the region already ended is harmless, since runSpec clears
// deadlineHit before the next execution starts.
func (rt *Runtime) watchdog() {
	defer close(rt.watchdogDone)
	tick := rt.opts.SpecDeadline / 4
	if tick < 50*time.Microsecond {
		tick = 50 * time.Microsecond
	}
	if tick > 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-rt.watchdogQuit:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for r := 1; r <= rt.opts.NumCPUs; r++ {
			c := rt.cpus[r]
			s := c.wallStart.Load()
			if s == 0 || c.deadlineHit.Load() {
				continue
			}
			limit := int64(rt.opts.SpecDeadline)
			if p := int(c.specPoint.Load()); p >= 0 && p < len(rt.wallEWMA) {
				if adaptive := 8 * rt.wallEWMA[p].Load(); adaptive > limit {
					limit = adaptive
				}
			}
			if now-s > limit {
				c.deadlineHit.Store(true)
			}
		}
	}
}

// worker is a virtual CPU's goroutine: it waits for speculations and runs
// them through the stop/validate/commit protocol.
func (rt *Runtime) worker(c *cpu) {
	defer rt.wg.Done()
	for task := range c.tasks {
		rt.runSpec(c, task)
	}
}

// regionOutcome describes how a region execution ended.
type regionOutcome struct {
	counter    uint32
	rolledBack bool
	reason     RollbackReason
	// panicVal/panicStack capture a contained fault (reason
	// RollbackFault): the unknown panic value and the stack at recovery.
	panicVal   any
	panicStack []byte
}

// runRegion executes the region, translating the internal stop/rollback
// panics into an outcome. An unknown panic is a speculative fault — the
// expected failure mode of a thread running on mispredicted live-ins
// (out-of-bounds indexing, division by zero, nil dereference) — and
// becomes a RollbackFault outcome instead of crashing the worker: the
// execution is squashed and the joining thread re-executes the chunk
// non-speculatively, which yields the correct sequential result.
func runRegion(t *Thread, region RegionFunc) (out regionOutcome) {
	defer func() {
		if r := recover(); r != nil {
			// Any unwind may have crossed an open fork window; release the
			// claimed CPU before publishing the outcome.
			t.abandonOpenFork()
			switch sig := r.(type) {
			case stopSignal:
				out = regionOutcome{counter: sig.counter}
			case rollbackSignal:
				out = regionOutcome{rolledBack: true, reason: sig.reason}
			default:
				out = regionOutcome{
					rolledBack: true,
					reason:     RollbackFault,
					panicVal:   r,
					panicStack: debug.Stack(),
				}
			}
		}
	}()
	counter := region(t)
	return regionOutcome{counter: counter}
}

// runSpec is the body of one speculative execution: stub entry, region,
// stop, synchronize, validate, commit/rollback, finalize, publish.
func (rt *Runtime) runSpec(c *cpu, task specTask) {
	model := rt.opts.Cost
	t := &Thread{
		rt:          rt,
		rank:        c.td.rank,
		cpu:         c,
		clock:       vclock.NewClock(rt.opts.Timing, &model, rt.epoch),
		stack:       c.stack,
		speculative: true,
	}
	t.stackTop = t.stack.Start
	t.clock.SetNow(task.startAt)
	c.td.buffersFinal = false
	execStart := t.clock.Now()
	c.td.startTime = execStart
	if rt.wallEWMA != nil {
		// Publish this execution on the watchdog's scan surface. The
		// wallStart store comes last: a non-zero wallStart tells the
		// watchdog that specPoint is current and deadlineHit is clear.
		c.deadlineHit.Store(false)
		c.specPoint.Store(int32(c.td.point))
		c.wallStart.Store(time.Now().UnixNano())
	}

	out := runRegion(t, task.region)

	td := &c.td
	if rt.wallEWMA != nil {
		if s := c.wallStart.Swap(0); s != 0 {
			// Fold the observed wall latency into the point's EWMA (alpha
			// 1/8). Load/Store may lose a concurrent worker's update; the
			// EWMA is an advisory deadline scale, not an exact count.
			elapsed := time.Now().UnixNano() - s
			if p := td.point; p >= 0 && p < len(rt.wallEWMA) {
				old := rt.wallEWMA[p].Load()
				rt.wallEWMA[p].Store(old + (elapsed-old)/8)
			}
		}
	}
	if out.rolledBack {
		if out.reason == RollbackFault {
			rt.collector.CountSpecPanic(stats.FaultRecord{
				Rank:  int(td.rank),
				Point: td.point,
				Value: fmt.Sprint(out.panicVal),
				Stack: truncateStack(out.panicStack),
			})
			rt.heur.observeFault(td.point)
		}
		// Self-detected rollback (invalid address, overflow exhaustion,
		// unsafe op): discard buffers now, publish ROLLBACK, then wait for
		// the verdict so children are handed to exactly one side. The
		// overflow flag must be cleared here — it survives from this CPU's
		// previous execution and would misbook the verdict wait as
		// Overflow time.
		rt.finalizeBuffers(t, c)
		td.overflowStop = false
		td.reason = out.reason
		td.stopCounter = 0
		td.stopTime = t.clock.Now()
		td.finalTime = t.clock.Now()
		td.state.Store(cpuReady)
		td.validStatus.Store(validRollback)
		td.gate.wake()
		rt.awaitVerdict(t, c, execStart)
		return
	}

	// Stopped at a check point, barrier point, terminate point or the
	// region's end. Publish the stop, pre-validate the read set while the
	// parent is still running, then wait for the join signal.
	td.stopCounter = out.counter
	td.overflowStop = c.gb.MustStop()
	td.stopTime = t.clock.Now()
	td.state.Store(cpuReady)

	rt.preValidate(t, c)
	verdict := rt.waitSync(t, c)
	if verdict == syncNoSync {
		rt.finishNoSync(t, c, execStart)
		return
	}

	// Both threads have stopped: the speculative thread validates and
	// commits or rolls back (paper §IV-E).
	waitPhase := vclock.Idle
	if td.overflowStop {
		waitPhase = vclock.Overflow
	}
	t.clock.AdvanceTo(td.syncTime.Load(), waitPhase)

	committed := rt.validateAndCommit(t, c)
	rt.finalizeBuffers(t, c)
	td.finalTime = t.clock.Now()
	if committed {
		td.reason = RollbackNone
		td.validStatus.Store(validCommit)
	} else {
		td.validStatus.Store(validRollback)
	}
	td.gate.wake()
	rt.record(t, c, execStart, committed)
	// The parent adopts children, copies locals and reclaims the CPU once
	// the worker signals it is done with the ThreadData.
	td.workerDone.Store(true)
	td.gate.wake()
}

// waitSync waits (spin prefix, then parked) until the parent signals SYNC
// or NOSYNC. In real mode the wait is booked as idle (or overflow) time.
func (rt *Runtime) waitSync(t *Thread, c *cpu) uint64 {
	phase := vclock.Idle
	if c.td.overflowStop {
		phase = vclock.Overflow
	}
	stop := t.clock.Span(phase)
	c.td.gate.wait(func() bool { return c.td.syncStatus() != syncNull })
	stop()
	return c.td.syncStatus()
}

// preValidate runs the read-set walk optimistically, before the parent's
// SYNC hands this thread the commit serial section: the stamp sequence is
// snapshotted, the full read set is compared against the arena, and the
// verdict is remembered so validateAndCommit can limit its lock-time walk
// to the pages dirtied after the snapshot (ValidateDirty). Skipped when
// the parent has already signalled — the serial section is open anyway —
// or when the runtime has no stamp table. Advisory only: no validation
// counters move here.
func (rt *Runtime) preValidate(t *Thread, c *cpu) {
	c.preDone = false
	if !rt.overlapValidation || c.td.syncStatus() != syncNull {
		return
	}
	stop := t.clock.Span(vclock.Validation)
	c.preSnap = rt.stamps.Snapshot()
	c.preOK = c.gb.PreValidate()
	c.preDone = true
	stop()
}

// awaitVerdict handles the tail of a self-rolled-back execution: the parent
// either SYNCs (and then adopts the children and reclaims the CPU) or
// NOSYNCs (and the thread cleans up after itself).
func (rt *Runtime) awaitVerdict(t *Thread, c *cpu, execStart vclock.Cost) {
	verdict := rt.waitSync(t, c)
	if verdict == syncNoSync {
		rt.finishNoSync(t, c, execStart)
		return
	}
	rt.record(t, c, execStart, false)
	c.td.workerDone.Store(true)
	c.td.gate.wake()
}

// finishNoSync is the self-cleanup path of a squashed thread: roll back,
// squash the subtree, release the CPU.
func (rt *Runtime) finishNoSync(t *Thread, c *cpu, execStart vclock.Cost) {
	td := &c.td
	rt.finalizeBuffers(t, c)
	for _, child := range td.children {
		rt.cpus[child.rank].td.signal(child.epoch, syncNoSync)
	}
	td.children = td.children[:0]
	td.reason = RollbackNoSync
	td.finalTime = t.clock.Now()
	rt.heur.observe(td.point, false)
	rt.linearRemove(td.rank)
	rt.record(t, c, execStart, false)
	// The worker is releasing its own CPU; mark itself done so releaseCPU
	// does not wait for anyone.
	td.workerDone.Store(true)
	td.gate.wake()
	rt.releaseCPU(c, td.finalTime)
}

// validateAndCommit runs local-prediction, injected and read-set validation
// and, on success, commits the write set. It returns whether the execution
// committed.
func (rt *Runtime) validateAndCommit(t *Thread, c *cpu) bool {
	model := &rt.opts.Cost
	reads := c.gb.ReadSetSize()
	writes := c.gb.WriteSetSize()
	t.clock.Charge(vclock.Validation, vclock.Cost(reads)*model.ValidatePerWord)

	td := &c.td
	if td.forceInvalid.Load() {
		td.reason = RollbackLocals
		return false
	}
	if rt.opts.RollbackProb > 0 && c.rng.float64() < rt.opts.RollbackProb {
		td.reason = RollbackInjected
		return false
	}
	if plan := rt.opts.FaultPlan; plan != nil {
		// This seam runs on the worker outside runRegion's recover, so a
		// raised panic would crash the process: every destructive kind
		// degrades to a forced rollback here, which is what a commit-time
		// fault means for the protocol anyway.
		switch plan.Decide(faultinject.SiteCommit) {
		case faultinject.KindPanic, faultinject.KindRollback, faultinject.KindOverflow:
			td.reason = RollbackInjected
			return false
		case faultinject.KindDelay:
			time.Sleep(faultinject.Delay)
		case faultinject.KindCancel:
			rt.CancelRun()
		}
	}
	valStop := t.clock.Span(vclock.Validation)
	var ok bool
	if c.preDone && c.preOK {
		// The optimistic pre-validation passed; re-check only the read-set
		// runs on pages stamped after its snapshot. Verdict and counters
		// are identical to a full Validate at this instant.
		ok = c.gb.ValidateDirty(c.dirtyFn)
	} else {
		// No pre-validation ran (or it already failed — the mismatch could
		// have been overwritten since, so the full walk decides).
		ok = c.gb.Validate()
	}
	valStop()
	if !ok {
		td.reason = RollbackValidation
		return false
	}
	t.clock.Charge(vclock.Commit, vclock.Cost(writes)*model.CommitPerWord)
	commitStop := t.clock.Span(vclock.Commit)
	c.gb.Commit(rt.markFn)
	commitStop()
	return true
}

// finalizeBuffers clears the GlobalBuffer, booking the cost proportional to
// the slots actually used. The set sizes at this point are the execution's
// high-water marks (sets only grow during a region), so they are captured
// here for the statistics record. A second call for the same execution (a
// self-rolled-back thread that is then NOSYNCed) is a no-op, so the peaks
// survive until record().
func (rt *Runtime) finalizeBuffers(t *Thread, c *cpu) {
	if c.td.buffersFinal {
		return
	}
	c.td.buffersFinal = true
	model := &rt.opts.Cost
	reads, writes := c.gb.ReadSetSize(), c.gb.WriteSetSize()
	c.td.readPeak, c.td.writePeak = reads, writes
	t.clock.Charge(vclock.Finalize, vclock.Cost(reads+writes)*model.FinalizePerWord)
	stop := t.clock.Span(vclock.Finalize)
	c.gb.Finalize()
	stop()
}

// record emits the execution's statistics record and folds it into the
// live per-point counters (the mid-run feedback surface).
func (rt *Runtime) record(t *Thread, c *cpu, execStart vclock.Cost, committed bool) {
	if p := c.td.point; p >= 0 && p < len(rt.live) {
		rt.live[p].observe(committed, t.clock.Now()-execStart, c.td.readPeak, c.td.writePeak)
	}
	rt.collector.Add(stats.ExecRecord{
		Rank:         int(c.td.rank),
		Point:        c.td.point,
		Start:        execStart,
		End:          t.clock.Now(),
		Ledger:       t.clock.Ledger(),
		Committed:    committed,
		ReadSetPeak:  c.td.readPeak,
		WriteSetPeak: c.td.writePeak,
	})
}

// releaseCPU returns a CPU to the IDLE pool at the given virtual free time,
// updating the most-speculative pointer for the in-order policy. When
// called by the parent (reclaim), it first waits for the worker to finish
// its post-processing so no flag is reset under the worker's feet.
func (rt *Runtime) releaseCPU(c *cpu, freeAt vclock.Cost) {
	if c.td.state.Load() == cpuReady {
		c.td.gate.wait(c.td.workerDone.Load)
	}
	c.freeAt.Store(freeAt)
	// If the retiring thread was the in-order tail, the chain is fully
	// collapsed (joins are sequential) — the non-speculative thread may
	// fork in-order again.
	rt.inOrderTail.CompareAndSwap(tailWord(c.td.rank, c.td.epoch()), 0)
	c.td.validStatus.Store(validNull)
	c.td.forceInvalid.Store(false)
	c.td.workerDone.Store(false)
	c.lb.Reset()
	// Start a new generation: stale references to the old epoch can no
	// longer signal this CPU.
	c.td.bumpEpoch()
	c.td.state.Store(cpuIdle)
	rt.active.Add(-1)
	rt.drainGate.wake()
}

// linearInsert places a MixedLinear child immediately after its parent in
// the logical order (new speculations by the same thread are logically
// earlier than its previous ones, so closest-to-parent is correct).
func (rt *Runtime) linearInsert(parent Rank, child childRef) {
	rt.linearMu.Lock()
	defer rt.linearMu.Unlock()
	pos := 0 // non-speculative parent sits before index 0
	for i, r := range rt.linear {
		if r.rank == parent {
			pos = i + 1
			break
		}
	}
	rt.linear = append(rt.linear, childRef{})
	copy(rt.linear[pos+1:], rt.linear[pos:])
	rt.linear[pos] = child
}

// linearRemove drops a finished thread from the logical order.
func (rt *Runtime) linearRemove(r Rank) {
	rt.linearMu.Lock()
	defer rt.linearMu.Unlock()
	for i, x := range rt.linear {
		if x.rank == r {
			rt.linear = append(rt.linear[:i], rt.linear[i+1:]...)
			return
		}
	}
}

// linearSquash NOSYNCs every thread logically later than r — the
// Mitosis/POSH-style cascading rollback the tree model avoids.
func (rt *Runtime) linearSquash(r Rank) int {
	rt.linearMu.Lock()
	var later []childRef
	for i, x := range rt.linear {
		if x.rank == r {
			later = append(later, rt.linear[i+1:]...)
			rt.linear = rt.linear[:i+1]
			break
		}
	}
	rt.linearMu.Unlock()
	for _, x := range later {
		rt.cpus[x.rank].td.signal(x.epoch, syncNoSync)
	}
	return len(later)
}

// String describes the runtime configuration.
func (rt *Runtime) String() string {
	return fmt.Sprintf("core.Runtime{cpus: %d, timing: %v}", rt.opts.NumCPUs, rt.opts.Timing)
}

// ExecRecords returns the collected execution records of a rank (debugging
// and analysis aid; requires CollectStats).
func (rt *Runtime) ExecRecords(rank int) []stats.ExecRecord {
	return rt.collector.Records(rank)
}
