package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gbuf"
	"repro/internal/lbuf"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// Options configures a Runtime.
type Options struct {
	// NumCPUs is the number of speculative virtual CPUs (ranks 1..NumCPUs).
	// The paper's evaluation machine has 64; virtual timing lets any count
	// run on any host. Zero disables speculation entirely (every fork is
	// refused), which is the paper's 1-total-CPU data point: the paper's
	// x-axis counts the non-speculative thread's CPU as well.
	NumCPUs int

	// Timing selects virtual (deterministic cost model) or real (wall
	// clock) time.
	Timing vclock.Mode

	// RealCPUCap bounds NumCPUs under Real timing. Wall-clock results are
	// only meaningful while every virtual CPU maps to a schedulable OS
	// thread; beyond that the workers time-slice and the measured "speedup"
	// is scheduler noise. Zero selects the default cap,
	// runtime.GOMAXPROCS(0) at NewRuntime time; RealCPUsUncapped disables
	// the clamp (oversubscription experiments, tests that need more virtual
	// CPUs than the host has). Virtual timing is never capped — the modeled
	// machine is independent of the host.
	RealCPUCap int

	// Cost prices runtime events under virtual timing. Zero value selects
	// vclock.DefaultCostModel.
	Cost vclock.CostModel

	// Space configures the simulated address space. Zero value selects
	// mem.DefaultSpaceConfig.
	Space mem.SpaceConfig

	// GBuf selects and sizes the per-CPU GlobalBuffer backend. Zero
	// fields select the gbuf defaults (openaddr backend, default sizing);
	// an unknown backend name or invalid sizing fails NewRuntime.
	GBuf gbuf.Config

	// LBuf configures the per-CPU LocalBuffers. Zero value selects
	// lbuf.DefaultConfig.
	LBuf lbuf.Config

	// RollbackProb forces random rollbacks at validation time with the
	// given probability — the paper's Figure 11 rollback sensitivity
	// experiment.
	RollbackProb float64

	// Seed seeds the per-CPU deterministic generators used for forced
	// rollbacks.
	Seed uint64

	// CollectStats enables the per-thread ledgers and execution records
	// that power Figures 5-9.
	CollectStats bool

	// AdaptiveForkHeuristic disables fork points whose observed rollback
	// rate exceeds HeuristicMaxRollbackRate after HeuristicMinSamples
	// executions (the paper's "different automatic fork heuristics" future
	// work, §VI).
	AdaptiveForkHeuristic bool
	// HeuristicMinSamples is the minimum executions before the heuristic
	// may disable a point. Zero selects 8.
	HeuristicMinSamples int
	// HeuristicMaxRollbackRate is the rollback-rate threshold. Zero
	// selects 0.5.
	HeuristicMaxRollbackRate float64

	// MaxPoints bounds fork/join point ids. Zero selects 64.
	MaxPoints int

	// SpecDeadline arms the runaway-speculation watchdog: a wall-clock
	// floor on how long one speculative execution may run between polls. A
	// mispredicted live-in can make a chunk loop essentially forever; the
	// watchdog flags such executions and their next CheckPoint poll rolls
	// them back (RollbackDeadline, counted in Summary.Faults). The
	// effective per-fork-point deadline is the larger of SpecDeadline and
	// 8x the point's observed mean chunk latency, so a configured floor
	// never kills a point whose chunks are legitimately slow. Zero (the
	// default) disables the watchdog entirely — no goroutine is started.
	// Regions that loop without polling CheckPoint are beyond the
	// watchdog's reach (the pollcheck analyzer flags those statically).
	SpecDeadline time.Duration

	// FaultPlan wires the deterministic fault-injection plane into the
	// runtime's poll/fork/join/store/commit/alloc seams (chaos testing).
	// Nil — the default — injects nothing and adds one pointer check per
	// seam.
	FaultPlan *faultinject.Plan
}

// RealCPUsUncapped disables the Real-timing virtual-CPU clamp.
const RealCPUsUncapped = -1

// withDefaults fills zero values.
func (o Options) withDefaults() (Options, error) {
	if o.NumCPUs < 0 {
		return o, fmt.Errorf("core: NumCPUs must be non-negative, got %d", o.NumCPUs)
	}
	if o.RealCPUCap < RealCPUsUncapped {
		return o, fmt.Errorf("core: RealCPUCap must be non-negative or RealCPUsUncapped, got %d", o.RealCPUCap)
	}
	if o.Timing == vclock.Real && o.RealCPUCap != RealCPUsUncapped {
		limit := o.RealCPUCap
		if limit == 0 {
			limit = runtime.GOMAXPROCS(0)
		}
		if o.NumCPUs > limit {
			o.NumCPUs = limit
		}
	}
	if o.Cost == (vclock.CostModel{}) {
		o.Cost = vclock.DefaultCostModel()
	}
	if o.Space == (mem.SpaceConfig{}) {
		o.Space = mem.DefaultSpaceConfig(o.NumCPUs + 1)
	} else {
		o.Space.NumThreads = o.NumCPUs + 1
	}
	o.GBuf = o.GBuf.WithDefaults()
	if o.LBuf == (lbuf.Config{}) {
		o.LBuf = lbuf.DefaultConfig()
	}
	if o.RollbackProb < 0 || o.RollbackProb > 1 {
		return o, fmt.Errorf("core: RollbackProb %v outside [0,1]", o.RollbackProb)
	}
	if o.HeuristicMinSamples <= 0 {
		o.HeuristicMinSamples = 8
	}
	if o.HeuristicMaxRollbackRate <= 0 {
		o.HeuristicMaxRollbackRate = 0.5
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 64
	}
	if o.SpecDeadline < 0 {
		return o, fmt.Errorf("core: SpecDeadline must be non-negative, got %v", o.SpecDeadline)
	}
	return o, nil
}
