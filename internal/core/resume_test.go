package core

import (
	"testing"

	"repro/internal/gbuf"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// TestCheckPointEarlyStopAndResume exercises the synchronization-table
// protocol: the parent joins while the region is mid-loop; the region
// notices at a check point, saves its live locals and returns a non-zero
// counter; the parent restores the locals and finishes the loop itself.
func TestCheckPointEarlyStopAndResume(t *testing.T) {
	rt := newRT(t, 2, nil)
	const n = 1000
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * n)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		progressed := make(chan struct{})
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			for i := 0; i < n; i++ {
				if i == 10 {
					close(progressed) // let the parent come join us
				}
				if c.CheckPoint() {
					// Stop: save the loop induction variable and where we
					// stopped (synchronization counter 1 = "inside loop").
					c.SaveRegvarInt64(1, int64(i))
					return 1
				}
				c.StoreInt64(p+mem.Addr(8*i), int64(i)*2)
			}
			c.SaveRegvarInt64(1, n)
			return 0
		})
		<-progressed
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("join failed: %v", res.Reason)
		}
		start := 0
		if res.Counter == 1 {
			// Synchronization table: resume the loop at the saved index.
			start = int(res.RegvarInt64(1))
			if start < 10 {
				t.Fatalf("stopped before the signal at i=%d", start)
			}
		} else if res.Counter != 0 {
			t.Fatalf("unexpected counter %d", res.Counter)
		} else {
			start = n
		}
		for i := start; i < n; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), int64(i)*2)
		}
		for i := 0; i < n; i++ {
			if got := t0.LoadInt64(arr + mem.Addr(8*i)); got != int64(i)*2 {
				t.Fatalf("a[%d] = %d", i, got)
			}
		}
	})
}

func TestBarrierPointStopsWithCounter(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0), 5)
			c.SaveRegvarInt64(1, 99)
			c.BarrierPoint(7)
			panic("unreachable: BarrierPoint returns only non-speculatively")
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() || res.Counter != 7 {
			t.Fatalf("status %v counter %d", res.Status, res.Counter)
		}
		if res.RegvarInt64(1) != 99 {
			t.Fatal("locals saved before barrier lost")
		}
		if t0.LoadInt64(arr) != 5 {
			t.Fatal("work before barrier not committed")
		}
	})
}

func TestBarrierIsNoopNonSpeculative(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		t0.BarrierPoint(3)   // must return
		t0.TerminatePoint(4) // must return
		t0.PtrIntCast(12345, 5)
		if t0.CheckPoint() {
			t.Fatal("non-speculative check point reported a stop")
		}
		t0.EnterPoint(1, 1)
		t0.ReturnPoint(2)
		if t0.FrameDepth() != 0 {
			t.Fatal("frame depth on non-speculative thread")
		}
	})
}

func TestTerminatePointBeforeUnsafeOp(t *testing.T) {
	// The paper terminates speculation at external/unsafe calls: the region
	// stops, the parent re-executes the unsafe part from the counter.
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(24)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.StoreInt64(p, 1) // safe prefix
			c.SaveRegvarAddr(1, p)
			c.TerminatePoint(2) // about to "allocate": unsafe
			panic("unreachable")
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() || res.Counter != 2 {
			t.Fatalf("status %v counter %d", res.Status, res.Counter)
		}
		// Parent performs the unsafe operation from synchronization block 2.
		p := res.RegvarAddr(1)
		q := t0.Alloc(8)
		t0.StoreAddr(p+8, q)
		if t0.LoadInt64(arr) != 1 {
			t.Fatal("prefix lost")
		}
	})
}

func TestPtrIntCastGlobalValueContinues(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.PtrIntCast(p, 3) // global address: no stop
			c.StoreInt64(p, 42)
			return 0
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() || res.Counter != 0 {
			t.Fatalf("status %v counter %d", res.Status, res.Counter)
		}
		if t0.LoadInt64(arr) != 42 {
			t.Fatal("write lost")
		}
	})
}

func TestPtrIntCastSpeculativeStackValueStops(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.Start(func(c *Thread) uint32 {
			sp := c.StackAlloc(8) // speculative stack address
			c.PtrIntCast(sp, 4)   // not global: must stop at counter 4
			panic("unreachable")
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() || res.Counter != 4 {
			t.Fatalf("status %v counter %d", res.Status, res.Counter)
		}
	})
}

func TestStackvarCommitAndPointerMapping(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		// A stack variable in the parent's (non-speculative, global) stack.
		home := t0.StackAlloc(16)
		t0.StoreInt64(home, 3)
		t0.StoreInt64(home+8, 4)

		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetStackvar(0, home, 16)
		h.Start(func(c *Thread) uint32 {
			sp := c.GetStackvar(0) // child's own copy, on its own stack
			// Mutate through the speculative copy.
			c.StoreInt64(sp, c.LoadInt64(sp)*10)
			c.StoreInt64(sp+8, c.LoadInt64(sp+8)*10)
			c.SaveStackvar(0, sp, 16)
			// Save a pointer INTO the speculative copy: commit must map it
			// back to the parent's variable.
			c.SaveRegvarAddr(1, sp+8)
			return 0
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("join failed: %v", res.Reason)
		}
		// The stack variable's final bytes reached the parent copy.
		if a, b := t0.LoadInt64(home), t0.LoadInt64(home+8); a != 30 || b != 40 {
			t.Fatalf("committed stackvar = %d,%d", a, b)
		}
		// The pointer mapping mechanism translated the speculative stack
		// pointer to the parent's address (per-variable offset).
		if got := res.RegvarAddr(1); got != home+8 {
			t.Fatalf("mapped pointer = %d, want %d", got, home+8)
		}
	})
}

func TestStackPointerWithoutMappingStaysRaw(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		g := t0.Alloc(8)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, g)
		h.Start(func(c *Thread) uint32 {
			c.SaveRegvarAddr(1, c.GetRegvarAddr(0)) // global pointer: unmapped
			return 0
		})
		res := t0.Join(ranks, 0)
		if got := res.RegvarAddr(1); got != g {
			t.Fatalf("global pointer changed: %d != %d", got, g)
		}
	})
}

// TestStackFrameReconstruction follows §IV-H: the region descends into a
// nested call (EnterPoint), stops inside it, and the joining thread replays
// the recorded frames — re-entering each function at its recorded call
// site — to replicate the call chain and finish the work.
func TestStackFrameReconstruction(t *testing.T) {
	rt := newRT(t, 2, nil)
	const (
		funcInner    = 7
		callSiteLoop = 3
		counterInner = 9
	)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(32)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.StoreInt64(p, 1) // outer work
			// Descend into the nested "inner" function.
			c.EnterPoint(funcInner, callSiteLoop)
			c.SaveRegvarInt64(0, 123) // inner frame local
			c.SaveRegvarAddr(1, p)    // inner frame's copy of the pointer
			c.StoreInt64(p+8, 2)      // inner work
			// Stop inside the nested call.
			c.BarrierPoint(counterInner)
			panic("unreachable")
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("join failed: %v", res.Reason)
		}
		if res.Counter != counterInner {
			t.Fatalf("counter %d", res.Counter)
		}
		frames := res.Frames()
		if len(frames) != 1 {
			t.Fatalf("frames = %d, want 1 nested frame", len(frames))
		}
		f := frames[0]
		if f.FuncID != funcInner || f.CallSite != callSiteLoop {
			t.Fatalf("frame %+v", f)
		}
		// MUTLS_synchronize_entry equivalent: the parent replicates the
		// call chain — here simply checks the inner frame's saved local and
		// finishes the inner function's remaining work.
		if !f.RegLive[0] || f.Regs[0] != 123 {
			t.Fatalf("inner frame locals %v %v", f.Regs[0], f.RegLive[0])
		}
		if !f.RegLive[1] {
			t.Fatal("inner frame pointer not recorded")
		}
		p := mem.Addr(f.Regs[1])
		t0.StoreInt64(p+16, 3) // the work after the stop, done by the parent
		if a, b, c := t0.LoadInt64(arr), t0.LoadInt64(arr+8), t0.LoadInt64(arr+16); a != 1 || b != 2 || c != 3 {
			t.Fatalf("memory %d,%d,%d", a, b, c)
		}
	})
}

func TestReturnPointPopsFrames(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		depths := make(chan int, 3)
		h.Start(func(c *Thread) uint32 {
			depths <- c.FrameDepth()
			c.EnterPoint(1, 1)
			depths <- c.FrameDepth()
			c.ReturnPoint(5) // matched: pops, does not stop
			depths <- c.FrameDepth()
			return 0
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() || res.Counter != 0 {
			t.Fatalf("status %v counter %d", res.Status, res.Counter)
		}
		if d := <-depths; d != 1 {
			t.Fatalf("entry depth %d", d)
		}
		if d := <-depths; d != 2 {
			t.Fatalf("nested depth %d", d)
		}
		if d := <-depths; d != 1 {
			t.Fatalf("post-return depth %d", d)
		}
	})
}

func TestReturnFromEntryFunctionStops(t *testing.T) {
	// §IV-H: speculative threads are restricted from returning from their
	// entry function; the return point turns into a stop.
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.Start(func(c *Thread) uint32 {
			c.ReturnPoint(11) // at entry depth: stop with counter 11
			panic("unreachable")
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() || res.Counter != 11 {
			t.Fatalf("status %v counter %d", res.Status, res.Counter)
		}
	})
}

func TestOverflowForcesStopAtCheckPoint(t *testing.T) {
	// A 2-word GlobalBuffer: the third distinct word collides and lands in
	// the overflow buffer; the thread must stop at its next check point and
	// wait to be joined (paper §IV-G2).
	rt := newRT(t, 2, func(o *Options) {
		o.GBuf = gbuf.Config{LogWords: 1, OverflowCap: 4}
	})
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * 64)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			i := int64(0)
			for ; i < 8; i++ {
				c.StoreInt64(p+mem.Addr(8*i), i+100)
				if c.CheckPoint() {
					c.SaveRegvarInt64(1, i+1)
					return 1
				}
			}
			c.SaveRegvarInt64(1, i)
			return 0
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("overflowed thread rolled back: %v", res.Reason)
		}
		done := res.RegvarInt64(1)
		if res.Counter == 1 && done == 8 {
			t.Fatal("counter says early stop but loop completed")
		}
		// Parent finishes the rest.
		for i := done; i < 8; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), i+100)
		}
		for i := int64(0); i < 8; i++ {
			if got := t0.LoadInt64(arr + mem.Addr(8*i)); got != i+100 {
				t.Fatalf("a[%d] = %d", i, got)
			}
		}
	})
	// The early stop must have happened (2-word map, 8 distinct words).
	s := rt.Stats()
	if s.Commits != 1 {
		t.Fatalf("commits %d", s.Commits)
	}
}

func TestOverflowExhaustionRollsBack(t *testing.T) {
	// No check points at all: the overflow buffer fills up and the thread
	// has to roll back.
	rt := newRT(t, 2, func(o *Options) {
		o.GBuf = gbuf.Config{LogWords: 1, OverflowCap: 2}
	})
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * 64)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			for i := int64(0); i < 16; i++ {
				c.StoreInt64(p+mem.Addr(8*i), i)
			}
			return 0
		})
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack || res.Reason != RollbackOverflow {
			t.Fatalf("status %v reason %v", res.Status, res.Reason)
		}
	})
}

func TestRealTimingMode(t *testing.T) {
	rt := newRT(t, 2, func(o *Options) {
		o.Timing = vclock.Real
		// The test needs both virtual CPUs regardless of the host's core
		// count; wall-clock fidelity is not what it measures.
		o.RealCPUCap = RealCPUsUncapped
	})
	var sum int64
	tn := rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * 128)
		for i := 0; i < 128; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), int64(i))
		}
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			s := int64(0)
			for i := 64; i < 128; i++ {
				s += c.LoadInt64(p + mem.Addr(8*i))
			}
			c.SaveRegvarInt64(1, s)
			return 0
		})
		for i := 0; i < 64; i++ {
			sum += t0.LoadInt64(arr + mem.Addr(8*i))
		}
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("real-mode join failed: %v", res.Reason)
		}
		sum += res.RegvarInt64(1)
	})
	if sum != 127*128/2 {
		t.Fatalf("sum %d", sum)
	}
	if tn <= 0 {
		t.Fatal("real runtime not positive")
	}
	s := rt.Stats()
	if s.Executions != 1 || s.SpecRuntime <= 0 {
		t.Fatalf("real-mode stats %+v", s)
	}
}
