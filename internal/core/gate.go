package core

import (
	"runtime"
	"sync"
)

// gateSpin is the number of scheduler-yield probes a waiter burns before
// parking. The spin prefix keeps the common case — the awaited flag is
// published within a few scheduler quanta — free of lock traffic, while
// long waits (virtual CPUs outnumbering GOMAXPROCS, a child still deep in
// its region) park the goroutine instead of churning the run queue.
const gateSpin = 64

// waitGate parks a goroutine until a predicate over published atomics
// holds. It replaces the runtime.Gosched() spin loops of the join
// handshake: a spinning waiter occupies a real CPU the awaited thread may
// need, which on hosts with fewer cores than virtual CPUs turns every
// join into a scheduler fight. The zero value is not ready; call init
// before use (NewRuntime does).
type waitGate struct {
	mu   sync.Mutex
	cond sync.Cond
}

func (g *waitGate) init() { g.cond.L = &g.mu }

// wait returns once pred() holds. pred must read only atomics: it is
// called both outside and inside the gate lock.
func (g *waitGate) wait(pred func() bool) {
	for i := 0; i < gateSpin; i++ {
		if pred() {
			return
		}
		runtime.Gosched()
	}
	g.mu.Lock()
	for !pred() {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// wake unparks all waiters. The caller must publish the state the
// waiters' predicates read (an atomic store) BEFORE calling wake: the
// broadcast is taken under the gate lock, so a waiter has either already
// observed the new state or is parked and receives the broadcast — the
// store-check-park gap of a bare signal cannot lose the wakeup.
func (g *waitGate) wake() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}
