package core

import (
	"testing"

	"repro/internal/vclock"
)

func TestProbeChainTiming(t *testing.T) {
	rt := newRT(t, 63, nil)
	tn := rt.Run(func(t0 *Thread) {
		var region RegionFunc
		fork := func(c *Thread, ranks []Rank, next int64) {
			if next >= 64 {
				return
			}
			if h := c.Fork(ranks, 0, InOrder); h != nil {
				h.SetRegvarInt64(0, next)
				h.Start(region)
			}
		}
		region = func(c *Thread) uint32 {
			idx := c.GetRegvarInt64(0)
			ranks := []Rank{0}
			fork(c, ranks, idx+1)
			c.Tick(30000)
			c.SaveRegvarInt64(1, int64(ranks[0]))
			return 0
		}
		ranks := []Rank{0}
		fork(t0, ranks, 1)
		t0.Tick(30000)
		for idx := 1; idx < 64; idx++ {
			res := t0.Join(ranks, 0)
			if res.Committed() {
				ranks[0] = Rank(res.RegvarInt64(1))
			} else {
				t.Errorf("chunk %d: %v", idx, res.Status)
				ranks[0] = 0
				fork(t0, ranks, int64(idx+1))
				t0.Tick(30000)
			}
		}
	})
	s := rt.Stats()
	t.Logf("Tn=%d (ideal ~30000+overheads) idle=%d commits=%d", tn, s.NonSpecLedger[vclock.Idle], s.Commits)
}
