package core

import (
	"testing"

	"repro/internal/mem"
)

// TestJoinResultCarriesLatencyAndPeaks: a committed join reports the
// speculation's occupied interval and its buffer high-water marks.
func TestJoinResultCarriesLatencyAndPeaks(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(64)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork failed")
		}
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.Tick(100)
			for i := 0; i < 4; i++ {
				c.StoreInt64(p+mem.Addr(8*i), int64(i))
			}
			return 0
		})
		res := t0.Join(ranks, 0)
		if res.Status != JoinCommitted {
			t.Fatalf("join status %v", res.Status)
		}
		if res.Latency <= 0 {
			t.Fatalf("committed join latency %d, want > 0", res.Latency)
		}
		if res.WriteSetPeak != 4 {
			t.Fatalf("WriteSetPeak %d, want 4", res.WriteSetPeak)
		}
	})
}

// TestPointCountersTrackOutcomes: the live counters separate commits from
// rollbacks per point and are windowable with Sub.
func TestPointCountersTrackOutcomes(t *testing.T) {
	rt := newRT(t, 2, func(o *Options) { o.RollbackProb = 1.0; o.Seed = 5 })
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8)
		for i := 0; i < 3; i++ {
			ranks := make([]Rank, 1)
			h := t0.Fork(ranks, 0, Mixed)
			if h == nil {
				t.Fatal("fork failed")
			}
			h.SetRegvarAddr(0, arr)
			h.Start(func(c *Thread) uint32 {
				c.Tick(10)
				c.StoreInt64(c.GetRegvarAddr(0), 1)
				return 0
			})
			if res := t0.Join(ranks, 0); res.Committed() {
				t.Fatal("RollbackProb=1 committed")
			}
		}
	})
	pc := rt.PointCounters(0)
	if pc.Commits != 0 || pc.Rollbacks != 3 {
		t.Fatalf("counters %+v, want 3 rollbacks", pc)
	}
	if pc.RollbackRate() != 1.0 {
		t.Fatalf("rollback rate %v, want 1", pc.RollbackRate())
	}
	if pc.RollbackLatency <= 0 {
		t.Fatalf("rollback latency %d, want > 0", pc.RollbackLatency)
	}
	diff := pc.Sub(PointCounters{Rollbacks: 1, RollbackLatency: 1})
	if diff.Rollbacks != 2 || diff.RollbackLatency != pc.RollbackLatency-1 {
		t.Fatalf("Sub window %+v", diff)
	}
}

// TestSquashChildrenReclaims: squashing an abandoned child frees its CPU
// for a later fork and returns the in-order fork mantle to the squasher.
func TestSquashChildrenReclaims(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		mark := t0.ChildMark()
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, InOrder)
		if h == nil {
			t.Fatal("fork failed")
		}
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0), 99)
			return 0
		})
		// Abandon the child without joining it: squash instead.
		t0.SquashChildren(mark)
		if got := t0.ChildMark(); got != mark {
			t.Fatalf("children stack depth %d after squash, want %d", got, mark)
		}
		// The in-order mantle is back: a new in-order fork must succeed
		// once the squashed thread has drained its CPU.
		ranks[0] = 0
		var h2 *ForkHandle
		for h2 == nil {
			h2 = t0.Fork(ranks, 0, InOrder)
		}
		h2.SetRegvarAddr(0, arr)
		h2.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0)+8, 7)
			return 0
		})
		if res := t0.Join(ranks, 0); res.Status != JoinCommitted {
			t.Fatalf("post-squash join status %v (reason %v)", res.Status, res.Reason)
		}
		if got := t0.LoadInt64(arr + 8); got != 7 {
			t.Fatalf("post-squash speculation wrote %d, want 7", got)
		}
		// The squashed child's write must never have committed.
		if got := t0.LoadInt64(arr); got != 0 {
			t.Fatalf("squashed speculation committed %d", got)
		}
	})
}
