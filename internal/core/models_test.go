package core

import (
	"testing"

	"repro/internal/mem"
)

// chunkSum builds the in-order loop pattern of the paper's 3x+1 benchmark:
// the array is split into nChunks chunks; each region forks the next chunk
// before summing its own, and the non-speculative thread joins them in
// order, restoring the chained ranks variable from the saved locals.
func chunkSum(t *testing.T, rt *Runtime, model Model, n, nChunks int) int64 {
	t.Helper()
	var total int64
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * n)
		for i := 0; i < n; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), int64(i+1))
		}
		out := t0.Alloc(8 * nChunks)
		chunk := n / nChunks

		var region RegionFunc
		body := func(c *Thread, idx int, ranks []Rank) {
			// Fork the next chunk first (the paper's fork point sits at the
			// top of the loop body).
			if idx+1 < nChunks {
				if h := c.Fork(ranks, 0, model); h != nil {
					h.SetRegvarInt64(0, int64(idx+1))
					h.SetRegvarAddr(1, arr)
					h.SetRegvarAddr(2, out)
					h.Start(region)
				}
			}
			sum := int64(0)
			for i := idx * chunk; i < (idx+1)*chunk; i++ {
				sum += c.LoadInt64(arr + mem.Addr(8*i))
			}
			c.StoreInt64(out+mem.Addr(8*idx), sum)
		}
		region = func(c *Thread) uint32 {
			idx := int(c.GetRegvarInt64(0))
			ranks := []Rank{0}
			body(c, idx, ranks)
			// The chained ranks array is live at the join point: save it.
			c.SaveRegvarInt64(3, int64(ranks[0]))
			return 0
		}

		ranks := []Rank{0}
		body(t0, 0, ranks)
		for idx := 1; idx < nChunks; idx++ {
			res := t0.Join(ranks, 0)
			switch res.Status {
			case JoinCommitted:
				ranks[0] = Rank(res.RegvarInt64(3))
			case JoinNotForked, JoinRolledBack:
				// Execute the chunk non-speculatively, re-forking the rest
				// of the chain where the model allows.
				ranks[0] = 0
				body(t0, idx, ranks)
			}
		}
		for i := 0; i < nChunks; i++ {
			total += t0.LoadInt64(out + mem.Addr(8*i))
		}
	})
	return total
}

func TestInOrderChunkedLoop(t *testing.T) {
	rt := newRT(t, 8, nil)
	n := 64
	got := chunkSum(t, rt, InOrder, n, 8)
	want := int64(n * (n + 1) / 2)
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	s := rt.Stats()
	if s.Commits != 7 {
		t.Fatalf("commits = %d, want 7 (one per non-first chunk)", s.Commits)
	}
	if s.Rollbacks != 0 {
		t.Fatalf("rollbacks = %d", s.Rollbacks)
	}
}

func TestInOrderOnlyMostSpeculativeForks(t *testing.T) {
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 2)
		h := t0.Fork(ranks, 0, InOrder)
		if h == nil {
			t.Fatal("non-speculative thread is most speculative initially; fork must succeed")
		}
		started := make(chan struct{})
		release := make(chan struct{})
		h.Start(func(c *Thread) uint32 {
			close(started)
			<-release
			return 0
		})
		<-started
		// The parent is no longer the most speculative thread: an in-order
		// fork from it must be refused while the child is outstanding.
		if h2 := t0.Fork(ranks, 1, InOrder); h2 != nil {
			t.Fatal("in-order fork from non-most-speculative thread succeeded")
		}
		close(release)
		t0.Join(ranks, 0)
		// After the chain collapses the parent is most speculative again.
		if h3 := t0.Fork(ranks, 1, InOrder); h3 == nil {
			t.Fatal("in-order fork refused after chain collapsed")
		} else {
			h3.Start(func(c *Thread) uint32 { return 0 })
			t0.Join(ranks, 1)
		}
	})
}

func TestOutOfOrderSpeculativeThreadCannotFork(t *testing.T) {
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, OutOfOrder)
		if h == nil {
			t.Fatal("out-of-order fork from the non-speculative thread failed")
		}
		childForked := make(chan bool, 1)
		h.Start(func(c *Thread) uint32 {
			cr := []Rank{0}
			childForked <- c.Fork(cr, 0, OutOfOrder) != nil
			return 0
		})
		if <-childForked {
			t.Fatal("speculative thread forked under the out-of-order model")
		}
		t0.Join(ranks, 0)
	})
}

func TestOutOfOrderLoopBoundedToTwoThreads(t *testing.T) {
	// The paper §II: out-of-order bounds loop speculation to two threads
	// because speculative threads cannot launch further iterations.
	rt := newRT(t, 8, nil)
	chunkSum(t, rt, OutOfOrder, 64, 8)
	s := rt.Stats()
	// Every successful speculation came from the non-speculative thread;
	// at no time were two speculative chunk threads outstanding. We verify
	// the weaker, deterministic consequence: at most one child per join.
	if s.Commits+s.Rollbacks == 0 {
		t.Fatal("no speculation happened at all")
	}
	if got := chunkSum(t, newRT(t, 8, nil), OutOfOrder, 64, 8); got != 64*65/2 {
		t.Fatalf("out-of-order sum wrong: %d", got)
	}
}

// spineEntry records one speculated right half: its range and the child's
// rank (what the paper keeps in the saved `ranks` stack variable).
type spineEntry struct {
	rank   Rank
	lo, hi int
}

// treeDrive runs a divide-and-conquer computation over [lo0,hi0) under the
// paper's tree-form protocol: every thread (speculative or not) forks the
// right half at each level and descends left; a speculative region, having
// reached the join point of its deepest fork, saves its spine and stops
// with SyncParent (Fig. 2(d)); the non-speculative driver then joins the
// tree in sequential (reverse in-order) order, committing each thread and
// enqueueing the spine it left behind. Rolled-back ranges are re-executed
// inline, possibly re-speculating.
func treeDrive(t0 *Thread, lo0, hi0, leafSize int, model Model, leafWork func(c *Thread, lo, hi int)) {
	var region RegionFunc
	var doRange func(c *Thread, lo, hi int) []spineEntry
	doRange = func(c *Thread, lo, hi int) []spineEntry {
		if hi-lo <= leafSize {
			leafWork(c, lo, hi)
			return nil
		}
		mid := (lo + hi) / 2
		ranks := []Rank{0}
		h := c.Fork(ranks, 0, model)
		if h != nil {
			h.SetRegvarInt64(0, int64(mid))
			h.SetRegvarInt64(1, int64(hi))
			h.Start(region)
		}
		left := doRange(c, lo, mid)
		if h != nil {
			return append(left, spineEntry{ranks[0], mid, hi})
		}
		return append(left, doRange(c, mid, hi)...)
	}
	region = func(c *Thread) uint32 {
		lo := int(c.GetRegvarInt64(0))
		hi := int(c.GetRegvarInt64(1))
		spine := doRange(c, lo, hi)
		// Save the spine (the live ranks/range locals at the join point).
		c.SaveRegvarInt64(0, int64(len(spine)))
		for i, e := range spine {
			c.SaveRegvarInt64(1+3*i, int64(e.rank))
			c.SaveRegvarInt64(2+3*i, int64(e.lo))
			c.SaveRegvarInt64(3+3*i, int64(e.hi))
		}
		if len(spine) == 0 {
			return 0 // pure leaf: ran to the region's end
		}
		c.SyncParent(1) // stop at the deepest join point
		return 0        // not reached speculatively
	}
	readSpine := func(res JoinResult) []spineEntry {
		n := int(res.RegvarInt64(0))
		out := make([]spineEntry, n)
		for i := range out {
			out[i] = spineEntry{
				rank: Rank(res.RegvarInt64(1 + 3*i)),
				lo:   int(res.RegvarInt64(2 + 3*i)),
				hi:   int(res.RegvarInt64(3 + 3*i)),
			}
		}
		return out
	}
	sortByLo := func(es []spineEntry) {
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && es[j].lo < es[j-1].lo; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
	}
	queue := doRange(t0, lo0, hi0)
	sortByLo(queue)
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		rk := []Rank{e.rank}
		res := t0.Join(rk, 0)
		var next []spineEntry
		if res.Committed() {
			next = readSpine(res)
		} else {
			next = doRange(t0, e.lo, e.hi)
		}
		sortByLo(next)
		queue = append(next, queue...)
	}
}

func TestMixedTreeRecursion(t *testing.T) {
	// Divide and conquer over an array (the paper's fft/matmult shape):
	// every thread may fork under the mixed model, so a whole tree of
	// threads appears, joined in sequential order by the driver.
	rt := newRT(t, 8, nil)
	n := 256
	var got int64
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8 * n)
		for i := 0; i < n; i++ {
			t0.StoreInt64(arr+mem.Addr(8*i), int64(i+1))
		}
		treeDrive(t0, 0, n, 16, Mixed, func(c *Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.StoreInt64(arr+mem.Addr(8*i), c.LoadInt64(arr+mem.Addr(8*i))*3)
			}
		})
		for i := 0; i < n; i++ {
			got += t0.LoadInt64(arr + mem.Addr(8*i))
		}
	})
	want := int64(3 * n * (n + 1) / 2)
	if got != want {
		t.Fatalf("tree result = %d, want %d", got, want)
	}
	s := rt.Stats()
	if s.Commits < 3 {
		t.Fatalf("only %d commits; tree did not fan out", s.Commits)
	}
	if s.Rollbacks != 0 {
		t.Fatalf("disjoint tree rolled back %d times", s.Rollbacks)
	}
}

func TestMixedModelSpeculativeThreadForks(t *testing.T) {
	// A speculative thread forks a grandchild and hands it upward with
	// SyncParent; the non-speculative thread joins child then grandchild.
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			cr := []Rank{0}
			h2 := c.Fork(cr, 0, Mixed)
			if h2 == nil {
				c.SaveRegvarInt64(1, 0)
				return 0
			}
			h2.SetRegvarAddr(0, p)
			h2.Start(func(g *Thread) uint32 {
				g.StoreInt64(g.GetRegvarAddr(0)+8, 2)
				return 0
			})
			c.StoreInt64(p, 1)
			// At the grandchild's join point: hand over to the parent.
			c.SaveRegvarInt64(1, int64(cr[0]))
			c.SyncParent(1)
			return 0
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("child join: %v", res.Reason)
		}
		grand := Rank(res.RegvarInt64(1))
		if grand == 0 {
			t.Fatal("grandchild was not forked")
		}
		if res.Counter != 1 {
			t.Fatalf("child stopped at counter %d, want the join point", res.Counter)
		}
		rk := []Rank{grand}
		res2 := t0.Join(rk, 0)
		if !res2.Committed() {
			t.Fatalf("grandchild join: %v", res2.Reason)
		}
		if a, b := t0.LoadInt64(arr), t0.LoadInt64(arr+8); a != 1 || b != 2 {
			t.Fatalf("memory %d,%d", a, b)
		}
	})
}

func TestJoinOnSpeculativeThreadPanics(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		panicked := make(chan bool, 1)
		h.Start(func(c *Thread) uint32 {
			func() {
				defer func() { panicked <- recover() != nil }()
				c.Join([]Rank{1}, 0)
			}()
			return 0
		})
		if !<-panicked {
			t.Fatal("speculative Join did not panic")
		}
		t0.Join(ranks, 0)
	})
}

func TestAdoptionAcrossRollback(t *testing.T) {
	// The tree model's key property (§IV-F): when a child rolls back, its
	// children are preserved — adopted by the joining thread — and can
	// still commit ("local conflicts do not incur global rollbacks").
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(32)
		t0.StoreInt64(arr, 1)
		ranks := make([]Rank, 2)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		grandRank := make(chan Rank, 1)
		readDone := make(chan struct{})
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			// Fork a grandchild that only touches disjoint memory.
			cr := []Rank{0}
			h2 := c.Fork(cr, 0, Mixed)
			h2.SetRegvarAddr(0, p)
			h2.Start(func(g *Thread) uint32 {
				g.StoreInt64(g.GetRegvarAddr(0)+16, 555)
				return 0
			})
			grandRank <- cr[0]
			// Now make this child conflict: read arr before the parent
			// writes it.
			v := c.LoadInt64(p)
			close(readDone)
			c.StoreInt64(p+8, v)
			c.SaveRegvarInt64(1, int64(cr[0]))
			return 0
		})
		<-readDone
		t0.StoreInt64(arr, 2) // conflict with the child's read
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack {
			t.Fatalf("child unexpectedly %v", res.Status)
		}
		// The grandchild was adopted: join it via its recorded rank.
		ranks[1] = <-grandRank
		res2 := t0.Join(ranks, 1)
		if res2.Status != JoinCommitted {
			t.Fatalf("adopted grandchild did not commit: %v (%v)", res2.Status, res2.Reason)
		}
		if got := t0.LoadInt64(arr + 16); got != 555 {
			t.Fatalf("grandchild's work lost: %d", got)
		}
		// The rolled-back child's write must be gone.
		if got := t0.LoadInt64(arr + 8); got != 0 {
			t.Fatalf("rolled-back write leaked: %d", got)
		}
	})
	s := rt.Stats()
	if s.Commits != 1 || s.Rollbacks != 1 {
		t.Fatalf("commits=%d rollbacks=%d", s.Commits, s.Rollbacks)
	}
}

func TestJoinMismatchNoSyncsPoppedChildren(t *testing.T) {
	// Joining out of fork order violates the mixed-model assumption: the
	// popped mismatches get NOSYNC and are squashed.
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(32)
		ranks := make([]Rank, 2)
		h1 := t0.Fork(ranks, 0, Mixed)
		h1.SetRegvarAddr(0, arr)
		h1.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0), 11)
			return 0
		})
		h2 := t0.Fork(ranks, 1, Mixed)
		h2.SetRegvarAddr(0, arr)
		h2.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0)+8, 22)
			return 0
		})
		// Join point 0 first: its thread was forked first, so the pop
		// finds point 1's thread on top — mismatch, NOSYNC, squash.
		res := t0.Join(ranks, 0)
		if res.Status != JoinCommitted {
			t.Fatalf("matched join failed: %v (%v)", res.Status, res.Reason)
		}
		// Point 1's thread is gone from the children stack.
		res2 := t0.Join(ranks, 1)
		if res2.Status != JoinRolledBack || res2.Reason != RollbackNoSync {
			t.Fatalf("squashed join: %v (%v)", res2.Status, res2.Reason)
		}
		if got := t0.LoadInt64(arr + 8); got != 0 {
			t.Fatalf("squashed thread committed: %d", got)
		}
		if got := t0.LoadInt64(arr); got != 11 {
			t.Fatalf("matched thread's commit lost: %d", got)
		}
	})
}

func TestMixedLinearSquashCascades(t *testing.T) {
	// The Mitosis/POSH-style baseline: a rollback squashes every logically
	// later thread even without data dependence — the cascade the tree
	// model avoids (compare with TestAdoptionAcrossRollback).
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(64)
		t0.StoreInt64(arr, 1)
		ranks := make([]Rank, 2)

		// Thread A (logically earlier) will conflict and roll back.
		hA := t0.Fork(ranks, 0, MixedLinear)
		hA.SetRegvarAddr(0, arr)
		readDone := make(chan struct{})
		hA.Start(func(c *Thread) uint32 {
			v := c.LoadInt64(c.GetRegvarAddr(0))
			close(readDone)
			c.StoreInt64(c.GetRegvarAddr(0)+8, v)
			return 0
		})
		<-readDone

		// Thread B (logically later, forked later from the same thread is
		// logically EARLIER under out-of-order child order... so fork B
		// from point 1 after A: B is logically earlier than A. To place a
		// thread logically AFTER A we need A to be joined first; instead we
		// simply verify the squash of everything after A in the linear
		// order, which here is nothing — so fork B first, then A.)
		_ = hA
		t0.StoreInt64(arr, 2) // conflict for A
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack {
			t.Fatalf("A did not roll back: %v", res.Status)
		}
	})
}

func TestMixedLinearSquashesLaterSiblings(t *testing.T) {
	// Fork order: first X (logically latest), then A (logically earlier).
	// A's rollback must squash X under the linear model, because X is
	// logically later than A.
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(64)
		t0.StoreInt64(arr, 1)
		ranks := make([]Rank, 2)

		hX := t0.Fork(ranks, 1, MixedLinear) // logically latest
		hX.SetRegvarAddr(0, arr)
		xStarted := make(chan struct{})
		hX.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0)+16, 999)
			close(xStarted)
			return 0
		})
		<-xStarted

		hA := t0.Fork(ranks, 0, MixedLinear) // logically earlier than X
		hA.SetRegvarAddr(0, arr)
		readDone := make(chan struct{})
		hA.Start(func(c *Thread) uint32 {
			v := c.LoadInt64(c.GetRegvarAddr(0))
			close(readDone)
			c.StoreInt64(c.GetRegvarAddr(0)+8, v)
			return 0
		})
		<-readDone
		t0.StoreInt64(arr, 2) // make A conflict

		// Join A (top of children stack: matched immediately).
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack {
			t.Fatalf("A did not roll back: %v", res.Status)
		}
		// X was logically later: the linear squash must have NOSYNCed it.
		res2 := t0.Join(ranks, 1)
		if res2.Status == JoinCommitted {
			t.Fatal("linear model failed to squash the logically later thread")
		}
		if got := t0.LoadInt64(arr + 16); got != 0 {
			t.Fatalf("squashed thread's write visible: %d", got)
		}
	})
}

func TestTreeModelPreservesLaterSiblingsOnRollback(t *testing.T) {
	// The same scenario as TestMixedLinearSquashesLaterSiblings but under
	// the tree model: X survives A's rollback and commits.
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(64)
		t0.StoreInt64(arr, 1)
		ranks := make([]Rank, 2)

		hX := t0.Fork(ranks, 1, Mixed)
		hX.SetRegvarAddr(0, arr)
		hX.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0)+16, 999)
			return 0
		})

		hA := t0.Fork(ranks, 0, Mixed)
		hA.SetRegvarAddr(0, arr)
		readDone := make(chan struct{})
		hA.Start(func(c *Thread) uint32 {
			v := c.LoadInt64(c.GetRegvarAddr(0))
			close(readDone)
			c.StoreInt64(c.GetRegvarAddr(0)+8, v)
			return 0
		})
		<-readDone
		t0.StoreInt64(arr, 2)

		if res := t0.Join(ranks, 0); res.Status != JoinRolledBack {
			t.Fatalf("A did not roll back: %v", res.Status)
		}
		res2 := t0.Join(ranks, 1)
		if res2.Status != JoinCommitted {
			t.Fatalf("tree model lost the later sibling: %v (%v)", res2.Status, res2.Reason)
		}
		if got := t0.LoadInt64(arr + 16); got != 999 {
			t.Fatalf("sibling's commit lost: %d", got)
		}
	})
}

func TestHeuristicDisablesRollbackHeavyPoint(t *testing.T) {
	rt := newRT(t, 2, func(o *Options) {
		o.AdaptiveForkHeuristic = true
		o.HeuristicMinSamples = 4
		o.HeuristicMaxRollbackRate = 0.5
		o.RollbackProb = 1.0 // every execution rolls back
	})
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		forked := 0
		for i := 0; i < 20; i++ {
			h := t0.Fork(ranks, 0, Mixed)
			if h == nil {
				continue
			}
			forked++
			h.Start(func(c *Thread) uint32 { return 0 })
			t0.Join(ranks, 0)
		}
		if forked >= 20 {
			t.Fatal("heuristic never disabled the 100%-rollback point")
		}
		if forked < 4 {
			t.Fatalf("heuristic fired before min samples: %d forks", forked)
		}
	})
	if _, _, disabled := rt.PointProfile(0); !disabled {
		t.Fatal("point not marked disabled")
	}
}

func TestHeuristicKeepsHealthyPoint(t *testing.T) {
	rt := newRT(t, 2, func(o *Options) {
		o.AdaptiveForkHeuristic = true
		o.HeuristicMinSamples = 4
	})
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		for i := 0; i < 20; i++ {
			h := t0.Fork(ranks, 0, Mixed)
			if h == nil {
				t.Fatal("healthy point disabled")
			}
			h.Start(func(c *Thread) uint32 { return 0 })
			t0.Join(ranks, 0)
		}
	})
}
