package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/mem"
)

// TestCloseIdempotent: Close must be callable any number of times — the
// runtime pool drains and closes runtimes on shutdown paths that can race
// with deferred Closes in callers.
func TestCloseIdempotent(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Close()
	rt.Close()
	rt.Close()
}

// TestRunAfterCloseTypedError: a run attempted on a closed runtime must
// fail fast with ErrClosed — not hang on dead workers, not panic.
func TestRunAfterCloseTypedError(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Close()
	ran := false
	cost, err := rt.RunCtx(context.Background(), func(t *Thread) { ran = true })
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("RunCtx on closed runtime: err = %v, want ErrClosed", err)
	}
	if ran || cost != 0 {
		t.Fatalf("RunCtx on closed runtime executed fn (ran=%v cost=%d)", ran, cost)
	}
}

// TestRunAfterClosePanicsLegacy: the internal Run keeps its documented
// panic contract for the core test suite's bare call sites.
func TestRunAfterClosePanicsLegacy(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run on closed runtime did not panic")
		}
	}()
	rt.Run(func(t *Thread) {})
}

// TestRunCtxPreCancelled: an already-expired context never starts the run.
func TestRunCtxPreCancelled(t *testing.T) {
	rt := newRT(t, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := rt.RunCtx(ctx, func(t *Thread) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("cancelled RunCtx executed fn")
	}
}

// TestRunCtxCancelMidRun: cancelling the context mid-run unwinds the
// non-speculative thread at its next CancelPoint, returns the context's
// error, and leaves the runtime reusable.
func TestRunCtxCancelMidRun(t *testing.T) {
	rt := newRT(t, 2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	iters := 0
	_, err := rt.RunCtx(ctx, func(t *Thread) {
		for i := 0; i < 1<<30; i++ {
			if i == 3 {
				cancel()
			}
			if i > 3 {
				// The watcher goroutine relays the cancel asynchronously;
				// poll until it lands.
				time.Sleep(100 * time.Microsecond)
			}
			t.CancelPoint()
			iters++
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if iters < 3 {
		t.Fatalf("run unwound before the cancel was issued (iters=%d)", iters)
	}
	// The runtime drained and is reusable.
	if _, err := rt.RunCtx(context.Background(), func(t *Thread) {}); err != nil {
		t.Fatalf("runtime unusable after cancelled run: %v", err)
	}
}

// TestCancelRunRefusesForks: after CancelRun, Fork refuses — the run
// degrades to sequential execution until a CancelPoint unwinds it — and a
// run unwound without a context reports ErrCancelled.
func TestCancelRunRefusesForks(t *testing.T) {
	rt := newRT(t, 2, nil)
	_, err := rt.RunCtx(context.Background(), func(t0 *Thread) {
		ranks := make([]Rank, 1)
		if h := t0.Fork(ranks, 0, Mixed); h == nil {
			t.Fatal("fork refused before cancellation")
		} else {
			h.Start(func(c *Thread) uint32 { return 0 })
			t0.Join(ranks, 0)
		}
		rt.CancelRun()
		if h := t0.Fork(ranks, 0, Mixed); h != nil {
			t.Fatal("fork granted after CancelRun")
		}
		t0.CancelPoint()
		t.Fatal("CancelPoint did not unwind after CancelRun")
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestSetCPULimit: the claim bound caps which virtual CPUs forks may use;
// 0 refuses every fork (sequential degradation), and restoring the limit
// restores speculation. This is the per-run admission lever of the
// multi-tenant pool.
func TestSetCPULimit(t *testing.T) {
	rt := newRT(t, 4, nil)
	forkOne := func(t0 *Thread) (Rank, bool) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			return 0, false
		}
		r := h.Rank()
		h.Start(func(c *Thread) uint32 { return 0 })
		t0.Join(ranks, 0)
		return r, true
	}

	rt.SetCPULimit(0)
	if got := rt.CPULimit(); got != 0 {
		t.Fatalf("CPULimit = %d, want 0", got)
	}
	rt.Run(func(t0 *Thread) {
		if _, ok := forkOne(t0); ok {
			t.Fatal("fork granted under CPU limit 0")
		}
	})

	rt.SetCPULimit(2)
	rt.Run(func(t0 *Thread) {
		for i := 0; i < 16; i++ {
			r, ok := forkOne(t0)
			if !ok {
				t.Fatal("fork refused under CPU limit 2")
			}
			if r > 2 {
				t.Fatalf("fork claimed rank %d beyond the limit 2", r)
			}
		}
	})

	// Clamped to NumCPUs; negative clamps to 0.
	rt.SetCPULimit(99)
	if got := rt.CPULimit(); got != 4 {
		t.Fatalf("CPULimit = %d, want clamp to 4", got)
	}
	rt.SetCPULimit(-1)
	if got := rt.CPULimit(); got != 0 {
		t.Fatalf("CPULimit = %d, want clamp to 0", got)
	}
}

// TestRunFreshCPUAvailability: every run restarts its clock at zero, so
// the previous run's freeAt stamps must not leak — a reused (pooled)
// runtime whose last run ended deep in virtual time would otherwise
// refuse every early fork of the next run.
func TestRunFreshCPUAvailability(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		t0.Tick(1_000_000) // end the run deep in virtual time
		ranks := make([]Rank, 1)
		if h := t0.Fork(ranks, 0, Mixed); h != nil {
			h.Start(func(c *Thread) uint32 { return 0 })
			t0.Join(ranks, 0)
		}
	})
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork refused at the start of a fresh run (stale freeAt)")
		}
		h.Start(func(c *Thread) uint32 { return 0 })
		t0.Join(ranks, 0)
	})
}

// TestRecycle: a recycled runtime starts its next tenant with a clean
// heap, point namespace and statistics — without rebuilding buffers.
func TestRecycle(t *testing.T) {
	rt := newRT(t, 2, nil)
	var leaked mem.Addr
	rt.Run(func(t0 *Thread) {
		leaked = t0.Alloc(1 << 10) // deliberately never freed
		ranks := make([]Rank, 1)
		if h := t0.Fork(ranks, 0, Mixed); h != nil {
			h.Start(func(c *Thread) uint32 { return 0 })
			t0.Join(ranks, 0)
		}
	})
	rt.AllocPoint()
	if rt.space.Heap.InUse() == 0 {
		t.Fatal("test setup: leak did not register")
	}
	rt.Recycle()
	if got := rt.space.Heap.InUse(); got != 0 {
		t.Fatalf("heap in use after Recycle: %d bytes", got)
	}
	if rt.space.Registry.Contains(leaked, 1) {
		t.Fatal("leaked allocation still registered after Recycle")
	}
	if s := rt.Stats(); s.Executions != 0 || s.PointsExhausted != 0 {
		t.Fatalf("stats survived Recycle: %+v", s)
	}
	rt.pointMu.Lock()
	live := rt.pointLiveCount
	rt.pointMu.Unlock()
	if live != 0 {
		t.Fatalf("%d live points after Recycle", live)
	}
	// And the runtime still runs.
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(64)
		t0.StoreInt64(p, 7)
		if got := t0.LoadInt64(p); got != 7 {
			t.Fatalf("recycled heap readback = %d", got)
		}
		t0.Free(p)
	})
}
