package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/gbuf"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// stopSignal unwinds a region at a barrier/terminate point; the counter
// tells the joining thread where to resume.
type stopSignal struct{ counter uint32 }

// rollbackSignal unwinds a region whose execution must be discarded.
type rollbackSignal struct{ reason RollbackReason }

// Thread is the execution context handed to non-speculative code (rank 0)
// and to speculative regions (rank ≥ 1). All memory traffic of the program
// under speculation flows through it: the non-speculative thread accesses
// the arena directly while speculative threads are buffered, faulted or
// stack-directed exactly as §IV-G prescribes.
type Thread struct {
	rt          *Runtime
	rank        Rank
	cpu         *cpu // nil for the non-speculative thread
	clock       *vclock.Clock
	speculative bool

	// children is the paper's per-thread children stack: direct children in
	// fork order with their fork-time epochs (§IV-F). Speculative threads
	// keep it in cpu.td.children so the parent can adopt it after the stop.
	children []childRef

	stack    mem.Range
	stackTop mem.Addr

	// openFork tracks the window between Fork (CPU claimed, bookkeeping
	// published) and Start (task handed to the worker). A panic unwinding
	// through that window would otherwise strand a claimed CPU — active
	// incremented, no worker ever running — and hang the drain; the
	// recover paths call abandonOpenFork to undo the claim.
	openFork *ForkHandle

	// bulk is the non-speculative thread's typed-accessor scratch buffer;
	// speculative threads use their CPU's persistent one (Thread.scratch).
	bulk []byte
}

// Rank returns the thread's virtual CPU rank (0 = non-speculative).
func (t *Thread) Rank() Rank { return t.rank }

// Speculative reports whether this is a speculative thread.
func (t *Thread) Speculative() bool { return t.speculative }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Tick charges n cost units of pure computation to the virtual clock (a
// no-op under real timing, where computation takes real time).
func (t *Thread) Tick(n int64) { t.clock.Charge(vclock.Work, n) }

// Now returns the thread's current (virtual or real) time.
func (t *Thread) Now() vclock.Cost { return t.clock.Now() }

// rollbackNow abandons the current region.
func (t *Thread) rollbackNow(reason RollbackReason) {
	if !t.speculative {
		panic(fmt.Sprintf("core: non-speculative thread hit %v", reason))
	}
	panic(rollbackSignal{reason: reason})
}

// inOwnStack reports whether [p,p+n) lies in this thread's stack region.
func (t *Thread) inOwnStack(p mem.Addr, n int) bool {
	return p >= t.stack.Start && p+mem.Addr(n) <= t.stack.End
}

// load is the unified read path of MUTLS_load_*: the speculative thread's
// own stack is accessed directly (the stack acts as its own buffer), global
// addresses go through the GlobalBuffer, anything else rolls the thread
// back. Non-speculative threads access the arena directly.
func (t *Thread) load(p mem.Addr, size int) uint64 {
	model := t.clock.Model
	if !t.speculative {
		t.clock.Charge(vclock.Work, model.DirectAccess)
		if !t.rt.space.InGlobal(p, size) {
			panic(fmt.Sprintf("core: non-speculative load of invalid address %d (+%d)", p, size))
		}
		return directLoad(t.rt.space.Arena, p, size)
	}
	t.clock.Charge(vclock.Work, model.BufferedAccess)
	if t.inOwnStack(p, size) {
		return directLoad(t.rt.space.Arena, p, size)
	}
	if !t.rt.space.InGlobal(p, size) {
		t.rollbackNow(RollbackInvalidAddress)
	}
	v, st := t.cpu.gb.Load(p, size)
	t.handleBufferStatus(st)
	return v
}

// store is the unified write path of MUTLS_store_*.
func (t *Thread) store(p mem.Addr, size int, v uint64) {
	model := t.clock.Model
	if !t.speculative {
		t.clock.Charge(vclock.Work, model.DirectAccess)
		if !t.rt.space.InGlobal(p, size) {
			panic(fmt.Sprintf("core: non-speculative store to invalid address %d (+%d)", p, size))
		}
		directStore(t.rt.space.Arena, p, size, v)
		if t.rt.markFn != nil {
			t.rt.markFn(p, size)
		}
		return
	}
	t.clock.Charge(vclock.Work, model.BufferedAccess)
	if t.inOwnStack(p, size) {
		directStore(t.rt.space.Arena, p, size, v)
		return
	}
	if !t.rt.space.InGlobal(p, size) {
		t.rollbackNow(RollbackInvalidAddress)
	}
	t.handleBufferStatus(t.cpu.gb.Store(p, size, v))
}

func (t *Thread) handleBufferStatus(st gbuf.Status) {
	switch st {
	case gbuf.OK, gbuf.Conflict: // Conflict: parked in overflow; stop at next check point.
	case gbuf.Full:
		t.rollbackNow(RollbackOverflow)
	case gbuf.Misaligned:
		t.rollbackNow(RollbackUnsafeOp)
	}
}

func directLoad(a *mem.Arena, p mem.Addr, size int) uint64 {
	switch size {
	case 1:
		return uint64(a.ReadUint8(p))
	case 2:
		return uint64(a.ReadUint16(p))
	case 4:
		return uint64(a.ReadUint32(p))
	case 8:
		return a.ReadWord(p)
	}
	panic(fmt.Sprintf("core: direct load of size %d", size))
}

func directStore(a *mem.Arena, p mem.Addr, size int, v uint64) {
	switch size {
	case 1:
		a.WriteUint8(p, uint8(v))
	case 2:
		a.WriteUint16(p, uint16(v))
	case 4:
		a.WriteUint32(p, uint32(v))
	case 8:
		a.WriteWord(p, v)
	}
}

// LoadUint8 reads one byte at p.
func (t *Thread) LoadUint8(p mem.Addr) uint8 { return uint8(t.load(p, 1)) }

// StoreUint8 writes one byte at p.
func (t *Thread) StoreUint8(p mem.Addr, v uint8) { t.store(p, 1, uint64(v)) }

// LoadUint16 reads two bytes at p (p must be 2-aligned).
func (t *Thread) LoadUint16(p mem.Addr) uint16 { return uint16(t.load(p, 2)) }

// StoreUint16 writes two bytes at p.
func (t *Thread) StoreUint16(p mem.Addr, v uint16) { t.store(p, 2, uint64(v)) }

// LoadInt32 reads a 4-byte signed value at p.
func (t *Thread) LoadInt32(p mem.Addr) int32 { return int32(uint32(t.load(p, 4))) }

// StoreInt32 writes a 4-byte signed value at p.
func (t *Thread) StoreInt32(p mem.Addr, v int32) { t.store(p, 4, uint64(uint32(v))) }

// LoadInt64 reads an 8-byte signed value at p.
func (t *Thread) LoadInt64(p mem.Addr) int64 { return int64(t.load(p, 8)) }

// StoreInt64 writes an 8-byte signed value at p.
func (t *Thread) StoreInt64(p mem.Addr, v int64) { t.store(p, 8, uint64(v)) }

// LoadFloat64 reads a float64 at p.
func (t *Thread) LoadFloat64(p mem.Addr) float64 { return math.Float64frombits(t.load(p, 8)) }

// StoreFloat64 writes a float64 at p.
func (t *Thread) StoreFloat64(p mem.Addr, v float64) { t.store(p, 8, math.Float64bits(v)) }

// LoadFloat32 reads a float32 at p.
func (t *Thread) LoadFloat32(p mem.Addr) float32 {
	return math.Float32frombits(uint32(t.load(p, 4)))
}

// StoreFloat32 writes a float32 at p.
func (t *Thread) StoreFloat32(p mem.Addr, v float32) { t.store(p, 4, uint64(math.Float32bits(v))) }

// LoadAddr reads a pointer-sized value at p.
func (t *Thread) LoadAddr(p mem.Addr) mem.Addr { return mem.Addr(t.load(p, 8)) }

// StoreAddr writes a pointer-sized value at p.
func (t *Thread) StoreAddr(p mem.Addr, v mem.Addr) { t.store(p, 8, uint64(v)) }

// loadRange is the bulk read path for whole-word runs: one vclock charge
// for the whole range (still one BufferedAccess/DirectAccess *per word*, so
// the modelled cost equals the word-at-a-time decomposition — bulk removes
// software overhead, not modelled accesses), one address-space check, one
// Backend crossing. p must be word-aligned and len(dst) a whole number of
// words; callers (LoadBytes, the typed slice accessors) guarantee that.
func (t *Thread) loadRange(p mem.Addr, dst []byte) {
	n := len(dst)
	if n == 0 {
		return
	}
	nWords := n / mem.Word
	model := t.clock.Model
	if !t.speculative {
		t.clock.Charge(vclock.Work, model.DirectAccess*vclock.Cost(nWords))
		if !t.rt.space.InGlobal(p, n) {
			panic(fmt.Sprintf("core: non-speculative load of invalid range %d (+%d)", p, n))
		}
		t.rt.space.Arena.ReadWords(p, dst)
		return
	}
	t.clock.Charge(vclock.Work, model.BufferedAccess*vclock.Cost(nWords))
	if t.inOwnStack(p, n) {
		t.rt.space.Arena.ReadWords(p, dst)
		return
	}
	if !t.rt.space.InGlobal(p, n) {
		t.rollbackNow(RollbackInvalidAddress)
	}
	t.handleBufferStatus(t.cpu.gb.LoadRange(p, dst))
}

// storeRange is the bulk write path for whole-word runs; see loadRange.
func (t *Thread) storeRange(p mem.Addr, src []byte) {
	n := len(src)
	if n == 0 {
		return
	}
	nWords := n / mem.Word
	model := t.clock.Model
	if !t.speculative {
		t.clock.Charge(vclock.Work, model.DirectAccess*vclock.Cost(nWords))
		if !t.rt.space.InGlobal(p, n) {
			panic(fmt.Sprintf("core: non-speculative store to invalid range %d (+%d)", p, n))
		}
		t.rt.space.Arena.WriteWords(p, src)
		if t.rt.markFn != nil {
			t.rt.markFn(p, n)
		}
		return
	}
	t.clock.Charge(vclock.Work, model.BufferedAccess*vclock.Cost(nWords))
	if t.inOwnStack(p, n) {
		t.rt.space.Arena.WriteWords(p, src)
		return
	}
	if !t.rt.space.InGlobal(p, n) {
		t.rollbackNow(RollbackInvalidAddress)
	}
	t.handleBufferStatus(t.cpu.gb.StoreRange(p, src))
}

// FillWords writes nWords copies of the word v starting at the word-aligned
// address p — the memset-shaped store. Like storeRange it pays one batched
// clock charge and one crossing, but there is no materialized source
// buffer: the non-speculative path is the arena's fill intrinsic and the
// speculative path is the Backend's StoreFill. Misalignment is an unsafe
// operation: speculative threads roll back, the non-speculative thread
// panics.
func (t *Thread) FillWords(p mem.Addr, nWords int, v uint64) {
	if nWords <= 0 {
		return
	}
	if !mem.Aligned(p, mem.Word) {
		if t.speculative {
			t.rollbackNow(RollbackUnsafeOp)
		}
		panic(fmt.Sprintf("core: misaligned word-fill at %d", p))
	}
	n := nWords * mem.Word
	model := t.clock.Model
	if !t.speculative {
		t.clock.Charge(vclock.Work, model.DirectAccess*vclock.Cost(nWords))
		if !t.rt.space.InGlobal(p, n) {
			panic(fmt.Sprintf("core: non-speculative fill of invalid range %d (+%d)", p, n))
		}
		t.rt.space.Arena.FillWords(p, nWords, v)
		if t.rt.markFn != nil {
			t.rt.markFn(p, n)
		}
		return
	}
	t.clock.Charge(vclock.Work, model.BufferedAccess*vclock.Cost(nWords))
	if t.inOwnStack(p, n) {
		t.rt.space.Arena.FillWords(p, nWords, v)
		return
	}
	if !t.rt.space.InGlobal(p, n) {
		t.rollbackNow(RollbackInvalidAddress)
	}
	t.handleBufferStatus(t.cpu.gb.StoreFill(p, nWords, v))
}

// ZeroWords zeroes nWords consecutive words at the word-aligned address p
// (see FillWords).
func (t *Thread) ZeroWords(p mem.Addr, nWords int) { t.FillWords(p, nWords, 0) }

// subAccessSize returns the largest supported access size (1, 2 or 4) that
// is aligned at p and fits in the remaining n bytes — the paper's
// size>WORD splitting rule applied to a misaligned head or tail: the span
// decomposes into maximal aligned accesses, each charged once, instead of
// degenerating to per-byte accesses (and per-byte charges).
func subAccessSize(p mem.Addr, n int) int {
	for _, s := range [2]int{4, 2} {
		if s <= n && mem.Aligned(p, s) {
			return s
		}
	}
	return 1
}

// LoadBytes copies len(dst) bytes starting at p into dst, decomposed per
// the paper's size>WORD splitting rule: maximal aligned sub-word accesses
// for the misaligned head and tail, and one bulk word-run (a single
// Backend range crossing with one batched clock charge) for the aligned
// middle.
func (t *Thread) LoadBytes(p mem.Addr, dst []byte) {
	i := 0
	n := len(dst)
	loadSub := func() {
		s := subAccessSize(p+mem.Addr(i), n-i)
		v := t.load(p+mem.Addr(i), s)
		for b := 0; b < s; b++ {
			dst[i+b] = byte(v >> (8 * b))
		}
		i += s
	}
	for i < n && !mem.Aligned(p+mem.Addr(i), mem.Word) {
		loadSub()
	}
	if words := (n - i) / mem.Word; words > 0 {
		t.loadRange(p+mem.Addr(i), dst[i:i+words*mem.Word])
		i += words * mem.Word
	}
	for i < n {
		loadSub()
	}
}

// StoreBytes writes src to p with the same decomposition as LoadBytes.
func (t *Thread) StoreBytes(p mem.Addr, src []byte) {
	i := 0
	n := len(src)
	storeSub := func() {
		s := subAccessSize(p+mem.Addr(i), n-i)
		var v uint64
		for b := s - 1; b >= 0; b-- {
			v = v<<8 | uint64(src[i+b])
		}
		t.store(p+mem.Addr(i), s, v)
		i += s
	}
	for i < n && !mem.Aligned(p+mem.Addr(i), mem.Word) {
		storeSub()
	}
	if words := (n - i) / mem.Word; words > 0 {
		t.storeRange(p+mem.Addr(i), src[i:i+words*mem.Word])
		i += words * mem.Word
	}
	for i < n {
		storeSub()
	}
}

// scratch returns a reusable n-byte buffer for the typed bulk accessors.
// Speculative threads borrow their virtual CPU's buffer (which persists
// across speculations, so the hot path stays alloc-free); the
// non-speculative thread keeps its own for the duration of the Run.
func (t *Thread) scratch(n int) []byte {
	buf := &t.bulk
	if t.cpu != nil {
		buf = &t.cpu.scratch
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	return (*buf)[:n]
}

// LoadWords reads len(dst) consecutive words starting at the word-aligned
// address p — one buffered range access with a single batched clock
// charge. Misalignment is an unsafe operation: speculative threads roll
// back, the non-speculative thread panics.
func (t *Thread) LoadWords(p mem.Addr, dst []uint64) {
	s := t.rangeScratch(p, len(dst))
	t.loadRange(p, s)
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(s[i*mem.Word:])
	}
}

// StoreWords writes len(src) consecutive words at the word-aligned
// address p.
func (t *Thread) StoreWords(p mem.Addr, src []uint64) {
	s := t.rangeScratch(p, len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(s[i*mem.Word:], v)
	}
	t.storeRange(p, s)
}

// LoadInt64s reads len(dst) consecutive int64s starting at p (a slice view
// over simulated memory; see LoadWords).
func (t *Thread) LoadInt64s(p mem.Addr, dst []int64) {
	s := t.rangeScratch(p, len(dst))
	t.loadRange(p, s)
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(s[i*mem.Word:]))
	}
}

// StoreInt64s writes len(src) consecutive int64s at p.
func (t *Thread) StoreInt64s(p mem.Addr, src []int64) {
	s := t.rangeScratch(p, len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(s[i*mem.Word:], uint64(v))
	}
	t.storeRange(p, s)
}

// LoadFloat64s reads len(dst) consecutive float64s starting at p (a slice
// view over simulated memory; see LoadWords).
func (t *Thread) LoadFloat64s(p mem.Addr, dst []float64) {
	s := t.rangeScratch(p, len(dst))
	t.loadRange(p, s)
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(s[i*mem.Word:]))
	}
}

// StoreFloat64s writes len(src) consecutive float64s at p.
func (t *Thread) StoreFloat64s(p mem.Addr, src []float64) {
	s := t.rangeScratch(p, len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(s[i*mem.Word:], math.Float64bits(v))
	}
	t.storeRange(p, s)
}

// rangeScratch validates the alignment of a typed bulk access of nWords
// words at p and returns the byte scratch backing it.
func (t *Thread) rangeScratch(p mem.Addr, nWords int) []byte {
	if !mem.Aligned(p, mem.Word) {
		if t.speculative {
			t.rollbackNow(RollbackUnsafeOp)
		}
		panic(fmt.Sprintf("core: misaligned word-run access at %d", p))
	}
	return t.scratch(nWords * mem.Word)
}

// subRangeScratch validates a typed sub-word bulk access of n elements of
// the given size at p and returns the byte scratch backing it. p must be
// size-aligned; the word-run contract then extends naturally: a misaligned
// head or tail decomposes into one maximal aligned sub-word access each
// (charged once), and the aligned middle is one batched word-run crossing.
func (t *Thread) subRangeScratch(p mem.Addr, n, size int) []byte {
	if !mem.Aligned(p, size) {
		if t.speculative {
			t.rollbackNow(RollbackUnsafeOp)
		}
		panic(fmt.Sprintf("core: misaligned %d-byte-run access at %d", size, p))
	}
	return t.scratch(n * size)
}

// LoadFloat32s reads len(dst) consecutive float32s starting at the
// 4-aligned address p: at most one 4-byte head access, one bulk word-run
// (a single batched clock charge, one Backend range crossing) for the
// aligned middle, and at most one 4-byte tail access — the sub-word slice
// view on the single-charge range contract.
func (t *Thread) LoadFloat32s(p mem.Addr, dst []float32) {
	s := t.subRangeScratch(p, len(dst), 4)
	t.LoadBytes(p, s)
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(s[i*4:]))
	}
}

// StoreFloat32s writes len(src) consecutive float32s at the 4-aligned
// address p (see LoadFloat32s for the decomposition).
func (t *Thread) StoreFloat32s(p mem.Addr, src []float32) {
	s := t.subRangeScratch(p, len(src), 4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(s[i*4:], math.Float32bits(v))
	}
	t.StoreBytes(p, s)
}

// LoadInt32s reads len(dst) consecutive int32s starting at the 4-aligned
// address p (the int32 slice view; see LoadFloat32s).
func (t *Thread) LoadInt32s(p mem.Addr, dst []int32) {
	s := t.subRangeScratch(p, len(dst), 4)
	t.LoadBytes(p, s)
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(s[i*4:]))
	}
}

// StoreInt32s writes len(src) consecutive int32s at the 4-aligned address
// p.
func (t *Thread) StoreInt32s(p mem.Addr, src []int32) {
	s := t.subRangeScratch(p, len(src), 4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(s[i*4:], uint32(v))
	}
	t.StoreBytes(p, s)
}

// Alloc allocates n bytes on the heap. Speculative threads may not allocate
// (the paper intercepts malloc and forbids it because the thread may roll
// back); a speculative call is an unsafe operation and rolls back — regions
// that need memory must stop at a terminate point first.
func (t *Thread) Alloc(n int) mem.Addr {
	if t.speculative {
		t.rollbackNow(RollbackUnsafeOp)
	}
	p, err := t.rt.space.Heap.Alloc(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Free releases a heap allocation; speculative calls roll back.
func (t *Thread) Free(p mem.Addr) {
	if t.speculative {
		t.rollbackNow(RollbackUnsafeOp)
	}
	if err := t.rt.space.Heap.Free(p); err != nil {
		panic(err)
	}
}

// StackAlloc reserves n bytes (word-rounded) on this thread's stack region
// and returns their address. Speculative stacks are private: other threads
// fault on them, while the non-speculative stack is global address space.
func (t *Thread) StackAlloc(n int) mem.Addr {
	need := mem.Addr((n + mem.Word - 1) &^ (mem.Word - 1))
	if t.stackTop+need > t.stack.End {
		if t.speculative {
			t.rollbackNow(RollbackUnsafeOp)
		}
		panic(fmt.Sprintf("core: stack overflow on rank %d", t.rank))
	}
	p := t.stackTop
	t.stackTop += need
	t.rt.space.Arena.Zero(p, int(need))
	if !t.speculative && t.rt.markFn != nil {
		// The non-speculative stack is global address space: zeroing it is
		// a direct write other threads' read sets may have snapshotted.
		// Speculative stacks are private — no stamp needed.
		t.rt.markFn(p, int(need))
	}
	return p
}

// StackMark returns the current stack top, to be restored with StackRelease.
func (t *Thread) StackMark() mem.Addr { return t.stackTop }

// StackRelease pops the stack back to a mark from StackMark.
func (t *Thread) StackRelease(mark mem.Addr) {
	if mark < t.stack.Start || mark > t.stackTop {
		panic("core: bad stack release mark")
	}
	t.stackTop = mark
}
