package core

import (
	"testing"

	"repro/internal/gbuf"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// newRT builds a small runtime for tests. Cleanup closes it.
func newRT(t testing.TB, cpus int, tweak func(*Options)) *Runtime {
	t.Helper()
	o := Options{
		NumCPUs:      cpus,
		Timing:       vclock.Virtual,
		CollectStats: true,
		Space: mem.SpaceConfig{
			StaticBytes: 1 << 12,
			HeapBytes:   1 << 18,
			StackBytes:  1 << 12,
		},
		GBuf: gbuf.Config{LogWords: 12, OverflowCap: 16},
	}
	if tweak != nil {
		tweak(&o)
	}
	rt, err := NewRuntime(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(Options{NumCPUs: -1}); err == nil {
		t.Error("negative CPUs accepted")
	}
	if _, err := NewRuntime(Options{NumCPUs: 2, RollbackProb: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewRuntime(Options{NumCPUs: 2, RollbackProb: -0.1}); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestRunWithoutSpeculation(t *testing.T) {
	rt := newRT(t, 2, nil)
	var got int64
	tn := rt.Run(func(t0 *Thread) {
		p := t0.Alloc(8)
		t0.StoreInt64(p, 41)
		got = t0.LoadInt64(p) + 1
		t0.Free(p)
	})
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	if tn <= 0 {
		t.Fatalf("runtime %d not positive (accesses must cost time)", tn)
	}
}

func TestForkJoinCommit(t *testing.T) {
	rt := newRT(t, 2, nil)
	var s1, s2 int64
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("fork failed with idle CPUs")
		}
		if ranks[0] == 0 {
			t.Fatal("ranks entry not set")
		}
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.StoreInt64(p+8, 42) // S2: the speculative region
			return 0
		})
		t0.StoreInt64(arr, 7) // S1: the parent's own work
		res := t0.Join(ranks, 0)
		if res.Status != JoinCommitted {
			t.Fatalf("join status %v (reason %v)", res.Status, res.Reason)
		}
		if ranks[0] != 0 {
			t.Fatal("ranks entry not cleared by join")
		}
		s1 = t0.LoadInt64(arr)
		s2 = t0.LoadInt64(arr + 8)
	})
	if s1 != 7 || s2 != 42 {
		t.Fatalf("memory after commit: %d, %d", s1, s2)
	}
}

func TestJoinNotForked(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 2)
		if res := t0.Join(ranks, 1); res.Status != JoinNotForked {
			t.Fatalf("join on empty point: %v", res.Status)
		}
	})
}

func TestForkRefusedWhenPointBusy(t *testing.T) {
	rt := newRT(t, 4, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("first fork failed")
		}
		h.Start(func(c *Thread) uint32 { return 0 })
		// "At most one thread can be speculated on at each fork/join point
		// id" (§IV-D).
		if h2 := t0.Fork(ranks, 0, Mixed); h2 != nil {
			t.Fatal("second fork on busy point succeeded")
		}
		t0.Join(ranks, 0)
	})
}

func TestForkRefusedWhenNoIdleCPU(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 2)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("first fork failed")
		}
		block := make(chan struct{})
		h.Start(func(c *Thread) uint32 {
			<-block
			return 0
		})
		if h2 := t0.Fork(ranks, 1, Mixed); h2 != nil {
			t.Fatal("fork succeeded with zero idle CPUs")
		}
		close(block)
		if res := t0.Join(ranks, 0); res.Status != JoinCommitted {
			t.Fatalf("join: %v", res.Status)
		}
	})
}

func TestReadConflictRollsBack(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(16)
		t0.StoreInt64(arr, 1)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		readDone := make(chan struct{})
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			v := c.LoadInt64(p) // speculative read...
			close(readDone)
			c.StoreInt64(p+8, v*10)
			return 0
		})
		<-readDone
		t0.StoreInt64(arr, 99) // ...then a non-speculative write: conflict
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack {
			t.Fatalf("join status %v, want rollback", res.Status)
		}
		if res.Reason != RollbackValidation {
			t.Fatalf("reason %v, want validation", res.Reason)
		}
		// The speculative write must not have leaked.
		if got := t0.LoadInt64(arr + 8); got != 0 {
			t.Fatalf("rolled-back write leaked: %d", got)
		}
	})
	s := rt.Stats()
	if s.Rollbacks != 1 || s.Commits != 0 {
		t.Fatalf("stats commits=%d rollbacks=%d", s.Commits, s.Rollbacks)
	}
}

func TestNoConflictWhenDisjoint(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(32)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			c.StoreInt64(p+16, c.LoadInt64(p+24)+5)
			return 0
		})
		t0.StoreInt64(arr, 1) // different words: no conflict
		t0.StoreInt64(arr+8, 2)
		if res := t0.Join(ranks, 0); res.Status != JoinCommitted {
			t.Fatalf("disjoint access rolled back: %v", res.Reason)
		}
		if got := t0.LoadInt64(arr + 16); got != 5 {
			t.Fatalf("committed value %d", got)
		}
	})
}

func TestLocalsValidationFailureRollsBack(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarInt64(0, 10) // predict x = 10 at the join point
		h.Start(func(c *Thread) uint32 {
			_ = c.GetRegvarInt64(0)
			return 0
		})
		// Parent arrives at the join with x = 11: misprediction.
		t0.ValidateRegvarInt64(ranks, 0, 0, 11)
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack || res.Reason != RollbackLocals {
			t.Fatalf("status %v reason %v", res.Status, res.Reason)
		}
	})
}

func TestLocalsValidationSuccessCommits(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarInt64(0, 10)
		h.SetRegvarFloat64(1, 2.5)
		h.Start(func(c *Thread) uint32 {
			_ = c.GetRegvarInt64(0)
			return 0
		})
		t0.ValidateRegvarInt64(ranks, 0, 0, 10)
		t0.ValidateRegvarFloat64(ranks, 0, 1, 2.5)
		if res := t0.Join(ranks, 0); res.Status != JoinCommitted {
			t.Fatalf("correctly predicted locals rolled back: %v", res.Reason)
		}
	})
}

func TestValidateUnsavedSlotRollsBack(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarInt64(0, 1)
		h.Start(func(c *Thread) uint32 { return 0 })
		// Validating a slot that was never predicted means the region used
		// an uninitialized value: must roll back.
		t0.ValidateRegvarInt64(ranks, 0, 3, 7)
		if res := t0.Join(ranks, 0); res.Status != JoinRolledBack {
			t.Fatalf("unpredicted slot committed: %v", res.Status)
		}
	})
}

func TestSavedLocalsRestoredAfterJoin(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarInt64(0, 5)
		h.Start(func(c *Thread) uint32 {
			x := c.GetRegvarInt64(0)
			c.SaveRegvarInt64(1, x*x)
			c.SaveRegvarFloat64(2, 1.5)
			return 0
		})
		res := t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("join failed: %v", res.Reason)
		}
		if got := res.RegvarInt64(1); got != 25 {
			t.Fatalf("restored local = %d", got)
		}
		if got := res.RegvarFloat64(2); got != 1.5 {
			t.Fatalf("restored float = %v", got)
		}
		if !res.RegvarLive(1) || res.RegvarLive(3) {
			t.Fatal("liveness wrong")
		}
	})
}

func TestInjectedRollbackProbabilityOne(t *testing.T) {
	rt := newRT(t, 2, func(o *Options) { o.RollbackProb = 1.0 })
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0), 1)
			return 0
		})
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack || res.Reason != RollbackInjected {
			t.Fatalf("status %v reason %v", res.Status, res.Reason)
		}
		if t0.LoadInt64(arr) != 0 {
			t.Fatal("injected rollback leaked a write")
		}
	})
}

func TestInvalidAddressRollsBack(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.Start(func(c *Thread) uint32 {
			c.StoreInt64(mem.Addr(1<<40), 1) // far outside every registered range
			return 0
		})
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack || res.Reason != RollbackInvalidAddress {
			t.Fatalf("status %v reason %v", res.Status, res.Reason)
		}
	})
}

func TestFreedMemoryAccessRollsBack(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(8)
		t0.Free(arr) // deregistered: speculative access must fault
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			_ = c.LoadInt64(c.GetRegvarAddr(0))
			return 0
		})
		if res := t0.Join(ranks, 0); res.Reason != RollbackInvalidAddress {
			t.Fatalf("reason %v", res.Reason)
		}
	})
}

func TestSpeculativeAllocRollsBack(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.Start(func(c *Thread) uint32 {
			c.Alloc(8) // forbidden speculatively (§IV-G1)
			return 0
		})
		if res := t0.Join(ranks, 0); res.Reason != RollbackUnsafeOp {
			t.Fatalf("reason %v", res.Reason)
		}
	})
}

func TestExplicitRollback(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.Start(func(c *Thread) uint32 {
			c.Rollback()
			return 0
		})
		if res := t0.Join(ranks, 0); res.Status != JoinRolledBack {
			t.Fatalf("status %v", res.Status)
		}
	})
}

func TestDrainSquashesUnjoinedChildren(t *testing.T) {
	rt := newRT(t, 2, nil)
	var arr mem.Addr
	rt.Run(func(t0 *Thread) {
		arr = t0.Alloc(8)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			c.StoreInt64(c.GetRegvarAddr(0), 77)
			return 0
		})
		// Never joined: Run's epilogue must squash it.
	})
	// The unjoined speculative write must not be visible.
	final := rt.Space().Arena.ReadInt64(arr)
	if final != 0 {
		t.Fatalf("unjoined speculation committed: %d", final)
	}
	// And the CPU must be reusable afterwards.
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		if h == nil {
			t.Fatal("CPU leaked by drain")
		}
		h.Start(func(c *Thread) uint32 { return 0 })
		if res := t0.Join(ranks, 0); !res.Committed() {
			t.Fatalf("post-drain join: %v", res.Status)
		}
	})
}

func TestStatsCollected(t *testing.T) {
	rt := newRT(t, 2, nil)
	ts := rt.Run(func(t0 *Thread) {
		arr := t0.Alloc(64)
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.SetRegvarAddr(0, arr)
		h.Start(func(c *Thread) uint32 {
			p := c.GetRegvarAddr(0)
			sum := int64(0)
			for i := 0; i < 4; i++ {
				sum += c.LoadInt64(p + mem.Addr(32+8*i))
			}
			for i := 0; i < 4; i++ {
				c.StoreInt64(p+mem.Addr(8*i), int64(i)+sum)
			}
			c.Tick(100)
			return 0
		})
		t0.Tick(50)
		t0.Join(ranks, 0)
	})
	s := rt.Stats()
	if s.Executions != 1 || s.Commits != 1 {
		t.Fatalf("executions=%d commits=%d", s.Executions, s.Commits)
	}
	if s.NonSpecRuntime != ts {
		t.Fatalf("NonSpecRuntime %d != Run result %d", s.NonSpecRuntime, ts)
	}
	if s.SpecLedger[vclock.Work] == 0 {
		t.Fatal("speculative work not recorded")
	}
	if s.SpecLedger[vclock.Commit] == 0 || s.SpecLedger[vclock.Validation] == 0 {
		t.Fatal("validation/commit not charged")
	}
	if s.NonSpecLedger[vclock.Fork] == 0 || s.NonSpecLedger[vclock.Join] == 0 {
		t.Fatal("fork/join not charged on the critical path")
	}
	if s.Coverage() <= 0 {
		t.Fatal("coverage not positive")
	}
}

func TestResetStats(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.Start(func(c *Thread) uint32 { return 0 })
		t0.Join(ranks, 0)
	})
	rt.ResetStats()
	if s := rt.Stats(); s.Executions != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestVirtualTimeAdvancesThroughSpeculation(t *testing.T) {
	rt := newRT(t, 2, nil)
	tn := rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 1)
		h := t0.Fork(ranks, 0, Mixed)
		h.Start(func(c *Thread) uint32 {
			c.Tick(10_000)
			return 0
		})
		t0.Tick(100) // parent much faster: must idle-wait for the child
		t0.Join(ranks, 0)
	})
	if tn < 10_000 {
		t.Fatalf("parent finished at %d, before the child's 10k work", tn)
	}
	s := rt.Stats()
	if s.NonSpecLedger[vclock.Idle] == 0 {
		t.Fatal("parent idle time not booked")
	}
}

func TestPerPointProfile(t *testing.T) {
	rt := newRT(t, 2, nil)
	rt.Run(func(t0 *Thread) {
		ranks := make([]Rank, 3)
		h := t0.Fork(ranks, 2, Mixed)
		h.Start(func(c *Thread) uint32 { return 0 })
		t0.Join(ranks, 2)
	})
	c, r, dis := rt.PointProfile(2)
	if c != 1 || r != 0 || dis {
		t.Fatalf("profile %d/%d/%v", c, r, dis)
	}
	if c, _, _ := rt.PointProfile(63); c != 0 {
		t.Fatal("unused point has counts")
	}
	if c, _, _ := rt.PointProfile(-1); c != 0 {
		t.Fatal("negative point not guarded")
	}
}

func TestModelStrings(t *testing.T) {
	for m, want := range map[Model]string{
		InOrder: "inorder", OutOfOrder: "outoforder", Mixed: "mixed", MixedLinear: "mixedlinear",
	} {
		if m.String() != want {
			t.Errorf("%v != %s", m, want)
		}
		back, err := ParseModel(want)
		if err != nil || back != m {
			t.Errorf("ParseModel(%s) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("bogus model parsed")
	}
	if JoinCommitted.String() != "committed" || JoinNotForked.String() != "not-forked" {
		t.Error("join status names")
	}
	if RollbackValidation.String() != "validation" {
		t.Error("reason names")
	}
}
