package core

import (
	"math"
	"testing"

	"repro/internal/gbuf"
	"repro/internal/mem"
)

// TestSubWordSlicesRoundTrip checks the float32/int32 slice views against
// the scalar accessors on the non-speculative thread, including 4-aligned
// (but not word-aligned) bases that exercise the head/tail decomposition.
func TestSubWordSlicesRoundTrip(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(1024)
		for _, off := range []mem.Addr{0, 4} { // word-aligned and 4-odd bases
			base := p + off
			fs := []float32{1.5, -2.25, 3.75, 1e-9, 0, -0.5, 42}
			t0.StoreFloat32s(base, fs)
			for i, want := range fs {
				if got := t0.LoadFloat32(base + mem.Addr(4*i)); got != want {
					t.Fatalf("off %d: float32 %d = %v, want %v", off, i, got, want)
				}
			}
			back := make([]float32, len(fs))
			t0.LoadFloat32s(base, back)
			for i := range fs {
				if back[i] != fs[i] {
					t.Fatalf("off %d: LoadFloat32s %d = %v, want %v", off, i, back[i], fs[i])
				}
			}

			is := []int32{-1, 42, 1 << 30, 0, -1 << 30}
			t0.StoreInt32s(base+256, is)
			iback := make([]int32, len(is))
			t0.LoadInt32s(base+256, iback)
			for i := range is {
				if iback[i] != is[i] {
					t.Fatalf("off %d: LoadInt32s %d = %d, want %d", off, i, iback[i], is[i])
				}
				if got := t0.LoadInt32(base + 256 + mem.Addr(4*i)); got != is[i] {
					t.Fatalf("off %d: scalar int32 %d = %d, want %d", off, i, got, is[i])
				}
			}
		}
	})
}

// TestSubWordSliceCharges pins the sub-word range contract: a 4-odd base
// charges one 4-byte head access, one batched charge per middle word and
// one 4-byte tail access — never one charge per element.
func TestSubWordSliceCharges(t *testing.T) {
	rt := newRT(t, 1, nil)
	model := rt.Options().Cost
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(2048)
		wordBase := p + 8 - mem.Addr(uint64(p)%8)

		// 32 float32s at a word base: 16 words, one batched range.
		vals := make([]float32, 32)
		before := t0.Now()
		t0.LoadFloat32s(wordBase, vals)
		if d := t0.Now() - before; d != 16*model.DirectAccess {
			t.Fatalf("aligned LoadFloat32s charged %d, want %d", d, 16*model.DirectAccess)
		}

		// 32 float32s at base+4: 4-byte head, 15 words, 4-byte tail = 17
		// access groups.
		before = t0.Now()
		t0.LoadFloat32s(wordBase+4, vals)
		if d := t0.Now() - before; d != 17*model.DirectAccess {
			t.Fatalf("odd-base LoadFloat32s charged %d, want %d", d, 17*model.DirectAccess)
		}
		before = t0.Now()
		t0.StoreInt32s(wordBase+4, make([]int32, 32))
		if d := t0.Now() - before; d != 17*model.DirectAccess {
			t.Fatalf("odd-base StoreInt32s charged %d, want %d", d, 17*model.DirectAccess)
		}
	})
}

// subWordProbe runs one speculative region on a fresh runtime with the
// given backend and returns the committed join result plus the final
// arena bytes of [p, p+n).
func subWordProbe(t *testing.T, backend string, n int, region func(c *Thread, base mem.Addr)) (JoinResult, []byte) {
	t.Helper()
	rt := newRT(t, 1, func(o *Options) {
		o.GBuf = gbuf.Config{Backend: backend}
	})
	var res JoinResult
	out := make([]byte, n)
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(n + 64)
		base := p + 8 - mem.Addr(uint64(p)%8) + 4 // deliberately 4-odd
		ranks := []Rank{0}
		h := t0.Fork(ranks, 0, OutOfOrder)
		if h == nil {
			t.Fatal("fork refused")
		}
		h.SetRegvarAddr(0, base)
		h.Start(func(c *Thread) uint32 {
			region(c, c.GetRegvarAddr(0))
			return 0
		})
		res = t0.Join(ranks, 0)
		if !res.Committed() {
			t.Fatalf("join: %v (%v)", res.Status, res.Reason)
		}
		t0.LoadBytes(base, out)
	})
	return res, out
}

// TestSubWordBulkEquivalenceAcrossBackends is the property test of the
// sub-word range contract: on every backend, a float32/int32 bulk store+
// load through a speculative region is observationally identical to the
// scalar 4-byte loop — same committed bytes, same read/write set peaks.
func TestSubWordBulkEquivalenceAcrossBackends(t *testing.T) {
	const n = 37 // odd length: head, word runs and a tail
	fill := func(i int) float32 { return float32(i)*0.75 - 3 }
	bulk := func(c *Thread, base mem.Addr) {
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = fill(i)
		}
		c.StoreFloat32s(base, vals)
		back := make([]float32, n)
		c.LoadFloat32s(base, back)
		iv := make([]int32, n)
		for i := range iv {
			iv[i] = int32(3*i - 7)
		}
		c.StoreInt32s(base+4*n, iv)
	}
	scalar := func(c *Thread, base mem.Addr) {
		for i := 0; i < n; i++ {
			c.StoreFloat32(base+mem.Addr(4*i), fill(i))
		}
		for i := 0; i < n; i++ {
			c.LoadFloat32(base + mem.Addr(4*i))
		}
		for i := 0; i < n; i++ {
			c.StoreInt32(base+4*n+mem.Addr(4*i), int32(3*i-7))
		}
	}
	var wantBytes []byte
	var wantRead, wantWrite int
	for bi, backend := range gbuf.Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			bres, bout := subWordProbe(t, backend, 8*n, bulk)
			sres, sout := subWordProbe(t, backend, 8*n, scalar)
			if string(bout) != string(sout) {
				t.Fatal("bulk and scalar sub-word accesses committed different bytes")
			}
			if bres.ReadSetPeak != sres.ReadSetPeak || bres.WriteSetPeak != sres.WriteSetPeak {
				t.Fatalf("bulk peaks (%d,%d) != scalar peaks (%d,%d)",
					bres.ReadSetPeak, bres.WriteSetPeak, sres.ReadSetPeak, sres.WriteSetPeak)
			}
			if bi == 0 {
				wantBytes, wantRead, wantWrite = bout, bres.ReadSetPeak, bres.WriteSetPeak
				return
			}
			// Cross-backend: identical bytes and set footprints.
			if string(bout) != string(wantBytes) {
				t.Fatal("backends committed different bytes for the same accesses")
			}
			if bres.ReadSetPeak != wantRead || bres.WriteSetPeak != wantWrite {
				t.Fatalf("backend peaks (%d,%d) != first backend's (%d,%d)",
					bres.ReadSetPeak, bres.WriteSetPeak, wantRead, wantWrite)
			}
		})
	}
}

// TestSubWordMisalignedRollsBack: a sub-word slice view at a non-4-aligned
// base is an unsafe operation — speculative threads roll back, the
// non-speculative thread panics.
func TestSubWordMisalignedRollsBack(t *testing.T) {
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		p := t0.Alloc(256)
		base := p + 8 - mem.Addr(uint64(p)%8)
		ranks := []Rank{0}
		h := t0.Fork(ranks, 0, OutOfOrder)
		if h == nil {
			t.Fatal("fork refused")
		}
		h.SetRegvarAddr(0, base+2)
		h.Start(func(c *Thread) uint32 {
			c.LoadFloat32s(c.GetRegvarAddr(0), make([]float32, 4))
			return 0
		})
		res := t0.Join(ranks, 0)
		if res.Status != JoinRolledBack || res.Reason != RollbackUnsafeOp {
			t.Fatalf("misaligned sub-word view: %v (%v), want rollback (unsafe-op)", res.Status, res.Reason)
		}

		defer func() {
			if recover() == nil {
				t.Fatal("non-speculative misaligned sub-word view did not panic")
			}
		}()
		t0.LoadFloat32s(base+2, make([]float32, 4))
	})
}

// TestValidateRegvarFloat64Rel covers the tolerance-based float live-in
// validation: within tolerance commits, outside rolls back with the
// locals-misprediction reason, and relTol 0 demands bit equality.
func TestValidateRegvarFloat64Rel(t *testing.T) {
	run := func(predicted, actual, relTol float64) JoinResult {
		rt := newRT(t, 1, nil)
		var res JoinResult
		rt.Run(func(t0 *Thread) {
			ranks := []Rank{0}
			h := t0.Fork(ranks, 0, OutOfOrder)
			if h == nil {
				t.Fatal("fork refused")
			}
			h.SetRegvarFloat64(0, predicted)
			h.Start(func(c *Thread) uint32 {
				c.GetRegvarFloat64(0)
				c.Tick(10)
				return 0
			})
			t0.ValidateRegvarFloat64Rel(ranks, 0, 0, actual, relTol)
			res = t0.Join(ranks, 0)
		})
		return res
	}

	if res := run(100.0, 100.0+1e-7, 1e-6); !res.Committed() {
		t.Fatalf("within-tolerance prediction rolled back: %v (%v)", res.Status, res.Reason)
	}
	if res := run(100.0, 101.0, 1e-6); res.Status != JoinRolledBack || res.Reason != RollbackLocals {
		t.Fatalf("out-of-tolerance prediction: %v (%v), want rollback (locals)", res.Status, res.Reason)
	}
	if res := run(100.0, math.Nextafter(100.0, 200), 0); res.Status != JoinRolledBack {
		t.Fatalf("relTol 0 accepted a non-bit-equal prediction: %v", res.Status)
	}
	if res := run(2.5, 2.5, 0); !res.Committed() {
		t.Fatalf("relTol 0 rejected a bit-equal prediction: %v (%v)", res.Status, res.Reason)
	}
	// An unset slot fails validation regardless of tolerance.
	rt := newRT(t, 1, nil)
	rt.Run(func(t0 *Thread) {
		ranks := []Rank{0}
		h := t0.Fork(ranks, 0, OutOfOrder)
		if h == nil {
			t.Fatal("fork refused")
		}
		h.Start(func(c *Thread) uint32 { c.Tick(5); return 0 })
		t0.ValidateRegvarFloat64Rel(ranks, 0, 3, 1.0, 1.0)
		if res := t0.Join(ranks, 0); res.Status != JoinRolledBack {
			t.Fatalf("unset slot validated: %v", res.Status)
		}
	})
}
