package core

import (
	"time"

	"repro/internal/faultinject"
)

// injectAt consults the runtime's fault plan at a protocol seam and acts
// the drawn fault out through the runtime's real failure paths: a panic
// unwinds like any kernel/region panic (containment under test), forced
// rollbacks and overflows take rollbackNow, a cancel goes through
// CancelRun, a delay just sleeps. On the non-speculative thread the
// rollback-shaped kinds degrade to no-ops — there is nothing to roll back
// — so a single plan can drive both sides. Nil-plan runtimes pay one
// pointer check.
func (t *Thread) injectAt(site faultinject.Site) {
	plan := t.rt.opts.FaultPlan
	if plan == nil {
		return
	}
	switch plan.Decide(site) {
	case faultinject.KindPanic:
		panic(&faultinject.InjectedPanic{Site: site, Seq: plan.Seq(site)})
	case faultinject.KindRollback:
		if t.speculative {
			t.rollbackNow(RollbackInjected)
		}
	case faultinject.KindOverflow:
		if t.speculative {
			t.rollbackNow(RollbackOverflow)
		}
	case faultinject.KindDelay:
		time.Sleep(faultinject.Delay)
	case faultinject.KindCancel:
		t.rt.CancelRun()
	}
}
