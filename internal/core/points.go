package core

import (
	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// CheckPoint is MUTLS_check_point: the polling call the speculator pass
// inserts inside loops and before function calls so the non-speculative
// thread never waits long. It returns true when the region must stop —
// either because the parent signalled a join (SYNC) or because an overflow
// entry obliges the thread to wait for its join. The region then saves its
// live locals with SaveRegvar*/SaveStackvar and returns its synchronization
// counter. A NOSYNC signal rolls the region back on the spot.
func (t *Thread) CheckPoint() bool {
	if !t.speculative {
		return false
	}
	t.injectAt(faultinject.SitePoll)
	cost := t.clock.Model
	t.clock.Charge(vclock.Work, cost.CheckPointCost)
	if t.cpu.deadlineHit.Load() {
		// The watchdog flagged this execution as runaway: roll back here,
		// at the poll — the one place a flag-based squash can interrupt a
		// speculative thread without preemption.
		t.rt.collector.CountWatchdogKill()
		t.rollbackNow(RollbackDeadline)
	}
	switch t.cpu.td.syncStatus() {
	case syncSync:
		return true
	case syncNoSync:
		t.rollbackNow(RollbackNoSync)
	}
	return t.cpu.gb.MustStop()
}

// BarrierPoint is __builtin_MUTLS_barrier: an unconditional stop point. The
// thread stops here and waits to be joined; the joining thread resumes at
// the given synchronization counter. Live locals must be saved before the
// call. It does not return.
func (t *Thread) BarrierPoint(counter uint32) {
	if !t.speculative {
		return // barriers are no-ops on the non-speculative path
	}
	panic(stopSignal{counter: counter})
}

// TerminatePoint is MUTLS_terminate_point: inserted before instructions
// that are unsafe to execute speculatively (external calls, I/O,
// allocation). Mechanically identical to a barrier: the thread stops with
// the given counter and the joining thread re-executes the unsafe operation
// itself. It does not return on the speculative path.
func (t *Thread) TerminatePoint(counter uint32) {
	if !t.speculative {
		return
	}
	panic(stopSignal{counter: counter})
}

// SyncParent is MUTLS_sync_parent (Fig. 2(d)): a speculative thread that
// reaches a join point where it speculated a child hands its continuation
// to the parent chain — it stops with the join point's synchronization
// counter, and the non-speculative thread, after committing this thread,
// resumes there and performs the actual synchronization with the child
// (whose rank travels in the saved locals). It does not return on the
// speculative path.
func (t *Thread) SyncParent(counter uint32) {
	if !t.speculative {
		return
	}
	panic(stopSignal{counter: counter})
}

// EnterPoint is MUTLS_enter_point: it registers a new LocalBuffer stack
// frame as the speculative thread descends into a nested function call
// (§IV-H). funcID identifies the callee and callSite is the enter point's
// synchronization counter in the caller, which stack frame reconstruction
// replays.
func (t *Thread) EnterPoint(funcID, callSite uint32) {
	if !t.speculative {
		return
	}
	cost := t.clock.Model
	t.clock.Charge(vclock.Work, cost.CheckPointCost)
	t.cpu.lb.PushFrame(funcID, callSite)
}

// ReturnPoint is MUTLS_return_point: it pops the frame registered by the
// matching EnterPoint. Returning from the speculative entry function is
// restricted (§IV-H): the thread stops at the given counter instead.
func (t *Thread) ReturnPoint(counter uint32) {
	if !t.speculative {
		return
	}
	if err := t.cpu.lb.PopFrame(); err != nil {
		// Entry-frame return: treat as a stop point.
		panic(stopSignal{counter: counter})
	}
}

// FrameDepth returns the LocalBuffer frame depth (1 = entry frame).
func (t *Thread) FrameDepth() int {
	if !t.speculative {
		return 0
	}
	return t.cpu.lb.Depth()
}

// PtrIntCast guards type casts between pointers and integers (§IV-G3): the
// pointer mapping mechanism cannot fix integer copies of speculative stack
// pointers, so unless the value lies in the unmapped global address space
// the speculative thread stops at the given counter and the joining thread
// re-executes the cast.
func (t *Thread) PtrIntCast(v mem.Addr, counter uint32) {
	if !t.speculative {
		return
	}
	if t.rt.space.InGlobal(v, 1) {
		return
	}
	panic(stopSignal{counter: counter})
}

// Rollback forces the current region to roll back (exposed for failure
// injection in tests).
func (t *Thread) Rollback() {
	t.rollbackNow(RollbackUnsafeOp)
}

// Cancelled reports whether the current run has been cancelled (the
// RunCtx context expired, or CancelRun was called). Loop drivers may poll
// it to stop issuing work early.
func (t *Thread) Cancelled() bool { return t.rt.cancelled.Load() }

// CancelPoint is the cooperative cancellation poll of the driving,
// non-speculative thread — the service-mode analogue of CheckPoint. If
// the run has been cancelled it unwinds the non-speculative thread back
// to RunCtx, which squashes outstanding speculation through the normal
// drain and reports the context's error. On a speculative thread it is a
// no-op: speculative work is reclaimed by the drain's NOSYNC cascade, not
// by unwinding.
func (t *Thread) CancelPoint() {
	if t.speculative {
		return
	}
	t.injectAt(faultinject.SitePoll)
	if t.rt.cancelled.Load() {
		panic(cancelSignal{})
	}
}
