package core

import (
	"sync/atomic"

	"repro/internal/vclock"
)

// This file surfaces per-point execution counters *mid-run*. The stats
// collector only aggregates execution records post-hoc (stats.Summarize);
// feedback-driven policies — adaptive chunk sizing in particular — need the
// commit/rollback/latency profile of a fork point while the loop that owns
// it is still running. Counters are updated by the worker goroutines with
// atomics, so the non-speculative thread may read them at any time; a read
// taken right after Join returns is guaranteed to include the joined
// execution (the join waits for the worker's record before reclaiming the
// CPU).

// PointCounters is a snapshot of one fork/join point's live activity.
type PointCounters struct {
	// Commits and Rollbacks count finished speculative executions on the
	// point (squashed/NOSYNCed executions count as rollbacks).
	Commits   int64
	Rollbacks int64
	// CommitLatency and RollbackLatency sum the occupied CPU intervals
	// (virtual units or nanoseconds) of committed and rolled-back
	// executions respectively.
	CommitLatency   vclock.Cost
	RollbackLatency vclock.Cost
	// ReadSetPeak/WriteSetPeak are the largest per-execution GlobalBuffer
	// set sizes (words) observed on the point so far.
	ReadSetPeak  int
	WriteSetPeak int
}

// Executions is the total number of finished speculative executions.
func (p PointCounters) Executions() int64 { return p.Commits + p.Rollbacks }

// RollbackRate is rollbacks / executions, or 0 with no executions.
func (p PointCounters) RollbackRate() float64 {
	n := p.Executions()
	if n == 0 {
		return 0
	}
	return float64(p.Rollbacks) / float64(n)
}

// MeanCommitLatency is the average occupied interval of a committed
// execution, or 0 with no commits.
func (p PointCounters) MeanCommitLatency() vclock.Cost {
	if p.Commits == 0 {
		return 0
	}
	return p.CommitLatency / vclock.Cost(p.Commits)
}

// Sub returns the activity since an earlier snapshot of the same point:
// counts and latency sums are differenced, set peaks keep their absolute
// high-water marks (a maximum cannot be windowed).
func (p PointCounters) Sub(base PointCounters) PointCounters {
	return PointCounters{
		Commits:         p.Commits - base.Commits,
		Rollbacks:       p.Rollbacks - base.Rollbacks,
		CommitLatency:   p.CommitLatency - base.CommitLatency,
		RollbackLatency: p.RollbackLatency - base.RollbackLatency,
		ReadSetPeak:     p.ReadSetPeak,
		WriteSetPeak:    p.WriteSetPeak,
	}
}

// livePoint is the atomic backing store of one point's counters.
type livePoint struct {
	commits         atomic.Int64
	rollbacks       atomic.Int64
	commitLatency   atomic.Int64
	rollbackLatency atomic.Int64
	readPeak        atomic.Int64
	writePeak       atomic.Int64
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// observe folds one finished execution into the point's counters.
func (lp *livePoint) observe(committed bool, latency vclock.Cost, readPeak, writePeak int) {
	if committed {
		lp.commits.Add(1)
		lp.commitLatency.Add(int64(latency))
	} else {
		lp.rollbacks.Add(1)
		lp.rollbackLatency.Add(int64(latency))
	}
	atomicMax(&lp.readPeak, int64(readPeak))
	atomicMax(&lp.writePeak, int64(writePeak))
}

func (lp *livePoint) snapshot() PointCounters {
	return PointCounters{
		Commits:         lp.commits.Load(),
		Rollbacks:       lp.rollbacks.Load(),
		CommitLatency:   lp.commitLatency.Load(),
		RollbackLatency: lp.rollbackLatency.Load(),
		ReadSetPeak:     int(lp.readPeak.Load()),
		WriteSetPeak:    int(lp.writePeak.Load()),
	}
}

func (lp *livePoint) reset() {
	lp.commits.Store(0)
	lp.rollbacks.Store(0)
	lp.commitLatency.Store(0)
	lp.rollbackLatency.Store(0)
	lp.readPeak.Store(0)
	lp.writePeak.Store(0)
}

// PointCounters returns the live counters of fork/join point p. Unlike
// Stats, it is safe and meaningful to call from the non-speculative thread
// in the middle of a Run; counters accumulate until ResetStats.
func (rt *Runtime) PointCounters(p int) PointCounters {
	if p < 0 || p >= len(rt.live) {
		return PointCounters{}
	}
	return rt.live[p].snapshot()
}
