package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPhaseNames(t *testing.T) {
	if Work.String() != "work" || Wasted.String() != "wasted work" || FindCPU.String() != "find CPU" {
		t.Fatal("phase names drifted from the paper's figure legends")
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase name")
	}
}

func TestLedgerTotalAndAdd(t *testing.T) {
	var a, b Ledger
	a[Work] = 10
	a[Idle] = 5
	b[Work] = 1
	b[Commit] = 2
	a.Add(&b)
	if a[Work] != 11 || a[Commit] != 2 || a.Total() != 18 {
		t.Fatalf("ledger %+v total %d", a, a.Total())
	}
}

func TestVirtualChargeAdvancesTimeAndLedger(t *testing.T) {
	m := DefaultCostModel()
	c := NewClock(Virtual, &m, time.Now())
	c.Charge(Work, 100)
	c.Charge(Fork, 50)
	if c.Now() != 150 {
		t.Fatalf("Now = %d", c.Now())
	}
	l := c.Ledger()
	if l[Work] != 100 || l[Fork] != 50 {
		t.Fatalf("ledger %+v", l)
	}
	c.Charge(Work, 0)
	c.Charge(Work, -5) // non-positive charges ignored
	if c.Now() != 150 {
		t.Fatalf("Now moved on zero charge: %d", c.Now())
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	m := DefaultCostModel()
	c := NewClock(Virtual, &m, time.Now())
	c.Charge(Work, 100)
	c.AdvanceTo(250, Idle)
	if c.Now() != 250 || c.Ledger()[Idle] != 150 {
		t.Fatalf("Now=%d idle=%d", c.Now(), c.Ledger()[Idle])
	}
	c.AdvanceTo(200, Idle) // past target: no-op
	if c.Now() != 250 || c.Ledger()[Idle] != 150 {
		t.Fatal("AdvanceTo went backwards")
	}
}

func TestVirtualSetNow(t *testing.T) {
	m := DefaultCostModel()
	c := NewClock(Virtual, &m, time.Now())
	c.SetNow(1000)
	if c.Now() != 1000 {
		t.Fatalf("SetNow: %d", c.Now())
	}
}

func TestVirtualSpanIsNoop(t *testing.T) {
	m := DefaultCostModel()
	c := NewClock(Virtual, &m, time.Now())
	stop := c.Span(Join)
	stop()
	if c.Ledger()[Join] != 0 {
		t.Fatal("virtual span charged the ledger")
	}
}

func TestRealClockAdvancesWithWallTime(t *testing.T) {
	m := DefaultCostModel()
	c := NewClock(Real, &m, time.Now())
	t0 := c.Now()
	time.Sleep(2 * time.Millisecond)
	if c.Now() <= t0 {
		t.Fatal("real clock did not advance")
	}
	// Charges and AdvanceTo are ignored in real mode.
	c.Charge(Work, 1<<40)
	c.AdvanceTo(1<<50, Idle)
	if c.Ledger()[Work] != 0 || c.Ledger()[Idle] != 0 {
		t.Fatal("real mode accepted virtual charges")
	}
}

func TestRealSpanMeasures(t *testing.T) {
	m := DefaultCostModel()
	c := NewClock(Real, &m, time.Now())
	stop := c.Span(Validation)
	time.Sleep(2 * time.Millisecond)
	stop()
	if c.Ledger()[Validation] < (1 * time.Millisecond).Nanoseconds() {
		t.Fatalf("span measured %d ns", c.Ledger()[Validation])
	}
}

func TestResetLedgerKeepsTime(t *testing.T) {
	m := DefaultCostModel()
	c := NewClock(Virtual, &m, time.Now())
	c.Charge(Work, 123)
	c.ResetLedger()
	if c.Now() != 123 {
		t.Fatal("reset moved time")
	}
	l := c.Ledger()
	if l.Total() != 0 {
		t.Fatal("reset kept ledger")
	}
}

func TestCostModelsOrdering(t *testing.T) {
	c := DefaultCostModel()
	f := FortranCostModel()
	if c.BufferedAccess <= c.DirectAccess {
		t.Fatal("buffered access must cost more than direct")
	}
	if f.BufferedAccess <= c.BufferedAccess {
		t.Fatal("the Fortran variant must have higher buffering overhead (paper §V-A)")
	}
	if f.SaveLocal <= c.SaveLocal || f.ForkCost <= c.ForkCost {
		t.Fatal("Fortran live-local traffic must cost more")
	}
	if f.DirectAccess != c.DirectAccess {
		t.Fatal("sequential (direct) execution speed should not differ between front-ends")
	}
}

// Property: in virtual mode, Now always equals the ledger total (every
// advance is booked somewhere) when starting from zero.
func TestQuickVirtualNowEqualsLedgerTotal(t *testing.T) {
	m := DefaultCostModel()
	f := func(charges []uint16, targets []uint32) bool {
		c := NewClock(Virtual, &m, time.Now())
		for i, ch := range charges {
			c.Charge(Phase(i%int(NumPhases)), Cost(ch))
			if i < len(targets) {
				c.AdvanceTo(Cost(targets[i]), Idle)
			}
		}
		l := c.Ledger()
		return c.Now() == l.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
