// Package vclock is the timing substrate of the reproduction. The paper
// evaluates MUTLS on a 64-core AMD Opteron 6274; this repository runs on
// whatever container it is given, so wall-clock speedups saturate at the
// physical core count. To regenerate the paper's 1..64-CPU figures, every
// thread carries a virtual clock advanced by a calibrated cost model:
// compute ticks, direct and buffered memory accesses, fork/find-CPU/join
// handshakes, per-word validation and commit, and so on. Fork and join
// exchange clocks exactly like a discrete-event simulation, so the
// *structure* of parallel execution — who waits for whom, for how long — is
// modelled faithfully while correctness (buffering, validation, commit,
// rollback) still executes for real.
//
// A real mode exists as well: the same ledger is filled from time.Now
// deltas, which is what the wall-clock testing.B benchmarks measure.
package vclock

import "time"

// Cost is a duration in abstract cost units (virtual mode) or nanoseconds
// (real mode).
type Cost = int64

// Phase labels every ledger bucket. The names follow the categories of the
// paper's Figure 8 (critical path: work/join/idle/fork/find CPU) and
// Figure 9 (speculative path: wasted work/finalize/commit/validation/
// overflow/idle/fork/find CPU).
type Phase uint8

const (
	// Work is useful execution: user computation plus the memory accesses
	// it performs (buffered accesses are charged here in full, matching the
	// paper's measurement of work time as the time between overhead events).
	Work Phase = iota
	// Fork is time spent in the speculate call: proxy/stub bookkeeping and
	// live-variable save/restore.
	Fork
	// FindCPU is time scanning for an idle virtual CPU (MUTLS_get_CPU).
	FindCPU
	// Join is the synchronization handshake on the joining thread.
	Join
	// Idle is time waiting: the parent waiting for a child to stop and
	// validate, or a stopped child waiting to be joined.
	Idle
	// Validation is read-set validation time.
	Validation
	// Commit is write-set commit time.
	Commit
	// Finalize is buffer clearing time after commit or rollback.
	Finalize
	// Overflow is a child's wait time attributable to a hash-conflict
	// overflow (it had to stop early and wait to be joined).
	Overflow
	// Wasted is the work of an execution that rolled back.
	Wasted
	// NumPhases is the ledger size.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"work", "fork", "find CPU", "join", "idle",
	"validation", "commit", "finalize", "overflow", "wasted work",
}

// String returns the paper's name for the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Ledger accumulates cost per phase.
type Ledger [NumPhases]Cost

// Total returns the sum over all phases.
func (l *Ledger) Total() Cost {
	var t Cost
	for _, v := range l {
		t += v
	}
	return t
}

// Add accumulates another ledger into this one.
func (l *Ledger) Add(o *Ledger) {
	for i := range l {
		l[i] += o[i]
	}
}

// CostModel prices every runtime event in abstract units. One unit is
// roughly one arithmetic operation on the modelled machine; the defaults
// were chosen so the benchmark suite reproduces the paper's headline shapes
// (computation-intensive speedups of 20-50 at 64 CPUs, memory-intensive
// 2-7).
type CostModel struct {
	DirectAccess    Cost // non-speculative load/store
	BufferedAccess  Cost // speculative load/store through the GlobalBuffer
	ForkCost        Cost // MUTLS_speculate: proxy + stub + thread handoff
	FindCPUCost     Cost // MUTLS_get_CPU scan
	SyncCost        Cost // MUTLS_synchronize handshake
	ValidatePerWord Cost // read-set validation per buffered word
	CommitPerWord   Cost // write-set commit per buffered word
	FinalizePerWord Cost // buffer clearing per used word
	SaveLocal       Cost // per live local saved at a stop point
	RestoreLocal    Cost // per live local restored at fork or join
	CheckPointCost  Cost // one MUTLS_check_point poll
}

// DefaultCostModel prices the C benchmarks.
func DefaultCostModel() CostModel {
	return CostModel{
		DirectAccess:    1,
		BufferedAccess:  4,
		ForkCost:        600,
		FindCPUCost:     60,
		SyncCost:        300,
		ValidatePerWord: 4,
		CommitPerWord:   4,
		FinalizePerWord: 1,
		SaveLocal:       12,
		RestoreLocal:    12,
		CheckPointCost:  2,
	}
}

// FortranCostModel prices the Fortran front-end variant. The paper
// attributes the Fortran programs' lower scalability to "additional memory
// buffering overhead, e.g., the shapes of arrays being allocated on the
// stack" (§V-A); the variant therefore inflates buffered accesses and the
// live-local traffic.
func FortranCostModel() CostModel {
	m := DefaultCostModel()
	m.BufferedAccess = 7
	m.SaveLocal = 24
	m.RestoreLocal = 24
	m.ForkCost = 900
	return m
}

// Mode selects how clocks advance.
type Mode uint8

const (
	// Virtual: clocks advance by cost-model charges; time.Now is never
	// consulted. Deterministic; used for all figure regeneration.
	Virtual Mode = iota
	// Real: clocks advance with wall time; charges are ignored and phases
	// are measured with spans.
	Real
)

// Clock is one thread's clock plus its phase ledger for the current
// execution. Clocks are goroutine-local; cross-thread reads happen only
// through published snapshots in the TLS handshake.
type Clock struct {
	Mode   Mode
	Model  *CostModel
	epoch  time.Time
	now    Cost
	ledger Ledger
}

// NewClock creates a clock at time zero. All clocks of one runtime share
// the epoch so Real-mode Now values are comparable across threads.
func NewClock(mode Mode, model *CostModel, epoch time.Time) *Clock {
	return &Clock{Mode: mode, Model: model, epoch: epoch}
}

// Now returns the thread-local current time.
func (c *Clock) Now() Cost {
	if c.Mode == Virtual {
		return c.now
	}
	return time.Since(c.epoch).Nanoseconds()
}

// SetNow initializes virtual time (a child starting at its fork time).
func (c *Clock) SetNow(t Cost) {
	if c.Mode == Virtual {
		c.now = t
	}
}

// Charge advances virtual time by d in phase p. Real mode ignores it.
func (c *Clock) Charge(p Phase, d Cost) {
	if c.Mode == Virtual && d > 0 {
		c.now += d
		c.ledger[p] += d
	}
}

// AdvanceTo jumps virtual time forward to target, booking the gap in phase
// p (waiting). If target is in the past, nothing happens.
func (c *Clock) AdvanceTo(target Cost, p Phase) {
	if c.Mode == Virtual && target > c.now {
		c.ledger[p] += target - c.now
		c.now = target
	}
}

// Span starts a real-mode stopwatch for phase p; invoke the returned stop
// function at the end of the phase. Virtual mode returns a no-op.
func (c *Clock) Span(p Phase) func() {
	if c.Mode == Virtual {
		return func() {}
	}
	start := time.Now()
	return func() { c.ledger[p] += time.Since(start).Nanoseconds() }
}

// Ledger returns the accumulated phase ledger.
func (c *Clock) Ledger() Ledger { return c.ledger }

// ResetLedger clears the ledger for a new execution without touching time.
func (c *Clock) ResetLedger() { c.ledger = Ledger{} }
