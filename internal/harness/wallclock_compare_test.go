package harness

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func sampleReport(host WallclockHost) *WallclockReport {
	return &WallclockReport{
		Suite:      "mutls-wallclock",
		Host:       host,
		Provenance: "test fixture",
		Workloads: []WallclockResult{{
			Name:  "fft",
			Size:  bench.Size{N: 64},
			SeqNS: 1000,
			Points: []WallclockPoint{
				{CPUs: 1, NS: 1100, Speedup: 0.91},
				{CPUs: 2, NS: 600, Speedup: 1.67},
			},
		}},
	}
}

// CompareWallclock must refuse host-shape mismatches: a baseline measured
// on different parallelism (or OS/arch) cannot ground a speedup diff.
func TestCompareWallclockHostGuard(t *testing.T) {
	h1 := WallclockHost{OS: "linux", Arch: "amd64", NumCPU: 1, GOMAXPROCS: 1}
	cur := sampleReport(h1)
	for _, tc := range []struct {
		name  string
		tweak func(*WallclockHost)
		want  string
	}{
		{"numcpu", func(h *WallclockHost) { h.NumCPU = 8 }, "num_cpu"},
		{"gomaxprocs", func(h *WallclockHost) { h.GOMAXPROCS = 4 }, "gomaxprocs"},
		{"os", func(h *WallclockHost) { h.OS = "darwin" }, "os"},
		{"arch", func(h *WallclockHost) { h.Arch = "arm64" }, "arch"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bh := h1
			tc.tweak(&bh)
			base := sampleReport(bh)
			var buf strings.Builder
			err := CompareWallclock(&buf, base, cur)
			if err == nil {
				t.Fatal("cross-host diff accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the mismatched field %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), base.Provenance) {
				t.Fatalf("error %q does not echo the baseline provenance", err)
			}
		})
	}
}

func TestCompareWallclockSameHost(t *testing.T) {
	h1 := WallclockHost{OS: "linux", Arch: "amd64", NumCPU: 1, GOMAXPROCS: 1}
	base, cur := sampleReport(h1), sampleReport(h1)
	cur.Workloads[0].Points[1].Speedup = 1.8
	var buf strings.Builder
	if err := CompareWallclock(&buf, base, cur); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fft", "1.670x", "1.800x", "+7.8%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareWallclockQuickMismatch(t *testing.T) {
	h1 := WallclockHost{OS: "linux", Arch: "amd64", NumCPU: 1, GOMAXPROCS: 1}
	base, cur := sampleReport(h1), sampleReport(h1)
	base.Quick = true
	var buf strings.Builder
	if err := CompareWallclock(&buf, base, cur); err == nil {
		t.Fatal("quick-vs-full diff accepted")
	}
}

func TestLoadWallclockBaseline(t *testing.T) {
	h1 := WallclockHost{OS: "linux", Arch: "amd64", NumCPU: 1, GOMAXPROCS: 1}
	var buf strings.Builder
	if err := WriteWallclock(&buf, sampleReport(h1)); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadWallclockBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 1 || rep.Workloads[0].Name != "fft" {
		t.Fatalf("roundtrip lost workloads: %+v", rep.Workloads)
	}
	if _, err := LoadWallclockBaseline(strings.NewReader(`{"suite":"other"}`)); err == nil {
		t.Fatal("foreign JSON accepted as baseline")
	}
}
