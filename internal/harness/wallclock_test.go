package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWallclockQuickSuite runs the CI-sized wall-clock sweep end to end
// and validates the JSON document's shape. Checksums are verified inside
// Wallclock (a mismatch is an error), so a pass also re-proves sequential
// equivalence under Real timing on the bulk kernels.
func TestWallclockQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock sweep in -short mode")
	}
	h := New(DefaultConfig())
	var buf bytes.Buffer
	cfg := WallclockConfig{Quick: true, CPUAxis: []int{1, 2}, Reps: 1}
	if err := h.Wallclock(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	var report WallclockReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if report.Suite != "mutls-wallclock" || !report.Quick {
		t.Fatalf("bad header: %+v", report)
	}
	if report.Warmup < 1 || report.Reps != 1 {
		t.Fatalf("warmup/reps not resolved: %+v", report)
	}
	if report.Host.NumCPU < 1 || report.Host.GoVersion == "" {
		t.Fatalf("host not recorded: %+v", report.Host)
	}
	if report.Provenance == "" {
		t.Fatal("no provenance recorded for the baseline")
	}
	want := map[string]bool{
		"mandelbrot": true, "md": true, "fft": true, "matmult": true,
		"stencil": true, "floatsum": true,
	}
	for _, w := range report.Workloads {
		if !want[w.Name] {
			t.Fatalf("unexpected workload %q", w.Name)
		}
		delete(want, w.Name)
		if w.SeqNS <= 0 {
			t.Fatalf("%s: no sequential baseline", w.Name)
		}
		if len(w.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", w.Name, len(w.Points))
		}
		for _, p := range w.Points {
			if p.NS <= 0 || p.Speedup <= 0 {
				t.Fatalf("%s: degenerate point %+v", w.Name, p)
			}
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing workloads: %v", want)
	}
}
