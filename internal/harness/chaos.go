package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/mutls"
	"repro/mutls/pool"
)

// ChaosConfig drives RunChaos, the deterministic fault-injection sweep.
type ChaosConfig struct {
	// Seed derives every storm's injection plan; the same seed replays the
	// same faults at the same protocol seams.
	Seed uint64
	// Quick restricts the sweep to a CI-sized subset (three kernels, one
	// storm per combination).
	Quick bool
	// CPUs is the speculative virtual-CPU count of every run; zero selects
	// 7 (8 total CPUs, the paper's mid-axis point).
	CPUs int
	// Storms is the number of injected runs per kernel/model/backend
	// combination; zero selects 2 (1 under Quick).
	Storms int
}

// chaosMixes are the injection mixes the sweep rotates through. Each mix
// stresses a different containment surface: spec-side panics (the
// panic-as-misspeculation path), protocol-seam panics on either side
// (kernel containment, open-fork abandonment), forced rollbacks and
// overflows (squash/re-execute machinery), and latency (delays that shift
// the schedule without faulting anything).
var chaosMixes = []struct {
	name  string
	rules []faultinject.Rule
}{
	{"spec-panic", []faultinject.Rule{
		{Site: faultinject.SitePoll, Kind: faultinject.KindPanic, Prob: 0.003},
	}},
	{"seam-panic", []faultinject.Rule{
		{Site: faultinject.SiteFork, Kind: faultinject.KindPanic, Prob: 0.01},
		{Site: faultinject.SiteJoin, Kind: faultinject.KindPanic, Prob: 0.005},
	}},
	{"squash", []faultinject.Rule{
		{Site: faultinject.SitePoll, Kind: faultinject.KindRollback, Prob: 0.005},
		{Site: faultinject.SiteStore, Kind: faultinject.KindOverflow, Prob: 0.002},
		{Site: faultinject.SiteCommit, Kind: faultinject.KindRollback, Prob: 0.1},
	}},
	{"latency", []faultinject.Rule{
		{Site: faultinject.SitePoll, Kind: faultinject.KindDelay, Prob: 0.002},
		{Site: faultinject.SiteJoin, Kind: faultinject.KindDelay, Prob: 0.02},
		{Site: faultinject.SiteCommit, Kind: faultinject.KindDelay, Prob: 0.02},
	}},
	{"storm", []faultinject.Rule{
		{Site: faultinject.SitePoll, Kind: faultinject.KindPanic, Prob: 0.002},
		{Site: faultinject.SitePoll, Kind: faultinject.KindRollback, Prob: 0.003},
		{Site: faultinject.SiteFork, Kind: faultinject.KindPanic, Prob: 0.005},
		{Site: faultinject.SiteStore, Kind: faultinject.KindOverflow, Prob: 0.001},
		{Site: faultinject.SiteCommit, Kind: faultinject.KindRollback, Prob: 0.05},
		{Site: faultinject.SiteCommit, Kind: faultinject.KindDelay, Prob: 0.01},
		{Site: faultinject.SiteFork, Kind: faultinject.KindCancel, Prob: 0.001},
	}},
}

// chaosModels is the full forking-model axis.
var chaosModels = []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed, mutls.MixedLinear}

// RunChaos sweeps deterministic fault storms over the benchmark suite:
// every kernel × forking model × GlobalBuffer backend runs Storms injected
// executions followed by one disarmed execution, asserting after each run
// that (a) a run that completes without error produced the sequential
// checksum — injected faults may change the schedule, never the result;
// (b) a run may only fail with the typed containment errors (KernelPanic
// from a seam panic on the non-speculative thread, ErrCancelled from an
// injected cancel); and (c) no goroutines leak once the runtime closes.
// The sweep is fully reproducible from cfg.Seed.
func RunChaos(cfg ChaosConfig, out io.Writer) error {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 7
	}
	if cfg.Storms <= 0 {
		cfg.Storms = 2
		if cfg.Quick {
			cfg.Storms = 1
		}
	}
	workloads := bench.Everything()
	if cfg.Quick {
		workloads = []*bench.Workload{bench.X3P1, bench.FFT, bench.BH}
	}
	backends := mutls.Backends()

	baseline := settledGoroutines()
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(out, "CHAOS SWEEP. seed=%d storms=%d cpus=%d quick=%v\n",
		cfg.Seed, cfg.Storms, cfg.CPUs, cfg.Quick)
	fmt.Fprintln(tw, "Benchmark\tModel\tBackend\tMix\tRuns\tContained\tInjected")

	combo := 0
	for _, w := range workloads {
		seqCfg := bench.RunConfig{CPUs: 1, Size: w.CISize, Timing: mutls.Virtual}
		seq, err := bench.MeasureSeq(w, seqCfg)
		if err != nil {
			return fmt.Errorf("chaos %s sequential: %w", w.Name, err)
		}
		for _, model := range chaosModels {
			for _, backend := range backends {
				mix := chaosMixes[combo%len(chaosMixes)]
				combo++
				contained, injected := 0, int64(0)
				for storm := 0; storm < cfg.Storms+1; storm++ {
					// The last iteration runs the same combination with the
					// plan disarmed: a post-storm runtime configuration must
					// produce clean sequential-equivalent runs.
					plan := faultinject.NewPlan(
						cfg.Seed^uint64(combo)*0x9E3779B97F4A7C15^uint64(storm), mix.rules)
					if storm == cfg.Storms {
						plan.Disarm()
					}
					runCfg := bench.RunConfig{
						CPUs:         cfg.CPUs,
						Size:         w.CISize,
						Model:        model,
						Timing:       mutls.Virtual,
						Buffering:    mutls.Buffering{Backend: backend},
						Faults:       plan,
						SpecDeadline: 250 * time.Millisecond,
					}
					m, err := bench.MeasureSpec(w, runCfg)
					switch {
					case err == nil:
						if m.Checksum != seq.Checksum {
							return fmt.Errorf("chaos %s/%v/%s/%s storm %d: checksum %#x != sequential %#x",
								w.Name, model, backend, mix.name, storm, m.Checksum, seq.Checksum)
						}
					case isContained(err):
						if storm == cfg.Storms {
							return fmt.Errorf("chaos %s/%v/%s/%s: disarmed run still failed: %w",
								w.Name, model, backend, mix.name, err)
						}
						contained++
					default:
						return fmt.Errorf("chaos %s/%v/%s/%s storm %d: uncontained failure: %w",
							w.Name, model, backend, mix.name, storm, err)
					}
					injected += plan.Total()
				}
				if leaked, n := goroutineLeak(baseline); leaked {
					return fmt.Errorf("chaos %s/%v/%s/%s: goroutine leak (%d > baseline %d)",
						w.Name, model, backend, mix.name, n, baseline)
				}
				fmt.Fprintf(tw, "%s\t%v\t%s\t%s\t%d\t%d\t%d\n",
					w.Name, model, backend, mix.name, cfg.Storms+1, contained, injected)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return poolStorm(cfg, out, baseline)
}

// poolStorm is the admission-plane leg of the sweep: concurrent tenants
// hammer a small pool whose acquire, queue-admission and budget-grant
// seams are all armed. The invariants mirror the run-plane ones — a shed
// Acquire may only fail with ErrOverloaded, a degraded (zero-CPU) lease
// must still produce the sequential checksum, the budget high-water mark
// never exceeds the host budget, a disarmed pool serves cleanly, and
// nothing leaks on Close.
func poolStorm(cfg ChaosConfig, out io.Writer, baseline int) error {
	w := bench.X3P1
	size := w.CISize
	seq, err := bench.MeasureSeq(w, bench.RunConfig{CPUs: 1, Size: size, Timing: mutls.Virtual})
	if err != nil {
		return fmt.Errorf("chaos pool sequential: %w", err)
	}

	plan := faultinject.NewPlan(cfg.Seed^0xC0FFEE, []faultinject.Rule{
		{Site: faultinject.SiteAcquire, Kind: faultinject.KindLeaseFail, Prob: 0.15},
		{Site: faultinject.SiteQueue, Kind: faultinject.KindLeaseFail, Prob: 0.25},
		{Site: faultinject.SiteQueue, Kind: faultinject.KindDelay, Prob: 0.25},
		{Site: faultinject.SiteGrant, Kind: faultinject.KindDegrade, Prob: 0.5},
	})
	p, err := pool.New(pool.Options{
		Runtimes:   2,
		HostBudget: 4,
		QueueLimit: 4,
		Runtime: mutls.Options{
			CPUs:      2,
			HeapBytes: w.HeapBytes(size),
			FaultPlan: plan,
		},
	})
	if err != nil {
		return fmt.Errorf("chaos pool: %w", err)
	}

	tenants := 24
	if cfg.Quick {
		tenants = 8
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		shed     int
		degraded int
		firstErr error
	)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lease, err := p.Acquire(context.Background())
			if err != nil {
				mu.Lock()
				if errors.Is(err, pool.ErrOverloaded) {
					shed++
				} else if firstErr == nil {
					firstErr = fmt.Errorf("chaos pool: untyped acquire failure: %w", err)
				}
				mu.Unlock()
				return
			}
			defer lease.Release()
			var sum uint64
			_, rerr := lease.Runtime().RunCtx(context.Background(), func(t *mutls.Thread) {
				sum = w.Spec(t, size, bench.SpecOptions{Model: w.DefaultModel})
			})
			mu.Lock()
			defer mu.Unlock()
			if lease.Degraded() {
				degraded++
			}
			switch {
			case rerr != nil && firstErr == nil:
				firstErr = fmt.Errorf("chaos pool tenant: %w", rerr)
			case rerr == nil && sum != seq.Checksum && firstErr == nil:
				firstErr = fmt.Errorf("chaos pool tenant: checksum %#x != sequential %#x (degraded=%v)",
					sum, seq.Checksum, lease.Degraded())
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	st := p.Stats()
	if st.MaxClaimedCPUs > st.HostBudget {
		return fmt.Errorf("chaos pool: budget invariant broken: max claimed %d > budget %d",
			st.MaxClaimedCPUs, st.HostBudget)
	}
	if st.Acquired != st.Released {
		return fmt.Errorf("chaos pool: %d acquired but %d released", st.Acquired, st.Released)
	}

	// Post-storm: the disarmed pool serves a clean, verified tenant.
	plan.Disarm()
	lease, err := p.Acquire(context.Background())
	if err != nil {
		return fmt.Errorf("chaos pool disarmed acquire: %w", err)
	}
	var sum uint64
	if _, err := lease.Runtime().RunCtx(context.Background(), func(t *mutls.Thread) {
		sum = w.Spec(t, size, bench.SpecOptions{Model: w.DefaultModel})
	}); err != nil {
		lease.Release()
		return fmt.Errorf("chaos pool disarmed run: %w", err)
	}
	lease.Release()
	if sum != seq.Checksum {
		return fmt.Errorf("chaos pool disarmed run: checksum %#x != sequential %#x", sum, seq.Checksum)
	}

	p.Close()
	if leaked, n := goroutineLeak(baseline); leaked {
		return fmt.Errorf("chaos pool: goroutine leak (%d > baseline %d)", n, baseline)
	}
	fmt.Fprintf(out, "POOL STORM. tenants=%d shed=%d degraded=%d injected=%d (%v)\n",
		tenants, shed, degraded, plan.Total(), plan)
	return nil
}

// isContained reports whether a run error is one of the typed containment
// outcomes an injected fault may legitimately surface as.
func isContained(err error) bool {
	var kp *mutls.KernelPanic
	return errors.As(err, &kp) || errors.Is(err, mutls.ErrCancelled)
}

// settledGoroutines samples the goroutine count after a short settle, so
// runtimes torn down just before the baseline don't inflate it.
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		time.Sleep(time.Millisecond)
		if m := runtime.NumGoroutine(); m < n {
			n = m
		}
	}
	return n
}

// goroutineLeak waits (bounded) for the goroutine count to return to the
// baseline; workers unwind asynchronously after Close, so one sample would
// race the teardown.
func goroutineLeak(baseline int) (bool, int) {
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n > baseline, n
}
