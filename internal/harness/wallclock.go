package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/bench"
	"repro/mutls"
)

// This file is the curated wall-clock suite (ROADMAP: report speedups on
// real hardware, not only the modelled machine). Unlike the figure
// harness — which reruns the paper's experiments on the virtual cost model
// — the wall-clock suite runs the dense-sweep kernels under Real timing
// with fixed problem sizes, warmup iterations and a host-parallelism
// sweep, and emits machine-readable JSON (the committed BENCH_wallclock.json
// baseline) so regressions in the per-access software overhead the bulk
// paths remove are visible in nanoseconds.

// WallclockConfig parameterizes the suite.
type WallclockConfig struct {
	// Quick selects the CI sizes and a short axis (the -quick smoke).
	Quick bool
	// CPUAxis is the host-parallelism sweep in total CPUs (the paper's
	// x-axis convention: the non-speculative thread's CPU counts). Zero
	// selects {1, 2, 4, 8} clipped to the host's core count.
	CPUAxis []int
	// Warmup is the number of unmeasured runs per point (zero selects 1).
	Warmup int
	// Reps is the number of measured runs per point, of which the minimum
	// is reported (zero selects 3; -quick uses 2).
	Reps int
}

// wallSizes are the suite's fixed problem sizes: large enough that a run
// spends its time in the kernels (not fork/join), small enough that the
// full sweep finishes in tens of seconds on a laptop.
var wallSizes = map[string]bench.Size{
	"mandelbrot": {N: 192, M: 3000},
	"md":         {N: 160, Steps: 6},
	"fft":        {N: 1 << 16},
	"matmult":    {N: 128},
	"stencil":    {N: 1 << 15, Steps: 6},
	"floatsum":   {N: 1 << 20},
}

// wallWorkloads is the dense-sweep subset rebuilt on the bulk accessors,
// plus the pipeline and float-reduction shapes.
func wallWorkloads() []*bench.Workload {
	return []*bench.Workload{
		bench.Mandelbrot, bench.MD, bench.FFT, bench.MatMult,
		bench.Stencil, bench.FloatSum,
	}
}

// WallclockHost describes the machine a baseline was measured on.
type WallclockHost struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// WallclockPoint is one (workload, cpus) measurement.
type WallclockPoint struct {
	// CPUs is the axis value (total CPUs including the non-speculative
	// thread's).
	CPUs int `json:"cpus"`
	// NS is the minimum speculative critical-path runtime over Reps runs,
	// in nanoseconds.
	NS int64 `json:"ns"`
	// Speedup is SeqNS / NS.
	Speedup float64 `json:"speedup"`
	// Commits/Rollbacks summarize the speculation activity of the
	// reported (minimum) run.
	Commits   int `json:"commits"`
	Rollbacks int `json:"rollbacks"`
}

// WallclockResult is one workload's sweep.
type WallclockResult struct {
	Name string     `json:"name"`
	Size bench.Size `json:"size"`
	// SeqNS is the minimum sequential runtime over Reps runs.
	SeqNS  int64            `json:"seq_ns"`
	Points []WallclockPoint `json:"points"`
}

// WallclockReport is the suite's JSON document.
type WallclockReport struct {
	Suite  string        `json:"suite"`
	Quick  bool          `json:"quick"`
	Warmup int           `json:"warmup"`
	Reps   int           `json:"reps"`
	Host   WallclockHost `json:"host"`
	// Provenance states what the baseline is good for, derived from
	// host.num_cpu at measurement time: a single-core host serializes the
	// worker goroutines, so its numbers validate runtime overhead only,
	// never parallel speedup.
	Provenance string            `json:"provenance"`
	Workloads  []WallclockResult `json:"workloads"`
}

// defaults resolves the config against the host.
func (c WallclockConfig) defaults() WallclockConfig {
	if c.Warmup <= 0 {
		c.Warmup = 1
	}
	if c.Reps <= 0 {
		c.Reps = 3
		if c.Quick {
			c.Reps = 2
		}
	}
	if len(c.CPUAxis) == 0 {
		axis := []int{1, 2, 4, 8}
		if c.Quick {
			axis = []int{1, 2, 4}
		}
		// The ceiling is the schedulable parallelism, not the hardware core
		// count: under a CPU quota (containers, CI runners) GOMAXPROCS is
		// what the Go scheduler will actually run in parallel, and axis
		// points beyond it would measure time-slicing noise.
		max := runtime.GOMAXPROCS(0)
		for _, p := range axis {
			if p <= max || p <= 2 {
				c.CPUAxis = append(c.CPUAxis, p)
			}
		}
	}
	return c
}

// Wallclock runs the suite and writes the JSON report to out.
func (h *Harness) Wallclock(out io.Writer, cfg WallclockConfig) error {
	report, err := h.MeasureWallclock(cfg)
	if err != nil {
		return err
	}
	return WriteWallclock(out, report)
}

// WriteWallclock encodes a report as the suite's JSON document.
func WriteWallclock(out io.Writer, report *WallclockReport) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// MeasureWallclock runs the suite and returns the report (the programmatic
// form of Wallclock, for callers that want to compare before serializing).
func (h *Harness) MeasureWallclock(cfg WallclockConfig) (*WallclockReport, error) {
	cfg = cfg.defaults()
	report := WallclockReport{
		Suite:  "mutls-wallclock",
		Quick:  cfg.Quick,
		Warmup: cfg.Warmup,
		Reps:   cfg.Reps,
		Host: WallclockHost{
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}
	if report.Host.NumCPU > 1 {
		report.Provenance = fmt.Sprintf(
			"measured on a %d-core host: speedups reflect real parallelism up to that width",
			report.Host.NumCPU)
	} else {
		report.Provenance = "measured on a 1-core host: validates runtime overhead only, not parallel speedup"
	}
	for _, w := range wallWorkloads() {
		res, err := h.wallclockWorkload(w, cfg)
		if err != nil {
			return nil, fmt.Errorf("wallclock %s: %w", w.Name, err)
		}
		report.Workloads = append(report.Workloads, res)
	}
	return &report, nil
}

func (h *Harness) wallclockWorkload(w *bench.Workload, cfg WallclockConfig) (WallclockResult, error) {
	size := wallSizes[w.Name]
	if cfg.Quick || size == (bench.Size{}) {
		size = w.CISize
	}
	res := WallclockResult{Name: w.Name, Size: size}

	runCfg := func(cpus int) bench.RunConfig {
		return bench.RunConfig{
			CPUs:      cpus - 1, // the axis counts the non-speculative CPU
			Size:      size,
			Model:     w.DefaultModel,
			Timing:    mutls.Real,
			Buffering: h.cfg.Buffering,
			Chunks:    h.cfg.Chunks,
		}
	}

	// Sequential baseline: warmup, then best-of-Reps.
	var seqSum uint64
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := bench.MeasureSeq(w, runCfg(1)); err != nil {
			return res, err
		}
	}
	for i := 0; i < cfg.Reps; i++ {
		m, err := bench.MeasureSeq(w, runCfg(1))
		if err != nil {
			return res, err
		}
		seqSum = m.Checksum
		if res.SeqNS == 0 || m.Runtime < res.SeqNS {
			res.SeqNS = m.Runtime
		}
	}

	for _, cpus := range cfg.CPUAxis {
		for i := 0; i < cfg.Warmup; i++ {
			if _, err := bench.MeasureSpec(w, runCfg(cpus)); err != nil {
				return res, err
			}
		}
		pt := WallclockPoint{CPUs: cpus}
		for i := 0; i < cfg.Reps; i++ {
			m, err := bench.MeasureSpec(w, runCfg(cpus))
			if err != nil {
				return res, err
			}
			if m.Checksum != seqSum {
				return res, fmt.Errorf("checksum mismatch at %d CPUs (speculative %#x != sequential %#x)",
					cpus, m.Checksum, seqSum)
			}
			if pt.NS == 0 || m.Runtime < pt.NS {
				pt.NS = m.Runtime
				pt.Commits = m.Summary.Commits
				pt.Rollbacks = m.Summary.Rollbacks
			}
		}
		pt.Speedup = float64(res.SeqNS) / float64(pt.NS)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
