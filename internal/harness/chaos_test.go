package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestRunChaosQuick is the CI smoke for the fault-injection sweep: the
// quick kernel subset must survive every mix with checksum equivalence,
// typed containment and no goroutine leaks.
func TestRunChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	var out bytes.Buffer
	if err := RunChaos(ChaosConfig{Seed: 7, Quick: true}, &out); err != nil {
		t.Fatalf("chaos sweep failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "CHAOS SWEEP. seed=7") {
		t.Errorf("sweep header missing from output:\n%s", out.String())
	}
}

// TestChaosMixesAreWellFormed: every mix rule names a real site/kind pair
// with a sane probability, so a typo cannot silently neuter a mix.
func TestChaosMixesAreWellFormed(t *testing.T) {
	for _, mix := range chaosMixes {
		if mix.name == "" || len(mix.rules) == 0 {
			t.Fatalf("malformed mix %+v", mix)
		}
		for _, r := range mix.rules {
			if r.Kind == faultinject.KindNone {
				t.Errorf("mix %s: rule with KindNone", mix.name)
			}
			if r.Prob <= 0 || r.Prob > 0.5 {
				t.Errorf("mix %s: probability %v out of the sane band (0, 0.5]", mix.name, r.Prob)
			}
		}
	}
}
