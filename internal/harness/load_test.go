package harness

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/mutls"
	"repro/mutls/pool"
)

// TestRunLoad drives a real in-process speculation service end to end:
// every request verified, latency percentiles ordered, pool drained.
func TestRunLoad(t *testing.T) {
	s, err := serve.New(serve.Options{Pool: pool.Options{
		Runtimes:   2,
		HostBudget: 2,
		QueueLimit: 64,
		Runtime:    mutls.Options{CPUs: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	rep, err := RunLoad(context.Background(), ts.Client(), ts.URL, LoadConfig{
		Concurrency: 8,
		Requests:    40,
		Targets: []string{
			"/run?kernel=x3p1&n=2000",
			"/run?kernel=mandelbrot&n=16&m=100",
			"/run?kernel=matmult&n=16",
		},
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Unverified != 0 {
		t.Fatalf("load run failed: errors=%d unverified=%d samples=%v",
			rep.Errors, rep.Unverified, rep.ErrorSamples)
	}
	if got := rep.OK + rep.Overloaded; got != int64(rep.Requests) {
		t.Errorf("OK %d + Overloaded %d != Requests %d", rep.OK, rep.Overloaded, rep.Requests)
	}
	if rep.OK == 0 {
		t.Error("no request succeeded")
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("ThroughputRPS = %v", rep.ThroughputRPS)
	}
	if !(rep.LatencyP50NS <= rep.LatencyP90NS && rep.LatencyP90NS <= rep.LatencyP99NS &&
		rep.LatencyP99NS <= rep.LatencyMaxNS) {
		t.Errorf("latency percentiles unordered: p50=%d p90=%d p99=%d max=%d",
			rep.LatencyP50NS, rep.LatencyP90NS, rep.LatencyP99NS, rep.LatencyMaxNS)
	}
	if rep.LatencyMaxNS <= 0 {
		t.Error("no latencies recorded")
	}
	st := s.Pool().Stats()
	if st.Released != st.Acquired || st.ClaimedCPUs != 0 || st.Waiting != 0 {
		t.Errorf("pool not drained after load: %+v", st)
	}
}

// TestRunLoadShedding: a no-queue pool under more clients than runtimes
// sheds with 503s, which the driver classifies as backpressure, not
// errors.
func TestRunLoadShedding(t *testing.T) {
	s, err := serve.New(serve.Options{Pool: pool.Options{
		Runtimes:   1,
		HostBudget: 2,
		QueueLimit: pool.NoQueue,
		Runtime:    mutls.Options{CPUs: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	rep, err := RunLoad(context.Background(), ts.Client(), ts.URL, LoadConfig{
		Concurrency: 8,
		Requests:    40,
		Targets:     []string{"/run?kernel=x3p1&n=2000"},
		MaxRetries:  -1, // observe raw sheds, not the retried view
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Unverified != 0 {
		t.Fatalf("errors=%d unverified=%d samples=%v", rep.Errors, rep.Unverified, rep.ErrorSamples)
	}
	if rep.Overloaded == 0 {
		t.Error("no request was shed despite 8 clients on a 1-runtime no-queue pool")
	}
	if rep.Retries != 0 {
		t.Errorf("retries=%d with retrying disabled", rep.Retries)
	}
	if rep.OK == 0 {
		t.Error("every request was shed")
	}
}

// TestRunLoadRetry: with a retry budget, the driver re-issues shed
// requests after backoff; most sheds convert into eventual OKs and land
// in the retry counter instead of Overloaded.
func TestRunLoadRetry(t *testing.T) {
	s, err := serve.New(serve.Options{Pool: pool.Options{
		Runtimes:   1,
		HostBudget: 2,
		QueueLimit: pool.NoQueue,
		Runtime:    mutls.Options{CPUs: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	rep, err := RunLoad(context.Background(), ts.Client(), ts.URL, LoadConfig{
		Concurrency: 8,
		Requests:    40,
		Targets:     []string{"/run?kernel=x3p1&n=2000"},
		MaxRetries:  8,
		RetryBase:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Unverified != 0 {
		t.Fatalf("errors=%d unverified=%d samples=%v", rep.Errors, rep.Unverified, rep.ErrorSamples)
	}
	if rep.Retries == 0 {
		t.Error("no retries despite 8 clients contending for a 1-runtime no-queue pool")
	}
	if rep.OK == 0 {
		t.Error("every request was shed")
	}
}
