// Package harness regenerates every table and figure of the paper's
// evaluation section (§V): Table I (TLS system taxonomy), Table II
// (benchmark suite), Figure 3 (computation-intensive speedups), Figure 4
// (memory-intensive speedups), Figures 5-7 (critical path, speculative path
// and power efficiency), the parallel-coverage numbers of §V-B, Figures 8-9
// (critical and speculative path breakdowns), Figure 10 (forking model
// comparison) and Figure 11 (rollback sensitivity). Output is aligned text:
// the same rows/series the paper plots. Beyond the paper, FigGBuf runs the
// GlobalBuffer backend ablation over the same suite.
package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/vclock"
	"repro/mutls"
)

// DefaultCPUAxis subsamples the paper's 1..64 x-axis.
var DefaultCPUAxis = []int{1, 2, 4, 8, 16, 24, 32, 48, 64}

// Config drives a harness session, expressed in public mutls types.
type Config struct {
	CPUAxis []int
	Paper   bool // Table II sizes instead of the quick defaults
	Timing  mutls.TimingMode
	Seed    uint64
	// Buffering selects the GlobalBuffer backend for every run (the -gbuf
	// flag); the FigGBuf ablation sweeps all backends regardless.
	Buffering mutls.Buffering
	// Chunks selects the loop benchmarks' chunk-sizing policy for every
	// run (the -chunks flag); nil keeps the paper's static split. The
	// FigChunks ablation sweeps static vs adaptive regardless.
	Chunks mutls.Chunker
}

// AdaptiveChunker returns the feedback-driven chunk policy the harness
// uses for adaptive runs: default AIMD sizing with the buffer-pressure
// threshold at 3/4 of the suite's default openaddr map capacity (2^16
// words).
func AdaptiveChunker() mutls.Chunker {
	return mutls.AdaptivePolicy{PressureWords: 3 << 14}
}

// DefaultConfig returns the quick deterministic configuration.
func DefaultConfig() Config {
	return Config{CPUAxis: DefaultCPUAxis, Timing: mutls.Virtual}
}

// Harness caches measurements so the efficiency figures reuse the speedup
// runs.
type Harness struct {
	cfg  Config
	seq  map[string]bench.Measurement
	spec map[string]bench.Measurement
}

// New creates a harness.
func New(cfg Config) *Harness {
	if len(cfg.CPUAxis) == 0 {
		cfg.CPUAxis = DefaultCPUAxis
	}
	return &Harness{cfg: cfg, seq: map[string]bench.Measurement{}, spec: map[string]bench.Measurement{}}
}

func (h *Harness) size(w *bench.Workload) bench.Size {
	if h.cfg.Paper {
		return w.PaperSize
	}
	return w.CISize
}

func (h *Harness) runCfg(w *bench.Workload, axisCPUs int, model mutls.Model, prob float64, cost mutls.CostModel) bench.RunConfig {
	return bench.RunConfig{
		// The paper's x-axis counts the non-speculative thread's CPU.
		CPUs:         axisCPUs - 1,
		Size:         h.size(w),
		Model:        model,
		Timing:       h.cfg.Timing,
		Cost:         cost,
		RollbackProb: prob,
		Seed:         h.cfg.Seed,
		Buffering:    h.cfg.Buffering,
		Chunks:       h.cfg.Chunks,
	}
}

// Seq returns (cached) the sequential baseline of a workload under a cost
// model variant ("c" or "fortran").
func (h *Harness) Seq(w *bench.Workload, variant string) (bench.Measurement, error) {
	key := w.Name + "/" + variant
	if m, ok := h.seq[key]; ok {
		return m, nil
	}
	m, err := bench.MeasureSeq(w, h.runCfg(w, 1, w.DefaultModel, 0, costFor(variant)))
	if err == nil {
		h.seq[key] = m
	}
	return m, err
}

// Spec returns (cached) a speculative run.
func (h *Harness) Spec(w *bench.Workload, variant string, axisCPUs int, model mutls.Model, prob float64) (bench.Measurement, error) {
	key := fmt.Sprintf("%s/%s/%d/%v/%v", w.Name, variant, axisCPUs, model, prob)
	if m, ok := h.spec[key]; ok {
		return m, nil
	}
	m, err := bench.MeasureSpec(w, h.runCfg(w, axisCPUs, model, prob, costFor(variant)))
	if err == nil {
		h.spec[key] = m
	}
	return m, err
}

func costFor(variant string) mutls.CostModel {
	if variant == "fortran" {
		return mutls.FortranCostModel()
	}
	return mutls.DefaultCostModel()
}

// Speedup computes the absolute speedup Ts/TN of a cached pair.
func (h *Harness) Speedup(w *bench.Workload, variant string, axisCPUs int, model mutls.Model) (float64, error) {
	seq, err := h.Seq(w, variant)
	if err != nil {
		return 0, err
	}
	spec, err := h.Spec(w, variant, axisCPUs, model, 0)
	if err != nil {
		return 0, err
	}
	if spec.Checksum != seq.Checksum {
		return 0, fmt.Errorf("%s: checksum mismatch at %d CPUs", w.Name, axisCPUs)
	}
	return float64(seq.Runtime) / float64(spec.Runtime), nil
}

func newTab(out io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
}

// Table1 prints the paper's Table I: the TLS system taxonomy, with MUTLS in
// its place.
func Table1(out io.Writer) {
	tw := newTab(out)
	fmt.Fprintln(out, "TABLE I. COMPARISON OF TLS SYSTEMS")
	fmt.Fprintln(tw, "\tSystem\tLanguage\tForking Model\tSpeculative Region")
	rows := []struct{ kind, name, lang, model, region string }{
		{"Hardware", "Jrpm", "Java", "in-order", "loop iteration"},
		{"Hardware", "SPT", "C", "in-order", "loop iteration"},
		{"Hardware", "STAMPede", "C", "in-order", "loop iteration"},
		{"Hardware", "Mitosis", "C", "mixed (linear)", "arbitrary"},
		{"Hardware", "POSH", "C", "mixed (linear)", "nested structure"},
		{"Software", "SableSpMT", "Java", "out-of-order", "method call"},
		{"Software", "Safe futures", "Java", "mixed (linear)", "method call"},
		{"Software", "BOP", "C", "in-order", "arbitrary"},
		{"Software", "SpLSC/SpLIP", "C++", "in-order", "loop iteration"},
		{"Software", "MUTLS", "arbitrary", "mixed (tree)", "arbitrary"},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.kind, r.name, r.lang, r.model, r.region)
	}
	tw.Flush()
}

// Table2 prints the benchmark suite summary with the sizes in effect.
func (h *Harness) Table2(out io.Writer) {
	tw := newTab(out)
	fmt.Fprintln(out, "TABLE II. BENCHMARKS")
	fmt.Fprintln(tw, "Benchmark\tDescription\tAmount of Data\tPattern\tLanguage\tCharacteristics")
	for _, w := range bench.All {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s intensive\n",
			w.Name, w.Description, w.AmountOfData(h.size(w)), w.Pattern, w.Language, w.Class)
	}
	tw.Flush()
}

// speedupFigure prints one speedup-vs-CPUs figure.
func (h *Harness) speedupFigure(out io.Writer, title string, series []seriesDef) error {
	tw := newTab(out)
	fmt.Fprintln(out, title)
	fmt.Fprint(tw, "CPUs")
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.label)
	}
	fmt.Fprintln(tw)
	for _, cpus := range h.cfg.CPUAxis {
		fmt.Fprintf(tw, "%d", cpus)
		for _, s := range series {
			sp, err := h.Speedup(s.w, s.variant, cpus, s.w.DefaultModel)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%.2f", sp)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

type seriesDef struct {
	w       *bench.Workload
	variant string
	label   string
}

// Fig3 regenerates Figure 3: absolute speedup of the computation-intensive
// applications, C and Fortran variants.
func (h *Harness) Fig3(out io.Writer) error {
	var series []seriesDef
	for _, w := range bench.ComputationIntensive() {
		series = append(series,
			seriesDef{w, "c", w.Name + " c"},
			seriesDef{w, "fortran", w.Name + " fortran"})
	}
	return h.speedupFigure(out, "FIG. 3. Performance of Computation-Intensive Applications (absolute speedup)", series)
}

// Fig4 regenerates Figure 4: absolute speedup of the memory-intensive
// applications.
func (h *Harness) Fig4(out io.Writer) error {
	var series []seriesDef
	for _, w := range bench.MemoryIntensive() {
		series = append(series, seriesDef{w, "c", w.Name})
	}
	return h.speedupFigure(out, "FIG. 4. Performance of Memory-Intensive Applications (absolute speedup)", series)
}

// efficiencyFigure prints one efficiency-vs-CPUs figure over all
// benchmarks.
func (h *Harness) efficiencyFigure(out io.Writer, title string, metric func(*stats.Summary, vclock.Cost) float64) error {
	tw := newTab(out)
	fmt.Fprintln(out, title)
	fmt.Fprint(tw, "CPUs")
	for _, w := range bench.All {
		fmt.Fprintf(tw, "\t%s", w.Name)
	}
	fmt.Fprintln(tw)
	for _, cpus := range h.cfg.CPUAxis {
		if cpus < 2 {
			continue // no speculative threads, efficiency undefined
		}
		fmt.Fprintf(tw, "%d", cpus)
		for _, w := range bench.All {
			seq, err := h.Seq(w, "c")
			if err != nil {
				return err
			}
			m, err := h.Spec(w, "c", cpus, w.DefaultModel, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%.3f", metric(m.Summary, seq.Runtime))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig5 regenerates Figure 5: critical path execution efficiency.
func (h *Harness) Fig5(out io.Writer) error {
	return h.efficiencyFigure(out, "FIG. 5. Critical Path Execution Efficiency",
		func(s *stats.Summary, _ vclock.Cost) float64 { return s.CritEfficiency() })
}

// Fig6 regenerates Figure 6: speculative path execution efficiency.
func (h *Harness) Fig6(out io.Writer) error {
	return h.efficiencyFigure(out, "FIG. 6. Speculative Path Execution Efficiency",
		func(s *stats.Summary, _ vclock.Cost) float64 { return s.SpecEfficiency() })
}

// Fig7 regenerates Figure 7: power efficiency.
func (h *Harness) Fig7(out io.Writer) error {
	return h.efficiencyFigure(out, "FIG. 7. Power Efficiency (Ts / total thread runtime)",
		func(s *stats.Summary, ts vclock.Cost) float64 { return s.PowerEfficiency(ts) })
}

// Coverage prints the §V-B parallel execution coverage numbers at the
// largest axis point.
func (h *Harness) Coverage(out io.Writer) error {
	cpus := h.cfg.CPUAxis[len(h.cfg.CPUAxis)-1]
	tw := newTab(out)
	fmt.Fprintf(out, "PARALLEL EXECUTION COVERAGE (§V-B) at %d CPUs\n", cpus)
	fmt.Fprintln(tw, "Benchmark\tC = Σ runtime_sp / runtime_nonsp")
	for _, w := range bench.All {
		m, err := h.Spec(w, "c", cpus, w.DefaultModel, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.1f\n", w.Name, m.Summary.Coverage())
	}
	return tw.Flush()
}

// breakdownFigure prints one stacked-percentage breakdown.
func (h *Harness) breakdownFigure(out io.Writer, title string, workloads []*bench.Workload,
	phases []vclock.Phase, pick func(*stats.Summary) (vclock.Ledger, vclock.Cost)) error {
	for _, w := range workloads {
		tw := newTab(out)
		fmt.Fprintf(out, "%s — %s\n", title, w.Name)
		fmt.Fprint(tw, "CPUs")
		for _, p := range phases {
			fmt.Fprintf(tw, "\t%s", p)
		}
		fmt.Fprintln(tw)
		for _, cpus := range h.cfg.CPUAxis {
			if cpus < 2 {
				continue
			}
			m, err := h.Spec(w, "c", cpus, w.DefaultModel, 0)
			if err != nil {
				return err
			}
			ledger, runtime := pick(m.Summary)
			shares := stats.Breakdown(ledger, runtime, phases)
			fmt.Fprintf(tw, "%d", cpus)
			for _, p := range phases {
				fmt.Fprintf(tw, "\t%.1f%%", 100*shares[p])
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Fig8 regenerates Figure 8: critical path breakdown for fft and md.
func (h *Harness) Fig8(out io.Writer) error {
	return h.breakdownFigure(out, "FIG. 8. Critical Path Breakdown",
		[]*bench.Workload{bench.FFT, bench.MD}, stats.CritBreakdownPhases,
		func(s *stats.Summary) (vclock.Ledger, vclock.Cost) { return s.NonSpecLedger, s.NonSpecRuntime })
}

// Fig9 regenerates Figure 9: speculative path breakdown for fft and
// matmult.
func (h *Harness) Fig9(out io.Writer) error {
	return h.breakdownFigure(out, "FIG. 9. Speculative Path Breakdown",
		[]*bench.Workload{bench.FFT, bench.MatMult}, stats.SpecBreakdownPhases,
		func(s *stats.Summary) (vclock.Ledger, vclock.Cost) { return s.SpecLedger, s.SpecRuntime })
}

// Fig10 regenerates Figure 10: in-order and out-of-order speedups of the
// tree-form recursion benchmarks normalized to the mixed model.
func (h *Harness) Fig10(out io.Writer) error {
	workloads := []*bench.Workload{bench.FFT, bench.MatMult, bench.NQueen, bench.TSP}
	models := []mutls.Model{mutls.InOrder, mutls.OutOfOrder}
	tw := newTab(out)
	fmt.Fprintln(out, "FIG. 10. Comparison of Forking Models (speedup normalized to the mixed model)")
	fmt.Fprint(tw, "CPUs")
	for _, w := range workloads {
		for _, m := range models {
			fmt.Fprintf(tw, "\t%s %v", w.Name, m)
		}
	}
	fmt.Fprintln(tw)
	for _, cpus := range h.cfg.CPUAxis {
		fmt.Fprintf(tw, "%d", cpus)
		for _, w := range workloads {
			mixed, err := h.Speedup(w, "c", cpus, mutls.Mixed)
			if err != nil {
				return err
			}
			for _, m := range models {
				sp, err := h.Speedup(w, "c", cpus, m)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%.2f", sp/mixed)
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig11Probs are the paper's forced rollback probabilities.
var Fig11Probs = []float64{0.01, 0.05, 0.10, 0.20, 0.50, 1.00}

// FigGBuf is the GlobalBuffer backend ablation (beyond the paper): every
// registered backend runs the full benchmark suite at the largest axis
// point, and the table reports speedup, commits, rollbacks, conflict parks
// and the per-thread read/write-set high-water marks side by side. Every
// speculative result is checked against the sequential checksum, so the
// table doubles as a cross-backend equivalence run.
func (h *Harness) FigGBuf(out io.Writer) error {
	cpus := h.cfg.CPUAxis[len(h.cfg.CPUAxis)-1]
	backends := mutls.Backends()
	tw := newTab(out)
	fmt.Fprintf(out, "GBUF ABLATION. GlobalBuffer backends across the benchmark suite at %d CPUs\n", cpus)
	fmt.Fprintln(tw, "Benchmark\tBackend\tSpeedup\tCommits\tRollbacks\tParks\tRdPeak\tWrPeak")
	for _, w := range bench.All {
		seq, err := h.Seq(w, "c")
		if err != nil {
			return err
		}
		for _, backend := range backends {
			cfg := h.runCfg(w, cpus, w.DefaultModel, 0, costFor("c"))
			cfg.Buffering = overrideBackend(cfg.Buffering, backend)
			m, err := bench.MeasureSpec(w, cfg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", w.Name, backend, err)
			}
			if m.Checksum != seq.Checksum {
				return fmt.Errorf("%s/%s: checksum mismatch (speculative %#x != sequential %#x)",
					w.Name, backend, m.Checksum, seq.Checksum)
			}
			s := m.Summary
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%d\t%d\t%d\t%d\t%d\n",
				w.Name, backend, float64(seq.Runtime)/float64(m.Runtime),
				s.Commits, s.Rollbacks, s.GBuf.Conflicts, s.ReadSetPeak, s.WriteSetPeak)
		}
	}
	return tw.Flush()
}

// overrideBackend replaces only the backend name of a Buffering config,
// keeping the operator's backend-independent sizing fields (LogBuckets,
// PageWords, …) intact — the ablation must not silently reset the sizing
// the -gbuf-independent flags configured.
func overrideBackend(buf mutls.Buffering, backend string) mutls.Buffering {
	buf.Backend = backend
	return buf
}

// FigChunksProb is the forced-rollback probability of the rollback-heavy
// rows of the chunk-sizing ablation.
const FigChunksProb = 0.2

// FigChunks is the chunk-sizing ablation (beyond the paper): every loop
// benchmark runs with the paper's static split and with the
// feedback-driven AdaptivePolicy, both rollback-free and under forced
// rollbacks (the rollback-heavy regime adaptive sizing is for), at the
// largest axis point. Each row reports speedup, commits, rollbacks and
// the per-thread set high-water marks, and every speculative result is
// checked against the sequential checksum — chunk policy may change the
// schedule, never the result.
func (h *Harness) FigChunks(out io.Writer) error {
	cpus := h.cfg.CPUAxis[len(h.cfg.CPUAxis)-1]
	workloads := []*bench.Workload{bench.X3P1, bench.Mandelbrot, bench.MD, bench.BH}
	chunkers := []struct {
		name string
		ck   mutls.Chunker
	}{
		{"static", nil},
		{"adaptive", AdaptiveChunker()},
	}
	tw := newTab(out)
	fmt.Fprintf(out, "CHUNK ABLATION. Static vs adaptive chunk sizing on the loop benchmarks at %d CPUs\n", cpus)
	fmt.Fprintln(tw, "Benchmark\tRollback%\tChunks\tSpeedup\tCommits\tRollbacks\tRdPeak\tWrPeak")
	for _, w := range workloads {
		seq, err := h.Seq(w, "c")
		if err != nil {
			return err
		}
		for _, prob := range []float64{0, FigChunksProb} {
			for _, c := range chunkers {
				cfg := h.runCfg(w, cpus, w.DefaultModel, prob, costFor("c"))
				cfg.Chunks = c.ck
				m, err := bench.MeasureSpec(w, cfg)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", w.Name, c.name, err)
				}
				if m.Checksum != seq.Checksum {
					return fmt.Errorf("%s/%s: checksum mismatch (speculative %#x != sequential %#x)",
						w.Name, c.name, m.Checksum, seq.Checksum)
				}
				s := m.Summary
				fmt.Fprintf(tw, "%s\t%.0f%%\t%s\t%.2f\t%d\t%d\t%d\t%d\n",
					w.Name, prob*100, c.name, float64(seq.Runtime)/float64(m.Runtime),
					s.Commits, s.Rollbacks, s.ReadSetPeak, s.WriteSetPeak)
			}
		}
	}
	return tw.Flush()
}

// FigPipeline is the workload-shapes ablation (beyond the paper): the new
// pipeline (stencil) and float-reduction (floatsum) kernels run under all
// four forking models and every registered GlobalBuffer backend at the
// largest axis point, each speculative result checksum-verified against
// the sequential version — the acceptance matrix of the Pipeline and
// ReduceFloat64 drivers.
func (h *Harness) FigPipeline(out io.Writer) error {
	cpus := h.cfg.CPUAxis[len(h.cfg.CPUAxis)-1]
	models := []mutls.Model{mutls.InOrder, mutls.OutOfOrder, mutls.Mixed, mutls.MixedLinear}
	tw := newTab(out)
	fmt.Fprintf(out, "PIPELINE ABLATION. Pipeline and float-reduction kernels across models and backends at %d CPUs\n", cpus)
	fmt.Fprintln(out, "(Pipeline/Reduce continuations cannot run in-order; the inorder rows exercise the requested name's remap to outoforder.)")
	fmt.Fprintln(tw, "Benchmark\tModel\tBackend\tSpeedup\tCommits\tRollbacks\tRdPeak\tWrPeak")
	for _, w := range bench.Extended {
		seq, err := h.Seq(w, "c")
		if err != nil {
			return err
		}
		for _, model := range models {
			for _, backend := range mutls.Backends() {
				cfg := h.runCfg(w, cpus, model, 0, costFor("c"))
				cfg.Buffering = overrideBackend(cfg.Buffering, backend)
				m, err := bench.MeasureSpec(w, cfg)
				if err != nil {
					return fmt.Errorf("%s/%v/%s: %w", w.Name, model, backend, err)
				}
				if m.Checksum != seq.Checksum {
					return fmt.Errorf("%s/%v/%s: checksum mismatch (speculative %#x != sequential %#x)",
						w.Name, model, backend, m.Checksum, seq.Checksum)
				}
				s := m.Summary
				fmt.Fprintf(tw, "%s\t%v\t%s\t%.2f\t%d\t%d\t%d\t%d\n",
					w.Name, model, backend, float64(seq.Runtime)/float64(m.Runtime),
					s.Commits, s.Rollbacks, s.ReadSetPeak, s.WriteSetPeak)
			}
		}
	}
	return tw.Flush()
}

// Fig11 regenerates Figure 11: rollback sensitivity — the relative slowdown
// with respect to the non-rollback scenario under forced rollbacks.
func (h *Harness) Fig11(out io.Writer) error {
	cpus := h.cfg.CPUAxis[len(h.cfg.CPUAxis)-1]
	workloads := []*bench.Workload{
		bench.Mandelbrot, bench.MD, bench.FFT, bench.MatMult, bench.NQueen, bench.TSP, bench.BH,
	}
	tw := newTab(out)
	fmt.Fprintf(out, "FIG. 11. Rollback Sensitivity at %d CPUs (runtime without rollbacks / runtime with)\n", cpus)
	fmt.Fprint(tw, "Benchmark")
	for _, p := range Fig11Probs {
		fmt.Fprintf(tw, "\t%.0f%%", p*100)
	}
	fmt.Fprintln(tw)
	for _, w := range workloads {
		base, err := h.Spec(w, "c", cpus, w.DefaultModel, 0)
		if err != nil {
			return err
		}
		fmt.Fprint(tw, w.Name)
		for _, p := range Fig11Probs {
			m, err := h.Spec(w, "c", cpus, w.DefaultModel, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%.2f", float64(base.Runtime)/float64(m.Runtime))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// All regenerates everything in paper order.
func (h *Harness) All(out io.Writer) error {
	Table1(out)
	fmt.Fprintln(out)
	h.Table2(out)
	fmt.Fprintln(out)
	steps := []func(io.Writer) error{
		h.Fig3, h.Fig4, h.Fig5, h.Fig6, h.Fig7, h.Coverage, h.Fig8, h.Fig9, h.Fig10, h.Fig11,
	}
	for _, step := range steps {
		if err := step(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
