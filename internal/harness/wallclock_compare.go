package harness

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadWallclockBaseline decodes a committed wall-clock report (the
// BENCH_wallclock.json format emitted by Wallclock).
func LoadWallclockBaseline(r io.Reader) (*WallclockReport, error) {
	var report WallclockReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return nil, fmt.Errorf("wallclock baseline: %w", err)
	}
	if report.Suite != "mutls-wallclock" {
		return nil, fmt.Errorf("wallclock baseline: suite %q is not a wall-clock report", report.Suite)
	}
	return &report, nil
}

// hostShapeMismatch names the first field on which two hosts differ in a
// way that makes their wall-clock numbers incomparable, or "" when the
// shapes match.
func hostShapeMismatch(base, cur WallclockHost) string {
	switch {
	case base.OS != cur.OS:
		return fmt.Sprintf("os %q vs %q", base.OS, cur.OS)
	case base.Arch != cur.Arch:
		return fmt.Sprintf("arch %q vs %q", base.Arch, cur.Arch)
	case base.NumCPU != cur.NumCPU:
		return fmt.Sprintf("num_cpu %d vs %d", base.NumCPU, cur.NumCPU)
	case base.GOMAXPROCS != cur.GOMAXPROCS:
		return fmt.Sprintf("gomaxprocs %d vs %d", base.GOMAXPROCS, cur.GOMAXPROCS)
	}
	return ""
}

// CompareWallclock writes a per-point speedup diff of cur against base. It
// refuses to diff when the baseline was measured on a different host shape
// (OS, architecture, core count or GOMAXPROCS): a speedup measured on an
// 8-core machine says nothing about a 1-core container, and silently
// comparing the two is how provenance-free "regressions" get chased. The
// baseline's recorded provenance is echoed so the reader knows what the
// numbers are good for. Points present on only one side are reported, not
// compared; Quick and full runs never compare (different problem sizes).
func CompareWallclock(out io.Writer, base, cur *WallclockReport) error {
	if mismatch := hostShapeMismatch(base.Host, cur.Host); mismatch != "" {
		return fmt.Errorf(
			"wallclock: baseline host does not match this host (%s); re-measure the baseline on this machine instead of diffing across hosts (baseline provenance: %s)",
			mismatch, base.Provenance)
	}
	if base.Quick != cur.Quick {
		return fmt.Errorf("wallclock: baseline quick=%v but current run quick=%v — the problem sizes differ", base.Quick, cur.Quick)
	}
	fmt.Fprintf(out, "wallclock diff vs baseline (%s)\n", base.Provenance)
	fmt.Fprintf(out, "%-12s %5s %10s %10s %8s\n", "workload", "cpus", "base", "now", "delta")
	for _, cw := range cur.Workloads {
		bw, ok := findWallclockWorkload(base, cw.Name)
		if !ok {
			fmt.Fprintf(out, "%-12s        (not in baseline)\n", cw.Name)
			continue
		}
		if bw.Size != cw.Size {
			fmt.Fprintf(out, "%-12s        (size changed: %+v vs %+v — not compared)\n", cw.Name, bw.Size, cw.Size)
			continue
		}
		for _, cp := range cw.Points {
			bp, ok := findWallclockPoint(bw, cp.CPUs)
			if !ok {
				fmt.Fprintf(out, "%-12s %5d        (not in baseline)\n", cw.Name, cp.CPUs)
				continue
			}
			delta := (cp.Speedup - bp.Speedup) / bp.Speedup * 100
			fmt.Fprintf(out, "%-12s %5d %9.3fx %9.3fx %+7.1f%%\n",
				cw.Name, cp.CPUs, bp.Speedup, cp.Speedup, delta)
		}
	}
	return nil
}

func findWallclockWorkload(r *WallclockReport, name string) (WallclockResult, bool) {
	for _, w := range r.Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return WallclockResult{}, false
}

func findWallclockPoint(w WallclockResult, cpus int) (WallclockPoint, bool) {
	for _, p := range w.Points {
		if p.CPUs == cpus {
			return p, true
		}
	}
	return WallclockPoint{}, false
}
