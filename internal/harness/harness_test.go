package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/mutls"
)

func quickHarness() *Harness {
	cfg := DefaultConfig()
	cfg.CPUAxis = []int{1, 2, 4, 8}
	return New(cfg)
}

func TestTable1ContainsMUTLSRow(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, frag := range []string{"MUTLS", "mixed (tree)", "arbitrary", "Mitosis", "SableSpMT"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table I missing %q", frag)
		}
	}
}

func TestTable2ListsAllBenchmarks(t *testing.T) {
	var buf bytes.Buffer
	quickHarness().Table2(&buf)
	out := buf.String()
	for _, w := range bench.All {
		if !strings.Contains(out, w.Name) {
			t.Errorf("Table II missing %s", w.Name)
		}
	}
	if !strings.Contains(out, "computation intensive") || !strings.Contains(out, "memory intensive") {
		t.Error("Table II missing characteristics column")
	}
}

func TestFig3HasCAndFortranSeries(t *testing.T) {
	h := quickHarness()
	var buf bytes.Buffer
	if err := h.Fig3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"3x+1 c", "3x+1 fortran", "mandelbrot c", "md fortran"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig3 missing series %q", frag)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Error("Fig3 missing axis rows")
	}
}

func TestFig4CoversMemoryIntensive(t *testing.T) {
	h := quickHarness()
	var buf bytes.Buffer
	if err := h.Fig4(&buf); err != nil {
		t.Fatal(err)
	}
	for _, w := range bench.MemoryIntensive() {
		if !strings.Contains(buf.String(), w.Name) {
			t.Errorf("Fig4 missing %s", w.Name)
		}
	}
}

func TestEfficiencyFiguresRun(t *testing.T) {
	h := quickHarness()
	for name, fig := range map[string]func(*Harness) error{
		"fig5": func(h *Harness) error { var b bytes.Buffer; return h.Fig5(&b) },
		"fig6": func(h *Harness) error { var b bytes.Buffer; return h.Fig6(&b) },
		"fig7": func(h *Harness) error { var b bytes.Buffer; return h.Fig7(&b) },
	} {
		if err := fig(h); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestCoverageReportsAllBenchmarks(t *testing.T) {
	h := quickHarness()
	var buf bytes.Buffer
	if err := h.Coverage(&buf); err != nil {
		t.Fatal(err)
	}
	for _, w := range bench.All {
		if !strings.Contains(buf.String(), w.Name) {
			t.Errorf("coverage missing %s", w.Name)
		}
	}
}

func TestBreakdownFiguresHavePaperCategories(t *testing.T) {
	h := quickHarness()
	var b8 bytes.Buffer
	if err := h.Fig8(&b8); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"work", "join", "idle", "fork", "find CPU", "fft", "md"} {
		if !strings.Contains(b8.String(), frag) {
			t.Errorf("Fig8 missing %q", frag)
		}
	}
	var b9 bytes.Buffer
	if err := h.Fig9(&b9); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"wasted work", "finalize", "commit", "validation", "overflow", "matmult"} {
		if !strings.Contains(b9.String(), frag) {
			t.Errorf("Fig9 missing %q", frag)
		}
	}
}

func TestFig10NormalizedToMixed(t *testing.T) {
	h := quickHarness()
	var buf bytes.Buffer
	if err := h.Fig10(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"fft inorder", "fft outoforder", "nqueen inorder", "tsp outoforder"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("Fig10 missing %q", frag)
		}
	}
}

func TestFig11HasPaperProbabilities(t *testing.T) {
	h := quickHarness()
	var buf bytes.Buffer
	if err := h.Fig11(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"1%", "5%", "10%", "20%", "50%", "100%", "mandelbrot", "bh"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("Fig11 missing %q", frag)
		}
	}
}

func TestSpeedupChecksumGuard(t *testing.T) {
	// Speedup verifies checksums internally; a healthy run returns > 0.
	h := quickHarness()
	sp, err := h.Speedup(bench.X3P1, "c", 4, core.InOrder)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 {
		t.Fatalf("speedup %v", sp)
	}
}

func TestMeasurementCaching(t *testing.T) {
	h := quickHarness()
	if _, err := h.Spec(bench.X3P1, "c", 4, core.InOrder, 0); err != nil {
		t.Fatal(err)
	}
	n := len(h.spec)
	if _, err := h.Spec(bench.X3P1, "c", 4, core.InOrder, 0); err != nil {
		t.Fatal(err)
	}
	if len(h.spec) != n {
		t.Fatal("cache miss on repeated measurement")
	}
}

func TestFortranVariantSlowerThanC(t *testing.T) {
	h := quickHarness()
	c, err := h.Speedup(bench.X3P1, "c", 8, core.InOrder)
	if err != nil {
		t.Fatal(err)
	}
	f, err := h.Speedup(bench.X3P1, "fortran", 8, core.InOrder)
	if err != nil {
		t.Fatal(err)
	}
	if f >= c {
		t.Fatalf("Fortran variant (%v) must trail C (%v), as in Fig. 3", f, c)
	}
}

// TestOverrideBackendKeepsSizing: the gbuf ablation must sweep backends
// without discarding the operator's backend-independent sizing fields.
func TestOverrideBackendKeepsSizing(t *testing.T) {
	buf := mutls.Buffering{LogWords: 10, OverflowCap: 32, LogBuckets: 9, PageWords: 128}
	got := overrideBackend(buf, "chain")
	want := buf
	want.Backend = "chain"
	if got != want {
		t.Fatalf("overrideBackend reset sizing: %+v, want %+v", got, want)
	}
}

// TestFigChunksRunsAndVerifies: the chunk-sizing ablation produces static
// and adaptive rows for every loop benchmark (its checksum guard runs
// internally) across the rollback-free and rollback-heavy regimes.
func TestFigChunksRunsAndVerifies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUAxis = []int{4}
	var buf bytes.Buffer
	if err := New(cfg).FigChunks(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"static", "adaptive", "3x+1", "mandelbrot", "md", "bh", "0%", "20%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FigChunks missing %q", frag)
		}
	}
	if rows := strings.Count(out, "\n"); rows < 2+4*4 {
		t.Fatalf("FigChunks printed %d lines, want at least %d", rows, 2+4*4)
	}
}

// TestFigPipelineRunsAndVerifies: the workload-shapes ablation produces a
// row per (kernel, model, backend) cell — its internal checksum guard is
// the all-models x all-backends acceptance matrix of Pipeline and
// ReduceFloat64.
func TestFigPipelineRunsAndVerifies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUAxis = []int{4}
	var buf bytes.Buffer
	if err := New(cfg).FigPipeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"stencil", "floatsum", "inorder", "outoforder", "mixedlinear", "openaddr", "chain", "bitmap"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FigPipeline missing %q", frag)
		}
	}
	if rows := strings.Count(out, "\n"); rows < 2+2*4*3 {
		t.Fatalf("FigPipeline printed %d lines, want at least %d", rows, 2+2*4*3)
	}
}

func TestAllRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	cfg := DefaultConfig()
	cfg.CPUAxis = []int{1, 4, 8}
	var buf bytes.Buffer
	if err := New(cfg).All(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIG. 11") {
		t.Fatal("All() output incomplete")
	}
}
