// Load driver for the speculation service: a wrk-style closed-loop
// generator that hammers a serve.Server over HTTP with a fixed number of
// concurrent clients, verifies every response, and reports throughput and
// latency percentiles as a JSON document — the serving-side counterpart
// of the wall-clock suite.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Concurrency is the number of closed-loop clients (each issues its
	// next request as soon as the previous response arrives). Default 8.
	Concurrency int `json:"concurrency"`
	// Requests is the total request count across all clients. Default
	// 100×Concurrency.
	Requests int `json:"requests"`
	// Targets are the request paths (with query), rotated round-robin
	// across requests. Default {"/run"}.
	Targets []string `json:"targets"`
	// Timeout bounds each request. Default 30s.
	Timeout time.Duration `json:"-"`
	// MaxRetries is the per-request retry budget for transient 503 sheds:
	// each shed response is retried after a capped exponential backoff
	// with jitter, honoring the server's Retry-After when present. A shed
	// that survives the budget still counts as Overloaded (backpressure,
	// not failure). Default 3; negative disables retrying.
	MaxRetries int `json:"max_retries"`
	// RetryBase is the first backoff interval; it doubles per attempt up
	// to 32x. Default 25ms.
	RetryBase time.Duration `json:"-"`
}

func (c LoadConfig) defaults() LoadConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Requests <= 0 {
		c.Requests = 100 * c.Concurrency
	}
	if len(c.Targets) == 0 {
		c.Targets = []string{"/run"}
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	return c
}

// LoadReport is the load run's JSON document.
type LoadReport struct {
	Suite       string   `json:"suite"`
	Concurrency int      `json:"concurrency"`
	Requests    int      `json:"requests"`
	Targets     []string `json:"targets"`

	// OK counts verified 200 responses; Degraded those among them served
	// sequentially under budget exhaustion; Overloaded counts 503 sheds
	// (backpressure working as designed, not a failure); Errors counts
	// transport failures, unexpected statuses and malformed bodies; and
	// Unverified counts 200 responses whose body did not claim a verified
	// checksum — the acceptance criterion is Errors == Unverified == 0.
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	Overloaded int64 `json:"overloaded"`
	Errors     int64 `json:"errors"`
	Unverified int64 `json:"unverified"`
	// Retries counts 503 sheds that were retried (and so don't appear in
	// Overloaded unless every attempt shed).
	Retries int64 `json:"retries"`

	// WallNS is the whole run's wall time; ThroughputRPS counts completed
	// (OK + Overloaded) responses per second over it.
	WallNS        int64   `json:"wall_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Latency percentiles over OK responses only, nanoseconds.
	LatencyP50NS int64 `json:"latency_p50_ns"`
	LatencyP90NS int64 `json:"latency_p90_ns"`
	LatencyP99NS int64 `json:"latency_p99_ns"`
	LatencyMaxNS int64 `json:"latency_max_ns"`

	Host WallclockHost `json:"host"`

	// ErrorSamples holds up to 5 distinct error strings for diagnosis.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// loadBody is the subset of serve.RunResponse the driver verifies.
// Declared locally so the harness depends only on the wire format.
type loadBody struct {
	Verified bool `json:"verified"`
	Degraded bool `json:"degraded"`
}

// RunLoad drives baseURL with cfg and aggregates the report. client may
// be nil for http.DefaultClient. The context cancels the whole run.
func RunLoad(ctx context.Context, client *http.Client, baseURL string, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.defaults()
	if client == nil {
		client = http.DefaultClient
	}
	rep := &LoadReport{
		Suite:       "mutls-load",
		Concurrency: cfg.Concurrency,
		Requests:    cfg.Requests,
		Targets:     cfg.Targets,
		Host: WallclockHost{
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
	}

	// Workers count into local atomics; the totals land in the report's
	// plain fields only after wg.Wait, so every LoadReport access after
	// that is single-writer (no mixed atomic/plain traffic on rep).
	var next, okN, degradedN, overloadedN, unverifiedN, errorsN, retriesN atomic.Int64
	var errMu sync.Mutex
	errSeen := make(map[string]bool)
	sample := func(err string) {
		errMu.Lock()
		if !errSeen[err] && len(rep.ErrorSamples) < 5 {
			errSeen[err] = true
			rep.ErrorSamples = append(rep.ErrorSamples, err)
		}
		errMu.Unlock()
	}

	latencies := make([][]int64, cfg.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests || ctx.Err() != nil {
					return
				}
				target := cfg.Targets[i%len(cfg.Targets)]
				lat, outcome, err := loadRetried(ctx, client, baseURL+target, cfg, &retriesN)
				switch outcome {
				case loadOK:
					okN.Add(1)
					latencies[w] = append(latencies[w], lat)
				case loadDegraded:
					okN.Add(1)
					degradedN.Add(1)
					latencies[w] = append(latencies[w], lat)
				case loadOverloaded:
					overloadedN.Add(1)
				case loadUnverified:
					unverifiedN.Add(1)
				case loadError:
					errorsN.Add(1)
					sample(err.Error())
				}
			}
		}(w)
	}
	wg.Wait()
	rep.OK = okN.Load()
	rep.Degraded = degradedN.Load()
	rep.Overloaded = overloadedN.Load()
	rep.Unverified = unverifiedN.Load()
	rep.Errors = errorsN.Load()
	rep.Retries = retriesN.Load()
	rep.WallNS = time.Since(start).Nanoseconds()

	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		pct := func(p float64) int64 {
			i := int(p * float64(n-1))
			return all[i]
		}
		rep.LatencyP50NS = pct(0.50)
		rep.LatencyP90NS = pct(0.90)
		rep.LatencyP99NS = pct(0.99)
		rep.LatencyMaxNS = all[n-1]
	}
	if rep.WallNS > 0 {
		rep.ThroughputRPS = float64(rep.OK+rep.Overloaded) / (float64(rep.WallNS) / 1e9)
	}
	return rep, ctx.Err()
}

type loadOutcome int

const (
	loadOK loadOutcome = iota
	loadDegraded
	loadOverloaded
	loadUnverified
	loadError
)

// loadRetried issues one request, retrying transient 503 sheds up to
// cfg.MaxRetries times with capped exponential backoff plus jitter. The
// server's Retry-After (when longer) replaces the computed backoff; each
// retry is counted into retries. A shed that exhausts the budget is
// returned as loadOverloaded — admission control is backpressure, not an
// error, so the caller never fails the run over it.
func loadRetried(ctx context.Context, client *http.Client, url string, cfg LoadConfig, retries *atomic.Int64) (int64, loadOutcome, error) {
	backoff := cfg.RetryBase
	for attempt := 0; ; attempt++ {
		lat, outcome, retryAfter, err := loadOne(ctx, client, url, cfg.Timeout)
		if outcome != loadOverloaded || attempt >= cfg.MaxRetries || ctx.Err() != nil {
			return lat, outcome, err
		}
		retries.Add(1)
		sleep := backoff
		if retryAfter > sleep {
			sleep = retryAfter
		}
		// Decorrelate the herd: sleep a uniform draw from [sleep/2, sleep].
		sleep = sleep/2 + time.Duration(rand.Int63n(int64(sleep/2)+1))
		select {
		case <-ctx.Done():
			return lat, outcome, err
		case <-time.After(sleep):
		}
		if backoff < 32*cfg.RetryBase {
			backoff *= 2
		}
	}
}

// loadOne issues one request and classifies the response. On a 503 shed it
// also returns the server's Retry-After hint (zero when absent).
func loadOne(ctx context.Context, client *http.Client, url string, timeout time.Duration) (latNS int64, outcome loadOutcome, retryAfter time.Duration, err error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, loadError, 0, err
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, loadError, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	lat := time.Since(t0).Nanoseconds()
	if err != nil {
		return 0, loadError, 0, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var b loadBody
		if err := json.Unmarshal(body, &b); err != nil {
			return 0, loadError, 0, fmt.Errorf("malformed body: %w", err)
		}
		if !b.Verified {
			return 0, loadUnverified, 0, nil
		}
		if b.Degraded {
			return lat, loadDegraded, 0, nil
		}
		return lat, loadOK, 0, nil
	case http.StatusServiceUnavailable:
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, perr := strconv.Atoi(s); perr == nil && n > 0 {
				retryAfter = time.Duration(n) * time.Second
			}
		}
		return 0, loadOverloaded, retryAfter, nil
	default:
		return 0, loadError, 0, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, truncate(body, 200))
	}
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// WriteLoad encodes a report as the suite's JSON document.
func WriteLoad(out io.Writer, rep *LoadReport) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
