package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is the suppression comment prefix. The full form is
//
//	//lint:allow CODE1[,CODE2...] reason
//
// and it silences matching diagnostics reported on its own line or on the
// line directly below it (so the directive can sit on the flagged line or
// immediately above it).
const allowDirective = "lint:allow"

// Suppressions indexes the //lint:allow directives of a set of files:
// (filename, line) pairs mapped to the codes allowed there.
type Suppressions struct {
	byLine map[suppressKey]map[string]bool
}

type suppressKey struct {
	file string
	line int
}

// CollectSuppressions scans the files' comments for //lint:allow
// directives. Directives without a reason after the code list are ignored
// — a suppression must say why the access is safe.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[suppressKey]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				codesPart, reason, _ := strings.Cut(rest, " ")
				if codesPart == "" || strings.TrimSpace(reason) == "" {
					continue // no reason given: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				key := suppressKey{file: pos.Filename, line: pos.Line}
				if s.byLine[key] == nil {
					s.byLine[key] = make(map[string]bool)
				}
				for _, code := range strings.Split(codesPart, ",") {
					s.byLine[key][strings.TrimSpace(code)] = true
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic with the given code at pos is
// silenced by a directive on its line or the line above.
func (s *Suppressions) Suppressed(fset *token.FileSet, pos token.Pos, code string) bool {
	if s == nil {
		return false
	}
	p := fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if codes := s.byLine[suppressKey{file: p.Filename, line: line}]; codes[code] {
			return true
		}
	}
	return false
}
