// Package analysistest is a golden-file harness for the mutls-vet
// analyzers, shaped after golang.org/x/tools/go/analysis/analysistest:
// a testdata package annotates the lines it expects diagnostics on with
//
//	code() // want "POLL001"
//	code() // want "POLL001: no reachable poll" "SPEC001"
//
// Each quoted string is a regular expression matched against the
// diagnostic rendered as "CODE: message". Every diagnostic must match a
// want on its line and every want must be matched — so the suite fails
// both on false positives and (if an analyzer is disabled or broken) on
// missed findings. Suppressed diagnostics (//lint:allow with a reason)
// are filtered before matching, which lets testdata assert suppression
// behavior by carrying a directive and no want.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
)

// ModuleRoot locates the repository root (four levels above this file).
func ModuleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// TestData returns the analyzer's testdata package directory:
// <caller dir>/testdata/src/<pkg>.
func TestData(t *testing.T, pkg string) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "testdata", "src", pkg)
}

// Run loads the testdata package in dir, applies the analyzer, and
// matches diagnostics against the package's want annotations.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	l, err := load.New(ModuleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("testdata must type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	diags, err := driver.Run([]*load.Package{pkg}, []*analysis.Analyzer{a}, false)
	if err != nil {
		t.Fatal(err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		rendered := d.Code + ": " + d.Message
		if !wants.match(p, rendered) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, rendered)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matching %q (analyzer disabled or check regressed?)", filepath.Base(w.file), w.line, w.re.String())
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ all []*want }

var wantRE = regexp.MustCompile(`want\s+(.*)$`)

// collectWants parses `// want "re" ["re"...]` comments.
func collectWants(pkg *load.Package) (*wantSet, error) {
	ws := &wantSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantRE.FindStringSubmatch(text)
				if m == nil || !strings.HasPrefix(text, "want") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					ws.all = append(ws.all, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws, nil
}

// splitQuoted extracts the double-quoted segments of s.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}

func (ws *wantSet) match(p token.Position, rendered string) bool {
	for _, w := range ws.all {
		if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(rendered) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.all {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}
