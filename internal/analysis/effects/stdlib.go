// Stdlib effect table: the standard library is loaded from export data
// (no bodies), so its effect-relevant surface is curated here. The table
// is deliberately coarse — whole packages where every entry point is
// I/O- or sync-shaped, name patterns where a package mixes pure and
// effectful API — and anything unmatched is assumed pure, which is the
// index's documented trust boundary.
package effects

import (
	"go/types"
	"strings"
)

// ioPackages: every function/method reaching these packages performs
// irreversible I/O or a syscall.
var ioPackages = map[string]bool{
	"syscall":       true,
	"os/exec":       true,
	"os/signal":     true,
	"net":           true,
	"net/http":      true,
	"net/url":       false, // parsing only: pure
	"io":            true,
	"io/fs":         true,
	"io/ioutil":     true,
	"bufio":         true,
	"log":           true,
	"log/slog":      true,
	"database/sql":  true,
	"compress/gzip": true,
	"archive/tar":   true,
	"archive/zip":   true,
}

// osPure: read-only entry points of package os that are safe to
// re-execute (environment and identity reads).
var osPure = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "Getpid": true, "Getppid": true, "Getuid": true,
	"Geteuid": true, "Getgid": true, "Getegid": true, "Getgroups": true,
	"Getpagesize": true, "Hostname": true, "TempDir": true,
	"UserHomeDir": true, "UserCacheDir": true, "UserConfigDir": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true,
	"IsTimeout": true, "IsPathSeparator": true,
}

// timeNonIdempotent: results differ across re-executions.
var timeNonIdempotent = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// stdlibSummary classifies a function without source.
func stdlibSummary(fn *types.Func) Summary {
	pkg := fn.Pkg()
	if pkg == nil {
		return Summary{}
	}
	path, name := pkg.Path(), fn.Name()
	mk := func(e Effect, via string) Summary {
		return Summary{Effects: e, Via: map[Effect]string{e: via}}
	}
	q := pkg.Name() + "." + name

	switch {
	case ioPackages[path]:
		return mk(DoesIO, q)
	case path == "os":
		if osPure[name] {
			return Summary{}
		}
		return mk(DoesIO, q)
	case path == "fmt":
		switch {
		case strings.HasPrefix(name, "Print"),
			strings.HasPrefix(name, "Fprint"),
			strings.HasPrefix(name, "Scan"),
			strings.HasPrefix(name, "Fscan"):
			return mk(DoesIO, q)
		}
		return Summary{}
	case path == "sync":
		// Mutex/RWMutex/WaitGroup/Cond/Once/Map traffic: a speculative
		// thread that blocks can deadlock its own squash, and acquired
		// locks are not released on rollback.
		return mk(Blocks, q)
	case path == "sync/atomic":
		return atomicSummary(fn, name)
	case path == "time":
		if name == "Sleep" {
			return mk(Blocks, q)
		}
		if timeNonIdempotent[name] {
			return mk(NonIdempotent, q)
		}
		return Summary{}
	case path == "math/rand", path == "math/rand/v2":
		return mk(NonIdempotent, q)
	case path == "crypto/rand":
		s := mk(NonIdempotent, q)
		if name == "Read" {
			s.ParamWrites = 1 // fills the caller's buffer
		}
		return s
	case path == "runtime":
		switch name {
		case "Gosched", "GC", "Goexit":
			return mk(Blocks, q)
		}
		return Summary{}
	}
	return Summary{}
}

// atomicSummary: sync/atomic loads are pure; mutators write through
// their pointer argument (package functions) or receiver (the atomic
// wrapper types' methods).
func atomicSummary(fn *types.Func, name string) Summary {
	mutator := strings.HasPrefix(name, "Add") ||
		strings.HasPrefix(name, "Store") ||
		strings.HasPrefix(name, "Swap") ||
		strings.HasPrefix(name, "CompareAndSwap") ||
		strings.HasPrefix(name, "Or") ||
		strings.HasPrefix(name, "And")
	if !mutator {
		return Summary{}
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		return Summary{RecvWrite: true}
	}
	return Summary{ParamWrites: 1}
}
