// Package effects computes interprocedural effect summaries over the
// module call graph: for every function with source, a bottom-up
// bitset of the irreversible or ordering-sensitive things its execution
// may do (I/O, channel/lock traffic, shared-state writes, non-idempotent
// reads), plus which pointer-shaped parameters and receivers it writes
// through. The specpure analyzer joins these summaries at kernel call
// sites to find speculation-contract violations that hide behind helper
// calls — the interprocedural hole a per-closure lexical check cannot
// see.
//
// The lattice is a finite bitset, so the index iterates the whole
// summary map to a fixed point (cycles in the call graph converge
// because union only grows). Functions without source — the standard
// library seen through export data, or module packages outside the
// index's sources — fall back to a curated table of the stdlib's
// effect-relevant API; anything unknown is assumed pure. That default is
// the analyzer's trust boundary: dynamic calls (func values, interface
// methods) and unlisted externals are not charged, trading missed
// findings for a usable false-positive rate inside speculative kernels.
package effects

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Effect is a bitset of observable behaviors a call may perform.
type Effect uint16

const (
	// ReadsShared: reads package-level mutable state.
	ReadsShared Effect = 1 << iota
	// WritesShared: writes package-level state — not undone on rollback.
	WritesShared
	// DoesIO: irreversible I/O or syscall (files, sockets, stdio, exec).
	DoesIO
	// Blocks: channel, mutex, WaitGroup or sleep traffic — a speculative
	// thread that blocks can deadlock against its own squash, and a lock
	// acquired speculatively is not released on rollback.
	Blocks
	// Panics: may call panic directly (contained as misspeculation, but
	// summarized for completeness).
	Panics
	// NonIdempotent: distinct results on re-execution (time, rand) — a
	// squashed-and-replayed chunk computes a different answer.
	NonIdempotent
)

// Pure is the empty effect set.
const Pure Effect = 0

func (e Effect) String() string {
	var parts []string
	for _, p := range []struct {
		bit  Effect
		name string
	}{
		{ReadsShared, "reads-shared"},
		{WritesShared, "writes-shared"},
		{DoesIO, "does-io"},
		{Blocks, "blocks"},
		{Panics, "panics"},
		{NonIdempotent, "non-idempotent"},
	} {
		if e&p.bit != 0 {
			parts = append(parts, p.name)
		}
	}
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, "|")
}

// A Summary is one function's effect set.
type Summary struct {
	Effects Effect
	// ParamWrites has bit i set when the function may write through its
	// i-th parameter (pointer, slice, map — memory the caller shares).
	ParamWrites uint64
	// RecvWrite reports writes through the method receiver.
	RecvWrite bool
	// Via explains, per effect bit, the call chain that introduced it
	// ("helper → os.WriteFile"), for diagnostics.
	Via map[Effect]string
}

// via returns the chain for the lowest set bit of e, if recorded.
func (s Summary) ViaFor(e Effect) string {
	if s.Via == nil {
		return ""
	}
	return s.Via[e]
}

// A Source is one type-checked package whose function bodies join the
// index.
type Source struct {
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
}

// An Index memoizes effect summaries for a set of source packages.
type Index struct {
	funcs  map[*types.Func]*funcSrc
	sums   map[*types.Func]*Summary
	exempt func(*types.Func) bool
}

// An Option configures index construction.
type Option func(*Index)

// WithExempt marks callees whose effects do NOT propagate into caller
// summaries. The speculation analyzers exempt the mutls runtime's own
// API this way: Thread.CheckPoint may sleep inside the fault injector,
// but it is rollback-aware, so a helper that polls must not inherit
// Blocks from it.
func WithExempt(f func(*types.Func) bool) Option {
	return func(idx *Index) { idx.exempt = f }
}

type funcSrc struct {
	decl *ast.FuncDecl
	info *types.Info
	pkg  *types.Package
}

// NewIndex builds the summary index over srcs, iterating the whole map
// to a global fixed point (the effect lattice is finite, so growth
// terminates; cross-package cycles are impossible in Go but mutual
// recursion inside a package is common).
func NewIndex(srcs []Source, opts ...Option) *Index {
	idx := &Index{
		funcs: make(map[*types.Func]*funcSrc),
		sums:  make(map[*types.Func]*Summary),
	}
	for _, opt := range opts {
		opt(idx)
	}
	for _, src := range srcs {
		for _, file := range src.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				idx.funcs[fn] = &funcSrc{decl: fd, info: src.Info, pkg: src.Pkg}
				idx.sums[fn] = &Summary{}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fs := range idx.funcs {
			next := idx.compute(fn, fs)
			if !equalSummary(next, *idx.sums[fn]) {
				*idx.sums[fn] = next
				changed = true
			}
		}
	}
	return idx
}

// Of returns fn's summary: a computed one for indexed source functions,
// the stdlib table entry for known externals, and Pure for everything
// else (the documented trust boundary).
func (idx *Index) Of(fn *types.Func) Summary {
	if fn == nil {
		return Summary{}
	}
	if s, ok := idx.sums[fn]; ok {
		return *s
	}
	return stdlibSummary(fn)
}

// Len reports the number of source functions indexed (for tests).
func (idx *Index) Len() int { return len(idx.funcs) }

func equalSummary(a, b Summary) bool {
	return a.Effects == b.Effects && a.ParamWrites == b.ParamWrites && a.RecvWrite == b.RecvWrite
}

// compute derives fn's summary from its body and the current summaries
// of its callees.
func (idx *Index) compute(fn *types.Func, fs *funcSrc) Summary {
	sum := Summary{Via: map[Effect]string{}}
	info := fs.info
	sig := fn.Type().(*types.Signature)

	// Parameter and receiver objects, for ParamWrites/RecvWrite.
	paramAt := make(map[*types.Var]int)
	for i := 0; i < sig.Params().Len(); i++ {
		paramAt[sig.Params().At(i)] = i
	}
	var recvObj *types.Var
	if fs.decl.Recv != nil && len(fs.decl.Recv.List) == 1 && len(fs.decl.Recv.List[0].Names) == 1 {
		recvObj, _ = info.Defs[fs.decl.Recv.List[0].Names[0]].(*types.Var)
	}

	addEffect := func(e Effect, via string) {
		for bit := Effect(1); bit != 0 && bit <= NonIdempotent; bit <<= 1 {
			if e&bit != 0 && sum.Effects&bit == 0 {
				sum.Effects |= bit
				if via != "" {
					sum.Via[bit] = via
				}
			}
		}
	}

	// chargeWrite records a write whose target base is v.
	chargeWrite := func(v *types.Var, via string) {
		switch {
		case v == nil:
		case v == recvObj:
			sum.RecvWrite = true
		case isPkgLevel(v):
			addEffect(WritesShared, via)
		default:
			if i, ok := paramAt[v]; ok && i < 64 {
				sum.ParamWrites |= 1 << i
			}
		}
	}

	// baseVar peels an lvalue to the variable at its base: x, x.f, x[i],
	// *x, and parenthesized forms.
	var baseVar func(e ast.Expr) *types.Var
	baseVar = func(e ast.Expr) *types.Var {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj, _ := info.Uses[v].(*types.Var)
				if obj == nil {
					obj, _ = info.Defs[v].(*types.Var)
				}
				return obj
			case *ast.SelectorExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.UnaryExpr:
				if v.Op != token.AND {
					return nil
				}
				e = v.X
			default:
				return nil
			}
		}
	}

	// chargeLHS classifies a write target. Peeling the lvalue toward its
	// base, every dereference step — *p, s[i] on a slice/map, p.f through
	// a pointer — makes the write reach caller-visible memory; a pure
	// value path (local struct field, array element of a local) stays
	// private. The base then decides who is charged: a package-level var
	// is WritesShared, the receiver RecvWrite, a parameter ParamWrites,
	// and a local nothing.
	chargeLHS := func(lhs ast.Expr, via string) {
		ref := false
		e := lhs
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj, _ := info.Uses[v].(*types.Var)
				if obj == nil {
					obj, _ = info.Defs[v].(*types.Var)
				}
				switch {
				case obj == nil:
				case isPkgLevel(obj):
					addEffect(WritesShared, via)
				case obj == recvObj && (ref || isRefType(obj.Type())):
					sum.RecvWrite = true
				default:
					if i, ok := paramAt[obj]; ok && ref && i < 64 {
						sum.ParamWrites |= 1 << i
					}
				}
				return
			case *ast.SelectorExpr:
				// pkg.Var = x: qualified package-level write.
				if sobj, ok := info.Uses[v.Sel].(*types.Var); ok && isPkgLevel(sobj) {
					addEffect(WritesShared, via)
					return
				}
				if isRefType(info.TypeOf(v.X)) {
					ref = true
				}
				e = v.X
			case *ast.IndexExpr:
				if isRefType(info.TypeOf(v.X)) {
					ref = true
				}
				e = v.X
			case *ast.StarExpr:
				ref = true
				e = v.X
			default:
				return
			}
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			addEffect(Blocks, "chan send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				addEffect(Blocks, "chan receive")
			}
		case *ast.SelectStmt:
			addEffect(Blocks, "select")
		case *ast.GoStmt:
			// Spawning is not blocking by itself, but the goroutine's
			// work escapes rollback entirely.
			addEffect(Blocks, "go statement")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				chargeLHS(lhs, "")
			}
		case *ast.IncDecStmt:
			chargeLHS(n.X, "")
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && isPkgLevel(v) && !v.IsField() {
				addEffect(ReadsShared, "")
			}
		case *ast.CallExpr:
			idx.chargeCall(fn, fs, n, addEffect, chargeWrite, baseVar)
		}
		return true
	}
	ast.Inspect(fs.decl.Body, walk)
	if len(sum.Via) == 0 {
		sum.Via = nil
	}
	return sum
}

// chargeCall folds one call site into the summary under construction.
func (idx *Index) chargeCall(self *types.Func, fs *funcSrc, call *ast.CallExpr,
	addEffect func(Effect, string), chargeWrite func(*types.Var, string), baseVar func(ast.Expr) *types.Var) {

	info := fs.info
	// Builtins: panic is an effect; close blocks conflation is fine
	// (channel lifecycle inside speculation is equally irreversible);
	// append/copy write through their destination argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				addEffect(Panics, "panic")
			case "close":
				addEffect(Blocks, "close(chan)")
			case "copy":
				if len(call.Args) > 0 {
					chargeWrite(baseVar(call.Args[0]), "copy into shared argument")
				}
			}
			return
		}
	}

	callee := calleeFunc(info, call)
	if callee == nil || callee == self {
		return // dynamic call (trust boundary) or direct recursion
	}
	if idx.exempt != nil && idx.exempt(callee) {
		return // rollback-aware runtime API: effects stop here
	}
	csum := idx.Of(callee)
	name := qualifiedName(callee)
	for bit := Effect(1); bit != 0 && bit <= NonIdempotent; bit <<= 1 {
		if csum.Effects&bit == 0 {
			continue
		}
		via := name
		if chain := csum.ViaFor(bit); chain != "" && chain != name {
			via = name + " → " + chain
		}
		addEffect(bit, via)
	}
	// Map the callee's parameter writes through our arguments.
	if csum.ParamWrites != 0 {
		for i, arg := range call.Args {
			if i < 64 && csum.ParamWrites&(1<<i) != 0 {
				chargeWrite(baseVar(arg), name+" writes through its argument")
			}
		}
	}
	// And a receiver write through the method operand.
	if csum.RecvWrite {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			chargeWrite(baseVar(sel.X), name+" writes through its receiver")
		}
	}
}

// calleeFunc resolves a call to the static *types.Func it invokes; nil
// for func values, builtins and conversions. Interface methods resolve
// to the interface's method object (bodyless → stdlib table or pure).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	if v.IsField() {
		return false
	}
	pkg := v.Pkg()
	return pkg != nil && pkg.Scope().Lookup(v.Name()) == v
}

// isRefType reports whether writes through a value of t alias memory the
// caller can see: pointers, slices, maps, channels.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// qualifiedName renders pkg.Func or pkg.Type.Method for diagnostics.
func qualifiedName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}
