package effects

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// index type-checks src as one package and builds its effect index.
func index(t *testing.T, src string) (*Index, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return NewIndex([]Source{{Pkg: pkg, Info: info, Files: []*ast.File{file}}}), pkg
}

// of returns the summary of the package-level function named name.
func of(t *testing.T, idx *Index, pkg *types.Package, name string) Summary {
	t.Helper()
	obj := pkg.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("no function %q", name)
	}
	return idx.Of(fn)
}

const directSrc = `package p

var shared int

func pure(a, b int) int { return a + b }

func readsGlobal() int { return shared }

func writesGlobal() { shared = 1 }

func sends(ch chan int) { ch <- 1 }

func receives(ch chan int) int { return <-ch }

func panics(x int) {
	if x < 0 {
		panic("neg")
	}
}

func writesParam(dst []int64, k int64) {
	for i := range dst {
		dst[i] *= k
	}
}

func writesPtr(p *int) { *p = 7 }

func localOnly() {
	type s struct{ f int }
	var v s
	v.f = 1
	arr := [4]int{}
	arr[0] = 2
	_ = v
	_ = arr
}

func valueParam(v struct{ f int }) { v.f = 1 }
`

func TestDirectEffects(t *testing.T) {
	idx, pkg := index(t, directSrc)
	cases := []struct {
		fn   string
		want Effect
	}{
		{"pure", Pure},
		{"readsGlobal", ReadsShared},
		{"writesGlobal", WritesShared | ReadsShared},
		{"sends", Blocks},
		{"receives", Blocks},
		{"panics", Panics},
		{"localOnly", Pure},
		{"valueParam", Pure},
	}
	for _, c := range cases {
		got := of(t, idx, pkg, c.fn).Effects
		if got != c.want {
			t.Errorf("%s: effects = %v, want %v", c.fn, got, c.want)
		}
	}
	if s := of(t, idx, pkg, "writesParam"); s.ParamWrites != 1 {
		t.Errorf("writesParam: ParamWrites = %b, want bit 0", s.ParamWrites)
	}
	if s := of(t, idx, pkg, "writesPtr"); s.ParamWrites != 1 {
		t.Errorf("writesPtr: ParamWrites = %b, want bit 0", s.ParamWrites)
	}
	if s := of(t, idx, pkg, "valueParam"); s.ParamWrites != 0 {
		t.Errorf("valueParam: value-struct field write must stay private, got %b", s.ParamWrites)
	}
}

const interSrc = `package p

var counter int

func leaf(dst []int, v int) { dst[0] = v }

func mid(xs []int) { leaf(xs, 1) }

func top(buf []int) { mid(buf) }

func bump() { counter++ }

func callsBump() { bump() }

func viaReceiver() {}

type box struct{ n int }

func (b *box) set(v int) { b.n = v }

func pokes(b *box) { b.set(3) }

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func sendsDeep(ch chan int) { sender(ch) }

func sender(ch chan int) { ch <- 1 }
`

func TestInterprocedural(t *testing.T) {
	idx, pkg := index(t, interSrc)

	// Param writes propagate through two call layers with argument
	// position mapping.
	for _, fn := range []string{"leaf", "mid", "top"} {
		if s := of(t, idx, pkg, fn); s.ParamWrites&1 == 0 {
			t.Errorf("%s: write through slice param must propagate, got %b", fn, s.ParamWrites)
		}
	}
	// Global writes propagate.
	if s := of(t, idx, pkg, "callsBump"); s.Effects&WritesShared == 0 {
		t.Errorf("callsBump: WritesShared must propagate from bump, got %v", s.Effects)
	}
	// Receiver writes map through the method operand: pokes(b) mutates
	// its pointer param via b.set.
	if s := of(t, idx, pkg, "pokes"); s.ParamWrites&1 == 0 {
		t.Errorf("pokes: b.set receiver write must charge the param, got %b", s.ParamWrites)
	}
	// Mutual recursion converges and stays pure.
	if s := of(t, idx, pkg, "even"); s.Effects != Pure {
		t.Errorf("even: mutual recursion must converge pure, got %v", s.Effects)
	}
	// Blocking propagates with a via chain.
	s := of(t, idx, pkg, "sendsDeep")
	if s.Effects&Blocks == 0 {
		t.Fatalf("sendsDeep: Blocks must propagate, got %v", s.Effects)
	}
	if via := s.ViaFor(Blocks); !strings.Contains(via, "sender") {
		t.Errorf("sendsDeep: via chain should name sender, got %q", via)
	}
}

func TestStdlibTable(t *testing.T) {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	mkFn := func(path, pkgname, name string) *types.Func {
		return types.NewFunc(token.NoPos, types.NewPackage(path, pkgname), name, sig)
	}
	cases := []struct {
		path, name string
		want       Effect
	}{
		{"os", "WriteFile", DoesIO},
		{"os", "Getenv", Pure},
		{"syscall", "Write", DoesIO},
		{"fmt", "Sprintf", Pure},
		{"fmt", "Println", DoesIO},
		{"fmt", "Fprintf", DoesIO},
		{"sync", "Lock", Blocks},
		{"time", "Sleep", Blocks},
		{"time", "Now", NonIdempotent},
		{"time", "Duration", Pure},
		{"math/rand", "Intn", NonIdempotent},
		{"strings", "ToUpper", Pure},
	}
	for _, c := range cases {
		fn := mkFn(c.path, c.path[strings.LastIndex(c.path, "/")+1:], c.name)
		got := stdlibSummary(fn).Effects
		if got != c.want {
			t.Errorf("%s.%s: effects = %v, want %v", c.path, c.name, got, c.want)
		}
	}
	// Atomic mutators write through their pointer argument.
	if s := stdlibSummary(mkFn("sync/atomic", "atomic", "AddInt64")); s.ParamWrites != 1 {
		t.Errorf("atomic.AddInt64: ParamWrites = %b, want bit 0", s.ParamWrites)
	}
	if s := stdlibSummary(mkFn("sync/atomic", "atomic", "LoadInt64")); s.Effects != Pure || s.ParamWrites != 0 {
		t.Errorf("atomic.LoadInt64 must be pure")
	}
}

func TestEffectString(t *testing.T) {
	if Pure.String() != "pure" {
		t.Errorf("Pure.String() = %q", Pure.String())
	}
	s := (DoesIO | Blocks).String()
	if !strings.Contains(s, "does-io") || !strings.Contains(s, "blocks") {
		t.Errorf("String() = %q", s)
	}
}

func TestWithExempt(t *testing.T) {
	const src = `package p

func runtimePoll(ch chan int) { ch <- 1 }

func helper(ch chan int) { runtimePoll(ch) }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	exempt := func(fn *types.Func) bool { return fn.Name() == "runtimePoll" }
	idx := NewIndex([]Source{{Pkg: pkg, Info: info, Files: []*ast.File{file}}}, WithExempt(exempt))

	// The exempt callee itself still carries its direct effects...
	if s := of(t, idx, pkg, "runtimePoll"); s.Effects&Blocks == 0 {
		t.Errorf("runtimePoll: direct send must still be summarized, got %v", s.Effects)
	}
	// ...but they stop at the exemption boundary instead of propagating.
	if s := of(t, idx, pkg, "helper"); s.Effects != Pure {
		t.Errorf("helper: effects of an exempt callee must not propagate, got %v", s.Effects)
	}
}

func TestUnknownFuncIsPure(t *testing.T) {
	idx, _ := index(t, "package p\nfunc f() {}\n")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	ext := types.NewFunc(token.NoPos, types.NewPackage("example.com/x", "x"), "Mystery", sig)
	if s := idx.Of(ext); s.Effects != Pure {
		t.Errorf("unknown external must default to pure, got %v", s.Effects)
	}
	if s := idx.Of(nil); s.Effects != Pure {
		t.Errorf("nil func must be pure")
	}
}
