// Package dataflow is a generic worklist solver over internal/analysis/cfg
// graphs. A client describes its lattice (bottom, join, equality), a
// per-block transfer function, and optionally a per-edge transfer (used
// for condition-sensitive facts like "the nil check failed on this
// edge"); Solve iterates to the fixed point and returns the in/out fact
// of every block.
package dataflow

import "repro/internal/analysis/cfg"

// Direction selects forward (entry→exit) or backward (exit→entry)
// propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem describes one dataflow analysis over fact type F.
type Problem[F any] struct {
	Dir Direction
	// Boundary is the fact at the graph boundary: the entry block's in
	// fact (Forward) or the exit block's out fact (Backward).
	Boundary F
	// Bottom returns the identity of Join — the initial fact of every
	// other block.
	Bottom func() F
	// Join combines facts at control-flow merges. It must be monotone
	// and may return either argument when they are equal.
	Join func(a, b F) F
	// Equal reports whether two facts are equal (fixed-point test).
	Equal func(a, b F) bool
	// Transfer computes the block's out fact (Forward) or in fact
	// (Backward) from the opposite side.
	Transfer func(b *cfg.Block, in F) F
	// EdgeTransfer, when non-nil, refines the fact flowing along the
	// edge from b to b.Succs[succIdx] (Forward only; ignored Backward).
	// It runs after Transfer.
	EdgeTransfer func(b *cfg.Block, succIdx int, out F) F
}

// Result holds the solved facts, indexed by Block.Index: In[i] is the
// fact on entry to block i, Out[i] on exit (in execution order,
// regardless of Dir).
type Result[F any] struct {
	In, Out []F
}

// Solve runs the worklist algorithm to a fixed point.
func Solve[F any](g *cfg.Graph, p Problem[F]) Result[F] {
	n := len(g.Blocks)
	res := Result[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		res.In[i] = p.Bottom()
		res.Out[i] = p.Bottom()
	}

	preds := g.Preds()
	inWork := make([]bool, n)
	var work []*cfg.Block
	push := func(b *cfg.Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}

	if p.Dir == Forward {
		res.In[0] = p.Boundary
		// Seed in reverse postorder so most facts settle in one pass.
		for _, b := range postorder(g) {
			push(b)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			inWork[b.Index] = false

			if b.Index != 0 {
				in := p.Bottom()
				for _, pr := range preds[b.Index] {
					in = p.Join(in, edgeFact(p, pr, b, res.Out[pr.Index]))
				}
				res.In[b.Index] = in
			}
			out := p.Transfer(b, res.In[b.Index])
			if p.Equal(out, res.Out[b.Index]) {
				continue
			}
			res.Out[b.Index] = out
			for _, s := range b.Succs {
				push(s)
			}
		}
		return res
	}

	// Backward.
	res.Out[g.Exit.Index] = p.Boundary
	for i := n - 1; i >= 0; i-- {
		push(g.Blocks[i])
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Index] = false

		if b != g.Exit {
			out := p.Bottom()
			for _, s := range b.Succs {
				out = p.Join(out, res.In[s.Index])
			}
			res.Out[b.Index] = out
		}
		in := p.Transfer(b, res.Out[b.Index])
		if p.Equal(in, res.In[b.Index]) {
			continue
		}
		res.In[b.Index] = in
		for _, pr := range preds[b.Index] {
			push(pr)
		}
	}
	return res
}

// EdgeFact returns the fact flowing along the from→from.Succs[succIdx]
// edge given from's out fact, applying EdgeTransfer if set. Clients use
// it when re-walking a solved graph to report diagnostics.
func EdgeFact[F any](p Problem[F], from *cfg.Block, succIdx int, out F) F {
	if p.EdgeTransfer != nil {
		return p.EdgeTransfer(from, succIdx, out)
	}
	return out
}

func edgeFact[F any](p Problem[F], from, to *cfg.Block, out F) F {
	if p.EdgeTransfer == nil {
		return out
	}
	// A block can list the same successor more than once (e.g. both
	// arms reaching the same target); join every matching edge.
	var acc F
	first := true
	for i, s := range from.Succs {
		if s != to {
			continue
		}
		f := p.EdgeTransfer(from, i, out)
		if first {
			acc, first = f, false
		} else {
			acc = p.Join(acc, f)
		}
	}
	if first {
		return out
	}
	return acc
}

// postorder returns the blocks reachable from entry in postorder; the
// worklist pops from the back, so pushing this order visits blocks in
// reverse postorder. Unreachable blocks are deliberately excluded: they
// are never processed, so their facts stay at bottom and cannot pollute
// may-analyses through their exit edges (code after return/panic).
func postorder(g *cfg.Graph) []*cfg.Block {
	seen := make([]bool, len(g.Blocks))
	order := make([]*cfg.Block, 0, len(g.Blocks))
	var visit func(b *cfg.Block)
	visit = func(b *cfg.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(g.Blocks[0])
	return order
}
