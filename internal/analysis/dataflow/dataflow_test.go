package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/cfg"
)

// build parses src as the body of `func f() { ... }` and builds its CFG.
func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(file.Decls[0].(*ast.FuncDecl).Body)
}

// bit maps a single-letter variable name to a fact bit.
func bit(name string) uint32 {
	if len(name) == 1 && name[0] >= 'a' && name[0] <= 'z' {
		return 1 << (name[0] - 'a')
	}
	return 0
}

// genKill scans a block for single-letter assignments (gen) and returns
// the gen set.
func gen(b *cfg.Block) uint32 {
	var g uint32
	for _, n := range b.Nodes {
		ast.Inspect(n, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						g |= bit(id.Name)
					}
				}
			}
			return true
		})
	}
	return g
}

func mayProblem() Problem[uint32] {
	return Problem[uint32]{
		Dir:      Forward,
		Boundary: 0,
		Bottom:   func() uint32 { return 0 },
		Join:     func(a, b uint32) uint32 { return a | b },
		Equal:    func(a, b uint32) bool { return a == b },
		Transfer: func(b *cfg.Block, in uint32) uint32 { return in | gen(b) },
	}
}

func TestForwardMayAssign(t *testing.T) {
	g := build(t, `
		a := 1
		if cond {
			b := 2
			_ = b
		} else {
			c := 3
			_ = c
		}
		d := 4
		_, _ = a, d
	`)
	res := Solve(g, mayProblem())
	at := res.In[g.Exit.Index]
	for _, want := range []string{"a", "b", "c", "d"} {
		if at&bit(want) == 0 {
			t.Errorf("%s may be assigned at exit, fact says no", want)
		}
	}
}

func TestForwardMustAssign(t *testing.T) {
	// Must-analysis: Join is intersection, bottom is the full set (top).
	p := Problem[uint32]{
		Dir:      Forward,
		Boundary: 0,
		Bottom:   func() uint32 { return ^uint32(0) },
		Join:     func(a, b uint32) uint32 { return a & b },
		Equal:    func(a, b uint32) bool { return a == b },
		Transfer: func(b *cfg.Block, in uint32) uint32 { return in | gen(b) },
	}
	g := build(t, `
		a := 1
		if cond {
			b := 2
			_ = b
		}
		_ = a
	`)
	res := Solve(g, p)
	at := res.In[g.Exit.Index]
	if at&bit("a") == 0 {
		t.Errorf("a is assigned on every path, must-fact says no")
	}
	if at&bit("b") != 0 {
		t.Errorf("b is assigned on only one branch, must-fact says yes")
	}
}

func TestLoopFixpoint(t *testing.T) {
	g := build(t, `
		for i := 0; i < 10; i++ {
			if cond {
				a := 1
				_ = a
			}
		}
		done()
	`)
	res := Solve(g, mayProblem())
	at := res.In[g.Exit.Index]
	if at&bit("a") == 0 {
		t.Errorf("a assigned inside loop must reach exit via the back edge fixpoint")
	}
	if at&bit("i") == 0 {
		t.Errorf("loop init assignment must reach exit")
	}
}

func TestEdgeTransfer(t *testing.T) {
	// EdgeTransfer marks bit z on every true edge: only paths through a
	// taken branch carry it.
	p := mayProblem()
	p.EdgeTransfer = func(b *cfg.Block, succIdx int, out uint32) uint32 {
		if b.Branch != nil && succIdx == 0 {
			return out | bit("z")
		}
		return out
	}
	g := build(t, `
		if cond {
			a := 1
			_ = a
		}
		done()
	`)
	res := Solve(g, p)
	// The then-block saw the true edge.
	var thenIn, exitIn uint32 = 0, res.In[g.Exit.Index]
	for _, b := range g.Blocks {
		if b.Comment() == "if.then" {
			thenIn = res.In[b.Index]
		}
	}
	if thenIn&bit("z") == 0 {
		t.Errorf("true edge must carry the z bit into if.then")
	}
	if exitIn&bit("z") == 0 {
		t.Errorf("z joins into exit via the then path")
	}
}

func TestBackwardLiveness(t *testing.T) {
	// Minimal liveness: use of a single-letter ident (outside assignment
	// LHS) generates; assignment kills. Backward may-analysis.
	p := Problem[uint32]{
		Dir:      Backward,
		Boundary: 0,
		Bottom:   func() uint32 { return 0 },
		Join:     func(a, b uint32) uint32 { return a | b },
		Equal:    func(a, b uint32) bool { return a == b },
		Transfer: func(b *cfg.Block, out uint32) uint32 {
			live := out
			// Walk nodes in reverse execution order.
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				switch n := b.Nodes[i].(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							live &^= bit(id.Name)
						}
					}
					for _, rhs := range n.Rhs {
						live |= uses(rhs)
					}
				default:
					live |= uses(n)
				}
			}
			return live
		},
	}
	g := build(t, `
		a := input()
		for cond() {
			use(a)
		}
		a = 0
		_ = a
	`)
	res := Solve(g, p)
	// a is live at function entry? No: it's assigned first. But it IS
	// live on entry to the loop head.
	for _, b := range g.Blocks {
		if b.Comment() == "for.head" {
			if res.In[b.Index]&bit("a") == 0 {
				t.Errorf("a must be live entering the loop head (used in body)")
			}
		}
	}
	if res.In[0]&bit("a") != 0 {
		t.Errorf("a is dead at entry (assigned before first use)")
	}
}

func uses(n ast.Node) uint32 {
	var u uint32
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			u |= bit(id.Name)
		}
		return true
	})
	return u
}

func TestUnreachableStaysBottom(t *testing.T) {
	g := build(t, `
		return
		a := 1
		_ = a
	`)
	res := Solve(g, mayProblem())
	if res.In[g.Exit.Index]&bit("a") != 0 {
		t.Errorf("assignment after return is unreachable; its fact must not reach exit")
	}
}
