// Package pairing implements the shared acquire/release path check
// behind the pointleak (AllocPoint/FreePoint) and leaseleak
// (Acquire/Release) analyzers.
//
// For every acquire call bound to a local variable the enclosing
// function must release the resource on every path: a defer of the
// release (directly or inside a deferred closure) satisfies all paths at
// once; otherwise each return reachable after the acquire needs a
// release lexically between the acquire and the return. Two escapes are
// deliberate: returns inside an error-check branch of the acquire's own
// error value (the resource was never granted there), and ownership
// transfer (the resource is returned, stored into a structure, aliased,
// or sent away — some other scope releases it).
package pairing

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// A Spec configures one acquire/release pairing.
type Spec struct {
	// Pairs maps acquire method names to their release method names
	// (e.g. "AllocPoint" -> "FreePoint").
	Pairs map[string]string
	// PkgPaths restricts matches to methods defined in these packages, so
	// an unrelated Acquire/Release vocabulary elsewhere is not caught.
	PkgPaths map[string]bool
	// LeakCode is reported when a path returns without releasing;
	// DiscardCode when the acquire's result is thrown away outright.
	LeakCode, DiscardCode string
	// Noun names the resource in diagnostics ("fork/join point").
	Noun string
}

// Run applies the spec to every function body in the pass.
func Run(pass *analysis.Pass, spec Spec) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, spec, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, spec, fn.Body)
			}
			return true
		})
	}
	return nil
}

// acquireFunc resolves call to a matching acquire method and returns its
// release name.
func acquireFunc(info *types.Info, spec Spec, call *ast.CallExpr) (release string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || !spec.PkgPaths[fn.Pkg().Path()] {
		return "", false
	}
	release, ok = spec.Pairs[fn.Name()]
	return release, ok
}

// checkBody analyzes the acquire calls appearing directly in body
// (nested function literals get their own invocation).
func checkBody(pass *analysis.Pass, spec Spec, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals run their own checkBody
		}
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if _, isAcq := acquireFunc(info, spec, call); isAcq {
					pass.Reportf(call.Pos(), spec.DiscardCode,
						"result of %s is discarded; the %s can never be released", callName(call), spec.Noun)
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			release, isAcq := acquireFunc(info, spec, call)
			if !isAcq {
				return true
			}
			resID, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored straight into a structure: ownership transferred
			}
			if resID.Name == "_" {
				pass.Reportf(call.Pos(), spec.DiscardCode,
					"result of %s is discarded; the %s can never be released", callName(call), spec.Noun)
				return true
			}
			res := objOf(info, resID)
			if res == nil {
				return true
			}
			var errObj types.Object
			if len(st.Lhs) > 1 {
				if errID, ok := st.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
					errObj = objOf(info, errID)
				}
			}
			checkAcquire(pass, spec, body, call, release, res, errObj)
		}
		return true
	})
}

// checkAcquire verifies one tracked acquire: res was bound at call and
// must be released (method named release) on every path out of body.
func checkAcquire(pass *analysis.Pass, spec Spec, body *ast.BlockStmt, call *ast.CallExpr, release string, res, errObj types.Object) {
	info := pass.TypesInfo
	after := call.End()

	isRes := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && objOf(info, id) == res
	}
	isRelease := func(c *ast.CallExpr) bool {
		sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != release {
			return false
		}
		if isRes(sel.X) {
			return true
		}
		for _, arg := range c.Args {
			if isRes(arg) {
				return true
			}
		}
		return false
	}

	var (
		deferred    bool
		releases    []token.Pos // non-deferred release call positions
		transferred bool
		returns     []*ast.ReturnStmt
		exemptRange []struct{ lo, hi token.Pos } // error-check branches
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isRelease(n.Call) {
				deferred = true
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isRelease(c) {
						deferred = true
					}
					return !deferred
				})
				return false
			}
		case *ast.CallExpr:
			if isRelease(n) {
				releases = append(releases, n.Pos())
				return false
			}
		case *ast.ReturnStmt:
			if n.Pos() > after {
				returns = append(returns, n)
			}
			for _, r := range n.Results {
				if usesObj(info, r, res) {
					transferred = true
				}
			}
		case *ast.AssignStmt:
			// v aliased or stored away: x := v, s.field = v, m[k] = v,
			// ch <- v is a SendStmt below.
			for _, rhs := range n.Rhs {
				if isRes(rhs) && n.Pos() > after {
					transferred = true
				}
			}
		case *ast.SendStmt:
			if isRes(n.Value) {
				transferred = true
			}
		case *ast.IfStmt:
			if errObj != nil && usesObj(info, n.Cond, errObj) && n.Pos() > after {
				exemptRange = append(exemptRange, struct{ lo, hi token.Pos }{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})

	if deferred || transferred {
		return
	}
	exempt := func(pos token.Pos) bool {
		for _, r := range exemptRange {
			if pos >= r.lo && pos <= r.hi {
				return true
			}
		}
		return false
	}
	releasedBefore := func(pos token.Pos) bool {
		for _, p := range releases {
			if p > after && p < pos {
				return true
			}
		}
		return false
	}

	var leakAt *ast.ReturnStmt
	checked := false
	for _, ret := range returns {
		if exempt(ret.Pos()) {
			continue
		}
		checked = true
		if !releasedBefore(ret.Pos()) {
			leakAt = ret
			break
		}
	}
	if !checked {
		// No (non-exempt) return after the acquire: the function falls off
		// the end, which still needs a release somewhere after the call.
		if !releasedBefore(body.End()) {
			pass.Reportf(call.Pos(), spec.LeakCode,
				"%s acquired by %s is never released (no %s on the fall-through path; add a defer)", spec.Noun, callName(call), release)
			return
		}
	} else if leakAt != nil {
		pass.Reportf(call.Pos(), spec.LeakCode,
			"%s acquired by %s is not released on the return path at line %d (call %s before returning, or defer it)",
			spec.Noun, callName(call), pass.Fset.Position(leakAt.Pos()).Line, release)
		return
	}

	// Every path is proven by non-deferred releases — but that proof
	// assumes control reaches them. A call that can panic between the
	// acquire and the first release unwinds past all of them (the runtime
	// contains the panic as a misspeculation or a KernelPanic, so the
	// process survives with the resource pinned). Deferral is the only
	// panic-proof pairing.
	first := token.Pos(-1)
	for _, p := range releases {
		if p > after && (first < 0 || p < first) {
			first = p
		}
	}
	if first < 0 {
		return
	}
	var risky *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false // deferred/unexecuted bodies run at unwind or later
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return risky == nil
		}
		if c.Pos() <= after || c.Pos() >= first || exempt(c.Pos()) || isRelease(c) {
			return true
		}
		if risky == nil && mayPanic(info, c) {
			risky = c
		}
		return risky == nil
	})
	if risky != nil {
		pass.Reportf(call.Pos(), spec.LeakCode,
			"%s acquired by %s leaks if %s at line %d panics before the non-deferred %s; release it with defer",
			spec.Noun, callName(call), callName(risky), pass.Fset.Position(risky.Pos()).Line, release)
	}
}

// mayPanic is the heuristic behind the defer fix-it: a call whose callee
// is dynamic — a func-typed value or an interface method — has an unknown
// body and may panic, as may an explicit panic(). Static calls to named
// functions are assumed to uphold their contracts (flagging every call
// would demand defer everywhere and drown the real findings).
func mayPanic(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := objOf(info, fun).(type) {
		case *types.Builtin:
			return obj.Name() == "panic"
		case *types.Var:
			return true // func-typed local or parameter: unknown body
		}
	case *ast.SelectorExpr:
		switch obj := objOf(info, fun.Sel).(type) {
		case *types.Var:
			return true // func-typed field
		case *types.Func:
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				if types.IsInterface(recv.Type().Underlying()) {
					return true // dynamic dispatch
				}
			}
		}
	}
	return false
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// usesObj reports whether expr mentions obj.
func usesObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// callName renders a call's selector for diagnostics ("rt.AllocPoint").
func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "acquire"
}
