// Package pairing implements the shared acquire/release path check
// behind the pointleak (AllocPoint/FreePoint) and leaseleak
// (Acquire/Release) analyzers.
//
// For every acquire call bound to a local variable the enclosing
// function must release the resource on every path. The check is
// flow-sensitive: each acquire is tracked by a forward may-hold dataflow
// over the function's CFG (internal/analysis/cfg), so release-on-all-
// paths survives loops, early continue, and goto, and a handle that is
// still held when its own acquire executes again (a loop-carried leak)
// or when the variable is reassigned is reported even though a release
// appears later in the text. A defer of the release (directly or inside
// a deferred closure) satisfies all paths at once. Three escapes are
// deliberate: paths where the acquire's error value is non-nil or the
// handle is provably nil (the resource was never granted there),
// ownership transfer (the handle is returned, aliased, sent away, or
// captured by a closure — some other scope releases it), and
// //lint:allow suppressions.
package pairing

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// A Spec configures one acquire/release pairing.
type Spec struct {
	// Pairs maps acquire method names to their release method names
	// (e.g. "AllocPoint" -> "FreePoint").
	Pairs map[string]string
	// PkgPaths restricts matches to methods defined in these packages, so
	// an unrelated Acquire/Release vocabulary elsewhere is not caught.
	PkgPaths map[string]bool
	// LeakCode is reported when a path returns without releasing;
	// DiscardCode when the acquire's result is thrown away outright.
	LeakCode, DiscardCode string
	// Noun names the resource in diagnostics ("fork/join point").
	Noun string
}

// Run applies the spec to every function body in the pass.
func Run(pass *analysis.Pass, spec Spec) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, spec, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, spec, fn.Body)
			}
			return true
		})
	}
	return nil
}

// acquireFunc resolves call to a matching acquire method and returns its
// release name.
func acquireFunc(info *types.Info, spec Spec, call *ast.CallExpr) (release string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || !spec.PkgPaths[fn.Pkg().Path()] {
		return "", false
	}
	release, ok = spec.Pairs[fn.Name()]
	return release, ok
}

// checkBody analyzes the acquire calls appearing directly in body
// (nested function literals get their own invocation).
func checkBody(pass *analysis.Pass, spec Spec, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var graph *cfg.Graph // built lazily, shared by every acquire in body
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals run their own checkBody
		}
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if _, isAcq := acquireFunc(info, spec, call); isAcq {
					pass.Reportf(call.Pos(), spec.DiscardCode,
						"result of %s is discarded; the %s can never be released", callName(call), spec.Noun)
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			release, isAcq := acquireFunc(info, spec, call)
			if !isAcq {
				return true
			}
			resID, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored straight into a structure: ownership transferred
			}
			if resID.Name == "_" {
				pass.Reportf(call.Pos(), spec.DiscardCode,
					"result of %s is discarded; the %s can never be released", callName(call), spec.Noun)
				return true
			}
			res := objOf(info, resID)
			if res == nil {
				return true
			}
			var errObj types.Object
			if len(st.Lhs) > 1 {
				if errID, ok := st.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
					errObj = objOf(info, errID)
				}
			}
			if graph == nil {
				graph = cfg.New(body)
			}
			tk := &tracker{
				info:    info,
				fset:    pass.Fset,
				acq:     st,
				call:    call,
				release: release,
				res:     res,
				errObj:  errObj,
			}
			tk.check(pass, spec, body, graph)
		}
		return true
	})
}

// held is the dataflow fact: 1 when the tracked handle may hold an
// unreleased resource on some path reaching this point.
const heldBit uint8 = 1

// tracker is the flow analysis of one acquire statement.
type tracker struct {
	info    *types.Info
	fset    *token.FileSet
	acq     *ast.AssignStmt // the acquire assignment (identity-matched in the CFG)
	call    *ast.CallExpr
	release string
	res     types.Object // the handle variable
	errObj  types.Object // the acquire's error variable, if bound
}

// leak kinds, in reporting precedence order.
const (
	leakNone = iota
	leakLoopCarried
	leakReturn
	leakReassign
	leakFallThrough
)

type leakReport struct {
	kind int
	line int // return/reassign line for the message
}

func (tk *tracker) check(pass *analysis.Pass, spec Spec, body *ast.BlockStmt, g *cfg.Graph) {
	// A deferred release (directly or inside a deferred closure) pairs
	// every path, including panic unwinds, at once.
	if tk.deferredRelease(body) {
		return
	}

	prob := dataflow.Problem[uint8]{
		Dir:      dataflow.Forward,
		Boundary: 0,
		Bottom:   func() uint8 { return 0 },
		Join:     func(a, b uint8) uint8 { return a | b },
		Equal:    func(a, b uint8) bool { return a == b },
		Transfer: func(b *cfg.Block, in uint8) uint8 {
			f := in
			for _, n := range b.Nodes {
				f = tk.transferNode(n, f, nil)
			}
			return f
		},
		EdgeTransfer: tk.edgeTransfer,
	}
	res := dataflow.Solve(g, prob)

	// Re-walk the solved graph to place diagnostics. At most one leak is
	// reported per acquire, by precedence: a loop-carried reacquire
	// outranks a leaking return, which outranks a reassignment, which
	// outranks the fall-through exit.
	best := leakReport{kind: leakNone}
	note := func(r leakReport) {
		if best.kind == leakNone || r.kind < best.kind {
			best = r
		}
	}
	for _, blk := range g.Blocks {
		f := res.In[blk.Index]
		for _, n := range blk.Nodes {
			f = tk.transferNode(n, f, note)
		}
		// Natural fall-through into exit with the handle still held:
		// return and panic terminators are handled elsewhere.
		if f&heldBit != 0 && tk.fallsToExit(blk, g) {
			note(leakReport{kind: leakFallThrough})
		}
	}

	switch best.kind {
	case leakLoopCarried:
		pass.Reportf(tk.call.Pos(), spec.LeakCode,
			"%s acquired by %s is still unreleased when the loop reacquires it at line %d (loop-carried leak; release it before the next iteration, or defer inside the loop body)",
			spec.Noun, callName(tk.call), best.line)
		return
	case leakReturn:
		pass.Reportf(tk.call.Pos(), spec.LeakCode,
			"%s acquired by %s is not released on the return path at line %d (call %s before returning, or defer it)",
			spec.Noun, callName(tk.call), best.line, tk.release)
		return
	case leakReassign:
		pass.Reportf(tk.call.Pos(), spec.LeakCode,
			"%s acquired by %s is still unreleased when its variable is reassigned at line %d (the handle is overwritten; release it first)",
			spec.Noun, callName(tk.call), best.line)
		return
	case leakFallThrough:
		pass.Reportf(tk.call.Pos(), spec.LeakCode,
			"%s acquired by %s is never released (no %s on the fall-through path; add a defer)",
			spec.Noun, callName(tk.call), tk.release)
		return
	}

	// Every path is proven by non-deferred releases — but that proof
	// assumes control reaches them. A call that can panic between the
	// acquire and the first release unwinds past all of them (the runtime
	// contains the panic as a misspeculation or a KernelPanic, so the
	// process survives with the resource pinned). Deferral is the only
	// panic-proof pairing.
	tk.panicAdvisory(pass, spec, body)
}

// transferNode applies one CFG node to the fact. When note is non-nil
// the walk is the reporting pass and leak events are recorded; the
// solver pass runs with note == nil.
func (tk *tracker) transferNode(n ast.Node, f uint8, note func(leakReport)) uint8 {
	line := func(p token.Pos) int { return tk.fset.Position(p).Line }

	if n == ast.Node(tk.acq) {
		if f&heldBit != 0 && note != nil {
			note(leakReport{kind: leakLoopCarried, line: line(tk.acq.Pos())})
		}
		return f | heldBit
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			// Deferred work runs at unwind; a deferred release was already
			// credited globally, and mentions of the handle inside other
			// defers neither release nor leak it here.
			return false
		case *ast.FuncLit:
			// The handle escaping into a closure transfers ownership: the
			// closure (or whoever it is handed to) releases it.
			if tk.mentionsRes(m.Body) {
				f &^= heldBit
			}
			return false
		case *ast.CallExpr:
			if tk.isRelease(m) {
				f &^= heldBit
				return false
			}
		case *ast.ReturnStmt:
			escapes := false
			for _, r := range m.Results {
				if usesObj(tk.info, r, tk.res) {
					escapes = true
				}
			}
			if escapes {
				f &^= heldBit // caller owns the handle now
			} else if f&heldBit != 0 && note != nil {
				note(leakReport{kind: leakReturn, line: line(m.Pos())})
			}
		case *ast.AssignStmt:
			for _, rhs := range m.Rhs {
				if tk.isRes(rhs) {
					f &^= heldBit // aliased or stored away: ownership transferred
				}
			}
			for _, lhs := range m.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && objOf(tk.info, id) == tk.res {
					if f&heldBit != 0 && note != nil {
						note(leakReport{kind: leakReassign, line: line(m.Pos())})
					}
					f &^= heldBit // the old handle value is gone
				}
			}
		case *ast.SendStmt:
			if tk.isRes(m.Value) {
				f &^= heldBit
			}
		}
		return true
	})
	return f
}

// edgeTransfer clears the held bit along edges that prove the handle was
// never granted: the taken edge of an error check, or the nil side of a
// nil comparison on the handle itself.
func (tk *tracker) edgeTransfer(b *cfg.Block, succIdx int, out uint8) uint8 {
	if out&heldBit == 0 || b.Branch == nil {
		return out
	}
	if obj, eq, isNilCmp := tk.nilCompare(b.Branch); isNilCmp {
		// For the error value, the acquire failed where the error is
		// non-nil: err != nil clears on the true edge, err == nil on the
		// false edge. For the handle, nothing is held where it is nil:
		// res == nil clears on the true edge, res != nil on the false edge.
		var clearOnTrue bool
		if obj == tk.errObj && tk.errObj != nil {
			clearOnTrue = !eq
		} else {
			clearOnTrue = eq
		}
		if clearOnTrue == (succIdx == 0) {
			return out &^ heldBit
		}
		return out
	}
	// Any other condition mentioning the error value exempts its taken
	// branch (the lexical engine's error-path escape, kept for compound
	// conditions like `err != nil || retry`).
	if tk.errObj != nil && succIdx == 0 && usesObj(tk.info, b.Branch, tk.errObj) {
		return out &^ heldBit
	}
	return out
}

// nilCompare matches `x == nil` / `x != nil` (either operand order) where
// x resolves to the handle or the error variable; eq reports ==.
func (tk *tracker) nilCompare(cond ast.Expr) (obj types.Object, eq, ok bool) {
	bin, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false, false
	}
	classify := func(e ast.Expr) (types.Object, bool) {
		id, isID := ast.Unparen(e).(*ast.Ident)
		if !isID {
			return nil, false
		}
		o := objOf(tk.info, id)
		if o == tk.res || (tk.errObj != nil && o == tk.errObj) {
			return o, false
		}
		if id.Name == "nil" {
			return nil, true
		}
		return nil, false
	}
	lo, lNil := classify(bin.X)
	ro, rNil := classify(bin.Y)
	switch {
	case lo != nil && rNil:
		return lo, bin.Op == token.EQL, true
	case ro != nil && lNil:
		return ro, bin.Op == token.EQL, true
	}
	return nil, false, false
}

// fallsToExit reports whether blk's edge into Exit is a natural
// fall-through (not a return or an explicit panic, which carry their own
// reporting rules).
func (tk *tracker) fallsToExit(blk *cfg.Block, g *cfg.Graph) bool {
	toExit := false
	for _, s := range blk.Succs {
		if s == g.Exit {
			toExit = true
		}
	}
	if !toExit || blk == g.Exit {
		return false
	}
	if len(blk.Nodes) > 0 {
		switch last := blk.Nodes[len(blk.Nodes)-1].(type) {
		case *ast.ReturnStmt:
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return false // the panic advisory owns unwind leaks
				}
			}
		}
	}
	return true
}

// deferredRelease reports whether body defers a release of the handle,
// directly or inside a deferred closure.
func (tk *tracker) deferredRelease(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if tk.isRelease(d.Call) {
			found = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && tk.isRelease(c) {
					found = true
				}
				return !found
			})
		}
		return false
	})
	return found
}

func (tk *tracker) isRes(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && objOf(tk.info, id) == tk.res
}

func (tk *tracker) isRelease(c *ast.CallExpr) bool {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != tk.release {
		return false
	}
	if tk.isRes(sel.X) {
		return true
	}
	for _, arg := range c.Args {
		if tk.isRes(arg) {
			return true
		}
	}
	return false
}

// mentionsRes reports whether the subtree mentions the handle variable.
func (tk *tracker) mentionsRes(n ast.Node) bool {
	return usesNode(tk.info, n, tk.res)
}

// panicAdvisory is the lexical may-panic check retained from the
// pre-flow engine: when all paths are paired by non-deferred releases, a
// dynamic call between the acquire and the first release can still
// unwind past them.
func (tk *tracker) panicAdvisory(pass *analysis.Pass, spec Spec, body *ast.BlockStmt) {
	info := tk.info
	after := tk.call.End()

	var (
		releases    []token.Pos
		exemptRange []struct{ lo, hi token.Pos }
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tk.isRelease(n) {
				releases = append(releases, n.Pos())
				return false
			}
		case *ast.IfStmt:
			if tk.errObj != nil && usesObj(info, n.Cond, tk.errObj) && n.Pos() > after {
				exemptRange = append(exemptRange, struct{ lo, hi token.Pos }{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	exempt := func(pos token.Pos) bool {
		for _, r := range exemptRange {
			if pos >= r.lo && pos <= r.hi {
				return true
			}
		}
		return false
	}

	first := token.Pos(-1)
	for _, p := range releases {
		if p > after && (first < 0 || p < first) {
			first = p
		}
	}
	if first < 0 {
		return
	}
	var risky *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false // deferred/unexecuted bodies run at unwind or later
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return risky == nil
		}
		if c.Pos() <= after || c.Pos() >= first || exempt(c.Pos()) || tk.isRelease(c) {
			return true
		}
		if risky == nil && mayPanic(info, c) {
			risky = c
		}
		return risky == nil
	})
	if risky != nil {
		pass.Reportf(tk.call.Pos(), spec.LeakCode,
			"%s acquired by %s leaks if %s at line %d panics before the non-deferred %s; release it with defer",
			spec.Noun, callName(tk.call), callName(risky), pass.Fset.Position(risky.Pos()).Line, tk.release)
	}
}

// mayPanic is the heuristic behind the defer fix-it: a call whose callee
// is dynamic — a func-typed value or an interface method — has an unknown
// body and may panic, as may an explicit panic(). Static calls to named
// functions are assumed to uphold their contracts (flagging every call
// would demand defer everywhere and drown the real findings).
func mayPanic(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := objOf(info, fun).(type) {
		case *types.Builtin:
			return obj.Name() == "panic"
		case *types.Var:
			return true // func-typed local or parameter: unknown body
		}
	case *ast.SelectorExpr:
		switch obj := objOf(info, fun.Sel).(type) {
		case *types.Var:
			return true // func-typed field
		case *types.Func:
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				if types.IsInterface(recv.Type().Underlying()) {
					return true // dynamic dispatch
				}
			}
		}
	}
	return false
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// usesObj reports whether expr mentions obj.
func usesObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	return usesNode(info, expr, obj)
}

func usesNode(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// callName renders a call's selector for diagnostics ("rt.AllocPoint").
func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "acquire"
}
