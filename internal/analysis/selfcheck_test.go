package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
	"repro/internal/analysis/specpure"
)

// TestNoFalsePositiveCorpus runs the whole suite over packages that obey
// the speculation contract — the public API drivers and the serving
// layer — and requires zero diagnostics. A heuristic change that starts
// flagging canonical code fails here before it fails CI.
func TestNoFalsePositiveCorpus(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	l, err := load.New(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Patterns([]string{"./mutls", "./mutls/pool", "./internal/serve", "./internal/core", "./internal/mem"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(pkgs, driver.Analyzers(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("false positive on contract-clean corpus: %s", d.Format(l.Fset))
	}
}

// TestWholeModuleClean is the regression gate for the violations PR 8
// fixed (poll-free example kernels, mixed atomic/plain LoadReport
// counters): the full module must stay free of findings, mirroring the
// CI `make vet` step.
func TestWholeModuleClean(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	l, err := load.New(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Patterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(pkgs, driver.Analyzers(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("module regressed against the speculation contract: %s", d.Format(l.Fset))
	}
}

// TestWholeModuleSpecpureClean pins the interprocedural purity gate on
// its own: specpure runs alone, which also exercises the driver's path
// where the effect index is built for a single NeedsInter analyzer, with
// the runtime exemption installed. Every kernel in the tree — drivers,
// benches, examples, the serving layer — must be effect-free.
func TestWholeModuleSpecpureClean(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	l, err := load.New(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Patterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(pkgs, []*analysis.Analyzer{specpure.Analyzer}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("kernel reaches an irreversible effect: %s", d.Format(l.Fset))
	}
}
