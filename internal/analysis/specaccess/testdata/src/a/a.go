// Package a is specaccess golden testdata: captured-variable writes,
// raw captured slice/map traffic, bulk-view escapes, legitimate
// captured-scalar reads and suppressed findings.
package a

import "repro/mutls"

func capturedWrites(t *mutls.Thread, base mutls.Addr) {
	total := int64(0)
	count := 0
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		total += c.LoadInt64(base) // want "SPEC001"
		count++                    // want "SPEC001"
	})
	_ = total
	_ = count
}

func rawCollections(t *mutls.Thread, shared []int64, m map[int]int64) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		shared[idx] = 1 // want "SPEC002"
		v := m[idx]     // want "SPEC002"
		_ = v
	})
}

func rangeOverShared(t *mutls.Thread, shared []int64, base mutls.Addr) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		for _, v := range shared { // want "SPEC002"
			c.StoreInt64(base, v)
		}
	})
}

func viewEscape(t *mutls.Thread, base mutls.Addr) {
	var escaped []int64
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		buf := make([]int64, 8)
		c.LoadInt64s(base, buf)
		escaped = buf // want "SPEC001" "SPEC003"
	})
	_ = escaped
}

func cleanKernel(t *mutls.Thread, base mutls.Addr, n int) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		local := make([]int64, n)
		c.LoadInt64s(base, local)
		sum := int64(0)
		for _, v := range local { // local slice: clean
			sum += v
		}
		c.StoreInt64(base, sum) // captured scalar reads (base): clean
	})
}

func suppressed(t *mutls.Thread, base mutls.Addr, spill []int64) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		spill[idx] = c.LoadInt64(base) //lint:allow SPEC002 per-index disjoint scratch, read only after the join
	})
}
