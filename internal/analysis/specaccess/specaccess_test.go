package specaccess_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/specaccess"
)

func TestSpecaccess(t *testing.T) {
	analysistest.Run(t, specaccess.Analyzer, analysistest.TestData(t, "a"))
}
