// Package specaccess defines the SPEC001-SPEC003 analyzers of the
// speculation memory contract: code inside a kernel closure must route
// all shared memory traffic through the Thread accessors
// (Load*/Store*/bulk views), because Go-level accesses bypass the
// GlobalBuffer — they are invisible to conflict detection, survive
// rollback, and race with re-executions of the same chunk.
//
//	SPEC001  write to a variable captured from outside the kernel closure
//	SPEC002  raw element access (read or write) of a captured slice/map
//	SPEC003  a slice filled by a bulk Load view escapes to captured state
//
// Reading captured scalars (addresses, sizes, options) is allowed: those
// are the kernel's live-ins, fixed at fork time. Element access to
// captured Go slices/maps is not — on rollback the speculative thread's
// raw reads were never validated and raw writes are not undone.
package specaccess

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/kernelutil"
)

// Diagnostic codes.
const (
	CodeCapturedWrite = "SPEC001"
	CodeRawSlice      = "SPEC002"
	CodeViewEscape    = "SPEC003"
)

var Analyzer = &analysis.Analyzer{
	Name:  "specaccess",
	Doc:   "flag kernel-closure accesses that bypass the speculative buffer: captured-variable writes, raw captured slice/map element access, and bulk-view slices escaping the closure",
	Codes: []string{CodeCapturedWrite, CodeRawSlice, CodeViewEscape},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, k := range kernelutil.Find(pass) {
		checkKernel(pass, k)
	}
	return nil
}

func checkKernel(pass *analysis.Pass, k kernelutil.Kernel) {
	info := pass.TypesInfo
	lit := k.Lit

	// viewDst collects the local slice variables used as destinations of
	// bulk Load views inside this kernel (LoadWords, LoadInt64s, ...).
	viewDst := make(map[*types.Var]bool)

	// captured resolves an lvalue expression to the captured variable at
	// its base, if any: x, x.f, x[i], x.f[i]...
	captured := func(e ast.Expr) *types.Var {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.Ident:
				return kernelutil.CapturedVar(info, lit, v)
			case *ast.SelectorExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			default:
				return nil
			}
		}
	}

	// handledIdx marks index expressions already reported as write
	// targets so the read-position visit does not report them again.
	handledIdx := make(map[*ast.IndexExpr]bool)

	reportWrite := func(pos ast.Node, v *types.Var, via string) {
		pass.Reportf(pos.Pos(), CodeCapturedWrite,
			"speculative kernel writes captured variable %q%s; the write bypasses the speculation buffer (not undone on rollback, races with re-execution) — route it through the Thread accessors or move it after the join", v.Name(), via)
	}

	checkLHS := func(lhs ast.Expr) {
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if v := kernelutil.CapturedVar(info, lit, target); v != nil {
				reportWrite(lhs, v, "")
			}
		case *ast.IndexExpr:
			handledIdx[target] = true
			if v := captured(target.X); v != nil {
				if isSliceMapArray(info.TypeOf(target.X)) {
					pass.Reportf(lhs.Pos(), CodeRawSlice,
						"speculative kernel writes element of captured %s %q directly; shared-slice traffic must go through the Thread bulk accessors (StoreWords/StoreInt64s/...)", kindOf(info.TypeOf(target.X)), v.Name())
				} else if v := captured(target); v != nil {
					reportWrite(lhs, v, " through an index expression")
				}
			}
		case *ast.SelectorExpr:
			if v := captured(target); v != nil {
				reportWrite(lhs, v, " through field "+target.Sel.Name)
			}
		case *ast.StarExpr:
			if v := captured(target); v != nil {
				reportWrite(lhs, v, " through a pointer dereference")
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested literals are analyzed separately if they are kernels
			// themselves (indirect propagation); a plain nested closure
			// still executes inside the region, so keep walking into it.
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkLHS(lhs)
			}
			// SPEC003: a bulk-view destination slice assigned into
			// captured state escapes the closure.
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && viewDst[v] {
						if cv := captured(n.Lhs[i]); cv != nil {
							pass.Reportf(rhs.Pos(), CodeViewEscape,
								"bulk-view destination slice %q escapes the kernel closure into captured %q; view contents are only valid inside the speculation that loaded them", v.Name(), cv.Name())
						}
					}
				}
				// append(capturedSlice, ...) assigned anywhere is a write
				// to captured backing storage.
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" && len(call.Args) > 0 {
						if v := captured(call.Args[0]); v != nil && isSliceMapArray(info.TypeOf(call.Args[0])) {
							pass.Reportf(call.Pos(), CodeRawSlice,
								"speculative kernel appends to captured slice %q; the append mutates shared backing storage outside the speculation buffer", v.Name())
						}
					}
				}
			}
		case *ast.IncDecStmt:
			checkLHS(n.X)
		case *ast.RangeStmt:
			if v := captured(n.X); v != nil && isSliceMapArray(info.TypeOf(n.X)) {
				pass.Reportf(n.X.Pos(), CodeRawSlice,
					"speculative kernel ranges over captured %s %q; shared-collection reads bypass the speculation buffer (load through the Thread bulk accessors instead)", kindOf(info.TypeOf(n.X)), v.Name())
			}
		case *ast.IndexExpr:
			// Raw element reads of captured slices/maps. Writes are
			// reported at the AssignStmt; an IndexExpr in read position is
			// any remaining use.
			if handledIdx[n] {
				return true
			}
			if v := captured(n.X); v != nil && isSliceMapArray(info.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), CodeRawSlice,
					"speculative kernel reads element of captured %s %q directly; the read bypasses the speculation buffer (never validated at the join) — load through the Thread accessors", kindOf(info.TypeOf(n.X)), v.Name())
				return false
			}
		case *ast.CallExpr:
			if dst := bulkViewDst(info, n); dst != nil {
				viewDst[dst] = true
			}
		}
		return true
	})
}

// bulkViewDst returns the local slice variable a bulk Load view call
// fills (c.LoadWords(p, dst), c.LoadFloat64s(p, dst), ...).
func bulkViewDst(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	name := sel.Sel.Name
	if !strings.HasPrefix(name, "Load") || !strings.HasSuffix(name, "s") {
		return nil
	}
	if t := info.TypeOf(sel.X); t == nil || !kernelutil.IsThreadPtr(t) {
		return nil
	}
	id, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func isSliceMapArray(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Array:
		return true
	}
	return false
}

func kindOf(t types.Type) string {
	if t == nil {
		return "collection"
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Array:
		return "array"
	default:
		return "slice"
	}
}
