// Package analysis is a self-contained reimplementation of the shape of
// golang.org/x/tools/go/analysis, sized for this repository: an Analyzer
// owns a Run function over a type-checked package (a Pass) and reports
// position-anchored Diagnostics carrying a stable diagnostic code.
//
// The x/tools module is deliberately not a dependency — the repo builds
// offline with the standard library only — so the framework keeps the same
// conceptual API (Analyzer, Pass, Diagnostic, an analysistest-style golden
// harness under internal/analysis/analysistest, and a multichecker driver
// in cmd/mutls-vet) without the facts/vetx machinery this suite does not
// need. Analyzers written against it port to the real go/analysis API
// mechanically if the dependency ever becomes available.
//
// Suppression: a diagnostic is silenced by a
//
//	//lint:allow CODE reason...
//
// comment on the reported line or the line directly above it. The reason
// is mandatory: a bare //lint:allow CODE does not suppress, so every
// suppression in the tree documents why the flagged access is safe
// (typically: provably sequential-phase).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check of the mutls speculation
// contract.
type Analyzer struct {
	// Name is the analyzer's identifier (flag name in cmd/mutls-vet).
	Name string
	// Doc is the one-paragraph description printed by mutls-vet -list.
	Doc string
	// Codes lists the diagnostic codes the analyzer can emit, for -list
	// and the README table.
	Codes []string
	// NeedsInter marks analyzers that consume the interprocedural effect
	// index (Pass.Inter). The driver builds the index once per batch when
	// any selected analyzer needs it; fast mode (mutls-vet -fast) drops
	// these analyzers instead.
	NeedsInter bool
	// Run executes the check over one package and reports through
	// pass.Report.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic. The driver installs suppression
	// filtering and output formatting here.
	Report func(Diagnostic)

	// Inter carries the cross-package analysis state for analyzers with
	// NeedsInter — concretely an *effects.Index built over every package
	// in the batch (typed as any to keep this package dependency-free).
	// It is nil when the driver could not see the whole module (the go
	// vet unitchecker protocol runs one package at a time) or in fast
	// mode; consumers must degrade to per-package scope then.
	Inter any
}

// Reportf reports a diagnostic at pos with the given code.
func (p *Pass) Reportf(pos token.Pos, code, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Code:     code,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Code     string // stable code, e.g. "POLL001"
	Message  string
	Analyzer string
}

// Position resolves the diagnostic's file position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// String formats the diagnostic in the file:line:col: CODE: message form
// used by cmd/mutls-vet.
func (d Diagnostic) Format(fset *token.FileSet) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s: %s (%s)", p.Filename, p.Line, p.Column, d.Code, d.Message, d.Analyzer)
}
