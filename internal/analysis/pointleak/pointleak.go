// Package pointleak defines the POINT001/POINT002 analyzers: every
// Runtime.AllocPoint / AllocPoints must be paired with FreePoint /
// FreePoints on every return path. Fork/join point ids are a small
// fixed namespace (Options.MaxPoints); a leaked id permanently parks its
// per-point counters and profile, and once every id is live AllocPoint
// degrades to round-robin reuse, mixing profiles across runs (the PR 5
// cross-loop feedback bug class).
package pointleak

import (
	"repro/internal/analysis"
	"repro/internal/analysis/pairing"
)

// Diagnostic codes.
const (
	CodeLeak    = "POINT001"
	CodeDiscard = "POINT002"
)

var spec = pairing.Spec{
	Pairs: map[string]string{
		"AllocPoint":  "FreePoint",
		"AllocPoints": "FreePoints",
	},
	PkgPaths: map[string]bool{
		"repro/internal/core": true,
	},
	LeakCode:    CodeLeak,
	DiscardCode: CodeDiscard,
	Noun:        "fork/join point",
}

var Analyzer = &analysis.Analyzer{
	Name:  "pointleak",
	Doc:   "flag AllocPoint/AllocPoints calls whose point ids are not freed on every return path",
	Codes: []string{CodeLeak, CodeDiscard},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	return pairing.Run(pass, spec)
}
