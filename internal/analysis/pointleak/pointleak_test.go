package pointleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pointleak"
)

func TestPointleak(t *testing.T) {
	analysistest.Run(t, pointleak.Analyzer, analysistest.TestData(t, "a"))
}
