// Package a is pointleak golden testdata: leaked, discarded, deferred,
// transferred and suppressed fork/join point allocations.
package a

import "repro/internal/core"

func leakOnBranch(rt *core.Runtime, cond bool) int {
	p := rt.AllocPoint() // want "POINT001"
	if cond {
		return 0 // leaks p
	}
	rt.FreePoint(p)
	return 1
}

func discarded(rt *core.Runtime) {
	rt.AllocPoint() // want "POINT002"
}

func deferred(rt *core.Runtime) {
	p := rt.AllocPoint()
	defer rt.FreePoint(p)
}

func deferredBlock(rt *core.Runtime, n int) {
	ps := rt.AllocPoints(n)
	defer rt.FreePoints(ps)
}

func deferredClosure(rt *core.Runtime) {
	p := rt.AllocPoint()
	defer func() {
		rt.FreePoint(p)
	}()
}

func transferred(rt *core.Runtime) int {
	p := rt.AllocPoint()
	return p // caller owns the point: clean
}

func releasedOnAllPaths(rt *core.Runtime, cond bool) int {
	p := rt.AllocPoint()
	if cond {
		rt.FreePoint(p)
		return 0
	}
	rt.FreePoint(p)
	return 1
}

func suppressed(rt *core.Runtime, sink func(int)) {
	p := rt.AllocPoint() //lint:allow POINT001 run-long point, freed by the runtime Close path
	sink(p)
}

func riskyBetween(rt *core.Runtime, body func()) {
	p := rt.AllocPoint() // want "POINT001"
	body()               // may panic: the non-deferred FreePoint never runs
	rt.FreePoint(p)
}

func panicBetween(rt *core.Runtime, cond bool) {
	p := rt.AllocPoint() // want "POINT001"
	if cond {
		panic("boom")
	}
	rt.FreePoint(p)
}

func staticBetween(rt *core.Runtime) {
	p := rt.AllocPoint()
	work() // static call: assumed panic-free
	rt.FreePoint(p)
}

// loopCarried allocates a fresh point each iteration but frees only the
// last: the flow engine follows the back edge to the reacquire.
func loopCarried(rt *core.Runtime, n int) {
	p := -1
	for i := 0; i < n; i++ {
		p = rt.AllocPoint() // want "POINT001"
		touch(p)
	}
	rt.FreePoint(p)
}

// freedEachIteration pairs inside the loop body: clean.
func freedEachIteration(rt *core.Runtime, n int) {
	for i := 0; i < n; i++ {
		p := rt.AllocPoint()
		touch(p)
		rt.FreePoint(p)
	}
}

// earlyContinue leaks the point on the skip path; the next iteration
// reallocates while the previous point is still live.
func earlyContinue(rt *core.Runtime, n int, skip func(int) bool) {
	for i := 0; i < n; i++ {
		p := rt.AllocPoint() // want "POINT001"
		if skip(i) {
			continue
		}
		rt.FreePoint(p)
	}
}

// gotoRetry re-enters the allocation via goto without freeing first.
func gotoRetry(rt *core.Runtime) {
again:
	p := rt.AllocPoint() // want "POINT001"
	if shouldRetry(p) {
		goto again
	}
	rt.FreePoint(p)
}

// gotoRetryFreed releases before looping back: clean.
func gotoRetryFreed(rt *core.Runtime) {
again:
	p := rt.AllocPoint()
	if shouldRetry(p) {
		rt.FreePoint(p)
		goto again
	}
	rt.FreePoint(p)
}

func shouldRetry(int) bool { return false }

func touch(int) {}

func work() {}
