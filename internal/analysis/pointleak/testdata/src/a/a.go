// Package a is pointleak golden testdata: leaked, discarded, deferred,
// transferred and suppressed fork/join point allocations.
package a

import "repro/internal/core"

func leakOnBranch(rt *core.Runtime, cond bool) int {
	p := rt.AllocPoint() // want "POINT001"
	if cond {
		return 0 // leaks p
	}
	rt.FreePoint(p)
	return 1
}

func discarded(rt *core.Runtime) {
	rt.AllocPoint() // want "POINT002"
}

func deferred(rt *core.Runtime) {
	p := rt.AllocPoint()
	defer rt.FreePoint(p)
}

func deferredBlock(rt *core.Runtime, n int) {
	ps := rt.AllocPoints(n)
	defer rt.FreePoints(ps)
}

func deferredClosure(rt *core.Runtime) {
	p := rt.AllocPoint()
	defer func() {
		rt.FreePoint(p)
	}()
}

func transferred(rt *core.Runtime) int {
	p := rt.AllocPoint()
	return p // caller owns the point: clean
}

func releasedOnAllPaths(rt *core.Runtime, cond bool) int {
	p := rt.AllocPoint()
	if cond {
		rt.FreePoint(p)
		return 0
	}
	rt.FreePoint(p)
	return 1
}

func suppressed(rt *core.Runtime, sink func(int)) {
	p := rt.AllocPoint() //lint:allow POINT001 run-long point, freed by the runtime Close path
	sink(p)
}

func riskyBetween(rt *core.Runtime, body func()) {
	p := rt.AllocPoint() // want "POINT001"
	body()               // may panic: the non-deferred FreePoint never runs
	rt.FreePoint(p)
}

func panicBetween(rt *core.Runtime, cond bool) {
	p := rt.AllocPoint() // want "POINT001"
	if cond {
		panic("boom")
	}
	rt.FreePoint(p)
}

func staticBetween(rt *core.Runtime) {
	p := rt.AllocPoint()
	work() // static call: assumed panic-free
	rt.FreePoint(p)
}

func work() {}
