// Package pollcheck defines the POLL001 analyzer: loops inside
// speculative kernel bodies must reach a CheckPoint/CancelPoint poll.
//
// The paper inserts MUTLS_check_point inside loops "so the
// non-speculative thread never waits long"; in this reproduction a
// poll-free kernel loop additionally defeats squash (a rolled-back thread
// drains the whole chunk before noticing) and PR 7's cooperative
// cancellation (RunCtx deadlines unwind at polls). A loop is compliant
// when its body contains a CheckPoint/CancelPoint call, calls a
// same-package function that (transitively) polls, or when the driving
// call itself configures ForOptions.PollEvery, which sub-steps the kernel
// and polls between invocations.
//
// The check applies to the chunk/token drivers (For, ForRange, Reduce,
// ReduceFunc, ReduceFloat64, Pipeline) whose join protocol can commit a
// stopped chunk's prefix; tree-form regions (Tree.Body) are joined whole
// and are exempt.
package pollcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/kernelutil"
)

// Code is the diagnostic code of this analyzer.
const Code = "POLL001"

var Analyzer = &analysis.Analyzer{
	Name:  "pollcheck",
	Doc:   "flag loops in speculative kernel bodies with no reachable CheckPoint/CancelPoint poll",
	Codes: []string{Code},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	pollers := kernelutil.PollingFuncs(pass)
	for _, k := range kernelutil.Find(pass) {
		if !k.LoopDriver || k.DriverPolls {
			continue
		}
		checkBody(pass, pollers, k.Lit.Body)
	}
	return nil
}

// checkBody flags the outermost poll-free loops of a kernel body. Only
// loops that actually drive speculative work (any Thread method call or a
// call receiving a Thread) are reported; a pure-Go loop over locals has
// nothing for the protocol to interrupt mid-flight that a surrounding
// flagged loop would not already cover.
func checkBody(pass *analysis.Pass, pollers map[*types.Func]bool, body *ast.BlockStmt) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
		case *ast.RangeStmt:
			loopBody = loop.Body
		default:
			return true
		}
		if loopPolls(pass, pollers, loopBody) {
			// The loop reaches a poll every iteration: its nested loops
			// run between polls by construction (the mandelRows idiom —
			// per-row poll around a per-pixel inner loop), so stop here.
			return false
		}
		if usesThread(pass, loopBody) {
			pass.Reportf(n.Pos(), Code,
				"loop in speculative kernel has no reachable CheckPoint/CancelPoint poll; squash and cancellation stall until the chunk drains (poll in the loop, call a polling helper, or set ForOptions.PollEvery)")
			return false // do not double-report its inner loops
		}
		return true
	}
	ast.Inspect(body, visit)
}

// loopPolls reports whether the loop body contains a poll: a direct
// CheckPoint/CancelPoint call or a call to a same-package function that
// transitively polls.
func loopPolls(pass *analysis.Pass, pollers map[*types.Func]bool, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kernelutil.IsPollCall(pass.TypesInfo, call) {
			found = true
			return false
		}
		if fn := kernelutil.CalleeFunc(pass.TypesInfo, call); fn != nil && pollers[fn] {
			found = true
			return false
		}
		return true
	})
	return found
}

// usesThread reports whether the loop body performs speculative work: a
// method call on a Thread or a call passing a Thread argument.
func usesThread(pass *analysis.Pass, body *ast.BlockStmt) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := info.TypeOf(sel.X); t != nil && kernelutil.IsThreadPtr(t) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if t := info.TypeOf(arg); t != nil && kernelutil.IsThreadPtr(t) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
