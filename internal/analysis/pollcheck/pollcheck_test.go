package pollcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pollcheck"
)

func TestPollcheck(t *testing.T) {
	analysistest.Run(t, pollcheck.Analyzer, analysistest.TestData(t, "a"))
}
