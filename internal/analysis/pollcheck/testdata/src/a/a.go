// Package a is pollcheck golden testdata: kernels with poll-free loops
// (flagged), polled loops, PollEvery-exempt drivers, polling helpers,
// indirect kernels, tree-form regions and suppressed findings.
package a

import "repro/mutls"

func pollFree(t *mutls.Thread, base mutls.Addr, n int) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		for i := 0; i < n; i++ { // want "POLL001"
			c.StoreInt64(base, int64(i))
		}
	})
}

func polledOuter(t *mutls.Thread, base mutls.Addr, n int) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		for i := 0; i < n; i++ {
			c.CheckPoint()
			for j := 0; j < n; j++ { // inner runs between polls: clean
				c.StoreInt64(base, int64(j))
			}
		}
	})
}

func pollEveryExempt(t *mutls.Thread, base mutls.Addr, n int) {
	mutls.For(t, 4, mutls.ForOptions{PollEvery: 64}, func(c *mutls.Thread, idx int) {
		for i := 0; i < n; i++ { // driver polls between sub-steps: clean
			c.StoreInt64(base, int64(i))
		}
	})
}

func pollEveryVar(t *mutls.Thread, base mutls.Addr, n int) {
	opts := mutls.ForOptions{PollEvery: 32}
	mutls.For(t, 4, opts, func(c *mutls.Thread, idx int) {
		for i := 0; i < n; i++ { // options variable sets PollEvery: clean
			c.StoreInt64(base, int64(i))
		}
	})
}

// step polls, so loops calling it are compliant.
func step(c *mutls.Thread, base mutls.Addr, i int) {
	c.CheckPoint()
	c.StoreInt64(base, int64(i))
}

func helperPoll(t *mutls.Thread, base mutls.Addr, n int) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		for i := 0; i < n; i++ { // step polls transitively: clean
			step(c, base, i)
		}
	})
}

func indirectKernel(t *mutls.Thread, base mutls.Addr, n int) {
	explore := func(c *mutls.Thread) {
		for i := 0; i < n; i++ { // want "POLL001"
			c.StoreInt64(base, int64(i))
		}
	}
	mutls.For(t, 2, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		explore(c)
	})
}

func treeExempt(base mutls.Addr, n int) *mutls.Tree {
	tr := &mutls.Tree{}
	tr.Body = func(c *mutls.Thread, tt *mutls.TreeThread, task mutls.Task) {
		for i := 0; i < n; i++ { // tree regions join whole: clean
			c.StoreInt64(base, int64(i))
		}
	}
	return tr
}

func suppressed(t *mutls.Thread, base mutls.Addr) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		for i := 0; i < 4; i++ { //lint:allow POLL001 four iterations, drains immediately
			c.StoreInt64(base, int64(i))
		}
	})
}

func pureGoLoop(t *mutls.Thread, base mutls.Addr, n int) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		sum := 0
		for i := 0; i < n; i++ { // no Thread traffic inside: clean
			sum += i
		}
		c.StoreInt64(base, int64(sum))
	})
}
