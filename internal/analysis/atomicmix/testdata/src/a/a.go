// Package a is atomicmix golden testdata: mixed atomic/plain field
// access, gate-lock broadcast discipline and wake publish ordering.
package a

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits int64
	miss int64
	seq  int64
}

func mixed(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	return c.hits // want "ATOM001"
}

func disciplined(c *counters) int64 {
	atomic.AddInt64(&c.miss, 1)
	return atomic.LoadInt64(&c.miss)
}

func suppressedMix(c *counters) int64 {
	atomic.AddInt64(&c.seq, 1)
	return c.seq //lint:allow ATOM001 sequential phase: every worker joined above
}

type gate struct {
	mu   sync.Mutex
	cond sync.Cond
}

func (g *gate) bareBroadcast() {
	g.cond.Broadcast() // want "ATOM002"
}

func (g *gate) wake() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *gate) wakeDeferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cond.Broadcast()
}

func wakeNoPublish(g *gate) {
	g.wake() // want "ATOM003"
}

func wakePublished(g *gate, flag *atomic.Bool) {
	flag.Store(true)
	g.wake()
}

func wakePublishedLegacy(g *gate, word *uint64) {
	atomic.StoreUint64(word, 1)
	g.wake()
}

func suppressedWake(g *gate) {
	g.wake() //lint:allow ATOM003 init-time wake, no waiter exists yet
}
