// Package atomicmix defines the ATOM001-ATOM003 analyzers guarding the
// runtime's published-atomics discipline.
//
//	ATOM001  a variable/field is accessed both through sync/atomic and
//	         plainly — the plain access races with the atomic ones
//	ATOM002  Cond.Broadcast/Signal without the gate lock held around it
//	ATOM003  a waitGate-style wake() with no atomic publish before it
//
// The join handshake (internal/core) communicates through published
// atomics plus a waitGate: waiters spin on atomic predicates and park
// under the gate lock; wakers must store the new state atomically
// BEFORE taking the gate lock and broadcasting, or a waiter can check
// stale state, park, and miss the wakeup forever. ATOM002/ATOM003
// encode exactly that protocol; ATOM001 is the general mixed-access
// race that also breaks it.
//
// Neutral contexts do not count as plain accesses for ATOM001: slicing
// (re-slices the header), len/cap, composite-literal construction, and
// keyless range (reads only the header).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Diagnostic codes.
const (
	CodeMixed    = "ATOM001"
	CodeBareWake = "ATOM002"
	CodeNoStore  = "ATOM003"
)

var Analyzer = &analysis.Analyzer{
	Name:  "atomicmix",
	Doc:   "flag mixed atomic/plain access to the same variable and waitGate wake-ordering violations",
	Codes: []string{CodeMixed, CodeBareWake, CodeNoStore},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	checkMixed(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkWakeOrder(pass, fd.Body)
			}
		}
	}
	return nil
}

// --- ATOM001: mixed atomic and plain access ---

type access struct {
	pos  token.Pos
	line int
}

func checkMixed(pass *analysis.Pass) {
	info := pass.TypesInfo

	// Pass 1: variables reached through &x as an argument of a
	// sync/atomic function, and the spans of those argument expressions.
	atomicObjs := make(map[*types.Var]access)
	var atomicSpans []span
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				atomicSpans = append(atomicSpans, span{arg.Pos(), arg.End()})
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := baseVar(info, un.X); v != nil {
					if _, seen := atomicObjs[v]; !seen {
						atomicObjs[v] = access{arg.Pos(), pass.Fset.Position(arg.Pos()).Line}
					}
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: neutral spans — contexts where touching the variable does
	// not read or write its (element) value.
	var neutral []span
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SliceExpr:
				neutral = append(neutral, span{n.X.Pos(), n.X.End()})
			case *ast.CompositeLit:
				neutral = append(neutral, span{n.Pos(), n.End()})
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
						neutral = append(neutral, span{n.Pos(), n.End()})
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil { // for i := range x — header only
					neutral = append(neutral, span{n.X.Pos(), n.X.End()})
				}
			}
			return true
		})
	}
	covered := func(pos token.Pos, spans []span) bool {
		for _, s := range spans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Pass 3: any remaining use of an atomic variable is a plain access.
	reported := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			first, isAtomic := atomicObjs[v]
			if !isAtomic || reported[v] {
				return true
			}
			if covered(id.Pos(), atomicSpans) || covered(id.Pos(), neutral) {
				return true
			}
			reported[v] = true
			pass.Reportf(id.Pos(), CodeMixed,
				"%q is accessed with sync/atomic (line %d) and plainly here; the plain access races with the atomic ones — use one discipline for every access", v.Name(), first.line)
			return true
		})
	}
}

type span struct{ lo, hi token.Pos }

// isSyncAtomicCall reports whether call invokes a sync/atomic function
// (the address-taking style: atomic.AddInt64(&x, 1)).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// baseVar resolves the variable at the base of an lvalue path
// (x, x.f, x[i], x.f[i] → the field or variable actually indexed).
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			v, _ := info.Uses[x.Sel].(*types.Var)
			return v
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// --- ATOM002/ATOM003: waitGate wake ordering ---

// checkWakeOrder enforces, per function body, that Cond.Broadcast/Signal
// runs between Lock and Unlock (ATOM002) and that a wake() on a
// gate-shaped type has an atomic publish lexically before it (ATOM003).
func checkWakeOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var (
		locks, unlocks, publishes []token.Pos
		deferredUnlock            bool
	)
	type wakeCall struct {
		call *ast.CallExpr
		bare bool // Broadcast/Signal (ATOM002) vs wake() (ATOM003)
	}
	var wakes []wakeCall

	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if name := methodName(d.Call); name == "Unlock" {
				deferredUnlock = true
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch methodName(call) {
		case "Lock":
			locks = append(locks, call.Pos())
		case "Unlock":
			unlocks = append(unlocks, call.Pos())
		case "Broadcast", "Signal":
			if isCondMethod(info, call) {
				wakes = append(wakes, wakeCall{call, true})
			}
		case "wake":
			if isGateMethod(info, call) {
				wakes = append(wakes, wakeCall{call, false})
			}
		}
		if isSyncAtomicCall(info, call) || isAtomicValueMethod(info, call) {
			publishes = append(publishes, call.Pos())
		}
		return true
	})

	before := func(ps []token.Pos, pos token.Pos) bool {
		for _, p := range ps {
			if p < pos {
				return true
			}
		}
		return false
	}
	after := func(ps []token.Pos, pos token.Pos) bool {
		for _, p := range ps {
			if p > pos {
				return true
			}
		}
		return false
	}

	for _, w := range wakes {
		pos := w.call.Pos()
		if w.bare {
			if !before(locks, pos) || !(deferredUnlock || after(unlocks, pos)) {
				pass.Reportf(pos, CodeBareWake,
					"Cond.%s outside the gate lock; a waiter can check, miss the signal, then park forever — hold the lock around the broadcast (waitGate.wake does)", methodName(w.call))
			}
			continue
		}
		if !before(publishes, pos) {
			pass.Reportf(pos, CodeNoStore,
				"wake() with no atomic publish before it in this function; waiters' predicates read published atomics, so store the new state atomically before waking (or the wakeup is lost)")
		}
	}
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// isCondMethod reports whether call is a method of sync.Cond.
func isCondMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isGateMethod reports whether call is a method named wake on a struct
// type that embeds a sync.Cond (the waitGate shape).
func isGateMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if named, ok := ft.(*types.Named); ok &&
			named.Obj().Name() == "Cond" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
			return true
		}
	}
	return false
}

// isAtomicValueMethod reports whether call is a mutating method of an
// atomic.Int64-style value (Store/Add/Swap/CompareAndSwap/Or/And).
func isAtomicValueMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Store", "Add", "Swap", "CompareAndSwap", "Or", "And":
	default:
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
