// Package driver runs the mutls-vet analyzers over loaded packages and
// applies //lint:allow suppressions. It is the shared engine behind the
// cmd/mutls-vet binary and the analysistest harness.
package driver

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/leaseleak"
	"repro/internal/analysis/load"
	"repro/internal/analysis/pointleak"
	"repro/internal/analysis/pollcheck"
	"repro/internal/analysis/specaccess"
)

// Analyzers returns the full mutls-vet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		specaccess.Analyzer,
		pollcheck.Analyzer,
		pointleak.Analyzer,
		leaseleak.Analyzer,
		atomicmix.Analyzer,
	}
}

// ByName resolves a comma-separated selection against the suite.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over each package and returns the surviving
// diagnostics (suppressed ones removed unless keepSuppressed), sorted by
// position.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, keepSuppressed bool) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				if !keepSuppressed && sup.Suppressed(pkg.Fset, d.Pos, d.Code) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	if len(pkgs) > 0 {
		// All packages of one loader share a FileSet, so one sort orders
		// the whole batch.
		fset := pkgs[0].Fset
		sort.Slice(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return diags[i].Code < diags[j].Code
		})
	}
	return diags, nil
}
