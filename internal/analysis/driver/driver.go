// Package driver runs the mutls-vet analyzers over loaded packages and
// applies //lint:allow suppressions. It is the shared engine behind the
// cmd/mutls-vet binary and the analysistest harness.
package driver

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/effects"
	"repro/internal/analysis/leaseleak"
	"repro/internal/analysis/load"
	"repro/internal/analysis/pointleak"
	"repro/internal/analysis/pollcheck"
	"repro/internal/analysis/specaccess"
	"repro/internal/analysis/specpure"
)

// Analyzers returns the full mutls-vet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		specaccess.Analyzer,
		specpure.Analyzer,
		pollcheck.Analyzer,
		pointleak.Analyzer,
		leaseleak.Analyzer,
		atomicmix.Analyzer,
	}
}

// Fast filters out the analyzers that need the interprocedural effect
// index (mutls-vet -fast / make vet-fast): the remaining suite is purely
// per-package and skips the whole-batch summary fixpoint.
func Fast(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if !a.NeedsInter {
			out = append(out, a)
		}
	}
	return out
}

// ByName resolves a comma-separated selection against the suite.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Timing records one analyzer's total wall time across the batch. The
// synthetic "effects-index" entry charges the interprocedural summary
// build, which is shared by every NeedsInter analyzer.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run executes the analyzers over each package and returns the surviving
// diagnostics (suppressed ones removed unless keepSuppressed), sorted by
// position.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, keepSuppressed bool) ([]analysis.Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, analyzers, keepSuppressed)
	return diags, err
}

// RunTimed is Run plus a per-analyzer wall-time breakdown in suite order.
func RunTimed(pkgs []*load.Package, analyzers []*analysis.Analyzer, keepSuppressed bool) ([]analysis.Diagnostic, []Timing, error) {
	var timings []Timing
	elapsed := make(map[string]*time.Duration, len(analyzers)+1)
	track := func(name string) *time.Duration {
		if d, ok := elapsed[name]; ok {
			return d
		}
		d := new(time.Duration)
		elapsed[name] = d
		timings = append(timings, Timing{Name: name})
		return d
	}

	// Analyzers with NeedsInter share one effect index spanning the whole
	// batch, so cross-package helper chains resolve. Built lazily: a
	// selection without such analyzers (fast mode) never pays for it.
	var inter *effects.Index
	interFor := func() *effects.Index {
		if inter != nil {
			return inter
		}
		start := time.Now()
		srcs := make([]effects.Source, 0, len(pkgs))
		for _, pkg := range pkgs {
			srcs = append(srcs, effects.Source{Pkg: pkg.Types, Info: pkg.Info, Files: pkg.Files})
		}
		inter = effects.NewIndex(srcs, effects.WithExempt(specpure.Exempt))
		*track("effects-index") += time.Since(start)
		return inter
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if a.NeedsInter {
				pass.Inter = interFor()
			}
			pass.Report = func(d analysis.Diagnostic) {
				if !keepSuppressed && sup.Suppressed(pkg.Fset, d.Pos, d.Code) {
					return
				}
				diags = append(diags, d)
			}
			start := time.Now()
			err := a.Run(pass)
			*track(a.Name) += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	for i := range timings {
		timings[i].Elapsed = *elapsed[timings[i].Name]
	}
	if len(pkgs) > 0 {
		// All packages of one loader share a FileSet, so one sort orders
		// the whole batch.
		fset := pkgs[0].Fset
		sort.Slice(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return diags[i].Code < diags[j].Code
		})
	}
	return diags, timings, nil
}
