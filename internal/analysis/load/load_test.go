package load

import (
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot locates the repository root from this file's position.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestLoadModulePackages(t *testing.T) {
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "repro" {
		t.Fatalf("module path %q", l.ModulePath)
	}
	pkgs, err := l.Patterns([]string{"./mutls", "./internal/serve"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", pkg.Path, pkg.TypeErrors[0])
		}
		if pkg.Types == nil || !pkg.Types.Complete() {
			t.Errorf("%s: incomplete type information", pkg.Path)
		}
	}
}

func TestPatternsAll(t *testing.T) {
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Patterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("expected the full module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Errorf("%s: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}
}
