// Package load type-checks this module's packages for the mutls-vet
// analyzers without depending on golang.org/x/tools/go/packages.
//
// Module-internal packages (import paths under the module path from
// go.mod) are parsed and type-checked from source, recursively. Standard
// library imports are satisfied from compiler export data located with
// `go list -export` (the build cache keeps this fast and fully offline);
// if the go tool is unavailable the loader falls back to the stdlib
// source importer.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/core", or an ad hoc name)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects non-fatal type errors (analysis proceeds on a
	// best-effort package; the driver surfaces them).
	TypeErrors []error
}

// A Loader loads packages of one module.
type Loader struct {
	ModuleDir  string
	ModulePath string

	Fset *token.FileSet

	// IncludeTests adds in-package _test.go files to loaded packages.
	IncludeTests bool

	ctxt    build.Context
	pkgs    map[string]*Package // loaded module packages, by import path
	loading map[string]bool     // cycle detection

	gcImp     types.Importer // export-data importer for non-module imports
	srcImp    types.Importer // source importer fallback
	exportMu  map[string]string
	gcBroken  bool
	typeCheck types.Config
}

// New builds a loader for the module rooted at dir (go.mod gives the
// module path).
func New(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("load: no module line in %s/go.mod", dir)
	}
	l := &Loader{
		ModuleDir:  dir,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		ctxt:       build.Default,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		exportMu:   make(map[string]string),
	}
	// Pure-Go builds only: the simulated runtime has no cgo, and disabling
	// it keeps the source-importer fallback usable for net-style packages.
	l.ctxt.CgoEnabled = false
	l.gcImp = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

// lookupExport locates the compiler export data of a non-module package
// via `go list -export` (cached per path).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exportMu[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.ModuleDir
		cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOFLAGS=-mod=mod")
		out, err := cmd.Output()
		if err != nil {
			msg := err.Error()
			if ee, ok := err.(*exec.ExitError); ok {
				msg = strings.TrimSpace(string(ee.Stderr))
			}
			return nil, fmt.Errorf("go list -export %s: %s", path, msg)
		}
		file = strings.TrimSpace(string(out))
		l.exportMu[path] = file
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	return os.Open(file)
}

// Import implements types.Importer over the module: module-internal paths
// load from source, everything else from export data (source fallback).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		pkg, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if !l.gcBroken {
		pkg, err := l.gcImp.Import(path)
		if err == nil {
			return pkg, nil
		}
		// The go tool (or its cache) is unusable: degrade to the source
		// importer for the rest of the session.
		l.gcBroken = true
	}
	if l.srcImp == nil {
		l.srcImp = importer.ForCompiler(l.Fset, "source", nil)
	}
	return l.srcImp.Import(path)
}

func (l *Loader) isModulePath(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

func (l *Loader) dirOf(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// loadModulePackage loads (once) the module package with the given import
// path from source.
func (l *Loader) loadModulePackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOf(path)
	bp, err := l.ctxt.ImportDir(dir, 0)
	var files []string
	if err != nil {
		if _, noGo := err.(*build.NoGoError); !noGo {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	if bp != nil {
		files = append(files, bp.GoFiles...)
		if l.IncludeTests {
			files = append(files, bp.TestGoFiles...)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files in %s", path, dir)
	}
	sort.Strings(files)
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check parses and type-checks one package from the named files in dir.
func (l *Loader) check(path, dir string, names []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if tpkg == nil {
		return nil, fmt.Errorf("%s: type-check failed: %w", path, err)
	}
	return pkg, nil
}

// Dir loads the single package found in dir (ad hoc, outside the module's
// import namespace — used for analyzer testdata). The package may import
// module packages by their real paths.
func (l *Loader) Dir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	return l.check(filepath.Base(dir), dir, names)
}

// Patterns expands package patterns into loaded packages. Supported
// forms: "./..." (every package under the module), "./x/...", "./x", and
// fully-qualified module import paths.
func (l *Loader) Patterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := l.walk(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			root = strings.TrimPrefix(root, "./")
			if l.isModulePath(root) {
				root = strings.TrimPrefix(strings.TrimPrefix(root, l.ModulePath), "/")
			}
			all, err := l.walk(filepath.Join(l.ModuleDir, filepath.FromSlash(root)))
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		default:
			p := strings.TrimPrefix(pat, "./")
			if !l.isModulePath(p) {
				if p == "" || p == "." {
					p = l.ModulePath
				} else {
					p = l.ModulePath + "/" + strings.TrimSuffix(p, "/")
				}
			}
			add(p)
		}
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.loadModulePackage(p)
		if err != nil {
			// Pattern expansion may name directories with no buildable
			// files (e.g. a root holding only external tests); skip those,
			// fail on anything else.
			if strings.Contains(err.Error(), "no Go files") {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walk lists the import paths of every package directory under root,
// skipping testdata, hidden and underscore directories.
func (l *Loader) walk(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
