// Package a is specpure golden testdata: impure calls reached from
// speculative kernels through helper functions — the interprocedural
// hole in specaccess's lexical check — plus direct channel/sync traffic,
// I/O, non-idempotent calls, suppressed variants, and clean kernels.
//
// Deliberately NO case in this file is visible to specaccess: every
// violation hides behind a call boundary or a statement form specaccess
// does not inspect. specpure_test.go pins that with a zero-findings run
// of the old analyzer over this same package.
package a

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/mutls"
)

var hits int64

var mu sync.Mutex

// --- EFFECT003: captured shared memory mutated via a called helper ---

// scale is the seeded interprocedural violation: it writes through its
// slice parameter, so calling it on a captured slice mutates shared
// memory behind the speculation buffer's back.
func scale(dst []int64, k int64) {
	for i := range dst {
		dst[i] *= k
	}
}

func interprocWrite(t *mutls.Thread, data []int64) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		scale(data, 2) // want "EFFECT003"
	})
}

// outer adds a second call layer: kernel → outer → scale.
func outer(xs []int64) { scale(xs, 3) }

func twoDeep(t *mutls.Thread, data []int64) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		outer(data) // want "EFFECT003"
	})
}

// bump writes package-level shared state.
func bump() { hits++ }

func globalWrite(t *mutls.Thread) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		bump() // want "EFFECT003"
	})
}

// counter.Add writes through its receiver.
type counter struct{ n int64 }

func (ct *counter) Add(v int64) { ct.n += v }

func recvWrite(t *mutls.Thread, ct *counter) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		ct.Add(1) // want "EFFECT003"
	})
}

// --- EFFECT001: irreversible I/O reached from a kernel ---

func logProgress(i int) { fmt.Printf("done %d\n", i) }

func ioHelper(t *mutls.Thread) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		logProgress(idx) // want "EFFECT001"
	})
}

func directIO(t *mutls.Thread) {
	mutls.For(t, 2, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		os.WriteFile("/tmp/spec.out", nil, 0o644) // want "EFFECT001"
	})
}

// --- EFFECT002: channel/mutex/WaitGroup traffic inside a kernel ---

func notify(ch chan<- int, v int) { ch <- v }

func chanHelper(t *mutls.Thread, ch chan int) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		notify(ch, idx) // want "EFFECT002"
	})
}

func directSend(t *mutls.Thread, ch chan int) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		ch <- idx // want "EFFECT002"
	})
}

func lockHelper(t *mutls.Thread) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		mu.Lock() // want "EFFECT002"
		hotWork(idx)
		mu.Unlock() // want "EFFECT002"
	})
}

func waitHelper(t *mutls.Thread, wg *sync.WaitGroup) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		wg.Done() // want "EFFECT002"
	})
}

func spawns(t *mutls.Thread) {
	mutls.For(t, 2, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		go hotWork(idx) // want "EFFECT002"
	})
}

// --- EFFECT004: non-idempotent calls feeding speculative work ---

func seed() int64 { return time.Now().UnixNano() }

func timeHelper(t *mutls.Thread) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		_ = seed() // want "EFFECT004"
	})
}

func directRand(t *mutls.Thread) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		_ = rand.Intn(10) // want "EFFECT004"
	})
}

// --- suppressed variants: //lint:allow with a reason, no want ---

func suppressedIO(t *mutls.Thread) {
	mutls.For(t, 2, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		logProgress(idx) //lint:allow EFFECT001 debug-only tracing, stripped from production builds
	})
}

func suppressedSync(t *mutls.Thread, ch chan int) {
	mutls.For(t, 2, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		ch <- idx //lint:allow EFFECT002 buffered per-chunk and drained by the committer after the join
	})
}

func suppressedHelper(t *mutls.Thread, data []int64) {
	mutls.For(t, 2, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		scale(data, 2) //lint:allow EFFECT003 provably sequential-phase: this driver call runs with one chunk
	})
}

func suppressedTime(t *mutls.Thread) {
	mutls.For(t, 2, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		_ = seed() //lint:allow EFFECT004 wall-clock stamp is diagnostic-only, never committed
	})
}

// --- clean kernels: no diagnostics expected ---

func square(x int64) int64 { return x * x }

func hotWork(int) {}

// clean does pure arithmetic and mutates only kernel-local memory; the
// helper write lands in a slice the kernel itself allocated.
func clean(t *mutls.Thread) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		local := make([]int64, 8)
		scale(local, square(int64(idx)))
		hotWork(idx)
	})
}

// cleanScalar reads captured scalars (the kernel's live-ins): allowed.
func cleanScalar(t *mutls.Thread, base int64) {
	mutls.For(t, 4, mutls.ForOptions{}, func(c *mutls.Thread, idx int) {
		c.CheckPoint()
		_ = square(base + int64(idx))
	})
}
