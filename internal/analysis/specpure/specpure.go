// Package specpure defines the EFFECT001-EFFECT004 analyzers of the
// speculation purity contract: everything a speculative kernel executes
// must be squashable. A misspeculated chunk is rolled back by discarding
// its buffered state and re-executing — so any effect that escapes the
// speculation buffer (I/O, channel and lock traffic, helper-mediated
// writes to captured memory) or that computes differently on re-execution
// (time, rand) silently breaks the paper's correctness contract.
//
//	EFFECT001  irreversible I/O or syscall reached from a kernel
//	EFFECT002  channel/mutex/WaitGroup operation inside a kernel
//	EFFECT003  captured shared memory mutated via a called helper —
//	           the interprocedural hole in SPEC001's lexical check
//	EFFECT004  non-idempotent call (rand, time) feeding speculative work
//
// Unlike specaccess, which inspects the kernel closure lexically,
// specpure joins the interprocedural effect summaries of
// internal/analysis/effects at every call site in the kernel, so a write
// hidden two helpers deep is charged to the kernel that reaches it.
// Calls into the mutls runtime itself (Thread accessors, the driver
// packages) are exempt: they are the sanctioned way to touch shared
// state, and their internal locking is rollback-aware.
package specpure

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/effects"
	"repro/internal/analysis/kernelutil"
)

// Diagnostic codes.
const (
	CodeIO      = "EFFECT001"
	CodeSync    = "EFFECT002"
	CodeHelper  = "EFFECT003"
	CodeNonIdem = "EFFECT004"
)

var Analyzer = &analysis.Analyzer{
	Name:       "specpure",
	Doc:        "flag impure calls reached from speculative kernels via interprocedural effect summaries: irreversible I/O, channel/lock traffic, helper-mediated captured-memory writes, and non-idempotent (time/rand) calls that break re-execution",
	Codes:      []string{CodeIO, CodeSync, CodeHelper, CodeNonIdem},
	NeedsInter: true,
	Run:        run,
}

// exemptPkgs are the runtime's own packages: their entry points are the
// sanctioned speculation API (Thread accessors, drivers, stats), with
// rollback-aware internals. internal/bench and the examples are NOT
// exempt — their helpers are exactly the user code this analyzer audits.
var exemptPkgs = map[string]bool{
	"repro/mutls":                true,
	"repro/mutls/pool":           true,
	"repro/internal/core":        true,
	"repro/internal/gbuf":        true,
	"repro/internal/lbuf":        true,
	"repro/internal/mem":         true,
	"repro/internal/vclock":      true,
	"repro/internal/predict":     true,
	"repro/internal/stats":       true,
	"repro/internal/faultinject": true,
	"repro/internal/harness":     true,
}

func run(pass *analysis.Pass) error {
	idx, _ := pass.Inter.(*effects.Index)
	if idx == nil {
		// Per-package fallback (unitchecker protocol / fast callers that
		// still run us): summaries cover this package's own functions plus
		// the stdlib table; cross-package module helpers degrade to pure.
		idx = effects.NewIndex([]effects.Source{{
			Pkg: pass.Pkg, Info: pass.TypesInfo, Files: pass.Files,
		}}, effects.WithExempt(Exempt))
	}
	for _, k := range kernelutil.Find(pass) {
		checkKernel(pass, idx, k)
	}
	return nil
}

func checkKernel(pass *analysis.Pass, idx *effects.Index, k kernelutil.Kernel) {
	info := pass.TypesInfo
	lit := k.Lit

	// captured resolves an expression to the captured variable at its
	// base (x, x.f, x[i], *x, &x), if any.
	captured := func(e ast.Expr) *types.Var {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.Ident:
				return kernelutil.CapturedVar(info, lit, v)
			case *ast.SelectorExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.UnaryExpr:
				if v.Op != token.AND {
					return nil
				}
				e = v.X
			case *ast.SliceExpr:
				e = v.X
			default:
				return nil
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested closure still executes inside the region (indirect
			// kernels are found separately but walking twice only
			// re-reports at the same positions, which dedup below avoids
			// by reporting at call sites only once per Inspect).
			return true
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), CodeSync,
				"speculative kernel sends on a channel; the send is visible before the speculation commits and is not undone on rollback — move channel traffic after the join")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), CodeSync,
					"speculative kernel receives from a channel; a blocked speculative thread deadlocks its own squash and the receive consumes a value that re-execution needs again")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), CodeSync,
				"speculative kernel executes select; channel traffic inside a speculation is not undone on rollback")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), CodeSync,
				"speculative kernel spawns a goroutine; the goroutine outlives a squash and its work escapes rollback")
		case *ast.CallExpr:
			checkCall(pass, idx, info, lit, n, captured)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, idx *effects.Index, info *types.Info,
	lit *ast.FuncLit, call *ast.CallExpr, captured func(ast.Expr) *types.Var) {

	// close(ch) is channel lifecycle inside the speculation.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" {
				pass.Reportf(call.Pos(), CodeSync,
					"speculative kernel closes a channel; the close is observable before commit and re-execution double-closes")
			}
			return
		}
	}

	fn := kernelutil.CalleeFunc(info, call)
	if fn == nil {
		return // dynamic call: the effect index's trust boundary
	}
	if exemptCallee(fn) {
		return
	}
	sum := idx.Of(fn)
	name := callLabel(call, fn)

	if sum.Effects&effects.DoesIO != 0 {
		pass.Reportf(call.Pos(), CodeIO,
			"speculative kernel calls %s, which performs irreversible I/O (%s); a squashed chunk re-executes the call and the first attempt cannot be undone — buffer the output and emit it after the join", name, via(sum, effects.DoesIO, name))
	}
	if sum.Effects&effects.Blocks != 0 {
		pass.Reportf(call.Pos(), CodeSync,
			"speculative kernel calls %s, which blocks on channel/lock traffic (%s); a speculative thread that blocks can deadlock against its own squash and locks are not released on rollback", name, via(sum, effects.Blocks, name))
	}
	if sum.Effects&effects.NonIdempotent != 0 {
		pass.Reportf(call.Pos(), CodeNonIdem,
			"speculative kernel calls %s, which is non-idempotent (%s); a squashed chunk re-executes with a different result, so the committed state depends on rollback timing — hoist the value before the fork", name, via(sum, effects.NonIdempotent, name))
	}

	// EFFECT003: the helper mutates memory the kernel shares with the
	// sequential world — package-level state, or captured memory reached
	// through an argument or the method receiver.
	if sum.Effects&effects.WritesShared != 0 {
		pass.Reportf(call.Pos(), CodeHelper,
			"speculative kernel calls %s, which writes package-level shared state (%s); the write bypasses the speculation buffer — not undone on rollback, races with re-execution", name, via(sum, effects.WritesShared, name))
	}
	if sum.ParamWrites != 0 {
		for i, arg := range call.Args {
			if i >= 64 || sum.ParamWrites&(1<<i) == 0 {
				continue
			}
			if v := captured(arg); v != nil {
				pass.Reportf(call.Pos(), CodeHelper,
					"speculative kernel passes captured %q to %s, which writes through that parameter; the helper's write bypasses the speculation buffer (not undone on rollback, races with re-execution) — route it through the Thread accessors or move the call after the join", v.Name(), name)
			}
		}
	}
	if sum.RecvWrite {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if v := captured(sel.X); v != nil {
				pass.Reportf(call.Pos(), CodeHelper,
					"speculative kernel calls %s on captured %q, and the method writes through its receiver; the mutation bypasses the speculation buffer — not undone on rollback", name, v.Name())
			}
		}
	}
}

// Exempt reports the runtime's own API (any method on *Thread, every
// function in the runtime packages): the sanctioned path to shared
// state, with rollback-aware internals. Beyond skipping direct calls in
// checkCall, the driver installs it as the effect index's propagation
// stop (effects.WithExempt) so a helper that merely polls CheckPoint —
// which may sleep inside the fault injector — does not inherit Blocks.
func Exempt(fn *types.Func) bool {
	return exemptCallee(fn)
}

func exemptCallee(fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if kernelutil.IsThreadPtr(sig.Recv().Type()) {
			return true
		}
	}
	return fn.Pkg() != nil && exemptPkgs[fn.Pkg().Path()]
}

// via renders the summary's call chain for an effect, suppressing the
// degenerate "x via x" case.
func via(sum effects.Summary, e effects.Effect, name string) string {
	chain := sum.ViaFor(e)
	if chain == "" || chain == name {
		return "directly"
	}
	return "via " + chain
}

// callLabel renders the call for diagnostics: "pkg.Func" or "recv.Method".
func callLabel(call *ast.CallExpr, fn *types.Func) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return fn.Name()
}
