package specpure_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
	"repro/internal/analysis/specaccess"
	"repro/internal/analysis/specpure"
)

func TestSpecpure(t *testing.T) {
	analysistest.Run(t, specpure.Analyzer, analysistest.TestData(t, "a"))
}

// TestSpecaccessMissesCorpus is the other half of the acceptance
// criterion: every violation in the specpure corpus hides behind a call
// boundary (or a statement form specaccess never inspects), so the
// lexical analyzer must report NOTHING on the exact package where
// specpure reports fourteen findings. If specaccess ever learns to see
// one of these, move that case to its own corpus and keep this pin green.
func TestSpecaccessMissesCorpus(t *testing.T) {
	l, err := load.New(analysistest.ModuleRoot(t))
	if err != nil {
		t.Fatalf("load.New: %v", err)
	}
	pkg, err := l.Dir(analysistest.TestData(t, "a"))
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("corpus does not type-check: %v", pkg.TypeErrors[0])
	}
	diags, err := driver.Run([]*load.Package{pkg}, []*analysis.Analyzer{specaccess.Analyzer}, true)
	if err != nil {
		t.Fatalf("specaccess run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("specaccess unexpectedly sees an interprocedural case: %s", d.Format(pkg.Fset))
	}
}
