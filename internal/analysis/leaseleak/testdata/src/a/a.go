// Package a is leaseleak golden testdata: leaked, discarded, deferred,
// error-path-exempt and suppressed pool lease acquisitions.
package a

import (
	"context"

	"repro/mutls/pool"
)

func leakOnBranch(p *pool.Pool, cond bool) error {
	lease, err := p.Acquire(context.Background()) // want "LEASE001"
	if err != nil {
		return err // error path never granted the lease: exempt
	}
	if cond {
		return nil // leaks the lease
	}
	lease.Release()
	return nil
}

func discarded(p *pool.Pool) {
	p.Acquire(context.Background()) // want "LEASE002"
}

func deferred(p *pool.Pool) error {
	lease, err := p.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer lease.Release()
	return nil
}

func probe(p *pool.Pool) {
	lease, _ := p.Acquire(context.Background())
	if lease != nil {
		lease.Release() // handed straight back: clean
	}
}

func suppressed(p *pool.Pool, hold func(*pool.Lease)) {
	lease, _ := p.Acquire(context.Background()) //lint:allow LEASE001 held for the process lifetime, released on shutdown
	hold(lease)
}

func riskyFuncValue(p *pool.Pool, work func()) error {
	lease, err := p.Acquire(context.Background()) // want "LEASE001"
	if err != nil {
		return err
	}
	work() // may panic: the non-deferred Release below never runs
	lease.Release()
	return nil
}

type runner interface{ Run() }

func riskyInterface(p *pool.Pool, r runner) error {
	lease, err := p.Acquire(context.Background()) // want "LEASE001"
	if err != nil {
		return err
	}
	r.Run() // dynamic dispatch: unknown body, may panic
	lease.Release()
	return nil
}

func staticBetween(p *pool.Pool) error {
	lease, err := p.Acquire(context.Background())
	if err != nil {
		return err
	}
	helper() // static call: assumed panic-free, non-deferred Release is fine
	lease.Release()
	return nil
}

func helper() {}
