// Package a is leaseleak golden testdata: leaked, discarded, deferred,
// error-path-exempt and suppressed pool lease acquisitions.
package a

import (
	"context"

	"repro/mutls/pool"
)

func leakOnBranch(p *pool.Pool, cond bool) error {
	lease, err := p.Acquire(context.Background()) // want "LEASE001"
	if err != nil {
		return err // error path never granted the lease: exempt
	}
	if cond {
		return nil // leaks the lease
	}
	lease.Release()
	return nil
}

func discarded(p *pool.Pool) {
	p.Acquire(context.Background()) // want "LEASE002"
}

func deferred(p *pool.Pool) error {
	lease, err := p.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer lease.Release()
	return nil
}

func probe(p *pool.Pool) {
	lease, _ := p.Acquire(context.Background())
	if lease != nil {
		lease.Release() // handed straight back: clean
	}
}

func suppressed(p *pool.Pool, hold func(*pool.Lease)) {
	lease, _ := p.Acquire(context.Background()) //lint:allow LEASE001 held for the process lifetime, released on shutdown
	hold(lease)
}

func riskyFuncValue(p *pool.Pool, work func()) error {
	lease, err := p.Acquire(context.Background()) // want "LEASE001"
	if err != nil {
		return err
	}
	work() // may panic: the non-deferred Release below never runs
	lease.Release()
	return nil
}

type runner interface{ Run() }

func riskyInterface(p *pool.Pool, r runner) error {
	lease, err := p.Acquire(context.Background()) // want "LEASE001"
	if err != nil {
		return err
	}
	r.Run() // dynamic dispatch: unknown body, may panic
	lease.Release()
	return nil
}

func staticBetween(p *pool.Pool) error {
	lease, err := p.Acquire(context.Background())
	if err != nil {
		return err
	}
	helper() // static call: assumed panic-free, non-deferred Release is fine
	lease.Release()
	return nil
}

// loopCarried reacquires into the same variable each iteration while the
// previous lease is still held; only the last one is ever released. The
// old lexical engine saw "a Release after the Acquire" and passed it —
// the flow-sensitive engine follows the back edge.
func loopCarried(p *pool.Pool, n int, work func(*pool.Lease)) {
	var lease *pool.Lease
	for i := 0; i < n; i++ {
		lease, _ = p.Acquire(context.Background()) // want "LEASE001"
		work(lease)
	}
	if lease != nil {
		lease.Release()
	}
}

// releasedEachIteration is the paired version of loopCarried: clean.
func releasedEachIteration(p *pool.Pool, n int) {
	for i := 0; i < n; i++ {
		lease, err := p.Acquire(context.Background())
		if err != nil {
			continue
		}
		use(lease)
		lease.Release()
	}
}

// earlyContinue skips the release on the continue path, so the next
// iteration reacquires while still holding.
func earlyContinue(p *pool.Pool, n int, busy func(int) bool) {
	for i := 0; i < n; i++ {
		lease, err := p.Acquire(context.Background()) // want "LEASE001"
		if err != nil {
			continue
		}
		if busy(i) {
			continue // leaks this iteration's lease
		}
		lease.Release()
	}
}

// reassigned overwrites the held handle before releasing it; only the
// second lease is returned to the pool.
func reassigned(p *pool.Pool) {
	lease, _ := p.Acquire(context.Background()) // want "LEASE001"
	lease, _ = p.Acquire(context.Background())
	if lease != nil {
		lease.Release()
	}
}

// loopReleasedViaBreak holds within each iteration but releases on every
// exit, including the break path: clean under the flow engine.
func loopReleasedViaBreak(p *pool.Pool) {
	for {
		lease, err := p.Acquire(context.Background())
		if err != nil {
			return
		}
		if isDone() {
			lease.Release()
			break
		}
		lease.Release()
	}
}

func helper() {}

func use(*pool.Lease) {}

func isDone() bool { return true }
