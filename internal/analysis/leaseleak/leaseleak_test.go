package leaseleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/leaseleak"
)

func TestLeaseleak(t *testing.T) {
	analysistest.Run(t, leaseleak.Analyzer, analysistest.TestData(t, "a"))
}
