// Package leaseleak defines the LEASE001/LEASE002 analyzers: every
// pool.Acquire must Release its lease on every return path. A leaked
// lease pins one pooled runtime forever; with the pool's fixed capacity
// each leak is a permanent admission-slot loss, and after MaxRuntimes of
// them every Acquire returns ErrOverloaded.
package leaseleak

import (
	"repro/internal/analysis"
	"repro/internal/analysis/pairing"
)

// Diagnostic codes.
const (
	CodeLeak    = "LEASE001"
	CodeDiscard = "LEASE002"
)

var spec = pairing.Spec{
	Pairs: map[string]string{
		"Acquire": "Release",
	},
	PkgPaths: map[string]bool{
		"repro/mutls/pool": true,
	},
	LeakCode:    CodeLeak,
	DiscardCode: CodeDiscard,
	Noun:        "runtime lease",
}

var Analyzer = &analysis.Analyzer{
	Name:  "leaseleak",
	Doc:   "flag pool.Acquire calls whose leases are not released on every return path",
	Codes: []string{CodeLeak, CodeDiscard},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	return pairing.Run(pass, spec)
}
