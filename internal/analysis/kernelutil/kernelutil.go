// Package kernelutil locates speculative kernel closures — the function
// literals whose bodies run as speculative regions under the mutls
// drivers — and answers the contract questions the analyzers share:
// which closures are kernels, which variables they capture, and which
// functions poll a check point.
package kernelutil

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// driverFuncs maps the mutls driver functions that take kernel closures
// as arguments. Every func-literal argument whose first parameter is a
// *Thread is a kernel body for these callees.
var driverFuncs = map[string]bool{
	"For":           true,
	"ForRange":      true,
	"Reduce":        true,
	"ReduceFunc":    true,
	"ReduceFloat64": true,
	"Pipeline":      true,
}

// loopDrivers are the drivers whose regions follow the chunk/token resume
// protocol; pollcheck applies to their kernels (tree-form regions are
// joined whole, so their poll discipline differs).
var loopDrivers = map[string]bool{
	"For":           true,
	"ForRange":      true,
	"Reduce":        true,
	"ReduceFunc":    true,
	"ReduceFloat64": true,
	"Pipeline":      true,
}

// A Kernel is one speculative kernel closure.
type Kernel struct {
	// Lit is the closure literal whose body is the speculative region.
	Lit *ast.FuncLit
	// Driver names how the closure reaches speculation: "For",
	// "Pipeline", "Tree.Body", or "indirect" for a local closure called
	// from another kernel (the recursion pattern of the tree kernels).
	Driver string
	// LoopDriver reports a chunk/token-protocol driver (For/ForRange/
	// Reduce*/Pipeline), directly or via an indirect parent.
	LoopDriver bool
	// DriverPolls is true when the driving call configures driver-side
	// polling (ForOptions.PollEvery > 0), which sub-steps the kernel and
	// polls between invocations.
	DriverPolls bool
}

// IsThreadPtr reports whether t is *T for a named type called Thread
// (matching both core.Thread and the mutls alias).
func IsThreadPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Thread"
}

// isThreadFunc reports whether sig's first parameter is a *Thread.
func isThreadFunc(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && IsThreadPtr(sig.Params().At(0).Type())
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (nil for calls through function values, conversions and builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// Find returns every kernel closure in the pass's files: closure
// arguments of the driver functions, Tree.Body closures (assignments and
// composite literals), and — transitively — local closures those kernels
// call (the tree kernels' recursion helpers).
func Find(pass *analysis.Pass) []Kernel {
	info := pass.TypesInfo
	var kernels []Kernel
	seen := make(map[*ast.FuncLit]bool)
	add := func(k Kernel) {
		if k.Lit != nil && !seen[k.Lit] {
			seen[k.Lit] = true
			kernels = append(kernels, k)
		}
	}

	// closureOf maps local function-typed variables to the literal they
	// are bound to (v := func(){}, v = func(){}, var v = func(){}) so
	// indirect kernels can be followed; pollVars records option variables
	// initialized from a composite literal that sets PollEvery.
	closureOf := make(map[types.Object]*ast.FuncLit)
	pollVars := make(map[types.Object]bool)
	bind := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			closureOf[obj] = lit
		}
		if compositeSetsPollEvery(ast.Unparen(rhs)) {
			pollVars[obj] = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						bind(id, rhs)
					}
				}
			case *ast.ValueSpec:
				for i, rhs := range st.Values {
					if i < len(st.Names) {
						bind(st.Names[i], rhs)
					}
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil || !driverFuncs[fn.Name()] || !isThreadFunc(fn.Type().(*types.Signature)) {
					return true
				}
				polls := callSetsPollEvery(info, n, pollVars)
				for _, arg := range n.Args {
					lit, ok := ast.Unparen(arg).(*ast.FuncLit)
					if !ok {
						continue
					}
					sig, _ := info.Types[lit].Type.(*types.Signature)
					if !isThreadFunc(sig) {
						continue
					}
					add(Kernel{Lit: lit, Driver: fn.Name(), LoopDriver: loopDrivers[fn.Name()], DriverPolls: polls})
				}
			case *ast.AssignStmt:
				// tree.Body = func(...){...}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Body" || !isTreeExpr(info, sel.X) {
						continue
					}
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						add(Kernel{Lit: lit, Driver: "Tree.Body"})
					}
				}
			case *ast.CompositeLit:
				// mutls.Tree{Body: func(...){...}}
				named, ok := info.Types[n].Type.(*types.Named)
				if !ok || named.Obj().Name() != "Tree" {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Body" {
						if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
							add(Kernel{Lit: lit, Driver: "Tree.Body"})
						}
					}
				}
			}
			return true
		})
	}

	// Follow calls from kernels to local closures (fixpoint: recursion
	// helpers may call further helpers).
	for changed := true; changed; {
		changed = false
		for _, k := range kernels {
			parent := k
			ast.Inspect(parent.Lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				lit, ok := closureOf[obj]
				if !ok || seen[lit] {
					return true
				}
				add(Kernel{Lit: lit, Driver: "indirect", LoopDriver: parent.LoopDriver, DriverPolls: parent.DriverPolls})
				changed = true
				return true
			})
		}
	}
	return kernels
}

// isTreeExpr reports whether e's type is (a pointer to) a named type
// called Tree.
func isTreeExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tree"
}

// callSetsPollEvery reports whether a driver call's options argument sets
// PollEvery to a non-zero value — a ForOptions{PollEvery: n} literal in
// the call, or a local variable initialized from such a literal
// (pollVars, collected in the binding pre-pass).
func callSetsPollEvery(info *types.Info, call *ast.CallExpr, pollVars map[types.Object]bool) bool {
	for _, arg := range call.Args {
		if compositeSetsPollEvery(ast.Unparen(arg)) {
			return true
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && pollVars[obj] {
				return true
			}
		}
	}
	return false
}

// compositeSetsPollEvery reports whether e is a composite literal with a
// PollEvery field set to something other than the literal 0.
func compositeSetsPollEvery(e ast.Expr) bool {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "PollEvery" {
			continue
		}
		if lit, ok := ast.Unparen(kv.Value).(*ast.BasicLit); ok && lit.Value == "0" {
			return false
		}
		return true
	}
	return false
}

// CapturedVar reports whether id (resolved in the pass's type info) is a
// variable captured by lit: a non-field variable declared outside the
// literal's source extent (including package-level variables, which are
// equally shared). Constants and functions are never "captured".
func CapturedVar(info *types.Info, lit *ast.FuncLit, id *ast.Ident) *types.Var {
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return nil
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
		return nil // declared inside the closure (params included)
	}
	return obj
}

// PollingFuncs returns the package-level functions and methods of the
// pass whose bodies (transitively through same-package calls, bounded
// depth) call CheckPoint or CancelPoint on a Thread.
func PollingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	info := pass.TypesInfo
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
	}
	polls := make(map[*types.Func]bool)
	var check func(fn *types.Func, depth int) bool
	check = func(fn *types.Func, depth int) bool {
		if v, ok := polls[fn]; ok {
			return v
		}
		if depth > 3 {
			return false
		}
		body, ok := bodies[fn]
		if !ok {
			return IsPollCallName(fn.Name())
		}
		polls[fn] = false // cut recursion
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if IsPollCall(info, call) || check(callee, depth+1) {
				found = true
			}
			return true
		})
		polls[fn] = found
		return found
	}
	for fn := range bodies {
		check(fn, 0)
	}
	return polls
}

// IsPollCallName reports whether name is one of the poll entry points.
func IsPollCallName(name string) bool {
	return name == "CheckPoint" || name == "CancelPoint"
}

// IsPollCall reports whether call invokes Thread.CheckPoint or
// Thread.CancelPoint.
func IsPollCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !IsPollCallName(fn.Name()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsThreadPtr(sig.Recv().Type())
}

// CalleeFunc exposes callee resolution to the analyzers.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return calleeFunc(info, call)
}
