// Package cfg builds an intraprocedural control-flow graph over a
// go/ast function body, in the shape of golang.org/x/tools/go/cfg but
// stdlib-only, for the flow-sensitive analyzers in internal/analysis.
//
// Each Block holds the nodes that execute unconditionally once the block
// is entered: simple statements appear whole, while control statements
// contribute only the expressions evaluated before the branch (an if or
// for condition, a switch tag, a range operand, a select comm). Nested
// function literals are opaque values inside their enclosing node — the
// graph never descends into them; a client that cares analyzes them as
// their own bodies.
//
// Edges cover if/else, for (with and without condition and post), range,
// switch and type switch (including fallthrough and missing default),
// select, labeled break/continue, goto, return, and explicit panic
// calls (which edge to Exit: the function unwinds). A for with no
// condition gets no head→after edge — only break leaves it. Blocks made
// unreachable by terminators are kept in Blocks with no predecessors, so
// dataflow over the graph leaves them at bottom.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one straight-line run of nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the statements and expressions executed in order:
	// simple statements whole, conditions/tags/operands of the control
	// statement that ends the block.
	Nodes []ast.Node
	// Succs are the successor blocks. When Branch is non-nil there are
	// exactly two: Succs[0] is the branch-taken (true) edge and Succs[1]
	// the fall-through (false) edge.
	Succs []*Block
	// Branch is the controlling boolean condition when the block ends in
	// a two-way test (if condition, for condition); nil otherwise.
	Branch ast.Expr
	// comment names the block's role for String dumps ("for.head").
	comment string
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the synthetic exit block: every return, explicit panic and
	// the body's fall-through edge here. It holds no nodes.
	Exit *Block
}

// New builds the graph of body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: make(map[string]*labelInfo)}
	entry := b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit) // fall off the end
	return b.g
}

// Preds computes the predecessor lists of every block (indexed like
// Blocks). The graph itself stores only successors.
func (g *Graph) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	return preds
}

// String renders the graph topology for tests and debugging:
// one line per block with its comment, node count and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d[%s n=%d] ->", blk.Index, blk.comment, len(blk.Nodes))
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Comment returns the block's role label ("for.head", "if.then", ...).
func (b *Block) Comment() string { return b.comment }

type labelInfo struct {
	target *Block // goto / labeled-statement entry
	// brk/cont are the break/continue targets while the labeled loop or
	// switch is being built.
	brk, cont *Block
}

// branchTarget is one open break/continue scope.
type branchTarget struct {
	label     string
	brk, cont *Block // cont is nil for switch/select scopes
}

type builder struct {
	g      *Graph
	cur    *Block
	stack  []branchTarget
	fts    []*Block // fallthrough targets, innermost last
	labels map[string]*labelInfo
	// pendingLabel is the label of the labeled statement being built; the
	// next loop/switch/select consumes it for its break/continue scope.
	pendingLabel string
}

func (b *builder) newBlock(comment string) *Block {
	blk := &Block{Index: len(b.g.Blocks), comment: comment}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label of the enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns (creating on demand, for forward gotos) the entry
// block of the named label.
func (b *builder) labelBlock(name string) *Block {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	if li.target == nil {
		li.target = b.newBlock("label." + name)
	}
	return li.target
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.BadStmt, *ast.EmptyStmt:
	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// The function unwinds here: an edge to Exit and an
			// unreachable continuation. (A shadowed `panic` identifier
			// would over-approximate — acceptable for a may-analysis.)
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock("panic.dead")
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock("return.dead")
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Unknown statement kinds are treated as straight-line.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(label, false); t != nil {
			b.edge(b.cur, t)
		}
	case token.CONTINUE:
		if t := b.findTarget(label, true); t != nil {
			b.edge(b.cur, t)
		}
	case token.GOTO:
		if label != "" {
			b.edge(b.cur, b.labelBlock(label))
		}
	case token.FALLTHROUGH:
		if n := len(b.fts); n > 0 && b.fts[n-1] != nil {
			b.edge(b.cur, b.fts[n-1])
		}
	}
	b.cur = b.newBlock("branch.dead")
}

// findTarget resolves a break (wantCont=false) or continue (true) to its
// target block; label "" selects the innermost applicable scope.
func (b *builder) findTarget(label string, wantCont bool) *Block {
	for i := len(b.stack) - 1; i >= 0; i-- {
		t := b.stack[i]
		if label != "" && t.label != label {
			continue
		}
		if wantCont {
			if t.cont != nil {
				return t.cont
			}
			if label != "" {
				return nil // continue to a non-loop label: ill-formed
			}
			continue // unlabeled continue skips switch/select scopes
		}
		return t.brk
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Branch = s.Cond
	after := b.newBlock("if.after")
	then := b.newBlock("if.then")
	b.edge(cond, then) // Succs[0]: condition true
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els) // Succs[1]: condition false
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after) // Succs[1]: condition false
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	after := b.newBlock("for.after")
	body := b.newBlock("for.body")
	cont := head
	if s.Post != nil {
		cont = b.newBlock("for.post")
	}
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Branch = s.Cond
		b.edge(head, body)  // Succs[0]: condition true
		b.edge(head, after) // Succs[1]: condition false
	} else {
		b.edge(head, body) // for {}: leaves only via break
	}
	b.pushScope(label, after, cont)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, cont)
	b.popScope(label)
	if s.Post != nil {
		b.cur = cont
		b.add(s.Post)
		b.edge(cont, head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s.X)
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	after := b.newBlock("range.after")
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.edge(head, after)
	b.pushScope(label, after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.popScope(label)
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body, func(cc *ast.CaseClause, head *Block) {
		// Case expressions are evaluated while selecting, i.e. in the
		// head block.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body, func(*ast.CaseClause, *Block) {})
}

// caseClauses builds the shared switch/type-switch clause topology:
// head → every clause body, fallthrough chains to the next clause, every
// clause → after, head → after when there is no default.
func (b *builder) caseClauses(body *ast.BlockStmt, onCase func(*ast.CaseClause, *Block)) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock("switch.after")
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		onCase(cc, head)
		bodies[i] = b.newBlock("case.body")
		b.edge(head, bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.pushScope(label, after, nil)
	for i, cc := range clauses {
		var ft *Block
		if i+1 < len(bodies) {
			ft = bodies[i+1]
		}
		b.fts = append(b.fts, ft)
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
		b.fts = b.fts[:len(b.fts)-1]
	}
	b.popScope(label)
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock("select.after")
	b.pushScope(label, after, nil)
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm.body")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.popScope(label)
	// A select with no clauses blocks forever; keep after reachable only
	// through clauses (none here), matching the semantics.
	b.cur = after
}

func (b *builder) pushScope(label string, brk, cont *Block) {
	b.stack = append(b.stack, branchTarget{label: label, brk: brk, cont: cont})
	if label != "" {
		li := b.labels[label]
		if li == nil {
			li = &labelInfo{}
			b.labels[label] = li
		}
		li.brk, li.cont = brk, cont
	}
}

func (b *builder) popScope(label string) {
	b.stack = b.stack[:len(b.stack)-1]
	if label != "" {
		if li := b.labels[label]; li != nil {
			li.brk, li.cont = nil, nil
		}
	}
}

// isPanicCall reports whether e is a call of the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
