package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src (the body of `func f() { ... }`) and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// byComment returns all blocks whose comment equals c.
func byComment(g *Graph, c string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.comment == c {
			out = append(out, b)
		}
	}
	return out
}

// one returns the single block with comment c, failing otherwise.
func one(t *testing.T, g *Graph, c string) *Block {
	t.Helper()
	bs := byComment(g, c)
	if len(bs) != 1 {
		t.Fatalf("want one %q block, got %d\n%s", c, len(bs), g)
	}
	return bs[0]
}

// hasEdge reports a direct from→to edge.
func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reachable returns the set of block indices reachable from entry.
func reachable(g *Graph) map[int]bool {
	seen := map[int]bool{}
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Blocks[0])
	return seen
}

func TestIfElseShape(t *testing.T) {
	g := build(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x
	`)
	entry := g.Blocks[0]
	if entry.Branch == nil {
		t.Fatalf("entry should end in the if condition\n%s", g)
	}
	then, els := one(t, g, "if.then"), one(t, g, "if.else")
	if entry.Succs[0] != then || entry.Succs[1] != els {
		t.Fatalf("Succs[0] must be the true edge, Succs[1] the false edge\n%s", g)
	}
	after := one(t, g, "if.after")
	if !hasEdge(then, after) || !hasEdge(els, after) {
		t.Fatalf("both arms must rejoin at if.after\n%s", g)
	}
	if !hasEdge(after, g.Exit) {
		t.Fatalf("after must fall through to exit\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `
		x := 1
		if x > 0 {
			x = 2
		}
		_ = x
	`)
	entry, after := g.Blocks[0], one(t, g, "if.after")
	if len(entry.Succs) != 2 || entry.Succs[1] != after {
		t.Fatalf("false edge of an else-less if must go to after\n%s", g)
	}
}

func TestForLoopShape(t *testing.T) {
	g := build(t, `
		s := 0
		for i := 0; i < 10; i++ {
			s += i
		}
		_ = s
	`)
	head := one(t, g, "for.head")
	body := one(t, g, "for.body")
	post := one(t, g, "for.post")
	after := one(t, g, "for.after")
	if head.Branch == nil || head.Succs[0] != body || head.Succs[1] != after {
		t.Fatalf("head must branch body/after\n%s", g)
	}
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Fatalf("body→post→head back edge missing\n%s", g)
	}
}

func TestInfiniteForNeedsBreak(t *testing.T) {
	g := build(t, `
		for {
			x := 1
			_ = x
		}
	`)
	head := one(t, g, "for.head")
	after := one(t, g, "for.after")
	if hasEdge(head, after) {
		t.Fatalf("for{} must not edge head→after\n%s", g)
	}
	if reachable(g)[after.Index] {
		t.Fatalf("after of for{} without break must be unreachable\n%s", g)
	}
	// Exit is reachable only through... nothing: the function never returns.
	if reachable(g)[g.Exit.Index] {
		t.Fatalf("exit must be unreachable for a non-terminating loop\n%s", g)
	}

	g2 := build(t, `
		for {
			if bad() {
				break
			}
		}
	`)
	if !reachable(g2)[g2.Exit.Index] {
		t.Fatalf("break must make exit reachable\n%s", g2)
	}
}

func TestRangeShape(t *testing.T) {
	g := build(t, `
		s := 0
		for _, v := range xs {
			s += v
		}
		_ = s
	`)
	head := one(t, g, "range.head")
	body := one(t, g, "range.body")
	after := one(t, g, "range.after")
	if !hasEdge(head, body) || !hasEdge(head, after) || !hasEdge(body, head) {
		t.Fatalf("range must have head→{body,after} and body→head\n%s", g)
	}
	// The range operand is evaluated once, before the head.
	if len(g.Blocks[0].Nodes) == 0 {
		t.Fatalf("range operand must land in the predecessor block\n%s", g)
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g := build(t, `
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if stop() {
					break outer
				}
				if skip() {
					continue outer
				}
				work()
			}
		}
		done()
	`)
	heads := byComment(g, "for.head")
	afters := byComment(g, "for.after")
	posts := byComment(g, "for.post")
	if len(heads) != 2 || len(afters) != 2 || len(posts) != 2 {
		t.Fatalf("expected two nested loops\n%s", g)
	}
	// Outer loop is built first: heads[0]/afters[0]/posts[0] are outer.
	outerAfter, outerPost := afters[0], posts[0]
	var breakSrc, contSrc *Block
	for _, b := range g.Blocks {
		if b.comment != "if.then" {
			continue
		}
		if hasEdge(b, outerAfter) {
			breakSrc = b
		}
		if hasEdge(b, outerPost) {
			contSrc = b
		}
	}
	if breakSrc == nil {
		t.Fatalf("break outer must edge to the OUTER after\n%s", g)
	}
	if contSrc == nil {
		t.Fatalf("continue outer must edge to the OUTER post\n%s", g)
	}
	if breakSrc == contSrc {
		t.Fatalf("break and continue arms must be distinct blocks\n%s", g)
	}
	// And neither may edge to the inner loop's after/post.
	innerAfter, innerPost := afters[1], posts[1]
	if hasEdge(breakSrc, innerAfter) || hasEdge(contSrc, innerPost) {
		t.Fatalf("labeled branch must skip the inner loop\n%s", g)
	}
}

func TestGoto(t *testing.T) {
	g := build(t, `
		i := 0
	loop:
		i++
		if i < 10 {
			goto loop
		}
		_ = i
	`)
	lb := one(t, g, "label.loop")
	var gotoSrc *Block
	for _, b := range g.Blocks {
		if b != lb && hasEdge(b, lb) && b.comment == "if.then" {
			gotoSrc = b
		}
	}
	if gotoSrc == nil {
		t.Fatalf("goto must edge back to the label block\n%s", g)
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("fallthrough past the if must reach exit\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, `
		if early() {
			goto done
		}
		work()
	done:
		cleanup()
	`)
	lb := one(t, g, "label.done")
	then := one(t, g, "if.then")
	if !hasEdge(then, lb) {
		t.Fatalf("forward goto must edge to the (later-built) label block\n%s", g)
	}
	if !reachable(g)[lb.Index] {
		t.Fatalf("label block must be reachable\n%s", g)
	}
}

func TestSwitchShape(t *testing.T) {
	g := build(t, `
		switch v := val(); v {
		case 1:
			a()
		case 2:
			b()
			fallthrough
		case 3:
			c()
		}
		done()
	`)
	after := one(t, g, "switch.after")
	bodies := byComment(g, "case.body")
	if len(bodies) != 3 {
		t.Fatalf("want 3 case bodies\n%s", g)
	}
	head := g.Blocks[0]
	for _, cb := range bodies {
		if !hasEdge(head, cb) {
			t.Fatalf("head must edge to every case body\n%s", g)
		}
	}
	if !hasEdge(head, after) {
		t.Fatalf("switch without default must edge head→after\n%s", g)
	}
	if !hasEdge(bodies[1], bodies[2]) {
		t.Fatalf("fallthrough must chain case 2 → case 3\n%s", g)
	}
}

func TestSwitchWithDefault(t *testing.T) {
	g := build(t, `
		switch v {
		case 1:
			a()
		default:
			b()
		}
	`)
	head, after := g.Blocks[0], one(t, g, "switch.after")
	if hasEdge(head, after) {
		t.Fatalf("switch WITH default must not edge head→after\n%s", g)
	}
}

func TestSelectShape(t *testing.T) {
	g := build(t, `
		select {
		case v := <-ch1:
			use(v)
		case ch2 <- x:
			sent()
		default:
			idle()
		}
		done()
	`)
	head := g.Blocks[0]
	comms := byComment(g, "comm.body")
	after := one(t, g, "select.after")
	if len(comms) != 3 {
		t.Fatalf("want 3 comm bodies\n%s", g)
	}
	for _, cb := range comms {
		if !hasEdge(head, cb) {
			t.Fatalf("head must edge to every comm body\n%s", g)
		}
		if !hasEdge(cb, after) {
			t.Fatalf("every comm body must rejoin after\n%s", g)
		}
	}
	if hasEdge(head, after) {
		t.Fatalf("select never falls through head→after directly\n%s", g)
	}
	// The comm operation itself must be inside its clause body.
	if len(comms[0].Nodes) == 0 {
		t.Fatalf("comm statement must be a node of its clause block\n%s", g)
	}
}

func TestSelectBreak(t *testing.T) {
	g := build(t, `
		for {
			select {
			case <-ch:
				if quit() {
					break
				}
				work()
			}
		}
	`)
	// Unlabeled break inside select exits the SELECT, not the for loop.
	after := one(t, g, "select.after")
	forAfter := one(t, g, "for.after")
	var brk *Block
	for _, b := range g.Blocks {
		if b.comment == "if.then" {
			brk = b
		}
	}
	if brk == nil || !hasEdge(brk, after) {
		t.Fatalf("break in select must target select.after\n%s", g)
	}
	if hasEdge(brk, forAfter) {
		t.Fatalf("break in select must not exit the loop\n%s", g)
	}
}

func TestReturnAndPanicEdges(t *testing.T) {
	g := build(t, `
		if bad() {
			panic("boom")
		}
		if done() {
			return
		}
		work()
	`)
	exits := 0
	for _, b := range g.Blocks {
		if b != g.Exit && hasEdge(b, g.Exit) {
			exits++
		}
	}
	// panic arm, return arm, and the fall-through each reach exit.
	if exits != 3 {
		t.Fatalf("want 3 edges into exit, got %d\n%s", exits, g)
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	g := build(t, `
		return
	`)
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != g.Exit {
		t.Fatalf("return must edge straight to exit\n%s", g)
	}
	for _, b := range byComment(g, "return.dead") {
		if reachable(g)[b.Index] {
			t.Fatalf("code after return must be unreachable\n%s", g)
		}
	}
}

func TestTypeSwitchShape(t *testing.T) {
	g := build(t, `
		switch v := x.(type) {
		case int:
			useInt(v)
		case string:
			useStr(v)
		}
		done()
	`)
	bodies := byComment(g, "case.body")
	after := one(t, g, "switch.after")
	if len(bodies) != 2 {
		t.Fatalf("want 2 case bodies\n%s", g)
	}
	if !hasEdge(g.Blocks[0], after) {
		t.Fatalf("type switch without default must edge head→after\n%s", g)
	}
}

func TestDeferAndGoAreStraightLine(t *testing.T) {
	g := build(t, `
		defer cleanup()
		go worker()
		work()
	`)
	if len(g.Blocks[0].Nodes) != 3 {
		t.Fatalf("defer/go/call must all land in the entry block\n%s", g)
	}
	if !hasEdge(g.Blocks[0], g.Exit) {
		t.Fatalf("entry must fall through to exit\n%s", g)
	}
}

func TestNestedFuncLitIsOpaque(t *testing.T) {
	g := build(t, `
		f := func() {
			for {
			}
		}
		f()
	`)
	// The literal's infinite loop must not leak blocks into this graph.
	if len(byComment(g, "for.head")) != 0 {
		t.Fatalf("nested FuncLit bodies must not be traversed\n%s", g)
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("outer function must still reach exit\n%s", g)
	}
}

func TestContinueUnlabeled(t *testing.T) {
	g := build(t, `
		for i := 0; i < 10; i++ {
			if skip(i) {
				continue
			}
			work(i)
		}
	`)
	post := one(t, g, "for.post")
	then := one(t, g, "if.then")
	if !hasEdge(then, post) {
		t.Fatalf("continue must edge to for.post\n%s", g)
	}
}

func TestPredsInvertsSuccs(t *testing.T) {
	g := build(t, `
		if c() {
			a()
		}
		b()
	`)
	preds := g.Preds()
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range preds[s.Index] {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d→%d missing from Preds\n%s", b.Index, s.Index, g)
			}
		}
	}
}

func TestStringDump(t *testing.T) {
	g := build(t, `x := 1; _ = x`)
	s := g.String()
	if !strings.Contains(s, "entry") || !strings.Contains(s, "exit") {
		t.Fatalf("String must name entry and exit blocks: %q", s)
	}
}
