package gbuf

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Backend is the speculative-buffering contract every GlobalBuffer
// implementation satisfies. The runtime (internal/core) programs against
// this interface only; concrete organizations — the paper's static
// open-addressing maps, dynamically chained buckets, per-page bitmaps —
// are selected by name through the registry below.
//
// Semantics shared by all backends:
//
//   - Load/Store buffer word-granularity accesses against the arena.
//     Sub-word stores are tracked with byte marks so Commit applies exactly
//     the written bytes.
//   - Validate compares every read-set snapshot word with current memory.
//   - Commit applies the write set; callers serialize committers via the
//     join protocol.
//   - Finalize returns the buffer to its initial state in time proportional
//     to the data actually touched.
//   - MustStop reports whether the thread must wait to be joined at its
//     next check point (backends without conflict parking always report
//     false).
type Backend interface {
	// Load performs a buffered read of size bytes (1, 2, 4 or 8) at p.
	Load(p mem.Addr, size int) (uint64, Status)
	// Store performs a buffered write of size bytes (1, 2, 4 or 8) at p.
	Store(p mem.Addr, size int, v uint64) Status
	// LoadRange performs a buffered read of len(dst)/WORD consecutive
	// words at the word-aligned address p, filling dst with little-endian
	// bytes. It is exactly equivalent to a word-at-a-time Load loop —
	// identical read/write sets, statuses (the worst per-word outcome is
	// returned; a Full aborts the walk where the loop would roll back) and
	// counters — but pays the interface crossing, the set probes and the
	// data movement once per run instead of once per word. Misaligned
	// geometry (p or len(dst) not word-multiple) returns Misaligned.
	LoadRange(p mem.Addr, dst []byte) Status
	// StoreRange performs a buffered write of len(src)/WORD consecutive
	// words of little-endian bytes at the word-aligned address p, with the
	// same equivalence contract as LoadRange.
	StoreRange(p mem.Addr, src []byte) Status
	// StoreFill performs a buffered write of nWords consecutive copies of
	// the word v at the word-aligned address p — StoreRange without
	// materializing a source buffer (the memset-shaped store). Counters and
	// statuses are exactly those of the equivalent StoreRange.
	StoreFill(p mem.Addr, nWords int, v uint64) Status
	// Validate checks the read set against the arena.
	Validate() bool
	// PreValidate runs the same read-set walk as Validate without touching
	// any counter or producing an authoritative verdict. The runtime calls
	// it outside the commit serial section (before the join handshake's
	// lock); a later Validate or ValidateDirty under the lock delivers the
	// verdict that counts.
	PreValidate() bool
	// ValidateDirty is the lock-time half of the optimistic split: it
	// re-checks only the read-set runs for which dirty(base, nBytes)
	// reports a possible write since the PreValidate snapshot, and trusts
	// the pre-validation for the rest. It must only be called when
	// PreValidate returned true and the dirty oracle is sound (a run whose
	// pages were written after the snapshot must report dirty); its verdict
	// and counter effects are then identical to a full Validate at the same
	// instant.
	ValidateDirty(dirty func(base mem.Addr, nBytes int) bool) bool
	// Commit applies the write set to the arena as maximal runs. When mark
	// is non-nil it is invoked after each applied run with its address and
	// byte length — the write-then-stamp hook for dirty-page tables.
	Commit(mark func(base mem.Addr, nBytes int))
	// Finalize clears all buffered state for the next speculation.
	Finalize()
	// MustStop reports whether the thread must wait for its join.
	MustStop() bool
	// ReadSetSize returns the number of buffered read words.
	ReadSetSize() int
	// WriteSetSize returns the number of buffered written words.
	WriteSetSize() int
	// Counters exposes the backend's accumulated activity counters.
	Counters() *Counters
}

// Constructor builds a Backend over an arena from a (defaulted, but not yet
// validated) Config. Constructors must reject invalid sizing with an error
// rather than panicking or silently mis-sizing.
type Constructor func(arena *mem.Arena, cfg Config) (Backend, error)

var registry = map[string]Constructor{}

// Register adds a backend constructor under a unique name. It is intended
// to be called from init functions; duplicate names panic.
func Register(name string, ctor Constructor) {
	if name == "" || ctor == nil {
		panic("gbuf: Register with empty name or nil constructor")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("gbuf: backend %q registered twice", name))
	}
	registry[name] = ctor
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultBackend is the backend selected by an empty Config.Backend: the
// paper's open-addressing design.
const DefaultBackend = "openaddr"

// NewBackend dispatches cfg.Backend through the registry. An empty name
// selects DefaultBackend. Sizing fields are validated by the constructor;
// callers that want zero fields filled use Config.WithDefaults first.
func NewBackend(arena *mem.Arena, cfg Config) (Backend, error) {
	name := cfg.Backend
	if name == "" {
		name = DefaultBackend
	}
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("gbuf: unknown backend %q (registered: %v)", name, Backends())
	}
	return ctor(arena, cfg)
}

func init() {
	Register("openaddr", func(arena *mem.Arena, cfg Config) (Backend, error) {
		return New(arena, cfg)
	})
	Register("chain", newChainBackend)
	Register("bitmap", newBitmapBackend)
}

// Add accumulates another counter set into c (used to aggregate per-CPU
// backend counters into a run summary).
func (c *Counters) Add(o *Counters) {
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.ReadSetHits += o.ReadSetHits
	c.Conflicts += o.Conflicts
	c.Validations += o.Validations
	c.ValidationFail += o.ValidationFail
	c.Commits += o.Commits
	c.WordsCommitted += o.WordsCommitted
	c.BytesCommitted += o.BytesCommitted
}

// rangeGeometry validates a bulk access and returns its word count.
func rangeGeometry(p mem.Addr, n int) (nWords int, ok bool) {
	if n%mem.Word != 0 || !mem.Aligned(p, mem.Word) {
		return 0, false
	}
	return n / mem.Word, true
}

// worse folds per-word statuses into the range outcome: Full dominates
// Conflict dominates OK (Misaligned never reaches the fold — geometry is
// checked up front).
func worse(a, b Status) Status {
	if b > a {
		return b
	}
	return a
}

// onesWord is a fully-set mark word: eight fullMark bytes at once.
const onesWord = ^uint64(0)

// setFullMarks marks whole words as written, eight marks per store.
func setFullMarks(marks []byte) {
	for i := 0; i+mem.Word <= len(marks); i += mem.Word {
		binary.LittleEndian.PutUint64(marks[i:], onesWord)
	}
}

// allMarked8 reports whether one word's eight marks are all set (the
// single-compare form of allMarked for the word-granular hot paths).
func allMarked8(marks []byte) bool {
	return binary.LittleEndian.Uint64(marks) == onesWord
}

// allMarkedWords reports whether every mark of a word-multiple slice is
// set, stepping a word at a time (the bulk form of allMarked for run-sized
// mark scans on the commit path).
func allMarkedWords(marks []byte) bool {
	for len(marks) >= mem.Word {
		if binary.LittleEndian.Uint64(marks[:mem.Word]) != onesWord {
			return false
		}
		marks = marks[mem.Word:]
	}
	return true
}

// commitRun applies nWords fully-marked buffered words starting at base in
// one arena splice, then stamps the run. Callers have already checked the
// marks.
func commitRun(arena *mem.Arena, c *Counters, base mem.Addr, data []byte, mark func(mem.Addr, int)) {
	arena.WriteWords(base, data)
	c.WordsCommitted += uint64(len(data) / mem.Word)
	if mark != nil {
		mark(base, len(data))
	}
}

// mergeLoad implements the read-your-own-writes rule shared by every
// backend: the snapshot word overlaid with the bytes the write set has
// marked, sliced to the access. rWord is the read-set snapshot; wData and
// wMarks are the write-set word and its byte marks (both nil when the word
// was never written).
func mergeLoad(rWord, wData, wMarks []byte, off, size int) uint64 {
	var tmp [mem.Word]byte
	copy(tmp[:], rWord)
	if wData != nil {
		for i := off; i < off+size; i++ {
			if wMarks[i] == fullMark {
				tmp[i] = wData[i]
			}
		}
	}
	return readLE(tmp[off : off+size])
}

// commitWord merges one buffered word into the arena: whole words at once
// when all eight marks are set (the paper's -1 mark optimization), marked
// bytes individually otherwise, then stamps the word. Committers are
// serialized by the join protocol, so the read-modify-write is safe.
// Shared by every backend.
func commitWord(arena *mem.Arena, c *Counters, base mem.Addr, data, marks []byte, mark func(mem.Addr, int)) {
	if allMarked(marks) {
		arena.WriteWord(base, readLE(data[:mem.Word]))
		c.WordsCommitted++
	} else {
		w := arena.ReadWord(base)
		for i := 0; i < mem.Word; i++ {
			if marks[i] == fullMark {
				shift := uint(i) * 8
				w = (w &^ (0xFF << shift)) | uint64(data[i])<<shift
				c.BytesCommitted++
			}
		}
		arena.WriteWord(base, w)
	}
	if mark != nil {
		mark(base, mem.Word)
	}
}
