package gbuf

import (
	"testing"

	"repro/internal/mem"
)

// Micro-benchmarks guarding the per-access and per-range cost of every
// backend (run with -benchmem: the range hot paths must stay alloc-free in
// steady state). Each iteration moves 1 KiB (128 words) through the buffer;
// the word-loop variants are the pre-bulk cost for comparison.

const benchWords = 128 // 1 KiB

func benchBackend(b *testing.B, name string) Backend {
	b.Helper()
	arena, err := mem.NewArena(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	be, err := NewBackend(arena, Config{Backend: name}.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	return be
}

func forEachBenchBackend(b *testing.B, fn func(b *testing.B, be Backend)) {
	for _, name := range Backends() {
		name := name
		b.Run(name, func(b *testing.B) {
			be := benchBackend(b, name)
			b.SetBytes(benchWords * mem.Word)
			b.ReportAllocs()
			fn(b, be)
		})
	}
}

func BenchmarkStoreRange1KiB(b *testing.B) {
	src := make([]byte, benchWords*mem.Word)
	forEachBenchBackend(b, func(b *testing.B, be Backend) {
		be.StoreRange(64, src) // steady state: the set is warm after this
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := be.StoreRange(64, src); st != OK {
				b.Fatal(st)
			}
		}
	})
}

func BenchmarkStoreWordLoop1KiB(b *testing.B) {
	forEachBenchBackend(b, func(b *testing.B, be Backend) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < benchWords; k++ {
				if st := be.Store(64+mem.Addr(k*mem.Word), mem.Word, uint64(k)); st != OK {
					b.Fatal(st)
				}
			}
		}
	})
}

func BenchmarkLoadRange1KiB(b *testing.B) {
	dst := make([]byte, benchWords*mem.Word)
	forEachBenchBackend(b, func(b *testing.B, be Backend) {
		be.LoadRange(64, dst) // warm the read set
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := be.LoadRange(64, dst); st != OK {
				b.Fatal(st)
			}
		}
	})
}

func BenchmarkLoadWordLoop1KiB(b *testing.B) {
	forEachBenchBackend(b, func(b *testing.B, be Backend) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < benchWords; k++ {
				if _, st := be.Load(64+mem.Addr(k*mem.Word), mem.Word); st != OK {
					b.Fatal(st)
				}
			}
		}
	})
}

// BenchmarkSpeculationCycle1KiB measures the full store/validate/commit/
// finalize cycle with range accesses — the whole-speculation cost the
// range-aware walks are for.
func BenchmarkSpeculationCycle1KiB(b *testing.B) {
	buf := make([]byte, benchWords*mem.Word)
	forEachBenchBackend(b, func(b *testing.B, be Backend) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.LoadRange(4096, buf)
			be.StoreRange(64, buf)
			if !be.Validate() {
				b.Fatal("validation failed")
			}
			be.Commit(nil)
			be.Finalize()
		}
	})
}

// TestRangeHotPathAllocFree asserts the acceptance criterion directly:
// steady-state LoadRange/StoreRange allocate nothing on any backend.
func TestRangeHotPathAllocFree(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			arena, err := mem.NewArena(1 << 20)
			if err != nil {
				t.Fatal(err)
			}
			be, err := NewBackend(arena, Config{Backend: name}.WithDefaults())
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, benchWords*mem.Word)
			// Warm the sets: lazily allocated pages/entries settle here.
			be.StoreRange(64, buf)
			be.LoadRange(4096, buf)
			allocs := testing.AllocsPerRun(100, func() {
				if st := be.StoreRange(64, buf); st != OK {
					t.Fatal(st)
				}
				if st := be.LoadRange(4096, buf); st != OK {
					t.Fatal(st)
				}
			})
			if allocs != 0 {
				t.Fatalf("range hot path allocates %.1f objects per op", allocs)
			}
		})
	}
}
