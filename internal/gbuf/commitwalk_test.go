package gbuf

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// The tests in this file pin the batched validate+commit walk to the
// word-at-a-time reference it replaced: same verdicts, same arena contents,
// same counters, same set peaks — only fewer, larger arena operations.

// bufferedWord is one extracted (base, data, marks) tuple of a set.
type bufferedWord struct {
	base mem.Addr
	data [mem.Word]byte
	mark [mem.Word]byte
}

// setWords extracts a backend's read or write set as one slice of words,
// reaching into each organization's internals (same-package test).
func setWords(t testing.TB, be Backend, write bool) []bufferedWord {
	t.Helper()
	var out []bufferedWord
	add := func(base mem.Addr, data, marks []byte) {
		w := bufferedWord{base: base}
		copy(w.data[:], data)
		if marks != nil {
			copy(w.mark[:], marks)
		}
		out = append(out, w)
	}
	switch v := be.(type) {
	case *Buffer:
		m := &v.read
		ov := v.readOv
		if write {
			m = &v.write
			ov = v.writeOv
		}
		for k := 0; k < m.top; k++ {
			i := int(m.used[k])
			var marks []byte
			if m.mark != nil {
				marks = m.markWord(i)
			}
			add(m.addrs[i], m.word(i), marks)
		}
		for k := range ov {
			add(ov[k].base, ov[k].data[:], ov[k].mark[:])
		}
	case *chainBuffer:
		s := &v.read
		if write {
			s = &v.write
		}
		for i := range s.entries {
			add(s.entries[i].base, s.entries[i].data[:], s.entries[i].mark[:])
		}
	case *bitmapBuffer:
		s := &v.read
		if write {
			s = &v.write
		}
		v.forEachRun(s, func(base mem.Addr, data, marks []byte) bool {
			for w := 0; w < len(data); w += mem.Word {
				var m []byte
				if marks != nil {
					m = marks[w : w+mem.Word]
				}
				add(base+mem.Addr(w), data[w:w+mem.Word], m)
			}
			return true
		})
	default:
		t.Fatalf("setWords: unknown backend %T", be)
	}
	return out
}

// refValidate is the pre-batching word-at-a-time read-set check.
func refValidate(arena *mem.Arena, reads []bufferedWord) bool {
	for i := range reads {
		if binary.LittleEndian.Uint64(reads[i].data[:]) != arena.ReadWord(reads[i].base) {
			return false
		}
	}
	return true
}

// refCommit is the pre-batching word-at-a-time write-set copyback.
func refCommit(arena *mem.Arena, c *Counters, writes []bufferedWord) {
	c.Commits++
	for i := range writes {
		w := &writes[i]
		commitWord(arena, c, w.base, w.data[:], w.mark[:], nil)
	}
}

// refValidateWalk is the word-at-a-time validation as the pre-batching code
// ran it: traversing the live set organization, one arena word per step.
func refValidateWalk(be Backend, arena *mem.Arena) bool {
	switch v := be.(type) {
	case *Buffer:
		r := &v.read
		for k := 0; k < r.top; k++ {
			i := int(r.used[k])
			if binary.LittleEndian.Uint64(r.word(i)) != arena.ReadWord(r.addrs[i]) {
				return false
			}
		}
		for k := range v.readOv {
			e := &v.readOv[k]
			if binary.LittleEndian.Uint64(e.data[:]) != arena.ReadWord(e.base) {
				return false
			}
		}
	case *chainBuffer:
		for i := range v.read.entries {
			e := &v.read.entries[i]
			if binary.LittleEndian.Uint64(e.data[:]) != arena.ReadWord(e.base) {
				return false
			}
		}
	case *bitmapBuffer:
		return v.forEachRun(&v.read, func(base mem.Addr, data, _ []byte) bool {
			for w := 0; w < len(data); w += mem.Word {
				if binary.LittleEndian.Uint64(data[w:w+mem.Word]) != arena.ReadWord(base+mem.Addr(w)) {
					return false
				}
			}
			return true
		})
	}
	return true
}

// refCommitWalk is the word-at-a-time copyback as the pre-batching code ran
// it: traversing the live set organization, one commitWord per buffered
// word.
func refCommitWalk(be Backend, arena *mem.Arena, c *Counters) {
	c.Commits++
	switch v := be.(type) {
	case *Buffer:
		w := &v.write
		for k := 0; k < w.top; k++ {
			i := int(w.used[k])
			commitWord(arena, c, w.addrs[i], w.word(i), w.markWord(i), nil)
		}
		for k := range v.writeOv {
			e := &v.writeOv[k]
			commitWord(arena, c, e.base, e.data[:], e.mark[:], nil)
		}
	case *chainBuffer:
		for i := range v.write.entries {
			e := &v.write.entries[i]
			commitWord(arena, c, e.base, e.data[:], e.mark[:], nil)
		}
	case *bitmapBuffer:
		v.forEachRun(&v.write, func(base mem.Addr, data, marks []byte) bool {
			for w := 0; w < len(data); w += mem.Word {
				commitWord(arena, c, base+mem.Addr(w), data[w:w+mem.Word], marks[w:w+mem.Word], nil)
			}
			return true
		})
	}
}

// cloneArena duplicates an arena's contents (skipping the reserved nil word).
func cloneArena(t testing.TB, a *mem.Arena) *mem.Arena {
	t.Helper()
	b, err := mem.NewArena(a.Size())
	if err != nil {
		t.Fatal(err)
	}
	b.WriteBytes(mem.Addr(mem.Word), a.Snapshot(mem.Addr(mem.Word), a.Size()-mem.Word))
	return b
}

func sameArenas(t *testing.T, got, want *mem.Arena, what string) {
	t.Helper()
	for p := mem.Word; p < got.Size(); p += mem.Word {
		g, w := got.ReadWord(mem.Addr(p)), want.ReadWord(mem.Addr(p))
		if g != w {
			t.Fatalf("%s: arena word at %d = %#x, want %#x", what, p, g, w)
		}
	}
}

func testConfig(name string) Config {
	return Config{Backend: name, LogWords: 10, LogBuckets: 6, PageWords: 64}.WithDefaults()
}

// randomOps drives a backend with a mixed access pattern and returns whether
// any op reported Full (the caller skips comparisons after a rollback).
func randomOps(rng *rand.Rand, arena *mem.Arena, be Backend, nOps int) bool {
	scratch := make([]byte, 32*mem.Word)
	for op := 0; op < nOps; op++ {
		p := mem.Addr(mem.Word * (1 + rng.Intn(900)))
		switch rng.Intn(6) {
		case 0:
			size := 1 << uint(rng.Intn(4))
			off := rng.Intn(mem.Word/size) * size
			if be.Store(p+mem.Addr(off), size, rng.Uint64()) == Full {
				return true
			}
		case 1:
			n := (1 + rng.Intn(32)) * mem.Word
			rng.Read(scratch[:n])
			if be.StoreRange(p, scratch[:n]) == Full {
				return true
			}
		case 2:
			if be.StoreFill(p, 1+rng.Intn(32), rng.Uint64()) == Full {
				return true
			}
		case 3:
			size := 1 << uint(rng.Intn(4))
			off := rng.Intn(mem.Word/size) * size
			if _, st := be.Load(p+mem.Addr(off), size); st == Full {
				return true
			}
		case 4:
			n := (1 + rng.Intn(32)) * mem.Word
			if be.LoadRange(p, scratch[:n]) == Full {
				return true
			}
		case 5:
			// Non-speculative interference before the thread ever read the
			// word is invisible to validation: only touch virgin addresses.
			arena.WriteWord(mem.Addr(mem.Word*(901+rng.Intn(100))), rng.Uint64())
		}
	}
	return false
}

// TestBatchedCommitMatchesWordWalk: for every backend, the batched
// validate+commit walk produces the same verdict, the same final arena and
// the same counters as the word-at-a-time reference on the same sets.
func TestBatchedCommitMatchesWordWalk(t *testing.T) {
	for _, name := range Backends() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 40; trial++ {
				arena, _ := mem.NewArena(1 << 13)
				for p := mem.Word; p < arena.Size(); p += mem.Word {
					arena.WriteWord(mem.Addr(p), rng.Uint64())
				}
				be, err := NewBackend(arena, testConfig(name))
				if err != nil {
					t.Fatal(err)
				}
				if full := randomOps(rng, arena, be, 60); full {
					continue
				}
				reads := setWords(t, be, false)
				writes := setWords(t, be, true)
				refArena := cloneArena(t, arena)

				okBatched := be.Validate()
				if okRef := refValidate(refArena, reads); okBatched != okRef {
					t.Fatalf("trial %d: batched validate %v, reference %v", trial, okBatched, okRef)
				}
				before := *be.Counters()
				var refC Counters
				be.Commit(nil)
				refCommit(refArena, &refC, writes)
				sameArenas(t, arena, refArena, fmt.Sprintf("trial %d", trial))
				after := *be.Counters()
				if dw := after.WordsCommitted - before.WordsCommitted; dw != refC.WordsCommitted {
					t.Fatalf("trial %d: WordsCommitted %d, reference %d", trial, dw, refC.WordsCommitted)
				}
				if db := after.BytesCommitted - before.BytesCommitted; db != refC.BytesCommitted {
					t.Fatalf("trial %d: BytesCommitted %d, reference %d", trial, db, refC.BytesCommitted)
				}
				if after.Commits-before.Commits != 1 {
					t.Fatalf("trial %d: Commits advanced by %d", trial, after.Commits-before.Commits)
				}
			}
		})
	}
}

// TestStoreFillMatchesStoreRange: StoreFill is observationally identical to
// StoreRange with a materialized constant source — statuses, counters, set
// peaks and committed arena contents.
func TestStoreFillMatchesStoreRange(t *testing.T) {
	for _, name := range Backends() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 30; trial++ {
				arenaA, _ := mem.NewArena(1 << 13)
				arenaB := cloneArena(t, arenaA)
				fills, ranges := func() (Backend, Backend) {
					a, err := NewBackend(arenaA, testConfig(name))
					if err != nil {
						t.Fatal(err)
					}
					b, _ := NewBackend(arenaB, testConfig(name))
					return a, b
				}()
				src := make([]byte, 48*mem.Word)
				for op := 0; op < 40; op++ {
					p := mem.Addr(mem.Word * (1 + rng.Intn(900)))
					nWords := 1 + rng.Intn(48)
					v := rng.Uint64()
					for w := 0; w < nWords; w++ {
						binary.LittleEndian.PutUint64(src[w*mem.Word:], v)
					}
					stF := fills.StoreFill(p, nWords, v)
					stR := ranges.StoreRange(p, src[:nWords*mem.Word])
					if stF != stR {
						t.Fatalf("trial %d op %d: fill %v, range %v", trial, op, stF, stR)
					}
					if stF == Full {
						break
					}
				}
				if fills.WriteSetSize() != ranges.WriteSetSize() {
					t.Fatalf("trial %d: write-set peak %d vs %d", trial, fills.WriteSetSize(), ranges.WriteSetSize())
				}
				cf, cr := *fills.Counters(), *ranges.Counters()
				if cf != cr {
					t.Fatalf("trial %d: counters %+v vs %+v", trial, cf, cr)
				}
				fills.Commit(nil)
				ranges.Commit(nil)
				sameArenas(t, arenaA, arenaB, fmt.Sprintf("trial %d", trial))
			}
		})
	}
}

// TestValidateDirtySplit: the optimistic split's observable contract —
// PreValidate touches no counters, ValidateDirty skips runs its oracle
// calls clean and matches Validate's verdict/counters when the oracle is
// sound.
func TestValidateDirtySplit(t *testing.T) {
	for _, name := range Backends() {
		t.Run(name, func(t *testing.T) {
			arena, _ := mem.NewArena(1 << 13)
			arena.WriteWord(64, 41)
			be, err := NewBackend(arena, testConfig(name))
			if err != nil {
				t.Fatal(err)
			}
			if v, st := be.Load(64, 8); st != OK || v != 41 {
				t.Fatalf("load = %d, %v", v, st)
			}
			buf := make([]byte, 8*mem.Word)
			if st := be.LoadRange(512, buf); st != OK {
				t.Fatal(st)
			}
			c0 := *be.Counters()
			if !be.PreValidate() {
				t.Fatal("clean pre-validation failed")
			}
			if c1 := *be.Counters(); c1 != c0 {
				t.Fatalf("PreValidate touched counters: %+v -> %+v", c0, c1)
			}
			// A clean oracle skips every run; the verdict stands on the
			// pre-validation alone and Validate's counters advance.
			if !be.ValidateDirty(func(mem.Addr, int) bool { return false }) {
				t.Fatal("ValidateDirty(all clean) failed")
			}
			if c1 := *be.Counters(); c1.Validations != c0.Validations+1 || c1.ValidationFail != c0.ValidationFail {
				t.Fatalf("ValidateDirty counters: %+v", c1)
			}
			// Interference after the snapshot: a sound oracle (everything
			// dirty) re-checks and fails exactly like a full Validate.
			arena.WriteWord(64, 99)
			if be.PreValidate() {
				t.Fatal("pre-validation missed interference")
			}
			// An oracle calling the conflicting word clean makes
			// ValidateDirty trust the stale pre-validation: that is the
			// documented contract (soundness is the oracle's burden).
			if !be.ValidateDirty(func(base mem.Addr, n int) bool { return base+mem.Addr(n) <= 64 || base > 64 }) {
				t.Fatal("oracle-skipped run was re-checked anyway")
			}
			if be.ValidateDirty(func(mem.Addr, int) bool { return true }) {
				t.Fatal("ValidateDirty(all dirty) missed interference")
			}
			if be.Validate() {
				t.Fatal("Validate missed interference")
			}
			c2 := *be.Counters()
			if c2.ValidationFail < 2 {
				t.Fatalf("failed validations uncounted: %+v", c2)
			}
		})
	}
}

// BenchmarkCommitWalk prices the join serial section on a dense 4 KiB
// write set (512 contiguous words, the mandelbrot-row shape).
//
// The headline pair is serial-window-*: everything executed while the
// committing thread holds the join lock. Pre-PR that was a full word-at-
// a-time validate plus a word-at-a-time copyback; post-PR the validation
// ran optimistically before the lock, so the window is ValidateDirty over
// a clean dirty-table plus the run-spliced commit. The commit-*/validate-*
// pairs price the two halves in isolation. The acceptance bar is ≥ 2x
// fewer ns/op for the batched serialized window.
func BenchmarkCommitWalk(b *testing.B) {
	const nWords = 512
	const readBase = mem.Addr(1 << 12)  // 4 KiB read set...
	const writeBase = mem.Addr(1 << 13) // ...and a disjoint 4 KiB write set
	src := make([]byte, nWords*mem.Word)
	for i := range src {
		src[i] = byte(i * 7)
	}
	for _, name := range Backends() {
		b.Run(name, func(b *testing.B) {
			arena, _ := mem.NewArena(1 << 16)
			be, err := NewBackend(arena, testConfig(name))
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]byte, nWords*mem.Word)
			if st := be.LoadRange(readBase, dst); st != OK {
				b.Fatal(st)
			}
			if st := be.StoreRange(writeBase, src); st != OK {
				b.Fatal(st)
			}
			allClean := func(mem.Addr, int) bool { return false }
			b.Run("serial-window-batched", func(b *testing.B) {
				b.SetBytes(nWords * mem.Word)
				for i := 0; i < b.N; i++ {
					if !be.ValidateDirty(allClean) {
						b.Fatal("validation failed")
					}
					be.Commit(nil)
				}
			})
			b.Run("serial-window-word-reference", func(b *testing.B) {
				b.SetBytes(nWords * mem.Word)
				var c Counters
				for i := 0; i < b.N; i++ {
					if !refValidateWalk(be, arena) {
						b.Fatal("validation failed")
					}
					refCommitWalk(be, arena, &c)
				}
			})
			b.Run("commit-batched", func(b *testing.B) {
				b.SetBytes(nWords * mem.Word)
				for i := 0; i < b.N; i++ {
					be.Commit(nil)
				}
			})
			b.Run("commit-word-reference", func(b *testing.B) {
				b.SetBytes(nWords * mem.Word)
				var c Counters
				for i := 0; i < b.N; i++ {
					refCommitWalk(be, arena, &c)
				}
			})
			b.Run("validate-batched", func(b *testing.B) {
				b.SetBytes(nWords * mem.Word)
				for i := 0; i < b.N; i++ {
					if !be.Validate() {
						b.Fatal("validation failed")
					}
				}
			})
			b.Run("validate-word-reference", func(b *testing.B) {
				b.SetBytes(nWords * mem.Word)
				for i := 0; i < b.N; i++ {
					if !refValidateWalk(be, arena) {
						b.Fatal("validation failed")
					}
				}
			})
		})
	}
}
