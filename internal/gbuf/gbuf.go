// Package gbuf implements the MUTLS GlobalBuffer (paper §IV-G2): per-thread
// buffering of non-local (static, heap, non-speculative stack) memory
// accesses in statically allocated read-set and write-set hash maps.
//
// Each map follows the paper's design exactly: a byte array `buffer` that is
// a multiple of the WORD size, a pointer array `addresses`, and an integer
// stack `offsets`, all with a fixed maximum of N elements. The two arrays
// implement the hash map while the stack guarantees that validation, commit
// and finalization of threads touching little data stay fast. A byte array
// `mark` with the same size as `buffer` supports accesses smaller than a
// word. On a hash-slot conflict the access is diverted to a small temporary
// overflow buffer and the thread must wait to be joined at its next check
// point; if the overflow buffer fills up, the thread rolls back.
//
// That design is one of several read/write-set organizations the package
// offers: the Backend interface abstracts the buffering contract, and a
// registry of named constructors ("openaddr" — this file's Buffer —
// "chain" and "bitmap") lets the runtime select the organization per run.
// See backend.go, chain.go and bitmap.go.
package gbuf

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
)

// Status classifies the outcome of a buffered access.
type Status uint8

const (
	// OK: the access hit the main hash map.
	OK Status = iota
	// Conflict: the hash slot was taken by another address; the access was
	// absorbed by the overflow buffer and the thread must wait to be joined
	// at its next check point (paper: "the speculative thread will wait to
	// be joined at the next check point").
	Conflict
	// Full: the overflow buffer is exhausted; the thread must roll back.
	Full
	// Misaligned: the address is not aligned by the access size; the access
	// is unsupported and the thread must roll back.
	Misaligned
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case Conflict:
		return "Conflict"
	case Full:
		return "Full"
	case Misaligned:
		return "Misaligned"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

const fullMark = 0xFF

// ovEntry is one word parked in the temporary overflow buffer.
type ovEntry struct {
	base mem.Addr // word-aligned address
	data [mem.Word]byte
	mark [mem.Word]byte // write entries: which bytes were written
}

// hashMap is the paper's static-memory map: buffer/addresses/offsets/mark.
type hashMap struct {
	buf   []byte     // nWords * Word bytes of buffered data
	addrs []mem.Addr // nWords word-base addresses; 0 = empty slot
	mark  []byte     // nWords * Word byte marks (write set only)
	used  []int32    // stack of occupied slot indices
	top   int
	mask  uint64 // nWords - 1
}

func newHashMap(nWords int, withMarks bool) hashMap {
	m := hashMap{
		buf:   make([]byte, nWords*mem.Word),
		addrs: make([]mem.Addr, nWords),
		used:  make([]int32, nWords),
		mask:  uint64(nWords - 1),
	}
	if withMarks {
		m.mark = make([]byte, nWords*mem.Word)
	}
	return m
}

// slot computes the hash slot: the paper uses the lower bits of the address
// as the buffer offset and divides by WORD for the array index.
func (m *hashMap) slot(base mem.Addr) int {
	return int((uint64(base) >> 3) & m.mask)
}

// lookup returns the slot index if base is present, or -1.
func (m *hashMap) lookup(base mem.Addr) int {
	i := m.slot(base)
	if m.addrs[i] == base {
		return i
	}
	return -1
}

// insert claims a slot for base. It returns (index, true) on success and
// (-1, false) when the slot is occupied by a different address.
func (m *hashMap) insert(base mem.Addr) (int, bool) {
	i := m.slot(base)
	switch m.addrs[i] {
	case base:
		return i, true
	case mem.NilAddr:
		m.addrs[i] = base
		m.used[m.top] = int32(i)
		m.top++
		return i, true
	}
	return -1, false
}

func (m *hashMap) word(i int) []byte { return m.buf[i*mem.Word : i*mem.Word+mem.Word] }

func (m *hashMap) markWord(i int) []byte { return m.mark[i*mem.Word : i*mem.Word+mem.Word] }

// reset clears exactly the used slots (the offsets-stack trick that keeps
// finalization proportional to the data touched, not the map size).
func (m *hashMap) reset() {
	for k := 0; k < m.top; k++ {
		i := m.used[k]
		m.addrs[i] = mem.NilAddr
		w := m.word(int(i))
		for b := range w {
			w[b] = 0
		}
		if m.mark != nil {
			mw := m.markWord(int(i))
			for b := range mw {
				mw[b] = 0
			}
		}
	}
	m.top = 0
}

// Counters accumulates GlobalBuffer activity for the statistics module.
type Counters struct {
	Loads          uint64 // buffered load operations
	Stores         uint64 // buffered store operations
	ReadSetHits    uint64 // loads served from read or write set
	Conflicts      uint64 // accesses diverted to the overflow buffer
	Validations    uint64 // Validate calls
	ValidationFail uint64 // Validate calls that found a conflict
	Commits        uint64 // Commit calls
	WordsCommitted uint64 // whole words applied on the fast path
	BytesCommitted uint64 // bytes applied on the marked-byte slow path
}

// Buffer is one speculative thread's GlobalBuffer: a read set, a write set
// and the shared arena the sets validate against and commit into.
type Buffer struct {
	arena    *mem.Arena
	read     hashMap
	write    hashMap
	readOv   []ovEntry
	writeOv  []ovEntry
	ovCap    int
	mustStop bool
	// anyPartial is sticky: set by the first sub-word store of the
	// speculation. While false every buffered word is provably fully
	// marked, so the commit walk — the serialized section — skips mark
	// scanning entirely.
	anyPartial bool
	C          Counters
}

// Config selects and sizes a GlobalBuffer backend. Only the fields of the
// selected backend matter; the rest are ignored. Defaulting is explicit:
// the core/mutls layers pass configs through WithDefaults, which fills
// zero fields; the constructors themselves (New, NewBackend) take every
// field literally and only validate it.
type Config struct {
	// Backend names the buffering organization: "openaddr" (the paper's
	// static open-addressing maps, the default), "chain" (dynamically
	// chained buckets, never parks on conflicts) or "bitmap" (per-page
	// word-granularity sets with lazy page allocation). Empty selects
	// DefaultBackend.
	Backend string

	// LogWords sizes the openaddr maps: 1<<LogWords words each.
	LogWords int
	// OverflowCap is the openaddr limit of parked words per set before the
	// thread must roll back. Through WithDefaults, zero selects the
	// default and NoOverflow disables conflict parking entirely (the
	// first hash conflict returns Full); the constructors treat both 0
	// and NoOverflow as "no overflow slots".
	OverflowCap int

	// LogBuckets sizes the chain backend's bucket-head array:
	// 1<<LogBuckets heads.
	LogBuckets int

	// PageWords is the bitmap backend's page size in words (a power of
	// two). Pages are allocated lazily on first touch.
	PageWords int
}

// DefaultConfig returns the size used by the benchmarks: the openaddr
// backend with 2^16 words (512 KiB of buffered data per set) and 64
// overflow slots.
func DefaultConfig() Config { return Config{}.WithDefaults() }

// NoOverflow as OverflowCap requests a buffer with no overflow parking at
// all: the first hash conflict returns Full and the thread rolls back.
// (A plain 0 selects the default capacity instead.)
const NoOverflow = -1

// WithDefaults fills every zero sizing field with its backend's default
// (openaddr: 2^16 words, 64 overflow slots; chain: 2^12 buckets; bitmap:
// 512-word pages) and an empty Backend with DefaultBackend. Validation
// still happens at construction: explicit out-of-range values are errors,
// never silently clamped.
func (c Config) WithDefaults() Config {
	if c.Backend == "" {
		c.Backend = DefaultBackend
	}
	if c.LogWords == 0 {
		c.LogWords = 16
	}
	if c.OverflowCap == 0 {
		c.OverflowCap = 64 // NoOverflow (-1) stays: parking disabled
	}
	if c.LogBuckets == 0 {
		c.LogBuckets = 12
	}
	if c.PageWords == 0 {
		c.PageWords = 512
	}
	return c
}

// New creates the paper's open-addressing GlobalBuffer over the given
// arena (the "openaddr" backend).
func New(arena *mem.Arena, cfg Config) (*Buffer, error) {
	if cfg.LogWords < 1 || cfg.LogWords > 30 {
		return nil, fmt.Errorf("gbuf: LogWords %d out of range [1,30]", cfg.LogWords)
	}
	if cfg.OverflowCap == NoOverflow {
		cfg.OverflowCap = 0
	}
	if cfg.OverflowCap < 0 {
		return nil, fmt.Errorf("gbuf: negative overflow capacity %d", cfg.OverflowCap)
	}
	n := 1 << cfg.LogWords
	return &Buffer{
		arena:   arena,
		read:    newHashMap(n, false),
		write:   newHashMap(n, true),
		readOv:  make([]ovEntry, 0, cfg.OverflowCap),
		writeOv: make([]ovEntry, 0, cfg.OverflowCap),
		ovCap:   cfg.OverflowCap,
	}, nil
}

// MustStop reports whether an overflow entry is in use, which obliges the
// thread to wait for its join at the next check point.
func (b *Buffer) MustStop() bool { return b.mustStop }

// Counters exposes the accumulated activity counters.
func (b *Buffer) Counters() *Counters { return &b.C }

// ReadSetSize returns the number of buffered read words (map + overflow).
func (b *Buffer) ReadSetSize() int { return b.read.top + len(b.readOv) }

// WriteSetSize returns the number of buffered written words (map + overflow).
func (b *Buffer) WriteSetSize() int { return b.write.top + len(b.writeOv) }

// findWriteOv returns the overflow write entry for base, or nil.
func (b *Buffer) findWriteOv(base mem.Addr) *ovEntry {
	for i := range b.writeOv {
		if b.writeOv[i].base == base {
			return &b.writeOv[i]
		}
	}
	return nil
}

// findReadOv returns the overflow read entry for base, or nil.
func (b *Buffer) findReadOv(base mem.Addr) *ovEntry {
	for i := range b.readOv {
		if b.readOv[i].base == base {
			return &b.readOv[i]
		}
	}
	return nil
}

// writeEntry locates (data, marks) for base in the write set, or nil.
func (b *Buffer) writeEntry(base mem.Addr) (data, marks []byte) {
	if i := b.write.lookup(base); i >= 0 {
		return b.write.word(i), b.write.markWord(i)
	}
	if e := b.findWriteOv(base); e != nil {
		return e.data[:], e.mark[:]
	}
	return nil, nil
}

// readWordEntry returns the read-set snapshot word for base, creating it
// from the arena on first touch. ok=false means the overflow buffer is full.
func (b *Buffer) readWordEntry(base mem.Addr) (word []byte, st Status) {
	if i := b.read.lookup(base); i >= 0 {
		b.C.ReadSetHits++
		return b.read.word(i), OK
	}
	if e := b.findReadOv(base); e != nil {
		b.C.ReadSetHits++
		return e.data[:], OK
	}
	if i, ok := b.read.insert(base); ok {
		w := b.read.word(i)
		binary.LittleEndian.PutUint64(w, b.arena.ReadWord(base))
		return w, OK
	}
	// Hash conflict: park in the temporary buffer.
	b.C.Conflicts++
	if len(b.readOv) >= b.ovCap {
		return nil, Full
	}
	var e ovEntry
	e.base = base
	binary.LittleEndian.PutUint64(e.data[:], b.arena.ReadWord(base))
	b.readOv = append(b.readOv, e)
	b.mustStop = true
	return b.readOv[len(b.readOv)-1].data[:], Conflict
}

// Load performs a buffered read of size bytes (1, 2, 4 or 8) at p, returning
// the little-endian value. Reads come from the write set if fully written
// there, otherwise from the read set (loading from the arena on first
// access) merged with any marked written bytes (paper's read-your-own-writes
// rule for sub-word data).
func (b *Buffer) Load(p mem.Addr, size int) (uint64, Status) {
	if !validSize(size) || !mem.Aligned(p, size) {
		return 0, Misaligned
	}
	b.C.Loads++
	base := mem.WordBase(p)
	off := mem.WordOffset(p)
	wData, wMarks := b.writeEntry(base)
	if wData != nil && allMarked(wMarks[off:off+size]) {
		b.C.ReadSetHits++
		return readLE(wData[off : off+size]), OK
	}
	// Need the underlying word: read set (snapshotting it for validation).
	rWord, st := b.readWordEntry(base)
	if st == Full {
		return 0, Full
	}
	return mergeLoad(rWord, wData, wMarks, off, size), st
}

// Store performs a buffered write of size bytes (1, 2, 4 or 8) at p. Whole
// words overwrite the slot and set every mark; sub-word stores first fill
// the slot from the arena (as the paper does) and then mark the written
// bytes so commit applies exactly them.
func (b *Buffer) Store(p mem.Addr, size int, v uint64) Status {
	if !validSize(size) || !mem.Aligned(p, size) {
		return Misaligned
	}
	b.C.Stores++
	if size < mem.Word {
		b.anyPartial = true
	}
	base := mem.WordBase(p)
	off := mem.WordOffset(p)
	data, marks := b.writeEntry(base)
	st := OK
	if data == nil {
		if i, ok := b.write.insert(base); ok {
			data, marks = b.write.word(i), b.write.markWord(i)
		} else {
			b.C.Conflicts++
			if len(b.writeOv) >= b.ovCap {
				return Full
			}
			b.writeOv = append(b.writeOv, ovEntry{base: base})
			e := &b.writeOv[len(b.writeOv)-1]
			data, marks = e.data[:], e.mark[:]
			b.mustStop = true
			st = Conflict
		}
		if size < mem.Word {
			// First touch of a sub-word slot: seed with the arena word.
			binary.LittleEndian.PutUint64(data, b.arena.ReadWord(base))
		}
	}
	writeLE(data[off:off+size], v, size)
	for i := off; i < off+size; i++ {
		marks[i] = fullMark
	}
	return st
}

// LoadRange performs a buffered read of len(dst)/WORD consecutive words at
// the word-aligned address p — the openaddr bulk path. Consecutive
// addresses occupy consecutive hash slots (the slot is the address's low
// bits), so the walk advances a slot cursor instead of re-hashing, seeds
// every missed snapshot from one arena splice, and falls back to the
// word-at-a-time overflow machinery only on slots held by foreign
// addresses.
func (b *Buffer) LoadRange(p mem.Addr, dst []byte) Status {
	nWords, ok := rangeGeometry(p, len(dst))
	if !ok {
		return Misaligned
	}
	if nWords == 0 {
		return OK
	}
	b.C.Loads += uint64(nWords)
	// Seed dst with the current arena words in one splice; buffered
	// snapshots overwrite their words below.
	b.arena.ReadWords(p, dst)
	hasWrites := b.write.top > 0 || len(b.writeOv) > 0
	st := OK
	i := b.read.slot(p)
	mask := int(b.read.mask)
	for k := 0; k < nWords; k, i = k+1, (i+1)&mask {
		base := p + mem.Addr(k*mem.Word)
		out := dst[k*mem.Word : (k+1)*mem.Word]
		var wData, wMarks []byte
		if hasWrites {
			wData, wMarks = b.writeEntry(base)
			if wData != nil && allMarked8(wMarks) {
				b.C.ReadSetHits++
				copy(out, wData)
				continue
			}
		}
		switch b.read.addrs[i] {
		case base:
			b.C.ReadSetHits++
			copy(out, b.read.word(i))
		case mem.NilAddr:
			// First touch: claim the slot and snapshot the arena word
			// already sitting in dst.
			b.read.addrs[i] = base
			b.read.used[b.read.top] = int32(i)
			b.read.top++
			copy(b.read.word(i), out)
		default:
			// Foreign address in the slot: the overflow path, one word.
			rWord, rst := b.readWordEntry(base)
			if rst == Full {
				// The caller rolls back here; uncount the words the
				// word-at-a-time loop would never have reached.
				b.C.Loads -= uint64(nWords - k - 1)
				return Full
			}
			st = worse(st, rst)
			copy(out, rWord)
		}
		if wData != nil {
			for j := 0; j < mem.Word; j++ {
				if wMarks[j] == fullMark {
					out[j] = wData[j]
				}
			}
		}
	}
	return st
}

// StoreRange performs a buffered write of len(src)/WORD consecutive words
// at the word-aligned address p, claiming consecutive hash slots with a
// slot cursor and splicing whole words (full marks set eight at a time).
func (b *Buffer) StoreRange(p mem.Addr, src []byte) Status {
	nWords, ok := rangeGeometry(p, len(src))
	if !ok {
		return Misaligned
	}
	if nWords == 0 {
		return OK
	}
	b.C.Stores += uint64(nWords)
	st := OK
	i := b.write.slot(p)
	mask := int(b.write.mask)
	for k := 0; k < nWords; k, i = k+1, (i+1)&mask {
		base := p + mem.Addr(k*mem.Word)
		in := src[k*mem.Word : (k+1)*mem.Word]
		var data, marks []byte
		switch b.write.addrs[i] {
		case base:
			data, marks = b.write.word(i), b.write.markWord(i)
		case mem.NilAddr:
			b.write.addrs[i] = base
			b.write.used[b.write.top] = int32(i)
			b.write.top++
			data, marks = b.write.word(i), b.write.markWord(i)
		default:
			// Foreign address in the slot: the overflow path, one word.
			if e := b.findWriteOv(base); e != nil {
				data, marks = e.data[:], e.mark[:]
			} else {
				b.C.Conflicts++
				if len(b.writeOv) >= b.ovCap {
					// The caller rolls back here; uncount the words the
					// word-at-a-time loop would never have reached.
					b.C.Stores -= uint64(nWords - k - 1)
					return Full
				}
				b.writeOv = append(b.writeOv, ovEntry{base: base})
				e := &b.writeOv[len(b.writeOv)-1]
				data, marks = e.data[:], e.mark[:]
				b.mustStop = true
				st = Conflict
			}
		}
		copy(data, in)
		binary.LittleEndian.PutUint64(marks, onesWord)
	}
	return st
}

// StoreFill performs a buffered write of nWords copies of the word v at the
// word-aligned address p — StoreRange's walk without a source buffer, the
// memset shape that allocator zeroing and constant fills produce.
func (b *Buffer) StoreFill(p mem.Addr, nWords int, v uint64) Status {
	if nWords < 0 || !mem.Aligned(p, mem.Word) {
		return Misaligned
	}
	if nWords == 0 {
		return OK
	}
	b.C.Stores += uint64(nWords)
	st := OK
	i := b.write.slot(p)
	mask := int(b.write.mask)
	for k := 0; k < nWords; k, i = k+1, (i+1)&mask {
		base := p + mem.Addr(k*mem.Word)
		var data, marks []byte
		switch b.write.addrs[i] {
		case base:
			data, marks = b.write.word(i), b.write.markWord(i)
		case mem.NilAddr:
			b.write.addrs[i] = base
			b.write.used[b.write.top] = int32(i)
			b.write.top++
			data, marks = b.write.word(i), b.write.markWord(i)
		default:
			// Foreign address in the slot: the overflow path, one word.
			if e := b.findWriteOv(base); e != nil {
				data, marks = e.data[:], e.mark[:]
			} else {
				b.C.Conflicts++
				if len(b.writeOv) >= b.ovCap {
					// The caller rolls back here; uncount the words the
					// word-at-a-time loop would never have reached.
					b.C.Stores -= uint64(nWords - k - 1)
					return Full
				}
				b.writeOv = append(b.writeOv, ovEntry{base: base})
				e := &b.writeOv[len(b.writeOv)-1]
				data, marks = e.data[:], e.mark[:]
				b.mustStop = true
				st = Conflict
			}
		}
		binary.LittleEndian.PutUint64(data, v)
		binary.LittleEndian.PutUint64(marks, onesWord)
	}
	return st
}

// validateWalk is the read-set comparison shared by Validate, PreValidate
// and ValidateDirty. Conflicts only occur when the speculative thread read
// an address before the non-speculative thread wrote it, so equality of the
// snapshot with current memory is exactly the paper's validation criterion.
// Bulk loads claim consecutive slots for consecutive addresses, so the walk
// batches such runs into one arena comparison each; isolated words compare
// one at a time. A non-nil dirty oracle skips runs whose pages are known
// clean since the pre-validation snapshot.
func (b *Buffer) validateWalk(dirty func(mem.Addr, int) bool) bool {
	for k := 0; k < b.read.top; {
		i := int(b.read.used[k])
		base := b.read.addrs[i]
		run := 1
		for k+run < b.read.top {
			j := int(b.read.used[k+run])
			if j != i+run || b.read.addrs[j] != base+mem.Addr(run*mem.Word) {
				break
			}
			run++
		}
		if dirty == nil || dirty(base, run*mem.Word) {
			if !b.arena.EqualWords(base, b.read.buf[i*mem.Word:(i+run)*mem.Word]) {
				return false
			}
		}
		k += run
	}
	for k := range b.readOv {
		e := &b.readOv[k]
		if dirty != nil && !dirty(e.base, mem.Word) {
			continue
		}
		if binary.LittleEndian.Uint64(e.data[:]) != b.arena.ReadWord(e.base) {
			return false
		}
	}
	return true
}

// Validate checks every read-set word against the arena.
func (b *Buffer) Validate() bool {
	b.C.Validations++
	if !b.validateWalk(nil) {
		b.C.ValidationFail++
		return false
	}
	return true
}

// PreValidate runs the full read-set walk without touching any counter —
// the optimistic half executed outside the commit serial section.
func (b *Buffer) PreValidate() bool { return b.validateWalk(nil) }

// ValidateDirty is the lock-time half: it re-checks only the runs the dirty
// oracle reports possibly written since the pre-validation snapshot, with
// Validate's counter effects.
func (b *Buffer) ValidateDirty(dirty func(base mem.Addr, nBytes int) bool) bool {
	b.C.Validations++
	if !b.validateWalk(dirty) {
		b.C.ValidationFail++
		return false
	}
	return true
}

// Commit applies the write set to the arena: whole words at once when all
// eight marks are set (the paper's -1 mark optimization), marked bytes
// individually otherwise. Fully-marked runs over consecutive slots — the
// shape bulk stores leave behind — are spliced with one arena write each.
// A non-nil mark is invoked after each applied run (write-then-stamp).
func (b *Buffer) Commit(mark func(base mem.Addr, nBytes int)) {
	b.C.Commits++
	w := &b.write
	for k := 0; k < w.top; {
		i := int(w.used[k])
		base := w.addrs[i]
		// Maximal consecutive-address run first (the shape bulk stores
		// leave behind), then split it at partially-marked words — two
		// tight loops instead of one with every check fused.
		n := 1
		for k+n < w.top && int(w.used[k+n]) == i+n &&
			w.addrs[i+n] == base+mem.Addr(n*mem.Word) {
			n++
		}
		if !b.anyPartial {
			// No sub-word store happened: every mark is full by
			// construction, the whole address run splices at once.
			commitRun(b.arena, &b.C, base, w.buf[i*mem.Word:(i+n)*mem.Word], mark)
			k += n
			continue
		}
		marks := w.mark[i*mem.Word : (i+n)*mem.Word]
		for s := 0; s < n; {
			f := s
			for f < n && binary.LittleEndian.Uint64(marks[f*mem.Word:]) == onesWord {
				f++
			}
			if f > s {
				commitRun(b.arena, &b.C, base+mem.Addr(s*mem.Word),
					w.buf[(i+s)*mem.Word:(i+f)*mem.Word], mark)
				s = f
				continue
			}
			commitWord(b.arena, &b.C, base+mem.Addr(s*mem.Word), w.word(i+s), w.markWord(i+s), mark)
			s++
		}
		k += n
	}
	for k := range b.writeOv {
		e := &b.writeOv[k]
		commitWord(b.arena, &b.C, e.base, e.data[:], e.mark[:], mark)
	}
}

// Finalize clears both sets and the overflow buffers, returning the buffer
// to its initial state for the next speculation. Costs are proportional to
// the slots actually used.
func (b *Buffer) Finalize() {
	b.read.reset()
	b.write.reset()
	b.readOv = b.readOv[:0]
	b.writeOv = b.writeOv[:0]
	b.mustStop = false
	b.anyPartial = false
}

func validSize(size int) bool {
	return size == 1 || size == 2 || size == 4 || size == 8
}

func allMarked(m []byte) bool {
	for _, b := range m {
		if b != fullMark {
			return false
		}
	}
	return true
}

func readLE(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func writeLE(b []byte, v uint64, size int) {
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
