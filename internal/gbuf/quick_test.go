package gbuf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// refBuffer is an obviously-correct model of the GlobalBuffer semantics:
// per-byte written map (write set), per-word read snapshots (read set), and
// a shadow of the arena for commit checking.
type refBuffer struct {
	arena   *mem.Arena
	written map[mem.Addr]byte   // byte address -> speculative value
	readSet map[mem.Addr]uint64 // word base -> snapshot
}

func newRefBuffer(a *mem.Arena) *refBuffer {
	return &refBuffer{arena: a, written: map[mem.Addr]byte{}, readSet: map[mem.Addr]uint64{}}
}

func (r *refBuffer) load(p mem.Addr, size int) uint64 {
	base := mem.WordBase(p)
	// Does the write set fully cover the access?
	covered := true
	for i := 0; i < size; i++ {
		if _, ok := r.written[p+mem.Addr(i)]; !ok {
			covered = false
			break
		}
	}
	if !covered {
		if _, ok := r.readSet[base]; !ok {
			r.readSet[base] = r.arena.ReadWord(base)
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		b, ok := r.written[p+mem.Addr(i)]
		if !ok {
			snap := r.readSet[base]
			b = byte(snap >> (8 * uint(mem.WordOffset(p+mem.Addr(i)))))
		}
		v = v<<8 | uint64(b)
	}
	return v
}

func (r *refBuffer) store(p mem.Addr, size int, v uint64) {
	for i := 0; i < size; i++ {
		r.written[p+mem.Addr(i)] = byte(v >> (8 * i))
	}
}

func (r *refBuffer) validate() bool {
	for base, snap := range r.readSet {
		if r.arena.ReadWord(base) != snap {
			return false
		}
	}
	return true
}

func (r *refBuffer) commit() {
	for p, b := range r.written {
		r.arena.WriteUint8(p, b)
	}
}

var accessSizes = []int{1, 2, 4, 8}

// TestQuickBufferMatchesReference drives random aligned load/store sequences
// through the real buffer and the reference model, comparing every load
// value, the validation verdict under random non-speculative interference,
// and the committed arena image.
func TestQuickBufferMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arenaA, _ := mem.NewArena(1 << 12)
		arenaB, _ := mem.NewArena(1 << 12)
		// Identical random initial contents.
		for i := 8; i < 1<<12; i++ {
			v := byte(rng.Intn(256))
			arenaA.WriteUint8(mem.Addr(i), v)
			arenaB.WriteUint8(mem.Addr(i), v)
		}
		// A large map so hash conflicts cannot occur (overflow semantics are
		// covered by dedicated tests; the reference has no conflicts).
		buf, _ := New(arenaA, Config{LogWords: 10, OverflowCap: 4})
		ref := newRefBuffer(arenaB)
		for op := 0; op < 300; op++ {
			size := accessSizes[rng.Intn(len(accessSizes))]
			slot := rng.Intn(200)
			p := mem.Addr(8 + slot*8 + rng.Intn(mem.Word/size)*size)
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				st := buf.Store(p, size, v)
				if st != OK {
					t.Logf("store status %v at op %d", st, op)
					return false
				}
				ref.store(p, size, v)
			} else {
				got, st := buf.Load(p, size)
				if st != OK {
					t.Logf("load status %v at op %d", st, op)
					return false
				}
				want := ref.load(p, size)
				if got != want {
					t.Logf("load mismatch at %d size %d: got %#x want %#x (op %d)", p, size, got, want, op)
					return false
				}
			}
		}
		// Random non-speculative interference on both arenas.
		for i := 0; i < 20; i++ {
			p := mem.Addr(8 + rng.Intn(200)*8)
			v := rng.Uint64()
			arenaA.WriteWord(p, v)
			arenaB.WriteWord(p, v)
		}
		okA, okB := buf.Validate(), ref.validate()
		if okA != okB {
			t.Logf("validation disagreement: real=%v ref=%v", okA, okB)
			return false
		}
		// Commit both and compare the full arena images.
		buf.Commit()
		ref.commit()
		for i := 8; i < 1<<12; i++ {
			if arenaA.ReadUint8(mem.Addr(i)) != arenaB.ReadUint8(mem.Addr(i)) {
				t.Logf("arena divergence at byte %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValidationExactness: validation fails iff some read word differs
// from the arena.
func TestQuickValidationExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arena, _ := mem.NewArena(1 << 12)
		buf, _ := New(arena, Config{LogWords: 10, OverflowCap: 4})
		read := map[mem.Addr]uint64{}
		for i := 0; i < 50; i++ {
			p := mem.Addr(8 + rng.Intn(100)*8)
			v, _ := buf.Load(p, 8)
			if _, ok := read[p]; !ok {
				read[p] = v
			}
		}
		dirty := false
		for i := 0; i < 10; i++ {
			p := mem.Addr(8 + rng.Intn(150)*8)
			nv := rng.Uint64()
			old, wasRead := read[p]
			arena.WriteWord(p, nv)
			if wasRead && nv != old {
				dirty = true
			}
			if wasRead {
				read[p] = read[p] // snapshot unchanged; arena moved on
			}
		}
		return buf.Validate() == !dirty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCommitTouchesOnlyWrittenBytes: after arbitrary stores, commit
// changes exactly the stored byte addresses.
func TestQuickCommitTouchesOnlyWrittenBytes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arena, _ := mem.NewArena(1 << 12)
		for i := 8; i < 1<<12; i++ {
			arena.WriteUint8(mem.Addr(i), byte(rng.Intn(256)))
		}
		before := make([]byte, 1<<12)
		copy(before, arena.Snapshot(1, (1<<12)-1)) // offset by 1; index i-1 = addr i
		buf, _ := New(arena, Config{LogWords: 10, OverflowCap: 4})
		written := map[mem.Addr]byte{}
		for op := 0; op < 100; op++ {
			size := accessSizes[rng.Intn(len(accessSizes))]
			p := mem.Addr(8 + rng.Intn(100)*8 + rng.Intn(mem.Word/size)*size)
			v := rng.Uint64()
			buf.Store(p, size, v)
			for i := 0; i < size; i++ {
				written[p+mem.Addr(i)] = byte(v >> (8 * i))
			}
		}
		buf.Commit()
		for i := mem.Addr(8); i < 1<<12; i++ {
			want, ok := written[i]
			if !ok {
				want = before[i-1]
			}
			if arena.ReadUint8(i) != want {
				t.Logf("byte %d: got %#x want %#x (written=%v)", i, arena.ReadUint8(i), want, ok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
